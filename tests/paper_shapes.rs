//! Regression tests pinning the paper's qualitative results — the
//! "shape" of every figure. If a refactor or recalibration breaks who
//! wins, by what factor, or where a crossover falls, these fail.
//!
//! Each test uses reduced run counts (shapes are robust); the full
//! sweeps live in `crates/bench/benches/`.

use rdma_stream::blast::{run_blast_seeds, BlastSpec, SizeDist};
use rdma_stream::exs::{ExsConfig, ProtocolMode};
use rdma_stream::simnet::SimDuration;
use rdma_stream::verbs::profiles;

fn fdr_spec(mode: ProtocolMode, sends: usize, recvs: usize) -> BlastSpec {
    BlastSpec {
        cfg: ExsConfig::with_mode(mode),
        outstanding_sends: sends,
        outstanding_recvs: recvs,
        messages: 150,
        ..BlastSpec::new(profiles::fdr_infiniband())
    }
}

fn mean_tput(spec: &BlastSpec, seeds: &[u64]) -> f64 {
    let reports = run_blast_seeds(spec, seeds);
    reports.iter().map(|r| r.throughput_bps()).sum::<f64>() / reports.len() as f64
}

fn mean_ratio(spec: &BlastSpec, seeds: &[u64]) -> f64 {
    let reports = run_blast_seeds(spec, seeds);
    reports.iter().map(|r| r.direct_ratio()).sum::<f64>() / reports.len() as f64
}

fn mean_cpu_recv(spec: &BlastSpec, seeds: &[u64]) -> f64 {
    let reports = run_blast_seeds(spec, seeds);
    reports.iter().map(|r| r.cpu_receiver).sum::<f64>() / reports.len() as f64
}

const SEEDS: [u64; 3] = [101, 102, 103];

/// Fig. 9a: equal outstanding ops — direct ≫ indirect; dynamic tracks
/// indirect. Paper bands: direct 35–44 Gbit/s, indirect 20–27 Gbit/s.
#[test]
fn fig9a_equal_ops_shape() {
    let direct = mean_tput(&fdr_spec(ProtocolMode::DirectOnly, 8, 8), &SEEDS);
    let indirect = mean_tput(&fdr_spec(ProtocolMode::IndirectOnly, 8, 8), &SEEDS);
    let dynamic = mean_tput(&fdr_spec(ProtocolMode::Dynamic, 8, 8), &SEEDS);

    assert!(
        (35e9..46e9).contains(&direct),
        "direct {direct:.3e} outside the paper band"
    );
    assert!(
        (20e9..29e9).contains(&indirect),
        "indirect {indirect:.3e} outside the paper band"
    );
    assert!(
        direct > indirect * 1.4,
        "direct should beat indirect by a wide margin on FDR"
    );
    assert!(
        (dynamic - indirect).abs() / indirect < 0.15,
        "dynamic ({dynamic:.3e}) should track indirect ({indirect:.3e}) at equal ops"
    );
}

/// Fig. 9b: receiver has 2× the sender's ops — dynamic tracks direct.
#[test]
fn fig9b_double_recvs_shape() {
    let direct = mean_tput(&fdr_spec(ProtocolMode::DirectOnly, 8, 16), &SEEDS);
    let dynamic = mean_tput(&fdr_spec(ProtocolMode::Dynamic, 8, 16), &SEEDS);
    assert!(
        (dynamic - direct).abs() / direct < 0.05,
        "dynamic ({dynamic:.3e}) should track direct ({direct:.3e}) with 2x receives"
    );
}

/// Fig. 10: receiver CPU — indirect near 100%, direct far lower, dynamic
/// tracks its chosen mode.
#[test]
fn fig10_cpu_shape() {
    let direct = mean_cpu_recv(&fdr_spec(ProtocolMode::DirectOnly, 8, 8), &SEEDS);
    let indirect = mean_cpu_recv(&fdr_spec(ProtocolMode::IndirectOnly, 8, 8), &SEEDS);
    let dyn_eq = mean_cpu_recv(&fdr_spec(ProtocolMode::Dynamic, 8, 8), &SEEDS);
    let dyn_2x = mean_cpu_recv(&fdr_spec(ProtocolMode::Dynamic, 8, 16), &SEEDS);

    assert!(
        indirect > 0.9,
        "indirect receiver CPU {indirect} should near 100%"
    );
    assert!(direct < 0.2, "direct receiver CPU {direct} should stay low");
    assert!(
        dyn_eq > 0.7,
        "dynamic(equal) tracks indirect CPU, got {dyn_eq}"
    );
    assert!(dyn_2x < 0.2, "dynamic(2x) tracks direct CPU, got {dyn_2x}");
}

/// Table III: equal ops → ~1 mode switch, direct ratio < 0.1 for ≥ 4
/// ops; 2× receives → 0 switches, ratio 1.0 (allowing for the paper's
/// own race-sensitive anomalies at some op counts).
#[test]
fn table3_shape() {
    let reports = run_blast_seeds(&fdr_spec(ProtocolMode::Dynamic, 8, 8), &SEEDS);
    for r in &reports {
        assert!(r.mode_switches >= 1, "equal ops must fall out of direct");
        assert!(
            r.direct_ratio() < 0.1,
            "equal ops ratio {} too high",
            r.direct_ratio()
        );
    }
    let ratio_2x = mean_ratio(&fdr_spec(ProtocolMode::Dynamic, 8, 16), &SEEDS);
    assert!(
        ratio_2x > 0.9,
        "2x receives should be ~all direct, got {ratio_2x}"
    );
}

/// Fig. 12b: the direct ratio crosses to 1.0 at ≥ 512 KiB messages
/// (recvs = 4, sends = 2) and is far below 1 for small messages.
#[test]
fn fig12_crossover_shape() {
    let spec = |size: u64| BlastSpec {
        cfg: ExsConfig::with_mode(ProtocolMode::Dynamic),
        outstanding_sends: 2,
        outstanding_recvs: 4,
        sizes: SizeDist::Fixed(size),
        messages: 150,
        ..BlastSpec::new(profiles::fdr_infiniband())
    };
    let small = mean_ratio(&spec(8 << 10), &SEEDS);
    let large = mean_ratio(&spec(512 << 10), &SEEDS);
    let huge = mean_ratio(&spec(2 << 20), &SEEDS);
    assert!(small < 0.5, "8 KiB ratio {small} should be well below 1");
    assert!(
        large > 0.95,
        "512 KiB ratio {large} should be ~1 (paper crossover)"
    );
    assert!(huge > 0.95, "2 MiB ratio {huge} should be ~1");
}

/// Fig. 13: over a 48 ms RTT the three protocols are within a few
/// percent, and throughput scales with outstanding ops.
#[test]
fn fig13_distance_shape() {
    let spec = |mode: ProtocolMode, ops: usize| {
        let mut cfg = ExsConfig::with_mode(mode);
        cfg.ring_capacity = 256 << 20;
        BlastSpec {
            cfg,
            outstanding_sends: ops,
            outstanding_recvs: ops,
            messages: 60,
            time_limit: SimDuration::from_secs(3600),
            ..BlastSpec::new(profiles::roce_10g_wan())
        }
    };
    let seeds = [7u64];
    let d4 = mean_tput(&spec(ProtocolMode::DirectOnly, 4), &seeds);
    let i4 = mean_tput(&spec(ProtocolMode::IndirectOnly, 4), &seeds);
    let y4 = mean_tput(&spec(ProtocolMode::Dynamic, 4), &seeds);
    assert!(
        (d4 - i4).abs() / d4 < 0.1,
        "protocols should be similar over distance"
    );
    assert!((y4 - i4).abs() / i4 < 0.1);

    let y16 = mean_tput(&spec(ProtocolMode::Dynamic, 16), &seeds);
    assert!(
        y16 > y4 * 2.5,
        "throughput must scale with outstanding ops over distance ({y4:.3e} -> {y16:.3e})"
    );
}

/// QDR ablation: the direct-vs-indirect gap shrinks dramatically
/// compared to FDR (paper §IV-B1 remark).
#[test]
fn qdr_gap_shrinks() {
    let gap = |profile: rdma_stream::verbs::HwProfile| {
        let spec = |mode| BlastSpec {
            cfg: ExsConfig::with_mode(mode),
            outstanding_sends: 8,
            outstanding_recvs: 8,
            messages: 100,
            ..BlastSpec::new(profile.clone())
        };
        let d = mean_tput(&spec(ProtocolMode::DirectOnly), &SEEDS);
        let i = mean_tput(&spec(ProtocolMode::IndirectOnly), &SEEDS);
        (d - i) / d
    };
    let fdr_gap = gap(profiles::fdr_infiniband());
    let qdr_gap = gap(profiles::qdr_infiniband());
    assert!(
        qdr_gap < fdr_gap * 0.5,
        "QDR gap {qdr_gap:.2} should be far below FDR gap {fdr_gap:.2}"
    );
}
