//! Link-failure injection through the whole stack: a directed link goes
//! down mid-stream, RC retry exhaustion fails the QP, and the EXS socket
//! surfaces a `ConnectionError` event instead of hanging or panicking.

use rdma_stream::exs::{ExsConfig, ExsEvent, ProtocolMode, StreamSocket};
use rdma_stream::simnet::{SimDuration, SimTime};
use rdma_stream::verbs::{profiles, Access, MrInfo, NodeApi, NodeApp, SimNet};

struct Sender {
    sock: Option<StreamSocket>,
    mr: Option<MrInfo>,
    to_send: usize,
    sent: usize,
    acked: usize,
    broken: bool,
}

impl Sender {
    fn kick(&mut self, api: &mut NodeApi<'_>) {
        while self.sent < self.to_send && self.sent - self.acked < 2 {
            let mr = self.mr.unwrap();
            self.sock
                .as_mut()
                .unwrap()
                .exs_send(api, &mr, 0, 64 << 10, self.sent as u64);
            self.sent += 1;
        }
    }
}

impl NodeApp for Sender {
    fn on_start(&mut self, api: &mut NodeApi<'_>) {
        self.kick(api);
    }
    fn on_wake(&mut self, api: &mut NodeApi<'_>) {
        self.sock.as_mut().unwrap().handle_wake(api);
        for ev in self.sock.as_mut().unwrap().take_events() {
            match ev {
                ExsEvent::SendComplete { .. } => self.acked += 1,
                ExsEvent::ConnectionError => self.broken = true,
                _ => {}
            }
        }
        if !self.broken {
            self.kick(api);
        }
    }
    fn is_done(&self) -> bool {
        self.broken
    }
}

struct Receiver {
    sock: Option<StreamSocket>,
    mr: Option<MrInfo>,
    received: u64,
    next_id: u64,
    broken: bool,
}

impl Receiver {
    fn kick(&mut self, api: &mut NodeApi<'_>) {
        let sock = self.sock.as_mut().unwrap();
        if !self.broken && sock.recvs_pending() == 0 {
            let mr = self.mr.unwrap();
            sock.exs_recv(api, &mr, 0, 64 << 10, false, self.next_id);
            self.next_id += 1;
        }
    }
}

impl NodeApp for Receiver {
    fn on_start(&mut self, api: &mut NodeApi<'_>) {
        self.kick(api);
    }
    fn on_wake(&mut self, api: &mut NodeApi<'_>) {
        self.sock.as_mut().unwrap().handle_wake(api);
        for ev in self.sock.as_mut().unwrap().take_events() {
            match ev {
                ExsEvent::RecvComplete { len, .. } => self.received += len as u64,
                ExsEvent::ConnectionError => self.broken = true,
                _ => {}
            }
        }
        self.kick(api);
    }
    fn is_done(&self) -> bool {
        // The receiver may or may not observe the failure directly
        // (depends on which direction lost traffic); the test ends on
        // the sender's error.
        true
    }
}

#[test]
fn link_cut_surfaces_connection_error() {
    let profile = profiles::fdr_infiniband();
    let mut net = SimNet::new();
    net.enable_trace(256);
    let a = net.add_node(profile.host.clone(), profile.hca.clone());
    let b = net.add_node(profile.host.clone(), profile.hca.clone());
    net.connect_nodes(a, b, profile.link.clone(), 8);
    let (sa, sb) = StreamSocket::pair(&mut net, a, b, &ExsConfig::with_mode(ProtocolMode::Dynamic));

    let mut sender = Sender {
        sock: Some(sa),
        mr: None,
        to_send: 10_000, // would run far beyond the cut
        sent: 0,
        acked: 0,
        broken: false,
    };
    let mut receiver = Receiver {
        sock: Some(sb),
        mr: None,
        received: 0,
        next_id: 0,
        broken: false,
    };
    net.with_api(a, |api| {
        sender.mr = Some(api.register_mr(64 << 10, Access::NONE));
    });
    net.with_api(b, |api| {
        receiver.mr = Some(api.register_mr(64 << 10, Access::local_remote_write()));
    });

    // Run a while, then cut the forward (data) link and keep running.
    let mid = net.run(&mut [&mut sender, &mut receiver], SimTime::from_millis(2));
    assert!(!mid.completed, "stream should still be running at the cut");
    assert!(receiver.received > 0, "some data flowed before the cut");
    net.set_link_up(a, b, false);

    let outcome = net.run(
        &mut [&mut sender, &mut receiver],
        SimTime::ZERO + SimDuration::from_millis(200),
    );
    assert!(
        outcome.completed,
        "sender must observe the failure: {outcome:?}\ntrace:\n{}",
        net.dump_trace()
    );
    assert!(sender.broken, "ConnectionError event expected");
    assert!(sender.sock.as_ref().unwrap().is_broken());
    // The trace recorded the drops.
    assert!(net.dump_trace().contains("dropped"));
}

#[test]
fn trace_records_protocol_events() {
    let profile = profiles::ideal();
    let mut net = SimNet::new();
    net.enable_trace(64);
    let a = net.add_node(profile.host.clone(), profile.hca.clone());
    let b = net.add_node(profile.host.clone(), profile.hca.clone());
    net.connect_nodes(a, b, profile.link.clone(), 9);
    let (sa, sb) = StreamSocket::pair(&mut net, a, b, &ExsConfig::default());

    let mut sender = Sender {
        sock: Some(sa),
        mr: None,
        to_send: 3,
        sent: 0,
        acked: 0,
        broken: false,
    };
    let mut receiver = Receiver {
        sock: Some(sb),
        mr: None,
        received: 0,
        next_id: 0,
        broken: false,
    };
    net.with_api(a, |api| {
        sender.mr = Some(api.register_mr(64 << 10, Access::NONE));
    });
    net.with_api(b, |api| {
        receiver.mr = Some(api.register_mr(64 << 10, Access::local_remote_write()));
    });
    struct Done<'a>(&'a mut Sender);
    impl NodeApp for Done<'_> {
        fn on_start(&mut self, api: &mut NodeApi<'_>) {
            self.0.on_start(api)
        }
        fn on_wake(&mut self, api: &mut NodeApi<'_>) {
            self.0.on_wake(api)
        }
        fn is_done(&self) -> bool {
            self.0.acked == 3
        }
    }
    let mut wrapped = Done(&mut sender);
    net.run(&mut [&mut wrapped, &mut receiver], SimTime::from_secs(1));

    let dump = net.dump_trace();
    assert!(dump.contains("write-imm"), "data transfers traced:\n{dump}");
    assert!(dump.contains("send"), "control messages traced:\n{dump}");
    assert!(dump.contains("wake"), "wakeups traced:\n{dump}");
}
