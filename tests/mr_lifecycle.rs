//! Registration lifecycle: sockets must not leak pinned memory.
//!
//! Every registration a socket creates — the intermediate ring, the
//! control slots, BCopy staging regions (including ones orphaned by a
//! cancelled send) — is released by `exs_close`, on both backends. The
//! HCA's memory table being empty after teardown is the ground truth:
//! in these tests every registration on the node went through the
//! sockets or is explicitly deregistered, so one leaked region fails
//! the count.

use std::sync::Arc;
use std::time::Duration;

use rdma_stream::exs::{
    Event, ExsConfig, ExsContext, MsgFlags, ProtocolMode, ReactorConfig, SockType, ThreadPort,
    ThreadReactor, ThreadStream,
};
use rdma_stream::simnet::SimTime;
use rdma_stream::verbs::threaded::ThreadNet;
use rdma_stream::verbs::{profiles, Access, HcaConfig, MrInfo, NodeApi, NodeApp, SimNet};

/// Minimal ES-API exchange: one stream send and one message send from
/// the client, received by the server.
struct PairApp {
    ctx: Option<ExsContext>,
    stream_fd: rdma_stream::exs::ExsFd,
    seq_fd: rdma_stream::exs::ExsFd,
    mr: MrInfo,
    is_client: bool,
    stream_done: bool,
    seq_done: bool,
}

impl NodeApp for PairApp {
    fn on_start(&mut self, api: &mut NodeApi<'_>) {
        let ctx = self.ctx.as_mut().unwrap();
        if self.is_client {
            api.write_mr(self.mr.key, self.mr.addr, b"lifecycle-bytes!")
                .unwrap();
            ctx.exs_send(api, self.stream_fd, &self.mr, 0, 16, 1);
            ctx.exs_send(api, self.seq_fd, &self.mr, 0, 16, 2);
        } else {
            ctx.exs_recv(api, self.stream_fd, &self.mr, 0, 16, MsgFlags::WAITALL, 1);
            ctx.exs_recv(api, self.seq_fd, &self.mr, 16, 16, MsgFlags::NONE, 2);
        }
    }
    fn on_wake(&mut self, api: &mut NodeApi<'_>) {
        let ctx = self.ctx.as_mut().unwrap();
        ctx.handle_wake(api);
        for qe in ctx.exs_qdequeue() {
            match qe.event {
                Event::SendComplete { .. } | Event::RecvComplete { .. } => {
                    if qe.fd == self.stream_fd {
                        self.stream_done = true;
                    } else {
                        self.seq_done = true;
                    }
                }
                other => panic!("unexpected event {other:?}"),
            }
        }
    }
    fn is_done(&self) -> bool {
        self.stream_done && self.seq_done
    }
}

#[test]
fn sim_close_releases_every_socket_registration() {
    let profile = profiles::fdr_infiniband();
    let mut net = SimNet::new();
    let a = net.add_node(profile.host.clone(), profile.hca.clone());
    let b = net.add_node(profile.host.clone(), profile.hca.clone());
    net.connect_nodes(a, b, profile.link.clone(), 7);

    let mut ctx_a = ExsContext::new(a);
    let mut ctx_b = ExsContext::new(b);
    let cfg = ExsConfig::default();
    let (s_a, s_b) =
        ExsContext::socket_pair(&mut net, &mut ctx_a, &mut ctx_b, SockType::Stream, &cfg);
    let (q_a, q_b) =
        ExsContext::socket_pair(&mut net, &mut ctx_a, &mut ctx_b, SockType::SeqPacket, &cfg);

    let mr_a = net.with_api(a, |api| ctx_a.exs_mregister(api, 32, Access::NONE));
    let mr_b = net.with_api(b, |api| {
        ctx_b.exs_mregister(api, 32, Access::local_remote_write())
    });

    let mut client = PairApp {
        ctx: Some(ctx_a),
        stream_fd: s_a,
        seq_fd: q_a,
        mr: mr_a,
        is_client: true,
        stream_done: false,
        seq_done: false,
    };
    let mut server = PairApp {
        ctx: Some(ctx_b),
        stream_fd: s_b,
        seq_fd: q_b,
        mr: mr_b,
        is_client: false,
        stream_done: false,
        seq_done: false,
    };
    let outcome = net.run(&mut [&mut client, &mut server], SimTime::from_secs(1));
    assert!(outcome.completed, "exchange stalled: {outcome:?}");

    // Teardown: close every socket, release the user regions.
    let mut ctx_a = client.ctx.take().unwrap();
    let mut ctx_b = server.ctx.take().unwrap();
    net.with_api(a, |api| {
        ctx_a.exs_close(api, s_a);
        ctx_a.exs_close(api, q_a);
        ctx_a.exs_mderegister(api, &mr_a);
        assert_eq!(api.mr_count(), 0, "client node leaked registrations");
    });
    net.with_api(b, |api| {
        ctx_b.exs_close(api, s_b);
        ctx_b.exs_close(api, q_b);
        ctx_b.exs_mderegister(api, &mr_b);
        assert_eq!(api.mr_count(), 0, "server node leaked registrations");
    });
    assert_eq!(ctx_a.open_sockets(), 0);
    assert_eq!(ctx_b.open_sockets(), 0);
}

/// A cancelled BCopy send's staging region (which `exs_cancel` cannot
/// free itself — it has no backend handle) is reclaimed no later than
/// close.
#[test]
fn sim_cancelled_staging_region_is_reclaimed() {
    let profile = profiles::fdr_infiniband();
    let mut net = SimNet::new();
    let a = net.add_node(profile.host.clone(), profile.hca.clone());
    let b = net.add_node(profile.host.clone(), profile.hca.clone());
    net.connect_nodes(a, b, profile.link.clone(), 7);

    // Indirect-only forces staging; a 2-deep send queue keeps the
    // last send undispatched so it stays cancellable.
    let cfg = ExsConfig {
        mode: ProtocolMode::IndirectOnly,
        sq_depth: 2,
        ..ExsConfig::default()
    };
    let mut ctx_a = ExsContext::new(a);
    let mut ctx_b = ExsContext::new(b);
    let (s_a, s_b) =
        ExsContext::socket_pair(&mut net, &mut ctx_a, &mut ctx_b, SockType::Stream, &cfg);
    let mr = net.with_api(a, |api| ctx_a.exs_mregister(api, 64, Access::NONE));

    net.with_api(a, |api| {
        ctx_a.exs_send(api, s_a, &mr, 0, 64, 1);
        ctx_a.exs_send(api, s_a, &mr, 0, 64, 2);
        ctx_a.exs_send(api, s_a, &mr, 0, 64, 3);
        assert!(ctx_a.exs_cancel(s_a, 3), "send 3 should be cancellable");
        ctx_a.exs_close(api, s_a);
        ctx_a.exs_mderegister(api, &mr);
        assert_eq!(api.mr_count(), 0, "cancelled staging region leaked");
    });
    net.with_api(b, |api| {
        ctx_b.exs_close(api, s_b);
        assert_eq!(api.mr_count(), 0);
    });
}

#[test]
fn threaded_close_releases_every_registration() {
    let (a, mut b) = ThreadStream::pair(&ExsConfig::default(), Duration::ZERO);
    let writer = std::thread::spawn(move || {
        a.send_bytes(b"leak check payload").unwrap();
        a
    });
    let mut buf = [0u8; 18];
    b.recv_exact(&mut buf).unwrap();
    assert_eq!(&buf, b"leak check payload");
    let mut a = writer.join().unwrap();

    // send_bytes / recv_exact staged through the per-node pools: the
    // regions are cached, not leaked, and close() releases them along
    // with the sockets' rings and control slots.
    assert!(a.pool().stats().registrations > 0);
    a.close();
    b.close();
    assert_eq!(
        a.node().with_hca(|h| h.mem().len()),
        0,
        "node a leaked registrations"
    );
    assert_eq!(
        b.node().with_hca(|h| h.mem().len()),
        0,
        "node b leaked registrations"
    );
}

#[test]
fn thread_reactor_close_releases_registrations() {
    let cfg = ExsConfig::default();
    let mut net = ThreadNet::new();
    let server = net.add_node(HcaConfig::default());
    let peer = net.add_node(HcaConfig::default());
    net.connect_nodes(&peer, &server, Duration::ZERO);
    let net = Arc::new(net);
    let reactor = ThreadReactor::new(
        net.clone(),
        server.clone(),
        ReactorConfig::default(),
        &cfg,
        2,
    );

    let (conn, client) = reactor.accept(&peer, &cfg);
    let t = std::thread::spawn(move || {
        client.send_bytes(b"pooled fan-in bytes").unwrap();
        client
    });
    let lease = reactor.acquire(64, Access::local_remote_write());
    let id = reactor.post_recv(conn, lease.info(), 0, 19, true);
    let len = reactor
        .wait_recv(conn, id, Duration::from_secs(30))
        .expect("recv completion");
    assert_eq!(len, 19);
    let mut buf = [0u8; 19];
    let port = ThreadPort::new(&net, &server);
    lease.read(&port, 0, &mut buf).unwrap();
    assert_eq!(&buf, b"pooled fan-in bytes");
    let mut client = t.join().unwrap();

    // Teardown: server socket via close_conn, the reactor pool's
    // cached lease via trim, the client endpoint (socket + pool) via
    // close.
    drop(lease);
    reactor.close_conn(conn);
    let mut port = ThreadPort::new(&net, &server);
    reactor.pool().trim(&mut port);
    client.close();
    assert_eq!(
        server.with_hca(|h| h.mem().len()),
        0,
        "reactor node leaked registrations"
    );
    assert_eq!(
        peer.with_hca(|h| h.mem().len()),
        0,
        "client node leaked registrations"
    );
}
