//! Fabric-model acceptance: the fair-share allocator must make the
//! simulator honest about contention (aggregate ingress capped at the
//! bottleneck link, bandwidth split fairly) while changing *only*
//! timing — the delivered bytes and their order must be identical to
//! the FIFO model on every backend.

use rdma_stream::blast::fan_in::expected_digest;
use rdma_stream::blast::{run_blast, run_fan_in, BlastSpec, FanInSpec, VerifyLevel};
use rdma_stream::verbs::{profiles, FabricModel, FairShareConfig};

/// 512 connections blasting into one server NIC. Under the legacy FIFO
/// model every node pair gets a private serializing link, so aggregate
/// ingress exceeds the line rate — physically impossible. The
/// fair-share model must cap the aggregate at the bottleneck (within
/// 5%, the paper-style tolerance) and split it fairly (Jain ≥ 0.9).
#[test]
fn incast_512_fair_share_respects_bottleneck_and_is_fair() {
    let base = FanInSpec {
        msgs_per_conn: 6,
        msg_len: 16 << 10,
        seed: 5,
        ..FanInSpec::new(profiles::fdr_infiniband(), 512)
    };

    let fifo = run_fan_in(&base);
    assert!(
        fifo.offered_load_ratio() > 1.0,
        "FIFO incast no longer exceeds capacity (ratio {:.3}) — \
         the dishonesty this model fixes has vanished",
        fifo.offered_load_ratio()
    );
    assert!(
        fifo.fabric.is_none(),
        "FIFO run must not report fabric stats"
    );

    let fair = FanInSpec {
        fabric: FabricModel::FairShare(FairShareConfig::new(0xFA1B)),
        ..base
    };
    let report = run_fan_in(&fair);
    let ratio = report.offered_load_ratio();
    assert!(
        ratio <= 1.05,
        "fair-share aggregate {:.1} Mbit/s exceeds bottleneck (ratio {:.3})",
        report.throughput_mbps(),
        ratio
    );
    let stats = report
        .fabric
        .as_ref()
        .expect("fair-share run reports fabric stats");
    assert!(
        stats.jain_index >= 0.9,
        "unfair split across flows: Jain index {:.3}",
        stats.jain_index
    );
    assert!(stats.respeeds > 0, "512-way contention must re-speed flows");
    // Every user payload byte rode a fabric flow (flow bytes also carry
    // protocol framing and reverse ADVERT traffic, so ≥, not ==).
    let delivered: u64 = stats.flows.iter().map(|f| f.bytes).sum();
    assert!(
        delivered >= report.bytes,
        "fabric carried {delivered} bytes but {} were delivered",
        report.bytes
    );
}

/// The fabric model changes when bytes arrive, never which bytes or in
/// what order: the same seeded fan-in delivers digest-identical streams
/// under FIFO and FairShare.
#[test]
fn fair_share_fan_in_digests_match_fifo() {
    const SEED: u64 = 77;
    const CONNS: usize = 8;
    const MSGS: usize = 3;
    const MSG_LEN: u64 = 4096;

    let base = FanInSpec {
        client_nodes: 4,
        msgs_per_conn: MSGS,
        msg_len: MSG_LEN,
        verify: VerifyLevel::Full,
        seed: SEED,
        ..FanInSpec::new(profiles::fdr_infiniband(), CONNS)
    };
    let fifo = run_fan_in(&base);
    let fair = run_fan_in(&FanInSpec {
        fabric: FabricModel::FairShare(FairShareConfig::new(9)),
        ..base.clone()
    });

    assert_eq!(
        fifo.digests, fair.digests,
        "fabric model altered delivered bytes"
    );
    for (idx, &d) in fair.digests.iter().enumerate() {
        assert_eq!(
            d,
            expected_digest(SEED, idx, MSGS as u64 * MSG_LEN),
            "fair-share conn {idx} stream corrupt"
        );
    }
    assert_eq!(fifo.bytes, fair.bytes);
    // Determinism: the same fair-share seed reproduces the run exactly.
    let again = run_fan_in(&FanInSpec {
        fabric: FabricModel::FairShare(FairShareConfig::new(9)),
        ..base
    });
    assert_eq!(
        again.events, fair.events,
        "fair-share run is not reproducible"
    );
    assert_eq!(again.digests, fair.digests);
}

/// The 1:1 blast tool under the fair-share fabric: a single flow owns
/// the whole link, so throughput stays at the FDR line-rate story and
/// the delivered stream digest is unchanged from FIFO.
#[test]
fn blast_single_flow_unchanged_by_fair_share() {
    let base = BlastSpec {
        messages: 40,
        verify: VerifyLevel::Full,
        seed: 11,
        ..BlastSpec::new(profiles::fdr_infiniband())
    };
    let fifo = run_blast(&base);
    let fair = run_blast(&BlastSpec {
        fabric: FabricModel::FairShare(FairShareConfig::new(3)),
        ..base
    });

    assert_eq!(fifo.digest, fair.digest, "fabric model altered the stream");
    assert_eq!(fifo.bytes, fair.bytes);
    assert_eq!(
        fair.link_bandwidth_bps,
        profiles::fdr_infiniband().link.bandwidth_bps
    );
    let stats = fair.fabric.expect("fair-share blast reports fabric stats");
    // One data flow client→server (plus the reverse advert flow); a
    // lone flow never shares, so it must never re-speed to a lower rate
    // than a competitor would force.
    assert!((stats.jain_index - 1.0).abs() < 0.1 || stats.flows.len() <= 2);
    assert!(fifo.fabric.is_none());
}
