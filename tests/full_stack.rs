//! Cross-crate integration: the blast workload driving the EXS protocol
//! over the simulated verbs fabric, with full payload verification,
//! determinism checks, and the ES-API layer.

use rdma_stream::blast::{run_blast, BlastSpec, SizeDist, VerifyLevel};
use rdma_stream::exs::{Event, ExsConfig, ExsContext, MsgFlags, ProtocolMode, SockType};
use rdma_stream::simnet::SimTime;
use rdma_stream::verbs::{profiles, Access, MrInfo, NodeApi, NodeApp, SimNet};

#[test]
fn verified_blast_all_modes_and_profiles() {
    for profile in [profiles::fdr_infiniband(), profiles::qdr_infiniband()] {
        for mode in [
            ProtocolMode::Dynamic,
            ProtocolMode::DirectOnly,
            ProtocolMode::IndirectOnly,
        ] {
            let spec = BlastSpec {
                cfg: ExsConfig::with_mode(mode),
                outstanding_sends: 4,
                outstanding_recvs: 8,
                sizes: SizeDist::Exponential {
                    mean: 64 << 10,
                    max: 256 << 10,
                },
                messages: 60,
                verify: VerifyLevel::Full,
                seed: 33,
                ..BlastSpec::new(profile.clone())
            };
            let report = run_blast(&spec);
            assert!(report.bytes > 0);
            assert!(
                report.direct_transfers + report.indirect_transfers > 0,
                "{} {mode:?}: no transfers recorded",
                profile.name
            );
        }
    }
}

#[test]
fn runs_are_deterministic_per_seed() {
    let spec = BlastSpec {
        cfg: ExsConfig::with_mode(ProtocolMode::Dynamic),
        outstanding_sends: 4,
        outstanding_recvs: 4,
        messages: 80,
        seed: 99,
        ..BlastSpec::new(profiles::fdr_infiniband())
    };
    let a = run_blast(&spec);
    let b = run_blast(&spec);
    assert_eq!(a.end, b.end);
    assert_eq!(a.direct_transfers, b.direct_transfers);
    assert_eq!(a.indirect_transfers, b.indirect_transfers);
    assert_eq!(a.mode_switches, b.mode_switches);
    assert_eq!(a.events, b.events);

    // A different seed perturbs the host jitter and the workload.
    let mut spec2 = spec.clone();
    spec2.seed = 100;
    let c = run_blast(&spec2);
    assert_ne!(a.end, c.end, "independent seeds should differ");
}

#[test]
fn waitall_blast_verified() {
    let spec = BlastSpec {
        cfg: ExsConfig::with_mode(ProtocolMode::Dynamic),
        outstanding_sends: 2,
        outstanding_recvs: 4,
        sizes: SizeDist::Fixed(100_000),
        messages: 40,
        recv_len: 64 << 10,
        waitall: true,
        verify: VerifyLevel::Full,
        seed: 5,
        ..BlastSpec::new(profiles::fdr_infiniband())
    };
    let report = run_blast(&spec);
    assert_eq!(report.bytes, 40 * 100_000);
}

/// Mixed stream + message sockets in one ES-API context, across nodes.
struct PairApp {
    ctx: Option<ExsContext>,
    stream_fd: rdma_stream::exs::ExsFd,
    seq_fd: rdma_stream::exs::ExsFd,
    mr: Option<MrInfo>,
    is_client: bool,
    stream_done: bool,
    seq_done: bool,
    posted: bool,
}

impl NodeApp for PairApp {
    fn on_start(&mut self, api: &mut NodeApi<'_>) {
        let mr = self.mr.unwrap();
        let ctx = self.ctx.as_mut().unwrap();
        if self.is_client {
            api.write_mr(mr.key, mr.addr, b"stream-payload!!").unwrap();
            ctx.exs_send(api, self.stream_fd, &mr, 0, 16, 1);
            ctx.exs_send(api, self.seq_fd, &mr, 0, 16, 2);
        } else {
            ctx.exs_recv(api, self.stream_fd, &mr, 0, 16, MsgFlags::WAITALL, 1);
            ctx.exs_recv(api, self.seq_fd, &mr, 16, 16, MsgFlags::NONE, 2);
            self.posted = true;
        }
    }
    fn on_wake(&mut self, api: &mut NodeApi<'_>) {
        let ctx = self.ctx.as_mut().unwrap();
        ctx.handle_wake(api);
        for qe in ctx.exs_qdequeue() {
            match qe.event {
                Event::SendComplete { .. } if self.is_client => {
                    if qe.fd == self.stream_fd {
                        self.stream_done = true;
                    } else {
                        self.seq_done = true;
                    }
                }
                Event::RecvComplete { len, .. } if !self.is_client => {
                    assert_eq!(len, 16);
                    if qe.fd == self.stream_fd {
                        self.stream_done = true;
                    } else {
                        self.seq_done = true;
                    }
                }
                other => panic!("unexpected event {other:?}"),
            }
        }
    }
    fn is_done(&self) -> bool {
        self.stream_done && self.seq_done
    }
}

#[test]
fn es_api_multiplexes_stream_and_seqpacket() {
    let profile = profiles::fdr_infiniband();
    let mut net = SimNet::new();
    let a = net.add_node(profile.host.clone(), profile.hca.clone());
    let b = net.add_node(profile.host.clone(), profile.hca.clone());
    net.connect_nodes(a, b, profile.link.clone(), 17);

    let mut ctx_a = ExsContext::new(a);
    let mut ctx_b = ExsContext::new(b);
    let cfg = ExsConfig::default();
    let (s_a, s_b) =
        ExsContext::socket_pair(&mut net, &mut ctx_a, &mut ctx_b, SockType::Stream, &cfg);
    let (q_a, q_b) =
        ExsContext::socket_pair(&mut net, &mut ctx_a, &mut ctx_b, SockType::SeqPacket, &cfg);
    assert_eq!(ctx_a.open_sockets(), 2);

    let mr_a = net.with_api(a, |api| ctx_a.exs_mregister(api, 32, Access::NONE));
    let mr_b = net.with_api(b, |api| {
        ctx_b.exs_mregister(api, 32, Access::local_remote_write())
    });

    let mut client = PairApp {
        ctx: Some(ctx_a),
        stream_fd: s_a,
        seq_fd: q_a,
        mr: Some(mr_a),
        is_client: true,
        stream_done: false,
        seq_done: false,
        posted: false,
    };
    let mut server = PairApp {
        ctx: Some(ctx_b),
        stream_fd: s_b,
        seq_fd: q_b,
        mr: Some(mr_b),
        is_client: false,
        stream_done: false,
        seq_done: false,
        posted: false,
    };
    let outcome = net.run(&mut [&mut client, &mut server], SimTime::from_secs(1));
    assert!(outcome.completed, "es-api exchange stalled: {outcome:?}");

    // Verify both payload copies landed at the server.
    let sctx = server.ctx.as_ref().unwrap();
    assert_eq!(sctx.stats(s_b).recvs_completed, 1);
    assert_eq!(sctx.stats(q_b).recvs_completed, 1);
    net.with_api(b, |api| {
        let mut buf = [0u8; 16];
        api.read_mr(mr_b.key, mr_b.addr, &mut buf).unwrap();
        assert_eq!(&buf, b"stream-payload!!");
        api.read_mr(mr_b.key, mr_b.addr + 16, &mut buf).unwrap();
        assert_eq!(&buf, b"stream-payload!!");
    });
}

#[test]
fn tiny_ring_and_tiny_credits_still_complete_verified() {
    // Stress the flow-control machinery end to end with adversarially
    // small resources.
    let spec = BlastSpec {
        cfg: ExsConfig {
            mode: ProtocolMode::Dynamic,
            ring_capacity: 8 << 10,
            credits: 8,
            ..ExsConfig::default()
        },
        outstanding_sends: 4,
        outstanding_recvs: 4,
        sizes: SizeDist::Uniform {
            lo: 1,
            hi: 64 << 10,
        },
        messages: 80,
        verify: VerifyLevel::Full,
        seed: 12,
        ..BlastSpec::new(profiles::fdr_infiniband())
    };
    let report = run_blast(&spec);
    assert!(report.bytes > 0);
    assert!(report.indirect_transfers > 0, "tiny ring forces chunking");
}
