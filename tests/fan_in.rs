//! Fan-in: several clients stream into one server node concurrently.
//! Exercises multi-connection multiplexing through one ES-API context,
//! per-stream integrity under CPU contention at the shared receiver,
//! and link sharing on the server's ingress.

use std::sync::Arc;
use std::time::Duration;

use rdma_stream::blast::fan_in::{expected_digest, fan_in_cfg, fnv1a, payload_byte, FNV_OFFSET};
use rdma_stream::blast::{run_fan_in, FanInSpec, VerifyLevel};
use rdma_stream::exs::{
    ConnStats, DirectPolicy, Event, ExsConfig, ExsContext, ExsFd, MsgFlags, ProtocolMode,
    ReactorConfig, SockType, ThreadReactor,
};
use rdma_stream::simnet::SimTime;
use rdma_stream::verbs::threaded::ThreadNet;
use rdma_stream::verbs::{profiles, Access, HcaConfig, MrInfo, NodeApi, NodeApp, NodeId, SimNet};

const CLIENTS: usize = 3;
const MSGS: usize = 30;
const MSG_LEN: u64 = 64 << 10;

fn pattern(stream: usize, i: u64) -> u8 {
    (i.wrapping_mul(31).wrapping_add(stream as u64 * 7)) as u8
}

struct Client {
    ctx: Option<ExsContext>,
    fd: ExsFd,
    stream_idx: usize,
    mr: Option<MrInfo>,
    sent: usize,
    acked: usize,
    pos: u64,
}

impl Client {
    fn kick(&mut self, api: &mut NodeApi<'_>) {
        // Two outstanding sends.
        while self.sent < MSGS && self.sent - self.acked < 2 {
            let mr = self.mr.unwrap();
            let data: Vec<u8> = (0..MSG_LEN)
                .map(|i| pattern(self.stream_idx, self.pos + i))
                .collect();
            let slot = (self.sent % 2) as u64 * MSG_LEN;
            api.write_mr(mr.key, mr.addr + slot, &data).unwrap();
            self.ctx
                .as_mut()
                .unwrap()
                .exs_send(api, self.fd, &mr, slot, MSG_LEN, self.sent as u64);
            self.pos += MSG_LEN;
            self.sent += 1;
        }
    }
}

impl NodeApp for Client {
    fn on_start(&mut self, api: &mut NodeApi<'_>) {
        self.kick(api);
    }
    fn on_wake(&mut self, api: &mut NodeApi<'_>) {
        self.ctx.as_mut().unwrap().handle_wake(api);
        for qe in self.ctx.as_mut().unwrap().exs_qdequeue() {
            if matches!(qe.event, Event::SendComplete { .. }) {
                self.acked += 1;
            }
        }
        self.kick(api);
    }
    fn is_done(&self) -> bool {
        self.acked == MSGS
    }
}

struct Server {
    ctx: Option<ExsContext>,
    streams: Vec<(ExsFd, MrInfo)>,
    received: Vec<u64>,
    next_id: u64,
    id_stream: std::collections::HashMap<u64, usize>,
}

impl Server {
    fn kick(&mut self, api: &mut NodeApi<'_>) {
        for (idx, &(fd, mr)) in self.streams.iter().enumerate() {
            // One outstanding receive per stream.
            if self.id_stream.values().filter(|&&s| s == idx).count() == 0
                && self.received[idx] < MSGS as u64 * MSG_LEN
            {
                let id = self.next_id;
                self.next_id += 1;
                self.id_stream.insert(id, idx);
                self.ctx
                    .as_mut()
                    .unwrap()
                    .exs_recv(api, fd, &mr, 0, 32 << 10, MsgFlags::NONE, id);
            }
        }
    }
}

impl NodeApp for Server {
    fn on_start(&mut self, api: &mut NodeApi<'_>) {
        self.kick(api);
    }
    fn on_wake(&mut self, api: &mut NodeApi<'_>) {
        self.ctx.as_mut().unwrap().handle_wake(api);
        loop {
            let events = self.ctx.as_mut().unwrap().exs_qdequeue();
            if events.is_empty() {
                break;
            }
            for qe in events {
                if let Event::RecvComplete { id, len } = qe.event {
                    let idx = self.id_stream.remove(&id).expect("stream for recv id");
                    let (_, mr) = self.streams[idx];
                    let mut buf = vec![0u8; len as usize];
                    api.read_mr(mr.key, mr.addr, &mut buf).unwrap();
                    for (i, &b) in buf.iter().enumerate() {
                        assert_eq!(
                            b,
                            pattern(idx, self.received[idx] + i as u64),
                            "stream {idx} corrupted at {}",
                            self.received[idx] + i as u64
                        );
                    }
                    self.received[idx] += len as u64;
                }
            }
            self.kick(api);
        }
    }
    fn is_done(&self) -> bool {
        self.received.iter().all(|&r| r == MSGS as u64 * MSG_LEN)
    }
}

#[test]
fn three_clients_one_server_streams_stay_isolated() {
    let profile = profiles::fdr_infiniband();
    let mut net = SimNet::new();
    net.set_host_seed(4242);
    let server_node = net.add_node(profile.host.clone(), profile.hca.clone());
    let client_nodes: Vec<NodeId> = (0..CLIENTS)
        .map(|_| net.add_node(profile.host.clone(), profile.hca.clone()))
        .collect();
    for &c in &client_nodes {
        net.connect_nodes(c, server_node, profile.link.clone(), c.0 as u64);
    }

    let mut server_ctx = ExsContext::new(server_node);
    let mut clients: Vec<Client> = Vec::new();
    let mut server_streams = Vec::new();
    let cfg = ExsConfig::with_mode(ProtocolMode::Dynamic);

    for (idx, &cnode) in client_nodes.iter().enumerate() {
        let mut cctx = ExsContext::new(cnode);
        let (cfd, sfd) =
            ExsContext::socket_pair(&mut net, &mut cctx, &mut server_ctx, SockType::Stream, &cfg);
        let mr = net.with_api(cnode, |api| {
            cctx.exs_mregister(api, (MSG_LEN * 2) as usize, Access::NONE)
        });
        let smr = net.with_api(server_node, |api| {
            server_ctx.exs_mregister(api, 32 << 10, Access::local_remote_write())
        });
        server_streams.push((sfd, smr));
        clients.push(Client {
            ctx: Some(cctx),
            fd: cfd,
            stream_idx: idx,
            mr: Some(mr),
            sent: 0,
            acked: 0,
            pos: 0,
        });
    }

    let mut server = Server {
        ctx: Some(server_ctx),
        streams: server_streams,
        received: vec![0; CLIENTS],
        next_id: 0,
        id_stream: std::collections::HashMap::new(),
    };

    let mut apps: Vec<&mut dyn NodeApp> = Vec::new();
    apps.push(&mut server);
    for c in clients.iter_mut() {
        apps.push(c);
    }
    let outcome = net.run(&mut apps, SimTime::from_secs(30));
    assert!(outcome.completed, "fan-in stalled: {outcome:?}");

    // Each stream delivered its full, uncorrupted byte sequence.
    for idx in 0..CLIENTS {
        let st = server.ctx.as_ref().unwrap().stats(server.streams[idx].0);
        assert_eq!(st.bytes_received, MSGS as u64 * MSG_LEN, "stream {idx}");
    }
    // The shared receiver worked hard: with one outstanding receive per
    // stream the clients run ahead, so the server pays copy CPU.
    assert!(
        net.cpu_usage(server_node) > 0.3,
        "server CPU {} suspiciously idle",
        net.cpu_usage(server_node)
    );
}

/// Runs the reactor fan-in workload on the real-thread fabric and
/// returns each connection's delivery digest (in connection order)
/// plus the merged client-side (sender) counters. Each server
/// connection keeps `prepost` receives posted ahead of the data, so
/// the Fig. 3 advert gate stays open across message boundaries.
fn threaded_fan_in_digests(
    seed: u64,
    conns: usize,
    msgs: usize,
    msg_len: usize,
    prepost: usize,
) -> (Vec<u64>, ConnStats) {
    let cfg = ExsConfig {
        ring_capacity: 64 << 10,
        credits: 8,
        sq_depth: 16,
        direct: DirectPolicy {
            min_direct_size: 4 << 10,
            ..DirectPolicy::default()
        },
        ..ExsConfig::default()
    };
    let peers_n = conns.min(2);
    let mut net = ThreadNet::new();
    let server = net.add_node(HcaConfig::default());
    let peers: Vec<_> = (0..peers_n)
        .map(|_| net.add_node(HcaConfig::default()))
        .collect();
    for p in &peers {
        net.connect_nodes(p, &server, Duration::ZERO);
    }
    let net = Arc::new(net);
    let reactor = Arc::new(ThreadReactor::new(
        net.clone(),
        server.clone(),
        ReactorConfig::default(),
        &cfg,
        conns,
    ));

    let mut clients = Vec::new();
    let mut servers = Vec::new();
    for idx in 0..conns {
        let (conn, client) = reactor.accept(&peers[idx % peers_n], &cfg);
        clients.push(std::thread::spawn(move || {
            let mr = client.register(msg_len, Access::NONE);
            let mut pos = 0u64;
            for _ in 0..msgs {
                let data: Vec<u8> = (0..msg_len as u64)
                    .map(|i| payload_byte(seed, idx, pos + i))
                    .collect();
                client
                    .node()
                    .with_hca(|h| h.mem_mut().app_write(mr.key, mr.addr, &data))
                    .unwrap();
                let id = client.send(&mr, 0, msg_len as u64);
                client.wait_send(id, Duration::from_secs(30)).expect("send");
                pos += msg_len as u64;
            }
            client.shutdown();
            client // keep alive until the server drained the FIN
        }));
        let reactor = reactor.clone();
        servers.push(std::thread::spawn(move || {
            // One registration per pre-posted slot; keep `prepost`
            // receives outstanding so an advert is always pending when
            // the sender finishes a message (direct-mode re-entry).
            let mrs: Vec<MrInfo> = (0..prepost)
                .map(|_| reactor.register(msg_len, Access::local_remote_write()))
                .collect();
            let mut posted: std::collections::VecDeque<(u64, usize)> =
                std::collections::VecDeque::new();
            for (slot, mr) in mrs.iter().enumerate() {
                let id = reactor.post_recv(conn, mr, 0, msg_len as u32, false);
                posted.push_back((id, slot));
            }
            let mut digest = FNV_OFFSET;
            let mut buf = vec![0u8; msg_len];
            loop {
                let (id, slot) = posted.pop_front().expect("a receive is always posted");
                let len = reactor
                    .wait_recv(conn, id, Duration::from_secs(30))
                    .expect("recv");
                if len == 0 {
                    break;
                }
                let mr = &mrs[slot];
                buf.resize(len as usize, 0);
                reactor
                    .node()
                    .with_hca(|h| h.mem().app_read(mr.key, mr.addr, &mut buf))
                    .unwrap();
                digest = fnv1a(digest, &buf);
                let id = reactor.post_recv(conn, mr, 0, msg_len as u32, false);
                posted.push_back((id, slot));
            }
            digest
        }));
    }
    let digests: Vec<u64> = servers
        .into_iter()
        .map(|h| h.join().expect("server thread"))
        .collect();
    let mut tx = ConnStats::default();
    for h in clients {
        let client = h.join().expect("client thread");
        tx.merge(&client.stats());
        drop(client);
    }
    (digests, tx)
}

/// The same seeded fan-in workload, run through the reactor on the
/// deterministic simulator AND on the real-thread fabric, must deliver
/// byte-for-byte identical per-connection streams (same FNV digest per
/// connection, matching the pattern-derived expectation).
#[test]
fn reactor_fan_in_is_byte_identical_across_backends() {
    const SEED: u64 = 77;
    const CONNS: usize = 8;
    const MSGS: usize = 3;
    const MSG_LEN: usize = 4096;

    let spec = FanInSpec {
        client_nodes: 2,
        msgs_per_conn: MSGS,
        msg_len: MSG_LEN as u64,
        verify: VerifyLevel::Full,
        seed: SEED,
        ..FanInSpec::new(profiles::fdr_infiniband(), CONNS)
    };
    let sim = run_fan_in(&spec);
    let (threaded, _tx) = threaded_fan_in_digests(SEED, CONNS, MSGS, MSG_LEN, 4);

    assert_eq!(sim.digests.len(), CONNS);
    assert_eq!(threaded.len(), CONNS);
    for (idx, &thr) in threaded.iter().enumerate() {
        let want = expected_digest(SEED, idx, (MSGS * MSG_LEN) as u64);
        assert_eq!(sim.digests[idx], want, "sim conn {idx} delivery");
        assert_eq!(thr, want, "threaded conn {idx} delivery");
        assert_eq!(sim.digests[idx], thr, "backends disagree on conn {idx}");
    }
    // Determinism on the simulator: the same seed reproduces the run
    // event for event.
    let again = run_fan_in(&spec);
    assert_eq!(again.events, sim.events, "sim run is not reproducible");
    assert_eq!(again.digests, sim.digests);
}

/// The fair-share fabric model changes only *when* bytes arrive, never
/// which bytes: the same seeded fan-in delivers per-connection streams
/// digest-identical to the FIFO simulator run AND to the real-thread
/// backend (which has no fabric model at all).
#[test]
fn fair_share_fan_in_is_byte_identical_across_backends() {
    use rdma_stream::verbs::{FabricModel, FairShareConfig};

    const SEED: u64 = 77;
    const CONNS: usize = 8;
    const MSGS: usize = 3;
    const MSG_LEN: usize = 4096;

    let base = FanInSpec {
        client_nodes: 2,
        msgs_per_conn: MSGS,
        msg_len: MSG_LEN as u64,
        verify: VerifyLevel::Full,
        seed: SEED,
        ..FanInSpec::new(profiles::fdr_infiniband(), CONNS)
    };
    let fifo = run_fan_in(&base);
    let fair = run_fan_in(&FanInSpec {
        fabric: FabricModel::FairShare(FairShareConfig::new(0xFA1B)),
        ..base
    });
    let (threaded, _tx) = threaded_fan_in_digests(SEED, CONNS, MSGS, MSG_LEN, 4);

    assert_eq!(fifo.digests, fair.digests, "fabric model altered bytes");
    for (idx, &thr) in threaded.iter().enumerate() {
        let want = expected_digest(SEED, idx, (MSGS * MSG_LEN) as u64);
        assert_eq!(fair.digests[idx], want, "fair-share conn {idx} delivery");
        assert_eq!(thr, want, "threaded conn {idx} delivery");
        assert_eq!(fair.digests[idx], thr, "backends disagree on conn {idx}");
    }
    // The model did engage: contention telemetry is present.
    let stats = fair.fabric.expect("fair-share run reports fabric stats");
    assert!(stats.flows.iter().any(|f| f.bytes > 0));
}

/// The pooled buffer path (pin-down cache leases instead of up-front
/// registrations) must be invisible in the delivered bytes: the same
/// seeded run through pools matches the PR 2 digests of the unpooled
/// simulator run and the real-thread run alike.
#[test]
fn pooled_fan_in_matches_unpooled_and_threaded_digests() {
    const SEED: u64 = 77;
    const CONNS: usize = 8;
    const MSGS: usize = 3;
    const MSG_LEN: usize = 4096;

    let pooled = run_fan_in(&FanInSpec {
        client_nodes: 2,
        msgs_per_conn: MSGS,
        msg_len: MSG_LEN as u64,
        verify: VerifyLevel::Full,
        pooled: true,
        seed: SEED,
        ..FanInSpec::new(profiles::fdr_infiniband(), CONNS)
    });
    let (threaded, _tx) = threaded_fan_in_digests(SEED, CONNS, MSGS, MSG_LEN, 4);

    for (idx, &thr) in threaded.iter().enumerate() {
        let want = expected_digest(SEED, idx, (MSGS * MSG_LEN) as u64);
        assert_eq!(pooled.digests[idx], want, "pooled sim conn {idx} delivery");
        assert_eq!(thr, want, "threaded conn {idx} delivery");
    }
    let pool = pooled.pool.expect("pooled run reports pool counters");
    assert!(
        pool.hits > 0,
        "send leases never hit the pin-down cache: {pool:?}"
    );
    assert_eq!(pool.evictions, 0, "default budget should not evict here");
}

/// Tentpole acceptance: with pre-posted receive queues keeping the
/// Fig. 3 advert gate open and the sender resync policy enabled,
/// large-message reactor fan-in recovers zero-copy on BOTH backends —
/// at least 90% of payload bytes travel direct at 8 and at 64
/// connections, and recovering it costs no throughput versus forcing
/// every byte through the bounce ring.
#[test]
fn large_message_fan_in_recovers_direct_mode_on_both_backends() {
    const SEED: u64 = 99;
    const MSGS: usize = 8;
    const MSG_LEN: usize = 64 << 10;

    for &conns in &[8usize, 64] {
        // Deterministic simulator backend, full payload verify.
        let spec = FanInSpec {
            client_nodes: 2,
            msgs_per_conn: MSGS,
            msg_len: MSG_LEN as u64,
            verify: VerifyLevel::Full,
            seed: SEED,
            ..FanInSpec::new(profiles::fdr_infiniband(), conns)
        };
        let report = run_fan_in(&spec);
        for (idx, &d) in report.digests.iter().enumerate() {
            assert_eq!(
                d,
                expected_digest(SEED, idx, (MSGS * MSG_LEN) as u64),
                "sim conn {idx} delivery at {conns} conns"
            );
        }
        assert!(
            report.direct_byte_ratio() >= 0.9,
            "sim {conns} conns stuck indirect: direct_byte_ratio {:.4}, tx {:?}",
            report.direct_byte_ratio(),
            report.aggregate_tx
        );
        assert!(
            report.aggregate_tx.resyncs_completed > 0,
            "policy never resynced at {conns} conns: {:?}",
            report.aggregate_tx
        );
        // The counters the tentpole promises are in the JSON snapshot.
        let json = report.to_json();
        for key in [
            "\"mode_switches\":",
            "\"resyncs_attempted\":",
            "\"resyncs_completed\":",
            "\"advert_queue_peak\":",
            "\"advert_queue_mean\":",
            "\"aggregate_tx\":",
        ] {
            assert!(json.contains(key), "snapshot lost {key}");
        }

        // Recovering zero-copy must not cost throughput: compare
        // against the same run with the policy off and every byte
        // forced through the intermediate ring.
        let mut indirect_cfg = fan_in_cfg();
        indirect_cfg.mode = ProtocolMode::IndirectOnly;
        indirect_cfg.direct = DirectPolicy::default();
        let baseline = run_fan_in(&FanInSpec {
            cfg: indirect_cfg,
            ..spec.clone()
        });
        assert!(
            report.throughput_mbps() >= 0.9 * baseline.throughput_mbps(),
            "direct-mode recovery slower than indirect-only at {conns} conns: \
             {:.1} vs {:.1} Mbit/s",
            report.throughput_mbps(),
            baseline.throughput_mbps()
        );

        // Real-thread backend: same workload, same bar.
        let msgs = if conns == 8 { MSGS } else { 4 };
        let (digests, tx) = threaded_fan_in_digests(SEED, conns, msgs, MSG_LEN, 4);
        for (idx, &d) in digests.iter().enumerate() {
            assert_eq!(
                d,
                expected_digest(SEED, idx, (msgs * MSG_LEN) as u64),
                "threaded conn {idx} delivery at {conns} conns"
            );
        }
        assert!(
            tx.direct_byte_ratio() >= 0.9,
            "threaded {conns} conns stuck indirect: direct_byte_ratio {:.4}, tx {tx:?}",
            tx.direct_byte_ratio()
        );
    }
}
