//! Fan-in: several clients stream into one server node concurrently.
//! Exercises multi-connection multiplexing through one ES-API context,
//! per-stream integrity under CPU contention at the shared receiver,
//! and link sharing on the server's ingress.

use rdma_stream::exs::{Event, ExsConfig, ExsContext, ExsFd, MsgFlags, ProtocolMode, SockType};
use rdma_stream::simnet::SimTime;
use rdma_stream::verbs::{profiles, Access, MrInfo, NodeApi, NodeApp, NodeId, SimNet};

const CLIENTS: usize = 3;
const MSGS: usize = 30;
const MSG_LEN: u64 = 64 << 10;

fn pattern(stream: usize, i: u64) -> u8 {
    (i.wrapping_mul(31).wrapping_add(stream as u64 * 7)) as u8
}

struct Client {
    ctx: Option<ExsContext>,
    fd: ExsFd,
    stream_idx: usize,
    mr: Option<MrInfo>,
    sent: usize,
    acked: usize,
    pos: u64,
}

impl Client {
    fn kick(&mut self, api: &mut NodeApi<'_>) {
        // Two outstanding sends.
        while self.sent < MSGS && self.sent - self.acked < 2 {
            let mr = self.mr.unwrap();
            let data: Vec<u8> = (0..MSG_LEN)
                .map(|i| pattern(self.stream_idx, self.pos + i))
                .collect();
            let slot = (self.sent % 2) as u64 * MSG_LEN;
            api.write_mr(mr.key, mr.addr + slot, &data).unwrap();
            self.ctx
                .as_mut()
                .unwrap()
                .exs_send(api, self.fd, &mr, slot, MSG_LEN, self.sent as u64);
            self.pos += MSG_LEN;
            self.sent += 1;
        }
    }
}

impl NodeApp for Client {
    fn on_start(&mut self, api: &mut NodeApi<'_>) {
        self.kick(api);
    }
    fn on_wake(&mut self, api: &mut NodeApi<'_>) {
        self.ctx.as_mut().unwrap().handle_wake(api);
        for qe in self.ctx.as_mut().unwrap().exs_qdequeue() {
            if matches!(qe.event, Event::SendComplete { .. }) {
                self.acked += 1;
            }
        }
        self.kick(api);
    }
    fn is_done(&self) -> bool {
        self.acked == MSGS
    }
}

struct Server {
    ctx: Option<ExsContext>,
    streams: Vec<(ExsFd, MrInfo)>,
    received: Vec<u64>,
    next_id: u64,
    id_stream: std::collections::HashMap<u64, usize>,
}

impl Server {
    fn kick(&mut self, api: &mut NodeApi<'_>) {
        for (idx, &(fd, mr)) in self.streams.iter().enumerate() {
            // One outstanding receive per stream.
            if self.id_stream.values().filter(|&&s| s == idx).count() == 0
                && self.received[idx] < MSGS as u64 * MSG_LEN
            {
                let id = self.next_id;
                self.next_id += 1;
                self.id_stream.insert(id, idx);
                self.ctx
                    .as_mut()
                    .unwrap()
                    .exs_recv(api, fd, &mr, 0, 32 << 10, MsgFlags::NONE, id);
            }
        }
    }
}

impl NodeApp for Server {
    fn on_start(&mut self, api: &mut NodeApi<'_>) {
        self.kick(api);
    }
    fn on_wake(&mut self, api: &mut NodeApi<'_>) {
        self.ctx.as_mut().unwrap().handle_wake(api);
        loop {
            let events = self.ctx.as_mut().unwrap().exs_qdequeue();
            if events.is_empty() {
                break;
            }
            for qe in events {
                if let Event::RecvComplete { id, len } = qe.event {
                    let idx = self.id_stream.remove(&id).expect("stream for recv id");
                    let (_, mr) = self.streams[idx];
                    let mut buf = vec![0u8; len as usize];
                    api.read_mr(mr.key, mr.addr, &mut buf).unwrap();
                    for (i, &b) in buf.iter().enumerate() {
                        assert_eq!(
                            b,
                            pattern(idx, self.received[idx] + i as u64),
                            "stream {idx} corrupted at {}",
                            self.received[idx] + i as u64
                        );
                    }
                    self.received[idx] += len as u64;
                }
            }
            self.kick(api);
        }
    }
    fn is_done(&self) -> bool {
        self.received.iter().all(|&r| r == MSGS as u64 * MSG_LEN)
    }
}

#[test]
fn three_clients_one_server_streams_stay_isolated() {
    let profile = profiles::fdr_infiniband();
    let mut net = SimNet::new();
    net.set_host_seed(4242);
    let server_node = net.add_node(profile.host.clone(), profile.hca.clone());
    let client_nodes: Vec<NodeId> = (0..CLIENTS)
        .map(|_| net.add_node(profile.host.clone(), profile.hca.clone()))
        .collect();
    for &c in &client_nodes {
        net.connect_nodes(c, server_node, profile.link.clone(), c.0 as u64);
    }

    let mut server_ctx = ExsContext::new(server_node);
    let mut clients: Vec<Client> = Vec::new();
    let mut server_streams = Vec::new();
    let cfg = ExsConfig::with_mode(ProtocolMode::Dynamic);

    for (idx, &cnode) in client_nodes.iter().enumerate() {
        let mut cctx = ExsContext::new(cnode);
        let (cfd, sfd) =
            ExsContext::socket_pair(&mut net, &mut cctx, &mut server_ctx, SockType::Stream, &cfg);
        let mr = net.with_api(cnode, |api| {
            cctx.exs_mregister(api, (MSG_LEN * 2) as usize, Access::NONE)
        });
        let smr = net.with_api(server_node, |api| {
            server_ctx.exs_mregister(api, 32 << 10, Access::local_remote_write())
        });
        server_streams.push((sfd, smr));
        clients.push(Client {
            ctx: Some(cctx),
            fd: cfd,
            stream_idx: idx,
            mr: Some(mr),
            sent: 0,
            acked: 0,
            pos: 0,
        });
    }

    let mut server = Server {
        ctx: Some(server_ctx),
        streams: server_streams,
        received: vec![0; CLIENTS],
        next_id: 0,
        id_stream: std::collections::HashMap::new(),
    };

    let mut apps: Vec<&mut dyn NodeApp> = Vec::new();
    apps.push(&mut server);
    for c in clients.iter_mut() {
        apps.push(c);
    }
    let outcome = net.run(&mut apps, SimTime::from_secs(30));
    assert!(outcome.completed, "fan-in stalled: {outcome:?}");

    // Each stream delivered its full, uncorrupted byte sequence.
    for idx in 0..CLIENTS {
        let st = server.ctx.as_ref().unwrap().stats(server.streams[idx].0);
        assert_eq!(st.bytes_received, MSGS as u64 * MSG_LEN, "stream {idx}");
    }
    // The shared receiver worked hard: with one outstanding receive per
    // stream the clients run ahead, so the server pays copy CPU.
    assert!(
        net.cpu_usage(server_node) > 0.3,
        "server CPU {} suspiciously idle",
        net.cpu_usage(server_node)
    );
}
