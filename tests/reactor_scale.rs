//! Reactor scale: one node serving very many EXS streams.
//!
//! The reactor exists so a server does not need a CQ-polling loop (or a
//! thread) per connection. These tests drive it at the scales the
//! design targets:
//!
//! * 1000 concurrent streams on the deterministic simulator, through
//!   one reactor over two shared CQs, with full payload verification —
//!   per-stream in-order delivery at thousand-way fan-in;
//! * 64 concurrent streams on the real-thread fabric through a
//!   [`ThreadReactor`], whose single service thread replaces the 64
//!   per-socket service threads the blocking API would burn.
//!
//! Memory stays bounded by construction: each connection runs a small
//! fixed ring and credit budget ([`fan_in_cfg`]-style), and the server
//! keeps exactly one outstanding receive per stream.

use std::sync::Arc;
use std::time::Duration;

use rdma_stream::blast::fan_in::{expected_digest, fnv1a, payload_byte, FNV_OFFSET};
use rdma_stream::blast::{run_fan_in, FanInSpec, VerifyLevel};
use rdma_stream::exs::{ExsConfig, ReactorConfig, ThreadReactor};
use rdma_stream::verbs::threaded::ThreadNet;
use rdma_stream::verbs::{profiles, Access, HcaConfig};

#[test]
fn thousand_sim_streams_through_one_reactor() {
    const CONNS: usize = 1000;
    const MSGS: usize = 2;
    const MSG_LEN: u64 = 4096;
    let spec = FanInSpec {
        cfg: ExsConfig {
            ring_capacity: 16 << 10,
            credits: 8,
            sq_depth: 8,
            ..ExsConfig::default()
        },
        client_nodes: 16,
        msgs_per_conn: MSGS,
        msg_len: MSG_LEN,
        verify: VerifyLevel::Full,
        seed: 11,
        ..FanInSpec::new(profiles::fdr_infiniband(), CONNS)
    };
    let report = run_fan_in(&spec);

    assert_eq!(report.conns, CONNS);
    assert_eq!(report.bytes, CONNS as u64 * MSGS as u64 * MSG_LEN);
    assert_eq!(report.reactor.conns_added, CONNS as u64);
    assert_eq!(report.reactor.orphan_cqes, 0);
    // Per-stream in-order delivery, byte for byte (verify=Full already
    // asserted the pattern during the run; the digests re-prove order).
    for (idx, &d) in report.digests.iter().enumerate() {
        assert_eq!(
            d,
            expected_digest(spec.seed, idx, MSGS as u64 * MSG_LEN),
            "stream {idx} delivery digest"
        );
    }
    // The shared CQs actually amortized: completions of many streams
    // arrived in single drains.
    assert!(
        report.reactor.max_cq_batch > 1,
        "expected multi-completion drains, got max batch {}",
        report.reactor.max_cq_batch
    );
    assert!(report.throughput_mbps() > 0.0);
}

#[test]
fn sixty_four_threaded_streams_one_service_thread() {
    const CONNS: usize = 64;
    const PEERS: usize = 4;
    const MSGS: usize = 4;
    const MSG_LEN: usize = 2048;
    const SEED: u64 = 23;
    let cfg = ExsConfig {
        ring_capacity: 64 << 10,
        credits: 8,
        sq_depth: 16,
        ..ExsConfig::default()
    };

    let mut net = ThreadNet::new();
    let server = net.add_node(HcaConfig::default());
    let peers: Vec<_> = (0..PEERS)
        .map(|_| net.add_node(HcaConfig::default()))
        .collect();
    for p in &peers {
        net.connect_nodes(p, &server, Duration::ZERO);
    }
    let net = Arc::new(net);
    let reactor = Arc::new(ThreadReactor::new(
        net.clone(),
        server.clone(),
        ReactorConfig::default(),
        &cfg,
        CONNS,
    ));

    let mut client_handles = Vec::new();
    let mut server_handles = Vec::new();
    for idx in 0..CONNS {
        let (conn, client) = reactor.accept(&peers[idx % PEERS], &cfg);

        client_handles.push(std::thread::spawn(move || {
            let mr = client.register(MSG_LEN, Access::NONE);
            let mut pos = 0u64;
            for _ in 0..MSGS {
                let data: Vec<u8> = (0..MSG_LEN as u64)
                    .map(|i| payload_byte(SEED, idx, pos + i))
                    .collect();
                client
                    .node()
                    .with_hca(|h| h.mem_mut().app_write(mr.key, mr.addr, &data))
                    .unwrap();
                let id = client.send(&mr, 0, MSG_LEN as u64);
                client
                    .wait_send(id, Duration::from_secs(30))
                    .expect("send completion");
                pos += MSG_LEN as u64;
            }
            client.shutdown();
            // Keep the endpoint (and its FIN-flushing service thread)
            // alive until the server has drained everything.
            client
        }));

        let reactor = reactor.clone();
        server_handles.push(std::thread::spawn(move || {
            let mr = reactor.register(MSG_LEN, Access::local_remote_write());
            let mut digest = FNV_OFFSET;
            let mut received = 0u64;
            let mut buf = vec![0u8; MSG_LEN];
            loop {
                let id = reactor.post_recv(conn, &mr, 0, MSG_LEN as u32, false);
                let len = reactor
                    .wait_recv(conn, id, Duration::from_secs(30))
                    .expect("recv completion");
                if len == 0 {
                    break;
                }
                buf.resize(len as usize, 0);
                reactor
                    .node()
                    .with_hca(|h| h.mem().app_read(mr.key, mr.addr, &mut buf))
                    .unwrap();
                digest = fnv1a(digest, &buf);
                received += len as u64;
            }
            assert_eq!(received, (MSGS * MSG_LEN) as u64, "conn {idx} length");
            assert_eq!(
                digest,
                expected_digest(SEED, idx, (MSGS * MSG_LEN) as u64),
                "conn {idx} delivered bytes out of order or corrupted"
            );
        }));
    }

    for h in server_handles {
        h.join().expect("server side of a connection panicked");
    }
    let stats = reactor.aggregate_stats();
    assert_eq!(stats.bytes_received, (CONNS * MSGS * MSG_LEN) as u64);
    let rs = reactor.reactor_stats();
    assert_eq!(rs.conns_added, CONNS as u64);
    assert_eq!(rs.orphan_cqes, 0);
    // Only now drop the client endpoints (stopping their service threads).
    for h in client_handles {
        drop(h.join().expect("client side of a connection panicked"));
    }
}
