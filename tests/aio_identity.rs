//! Cross-backend / cross-consumption-model identity for `exs::aio`:
//! the async front-end must deliver byte-for-byte what the callback
//! reactor loop delivers, and the same async program must produce
//! identical digests on the deterministic simulator and the
//! real-thread fabric. FNV-1a folds chunk-by-chunk, so digest equality
//! pins the byte *order* as well as the contents, independent of how
//! `recv_some` happens to slice the stream.

use std::cell::RefCell;
use std::rc::Rc;
use std::sync::Arc;

use rdma_stream::blast::fan_in::expected_digest;
use rdma_stream::blast::{run_fan_in, FanInSpec, VerifyLevel};
use rdma_stream::exs::threaded::connect_sockets_shared;
use rdma_stream::exs::{
    Executor, ExsConfig, ExsError, Reactor, ReactorConfig, SimDriver, StreamSocket,
};
use rdma_stream::simnet::SimTime;
use rdma_stream::verbs::{profiles, HcaConfig, NodeApp, NodeId, SimNet, ThreadNet};

const CONNS: usize = 4;
const ROUNDS: usize = 3;
const MSG: usize = 4096;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

fn fnv1a(mut hash: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    hash
}

fn pattern(conn: usize, round: usize, i: usize) -> u8 {
    (i.wrapping_mul(31) ^ conn.wrapping_mul(7) ^ round.wrapping_mul(131)) as u8
}

/// What each client's echo digest must be, computed without any
/// transport: the echo returns exactly the bytes sent, in order.
fn expected_echo_digest(conn: usize) -> u64 {
    let mut h = FNV_OFFSET;
    for round in 0..ROUNDS {
        let data: Vec<u8> = (0..MSG).map(|i| pattern(conn, round, i)).collect();
        h = fnv1a(h, &data);
    }
    h
}

fn echo_cfg() -> ExsConfig {
    ExsConfig {
        ring_capacity: 64 << 10,
        credits: 8,
        sq_depth: 16,
        ..ExsConfig::default()
    }
}

/// The async echo client body, shared by both backends: ping-pong
/// `ROUNDS` messages, folding the digest of every echoed chunk in
/// arrival order, then exchange clean end-of-stream.
async fn echo_client(stream: rdma_stream::exs::AsyncStream, conn: usize, digest: Rc<RefCell<u64>>) {
    for round in 0..ROUNDS {
        let data: Vec<u8> = (0..MSG).map(|i| pattern(conn, round, i)).collect();
        stream.send_all(data).await.expect("client send");
        let mut got = 0;
        while got < MSG {
            let chunk = stream.recv_some(MSG - got).await.expect("client recv");
            got += chunk.len();
            let mut d = digest.borrow_mut();
            *d = fnv1a(*d, &chunk);
        }
    }
    stream.shutdown().await.expect("client shutdown");
    match stream.recv_some(1).await {
        Err(ExsError::Eof) => {}
        other => panic!("conn {conn} expected EOF, got {other:?}"),
    }
}

/// The async echo server body: await bytes, send them straight back,
/// half-close after the client's EOF.
async fn echo_server(stream: rdma_stream::exs::AsyncStream) {
    loop {
        match stream.recv_some(MSG).await {
            Ok(bytes) => stream.send_all(bytes).await.expect("echo send"),
            Err(ExsError::Eof) => break,
            Err(e) => panic!("echo failed: {e}"),
        }
    }
    stream.shutdown().await.expect("echo shutdown");
}

/// Runs the echo workload on the simulator; returns per-conn digests.
fn sim_echo_digests() -> Vec<u64> {
    let cfg = echo_cfg();
    let profile = profiles::fdr_infiniband();
    let mut net = SimNet::new();
    net.set_host_seed(42);
    let server_node = net.add_node(profile.host.clone(), profile.hca.clone());
    let client_nodes: Vec<NodeId> = (0..CONNS)
        .map(|_| net.add_node(profile.host.clone(), profile.hca.clone()))
        .collect();
    for (i, &c) in client_nodes.iter().enumerate() {
        net.connect_nodes(c, server_node, profile.link.clone(), i as u64);
    }

    let per_conn = cfg.sq_depth * 2 + cfg.credits as usize * 2;
    let (send_cq, recv_cq) = net.with_api(server_node, |api| {
        (
            api.create_cq(per_conn * CONNS),
            api.create_cq(per_conn * CONNS),
        )
    });
    let mut server_reactor = Reactor::new(send_cq, recv_cq, ReactorConfig::default());

    let mut clients = Vec::with_capacity(CONNS);
    for (idx, &cnode) in client_nodes.iter().enumerate() {
        let (csock, ssock) =
            StreamSocket::pair_shared(&mut net, cnode, server_node, send_cq, recv_cq, &cfg);
        let conn = server_reactor.accept(ssock);
        clients.push((idx, csock, conn));
    }

    let server_ex = Executor::new(server_reactor);
    let digests: Vec<Rc<RefCell<u64>>> = (0..CONNS)
        .map(|_| Rc::new(RefCell::new(FNV_OFFSET)))
        .collect();
    let mut client_drivers = Vec::with_capacity(CONNS);
    for (idx, csock, conn) in clients {
        let stream = server_ex.handle().stream_with(conn, MSG as u32, 2);
        server_ex.handle().spawn(echo_server(stream));

        let mut reactor = Reactor::new(csock.send_cq(), csock.recv_cq(), ReactorConfig::default());
        let cconn = reactor.accept(csock);
        let ex = Executor::new(reactor);
        let stream = ex.handle().stream_with(cconn, MSG as u32, 2);
        ex.handle()
            .spawn(echo_client(stream, idx, Rc::clone(&digests[idx])));
        client_drivers.push(SimDriver::new(ex));
    }
    let mut server = SimDriver::new(server_ex);

    let mut apps: Vec<&mut dyn NodeApp> = Vec::with_capacity(1 + CONNS);
    apps.push(&mut server);
    for d in client_drivers.iter_mut() {
        apps.push(d);
    }
    let outcome = net.run(&mut apps, SimTime::from_secs(30));
    assert!(outcome.completed, "sim echo stalled: {outcome:?}");
    assert_eq!(server.executor_ref().stats().tasks_completed, CONNS as u64);

    digests.into_iter().map(|d| *d.borrow()).collect()
}

/// Runs the identical workload on the real-thread fabric: one server
/// thread with all echo tasks on a shared-CQ executor, one thread per
/// client.
fn threaded_echo_digests() -> Vec<u64> {
    let cfg = echo_cfg();
    let mut net = ThreadNet::new();
    let server_node = net.add_node(HcaConfig::default());
    let client_nodes: Vec<_> = (0..CONNS)
        .map(|_| net.add_node(HcaConfig::default()))
        .collect();
    for c in &client_nodes {
        net.connect_nodes(c, &server_node, std::time::Duration::from_micros(20));
    }
    let per_conn = cfg.sq_depth * 2 + cfg.credits as usize * 2;
    let (scq, rcq) =
        server_node.with_hca(|h| (h.create_cq(per_conn * CONNS), h.create_cq(per_conn * CONNS)));
    let mut server_reactor = Reactor::new(scq, rcq, ReactorConfig::default());
    let mut client_socks = Vec::with_capacity(CONNS);
    let mut server_conns = Vec::with_capacity(CONNS);
    for c in &client_nodes {
        let (csock, ssock) = connect_sockets_shared(c, &server_node, &cfg, None, Some((scq, rcq)));
        server_conns.push(server_reactor.accept(ssock));
        client_socks.push(csock);
    }
    let net = Arc::new(net);

    let server = {
        let net = Arc::clone(&net);
        let node = Arc::clone(&server_node);
        std::thread::spawn(move || {
            let mut ex = Executor::new(server_reactor);
            for &conn in &server_conns {
                let stream = ex.handle().stream_with(conn, MSG as u32, 2);
                ex.handle().spawn(echo_server(stream));
            }
            ex.run_threaded(&net, &node);
            ex.stats().tasks_completed
        })
    };
    let mut joins = Vec::with_capacity(CONNS);
    for (idx, (csock, cnode)) in client_socks.into_iter().zip(client_nodes).enumerate() {
        let net = Arc::clone(&net);
        joins.push(std::thread::spawn(move || {
            let mut reactor =
                Reactor::new(csock.send_cq(), csock.recv_cq(), ReactorConfig::default());
            let conn = reactor.accept(csock);
            let mut ex = Executor::new(reactor);
            let stream = ex.handle().stream_with(conn, MSG as u32, 2);
            let digest = Rc::new(RefCell::new(FNV_OFFSET));
            ex.handle()
                .spawn(echo_client(stream, idx, Rc::clone(&digest)));
            ex.run_threaded(&net, &cnode);
            let d = *digest.borrow();
            d
        }));
    }

    let digests: Vec<u64> = joins
        .into_iter()
        .map(|j| j.join().expect("client thread"))
        .collect();
    assert_eq!(server.join().expect("server thread"), CONNS as u64);
    net.quiesce();
    digests
}

/// The async fan-in server must deliver exactly what the callback
/// reactor server delivers — per-connection digests, byte counts, and
/// the closed-form expected digest all agree.
#[test]
fn async_fan_in_matches_callback_model() {
    let base = FanInSpec {
        msgs_per_conn: 5,
        msg_len: 16 << 10,
        verify: VerifyLevel::Full,
        client_nodes: 3,
        ..FanInSpec::new(profiles::fdr_infiniband(), 6)
    };
    let aio_spec = FanInSpec {
        aio: true,
        ..base.clone()
    };
    let plain = run_fan_in(&base);
    let aio = run_fan_in(&aio_spec);
    assert_eq!(
        plain.digests, aio.digests,
        "consumption model changed bytes"
    );
    assert_eq!(plain.bytes, aio.bytes);
    for (i, &d) in aio.digests.iter().enumerate() {
        assert_eq!(d, expected_digest(base.seed, i, 5 * (16 << 10)));
    }
    let stats = aio.aio.as_ref().expect("aio run reports executor stats");
    assert_eq!(stats.tasks_completed, 6);
}

/// The same async echo program produces identical digests on the
/// simulator and on real threads, and both match the closed form.
#[test]
fn async_echo_identical_across_backends() {
    let sim = sim_echo_digests();
    let thr = threaded_echo_digests();
    let want: Vec<u64> = (0..CONNS).map(expected_echo_digest).collect();
    assert_eq!(sim, want, "simulator echo digests drifted from spec");
    assert_eq!(thr, want, "threaded echo digests drifted from spec");
    assert_eq!(sim, thr);
}
