//! Minimal offline stand-in for `proptest`.
//!
//! This build environment has no registry access, so the workspace
//! vendors the subset of proptest it uses: the [`Strategy`] trait with
//! uniform integer/bool/tuple/vec/map/union strategies, the
//! [`proptest!`]/[`prop_oneof!`]/[`prop_assert*`] macros, and
//! [`ProptestConfig::with_cases`]. Inputs are generated from a
//! deterministic per-test, per-case RNG so failures reproduce across
//! runs. Differences from the real crate: no shrinking (a failing case
//! reports its inputs via the panic message Debug formatting where the
//! test includes them), and no regression-file persistence (the
//! `*.proptest-regressions` files in the tree are inert).

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Test-runner plumbing: the deterministic RNG behind every strategy.
pub mod test_runner {
    /// SplitMix64-based deterministic RNG, seeded per test and case.
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// RNG for one test case: seed derived from the test name and
        /// case index so every run explores the same inputs.
        pub fn for_case(test_name: &str, case: u32) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in test_name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng {
                state: h ^ ((case as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
            }
        }

        /// Next raw 64-bit value (SplitMix64).
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform value below `bound` (`bound` 0 yields 0).
        pub fn below(&mut self, bound: u64) -> u64 {
            if bound == 0 {
                0
            } else {
                // Modulo bias is irrelevant for test-input generation.
                self.next_u64() % bound
            }
        }
    }
}

use test_runner::TestRng;

/// A source of random values of one type.
///
/// Object-safe core (`sample`); combinators live on `Sized` adapters.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (used by [`prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        (**self).sample(rng)
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                (self.start as u64).wrapping_add(rng.below(span)) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start() as u64, *self.end() as u64);
                assert!(lo <= hi, "empty range strategy");
                let span = hi - lo;
                if span == u64::MAX {
                    rng.next_u64() as $t
                } else {
                    lo.wrapping_add(rng.below(span + 1)) as $t
                }
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($(($($s:ident / $idx:tt),+);)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A / 0);
    (A / 0, B / 1);
    (A / 0, B / 1, C / 2);
    (A / 0, B / 1, C / 2, D / 3);
    (A / 0, B / 1, C / 2, D / 3, E / 4);
}

/// Types with a canonical full-domain strategy ([`any`]).
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Full-domain strategy for `T` (`any::<u64>()` etc.).
pub struct Any<T> {
    _marker: std::marker::PhantomData<fn() -> T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Builds the full-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

/// Weighted union of same-valued strategies (backs [`prop_oneof!`]).
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total: u64,
}

impl<T> Union<T> {
    /// Builds a union; weights must sum to a positive value.
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        let total: u64 = arms.iter().map(|(w, _)| *w as u64).sum();
        assert!(total > 0, "prop_oneof! needs a positive total weight");
        Union { arms, total }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.below(self.total);
        for (w, s) in &self.arms {
            if pick < *w as u64 {
                return s.sample(rng);
            }
            pick -= *w as u64;
        }
        unreachable!("weights exhausted")
    }
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{SizeRange, Strategy, TestRng};

    /// Strategy for vectors with lengths drawn from a [`SizeRange`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max - self.size.min) as u64;
            let len = self.size.min + rng.below(span + 1) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// Vector strategy: each element from `element`, length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Inclusive length bounds for collection strategies.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    /// Smallest admissible length.
    pub min: usize,
    /// Largest admissible length.
    pub max: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange {
            min: *r.start(),
            max: *r.end(),
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n }
    }
}

/// Per-`proptest!`-block configuration.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of random cases each test runs.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Defines `#[test]` functions whose arguments are drawn from
/// strategies: `fn name(x in strategy, ...) { body }`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest! { @cfg($cfg) $($rest)* }
    };
    (@cfg($cfg:expr) $(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),* $(,)?) $body:block $($rest:tt)*) => {
        $(#[$meta])*
        #[test]
        fn $name() {
            let cfg: $crate::ProptestConfig = $cfg;
            for case in 0..cfg.cases {
                let mut __proptest_rng = $crate::test_runner::TestRng::for_case(
                    concat!(module_path!(), "::", stringify!($name)),
                    case,
                );
                $(let $arg = $crate::Strategy::sample(&($strat), &mut __proptest_rng);)*
                $body
            }
        }
        $crate::proptest! { @cfg($cfg) $($rest)* }
    };
    (@cfg($cfg:expr)) => {};
    ($($rest:tt)*) => {
        $crate::proptest! { @cfg($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// `assert!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// `assert_eq!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// `assert_ne!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Weighted choice between strategies yielding the same type:
/// `prop_oneof![2 => a, 3 => b]` (weights optional).
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $(($weight as u32, $crate::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::prop_oneof![$(1 => $strat),+]
    };
}

/// The glob-importable surface (`use proptest::prelude::*`).
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy,
    };

    /// Alias matching `proptest::prelude::prop`.
    pub mod prop {
        pub use crate::collection;
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn determinism() {
        let mut a = crate::test_runner::TestRng::for_case("t", 3);
        let mut b = crate::test_runner::TestRng::for_case("t", 3);
        assert_eq!(a.next_u64(), b.next_u64());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        fn ranges_stay_in_bounds(x in 5u32..10, y in 0u8..=255, flag in any::<bool>()) {
            prop_assert!((5..10).contains(&x));
            let _ = (y, flag);
        }

        fn vec_lengths_respected(v in crate::collection::vec(1u64..100, 2..6)) {
            prop_assert!((2..6).contains(&v.len()));
            prop_assert!(v.iter().all(|&x| (1..100).contains(&x)));
        }

        fn oneof_and_map(v in prop_oneof![2 => (1u16..5).prop_map(|x| x as u32), 1 => Just(99u32)]) {
            prop_assert!(v == 99 || (1..5).contains(&v));
        }
    }
}
