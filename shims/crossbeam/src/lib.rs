//! Minimal offline stand-in for `crossbeam`.
//!
//! This build environment has no registry access, so the workspace
//! vendors the subset it uses: `crossbeam::channel::{unbounded, Sender,
//! Receiver}`, backed by `std::sync::mpsc` (whose `Sender` has been
//! `Sync` since Rust 1.72, which is all the fabric's link threads need).

#![warn(missing_docs)]

/// Multi-producer channels (the `crossbeam-channel` API subset).
pub mod channel {
    use std::sync::mpsc;

    /// Sending half of an unbounded channel.
    pub struct Sender<T> {
        inner: mpsc::Sender<T>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender {
                inner: self.inner.clone(),
            }
        }
    }

    /// Error returned when the receiving half has been dropped.
    #[derive(Debug)]
    pub struct SendError<T>(pub T);

    impl<T> std::fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    impl<T> Sender<T> {
        /// Sends a value; fails only if the receiver is gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.inner
                .send(value)
                .map_err(|mpsc::SendError(v)| SendError(v))
        }
    }

    /// Receiving half of an unbounded channel.
    pub struct Receiver<T> {
        inner: mpsc::Receiver<T>,
    }

    /// Error returned when every sender has been dropped.
    #[derive(Debug)]
    pub struct RecvError;

    impl<T> Receiver<T> {
        /// Blocks until a value arrives or every sender is dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.inner.recv().map_err(|_| RecvError)
        }

        /// Returns immediately with a value if one is queued.
        pub fn try_recv(&self) -> Result<T, std::sync::mpsc::TryRecvError> {
            self.inner.try_recv()
        }
    }

    /// Creates an unbounded FIFO channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender { inner: tx }, Receiver { inner: rx })
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn fifo_roundtrip() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            tx.clone().send(2).unwrap();
            assert_eq!(rx.recv().unwrap(), 1);
            assert_eq!(rx.recv().unwrap(), 2);
            drop(tx);
            assert!(rx.recv().is_err());
        }
    }
}
