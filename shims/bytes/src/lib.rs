//! Minimal offline stand-in for the `bytes` crate.
//!
//! This build environment has no registry access, so the workspace
//! vendors the tiny subset of `bytes` it actually uses: [`Bytes`], an
//! immutable, cheaply-cloneable byte container. Cloning shares the
//! underlying allocation via `Arc`, preserving the zero-copy semantics
//! the real crate provides for the hot paths here (wire payloads are
//! captured once at post time and shared between the send queue and the
//! in-flight wire message).

#![warn(missing_docs)]

use std::sync::Arc;

/// An immutable, reference-counted byte buffer.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// An empty buffer (no allocation is shared; `Arc<[u8]>` of length 0).
    pub fn new() -> Self {
        Bytes {
            data: Arc::from(&[][..]),
        }
    }

    /// Wraps a static slice. The shim copies it once (the real crate
    /// points at the static data; the observable behaviour is the same).
    pub fn from_static(data: &'static [u8]) -> Self {
        Bytes {
            data: Arc::from(data),
        }
    }

    /// Copies a slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes {
            data: Arc::from(data),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the buffer holds no bytes.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes { data: v.into() }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes { data: Arc::from(v) }
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.data.iter().take(32) {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        if self.data.len() > 32 {
            write!(f, "…({} bytes)", self.data.len())?;
        }
        write!(f, "\"")
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.data[..] == other.data[..]
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        &self.data[..] == other
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_sharing() {
        let b = Bytes::from(vec![1u8, 2, 3]);
        let c = b.clone();
        assert_eq!(&b[..], &[1, 2, 3]);
        assert_eq!(b, c);
        assert_eq!(b.len(), 3);
        assert!(!b.is_empty());
        assert!(Bytes::new().is_empty());
        assert_eq!(&Bytes::from_static(b"xy")[..], b"xy");
    }
}
