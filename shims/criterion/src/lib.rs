//! Minimal offline stand-in for `criterion`.
//!
//! This build environment has no registry access, so the workspace
//! vendors the subset it uses: `Criterion::benchmark_group`,
//! `throughput`/`sample_size`/`bench_function`/`finish`, `Bencher::iter`
//! and `iter_batched`, and the `criterion_group!`/`criterion_main!`
//! macros. Each benchmark runs a fixed number of timed samples and
//! prints mean wall-clock time (plus element throughput when declared);
//! there is no warm-up analysis, outlier statistics, or HTML report.
//! Set `EXS_BENCH_QUICK=1` to cut sample counts for CI smoke runs.

#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box` under criterion's name.
pub use std::hint::black_box;

/// Top-level benchmark driver handed to each `criterion_group!` target.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group: {name}");
        BenchmarkGroup {
            _criterion: self,
            throughput: None,
            sample_size: default_sample_size(),
        }
    }
}

fn quick() -> bool {
    std::env::var("EXS_BENCH_QUICK")
        .map(|v| v == "1")
        .unwrap_or(false)
}

fn default_sample_size() -> usize {
    if quick() {
        3
    } else {
        20
    }
}

/// Declared work per iteration, used to report rates.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Iterations process this many logical elements each.
    Elements(u64),
    /// Iterations process this many bytes each.
    Bytes(u64),
}

/// How `iter_batched` amortises setup; the shim runs one setup per
/// routine call regardless, so the variants only mirror the API.
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
}

/// A named collection of benchmarks sharing throughput/sample settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    throughput: Option<Throughput>,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Declares per-iteration work for rate reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Overrides the number of timed samples.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = if quick() { n.min(3) } else { n };
        self
    }

    /// Times `f` and prints the mean per-sample wall-clock duration.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            elapsed: Duration::ZERO,
            iters: 0,
        };
        // One untimed pass to warm caches and page in code.
        f(&mut b);
        b.elapsed = Duration::ZERO;
        b.iters = 0;
        for _ in 0..self.sample_size {
            f(&mut b);
        }
        let iters = b.iters.max(1);
        let per_iter = b.elapsed / iters as u32;
        match self.throughput {
            Some(Throughput::Elements(n)) if per_iter > Duration::ZERO => {
                let rate = n as f64 / per_iter.as_secs_f64();
                println!("  {name}: {per_iter:?}/iter ({rate:.0} elem/s)");
            }
            Some(Throughput::Bytes(n)) if per_iter > Duration::ZERO => {
                let rate = n as f64 / per_iter.as_secs_f64() / 1e6;
                println!("  {name}: {per_iter:?}/iter ({rate:.1} MB/s)");
            }
            _ => println!("  {name}: {per_iter:?}/iter"),
        }
        self
    }

    /// Ends the group (printing is incremental, so this is a no-op).
    pub fn finish(&mut self) {}
}

/// Timing handle passed to each benchmark closure.
pub struct Bencher {
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    /// Times repeated calls of `f`.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        let start = Instant::now();
        black_box(f());
        self.elapsed += start.elapsed();
        self.iters += 1;
    }

    /// Times `routine` on inputs built by `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let input = setup();
        let start = Instant::now();
        black_box(routine(input));
        self.elapsed += start.elapsed();
        self.iters += 1;
    }
}

/// Bundles benchmark functions into one runner function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Emits `main` running the named groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
