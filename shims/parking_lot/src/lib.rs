//! Minimal offline stand-in for `parking_lot`.
//!
//! This build environment has no registry access, so the workspace
//! vendors the subset it uses: [`Mutex`] (non-poisoning `lock()`
//! returning the guard directly) and [`Condvar`] (`wait_for` on a guard
//! reference). Everything is backed by `std::sync`; poison errors are
//! swallowed the way parking_lot semantics expect (a panicking holder
//! does not poison the lock).

#![warn(missing_docs)]

use std::sync::{self, PoisonError};
use std::time::Duration;

/// A mutual-exclusion lock whose `lock()` returns the guard directly.
#[derive(Default)]
pub struct Mutex<T> {
    inner: sync::Mutex<T>,
}

/// RAII guard for [`Mutex`]; unlocks on drop.
pub struct MutexGuard<'a, T> {
    // `Option` so Condvar::wait_for can move the std guard out and back.
    inner: Option<sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Creates a mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Acquires the lock, blocking the current thread.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present")
    }
}

impl<T> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present")
    }
}

/// Result of a timed condition-variable wait.
#[derive(Clone, Copy, Debug)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// True if the wait ended because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// A condition variable usable with [`MutexGuard`] references.
#[derive(Default)]
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    /// Creates a condition variable.
    pub const fn new() -> Self {
        Condvar {
            inner: sync::Condvar::new(),
        }
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes all waiters.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }

    /// Atomically releases the guard's lock and waits, reacquiring before
    /// returning (spurious wakeups possible, as with any condvar).
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let std_guard = guard.inner.take().expect("guard present");
        let std_guard = self
            .inner
            .wait(std_guard)
            .unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(std_guard);
    }

    /// Like [`Condvar::wait`], but gives up after `timeout`.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let std_guard = guard.inner.take().expect("guard present");
        let (std_guard, res) = self
            .inner
            .wait_timeout(std_guard, timeout)
            .unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(std_guard);
        WaitTimeoutResult {
            timed_out: res.timed_out(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn condvar_signals_across_threads() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = pair.clone();
        let t = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            *m.lock() = true;
            cv.notify_all();
        });
        let (m, cv) = &*pair;
        let mut g = m.lock();
        while !*g {
            let r = cv.wait_for(&mut g, Duration::from_secs(5));
            assert!(!r.timed_out(), "signal never arrived");
        }
        t.join().unwrap();
    }

    #[test]
    fn wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let r = cv.wait_for(&mut g, Duration::from_millis(10));
        assert!(r.timed_out());
    }
}
