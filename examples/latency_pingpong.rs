//! Request-response latency — the paper's planned latency study (§VI).
//!
//! Measures ping-pong round-trip times on the FDR InfiniBand profile
//! for several payload sizes and all three protocol modes. The direct
//! path delivers straight into the pre-posted reply buffer (zero-copy);
//! the indirect path adds an intermediate-buffer copy on each hop,
//! which shows up as a latency penalty that grows with payload size.
//!
//! Run with:
//! ```text
//! cargo run --release --example latency_pingpong
//! ```

use rdma_stream::blast::{run_pingpong, PingPongSpec};
use rdma_stream::exs::{ExsConfig, ProtocolMode};
use rdma_stream::verbs::profiles;

fn main() {
    println!("ping-pong round-trip time on simulated FDR InfiniBand\n");
    println!(
        "{:>10} {:>26} {:>26} {:>26}",
        "payload", "dynamic", "direct-only", "indirect-only"
    );
    for &(size, label) in &[
        (64u32, "64 B"),
        (4 << 10, "4 KiB"),
        (64 << 10, "64 KiB"),
        (1 << 20, "1 MiB"),
    ] {
        let mut cells = Vec::new();
        for mode in [
            ProtocolMode::Dynamic,
            ProtocolMode::DirectOnly,
            ProtocolMode::IndirectOnly,
        ] {
            let spec = PingPongSpec {
                cfg: ExsConfig::with_mode(mode),
                msg_size: size,
                iterations: 300,
                warmup: 20,
                seed: 5,
                ..PingPongSpec::new(profiles::fdr_infiniband())
            };
            let report = run_pingpong(&spec);
            cells.push(format!(
                "{:8.1} us (p99 {:7.1})",
                report.mean_us(),
                report.percentile_us(99.0)
            ));
        }
        println!(
            "{:>10} {:>26} {:>26} {:>26}",
            label, cells[0], cells[1], cells[2]
        );
    }
    println!();
    println!("the indirect mode pays the receiver-side copy on every hop; the gap");
    println!("versus the zero-copy modes widens with payload size.");
}
