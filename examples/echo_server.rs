//! Echo server: one reactor serving 100 concurrent EXS connections.
//!
//! The "serving many connections" pattern: every accepted stream
//! completes onto two shared CQs, a single [`exs::Reactor`] drains them
//! in batches and reports level-triggered readiness, and the
//! application services only the connections that have work. Each of
//! the 100 clients plays ping-pong (send a block, wait for its echo)
//! for a few rounds and then closes; the server echoes until it sees
//! EOF, then half-closes its side.
//!
//! Run with: `cargo run --release --example echo_server`

use rdma_stream::exs::{ConnId, ExsConfig, ExsEvent, Reactor, ReactorConfig, StreamSocket};
use rdma_stream::simnet::SimTime;
use rdma_stream::verbs::{profiles, Access, MrInfo, NodeApi, NodeApp, NodeId, SimNet};

const CLIENTS: usize = 100;
const ROUNDS: usize = 3;
const MSG: usize = 4096;

fn pattern(conn: usize, round: usize, i: usize) -> u8 {
    (i.wrapping_mul(31) ^ conn.wrapping_mul(7) ^ round.wrapping_mul(131)) as u8
}

struct EchoServer {
    reactor: Reactor,
    recv_mrs: Vec<MrInfo>,
    send_mrs: Vec<MrInfo>,
    closed: Vec<bool>,
    shutdown_sent: Vec<bool>,
    echoed_bytes: u64,
    next_id: u64,
    scratch: Vec<u8>,
}

impl EchoServer {
    fn post_recv(&mut self, api: &mut NodeApi<'_>, conn: ConnId) {
        let mr = self.recv_mrs[conn.0 as usize];
        let id = self.next_id;
        self.next_id += 1;
        self.reactor
            .conn_mut(conn)
            .exs_recv(api, &mr, 0, MSG as u32, false, id);
    }

    fn handle_conn(&mut self, api: &mut NodeApi<'_>, conn: ConnId) -> bool {
        let idx = conn.0 as usize;
        let events = self.reactor.take_events(conn);
        let progressed = !events.is_empty();
        for ev in events {
            match ev {
                ExsEvent::RecvComplete { len, .. } if len > 0 => {
                    // Echo the block back: read it out of the receive
                    // region, stage it in the send region (stable until
                    // SendComplete; ping-pong keeps one echo in flight).
                    let rmr = self.recv_mrs[idx];
                    let smr = self.send_mrs[idx];
                    self.scratch.resize(len as usize, 0);
                    api.read_mr(rmr.key, rmr.addr, &mut self.scratch).unwrap();
                    api.write_mr(smr.key, smr.addr, &self.scratch).unwrap();
                    let id = self.next_id;
                    self.next_id += 1;
                    self.reactor
                        .conn_mut(conn)
                        .exs_send(api, &smr, 0, len as u64, id);
                    self.echoed_bytes += len as u64;
                    self.post_recv(api, conn);
                }
                ExsEvent::RecvComplete { .. } => {} // zero-length: EOF path
                ExsEvent::PeerClosed => {
                    self.closed[idx] = true;
                    if !self.shutdown_sent[idx] {
                        // Everything the client sent is echoed or queued;
                        // close our half too.
                        self.reactor.conn_mut(conn).exs_shutdown(api);
                        self.shutdown_sent[idx] = true;
                    }
                }
                ExsEvent::ConnectionError => panic!("echo conn {idx} failed"),
                ExsEvent::SendComplete { .. } => {}
            }
        }
        progressed
    }
}

impl NodeApp for EchoServer {
    fn on_start(&mut self, api: &mut NodeApi<'_>) {
        for conn in self.reactor.conn_ids() {
            self.post_recv(api, conn);
        }
    }
    fn on_wake(&mut self, api: &mut NodeApi<'_>) {
        loop {
            let ready = self.reactor.poll(api);
            let mut progressed = false;
            for (conn, r) in ready {
                if r.readable || r.closed || r.error {
                    progressed |= self.handle_conn(api, conn);
                }
            }
            if !progressed && !self.reactor.has_backlog() {
                break;
            }
        }
    }
    fn is_done(&self) -> bool {
        self.closed.iter().all(|&c| c)
            && self
                .reactor
                .conn_ids()
                .into_iter()
                .all(|c| self.reactor.conn(c).sends_drained())
    }
}

struct EchoClient {
    sock: StreamSocket,
    idx: usize,
    mr: MrInfo,
    echo_mr: MrInfo,
    round: usize,
    eof: bool,
    shutdown: bool,
    next_id: u64,
}

impl EchoClient {
    fn send_round(&mut self, api: &mut NodeApi<'_>) {
        let data: Vec<u8> = (0..MSG).map(|i| pattern(self.idx, self.round, i)).collect();
        api.write_mr(self.mr.key, self.mr.addr, &data).unwrap();
        let id = self.next_id;
        self.next_id += 1;
        self.sock.exs_send(api, &self.mr, 0, MSG as u64, id);
        let id = self.next_id;
        self.next_id += 1;
        // MSG_WAITALL: the echo may arrive in pieces; complete when full.
        self.sock
            .exs_recv(api, &self.echo_mr, 0, MSG as u32, true, id);
    }
}

impl NodeApp for EchoClient {
    fn on_start(&mut self, api: &mut NodeApi<'_>) {
        self.send_round(api);
    }
    fn on_wake(&mut self, api: &mut NodeApi<'_>) {
        self.sock.handle_wake(api);
        for ev in self.sock.take_events() {
            match ev {
                ExsEvent::RecvComplete { len, .. } if len > 0 => {
                    assert_eq!(len as usize, MSG, "client {} short echo", self.idx);
                    let mut buf = vec![0u8; MSG];
                    api.read_mr(self.echo_mr.key, self.echo_mr.addr, &mut buf)
                        .unwrap();
                    for (i, &b) in buf.iter().enumerate() {
                        assert_eq!(
                            b,
                            pattern(self.idx, self.round, i),
                            "client {} echo corrupted at {i}",
                            self.idx
                        );
                    }
                    self.round += 1;
                    if self.round < ROUNDS {
                        self.send_round(api);
                    } else if !self.shutdown {
                        self.sock.exs_shutdown(api);
                        self.shutdown = true;
                    }
                }
                ExsEvent::PeerClosed => self.eof = true,
                ExsEvent::ConnectionError => panic!("client {} conn failed", self.idx),
                _ => {}
            }
        }
    }
    fn is_done(&self) -> bool {
        self.shutdown && self.eof
    }
}

fn main() {
    let profile = profiles::fdr_infiniband();
    // Per-connection budgets sized for a 100-way server.
    let cfg = ExsConfig {
        ring_capacity: 64 << 10,
        credits: 8,
        sq_depth: 16,
        ..ExsConfig::default()
    };

    let mut net = SimNet::new();
    net.set_host_seed(2014);
    let server_node = net.add_node(profile.host.clone(), profile.hca.clone());
    let client_nodes: Vec<NodeId> = (0..CLIENTS)
        .map(|_| net.add_node(profile.host.clone(), profile.hca.clone()))
        .collect();
    for (i, &c) in client_nodes.iter().enumerate() {
        net.connect_nodes(c, server_node, profile.link.clone(), i as u64);
    }

    // Two shared CQs for all 100 connections, one reactor over them.
    let per_conn = cfg.sq_depth * 2 + cfg.credits as usize * 2;
    let (send_cq, recv_cq) = net.with_api(server_node, |api| {
        (
            api.create_cq(per_conn * CLIENTS),
            api.create_cq(per_conn * CLIENTS),
        )
    });
    let mut reactor = Reactor::new(send_cq, recv_cq, ReactorConfig::default());

    let mut clients = Vec::with_capacity(CLIENTS);
    let mut recv_mrs = Vec::new();
    let mut send_mrs = Vec::new();
    for (idx, &cnode) in client_nodes.iter().enumerate() {
        let (csock, ssock) =
            StreamSocket::pair_shared(&mut net, cnode, server_node, send_cq, recv_cq, &cfg);
        reactor.accept(ssock);
        let (mr, echo_mr) = net.with_api(cnode, |api| {
            (
                api.register_mr(MSG, Access::NONE),
                api.register_mr(MSG, Access::local_remote_write()),
            )
        });
        clients.push(EchoClient {
            sock: csock,
            idx,
            mr,
            echo_mr,
            round: 0,
            eof: false,
            shutdown: false,
            next_id: 0,
        });
        net.with_api(server_node, |api| {
            recv_mrs.push(api.register_mr(MSG, Access::local_remote_write()));
            send_mrs.push(api.register_mr(MSG, Access::NONE));
        });
    }

    let mut server = EchoServer {
        reactor,
        recv_mrs,
        send_mrs,
        closed: vec![false; CLIENTS],
        shutdown_sent: vec![false; CLIENTS],
        echoed_bytes: 0,
        next_id: 0,
        scratch: Vec::new(),
    };

    let mut apps: Vec<&mut dyn NodeApp> = Vec::with_capacity(1 + CLIENTS);
    apps.push(&mut server);
    for c in clients.iter_mut() {
        apps.push(c);
    }
    let outcome = net.run(&mut apps, SimTime::from_secs(60));
    assert!(outcome.completed, "echo workload stalled: {outcome:?}");

    let rs = server.reactor.stats();
    let agg = server.reactor.aggregate_conn_stats();
    println!("echo server: {CLIENTS} connections x {ROUNDS} rounds x {MSG} B");
    println!(
        "  echoed {} B in {:.3} ms of virtual time ({} sim events)",
        server.echoed_bytes,
        outcome.end.as_secs_f64() * 1e3,
        outcome.events
    );
    println!(
        "  reactor: {} polls, {} completions in {} batches (mean {:.1}, max {}), {} deferrals",
        rs.polls,
        rs.cqes_dispatched,
        rs.cq_batches,
        rs.mean_batch(),
        rs.max_cq_batch,
        rs.deferrals
    );
    println!(
        "  streams: direct ratio {:.3}, {} B received, {} B sent back",
        agg.direct_ratio(),
        agg.bytes_received,
        agg.bytes_sent
    );
    assert_eq!(server.echoed_bytes, (CLIENTS * ROUNDS * MSG) as u64);
}
