//! Echo server: 100 concurrent async tasks on one reactor-backed
//! executor.
//!
//! The "serving many connections" pattern, written the way production
//! Rust wants to write it: every accepted stream completes onto two
//! shared CQs, a single [`exs::Reactor`] drains them in batches — but
//! instead of a hand-rolled readiness/event loop, each connection is
//! one `async` task on an [`exs::aio::Executor`] that simply awaits
//! `recv_some` / `send_all` in a loop. The executor's single `turn`
//! is the only code touching the verbs port; tasks park on wakers
//! keyed by connection id. Each of the 100 clients plays ping-pong
//! (send a block, await its echo) for a few rounds and then closes;
//! the server task echoes until end-of-stream, then half-closes.
//!
//! Run with: `cargo run --release --example echo_server`

use std::cell::RefCell;
use std::rc::Rc;

use rdma_stream::exs::{
    Executor, ExsConfig, ExsError, Reactor, ReactorConfig, SimDriver, StreamSocket,
};
use rdma_stream::simnet::SimTime;
use rdma_stream::verbs::{profiles, NodeApp, NodeId, SimNet};

const CLIENTS: usize = 100;
const ROUNDS: usize = 3;
const MSG: usize = 4096;

fn pattern(conn: usize, round: usize, i: usize) -> u8 {
    (i.wrapping_mul(31) ^ conn.wrapping_mul(7) ^ round.wrapping_mul(131)) as u8
}

fn main() {
    let profile = profiles::fdr_infiniband();
    // Per-connection budgets sized for a 100-way server.
    let cfg = ExsConfig {
        ring_capacity: 64 << 10,
        credits: 8,
        sq_depth: 16,
        ..ExsConfig::default()
    };

    let mut net = SimNet::new();
    net.set_host_seed(2014);
    let server_node = net.add_node(profile.host.clone(), profile.hca.clone());
    let client_nodes: Vec<NodeId> = (0..CLIENTS)
        .map(|_| net.add_node(profile.host.clone(), profile.hca.clone()))
        .collect();
    for (i, &c) in client_nodes.iter().enumerate() {
        net.connect_nodes(c, server_node, profile.link.clone(), i as u64);
    }

    // Two shared CQs for all 100 connections, one reactor over them.
    let per_conn = cfg.sq_depth * 2 + cfg.credits as usize * 2;
    let (send_cq, recv_cq) = net.with_api(server_node, |api| {
        (
            api.create_cq(per_conn * CLIENTS),
            api.create_cq(per_conn * CLIENTS),
        )
    });
    let mut server_reactor = Reactor::new(send_cq, recv_cq, ReactorConfig::default());

    // Accept all server-side sockets; keep the client halves with
    // their ids for the per-node client executors below.
    let mut client_socks: Vec<(usize, NodeId, StreamSocket)> = Vec::with_capacity(CLIENTS);
    let mut server_conns = Vec::with_capacity(CLIENTS);
    for (idx, &cnode) in client_nodes.iter().enumerate() {
        let (csock, ssock) =
            StreamSocket::pair_shared(&mut net, cnode, server_node, send_cq, recv_cq, &cfg);
        server_conns.push(server_reactor.accept(ssock));
        client_socks.push((idx, cnode, csock));
    }

    // Server: one executor over the shared reactor, one echo task per
    // connection. `send_all` takes the received buffer by value — the
    // echo is literally "await bytes, send them back".
    let server_ex = Executor::new(server_reactor);
    let echoed = Rc::new(RefCell::new(0u64));
    for &conn in &server_conns {
        let stream = server_ex.handle().stream_with(conn, MSG as u32, 2);
        let echoed = Rc::clone(&echoed);
        server_ex.handle().spawn(async move {
            loop {
                match stream.recv_some(MSG).await {
                    Ok(bytes) => {
                        *echoed.borrow_mut() += bytes.len() as u64;
                        stream.send_all(bytes).await.expect("echo send failed");
                    }
                    Err(ExsError::Eof) => break,
                    Err(e) => panic!("echo conn {} failed: {e}", conn.0),
                }
            }
            // Everything the client sent is echoed; close our half too.
            stream.shutdown().await.expect("echo shutdown failed");
        });
    }
    let mut server = SimDriver::new(server_ex);

    // Clients: each node gets its own small executor over a private
    // reactor (its one socket's CQs), running a single ping-pong task.
    // Same async code shape as the server — that's the point.
    let mut client_drivers: Vec<SimDriver> = Vec::with_capacity(CLIENTS);
    for (idx, _cnode, csock) in client_socks {
        let mut reactor = Reactor::new(csock.send_cq(), csock.recv_cq(), ReactorConfig::default());
        let conn = reactor.accept(csock);
        let ex = Executor::new(reactor);
        let stream = ex.handle().stream_with(conn, MSG as u32, 2);
        ex.handle().spawn(async move {
            for round in 0..ROUNDS {
                let data: Vec<u8> = (0..MSG).map(|i| pattern(idx, round, i)).collect();
                stream.send_all(data).await.expect("client send failed");
                let echo = stream.recv_exact(MSG).await.expect("client recv failed");
                for (i, &b) in echo.iter().enumerate() {
                    assert_eq!(
                        b,
                        pattern(idx, round, i),
                        "client {idx} echo corrupted at {i}"
                    );
                }
            }
            stream.shutdown().await.expect("client shutdown failed");
            // The server half-closes after echoing everything; the next
            // read must see clean end-of-stream, not data.
            match stream.recv_some(MSG).await {
                Err(ExsError::Eof) => {}
                other => panic!("client {idx} expected EOF, got {other:?}"),
            }
        });
        client_drivers.push(SimDriver::new(ex));
    }

    let mut apps: Vec<&mut dyn NodeApp> = Vec::with_capacity(1 + CLIENTS);
    apps.push(&mut server);
    for d in client_drivers.iter_mut() {
        apps.push(d);
    }
    let outcome = net.run(&mut apps, SimTime::from_secs(60));
    assert!(outcome.completed, "echo workload stalled: {outcome:?}");

    let ex = server.executor_ref();
    let (rs, agg) = ex.with_reactor(|r| (r.stats().clone(), r.aggregate_conn_stats()));
    let aio = ex.stats();
    println!("echo server: {CLIENTS} async tasks x {ROUNDS} rounds x {MSG} B");
    println!(
        "  echoed {} B in {:.3} ms of virtual time ({} sim events)",
        echoed.borrow(),
        outcome.end.as_secs_f64() * 1e3,
        outcome.events
    );
    println!(
        "  reactor: {} polls, {} completions in {} batches (mean {:.1}, max {}), {} deferrals",
        rs.polls,
        rs.cqes_dispatched,
        rs.cq_batches,
        rs.mean_batch(),
        rs.max_cq_batch,
        rs.deferrals
    );
    println!(
        "  executor: {} tasks, {} wakeups, {} polls ({:.2} polls/wake, {:.3} spurious)",
        aio.tasks_completed,
        aio.wakeups,
        aio.polls,
        aio.polls_per_wake(),
        aio.spurious_wake_ratio()
    );
    println!(
        "  streams: direct ratio {:.3}, {} B received, {} B sent back",
        agg.direct_ratio(),
        agg.bytes_received,
        agg.bytes_sent
    );
    assert_eq!(aio.tasks_completed, CLIENTS as u64);
    assert_eq!(*echoed.borrow(), (CLIENTS * ROUNDS * MSG) as u64);
}
