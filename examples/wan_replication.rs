//! Log replication across a continent — the over-distance scenario that
//! motivates the intermediate buffer (paper §I: "over distance, having
//! to wait for an advertisement in order to send a large message is
//! impractical due to the high latency").
//!
//! A primary replicates a stream of 64 KiB log records to a standby
//! over the paper's emulated WAN: 10 Gbit/s RoCE with a 48 ms round
//! trip. The experiment varies how many replication operations the
//! primary keeps in flight and shows that (i) throughput is governed by
//! the bandwidth-delay product, and (ii) all three protocols behave
//! similarly — the paper's Fig. 13 finding — so the dynamic protocol
//! can be left on everywhere.
//!
//! Run with:
//! ```text
//! cargo run --release --example wan_replication
//! ```

use rdma_stream::blast::{run_blast, BlastSpec, SizeDist, VerifyLevel};
use rdma_stream::exs::{ExsConfig, ProtocolMode};
use rdma_stream::simnet::SimDuration;
use rdma_stream::verbs::profiles;

const RECORD: u64 = 64 << 10;
const RECORDS: usize = 2_000;

fn replicate(mode: ProtocolMode, inflight: usize) -> (f64, f64) {
    let mut cfg = ExsConfig::with_mode(mode);
    // Buffer the bandwidth-delay product (10 Gbit/s × 48 ms = 60 MB).
    cfg.ring_capacity = 128 << 20;
    let spec = BlastSpec {
        cfg,
        outstanding_sends: inflight,
        outstanding_recvs: inflight,
        sizes: SizeDist::Fixed(RECORD),
        messages: RECORDS,
        verify: VerifyLevel::None,
        seed: 11,
        time_limit: SimDuration::from_secs(3600),
        ..BlastSpec::new(profiles::roce_10g_wan())
    };
    let report = run_blast(&spec);
    (
        report.throughput_mbps(),
        report.elapsed().as_secs_f64() * 1e3,
    )
}

fn main() {
    println!("replicating {RECORDS} x 64 KiB log records over a 48 ms RTT WAN\n");
    println!(
        "{:>10} {:>22} {:>22} {:>22}",
        "in flight", "direct-only", "dynamic", "indirect-only"
    );
    for &inflight in &[1usize, 8, 64, 256] {
        let (d_tput, _) = replicate(ProtocolMode::DirectOnly, inflight);
        let (y_tput, _) = replicate(ProtocolMode::Dynamic, inflight);
        let (i_tput, _) = replicate(ProtocolMode::IndirectOnly, inflight);
        println!(
            "{:>10} {:>15.1} Mbit/s {:>15.1} Mbit/s {:>15.1} Mbit/s",
            inflight, d_tput, y_tput, i_tput
        );
    }
    println!();
    println!("throughput scales with the replication window until the 10 Gbit/s link");
    println!("saturates; the protocols are within a few percent of each other, so the");
    println!("adaptive default is safe over distance (paper Fig. 13).");
}
