//! Quickstart: two hosts, one stream socket, a few messages.
//!
//! Demonstrates the library's shape end to end:
//!
//! 1. build a simulated two-node RDMA fabric (FDR InfiniBand profile),
//! 2. open a SOCK_STREAM EXS socket pair through the ES-API context,
//! 3. stage client sends through the registered-memory pool
//!    ([`MemPool`] leases amortize `ibv_reg_mr` across transfers),
//! 4. drive the event loop and drain completion events,
//! 5. print the connection statistics (direct vs indirect transfers),
//! 6. tear everything down and verify no registration leaks.
//!
//! Run with:
//! ```text
//! cargo run --release --example quickstart
//! ```

use std::collections::HashMap;

use rdma_stream::exs::{Event, ExsConfig, ExsContext, ExsFd, MemPool, MrLease, MsgFlags, SockType};
use rdma_stream::simnet::SimTime;
use rdma_stream::verbs::{profiles, Access, MrInfo, NodeApi, NodeApp, SimNet};

/// The client sends three greetings as one byte stream, staging each
/// through a pooled lease instead of registering per message.
struct Client {
    ctx: Option<ExsContext>,
    fd: ExsFd,
    pool: MemPool,
    leases: HashMap<u64, MrLease>,
    sent: usize,
    acked: usize,
}

const GREETINGS: [&str; 3] = [
    "hello, stream semantics over RDMA!",
    "this byte stream travels as RDMA WRITE WITH IMM transfers,",
    "directly into advertised user memory whenever the receiver is ahead.",
];

impl Client {
    /// Acquires a pooled lease, stages the next greeting into it, and
    /// posts the send. After the first message the acquire is a cache
    /// hit: the region registered for greeting 0 is reused.
    fn send_next(&mut self, api: &mut NodeApi<'_>) {
        let text = GREETINGS[self.sent];
        let lease = self.pool.acquire(api, text.len(), Access::NONE);
        lease
            .write(api, 0, text.as_bytes())
            .expect("stage greeting");
        let id = self.sent as u64;
        self.ctx
            .as_mut()
            .unwrap()
            .exs_send(api, self.fd, lease.info(), 0, text.len() as u64, id);
        self.leases.insert(id, lease);
        self.sent += 1;
    }
}

impl NodeApp for Client {
    fn on_start(&mut self, api: &mut NodeApi<'_>) {
        self.send_next(api);
    }

    fn on_wake(&mut self, api: &mut NodeApi<'_>) {
        self.ctx.as_mut().unwrap().handle_wake(api);
        for qe in self.ctx.as_mut().unwrap().exs_qdequeue() {
            if let Event::SendComplete { id, len } = qe.event {
                println!(
                    "[client] send #{id} complete ({len} bytes) at {}",
                    api.now()
                );
                // Dropping the lease returns the region to the pool.
                self.leases.remove(&id);
                self.acked += 1;
                if self.sent < GREETINGS.len() {
                    self.send_next(api);
                }
            }
        }
    }

    fn is_done(&self) -> bool {
        self.acked == GREETINGS.len()
    }
}

/// The server receives the stream into fixed-size chunks.
struct Server {
    ctx: Option<ExsContext>,
    fd: ExsFd,
    mr: Option<MrInfo>,
    received: usize,
    expected: usize,
    next_id: u64,
    text: String,
}

impl Server {
    fn post(&mut self, api: &mut NodeApi<'_>) {
        let mr = self.mr.expect("registered in main");
        // One 64-byte receive at a time: the stream layer splits and
        // coalesces as needed.
        self.ctx
            .as_mut()
            .unwrap()
            .exs_recv(api, self.fd, &mr, 0, 64, MsgFlags::NONE, self.next_id);
        self.next_id += 1;
    }
}

impl NodeApp for Server {
    fn on_start(&mut self, api: &mut NodeApi<'_>) {
        self.post(api);
    }

    fn on_wake(&mut self, api: &mut NodeApi<'_>) {
        let mr = self.mr.expect("registered");
        self.ctx.as_mut().unwrap().handle_wake(api);
        loop {
            let events = self.ctx.as_mut().unwrap().exs_qdequeue();
            if events.is_empty() {
                break;
            }
            for qe in events {
                if let Event::RecvComplete { len, .. } = qe.event {
                    let mut buf = vec![0u8; len as usize];
                    api.read_mr(mr.key, mr.addr, &mut buf).expect("read");
                    self.text.push_str(&String::from_utf8_lossy(&buf));
                    self.received += len as usize;
                    println!("[server] {len:3} bytes at {}", api.now());
                }
            }
            if self.received < self.expected {
                self.post(api);
            }
        }
    }

    fn is_done(&self) -> bool {
        self.received >= self.expected
    }
}

fn main() {
    // 1. Fabric: two nodes joined by an FDR InfiniBand link.
    let profile = profiles::fdr_infiniband();
    let mut net = SimNet::new();
    let a = net.add_node(profile.host.clone(), profile.hca.clone());
    let b = net.add_node(profile.host.clone(), profile.hca.clone());
    net.connect_nodes(a, b, profile.link.clone(), 42);

    // 2. ES-API contexts and a connected stream socket pair.
    let mut ctx_a = ExsContext::new(a);
    let mut ctx_b = ExsContext::new(b);
    let cfg = ExsConfig::default();
    let (fd_a, fd_b) =
        ExsContext::socket_pair(&mut net, &mut ctx_a, &mut ctx_b, SockType::Stream, &cfg);

    // 3. I/O memory: the client stages sends through the registered
    //    memory pool (one slab registration, reused per message); the
    //    server registers its receive window directly.
    let total: usize = GREETINGS.iter().map(|g| g.len()).sum();
    let pool = MemPool::new(cfg.pool.clone());
    let server_mr = net.with_api(b, |api| {
        ctx_b.exs_mregister(api, 64, Access::local_remote_write())
    });

    // 4. Run the applications.
    let mut client = Client {
        ctx: Some(ctx_a),
        fd: fd_a,
        pool: pool.clone(),
        leases: HashMap::new(),
        sent: 0,
        acked: 0,
    };
    let mut server = Server {
        ctx: Some(ctx_b),
        fd: fd_b,
        mr: Some(server_mr),
        received: 0,
        expected: total,
        next_id: 0,
        text: String::new(),
    };
    let outcome = net.run(&mut [&mut client, &mut server], SimTime::from_secs(1));
    assert!(outcome.completed, "quickstart did not finish: {outcome:?}");

    // 5. Results.
    println!();
    println!("reassembled stream: {:?}", server.text);
    let stats = client.ctx.as_ref().unwrap().stats(fd_a);
    println!(
        "client stats: {} direct / {} indirect transfers, {} mode switches, {} adverts received",
        stats.direct_transfers,
        stats.indirect_transfers,
        stats.mode_switches,
        stats.adverts_received,
    );
    println!("simulated time: {}", net.now());
    assert_eq!(server.text, GREETINGS.concat());

    // 6. Teardown: close the sockets, drain the pool, and verify that
    //    every memory registration on both nodes has been reclaimed.
    let ps = pool.stats();
    println!(
        "client pool: {} hits / {} misses ({} registrations for {} sends)",
        ps.hits,
        ps.misses,
        ps.registrations,
        GREETINGS.len()
    );
    net.with_api(a, |api| {
        let ctx = client.ctx.as_mut().unwrap();
        ctx.exs_close(api, fd_a);
        pool.trim(api);
        assert_eq!(api.mr_count(), 0, "client leaked a registration");
    });
    net.with_api(b, |api| {
        let ctx = server.ctx.as_mut().unwrap();
        ctx.exs_close(api, fd_b);
        ctx.exs_mderegister(api, &server_mr);
        assert_eq!(api.mr_count(), 0, "server leaked a registration");
    });
    println!("teardown: 0 registrations left on either node");
    println!("OK");
}
