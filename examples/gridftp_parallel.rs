//! Parallel streams over distance — the GridFTP scenario.
//!
//! The paper's over-distance motivation comes from GridFTP-style bulk
//! data movement (its reference [10] is an RDMA verbs driver for
//! GridFTP). GridFTP's classic trick on long fat networks is opening
//! several parallel streams; with a windowed transport each stream adds
//! in-flight data, multiplying throughput until the link saturates.
//!
//! This example opens 1, 2, 4 and 8 parallel EXS stream sockets across
//! the emulated 48 ms WAN and moves a 64 MiB dataset striped across
//! them, comparing aggregate throughput. Every stream uses the dynamic
//! protocol — no tuning per stream.
//!
//! Run with:
//! ```text
//! cargo run --release --example gridftp_parallel
//! ```

use rdma_stream::exs::{Event, ExsConfig, ExsContext, ExsFd, MsgFlags, SockType};
use rdma_stream::simnet::SimTime;
use rdma_stream::verbs::{profiles, Access, MrInfo, NodeApi, NodeApp, SimNet};

const DATASET: u64 = 64 << 20;
const CHUNK: u64 = 1 << 20;

struct Mover {
    ctx: Option<ExsContext>,
    streams: Vec<(ExsFd, MrInfo)>,
    is_sender: bool,
    per_stream: u64,
    sent: Vec<u64>,
    acked: Vec<u64>,
    received: Vec<u64>,
    next_id: u64,
    id_map: std::collections::HashMap<u64, usize>,
    finished_at: Option<SimTime>,
}

impl Mover {
    fn kick(&mut self, api: &mut NodeApi<'_>) {
        for idx in 0..self.streams.len() {
            let (fd, mr) = self.streams[idx];
            if self.is_sender {
                // Keep 4 chunks in flight per stream.
                while self.sent[idx] < self.per_stream
                    && self.sent[idx] - self.acked[idx] < 4 * CHUNK
                {
                    let id = self.next_id;
                    self.next_id += 1;
                    self.id_map.insert(id, idx);
                    let off = (self.sent[idx] / CHUNK % 4) * CHUNK;
                    self.ctx
                        .as_mut()
                        .unwrap()
                        .exs_send(api, fd, &mr, off, CHUNK, id);
                    self.sent[idx] += CHUNK;
                }
            } else {
                let outstanding = self.id_map.values().filter(|&&s| s == idx).count();
                if outstanding < 4 && self.received[idx] < self.per_stream {
                    let id = self.next_id;
                    self.next_id += 1;
                    self.id_map.insert(id, idx);
                    self.ctx.as_mut().unwrap().exs_recv(
                        api,
                        fd,
                        &mr,
                        0,
                        CHUNK as u32,
                        MsgFlags::NONE,
                        id,
                    );
                }
            }
        }
    }
}

impl NodeApp for Mover {
    fn on_start(&mut self, api: &mut NodeApi<'_>) {
        self.kick(api);
    }
    fn on_wake(&mut self, api: &mut NodeApi<'_>) {
        self.ctx.as_mut().unwrap().handle_wake(api);
        loop {
            let events = self.ctx.as_mut().unwrap().exs_qdequeue();
            if events.is_empty() {
                break;
            }
            for qe in events {
                match qe.event {
                    Event::SendComplete { id, len } => {
                        let idx = self.id_map.remove(&id).expect("stream");
                        self.acked[idx] += len;
                    }
                    Event::RecvComplete { id, len } => {
                        let idx = self.id_map.remove(&id).expect("stream");
                        self.received[idx] += len as u64;
                        if self.received.iter().sum::<u64>() >= DATASET {
                            self.finished_at = Some(api.now());
                        }
                    }
                    other => panic!("unexpected event {other:?}"),
                }
            }
            self.kick(api);
        }
    }
    fn is_done(&self) -> bool {
        if self.is_sender {
            self.acked.iter().sum::<u64>() >= DATASET
        } else {
            self.received.iter().sum::<u64>() >= DATASET
        }
    }
}

fn transfer(parallel: usize) -> (f64, SimTime) {
    let profile = profiles::roce_10g_wan();
    let mut net = SimNet::new();
    let a = net.add_node(profile.host.clone(), profile.hca.clone());
    let b = net.add_node(profile.host.clone(), profile.hca.clone());
    net.connect_nodes(a, b, profile.link.clone(), 21);

    let mut ctx_a = ExsContext::new(a);
    let mut ctx_b = ExsContext::new(b);
    let cfg = ExsConfig {
        ring_capacity: 64 << 20,
        ..ExsConfig::default()
    };

    let per_stream = DATASET / parallel as u64;
    let mut tx_streams = Vec::new();
    let mut rx_streams = Vec::new();
    for _ in 0..parallel {
        let (fa, fb) =
            ExsContext::socket_pair(&mut net, &mut ctx_a, &mut ctx_b, SockType::Stream, &cfg);
        let mr_a = net.with_api(a, |api| {
            ctx_a.exs_mregister(api, (4 * CHUNK) as usize, Access::NONE)
        });
        let mr_b = net.with_api(b, |api| {
            ctx_b.exs_mregister(api, CHUNK as usize, Access::local_remote_write())
        });
        tx_streams.push((fa, mr_a));
        rx_streams.push((fb, mr_b));
    }

    let mut tx = Mover {
        ctx: Some(ctx_a),
        streams: tx_streams,
        is_sender: true,
        per_stream,
        sent: vec![0; parallel],
        acked: vec![0; parallel],
        received: vec![0; parallel],
        next_id: 0,
        id_map: std::collections::HashMap::new(),
        finished_at: None,
    };
    let mut rx = Mover {
        ctx: Some(ctx_b),
        streams: rx_streams,
        is_sender: false,
        per_stream,
        sent: vec![0; parallel],
        acked: vec![0; parallel],
        received: vec![0; parallel],
        next_id: 0,
        id_map: std::collections::HashMap::new(),
        finished_at: None,
    };
    let outcome = net.run(&mut [&mut tx, &mut rx], SimTime::from_secs(600));
    assert!(outcome.completed, "transfer stalled: {outcome:?}");
    let end = rx.finished_at.unwrap_or(outcome.end);
    let secs = end.as_secs_f64();
    (DATASET as f64 * 8.0 / secs / 1e6, end)
}

fn main() {
    println!("moving a 64 MiB dataset across a 48 ms RTT WAN, GridFTP style\n");
    println!(
        "{:>18} {:>22} {:>14}",
        "parallel streams", "aggregate Mbit/s", "elapsed"
    );
    let mut prev = 0.0;
    for &p in &[1usize, 2, 4, 8] {
        let (mbps, end) = transfer(p);
        println!("{:>18} {:>22.1} {:>14}", p, mbps, format!("{end}"));
        assert!(mbps >= prev * 0.9, "parallelism should not hurt");
        prev = mbps;
    }
    println!();
    println!("each stream carries 4 chunks of in-flight data, so parallel streams");
    println!("multiply the effective window over the long fat pipe — the classic");
    println!("GridFTP result, here with zero-copy RDMA stream sockets.");
}
