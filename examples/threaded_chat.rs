//! Real threads, real blocking sockets — the thread-safety the paper's
//! algorithm was designed for (§I: "a thread-safe algorithm").
//!
//! Two OS threads run a scripted chat over one EXS stream connection on
//! the real-thread fabric (`ThreadNet`): no virtual clock, genuine
//! concurrency, blocking `send_bytes`/`recv_exact` calls. A third and
//! fourth thread concurrently push framed telemetry over the same
//! connection to show that interleaved senders never tear the stream.
//!
//! Run with:
//! ```text
//! cargo run --release --example threaded_chat
//! ```

use std::sync::Arc;
use std::time::Duration;

use rdma_stream::exs::{ExsConfig, ThreadStream};

fn main() {
    let (alice, bob) = ThreadStream::pair(&ExsConfig::default(), Duration::from_micros(100));
    let alice = Arc::new(alice);
    let bob = Arc::new(bob);

    // A scripted conversation, strictly alternating.
    let script = [
        ("alice", "hey bob, this stream runs on real threads"),
        ("bob", "nice - zero-copy when I post receives early?"),
        ("alice", "yes, and buffered when you fall behind"),
        ("bob", "same bytes either way. goodbye!"),
    ];

    let a = alice.clone();
    let b = bob.clone();
    let chat = std::thread::spawn(move || {
        for (who, line) in script {
            let (tx, rx) = if who == "alice" { (&a, &b) } else { (&b, &a) };
            // Frame: 4-byte length + text.
            let mut frame = (line.len() as u32).to_le_bytes().to_vec();
            frame.extend_from_slice(line.as_bytes());
            tx.send_bytes(&frame).expect("send");
            let mut len_buf = [0u8; 4];
            rx.recv_exact(&mut len_buf).expect("recv len");
            let mut text = vec![0u8; u32::from_le_bytes(len_buf) as usize];
            rx.recv_exact(&mut text).expect("recv text");
            println!("[{who}] {}", String::from_utf8_lossy(&text));
        }
    });
    chat.join().unwrap();

    // Concurrent framed telemetry: two writers share Alice's endpoint.
    println!();
    println!("two threads now share one connection for framed telemetry...");
    const FRAMES: usize = 100;
    let reader = {
        let bob = bob.clone();
        std::thread::spawn(move || {
            let mut counts = [0usize; 2];
            for _ in 0..FRAMES * 2 {
                let mut header = [0u8; 8];
                bob.recv_exact(&mut header).expect("telemetry header");
                let writer = u32::from_le_bytes(header[0..4].try_into().unwrap()) as usize;
                let len = u32::from_le_bytes(header[4..8].try_into().unwrap()) as usize;
                let mut payload = vec![0u8; len];
                bob.recv_exact(&mut payload).expect("telemetry payload");
                assert!(payload.iter().all(|&b| b == writer as u8), "frame torn!");
                counts[writer] += 1;
            }
            counts
        })
    };
    std::thread::scope(|s| {
        for writer in 0..2u32 {
            let alice = alice.clone();
            s.spawn(move || {
                for i in 0..FRAMES {
                    let len = 32 + (i * 13) % 400;
                    let mut frame = Vec::with_capacity(len + 8);
                    frame.extend_from_slice(&writer.to_le_bytes());
                    frame.extend_from_slice(&(len as u32).to_le_bytes());
                    frame.extend(std::iter::repeat_n(writer as u8, len));
                    alice.send_bytes(&frame).expect("telemetry send");
                }
            });
        }
    });
    let counts = reader.join().unwrap();
    println!(
        "received {} + {} intact frames, zero torn",
        counts[0], counts[1]
    );

    let stats = alice.stats();
    println!(
        "alice sent {} bytes: {} direct / {} indirect transfers, {} mode switches",
        stats.bytes_sent, stats.direct_transfers, stats.indirect_transfers, stats.mode_switches
    );

    // Every `send_bytes`/`recv_exact` above staged through the
    // endpoint's registered-memory pool: a handful of registrations
    // serve hundreds of transfers.
    let ps = alice.pool().stats();
    println!(
        "alice's mempool: {} hits / {} misses, {} registrations, {} KiB pinned at peak",
        ps.hits,
        ps.misses,
        ps.registrations,
        ps.pinned_peak / 1024
    );

    // Teardown: `close()` joins the service threads, releases every
    // socket registration, and unpins the pools.
    let mut alice = Arc::try_unwrap(alice).ok().expect("chat threads joined");
    let mut bob = Arc::try_unwrap(bob).ok().expect("chat threads joined");
    alice.close();
    bob.close();
    println!("closed both endpoints; all registered memory reclaimed");
}
