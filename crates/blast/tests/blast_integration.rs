//! Integration tests for the blast runner: verified payloads in every
//! mode, metric sanity, and workload reproducibility.

use blast::{run_blast, run_blast_seeds, BlastSpec, SizeDist, Summary, VerifyLevel};
use exs::{ExsConfig, ProtocolMode};
use rdma_verbs::profiles;
use simnet::SimDuration;

fn base_spec(mode: ProtocolMode) -> BlastSpec {
    BlastSpec {
        cfg: ExsConfig::with_mode(mode),
        outstanding_sends: 4,
        outstanding_recvs: 8,
        sizes: SizeDist::Exponential {
            mean: 32 << 10,
            max: 128 << 10,
        },
        messages: 80,
        verify: VerifyLevel::Full,
        seed: 21,
        ..BlastSpec::new(profiles::fdr_infiniband())
    }
}

#[test]
fn verified_run_per_mode() {
    for mode in [
        ProtocolMode::Dynamic,
        ProtocolMode::DirectOnly,
        ProtocolMode::IndirectOnly,
    ] {
        let report = run_blast(&base_spec(mode));
        assert_eq!(report.messages, 80);
        assert!(report.bytes > 0);
        assert!(report.throughput_bps() > 0.0, "mode {mode:?}");
        assert!(report.end > report.start);
        match mode {
            ProtocolMode::DirectOnly => {
                assert_eq!(report.indirect_transfers, 0);
                assert_eq!(report.direct_ratio(), 1.0);
            }
            ProtocolMode::IndirectOnly => {
                assert_eq!(report.direct_transfers, 0);
                assert_eq!(report.direct_ratio(), 0.0);
            }
            ProtocolMode::Dynamic | ProtocolMode::BCopy => {}
        }
    }
}

#[test]
fn throughput_definition_matches_eq1() {
    let report = run_blast(&base_spec(ProtocolMode::DirectOnly));
    let manual = report.bytes as f64 * 8.0 / report.elapsed().as_secs_f64();
    assert!((report.throughput_bps() - manual).abs() < 1.0);
}

#[test]
fn cpu_metrics_ordered_by_mode() {
    let direct = run_blast(&base_spec(ProtocolMode::DirectOnly));
    let indirect = run_blast(&base_spec(ProtocolMode::IndirectOnly));
    assert!(
        indirect.cpu_receiver > direct.cpu_receiver,
        "buffered mode must cost more receiver CPU ({} vs {})",
        indirect.cpu_receiver,
        direct.cpu_receiver
    );
}

#[test]
fn seeds_vary_but_replay_exactly() {
    let spec = base_spec(ProtocolMode::Dynamic);
    let a = run_blast_seeds(&spec, &[1, 2, 3]);
    let b = run_blast_seeds(&spec, &[1, 2, 3]);
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.end, y.end);
        assert_eq!(x.events, y.events);
    }
    assert!(
        a.windows(2).any(|w| w[0].end != w[1].end),
        "different seeds should give different timings"
    );
}

#[test]
fn waitall_receives_whole_buffers() {
    let spec = BlastSpec {
        sizes: SizeDist::Fixed(60_000),
        recv_len: 16 << 10,
        waitall: true,
        messages: 30,
        ..base_spec(ProtocolMode::Dynamic)
    };
    let report = run_blast(&spec);
    assert_eq!(report.bytes, 30 * 60_000);
}

#[test]
fn bursty_workload_switches_modes() {
    let spec = BlastSpec {
        cfg: ExsConfig::with_mode(ProtocolMode::Dynamic),
        outstanding_sends: 2,
        outstanding_recvs: 4,
        sizes: SizeDist::Bursty {
            large: 2 << 20,
            small: 2 << 10,
            burst_len: 40,
        },
        messages: 240,
        verify: VerifyLevel::None,
        seed: 3,
        ..BlastSpec::new(profiles::fdr_infiniband())
    };
    let report = run_blast(&spec);
    // The initial large burst runs direct; the first small burst knocks
    // the sender out of direct (it outpaces the ADVERT loop) and the
    // connection settles indirect — "if the network and application
    // reach a steady state, then the algorithm will remain in its
    // current transfer mode" (paper §IV-C). Both transfer kinds appear
    // and at least the direct→indirect switch happens.
    assert!(report.direct_transfers > 0, "large bursts should go direct");
    assert!(
        report.indirect_transfers > 0,
        "small bursts should go indirect"
    );
    assert!(report.mode_switches >= 1, "bursts should force a switch");
}

#[test]
fn wan_profile_run_is_rtt_dominated() {
    let mut cfg = ExsConfig::with_mode(ProtocolMode::Dynamic);
    cfg.ring_capacity = 64 << 20;
    let spec = BlastSpec {
        cfg,
        outstanding_sends: 2,
        outstanding_recvs: 2,
        sizes: SizeDist::Fixed(1 << 20),
        messages: 10,
        verify: VerifyLevel::Full,
        seed: 9,
        time_limit: SimDuration::from_secs(600),
        ..BlastSpec::new(profiles::roce_10g_wan())
    };
    let report = run_blast(&spec);
    // 10 messages with a 2-op window over 48 ms RTT: at least ~4 round
    // trips of elapsed time.
    assert!(report.elapsed().as_secs_f64() > 0.15);
    assert_eq!(report.bytes, 10 << 20);
}

#[test]
fn summary_aggation_over_reports() {
    let spec = base_spec(ProtocolMode::DirectOnly);
    let reports = run_blast_seeds(&spec, &[5, 6, 7, 8]);
    let tputs: Vec<f64> = reports.iter().map(|r| r.throughput_mbps()).collect();
    let s = Summary::of(&tputs);
    assert_eq!(s.n, 4);
    assert!(s.mean > 0.0);
    assert!(s.ci95 >= 0.0);
}

#[test]
#[should_panic(expected = "deadlocked or timed out")]
fn time_limit_catches_impossible_runs() {
    // A time limit far shorter than the transfer needs must abort
    // loudly rather than hang.
    let spec = BlastSpec {
        time_limit: SimDuration::from_micros(10),
        ..base_spec(ProtocolMode::Dynamic)
    };
    let _ = run_blast(&spec);
}
