//! Sharding is routing, not protocol: delivered bytes must be
//! bit-identical whatever the shard count, placement policy, server
//! consumption model (callback vs async) or backend (deterministic sim
//! vs real threads). Every test pins the digests to the same closed
//! form, `expected_digest`, so the identity is transitive across all of
//! them.

use std::sync::Arc;
use std::time::Duration;

use blast::fan_in::{expected_digest, payload_byte, FNV_OFFSET};
use blast::{run_fan_in, FanInSpec, VerifyLevel};
use exs::{ExsConfig, ShardConfig, ShardPolicy, ThreadPort, ThreadReactorPool, VerbsPort};
use rdma_verbs::{profiles, Access, HcaConfig, ThreadNet};

const SEED: u64 = 61;
const CONNS: usize = 12;
const MSGS: usize = 3;
const MSG_LEN: u64 = 4 << 10;
const EXPECTED: u64 = MSGS as u64 * MSG_LEN;

fn spec(shards: usize, policy: ShardPolicy, aio: bool) -> FanInSpec {
    FanInSpec {
        shards,
        shard_policy: policy,
        aio,
        msgs_per_conn: MSGS,
        msg_len: MSG_LEN,
        client_nodes: 4,
        verify: VerifyLevel::Full,
        seed: SEED,
        ..FanInSpec::new(profiles::fdr_infiniband(), CONNS)
    }
}

fn assert_expected(digests: &[u64], what: &str) {
    assert_eq!(digests.len(), CONNS, "{what}: digest per connection");
    for (i, &d) in digests.iter().enumerate() {
        assert_eq!(
            d,
            expected_digest(SEED, i, EXPECTED),
            "{what}: conn {i} digest moved"
        );
    }
}

/// shards=1 vs shards=4 on the simulator: digest-for-digest identical,
/// and both equal the closed form.
#[test]
fn sim_digests_identical_across_shard_counts() {
    let single = run_fan_in(&spec(1, ShardPolicy::RoundRobin, false));
    assert_expected(&single.digests, "1 shard");
    for shards in [2usize, 4] {
        let sharded = run_fan_in(&spec(shards, ShardPolicy::RoundRobin, false));
        assert_eq!(
            single.digests, sharded.digests,
            "{shards}-shard delivery diverged from the single-shard run"
        );
        let rows = sharded
            .shard_stats
            .expect("sharded run reports per-shard telemetry");
        assert_eq!(rows.len(), shards);
        assert_eq!(rows.iter().map(|s| s.assigned).sum::<u64>(), CONNS as u64);
        assert!(
            rows.iter().all(|s| s.cqes_dispatched > 0),
            "round-robin over {shards} shards must exercise every shard"
        );
    }
}

/// The async per-task server over a 4-way sharded driver delivers the
/// same bytes as the single-loop callback server.
#[test]
fn aio_sharded_matches_callback() {
    let callback = run_fan_in(&spec(1, ShardPolicy::RoundRobin, false));
    let aio = run_fan_in(&spec(4, ShardPolicy::RoundRobin, true));
    assert_eq!(
        callback.digests, aio.digests,
        "sharded aio server diverged from the callback server"
    );
    assert_expected(&aio.digests, "aio x4");
    let per_shard = aio
        .aio_per_shard
        .expect("sharded aio run reports per-shard executor stats");
    assert_eq!(per_shard.len(), 4);
    assert_eq!(
        per_shard.iter().map(|s| s.tasks_completed).sum::<u64>(),
        CONNS as u64,
        "one server task per connection, spread over the shard executors"
    );
}

/// Placement policy moves connections between shards, never bytes
/// within a stream: LeastLoaded and Affinity runs are digest-identical
/// to RoundRobin.
#[test]
fn placement_policies_deliver_identical_bytes() {
    let rr = run_fan_in(&spec(4, ShardPolicy::RoundRobin, false));
    assert_expected(&rr.digests, "round-robin x4");
    for policy in [ShardPolicy::LeastLoaded, ShardPolicy::Affinity] {
        let run = run_fan_in(&spec(4, policy, false));
        assert_eq!(
            rr.digests, run.digests,
            "{policy:?} placement changed delivered bytes"
        );
        let rows = run.shard_stats.expect("per-shard telemetry");
        assert_eq!(rows.iter().map(|s| s.assigned).sum::<u64>(), CONNS as u64);
    }
    // Affinity keys off the client node, and with 4 nodes over 4 shards
    // each shard hosts exactly one node's connections.
    let affinity = run_fan_in(&spec(4, ShardPolicy::Affinity, false));
    assert_eq!(affinity.digests, rr.digests);
}

fn fnv1a(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// The real-thread backend behind a 4-shard `ThreadReactorPool`
/// (blocking post/wait API, one service thread per shard, odd-sized
/// receive splits) delivers the same closed-form digests as the
/// simulator runs above — the cross-backend leg of the identity.
#[test]
fn thread_pool_sharded_digests_match_sim() {
    const RECV_LEN: u32 = 1500; // deliberately not a divisor of MSG_LEN
    let cfg = ExsConfig {
        ring_capacity: 16 << 10,
        credits: 8,
        sq_depth: 8,
        shard: ShardConfig {
            shards: 4,
            policy: ShardPolicy::RoundRobin,
        },
        ..ExsConfig::default()
    };
    let mut net = ThreadNet::new();
    let server_node = net.add_node(HcaConfig::default());
    let client_nodes: Vec<_> = (0..3).map(|_| net.add_node(HcaConfig::default())).collect();
    for c in &client_nodes {
        net.connect_nodes(c, &server_node, Duration::from_micros(5));
    }
    let net = Arc::new(net);
    let pool = ThreadReactorPool::new(
        net.clone(),
        server_node.clone(),
        Default::default(),
        &cfg,
        CONNS,
    );
    assert_eq!(pool.shards(), 4);

    let mut handles = Vec::with_capacity(CONNS);
    let mut clients = Vec::with_capacity(CONNS);
    for idx in 0..CONNS {
        let (handle, stream) = pool.accept(&client_nodes[idx % client_nodes.len()], &cfg);
        handles.push(handle);
        clients.push((idx, stream));
    }
    let rows = pool.shard_stats();
    assert_eq!(rows.iter().map(|s| s.assigned).sum::<u64>(), CONNS as u64);
    assert!(
        rows.iter().all(|s| s.conns == (CONNS / 4) as u64),
        "round-robin over 4 shards must spread {CONNS} conns evenly: {rows:?}"
    );

    let digests = std::thread::scope(|s| {
        let servers: Vec<_> = handles
            .iter()
            .map(|&handle| {
                let pool = &pool;
                let net = &net;
                s.spawn(move || {
                    let mr = pool.register(RECV_LEN as usize, Access::local_remote_write());
                    let node = pool.node().clone();
                    let mut digest = FNV_OFFSET;
                    let mut received = 0u64;
                    let mut buf = vec![0u8; RECV_LEN as usize];
                    // One extra receive past the payload picks up the
                    // zero-length EOF completion.
                    loop {
                        let id = pool.post_recv(handle, &mr, 0, RECV_LEN, false);
                        let len = pool
                            .wait_recv(handle, id, Duration::from_secs(30))
                            .expect("server receive timed out");
                        if len == 0 {
                            assert_eq!(received, EXPECTED, "EOF before the full stream");
                            break;
                        }
                        let port = ThreadPort::new(net, &node);
                        port.read_mr(mr.key, mr.addr, &mut buf[..len as usize])
                            .expect("read delivered bytes");
                        digest = fnv1a(digest, &buf[..len as usize]);
                        received += len as u64;
                    }
                    assert!(pool.peer_closed(handle));
                    digest
                })
            })
            .collect();

        let client_threads: Vec<_> = clients
            .into_iter()
            .map(|(idx, stream)| {
                s.spawn(move || {
                    let mut stream = stream;
                    for m in 0..MSGS {
                        let base = m as u64 * MSG_LEN;
                        let data: Vec<u8> = (0..MSG_LEN)
                            .map(|i| payload_byte(SEED, idx, base + i))
                            .collect();
                        stream.send_bytes(&data).expect("client send");
                    }
                    stream.shutdown();
                    stream.close();
                })
            })
            .collect();
        for c in client_threads {
            c.join().expect("client thread");
        }
        servers
            .into_iter()
            .map(|h| h.join().expect("server consumer"))
            .collect::<Vec<u64>>()
    });

    assert_expected(&digests, "thread pool x4");
    // Same closed form the sim runs pin to — backend identity without
    // rerunning the simulator here.
    let sim = run_fan_in(&spec(4, ShardPolicy::RoundRobin, false));
    assert_eq!(sim.digests, digests, "thread backend diverged from sim");

    for handle in handles {
        pool.close_conn(handle);
    }
    let merged = pool.reactor_stats();
    assert_eq!(merged.conns_added, CONNS as u64);
    assert_eq!(merged.conns_removed, CONNS as u64);
    drop(pool);
    net.quiesce();
}
