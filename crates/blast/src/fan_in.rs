//! Fan-in workload: M client streams blast into **one** server node.
//!
//! Where [`crate::runner`] reproduces the paper's 1:1 blast tool, this
//! module measures the server-scalability question the reactor
//! subsystem exists for: how one node multiplexes hundreds or thousands
//! of EXS connections through a single [`Reactor`] over shared
//! completion queues, instead of polling per-connection CQs.
//!
//! The run reports aggregate ingress throughput, the per-connection
//! direct:indirect split, and the reactor's event-loop counters (CQ
//! drain batch sizes, fairness deferrals). Per-connection delivery is
//! digested with FNV-1a in arrival order so different backends running
//! the same seed can be compared byte-for-byte.

use std::collections::{HashMap, VecDeque};
use std::io::Write as _;
use std::path::{Path, PathBuf};

use std::cell::RefCell;
use std::rc::Rc;

use exs::{
    connect_mux_pair, shard::choose_shard, AioStats, ConnId, ConnStats, DirectPolicy, Executor,
    ExsConfig, ExsError, ExsEvent, MemPool, MemPoolConfig, MrLease, MuxEndpoint, MuxEvent, MuxId,
    PoolStats, Reactor, ReactorConfig, ReactorPool, ReactorStats, ShardBalance, ShardConfig,
    ShardHandle, ShardPolicy, ShardStats, SimShardDriver, StreamSocket,
};
use rdma_verbs::{
    Access, FabricModel, FabricStats, HwProfile, MrInfo, NodeApi, NodeApp, NodeId, SimNet,
};
use simnet::{SimDuration, SimTime};

use crate::runner::VerifyLevel;

/// FNV-1a 64-bit offset basis (digest seed).
pub const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

/// Folds `bytes` into an FNV-1a 64-bit digest.
pub fn fnv1a(mut hash: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// The byte every backend writes at stream `offset` of connection
/// `conn` for workload seed `seed` — shared so the SimFabric and
/// ThreadFabric runs produce comparable streams.
pub fn payload_byte(seed: u64, conn: usize, offset: u64) -> u8 {
    offset
        .wrapping_mul(31)
        .wrapping_add(conn as u64 * 7)
        .wrapping_add(seed) as u8
}

/// The digest a connection's full stream must hash to.
pub fn expected_digest(seed: u64, conn: usize, total: u64) -> u64 {
    let mut h = FNV_OFFSET;
    for off in 0..total {
        h = fnv1a(h, &[payload_byte(seed, conn, off)]);
    }
    h
}

/// An [`ExsConfig`] sized for many concurrent connections on one node:
/// the defaults (16 MiB ring, 1024 credits) are per-connection resource
/// budgets a thousand-way fan-in cannot afford. Adaptive direct-mode
/// re-entry is on — a sender with ≥ 4 KiB left pauses for the server's
/// pre-posted advert queue instead of paying the indirect memcpy.
pub fn fan_in_cfg() -> ExsConfig {
    ExsConfig {
        ring_capacity: 64 << 10,
        credits: 16,
        sq_depth: 16,
        direct: DirectPolicy {
            min_direct_size: 4 << 10,
            ..DirectPolicy::default()
        },
        ..ExsConfig::default()
    }
}

/// One fan-in experiment configuration.
#[derive(Clone, Debug)]
pub struct FanInSpec {
    /// Hardware model for every node and link.
    pub profile: HwProfile,
    /// Per-connection EXS configuration (see [`fan_in_cfg`]).
    pub cfg: ExsConfig,
    /// Reactor tunables (budget, drain batch).
    pub reactor: ReactorConfig,
    /// Concurrent connections into the server.
    pub conns: usize,
    /// Client nodes the connections are spread over (round-robin;
    /// clamped to `1..=conns`).
    pub client_nodes: usize,
    /// Messages each connection sends.
    pub msgs_per_conn: usize,
    /// Bytes per message.
    pub msg_len: u64,
    /// Simultaneously outstanding `exs_send`s per connection.
    pub outstanding_sends: usize,
    /// Posted receive length (0 ⇒ `msg_len`).
    pub recv_len: u32,
    /// Receive buffers each server connection keeps posted ahead of the
    /// data (clamped to ≥ 1). Depth > 1 is what keeps the Fig. 3 advert
    /// gate open: when a receive completes, the next buffers are already
    /// advertised, so the sender's next transfer decision sees a usable
    /// ADVERT instead of falling back to the intermediate ring.
    pub prepost_recvs: usize,
    /// Payload verification level.
    pub verify: VerifyLevel,
    /// Source buffers through registered-memory pools: clients lease a
    /// send buffer per message from their node's pin-down cache (first
    /// uses register, later ones hit), and the server's receive buffers
    /// are pool leases. Off: every buffer is registered up front and
    /// held for the whole run. Delivered bytes are identical either
    /// way; only registration traffic and CPU cost differ.
    pub pooled: bool,
    /// Shared-transport mode: instead of one private QP per connection,
    /// every connection becomes a **stream** on a pooled-QP
    /// [`MuxEndpoint`] pair per client node (`cfg.mux.qp_pool_size` QPs
    /// each, stream ids in the WWI immediate). Delivered bytes and
    /// digests are identical to the QP-per-connection path; only the
    /// transport resource model changes. Ignores `pooled`.
    pub mux: bool,
    /// Async server mode: instead of the callback [`ReactorServer`]
    /// loop, the server runs one async task per connection on a single
    /// [`exs::aio`] executor (`recv_some` loop folding the same FNV-1a
    /// digest). Delivered bytes and digests are identical to the
    /// callback path; only the consumption model changes. Ignores
    /// `pooled` on the server side (the executor's readahead buffers
    /// are always pool leases).
    pub aio: bool,
    /// Reactor shards at the server (0/1 ⇒ one reactor, the classic
    /// single-loop server). With N > 1 the server runs a
    /// [`ReactorPool`]: each shard gets its own CQ pair, connections
    /// are routed once at accept by `shard_policy`, and the sim driver
    /// interleaves the shards deterministically — delivered bytes and
    /// digests are identical to the single-shard run. Not wired for
    /// `mux` mode.
    pub shards: usize,
    /// Placement policy for `shards > 1`.
    pub shard_policy: ShardPolicy,
    /// Workload seed (host jitter, link seeds, payload pattern).
    pub seed: u64,
    /// Bandwidth-contention model for the simulated fabric.
    /// [`FabricModel::Fifo`] (default) gives every node pair a private
    /// serializing link — aggregate ingress can exceed the server NIC's
    /// line rate. [`FabricModel::FairShare`] makes concurrent flows
    /// split NIC/core capacity max-min fairly, capping the aggregate at
    /// the bottleneck and exposing incast contention.
    pub fabric: FabricModel,
    /// Abort threshold for the virtual clock.
    pub time_limit: SimDuration,
}

impl FanInSpec {
    /// A spec with scale-friendly defaults for `conns` connections.
    pub fn new(profile: HwProfile, conns: usize) -> FanInSpec {
        FanInSpec {
            profile,
            cfg: fan_in_cfg(),
            reactor: ReactorConfig::default(),
            conns,
            client_nodes: conns.min(8),
            msgs_per_conn: 8,
            msg_len: 16 << 10,
            outstanding_sends: 2,
            recv_len: 0,
            prepost_recvs: 4,
            verify: VerifyLevel::None,
            pooled: false,
            mux: false,
            aio: false,
            shards: 1,
            shard_policy: ShardPolicy::RoundRobin,
            seed: 1,
            fabric: FabricModel::Fifo,
            time_limit: SimDuration::from_secs(600),
        }
    }

    fn effective_recv_len(&self) -> u32 {
        if self.recv_len != 0 {
            self.recv_len
        } else {
            self.msg_len.min(u32::MAX as u64) as u32
        }
    }

    fn effective_prepost(&self) -> usize {
        self.prepost_recvs.max(1)
    }

    fn effective_shards(&self) -> usize {
        self.shards.max(1)
    }

    fn shard_cfg(&self) -> ShardConfig {
        ShardConfig {
            shards: self.effective_shards(),
            policy: self.shard_policy,
        }
    }
}

/// The result of one fan-in run.
#[derive(Clone, Debug)]
pub struct FanInReport {
    /// Connections that ran.
    pub conns: usize,
    /// Total bytes delivered across all connections.
    pub bytes: u64,
    /// Virtual time from start to the last byte's delivery.
    pub elapsed: SimDuration,
    /// Each connection's server-side protocol counters.
    pub per_conn: Vec<ConnStats>,
    /// FNV-1a digest of each connection's delivered stream, in delivery
    /// order.
    pub digests: Vec<u64>,
    /// Sum of the per-connection counters at the server (receiver
    /// side: copies out of the ring, receives completed, ADVERTs sent).
    pub aggregate: ConnStats,
    /// Sum of the per-connection counters at the clients (sender side:
    /// direct/indirect transfer split, resync attempts, ADVERTs
    /// consumed) — the half the server-side aggregate cannot see.
    pub aggregate_tx: ConnStats,
    /// The server reactor's event-loop counters.
    pub reactor: ReactorStats,
    /// Merged memory-pool counters (server + every client node) for a
    /// pooled run; `None` when the run registered buffers directly.
    pub pool: Option<PoolStats>,
    /// The configured per-link bandwidth (bps) — the server NIC's line
    /// rate, i.e. the physical ceiling on aggregate ingress. 0 on the
    /// ideal (unlimited) profile. Capacity context for the throughput
    /// number: without it an over-capacity result looks plausible.
    pub link_bandwidth_bps: u64,
    /// Fair-share fabric telemetry (per-flow achieved rates, re-speed
    /// counts, Jain fairness index); `None` on the FIFO model.
    pub fabric: Option<FabricStats>,
    /// Wall-clock time spent on connection establishment (QP creation,
    /// MR registration, parameter exchange) before the timed transfer —
    /// the setup-latency axis of the QP-per-stream vs pooled comparison.
    pub setup_wall: std::time::Duration,
    /// Server-side modeled pinned/context memory in mux mode, captured
    /// at full stream fan-out (every stream open, every pool transport
    /// established); `None` on the QP-per-connection path.
    pub mux_footprint: Option<u64>,
    /// The same memory model applied to a QP-per-stream baseline
    /// carrying this run's stream count; `None` outside mux mode.
    pub mux_baseline: Option<u64>,
    /// Async-executor counters (tasks, wakeups, polls, timers,
    /// cancellations) for an aio-mode run; `None` on the callback
    /// paths.
    pub aio: Option<AioStats>,
    /// Per-shard service-loop telemetry (placement, steals, poll and
    /// dispatch volume, busy ratio where a wall clock exists). Present
    /// on every sharded-capable path — a single-shard run reports one
    /// entry, so snapshots across shard counts stay structurally
    /// comparable. `None` only in mux mode (not wired for shards).
    pub shard_stats: Option<Vec<ShardStats>>,
    /// Per-shard async-executor counters for a sharded aio run.
    pub aio_per_shard: Option<Vec<AioStats>>,
    /// Simulator events processed.
    pub events: u64,
}

impl FanInReport {
    /// Aggregate ingress throughput in Mbit/s.
    pub fn throughput_mbps(&self) -> f64 {
        if self.elapsed.is_zero() {
            0.0
        } else {
            self.bytes as f64 * 8.0 / self.elapsed.as_secs_f64() / 1e6
        }
    }

    /// Direct share of all transfers into the server. Transfer-mode
    /// counters live on the *sending* half, so this reads the
    /// client-side aggregate (the server-side block used to report a
    /// vacuous 0/0 here).
    pub fn direct_ratio(&self) -> f64 {
        self.aggregate_tx.direct_ratio()
    }

    /// Direct share of all bytes into the server (sender-side
    /// counters, like [`FanInReport::direct_ratio`]).
    pub fn direct_byte_ratio(&self) -> f64 {
        self.aggregate_tx.direct_byte_ratio()
    }

    /// Aggregate ingress throughput as a fraction of the bottleneck
    /// link's capacity. A value above ~1.0 is self-evidently bogus —
    /// more payload delivered per second than the server NIC can carry
    /// (the FIFO model produces exactly this at high fan-in). 0.0 when
    /// the profile's bandwidth is unlimited.
    pub fn offered_load_ratio(&self) -> f64 {
        if self.link_bandwidth_bps == 0 {
            0.0
        } else {
            self.throughput_mbps() * 1e6 / self.link_bandwidth_bps as f64
        }
    }

    /// Modeled pinned/context bytes per stream in mux mode (`None`
    /// elsewhere): the acceptance gate divides this against
    /// [`FanInReport::mux_baseline`]`/conns`.
    pub fn memory_per_stream(&self) -> Option<u64> {
        self.mux_footprint.map(|f| f / self.conns.max(1) as u64)
    }

    /// Serializes the whole run — aggregate counters, reactor counters,
    /// and the per-connection snapshots — as one JSON object
    /// (dependency-free, like [`ConnStats::to_json`]).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(512 + self.per_conn.len() * 256);
        out.push_str(&format!(
            "{{\"conns\":{},\"bytes\":{},\"elapsed_ns\":{},\
             \"throughput_mbps\":{:.3},\"link_bandwidth_bps\":{},\
             \"offered_load_ratio\":{:.6},\"direct_ratio\":{:.6},\
             \"direct_byte_ratio\":{:.6},\"setup_wall_us\":{},\"events\":{},",
            self.conns,
            self.bytes,
            self.elapsed.as_nanos(),
            self.throughput_mbps(),
            self.link_bandwidth_bps,
            self.offered_load_ratio(),
            self.direct_ratio(),
            self.direct_byte_ratio(),
            self.setup_wall.as_micros(),
            self.events,
        ));
        if let (Some(fp), Some(base)) = (self.mux_footprint, self.mux_baseline) {
            out.push_str(&format!(
                "\"mux_footprint\":{},\"mux_baseline\":{},\
                 \"memory_per_stream\":{},",
                fp,
                base,
                self.memory_per_stream().unwrap_or(0),
            ));
        }
        out.push_str(&format!("\"aggregate\":{},", self.aggregate.to_json()));
        out.push_str(&format!(
            "\"aggregate_tx\":{},",
            self.aggregate_tx.to_json()
        ));
        out.push_str(&format!("\"reactor\":{},", self.reactor.to_json()));
        if let Some(fabric) = &self.fabric {
            out.push_str(&format!("\"fabric\":{},", fabric.to_json()));
        }
        if let Some(pool) = &self.pool {
            out.push_str(&format!("\"pool\":{},", pool.to_json()));
        }
        if let Some(aio) = &self.aio {
            out.push_str(&format!("\"aio\":{},", aio.to_json()));
        }
        if let Some(shards) = &self.shard_stats {
            let bal = ShardBalance::of(shards);
            out.push_str(&format!(
                "\"shards\":{{\"count\":{},\"max_conns_per_shard\":{},\
                 \"mean_conns_per_shard\":{:.3},\"imbalance\":{:.6},\"per_shard\":[",
                shards.len(),
                bal.max_conns,
                bal.mean_conns,
                bal.imbalance(),
            ));
            for (i, s) in shards.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&s.to_json());
            }
            out.push(']');
            if let Some(per_shard) = &self.aio_per_shard {
                out.push_str(",\"aio_per_shard\":[");
                for (i, s) in per_shard.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(&s.to_json());
                }
                out.push(']');
            }
            out.push_str("},");
        }
        out.push_str("\"digests\":[");
        for (i, d) in self.digests.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{d:016x}\""));
        }
        out.push_str("],\"per_conn\":[");
        for (i, s) in self.per_conn.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&s.to_json());
        }
        out.push_str("]}");
        out
    }

    /// Writes the JSON snapshot to `dir/name.json` (creating `dir`),
    /// returning the path written.
    pub fn write_snapshot(&self, dir: impl AsRef<Path>, name: &str) -> std::io::Result<PathBuf> {
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("{name}.json"));
        let mut f = std::fs::File::create(&path)?;
        f.write_all(self.to_json().as_bytes())?;
        f.write_all(b"\n")?;
        Ok(path)
    }
}

struct ConnState {
    sock: StreamSocket,
    /// Global connection index (pattern + digest identity).
    idx: usize,
    /// Up-front registered send slots (unpooled mode; empty when
    /// pooled).
    slots: Vec<MrInfo>,
    free: Vec<usize>,
    slot_of: HashMap<u64, usize>,
    /// Outstanding-send cap (slot count in unpooled mode).
    max_outstanding: usize,
    /// Live send leases by operation id (pooled mode); dropping one on
    /// completion returns the buffer to the node's pin-down cache.
    leases: HashMap<u64, MrLease>,
    sent: usize,
    acked: usize,
    pos: u64,
    shutdown: bool,
}

/// One client node driving several outbound connections, each with its
/// own private CQs and service loop (the conventional per-connection
/// pattern the server-side reactor is measured against).
struct FanInClient {
    conns: Vec<ConnState>,
    msgs: usize,
    msg_len: u64,
    verify: VerifyLevel,
    /// This node's pin-down cache (pooled mode).
    pool: Option<MemPool>,
    seed: u64,
    scratch: Vec<u8>,
}

impl FanInClient {
    fn kick(&mut self, api: &mut NodeApi<'_>, ci: usize) {
        let msgs = self.msgs;
        let msg_len = self.msg_len;
        let c = &mut self.conns[ci];
        while c.sent < msgs {
            let id = c.sent as u64;
            let mr = match &self.pool {
                Some(pool) => {
                    if c.leases.len() >= c.max_outstanding {
                        break;
                    }
                    let lease = pool.acquire(api, msg_len as usize, Access::NONE);
                    let info = *lease.info();
                    c.leases.insert(id, lease);
                    info
                }
                None => {
                    let Some(slot) = c.free.pop() else {
                        break;
                    };
                    c.slot_of.insert(id, slot);
                    c.slots[slot]
                }
            };
            if self.verify == VerifyLevel::Full {
                self.scratch.clear();
                self.scratch
                    .extend((0..msg_len).map(|i| payload_byte(self.seed, c.idx, c.pos + i)));
                api.write_mr(mr.key, mr.addr, &self.scratch).unwrap();
            }
            c.sock.exs_send(api, &mr, 0, msg_len, id);
            c.pos += msg_len;
            c.sent += 1;
        }
        if c.sent == msgs && c.acked == msgs && !c.shutdown {
            c.sock.exs_shutdown(api);
            c.shutdown = true;
        }
    }
}

impl NodeApp for FanInClient {
    fn on_start(&mut self, api: &mut NodeApi<'_>) {
        for ci in 0..self.conns.len() {
            self.kick(api, ci);
        }
    }
    fn on_wake(&mut self, api: &mut NodeApi<'_>) {
        for ci in 0..self.conns.len() {
            let c = &mut self.conns[ci];
            c.sock.handle_wake(api);
            for ev in c.sock.take_events() {
                match ev {
                    ExsEvent::SendComplete { id, .. } => {
                        if let Some(slot) = c.slot_of.remove(&id) {
                            c.free.push(slot);
                        }
                        // Pooled mode: the lease drops here and its
                        // buffer returns to the cache for the next kick.
                        c.leases.remove(&id);
                        c.acked += 1;
                    }
                    ExsEvent::ConnectionError => panic!("fan-in client conn {} failed", c.idx),
                    _ => {}
                }
            }
            self.kick(api, ci);
        }
    }
    fn is_done(&self) -> bool {
        self.conns.iter().all(|c| c.shutdown)
    }
}

/// The server: every accepted connection multiplexed through a
/// [`ReactorPool`] (one shard ⇒ the classic single reactor over shared
/// CQs), serviced to quiescence on each wake. The sim driver
/// interleaves the shards in shard order, so a sharded run is exactly
/// as deterministic as a single-loop run.
struct ReactorServer {
    pool: ReactorPool,
    /// Global connection index → pool handle (shard + local id).
    handles: Vec<ShardHandle>,
    /// Pool handle → global connection index (pattern + digest
    /// identity is keyed globally, not per shard).
    idx_of: HashMap<ShardHandle, usize>,
    /// Reusable readiness buffer for the service loop.
    ready: Vec<(ShardHandle, exs::Readiness)>,
    /// Per-connection pre-posted receive slots (`prepost_recvs` buffers
    /// each).
    mrs: Vec<Vec<MrInfo>>,
    /// Posted-but-uncompleted `(recv id, slot)` pairs per connection, in
    /// posting order — receives complete FIFO, so the front is always
    /// the completing slot.
    posted: Vec<VecDeque<(u64, usize)>>,
    /// Slot indices currently free to re-post, per connection.
    free: Vec<Vec<usize>>,
    recv_len: u32,
    /// Expected bytes per connection.
    expected: u64,
    received: Vec<u64>,
    eof: Vec<bool>,
    digests: Vec<u64>,
    verify: VerifyLevel,
    seed: u64,
    next_id: u64,
    finished_at: Option<SimTime>,
    scratch: Vec<u8>,
}

impl ReactorServer {
    /// Consumes one ready connection's events and refills its
    /// pre-posted receive queue to full depth. Returns true if anything
    /// was consumed or posted (progress).
    fn handle_conn(&mut self, api: &mut NodeApi<'_>, idx: usize) -> bool {
        let h = self.handles[idx];
        let events = self.pool.shard_mut(h.shard).take_events(h.conn);
        let mut progressed = !events.is_empty();
        for ev in events {
            match ev {
                ExsEvent::RecvComplete { id, len } => {
                    let (pid, slot) = self.posted[idx]
                        .pop_front()
                        .expect("completion without a posted receive");
                    assert_eq!(pid, id, "receives must complete in posting order");
                    if len > 0 {
                        let mr = self.mrs[idx][slot];
                        self.scratch.resize(len as usize, 0);
                        api.read_mr(mr.key, mr.addr, &mut self.scratch).unwrap();
                        if self.verify == VerifyLevel::Full {
                            for (i, &b) in self.scratch.iter().enumerate() {
                                assert_eq!(
                                    b,
                                    payload_byte(self.seed, idx, self.received[idx] + i as u64),
                                    "conn {idx} corrupted at offset {}",
                                    self.received[idx] + i as u64
                                );
                            }
                        }
                        self.digests[idx] = fnv1a(self.digests[idx], &self.scratch);
                        self.received[idx] += len as u64;
                    }
                    self.free[idx].push(slot);
                }
                ExsEvent::PeerClosed => self.eof[idx] = true,
                ExsEvent::ConnectionError => panic!("fan-in server conn {idx} failed"),
                ExsEvent::SendComplete { .. } => {}
            }
        }
        // Refill to depth: every freed slot goes straight back out while
        // the stream still owes bytes, so the advert queue never drains
        // below depth at the sender's next decision point. Receives left
        // over at end-of-stream complete with zero bytes.
        while !self.eof[idx] && self.received[idx] < self.expected {
            let Some(slot) = self.free[idx].pop() else {
                break;
            };
            let mr = self.mrs[idx][slot];
            let id = self.next_id;
            self.next_id += 1;
            self.pool.shard_mut(h.shard).conn_mut(h.conn).exs_recv(
                api,
                &mr,
                0,
                self.recv_len,
                false,
                id,
            );
            self.posted[idx].push_back((id, slot));
            progressed = true;
        }
        progressed
    }

    /// Polls every shard until quiescent: no connection made progress
    /// and no CQ/budget backlog remains on any shard. Bounded because
    /// each iteration consumes queued completions and each connection
    /// posts at most one receive per iteration.
    fn service(&mut self, api: &mut NodeApi<'_>) {
        let mut ready = std::mem::take(&mut self.ready);
        loop {
            self.pool.poll_all_into(api, &mut ready);
            let mut progressed = false;
            for &(h, r) in ready.iter() {
                if r.readable || r.closed || r.error {
                    let idx = self.idx_of[&h];
                    progressed |= self.handle_conn(api, idx);
                }
            }
            if self.finished_at.is_none() && self.is_done() {
                self.finished_at = Some(api.now());
            }
            if !progressed && !self.pool.has_backlog() {
                break;
            }
        }
        self.ready = ready;
    }
}

impl NodeApp for ReactorServer {
    fn on_start(&mut self, api: &mut NodeApi<'_>) {
        // Post the initial receive on every connection (none is
        // "readable" yet, so prime directly rather than via poll).
        for idx in 0..self.handles.len() {
            self.handle_conn(api, idx);
        }
    }
    fn on_wake(&mut self, api: &mut NodeApi<'_>) {
        self.service(api);
    }
    fn is_done(&self) -> bool {
        self.eof.iter().all(|&e| e) && self.received.iter().all(|&r| r == self.expected)
    }
}

/// Runs one fan-in experiment on the simulated fabric.
///
/// # Panics
/// Panics on deadlock/timeout, payload corruption (with
/// [`VerifyLevel::Full`]), or any connection error — all protocol bugs.
pub fn run_fan_in(spec: &FanInSpec) -> FanInReport {
    if spec.aio {
        assert!(
            !spec.mux,
            "aio fan-in drives per-connection streams; mux+aio is not wired"
        );
        return run_fan_in_aio(spec);
    }
    if spec.mux {
        assert!(
            spec.effective_shards() == 1,
            "sharded mux fan-in is not wired; use shards=1 with mux"
        );
        return run_fan_in_mux(spec);
    }
    assert!(spec.conns >= 1, "need at least one connection");
    let expected = spec.msgs_per_conn as u64 * spec.msg_len;
    let recv_len = spec.effective_recv_len();
    let prepost = spec.effective_prepost();
    let nshards = spec.effective_shards();

    let mut net = SimNet::new();
    net.set_fabric(spec.fabric.clone());
    net.set_host_seed(
        spec.seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(3),
    );
    let server_node = net.add_node(spec.profile.host.clone(), spec.profile.hca.clone());
    let nclients = spec.client_nodes.clamp(1, spec.conns);
    let client_nodes: Vec<NodeId> = (0..nclients)
        .map(|_| net.add_node(spec.profile.host.clone(), spec.profile.hca.clone()))
        .collect();
    for (i, &c) in client_nodes.iter().enumerate() {
        net.connect_nodes(
            c,
            server_node,
            spec.profile.link.clone(),
            spec.seed.wrapping_add(i as u64),
        );
    }

    // Shared CQs sized for every connection's worst case — full size
    // per shard, since a skewed policy may put most connections on one
    // shard and CQ overflow is fatal.
    let setup_start = std::time::Instant::now();
    let per_conn_cq = spec.cfg.sq_depth * 2 + spec.cfg.credits as usize * 2;
    let reactors: Vec<Reactor> = (0..nshards)
        .map(|_| {
            let (send_cq, recv_cq) = net.with_api(server_node, |api| {
                (
                    api.create_cq(per_conn_cq * spec.conns),
                    api.create_cq(per_conn_cq * spec.conns),
                )
            });
            Reactor::new(send_cq, recv_cq, spec.reactor)
        })
        .collect();
    let mut pool = ReactorPool::new(reactors, spec.shard_cfg());

    // One pool per node in pooled mode: each client node's connections
    // share a pin-down cache, as does the server behind the reactor.
    let server_pool = spec.pooled.then(|| MemPool::new(spec.cfg.pool.clone()));
    let mut clients: Vec<FanInClient> = (0..nclients)
        .map(|_| FanInClient {
            conns: Vec::new(),
            msgs: spec.msgs_per_conn,
            msg_len: spec.msg_len,
            verify: spec.verify,
            pool: spec.pooled.then(|| MemPool::new(spec.cfg.pool.clone())),
            seed: spec.seed,
            scratch: Vec::new(),
        })
        .collect();
    let mut server_mrs = Vec::with_capacity(spec.conns);
    // Server-side receive leases: held for the whole run (the reactor
    // re-posts into the same buffer), released together at the end.
    let mut server_leases: Vec<MrLease> = Vec::new();
    let mut handles = Vec::with_capacity(spec.conns);
    let mut idx_of = HashMap::with_capacity(spec.conns);
    for idx in 0..spec.conns {
        let cnode = client_nodes[idx % nclients];
        // Affinity policy keys on the client node, so one client's
        // connections share a shard (and its caches).
        let shard = pool.pick_shard(Some(cnode.0 as u64));
        let (send_cq, recv_cq) = pool.shard_cqs(shard);
        let (csock, ssock) =
            StreamSocket::pair_shared(&mut net, cnode, server_node, send_cq, recv_cq, &spec.cfg);
        let handle = pool.accept_on(shard, ssock);
        handles.push(handle);
        idx_of.insert(handle, idx);
        let max_outstanding = spec.outstanding_sends.max(1);
        let slots = if spec.pooled {
            Vec::new()
        } else {
            net.with_api(cnode, |api| {
                (0..max_outstanding)
                    .map(|_| api.register_mr(spec.msg_len as usize, Access::NONE))
                    .collect::<Vec<_>>()
            })
        };
        let free = (0..slots.len()).collect();
        clients[idx % nclients].conns.push(ConnState {
            sock: csock,
            idx,
            slots,
            free,
            slot_of: HashMap::new(),
            max_outstanding,
            leases: HashMap::new(),
            sent: 0,
            acked: 0,
            pos: 0,
            shutdown: false,
        });
        let slots: Vec<MrInfo> = (0..prepost)
            .map(|_| match &server_pool {
                Some(pool) => net.with_api(server_node, |api| {
                    let lease = pool.acquire(api, recv_len as usize, Access::local_remote_write());
                    let info = *lease.info();
                    server_leases.push(lease);
                    info
                }),
                None => net.with_api(server_node, |api| {
                    api.register_mr(recv_len as usize, Access::local_remote_write())
                }),
            })
            .collect();
        server_mrs.push(slots);
    }
    let setup_wall = setup_start.elapsed();

    let mut server = ReactorServer {
        pool,
        handles,
        idx_of,
        ready: Vec::new(),
        mrs: server_mrs,
        posted: (0..spec.conns).map(|_| VecDeque::new()).collect(),
        free: (0..spec.conns).map(|_| (0..prepost).collect()).collect(),
        recv_len,
        expected,
        received: vec![0; spec.conns],
        eof: vec![false; spec.conns],
        digests: vec![FNV_OFFSET; spec.conns],
        verify: spec.verify,
        seed: spec.seed,
        next_id: 0,
        finished_at: None,
        scratch: Vec::new(),
    };

    let mut apps: Vec<&mut dyn NodeApp> = Vec::with_capacity(1 + nclients);
    apps.push(&mut server);
    for c in clients.iter_mut() {
        apps.push(c);
    }
    let outcome = net.run(&mut apps, SimTime::ZERO + spec.time_limit);
    assert!(
        outcome.completed,
        "fan-in deadlocked or timed out: {} of {} conns at EOF, {:?} received, ended {:?}",
        server.eof.iter().filter(|&&e| e).count(),
        spec.conns,
        server.received.iter().sum::<u64>(),
        outcome.end,
    );

    let end = server.finished_at.unwrap_or(outcome.end);
    // Fold the shared CQs' pressure gauges into every snapshot before
    // serializing (overflow here would mean the per-conn sizing above
    // was wrong).
    net.with_api(server_node, |api| {
        for &h in &server.handles {
            server
                .pool
                .shard_mut(h.shard)
                .conn_mut(h.conn)
                .sync_cq_stats(api);
        }
    });
    let fabric_stats = net.fabric_stats();
    // Per-conn snapshots in *global* index order, regardless of which
    // shard each connection landed on — snapshots across shard counts
    // must stay row-for-row comparable.
    let mut per_conn: Vec<ConnStats> = server
        .handles
        .iter()
        .map(|&h| server.pool.shard(h.shard).conn(h.conn).stats().clone())
        .collect();
    let mut aggregate = server.pool.aggregate_conn_stats();
    if let Some(fs) = &fabric_stats {
        // Annotate every connection with its carrying flow's telemetry
        // (connections round-robin over client nodes; the flow is the
        // client→server node pair).
        for (idx, stats) in per_conn.iter_mut().enumerate() {
            let cnode = client_nodes[idx % nclients];
            if let Some(flow) = fs
                .flows
                .iter()
                .find(|f| f.src == cnode.0 && f.dst == server_node.0)
            {
                stats.fabric_respeeds = flow.respeeds;
                stats.record_fabric_flow(flow.achieved_mbps());
            }
        }
        aggregate.fabric_respeeds = fs.respeeds;
        for flow in fs.flows.iter() {
            aggregate.record_fabric_flow(flow.achieved_mbps());
        }
    }
    let reactor_stats = server.pool.reactor_stats();
    let shard_stats = server.pool.shard_stats();
    assert_eq!(reactor_stats.orphan_cqes, 0, "no completion went unrouted");
    assert_eq!(
        aggregate.bytes_received,
        expected * spec.conns as u64,
        "every stream fully delivered"
    );

    // Sender-side counters live in the client sockets — fold the CQ
    // gauges in and merge them so direct/indirect accounting is
    // auditable end to end (the server-side aggregate only ever sees
    // the receive half).
    let mut aggregate_tx = ConnStats::default();
    for (i, c) in clients.iter_mut().enumerate() {
        let cnode = client_nodes[i];
        net.with_api(cnode, |api| {
            for cs in c.conns.iter_mut() {
                cs.sock.sync_cq_stats(api);
            }
        });
        for cs in c.conns.iter() {
            aggregate_tx.merge(cs.sock.stats());
        }
    }
    assert_eq!(
        aggregate_tx.bytes_sent,
        expected * spec.conns as u64,
        "every stream fully sent"
    );

    let pool = server_pool.map(|sp| {
        let mut total = sp.stats();
        for c in &clients {
            if let Some(cp) = &c.pool {
                total.merge(&cp.stats());
            }
        }
        total
    });
    drop(server_leases);

    FanInReport {
        conns: spec.conns,
        bytes: expected * spec.conns as u64,
        elapsed: end.saturating_duration_since(SimTime::ZERO),
        per_conn,
        digests: server.digests,
        aggregate,
        aggregate_tx,
        reactor: reactor_stats,
        pool,
        link_bandwidth_bps: spec.profile.link.bandwidth_bps,
        fabric: fabric_stats,
        setup_wall,
        mux_footprint: None,
        mux_baseline: None,
        aio: None,
        shard_stats: Some(shard_stats),
        aio_per_shard: None,
        events: outcome.events,
    }
}

/// The aio-mode server node: a [`SimShardDriver`] pumping one async
/// executor per shard (one shard ⇒ the same turn sequence as
/// [`SimDriver`]), plus a completion-time probe ([`ReactorServer`]
/// records `finished_at` the same way, so the two modes' elapsed times
/// are comparable).
struct AioFanInServer {
    drv: SimShardDriver,
    finished_at: Option<SimTime>,
}

impl AioFanInServer {
    fn note(&mut self, api: &mut NodeApi<'_>) {
        if self.finished_at.is_none() && self.drv.is_done() {
            self.finished_at = Some(api.now());
        }
    }
}

impl NodeApp for AioFanInServer {
    fn on_start(&mut self, api: &mut NodeApi<'_>) {
        self.drv.on_start(api);
        self.note(api);
    }
    fn on_wake(&mut self, api: &mut NodeApi<'_>) {
        self.drv.on_wake(api);
        self.note(api);
    }
    fn on_timer(&mut self, api: &mut NodeApi<'_>, token: u64) {
        self.drv.on_timer(api, token);
        self.note(api);
    }
    fn is_done(&self) -> bool {
        self.drv.is_done()
    }
}

/// Per-connection delivery state shared between the aio server tasks
/// and the harness (single-threaded executor, so a plain `RefCell`).
struct AioShared {
    digests: Vec<u64>,
    received: Vec<u64>,
}

/// Runs one fan-in experiment with the async server (one task per
/// connection on a single [`exs::aio`] executor). Clients are the
/// unchanged callback [`FanInClient`]s, so any digest difference
/// against [`run_fan_in`] is attributable to the server's consumption
/// model — and there must be none: FNV-1a folds chunk-by-chunk into
/// the same value regardless of how `recv_some` slices the stream.
///
/// # Panics
/// Same contract as [`run_fan_in`].
pub fn run_fan_in_aio(spec: &FanInSpec) -> FanInReport {
    assert!(spec.conns >= 1, "need at least one connection");
    let expected = spec.msgs_per_conn as u64 * spec.msg_len;
    let recv_len = spec.effective_recv_len();
    let prepost = spec.effective_prepost();
    let nshards = spec.effective_shards();

    let mut net = SimNet::new();
    net.set_fabric(spec.fabric.clone());
    net.set_host_seed(
        spec.seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(3),
    );
    let server_node = net.add_node(spec.profile.host.clone(), spec.profile.hca.clone());
    let nclients = spec.client_nodes.clamp(1, spec.conns);
    let client_nodes: Vec<NodeId> = (0..nclients)
        .map(|_| net.add_node(spec.profile.host.clone(), spec.profile.hca.clone()))
        .collect();
    for (i, &c) in client_nodes.iter().enumerate() {
        net.connect_nodes(
            c,
            server_node,
            spec.profile.link.clone(),
            spec.seed.wrapping_add(i as u64),
        );
    }

    let setup_start = std::time::Instant::now();
    let per_conn_cq = spec.cfg.sq_depth * 2 + spec.cfg.credits as usize * 2;
    // One reactor (and later one executor) per shard, each over its own
    // CQ pair — sized for the full fan-in per shard, since a skewed
    // policy may pile every connection on one shard.
    let mut reactors: Vec<Reactor> = (0..nshards)
        .map(|_| {
            let (send_cq, recv_cq) = net.with_api(server_node, |api| {
                (
                    api.create_cq(per_conn_cq * spec.conns),
                    api.create_cq(per_conn_cq * spec.conns),
                )
            });
            Reactor::new(send_cq, recv_cq, spec.reactor)
        })
        .collect();

    let mut clients: Vec<FanInClient> = (0..nclients)
        .map(|_| FanInClient {
            conns: Vec::new(),
            msgs: spec.msgs_per_conn,
            msg_len: spec.msg_len,
            verify: spec.verify,
            pool: spec.pooled.then(|| MemPool::new(spec.cfg.pool.clone())),
            seed: spec.seed,
            scratch: Vec::new(),
        })
        .collect();
    // Placement mirrors the callback path: the same `choose_shard`
    // decision sequence for the same inputs, so a conn lands on the
    // same shard in both server modes.
    let mut conn_locs: Vec<(usize, ConnId)> = Vec::with_capacity(spec.conns);
    let mut assigned = vec![0u64; nshards];
    let mut steals = vec![0u64; nshards];
    let mut rr = 0usize;
    for idx in 0..spec.conns {
        let cnode = client_nodes[idx % nclients];
        let shard = {
            let reactors = &reactors;
            let (chosen, stole) =
                choose_shard(spec.shard_policy, rr, nshards, Some(cnode.0 as u64), |s| {
                    let st = reactors[s].stats();
                    st.conns_added - st.conns_removed
                });
            rr = (rr + 1) % nshards;
            assigned[chosen] += 1;
            if stole {
                steals[chosen] += 1;
            }
            chosen
        };
        let (send_cq, recv_cq) = (reactors[shard].send_cq(), reactors[shard].recv_cq());
        let (csock, ssock) =
            StreamSocket::pair_shared(&mut net, cnode, server_node, send_cq, recv_cq, &spec.cfg);
        let conn = reactors[shard].accept(ssock);
        conn_locs.push((shard, conn));
        let max_outstanding = spec.outstanding_sends.max(1);
        let slots = if spec.pooled {
            Vec::new()
        } else {
            net.with_api(cnode, |api| {
                (0..max_outstanding)
                    .map(|_| api.register_mr(spec.msg_len as usize, Access::NONE))
                    .collect::<Vec<_>>()
            })
        };
        let free = (0..slots.len()).collect();
        clients[idx % nclients].conns.push(ConnState {
            sock: csock,
            idx,
            slots,
            free,
            slot_of: HashMap::new(),
            max_outstanding,
            leases: HashMap::new(),
            sent: 0,
            acked: 0,
            pos: 0,
            shutdown: false,
        });
    }

    // Each shard's executor pool carries its connections' readahead
    // leases for the whole run; budget them up front so a 10k-way
    // fan-in never churns the pin-down cache. Pre-registering happens
    // now, during setup, through the uncharged path — the callback
    // server's up-front `register_mr` calls are setup-cost-free by the
    // same rule, and the timed window must compare consumption models.
    // Without this, conns × prepost pin-down misses (~35 µs each,
    // serialized on the server core at time zero) masquerade as an 8×
    // async slowdown.
    let class = (recv_len as u64).next_power_of_two().max(4096);
    let mut server_pools = Vec::with_capacity(nshards);
    let mut executors = Vec::with_capacity(nshards);
    for (shard, reactor) in reactors.into_iter().enumerate() {
        let pool = MemPool::new(MemPoolConfig {
            pinned_budget: (assigned[shard] * prepost as u64 * class)
                .max(spec.cfg.pool.pinned_budget),
            ..spec.cfg.pool.clone()
        });
        net.with_api(server_node, |api| {
            pool.prewarm(
                api,
                assigned[shard] as usize * prepost,
                recv_len as usize,
                Access::local_remote_write(),
            );
        });
        executors.push(Executor::with_pool(reactor, pool.clone()));
        server_pools.push(pool);
    }
    let shared = Rc::new(RefCell::new(AioShared {
        digests: vec![FNV_OFFSET; spec.conns],
        received: vec![0; spec.conns],
    }));
    for (idx, &(shard, conn)) in conn_locs.iter().enumerate() {
        let handle = executors[shard].handle();
        let stream = handle.stream_with(conn, recv_len, prepost);
        let shared = Rc::clone(&shared);
        let verify = spec.verify;
        let seed = spec.seed;
        let chunk = recv_len as usize;
        handle.spawn(async move {
            loop {
                match stream.recv_some(chunk).await {
                    Ok(bytes) => {
                        let mut s = shared.borrow_mut();
                        if verify == VerifyLevel::Full {
                            for (i, &b) in bytes.iter().enumerate() {
                                assert_eq!(
                                    b,
                                    payload_byte(seed, idx, s.received[idx] + i as u64),
                                    "conn {idx} corrupted at offset {}",
                                    s.received[idx] + i as u64
                                );
                            }
                        }
                        s.digests[idx] = fnv1a(s.digests[idx], &bytes);
                        s.received[idx] += bytes.len() as u64;
                    }
                    Err(ExsError::Eof) => break,
                    Err(e) => panic!("aio fan-in conn {idx} failed: {e}"),
                }
            }
        });
    }
    let setup_wall = setup_start.elapsed();

    let mut server = AioFanInServer {
        drv: SimShardDriver::new(executors),
        finished_at: None,
    };
    let mut apps: Vec<&mut dyn NodeApp> = Vec::with_capacity(1 + nclients);
    apps.push(&mut server);
    for c in clients.iter_mut() {
        apps.push(c);
    }
    let outcome = net.run(&mut apps, SimTime::ZERO + spec.time_limit);
    {
        let s = shared.borrow();
        assert!(
            outcome.completed,
            "aio fan-in deadlocked or timed out: {} of {} conns done, {:?} received, ended {:?}",
            s.received.iter().filter(|&&r| r == expected).count(),
            spec.conns,
            s.received.iter().sum::<u64>(),
            outcome.end,
        );
        for (idx, &r) in s.received.iter().enumerate() {
            assert_eq!(r, expected, "conn {idx} delivered short");
        }
    }

    let end = server.finished_at.unwrap_or(outcome.end);
    net.with_api(server_node, |api| {
        for shard in 0..nshards {
            server.drv.executor(shard).with_reactor(|r| {
                for conn in r.conn_ids() {
                    r.conn_mut(conn).sync_cq_stats(api);
                }
            });
        }
    });
    let fabric_stats = net.fabric_stats();
    // Per-conn snapshots in *global* index order (each conn id is only
    // shard-local), merged protocol and event-loop counters across
    // shards, and the per-shard telemetry rows.
    let mut per_conn: Vec<ConnStats> = conn_locs
        .iter()
        .map(|&(shard, conn)| {
            server
                .drv
                .executor_ref(shard)
                .with_reactor(|r| r.conn(conn).stats().clone())
        })
        .collect();
    let mut aggregate = ConnStats::default();
    let mut reactor_stats = ReactorStats::default();
    let mut shard_stats = Vec::with_capacity(nshards);
    for shard in 0..nshards {
        let (agg, rs) = server
            .drv
            .executor_ref(shard)
            .with_reactor(|r| (r.aggregate_conn_stats(), r.stats().clone()));
        aggregate.merge(&agg);
        shard_stats.push(ShardStats {
            shard_id: shard as u32,
            conns: rs.conns_added - rs.conns_removed,
            assigned: assigned[shard],
            steals: steals[shard],
            commands: 0,
            polls: rs.polls,
            cqes_dispatched: rs.cqes_dispatched,
            busy_ns: 0,
            wall_ns: 0,
        });
        reactor_stats.merge(&rs);
    }
    if let Some(fs) = &fabric_stats {
        for (idx, stats) in per_conn.iter_mut().enumerate() {
            let cnode = client_nodes[idx % nclients];
            if let Some(flow) = fs
                .flows
                .iter()
                .find(|f| f.src == cnode.0 && f.dst == server_node.0)
            {
                stats.fabric_respeeds = flow.respeeds;
                stats.record_fabric_flow(flow.achieved_mbps());
            }
        }
        aggregate.fabric_respeeds = fs.respeeds;
        for flow in fs.flows.iter() {
            aggregate.record_fabric_flow(flow.achieved_mbps());
        }
    }
    assert_eq!(reactor_stats.orphan_cqes, 0, "no completion went unrouted");
    assert_eq!(
        aggregate.bytes_received,
        expected * spec.conns as u64,
        "every stream fully delivered"
    );
    let aio_stats = server.drv.merged_stats();
    let aio_per_shard = server.drv.per_shard_stats();
    assert_eq!(
        aio_stats.tasks_completed, spec.conns as u64,
        "every connection task ran to completion"
    );

    let mut aggregate_tx = ConnStats::default();
    for (i, c) in clients.iter_mut().enumerate() {
        let cnode = client_nodes[i];
        net.with_api(cnode, |api| {
            for cs in c.conns.iter_mut() {
                cs.sock.sync_cq_stats(api);
            }
        });
        for cs in c.conns.iter() {
            aggregate_tx.merge(cs.sock.stats());
        }
    }
    assert_eq!(
        aggregate_tx.bytes_sent,
        expected * spec.conns as u64,
        "every stream fully sent"
    );

    let pool = spec.pooled.then(|| {
        let mut total = PoolStats::default();
        for sp in &server_pools {
            total.merge(&sp.stats());
        }
        for c in &clients {
            if let Some(cp) = &c.pool {
                total.merge(&cp.stats());
            }
        }
        total
    });

    let shared = Rc::try_unwrap(shared)
        .ok()
        .expect("all tasks completed, so the harness holds the last ref")
        .into_inner();
    FanInReport {
        conns: spec.conns,
        bytes: expected * spec.conns as u64,
        elapsed: end.saturating_duration_since(SimTime::ZERO),
        per_conn,
        digests: shared.digests,
        aggregate,
        aggregate_tx,
        reactor: reactor_stats,
        pool,
        link_bandwidth_bps: spec.profile.link.bandwidth_bps,
        fabric: fabric_stats,
        setup_wall,
        mux_footprint: None,
        mux_baseline: None,
        aio: Some(aio_stats),
        shard_stats: Some(shard_stats),
        aio_per_shard: Some(aio_per_shard),
        events: outcome.events,
    }
}

/// One stream of a mux-mode client: the same send-slot cycle as
/// [`ConnState`], minus the private socket — data rides the node's
/// shared [`MuxEndpoint`].
struct MuxConnState {
    /// Stream id on the endpoint == global connection index.
    idx: usize,
    slots: Vec<MrInfo>,
    free: Vec<usize>,
    slot_of: HashMap<u64, usize>,
    sent: usize,
    acked: usize,
    pos: u64,
    closed: bool,
}

/// One client node in mux mode: every outbound connection is a stream
/// on one pooled-QP endpoint, so the node drives a single `handle_wake`
/// instead of a service loop per connection.
struct MuxFanInClient {
    ep: MuxEndpoint,
    conns: Vec<MuxConnState>,
    /// Stream id → index into `conns`.
    by_stream: HashMap<u32, usize>,
    msgs: usize,
    msg_len: u64,
    verify: VerifyLevel,
    seed: u64,
    scratch: Vec<u8>,
}

impl MuxFanInClient {
    fn kick(&mut self, api: &mut NodeApi<'_>, ci: usize) {
        let msgs = self.msgs;
        let msg_len = self.msg_len;
        let c = &mut self.conns[ci];
        while c.sent < msgs {
            let Some(slot) = c.free.pop() else {
                break;
            };
            let id = c.sent as u64;
            c.slot_of.insert(id, slot);
            let mr = c.slots[slot];
            if self.verify == VerifyLevel::Full {
                self.scratch.clear();
                self.scratch
                    .extend((0..msg_len).map(|i| payload_byte(self.seed, c.idx, c.pos + i)));
                api.write_mr(mr.key, mr.addr, &self.scratch).unwrap();
            }
            self.ep
                .mux_send(api, c.idx as u32, &mr, 0, msg_len, id)
                .expect("mux send on an open stream");
            c.pos += msg_len;
            c.sent += 1;
        }
        if c.sent == msgs && c.acked == msgs && !c.closed {
            self.ep.close_stream(api, c.idx as u32);
            c.closed = true;
        }
    }
}

impl NodeApp for MuxFanInClient {
    fn on_start(&mut self, api: &mut NodeApi<'_>) {
        for ci in 0..self.conns.len() {
            self.kick(api, ci);
        }
    }
    fn on_wake(&mut self, api: &mut NodeApi<'_>) {
        self.ep.handle_wake(api);
        let mut touched = Vec::new();
        for ev in self.ep.take_events() {
            match ev {
                MuxEvent::SendComplete { stream, id, .. } => {
                    let ci = self.by_stream[&stream];
                    let c = &mut self.conns[ci];
                    if let Some(slot) = c.slot_of.remove(&id) {
                        c.free.push(slot);
                    }
                    c.acked += 1;
                    touched.push(ci);
                }
                MuxEvent::TransportError { slot } => panic!(
                    "fan-in mux client transport slot {slot} failed: {:?}",
                    self.ep.last_error()
                ),
                // The server's FIN answering ours; nothing left to do.
                MuxEvent::StreamClosed { .. } | MuxEvent::RecvComplete { .. } => {}
            }
        }
        for ci in touched {
            self.kick(api, ci);
        }
    }
    fn is_done(&self) -> bool {
        self.conns.iter().all(|c| c.closed)
    }
}

/// The mux-mode server: one [`MuxEndpoint`] per client node, all hosted
/// in the one [`Reactor`] over its shared CQ pair, with the same
/// pre-posted receive cycle and digest fold as [`ReactorServer`] —
/// indexed by stream id instead of connection id.
struct MuxReactorServer {
    reactor: Reactor,
    mux_ids: Vec<MuxId>,
    /// Global stream indices carried by each endpoint.
    streams_of: Vec<Vec<usize>>,
    mrs: Vec<Vec<MrInfo>>,
    posted: Vec<VecDeque<(u64, usize)>>,
    free: Vec<Vec<usize>>,
    recv_len: u32,
    expected: u64,
    received: Vec<u64>,
    eof: Vec<bool>,
    digests: Vec<u64>,
    verify: VerifyLevel,
    seed: u64,
    next_id: u64,
    finished_at: Option<SimTime>,
    scratch: Vec<u8>,
}

impl MuxReactorServer {
    /// Consumes one endpoint's events and refills the pre-posted
    /// receive queue of every stream it carries. Returns true on any
    /// progress.
    fn handle_mux(&mut self, api: &mut NodeApi<'_>, mi: usize) -> bool {
        let mux = self.mux_ids[mi];
        let events = self.reactor.take_mux_events(mux);
        let mut progressed = !events.is_empty();
        for ev in events {
            match ev {
                MuxEvent::RecvComplete { stream, id, len } => {
                    let idx = stream as usize;
                    let (pid, slot) = self.posted[idx]
                        .pop_front()
                        .expect("completion without a posted receive");
                    assert_eq!(pid, id, "receives must complete in posting order");
                    if len > 0 {
                        let mr = self.mrs[idx][slot];
                        self.scratch.resize(len as usize, 0);
                        api.read_mr(mr.key, mr.addr, &mut self.scratch).unwrap();
                        if self.verify == VerifyLevel::Full {
                            for (i, &b) in self.scratch.iter().enumerate() {
                                assert_eq!(
                                    b,
                                    payload_byte(self.seed, idx, self.received[idx] + i as u64),
                                    "stream {idx} corrupted at offset {}",
                                    self.received[idx] + i as u64
                                );
                            }
                        }
                        self.digests[idx] = fnv1a(self.digests[idx], &self.scratch);
                        self.received[idx] += len as u64;
                    }
                    self.free[idx].push(slot);
                }
                MuxEvent::StreamClosed { stream } => {
                    self.eof[stream as usize] = true;
                    // Close the unused send half so the stream's state
                    // retires without disturbing its siblings.
                    self.reactor.mux_mut(mux).close_stream(api, stream);
                }
                MuxEvent::TransportError { slot } => panic!(
                    "fan-in mux server transport {mi}/{slot} failed: {:?}",
                    self.reactor.mux(mux).last_error()
                ),
                MuxEvent::SendComplete { .. } => {}
            }
        }
        for si in 0..self.streams_of[mi].len() {
            let idx = self.streams_of[mi][si];
            while !self.eof[idx] && self.received[idx] < self.expected {
                let Some(slot) = self.free[idx].pop() else {
                    break;
                };
                let mr = self.mrs[idx][slot];
                let id = self.next_id;
                self.next_id += 1;
                self.reactor
                    .mux_mut(mux)
                    .mux_recv(api, idx as u32, &mr, 0, self.recv_len, false, id)
                    .expect("mux receive on an open stream");
                self.posted[idx].push_back((id, slot));
                progressed = true;
            }
        }
        progressed
    }

    /// Polls the reactor (which services the hosted endpoints) until no
    /// endpoint produces events or postings and no backlog remains.
    fn service(&mut self, api: &mut NodeApi<'_>) {
        loop {
            let _ = self.reactor.poll(api);
            let mut progressed = false;
            for mi in 0..self.mux_ids.len() {
                progressed |= self.handle_mux(api, mi);
            }
            if self.finished_at.is_none() && self.is_done() {
                self.finished_at = Some(api.now());
            }
            if !progressed && !self.reactor.has_backlog() {
                break;
            }
        }
    }
}

impl NodeApp for MuxReactorServer {
    fn on_start(&mut self, api: &mut NodeApi<'_>) {
        for mi in 0..self.mux_ids.len() {
            self.handle_mux(api, mi);
        }
    }
    fn on_wake(&mut self, api: &mut NodeApi<'_>) {
        self.service(api);
    }
    fn is_done(&self) -> bool {
        self.eof.iter().all(|&e| e) && self.received.iter().all(|&r| r == self.expected)
    }
}

/// Runs one fan-in experiment with connections multiplexed as streams
/// over pooled-QP shared transports ([`FanInSpec::mux`]).
///
/// Connection `idx` becomes stream `idx` on the endpoint pair of client
/// node `idx % client_nodes`; delivered bytes and digests are
/// comparable one-to-one with [`run_fan_in`]'s QP-per-connection path.
///
/// # Panics
/// Panics on deadlock/timeout, payload corruption (with
/// [`VerifyLevel::Full`]), or any transport failure.
pub fn run_fan_in_mux(spec: &FanInSpec) -> FanInReport {
    assert!(spec.conns >= 1, "need at least one connection");
    let expected = spec.msgs_per_conn as u64 * spec.msg_len;
    let recv_len = spec.effective_recv_len();
    let prepost = spec.effective_prepost();

    let mut net = SimNet::new();
    net.set_fabric(spec.fabric.clone());
    net.set_host_seed(
        spec.seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(3),
    );
    let server_node = net.add_node(spec.profile.host.clone(), spec.profile.hca.clone());
    let nclients = spec.client_nodes.clamp(1, spec.conns);
    let client_nodes: Vec<NodeId> = (0..nclients)
        .map(|_| net.add_node(spec.profile.host.clone(), spec.profile.hca.clone()))
        .collect();
    for (i, &c) in client_nodes.iter().enumerate() {
        net.connect_nodes(
            c,
            server_node,
            spec.profile.link.clone(),
            spec.seed.wrapping_add(i as u64),
        );
    }

    let setup_start = std::time::Instant::now();
    // The reactor's CQ pair is shared by every server-side endpoint's
    // whole pool; size it for all of them at once.
    let cq_depth = nclients * MuxEndpoint::shared_cq_depth(&spec.cfg);
    let (send_cq, recv_cq) = net.with_api(server_node, |api| {
        (api.create_cq(cq_depth), api.create_cq(cq_depth))
    });
    let mut reactor = Reactor::new(send_cq, recv_cq, spec.reactor);

    let mut clients: Vec<MuxFanInClient> = client_nodes
        .iter()
        .map(|&cnode| MuxFanInClient {
            ep: MuxEndpoint::new(cnode, &spec.cfg),
            conns: Vec::new(),
            by_stream: HashMap::new(),
            msgs: spec.msgs_per_conn,
            msg_len: spec.msg_len,
            verify: spec.verify,
            seed: spec.seed,
            scratch: Vec::new(),
        })
        .collect();
    let mut server_eps: Vec<MuxEndpoint> = (0..nclients)
        .map(|_| {
            let mut ep = MuxEndpoint::new(server_node, &spec.cfg);
            ep.set_cqs(send_cq, recv_cq);
            ep
        })
        .collect();

    let max_outstanding = spec.outstanding_sends.max(1);
    let mut server_mrs: Vec<Vec<MrInfo>> = Vec::with_capacity(spec.conns);
    let mut streams_of: Vec<Vec<usize>> = vec![Vec::new(); nclients];
    for idx in 0..spec.conns {
        let ci = idx % nclients;
        clients[ci]
            .ep
            .open_stream(idx as u32)
            .expect("stream id fits");
        server_eps[ci]
            .open_stream(idx as u32)
            .expect("stream id fits");
        streams_of[ci].push(idx);
        let slots: Vec<MrInfo> = net.with_api(client_nodes[ci], |api| {
            (0..max_outstanding)
                .map(|_| api.register_mr(spec.msg_len as usize, Access::NONE))
                .collect()
        });
        let free = (0..slots.len()).collect();
        let ci_conns = clients[ci].conns.len();
        clients[ci].by_stream.insert(idx as u32, ci_conns);
        clients[ci].conns.push(MuxConnState {
            idx,
            slots,
            free,
            slot_of: HashMap::new(),
            sent: 0,
            acked: 0,
            pos: 0,
            closed: false,
        });
        server_mrs.push(net.with_api(server_node, |api| {
            (0..prepost)
                .map(|_| api.register_mr(recv_len as usize, Access::local_remote_write()))
                .collect()
        }));
    }
    let mut mux_ids = Vec::with_capacity(nclients);
    let mut mux_footprint = 0;
    for (c, mut sep) in clients.iter_mut().zip(server_eps.drain(..)) {
        connect_mux_pair(&mut net, &mut c.ep, &mut sep);
        // Capture the memory model at full fan-out: every stream open,
        // every pool transport up (streams retire as they close).
        mux_footprint += sep.memory_footprint();
        mux_ids.push(reactor.accept_mux(sep));
    }
    let setup_wall = setup_start.elapsed();
    let mux_baseline = MuxEndpoint::baseline_footprint(&spec.cfg, spec.conns as u64);

    let mut server = MuxReactorServer {
        reactor,
        mux_ids,
        streams_of,
        mrs: server_mrs,
        posted: (0..spec.conns).map(|_| VecDeque::new()).collect(),
        free: (0..spec.conns).map(|_| (0..prepost).collect()).collect(),
        recv_len,
        expected,
        received: vec![0; spec.conns],
        eof: vec![false; spec.conns],
        digests: vec![FNV_OFFSET; spec.conns],
        verify: spec.verify,
        seed: spec.seed,
        next_id: 0,
        finished_at: None,
        scratch: Vec::new(),
    };

    let mut apps: Vec<&mut dyn NodeApp> = Vec::with_capacity(1 + nclients);
    apps.push(&mut server);
    for c in clients.iter_mut() {
        apps.push(c);
    }
    let outcome = net.run(&mut apps, SimTime::ZERO + spec.time_limit);
    if !outcome.completed {
        let mut dump = String::new();
        for (mi, &id) in server.mux_ids.iter().enumerate() {
            dump.push_str(&format!(
                "server ep {mi}:\n{}",
                server.reactor.mux(id).debug_summary()
            ));
        }
        for (ci, c) in clients.iter().enumerate() {
            dump.push_str(&format!("client ep {ci}:\n{}", c.ep.debug_summary()));
        }
        panic!(
            "mux fan-in deadlocked or timed out: {} of {} streams at EOF, {:?} received, \
             ended {:?}\n{dump}",
            server.eof.iter().filter(|&&e| e).count(),
            spec.conns,
            server.received.iter().sum::<u64>(),
            outcome.end,
        );
    }

    let end = server.finished_at.unwrap_or(outcome.end);
    let fabric_stats = net.fabric_stats();
    // One counter block per server-side endpoint (= per client node):
    // the pool aggregates its streams, which is the point of the mode.
    let mut per_conn: Vec<ConnStats> = server
        .mux_ids
        .iter()
        .map(|&id| server.reactor.mux(id).stats().clone())
        .collect();
    let mut aggregate = server.reactor.aggregate_conn_stats();
    if let Some(fs) = &fabric_stats {
        for (ci, stats) in per_conn.iter_mut().enumerate() {
            let cnode = client_nodes[ci];
            if let Some(flow) = fs
                .flows
                .iter()
                .find(|f| f.src == cnode.0 && f.dst == server_node.0)
            {
                stats.fabric_respeeds = flow.respeeds;
                stats.record_fabric_flow(flow.achieved_mbps());
            }
        }
        aggregate.fabric_respeeds = fs.respeeds;
        for flow in fs.flows.iter() {
            aggregate.record_fabric_flow(flow.achieved_mbps());
        }
    }
    let reactor_stats = server.reactor.stats().clone();
    assert_eq!(reactor_stats.orphan_cqes, 0, "no completion went unrouted");
    assert_eq!(
        aggregate.bytes_received,
        expected * spec.conns as u64,
        "every stream fully delivered"
    );

    let mut aggregate_tx = ConnStats::default();
    for c in clients.iter() {
        aggregate_tx.merge(c.ep.stats());
    }
    assert_eq!(
        aggregate_tx.bytes_sent,
        expected * spec.conns as u64,
        "every stream fully sent"
    );

    FanInReport {
        conns: spec.conns,
        bytes: expected * spec.conns as u64,
        elapsed: end.saturating_duration_since(SimTime::ZERO),
        per_conn,
        digests: server.digests,
        aggregate,
        aggregate_tx,
        reactor: reactor_stats,
        pool: None,
        link_bandwidth_bps: spec.profile.link.bandwidth_bps,
        fabric: fabric_stats,
        setup_wall,
        mux_footprint: Some(mux_footprint),
        mux_baseline: Some(mux_baseline),
        aio: None,
        shard_stats: None,
        aio_per_shard: None,
        events: outcome.events,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdma_verbs::profiles;

    #[test]
    fn digest_matches_expected_pattern() {
        let mut h = FNV_OFFSET;
        let bytes: Vec<u8> = (0..100).map(|i| payload_byte(7, 3, i)).collect();
        h = fnv1a(h, &bytes);
        assert_eq!(h, expected_digest(7, 3, 100));
        assert_ne!(h, expected_digest(7, 4, 100), "digests separate streams");
    }

    #[test]
    fn small_fan_in_runs_and_verifies() {
        let spec = FanInSpec {
            msgs_per_conn: 4,
            msg_len: 8 << 10,
            verify: VerifyLevel::Full,
            ..FanInSpec::new(profiles::fdr_infiniband(), 4)
        };
        let report = run_fan_in(&spec);
        assert_eq!(report.bytes, 4 * 4 * (8 << 10));
        assert!(report.throughput_mbps() > 0.0);
        assert_eq!(report.reactor.conns_added, 4);
        for (i, &d) in report.digests.iter().enumerate() {
            assert_eq!(d, expected_digest(spec.seed, i, 4 * (8 << 10)));
        }
        let json = report.to_json();
        assert!(json.contains("\"per_conn\":["));
        assert!(json.contains("\"reactor\":{"));
        assert!(!json.contains("\"pool\":{"), "unpooled run reports no pool");
    }

    #[test]
    fn mux_fan_in_matches_plain_digests_on_a_fraction_of_the_qps() {
        let base = FanInSpec {
            msgs_per_conn: 4,
            msg_len: 8 << 10,
            verify: VerifyLevel::Full,
            client_nodes: 2,
            ..FanInSpec::new(profiles::fdr_infiniband(), 6)
        };
        let mux_spec = FanInSpec {
            mux: true,
            ..base.clone()
        };
        let plain = run_fan_in(&base);
        let mux = run_fan_in(&mux_spec);
        // Stream identity: multiplexing changes the transport layer,
        // never the bytes a stream carries or their order.
        assert_eq!(plain.digests, mux.digests);
        assert_eq!(plain.bytes, mux.bytes);
        for (i, &d) in mux.digests.iter().enumerate() {
            assert_eq!(d, expected_digest(base.seed, i, 4 * (8 << 10)));
        }
        // One counter block per pooled endpoint, not per stream.
        assert_eq!(mux.per_conn.len(), 2);
        assert_eq!(mux.aggregate.mux_streams_peak, 3, "3 streams per pool");
        // 6 conns over 2 client nodes ride 2 pools of ≤ 4 QPs instead
        // of 6 private QPs, and the memory model must show the win.
        let footprint = mux.mux_footprint.expect("mux run models memory");
        let baseline = mux.mux_baseline.expect("mux run models baseline");
        assert!(
            footprint < baseline,
            "pooled transports must beat QP-per-conn: {footprint} vs {baseline}"
        );
        let json = mux.to_json();
        assert!(json.contains("\"mux_footprint\":"));
        assert!(json.contains("\"memory_per_stream\":"));
    }

    #[test]
    fn aio_fan_in_matches_callback_digests() {
        let base = FanInSpec {
            msgs_per_conn: 4,
            msg_len: 8 << 10,
            verify: VerifyLevel::Full,
            client_nodes: 2,
            ..FanInSpec::new(profiles::fdr_infiniband(), 4)
        };
        let aio_spec = FanInSpec {
            aio: true,
            ..base.clone()
        };
        let plain = run_fan_in(&base);
        let aio = run_fan_in(&aio_spec);
        // Consumption-model identity: tasks awaiting `recv_some` must
        // deliver the same bytes in the same order as the callback
        // loop (FNV-1a folds chunk-by-chunk, so slicing can't hide).
        assert_eq!(plain.digests, aio.digests);
        assert_eq!(plain.bytes, aio.bytes);
        for (i, &d) in aio.digests.iter().enumerate() {
            assert_eq!(d, expected_digest(base.seed, i, 4 * (8 << 10)));
        }
        let stats = aio.aio.as_ref().expect("aio run reports executor stats");
        assert_eq!(stats.tasks_spawned, 4);
        assert_eq!(stats.tasks_completed, 4);
        assert!(stats.wakeups > 0, "recv completions must wake tasks");
        let json = aio.to_json();
        assert!(json.contains("\"aio\":{"));
        assert!(json.contains("\"tasks_completed\":4"));
    }

    #[test]
    fn pooled_fan_in_delivers_identical_bytes_and_hits_the_cache() {
        let base = FanInSpec {
            msgs_per_conn: 4,
            msg_len: 8 << 10,
            verify: VerifyLevel::Full,
            ..FanInSpec::new(profiles::fdr_infiniband(), 4)
        };
        let pooled_spec = FanInSpec {
            pooled: true,
            ..base.clone()
        };
        let plain = run_fan_in(&base);
        let pooled = run_fan_in(&pooled_spec);
        // Byte identity: pooling changes where buffers come from, never
        // what the streams carry.
        assert_eq!(plain.digests, pooled.digests);
        assert_eq!(plain.bytes, pooled.bytes);
        let pool = pooled
            .pool
            .clone()
            .expect("pooled run reports pool counters");
        // Each client's lease cycle: outstanding_sends buffers miss
        // once, every later message hits the pin-down cache. The server
        // holds conns × prepost_recvs receive leases for the whole run.
        assert!(pool.hits > 0, "no cache reuse: {pool:?}");
        let client_misses = 4 * base.outstanding_sends as u64;
        let server_leases = 4 * base.effective_prepost() as u64;
        assert!(
            pool.registrations <= client_misses + server_leases,
            "pool registered nearly per-message: {pool:?}"
        );
        assert!(pooled.to_json().contains("\"pool\":{"));
    }
}
