//! Message-size distributions.
//!
//! The paper's headline experiments draw message sizes "at random from an
//! exponential distribution with λ = 1 and a maximum message size of
//! 4 MiB" (Fig. 9, 10, 13); the message-size sweeps (Fig. 11, 12) use
//! fixed sizes. The future-work section motivates bursty and
//! time-varying size patterns, which the ablation benchmarks exercise
//! via [`SizeDist::Bursty`].

use simnet::Xoshiro256;

/// A message-size law.
///
/// ```
/// use blast::SizeDist;
///
/// // The paper's workload: exponential, mean 1 MiB, truncated at 4 MiB.
/// let sizes = SizeDist::paper_default().sample_many(7, 1000);
/// assert!(sizes.iter().all(|&s| (1..=4 << 20).contains(&s)));
/// // Deterministic per seed.
/// assert_eq!(sizes, SizeDist::paper_default().sample_many(7, 1000));
/// ```
#[derive(Clone, Debug, PartialEq)]
pub enum SizeDist {
    /// Every message has the same size.
    Fixed(u64),
    /// Exponentially distributed with the given mean, truncated to
    /// `[1, max]` — the paper's blast workload (mean 1 MiB, max 4 MiB).
    Exponential {
        /// Mean size in bytes (before truncation).
        mean: u64,
        /// Upper truncation bound.
        max: u64,
    },
    /// Uniform in `[lo, hi]`.
    Uniform {
        /// Smallest size.
        lo: u64,
        /// Largest size.
        hi: u64,
    },
    /// Alternating bursts: `burst_len` messages of `large` bytes, then
    /// `burst_len` messages of `small` bytes (future-work ablation:
    /// "dynamically changing send and receive message sizes and
    /// burstiness during a connection").
    Bursty {
        /// Size during the large burst.
        large: u64,
        /// Size during the small burst.
        small: u64,
        /// Messages per burst.
        burst_len: u32,
    },
}

impl SizeDist {
    /// The paper's default blast workload: exponential, mean 1 MiB,
    /// max 4 MiB.
    pub fn paper_default() -> SizeDist {
        SizeDist::Exponential {
            mean: 1 << 20,
            max: 4 << 20,
        }
    }

    /// Largest size this law can produce (used to size receive buffers).
    pub fn max_size(&self) -> u64 {
        match *self {
            SizeDist::Fixed(n) => n,
            SizeDist::Exponential { max, .. } => max,
            SizeDist::Uniform { hi, .. } => hi,
            SizeDist::Bursty { large, small, .. } => large.max(small),
        }
    }

    /// Draws one message size.
    pub fn sample(&self, rng: &mut Xoshiro256, index: u64) -> u64 {
        match *self {
            SizeDist::Fixed(n) => n.max(1),
            SizeDist::Exponential { mean, max } => {
                let x = rng.next_exponential(mean as f64);
                (x as u64).clamp(1, max)
            }
            SizeDist::Uniform { lo, hi } => rng.next_range(lo.max(1), hi.max(1)),
            SizeDist::Bursty {
                large,
                small,
                burst_len,
            } => {
                let burst = (index / burst_len.max(1) as u64) % 2;
                if burst == 0 {
                    large.max(1)
                } else {
                    small.max(1)
                }
            }
        }
    }

    /// Draws a whole workload of `count` messages.
    pub fn sample_many(&self, seed: u64, count: usize) -> Vec<u64> {
        let mut rng = Xoshiro256::new(seed);
        (0..count)
            .map(|i| self.sample(&mut rng, i as u64))
            .collect()
    }

    /// Draws messages until at least `budget` total bytes.
    pub fn sample_budget(&self, seed: u64, budget: u64) -> Vec<u64> {
        let mut rng = Xoshiro256::new(seed);
        let mut out = Vec::new();
        let mut total = 0u64;
        let mut i = 0u64;
        while total < budget {
            let n = self.sample(&mut rng, i);
            total += n;
            out.push(n);
            i += 1;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_is_constant() {
        let sizes = SizeDist::Fixed(4096).sample_many(1, 100);
        assert!(sizes.iter().all(|&s| s == 4096));
        assert_eq!(SizeDist::Fixed(7).max_size(), 7);
    }

    #[test]
    fn exponential_respects_bounds_and_mean() {
        let d = SizeDist::paper_default();
        let sizes = d.sample_many(7, 50_000);
        assert!(sizes.iter().all(|&s| (1..=4 << 20).contains(&s)));
        let mean = sizes.iter().sum::<u64>() as f64 / sizes.len() as f64;
        // Truncation at 4 MiB pulls the mean below 1 MiB a little.
        assert!(
            (0.75e6..=1.1e6).contains(&mean),
            "observed mean {mean} out of band"
        );
        assert_eq!(d.max_size(), 4 << 20);
    }

    #[test]
    fn uniform_covers_range() {
        let d = SizeDist::Uniform { lo: 10, hi: 20 };
        let sizes = d.sample_many(3, 10_000);
        assert!(sizes.iter().all(|&s| (10..=20).contains(&s)));
        assert!(sizes.contains(&10));
        assert!(sizes.contains(&20));
    }

    #[test]
    fn bursty_alternates() {
        let d = SizeDist::Bursty {
            large: 1000,
            small: 10,
            burst_len: 3,
        };
        let sizes = d.sample_many(5, 12);
        assert_eq!(
            sizes,
            vec![1000, 1000, 1000, 10, 10, 10, 1000, 1000, 1000, 10, 10, 10]
        );
    }

    #[test]
    fn budget_sampling_reaches_budget() {
        let d = SizeDist::Fixed(1000);
        let sizes = d.sample_budget(1, 9_500);
        assert_eq!(sizes.len(), 10);
        assert!(sizes.iter().sum::<u64>() >= 9_500);
    }

    #[test]
    fn deterministic_per_seed() {
        let d = SizeDist::paper_default();
        assert_eq!(d.sample_many(9, 100), d.sample_many(9, 100));
        assert_ne!(d.sample_many(9, 100), d.sample_many(10, 100));
    }
}
