//! The blast workload runner.
//!
//! Reproduces the paper's measurement tool: a client "sends messages as
//! quickly as possible to the server" (§IV-B), keeping a configurable
//! number of simultaneously outstanding `exs_send` operations while the
//! server keeps a configurable number of outstanding `exs_recv`
//! operations, re-posting each as it completes. The tool reports
//! throughput (Eq. 1), time per message, CPU usage on each side, and the
//! library's direct/indirect statistics.

use exs::{ExsConfig, ExsEvent, StreamSocket};
use rdma_verbs::{Access, FabricModel, HwProfile, MrInfo, NodeApi, NodeApp, SimNet};
use simnet::{SimDuration, SimTime};

use crate::distribution::SizeDist;
use crate::fan_in::{fnv1a, FNV_OFFSET};
use crate::metrics::BlastReport;

/// How much payload verification the receiver performs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum VerifyLevel {
    /// No payload is generated or checked (fastest; used by benches —
    /// transfer timing is unaffected because the simulator moves payload
    /// bytes either way).
    None,
    /// The sender fills every byte with a position-dependent pattern and
    /// the receiver checks every delivered byte (used by tests).
    Full,
}

/// One blast experiment configuration.
#[derive(Clone, Debug)]
pub struct BlastSpec {
    /// Hardware model for both nodes and the link.
    pub profile: HwProfile,
    /// EXS connection configuration (protocol mode, ring size, credits).
    pub cfg: ExsConfig,
    /// Simultaneously outstanding `exs_send` operations at the client.
    pub outstanding_sends: usize,
    /// Simultaneously outstanding `exs_recv` operations at the server.
    pub outstanding_recvs: usize,
    /// Message-size law.
    pub sizes: SizeDist,
    /// Messages per run.
    pub messages: usize,
    /// Receive buffer length (0 ⇒ the size law's maximum, like the
    /// paper's blast tool posting maximum-size receives).
    pub recv_len: u32,
    /// Post receives with MSG_WAITALL.
    pub waitall: bool,
    /// Payload verification level.
    pub verify: VerifyLevel,
    /// Workload RNG seed.
    pub seed: u64,
    /// Delay before the client's first send (`None` ⇒ one round trip
    /// plus 20 µs, modelling connection establishment — the receiver's
    /// initial ADVERTs are in flight before the client starts, exactly
    /// as with a real accept/connect exchange).
    pub start_delay: Option<SimDuration>,
    /// Abort threshold for the virtual clock.
    pub time_limit: SimDuration,
    /// Link contention model for the simulated fabric.
    pub fabric: FabricModel,
}

impl BlastSpec {
    /// A spec with the paper's defaults for the given profile.
    pub fn new(profile: HwProfile) -> BlastSpec {
        BlastSpec {
            profile,
            cfg: ExsConfig::default(),
            outstanding_sends: 4,
            outstanding_recvs: 4,
            sizes: SizeDist::paper_default(),
            messages: 400,
            recv_len: 0,
            waitall: false,
            verify: VerifyLevel::None,
            seed: 1,
            start_delay: None,
            time_limit: SimDuration::from_secs(600),
            fabric: FabricModel::Fifo,
        }
    }

    fn effective_recv_len(&self) -> u32 {
        if self.recv_len != 0 {
            self.recv_len
        } else {
            self.sizes.max_size().min(u32::MAX as u64) as u32
        }
    }

    fn effective_start_delay(&self) -> SimDuration {
        self.start_delay.unwrap_or_else(|| {
            self.profile.link.propagation
                + self.profile.link.propagation
                + SimDuration::from_micros(20)
        })
    }
}

fn pattern(i: u64) -> u8 {
    (i % 251) as u8
}

struct Client {
    sock: Option<StreamSocket>,
    slots: Vec<MrInfo>,
    free_slots: Vec<usize>,
    slot_of: Vec<usize>,
    msgs: Vec<u64>,
    next: usize,
    completed: usize,
    stream_pos: u64,
    verify: VerifyLevel,
    start_delay: SimDuration,
    started: bool,
    first_send_at: Option<SimTime>,
    scratch: Vec<u8>,
}

impl Client {
    fn kick(&mut self, api: &mut NodeApi<'_>) {
        // Sends begin only after the start timer fires (connection
        // establishment): the server's initial ADVERT burst must be able
        // to arrive first, exactly as in the real system where connect()
        // takes a round trip.
        if !self.started {
            return;
        }
        while self.next < self.msgs.len() {
            let Some(slot) = self.free_slots.pop() else {
                return;
            };
            let len = self.msgs[self.next];
            let mr = self.slots[slot];
            if self.verify == VerifyLevel::Full {
                self.scratch.clear();
                self.scratch
                    .extend((0..len).map(|i| pattern(self.stream_pos + i)));
                api.write_mr(mr.key, mr.addr, &self.scratch).unwrap();
            }
            if self.first_send_at.is_none() {
                self.first_send_at = Some(api.now());
            }
            self.slot_of[self.next] = slot;
            self.sock
                .as_mut()
                .unwrap()
                .exs_send(api, &mr, 0, len, self.next as u64);
            self.stream_pos += len;
            self.next += 1;
        }
    }
}

impl NodeApp for Client {
    fn on_start(&mut self, api: &mut NodeApi<'_>) {
        // Model connection establishment: the first send happens one
        // round trip after the server posted its receives.
        api.set_timer(self.start_delay, 0);
    }
    fn on_timer(&mut self, api: &mut NodeApi<'_>, _token: u64) {
        self.started = true;
        self.kick(api);
    }
    fn on_wake(&mut self, api: &mut NodeApi<'_>) {
        let sock = self.sock.as_mut().unwrap();
        sock.handle_wake(api);
        for ev in sock.take_events() {
            if let ExsEvent::SendComplete { id, .. } = ev {
                self.free_slots.push(self.slot_of[id as usize]);
                self.completed += 1;
            }
        }
        self.kick(api);
    }
    fn is_done(&self) -> bool {
        self.completed == self.msgs.len()
    }
}

struct Server {
    sock: Option<StreamSocket>,
    slots: Vec<MrInfo>,
    free_slots: Vec<usize>,
    slot_of: std::collections::HashMap<u64, usize>,
    recv_len: u32,
    waitall: bool,
    expected_total: u64,
    received: u64,
    next_id: u64,
    verify: VerifyLevel,
    digest: u64,
    finished_at: Option<SimTime>,
}

impl Server {
    fn post_len(&self, posted_ahead: u64) -> u32 {
        if self.waitall {
            let left = self.expected_total - self.received - posted_ahead;
            (self.recv_len as u64).min(left) as u32
        } else {
            self.recv_len
        }
    }

    fn kick(&mut self, api: &mut NodeApi<'_>) {
        let mut posted_ahead = if self.waitall {
            // WAITALL receives consume exactly their posted length.
            self.slot_of.len() as u64 * self.recv_len as u64
        } else {
            // Plain receives may complete short; over-posting is fine
            // (extra receives complete later or never — the run ends on
            // byte count).
            0
        };
        while !self.free_slots.is_empty() {
            if self.received + posted_ahead >= self.expected_total {
                break;
            }
            let len = self.post_len(posted_ahead);
            if len == 0 {
                break;
            }
            let slot = self.free_slots.pop().unwrap();
            let mr = self.slots[slot];
            let id = self.next_id;
            self.next_id += 1;
            self.slot_of.insert(id, slot);
            self.sock
                .as_mut()
                .unwrap()
                .exs_recv(api, &mr, 0, len, self.waitall, id);
            posted_ahead += len as u64;
        }
    }

    fn drain(&mut self, api: &mut NodeApi<'_>) {
        self.kick(api);
        loop {
            let events = self.sock.as_mut().unwrap().take_events();
            if events.is_empty() {
                break;
            }
            for ev in events {
                if let ExsEvent::RecvComplete { id, len } = ev {
                    let slot = self.slot_of.remove(&id).expect("slot of recv");
                    if self.verify == VerifyLevel::Full {
                        let mr = self.slots[slot];
                        let mut buf = vec![0u8; len as usize];
                        api.read_mr(mr.key, mr.addr, &mut buf).unwrap();
                        for (i, &b) in buf.iter().enumerate() {
                            assert_eq!(
                                b,
                                pattern(self.received + i as u64),
                                "stream corruption at offset {}",
                                self.received + i as u64
                            );
                        }
                        self.digest = fnv1a(self.digest, &buf);
                    }
                    self.received += len as u64;
                    self.free_slots.push(slot);
                    if self.received == self.expected_total {
                        self.finished_at = Some(api.now());
                    }
                }
            }
            self.kick(api);
        }
    }
}

impl NodeApp for Server {
    fn on_start(&mut self, api: &mut NodeApi<'_>) {
        self.drain(api);
    }
    fn on_wake(&mut self, api: &mut NodeApi<'_>) {
        self.sock.as_mut().unwrap().handle_wake(api);
        self.drain(api);
    }
    fn is_done(&self) -> bool {
        self.received == self.expected_total
    }
}

/// Runs one blast experiment.
///
/// ```
/// use blast::{run_blast, BlastSpec, SizeDist};
/// use rdma_verbs::profiles;
///
/// let spec = BlastSpec {
///     sizes: SizeDist::Fixed(64 << 10),
///     messages: 20,
///     ..BlastSpec::new(profiles::fdr_infiniband())
/// };
/// let report = run_blast(&spec);
/// assert_eq!(report.bytes, 20 * (64 << 10));
/// assert!(report.throughput_mbps() > 0.0);
/// ```
///
/// # Panics
/// Panics if the run does not complete within the spec's time limit —
/// that always indicates a protocol deadlock, which is a bug.
pub fn run_blast(spec: &BlastSpec) -> BlastReport {
    let msgs = spec.sizes.sample_many(spec.seed, spec.messages);
    let total: u64 = msgs.iter().sum();
    let recv_len = spec.effective_recv_len();
    let max_msg = msgs.iter().copied().max().unwrap_or(1) as usize;

    let mut net = SimNet::new();
    net.set_fabric(spec.fabric.clone());
    net.set_host_seed(
        spec.seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(1),
    );
    let client_node = net.add_node(spec.profile.host.clone(), spec.profile.hca.clone());
    let server_node = net.add_node(spec.profile.host.clone(), spec.profile.hca.clone());
    net.connect_nodes(
        client_node,
        server_node,
        spec.profile.link.clone(),
        spec.seed,
    );

    let (sock_c, sock_s) = StreamSocket::pair(&mut net, client_node, server_node, &spec.cfg);

    let mut client = Client {
        sock: Some(sock_c),
        slots: Vec::new(),
        free_slots: (0..spec.outstanding_sends).collect(),
        slot_of: vec![usize::MAX; msgs.len()],
        msgs,
        next: 0,
        completed: 0,
        stream_pos: 0,
        verify: spec.verify,
        start_delay: spec.effective_start_delay(),
        started: false,
        first_send_at: None,
        scratch: Vec::new(),
    };
    let mut server = Server {
        sock: Some(sock_s),
        slots: Vec::new(),
        free_slots: (0..spec.outstanding_recvs).collect(),
        slot_of: std::collections::HashMap::new(),
        recv_len,
        waitall: spec.waitall,
        expected_total: total,
        received: 0,
        next_id: 0,
        verify: spec.verify,
        digest: FNV_OFFSET,
        finished_at: None,
    };
    net.with_api(client_node, |api| {
        for _ in 0..spec.outstanding_sends {
            client.slots.push(api.register_mr(max_msg, Access::NONE));
        }
    });
    net.with_api(server_node, |api| {
        for _ in 0..spec.outstanding_recvs {
            server
                .slots
                .push(api.register_mr(recv_len as usize, Access::local_remote_write()));
        }
    });

    let limit = SimTime::ZERO + spec.time_limit;
    let outcome = net.run(&mut [&mut client, &mut server], limit);
    assert!(
        outcome.completed,
        "blast run deadlocked or timed out: sent {}/{} received {}/{} at {:?}",
        client.completed,
        client.msgs.len(),
        server.received,
        total,
        outcome.end,
    );

    let start = client.first_send_at.expect("client sent something");
    let end = server.finished_at.expect("server finished");
    let elapsed = end.saturating_duration_since(start);
    net.with_api(client_node, |api| {
        client.sock.as_mut().unwrap().sync_cq_stats(api)
    });
    net.with_api(server_node, |api| {
        server.sock.as_mut().unwrap().sync_cq_stats(api)
    });
    let sender_stats = client.sock.as_ref().unwrap().stats().clone();
    let receiver_stats = server.sock.as_ref().unwrap().stats().clone();
    let stats = &sender_stats;
    let cpu = |busy: SimDuration| {
        if elapsed.is_zero() {
            0.0
        } else {
            (busy.as_secs_f64() / elapsed.as_secs_f64()).min(1.0)
        }
    };
    BlastReport {
        bytes: total,
        messages: client.msgs.len() as u64,
        start,
        end,
        cpu_sender: cpu(net.cpu_busy_total(client_node)),
        cpu_receiver: cpu(net.cpu_busy_total(server_node)),
        direct_transfers: stats.direct_transfers,
        indirect_transfers: stats.indirect_transfers,
        mode_switches: stats.mode_switches,
        adverts_discarded: stats.adverts_discarded,
        sender: sender_stats.clone(),
        receiver: receiver_stats,
        digest: server.digest,
        events: outcome.events,
        link_bandwidth_bps: spec.profile.link.bandwidth_bps,
        fabric: net.fabric_stats(),
    }
}

/// Runs the same spec over several seeds (the paper averages 10 runs).
pub fn run_blast_seeds(spec: &BlastSpec, seeds: &[u64]) -> Vec<BlastReport> {
    seeds
        .iter()
        .map(|&seed| {
            let mut s = spec.clone();
            s.seed = seed;
            run_blast(&s)
        })
        .collect()
}
