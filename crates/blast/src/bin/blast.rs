//! Command-line blast tool.
//!
//! Mirrors the paper's measurement tool: run a client→server blast over
//! a chosen hardware profile and protocol mode, print throughput
//! (Eq. 1), time per message, CPU usage on both sides, and the
//! direct/indirect statistics.
//!
//! ```text
//! cargo run --release -p blast -- \
//!     --profile fdr --mode dynamic --sends 4 --recvs 8 \
//!     --messages 400 --runs 3
//! ```

use blast::{run_blast_seeds, BlastSpec, SizeDist, Summary, VerifyLevel};
use exs::{ExsConfig, ProtocolMode, WwiMode};
use rdma_verbs::profiles;
use simnet::SimDuration;

fn usage() -> ! {
    eprintln!(
        "usage: blast [--profile fdr|qdr|roce-wan|iwarp|busy-poll|ideal]\n\
         \x20            [--mode dynamic|direct|indirect|bcopy] [--wwi native|emulated]\n\
         \x20            [--sends N] [--recvs N] [--messages N] [--runs N] [--seed N]\n\
         \x20            [--size exp|fixed:BYTES|uniform:LO:HI|bursty:LARGE:SMALL:LEN]\n\
         \x20            [--ring BYTES] [--credits N] [--waitall] [--verify]"
    );
    std::process::exit(2)
}

fn parse_size(s: &str) -> SizeDist {
    if s == "exp" {
        return SizeDist::paper_default();
    }
    let parts: Vec<&str> = s.split(':').collect();
    match parts.as_slice() {
        ["fixed", n] => SizeDist::Fixed(n.parse().unwrap_or_else(|_| usage())),
        ["uniform", lo, hi] => SizeDist::Uniform {
            lo: lo.parse().unwrap_or_else(|_| usage()),
            hi: hi.parse().unwrap_or_else(|_| usage()),
        },
        ["bursty", large, small, len] => SizeDist::Bursty {
            large: large.parse().unwrap_or_else(|_| usage()),
            small: small.parse().unwrap_or_else(|_| usage()),
            burst_len: len.parse().unwrap_or_else(|_| usage()),
        },
        _ => usage(),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut profile = profiles::fdr_infiniband();
    let mut mode = ProtocolMode::Dynamic;
    let mut sends = 4usize;
    let mut recvs = 4usize;
    let mut messages = 400usize;
    let mut runs = 3usize;
    let mut seed = 1u64;
    let mut sizes = SizeDist::paper_default();
    let mut ring = 0u64;
    let mut credits = 0u32;
    let mut waitall = false;
    let mut verify = VerifyLevel::None;
    let mut wwi = WwiMode::Native;

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut val = || it.next().map(|s| s.as_str()).unwrap_or_else(|| usage());
        match arg.as_str() {
            "--profile" => {
                profile = match val() {
                    "fdr" => profiles::fdr_infiniband(),
                    "qdr" => profiles::qdr_infiniband(),
                    "roce-wan" => profiles::roce_10g_wan(),
                    "iwarp" => profiles::iwarp_10g(),
                    "busy-poll" => profiles::fdr_infiniband_busy_poll(),
                    "ideal" => profiles::ideal(),
                    _ => usage(),
                }
            }
            "--mode" => {
                mode = match val() {
                    "dynamic" => ProtocolMode::Dynamic,
                    "direct" => ProtocolMode::DirectOnly,
                    "indirect" => ProtocolMode::IndirectOnly,
                    "bcopy" => ProtocolMode::BCopy,
                    _ => usage(),
                }
            }
            "--wwi" => {
                wwi = match val() {
                    "native" => WwiMode::Native,
                    "emulated" => WwiMode::WritePlusSend,
                    _ => usage(),
                }
            }
            "--sends" => sends = val().parse().unwrap_or_else(|_| usage()),
            "--recvs" => recvs = val().parse().unwrap_or_else(|_| usage()),
            "--messages" => messages = val().parse().unwrap_or_else(|_| usage()),
            "--runs" => runs = val().parse().unwrap_or_else(|_| usage()),
            "--seed" => seed = val().parse().unwrap_or_else(|_| usage()),
            "--size" => sizes = parse_size(val()),
            "--ring" => ring = val().parse().unwrap_or_else(|_| usage()),
            "--credits" => credits = val().parse().unwrap_or_else(|_| usage()),
            "--waitall" => waitall = true,
            "--verify" => verify = VerifyLevel::Full,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument: {other}");
                usage()
            }
        }
    }

    let mut cfg = ExsConfig::with_mode(mode);
    cfg.wwi_mode = wwi;
    if ring != 0 {
        cfg.ring_capacity = ring;
    }
    if credits != 0 {
        cfg.credits = credits;
    }
    let spec = BlastSpec {
        cfg,
        outstanding_sends: sends,
        outstanding_recvs: recvs,
        sizes,
        messages,
        waitall,
        verify,
        seed,
        time_limit: SimDuration::from_secs(3600),
        ..BlastSpec::new(profile.clone())
    };

    let seeds: Vec<u64> = (0..runs as u64).map(|i| seed + i).collect();
    let reports = run_blast_seeds(&spec, &seeds);

    println!(
        "profile={} mode={} sends={} recvs={} messages={} runs={}",
        profile.name,
        spec.cfg.mode.label(),
        sends,
        recvs,
        messages,
        runs
    );
    let tput = Summary::of(
        &reports
            .iter()
            .map(|r| r.throughput_mbps())
            .collect::<Vec<_>>(),
    );
    let tpm = Summary::of(
        &reports
            .iter()
            .map(|r| r.time_per_message_us())
            .collect::<Vec<_>>(),
    );
    let cpu_s = Summary::of(
        &reports
            .iter()
            .map(|r| r.cpu_sender * 100.0)
            .collect::<Vec<_>>(),
    );
    let cpu_r = Summary::of(
        &reports
            .iter()
            .map(|r| r.cpu_receiver * 100.0)
            .collect::<Vec<_>>(),
    );
    let ratio = Summary::of(&reports.iter().map(|r| r.direct_ratio()).collect::<Vec<_>>());
    let switches = Summary::of(
        &reports
            .iter()
            .map(|r| r.mode_switches as f64)
            .collect::<Vec<_>>(),
    );
    println!("throughput        {tput} Mbit/s");
    println!("time/message      {tpm} us");
    println!("cpu sender        {cpu_s} %");
    println!("cpu receiver      {cpu_r} %");
    println!("direct ratio      {ratio}");
    println!("mode switches     {switches}");
    for r in &reports {
        println!(
            "  run: {:9.1} Mbit/s  direct={} indirect={} switches={} discarded={} cpuR={:4.1}%",
            r.throughput_mbps(),
            r.direct_transfers,
            r.indirect_transfers,
            r.mode_switches,
            r.adverts_discarded,
            r.cpu_receiver * 100.0,
        );
    }
}
