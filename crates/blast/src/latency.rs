//! Ping-pong latency measurement.
//!
//! The paper lists latency studies as future work (§VI); this module
//! implements them: a classic ping-pong where node A sends an `m`-byte
//! message, node B receives it and immediately sends `m` bytes back,
//! and A records the round-trip time. Both directions of one stream
//! socket are exercised, so the dynamic protocol's mode choice shows up
//! directly in the latency distribution (an ADVERT in place before the
//! ping ⇒ zero-copy direct delivery; otherwise a buffered hop plus
//! copy).

use exs::{ExsConfig, ExsEvent, StreamSocket};
use rdma_verbs::{Access, HwProfile, MrInfo, NodeApi, NodeApp, SimNet};
use simnet::{SimDuration, SimTime};

/// Configuration for one ping-pong run.
#[derive(Clone, Debug)]
pub struct PingPongSpec {
    /// Hardware model.
    pub profile: HwProfile,
    /// EXS connection configuration.
    pub cfg: ExsConfig,
    /// Ping (and pong) payload size in bytes.
    pub msg_size: u32,
    /// Round trips to measure.
    pub iterations: usize,
    /// Warm-up round trips excluded from the report.
    pub warmup: usize,
    /// Simulation seed (host jitter).
    pub seed: u64,
}

impl PingPongSpec {
    /// A spec with sensible defaults.
    pub fn new(profile: HwProfile) -> Self {
        PingPongSpec {
            profile,
            cfg: ExsConfig::default(),
            msg_size: 64,
            iterations: 200,
            warmup: 10,
            seed: 1,
        }
    }
}

/// Round-trip-time statistics from one run.
#[derive(Clone, Debug)]
pub struct PingPongReport {
    /// Individual round-trip times, post-warm-up, in order.
    pub rtts: Vec<SimDuration>,
}

impl PingPongReport {
    /// Mean round-trip time in microseconds.
    pub fn mean_us(&self) -> f64 {
        if self.rtts.is_empty() {
            return 0.0;
        }
        self.rtts.iter().map(|d| d.as_secs_f64() * 1e6).sum::<f64>() / self.rtts.len() as f64
    }

    /// Minimum round-trip time in microseconds.
    pub fn min_us(&self) -> f64 {
        self.rtts
            .iter()
            .map(|d| d.as_secs_f64() * 1e6)
            .fold(f64::INFINITY, f64::min)
    }

    /// The given percentile (0–100) in microseconds.
    pub fn percentile_us(&self, p: f64) -> f64 {
        if self.rtts.is_empty() {
            return 0.0;
        }
        let mut v: Vec<f64> = self.rtts.iter().map(|d| d.as_secs_f64() * 1e6).collect();
        v.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs"));
        let idx = ((p / 100.0) * (v.len() - 1) as f64).round() as usize;
        v[idx.min(v.len() - 1)]
    }
}

struct Pinger {
    sock: Option<StreamSocket>,
    send_mr: Option<MrInfo>,
    recv_mr: Option<MrInfo>,
    msg_size: u32,
    iterations: usize,
    completed: usize,
    ping_sent_at: Option<SimTime>,
    rtts: Vec<SimDuration>,
    next_id: u64,
}

impl Pinger {
    fn fire(&mut self, api: &mut NodeApi<'_>) {
        let send_mr = self.send_mr.unwrap();
        let recv_mr = self.recv_mr.unwrap();
        let id = self.next_id;
        self.next_id += 1;
        let sock = self.sock.as_mut().unwrap();
        // Post the reply receive first so its ADVERT can race ahead.
        sock.exs_recv(api, &recv_mr, 0, self.msg_size, true, id);
        self.ping_sent_at = Some(api.now());
        sock.exs_send(api, &send_mr, 0, self.msg_size as u64, id);
    }
}

impl NodeApp for Pinger {
    fn on_start(&mut self, api: &mut NodeApi<'_>) {
        // Give the peer time to post its first receive.
        api.set_timer(SimDuration::from_micros(100), 0);
    }
    fn on_timer(&mut self, api: &mut NodeApi<'_>, _token: u64) {
        self.fire(api);
    }
    fn on_wake(&mut self, api: &mut NodeApi<'_>) {
        self.sock.as_mut().unwrap().handle_wake(api);
        let events = self.sock.as_mut().unwrap().take_events();
        for ev in events {
            if let ExsEvent::RecvComplete { len, .. } = ev {
                assert_eq!(len, self.msg_size, "pong truncated");
                let rtt = api
                    .now()
                    .saturating_duration_since(self.ping_sent_at.expect("ping outstanding"));
                self.rtts.push(rtt);
                self.completed += 1;
                if self.completed < self.iterations {
                    self.fire(api);
                }
            }
        }
    }
    fn is_done(&self) -> bool {
        self.completed >= self.iterations
    }
}

struct Ponger {
    sock: Option<StreamSocket>,
    send_mr: Option<MrInfo>,
    recv_mr: Option<MrInfo>,
    msg_size: u32,
    next_id: u64,
}

impl Ponger {
    fn post_recv(&mut self, api: &mut NodeApi<'_>) {
        let recv_mr = self.recv_mr.unwrap();
        let id = self.next_id;
        self.next_id += 1;
        self.sock
            .as_mut()
            .unwrap()
            .exs_recv(api, &recv_mr, 0, self.msg_size, true, id);
    }
}

impl NodeApp for Ponger {
    fn on_start(&mut self, api: &mut NodeApi<'_>) {
        self.post_recv(api);
    }
    fn on_wake(&mut self, api: &mut NodeApi<'_>) {
        self.sock.as_mut().unwrap().handle_wake(api);
        let events = self.sock.as_mut().unwrap().take_events();
        for ev in events {
            if let ExsEvent::RecvComplete { id, len } = ev {
                assert_eq!(len, self.msg_size, "ping truncated");
                let send_mr = self.send_mr.unwrap();
                self.sock
                    .as_mut()
                    .unwrap()
                    .exs_send(api, &send_mr, 0, len as u64, id);
                self.post_recv(api);
            }
        }
    }
    fn is_done(&self) -> bool {
        true
    }
}

/// Runs one ping-pong experiment.
pub fn run_pingpong(spec: &PingPongSpec) -> PingPongReport {
    let mut net = SimNet::new();
    net.set_host_seed(spec.seed.wrapping_mul(0x9E37_79B9).wrapping_add(7));
    let a = net.add_node(spec.profile.host.clone(), spec.profile.hca.clone());
    let b = net.add_node(spec.profile.host.clone(), spec.profile.hca.clone());
    net.connect_nodes(a, b, spec.profile.link.clone(), spec.seed);
    let (sock_a, sock_b) = StreamSocket::pair(&mut net, a, b, &spec.cfg);

    let total = spec.iterations + spec.warmup;
    let mut pinger = Pinger {
        sock: Some(sock_a),
        send_mr: None,
        recv_mr: None,
        msg_size: spec.msg_size,
        iterations: total,
        completed: 0,
        ping_sent_at: None,
        rtts: Vec::with_capacity(total),
        next_id: 0,
    };
    let mut ponger = Ponger {
        sock: Some(sock_b),
        send_mr: None,
        recv_mr: None,
        msg_size: spec.msg_size,
        next_id: 0,
    };
    net.with_api(a, |api| {
        pinger.send_mr = Some(api.register_mr(spec.msg_size as usize, Access::NONE));
        pinger.recv_mr =
            Some(api.register_mr(spec.msg_size as usize, Access::local_remote_write()));
    });
    net.with_api(b, |api| {
        ponger.send_mr = Some(api.register_mr(spec.msg_size as usize, Access::NONE));
        ponger.recv_mr =
            Some(api.register_mr(spec.msg_size as usize, Access::local_remote_write()));
    });

    let outcome = net.run(&mut [&mut pinger, &mut ponger], SimTime::from_secs(3600));
    assert!(
        outcome.completed,
        "ping-pong stalled after {} of {} iterations",
        pinger.completed, total
    );
    PingPongReport {
        rtts: pinger.rtts.split_off(spec.warmup),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use exs::ProtocolMode;
    use rdma_verbs::profiles::{fdr_infiniband, ideal};

    #[test]
    fn pingpong_completes_and_reports() {
        let spec = PingPongSpec {
            iterations: 50,
            warmup: 5,
            ..PingPongSpec::new(ideal())
        };
        let rep = run_pingpong(&spec);
        assert_eq!(rep.rtts.len(), 50);
        assert!(rep.min_us() >= 0.0);
        assert!(rep.mean_us() >= rep.min_us());
        assert!(rep.percentile_us(99.0) >= rep.percentile_us(50.0));
    }

    #[test]
    fn fdr_latency_is_physical() {
        let spec = PingPongSpec {
            msg_size: 64,
            iterations: 50,
            warmup: 5,
            ..PingPongSpec::new(fdr_infiniband())
        };
        let rep = run_pingpong(&spec);
        // One-way wire latency is ~0.7 us, so RTT must exceed 1.4 us; host
        // wakeup latencies put the realistic mean in the tens of us.
        assert!(rep.min_us() > 1.4, "min RTT {} too small", rep.min_us());
        assert!(
            rep.mean_us() < 500.0,
            "mean RTT {} implausible",
            rep.mean_us()
        );
    }

    #[test]
    fn indirect_mode_latency_also_works() {
        let spec = PingPongSpec {
            cfg: ExsConfig::with_mode(ProtocolMode::IndirectOnly),
            iterations: 30,
            warmup: 3,
            ..PingPongSpec::new(fdr_infiniband())
        };
        let rep = run_pingpong(&spec);
        assert_eq!(rep.rtts.len(), 30);
    }

    #[test]
    fn deterministic_per_seed() {
        let spec = PingPongSpec {
            iterations: 30,
            warmup: 3,
            seed: 9,
            ..PingPongSpec::new(fdr_infiniband())
        };
        let a = run_pingpong(&spec);
        let b = run_pingpong(&spec);
        assert_eq!(a.rtts, b.rtts);
    }
}
