//! Measurement definitions and multi-seed aggregation.
//!
//! Throughput follows the paper's Equation 1 exactly:
//!
//! ```text
//! throughput = total user bytes sent / (end time − start time)
//! ```
//!
//! where start/end bracket the first and last transfer. The paper runs
//! each configuration 10 times and reports the mean with a 95%
//! confidence interval; [`Summary`] reproduces that using the Student-t
//! critical value for the sample size.

use exs::ConnStats;
use rdma_verbs::FabricStats;
use simnet::{SimDuration, SimTime};

/// Result of one blast run.
#[derive(Clone, Debug)]
pub struct BlastReport {
    /// User payload bytes delivered.
    pub bytes: u64,
    /// Messages sent.
    pub messages: u64,
    /// First-transfer timestamp.
    pub start: SimTime,
    /// Last-completion timestamp.
    pub end: SimTime,
    /// Sender (client) CPU usage fraction over the measured window.
    pub cpu_sender: f64,
    /// Receiver (server) CPU usage fraction over the measured window.
    pub cpu_receiver: f64,
    /// Direct WWI transfers (sender stats).
    pub direct_transfers: u64,
    /// Indirect WWI transfers.
    pub indirect_transfers: u64,
    /// Sender phase parity changes.
    pub mode_switches: u64,
    /// ADVERTs the sender discarded as stale.
    pub adverts_discarded: u64,
    /// Full sender-side counter snapshot (doorbells, signaling,
    /// coalescing, CQ pressure).
    pub sender: ConnStats,
    /// Full receiver-side counter snapshot.
    pub receiver: ConnStats,
    /// FNV-1a digest of the delivered stream, folded in delivery order.
    /// Only meaningful with [`crate::VerifyLevel::Full`] (the offset
    /// basis otherwise: without verification the payload is never read).
    pub digest: u64,
    /// Simulation events processed (determinism check aid).
    pub events: u64,
    /// Configured bandwidth of the host link, in bits per second
    /// (0 for the ideal profile's unlimited link).
    pub link_bandwidth_bps: u64,
    /// Fabric allocator snapshot (`None` under the FIFO model or the
    /// thread backend, where no flow-level allocator runs).
    pub fabric: Option<FabricStats>,
}

impl BlastReport {
    /// Elapsed measured time.
    pub fn elapsed(&self) -> SimDuration {
        self.end.saturating_duration_since(self.start)
    }

    /// Paper Eq. 1, in bits per second.
    pub fn throughput_bps(&self) -> f64 {
        let secs = self.elapsed().as_secs_f64();
        if secs <= 0.0 {
            return 0.0;
        }
        self.bytes as f64 * 8.0 / secs
    }

    /// Paper Eq. 1, in megabits per second (the unit of Fig. 9–13).
    pub fn throughput_mbps(&self) -> f64 {
        self.throughput_bps() / 1e6
    }

    /// Average time per message in microseconds.
    pub fn time_per_message_us(&self) -> f64 {
        if self.messages == 0 {
            return 0.0;
        }
        self.elapsed().as_secs_f64() * 1e6 / self.messages as f64
    }

    /// Delivered throughput as a fraction of the configured link
    /// bandwidth (0.0 when the link is unlimited). Values above 1.0
    /// mean the model delivered more than the physical link could.
    pub fn offered_load_ratio(&self) -> f64 {
        if self.link_bandwidth_bps == 0 {
            return 0.0;
        }
        self.throughput_bps() / self.link_bandwidth_bps as f64
    }

    /// Ratio of direct transfers to total transfers.
    pub fn direct_ratio(&self) -> f64 {
        let total = self.direct_transfers + self.indirect_transfers;
        if total == 0 {
            0.0
        } else {
            self.direct_transfers as f64 / total as f64
        }
    }
}

/// Mean and 95% confidence half-width over repeated runs.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Summary {
    /// Sample mean.
    pub mean: f64,
    /// Half-width of the 95% confidence interval (0 for < 2 samples).
    pub ci95: f64,
    /// Number of samples.
    pub n: usize,
}

impl Summary {
    /// Summarizes a sample set.
    pub fn of(samples: &[f64]) -> Summary {
        let n = samples.len();
        if n == 0 {
            return Summary {
                mean: 0.0,
                ci95: 0.0,
                n,
            };
        }
        let mean = samples.iter().sum::<f64>() / n as f64;
        if n < 2 {
            return Summary { mean, ci95: 0.0, n };
        }
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n as f64 - 1.0);
        let se = (var / n as f64).sqrt();
        Summary {
            mean,
            ci95: t_crit_95(n - 1) * se,
            n,
        }
    }
}

impl std::fmt::Display for Summary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.2} ± {:.2}", self.mean, self.ci95)
    }
}

/// Two-sided 95% Student-t critical values by degrees of freedom.
fn t_crit_95(df: usize) -> f64 {
    const TABLE: [f64; 30] = [
        12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228, 2.201, 2.179, 2.160,
        2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056,
        2.052, 2.048, 2.045, 2.042,
    ];
    if df == 0 {
        return f64::INFINITY;
    }
    if df <= TABLE.len() {
        TABLE[df - 1]
    } else {
        1.96
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(bytes: u64, start_ns: u64, end_ns: u64) -> BlastReport {
        BlastReport {
            bytes,
            messages: 10,
            start: SimTime::from_nanos(start_ns),
            end: SimTime::from_nanos(end_ns),
            cpu_sender: 0.0,
            cpu_receiver: 0.0,
            direct_transfers: 3,
            indirect_transfers: 1,
            mode_switches: 0,
            adverts_discarded: 0,
            sender: ConnStats::default(),
            receiver: ConnStats::default(),
            digest: crate::fan_in::FNV_OFFSET,
            events: 0,
            link_bandwidth_bps: 0,
            fabric: None,
        }
    }

    #[test]
    fn throughput_matches_eq1() {
        // 1000 bytes in 1 us = 8 Gbit/s.
        let r = report(1000, 0, 1000);
        assert!((r.throughput_bps() - 8e9).abs() < 1.0);
        assert!((r.throughput_mbps() - 8000.0).abs() < 1e-6);
    }

    #[test]
    fn degenerate_interval_is_zero() {
        let r = report(1000, 5, 5);
        assert_eq!(r.throughput_bps(), 0.0);
    }

    #[test]
    fn time_per_message() {
        let r = report(1000, 0, 10_000); // 10 us, 10 messages
        assert!((r.time_per_message_us() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn direct_ratio() {
        let r = report(1, 0, 1);
        assert!((r.direct_ratio() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn summary_mean_and_ci() {
        // Known case: samples 1..=10, mean 5.5, sd ≈ 3.0277,
        // se ≈ 0.9574, t(9) = 2.262 → ci ≈ 2.166.
        let xs: Vec<f64> = (1..=10).map(|x| x as f64).collect();
        let s = Summary::of(&xs);
        assert!((s.mean - 5.5).abs() < 1e-12);
        assert!((s.ci95 - 2.166).abs() < 0.01, "ci {}", s.ci95);
        assert_eq!(s.n, 10);
    }

    #[test]
    fn summary_small_samples() {
        assert_eq!(Summary::of(&[]).n, 0);
        let one = Summary::of(&[4.0]);
        assert_eq!(one.mean, 4.0);
        assert_eq!(one.ci95, 0.0);
        let same = Summary::of(&[2.0, 2.0, 2.0]);
        assert_eq!(same.ci95, 0.0);
    }

    #[test]
    fn t_table_monotone_toward_normal() {
        assert!(t_crit_95(1) > t_crit_95(5));
        assert!(t_crit_95(5) > t_crit_95(29));
        assert_eq!(t_crit_95(100), 1.96);
    }
}
