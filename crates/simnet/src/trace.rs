//! Bounded event tracing.
//!
//! A [`TraceRing`] keeps the last `N` trace records so that a failing test
//! or a misbehaving protocol run can dump the recent simulation history
//! without unbounded memory growth. Tracing is structural (time + tag +
//! free-form detail), cheap when disabled, and entirely optional: the hot
//! paths only format the detail string when a ring is attached and
//! enabled.

use std::collections::VecDeque;
use std::fmt;

use crate::time::SimTime;

/// One trace record.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceRecord {
    /// Virtual time of the event.
    pub at: SimTime,
    /// Short static category, e.g. `"wwi"`, `"advert"`, `"copy"`.
    pub tag: &'static str,
    /// Free-form details.
    pub detail: String,
}

impl fmt::Display for TraceRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {:10} {}", self.at, self.tag, self.detail)
    }
}

/// Fixed-capacity ring of recent trace records.
pub struct TraceRing {
    records: VecDeque<TraceRecord>,
    capacity: usize,
    enabled: bool,
    total: u64,
}

impl TraceRing {
    /// Creates an enabled ring holding at most `capacity` records.
    pub fn new(capacity: usize) -> Self {
        TraceRing {
            records: VecDeque::with_capacity(capacity.min(4096)),
            capacity: capacity.max(1),
            enabled: true,
            total: 0,
        }
    }

    /// Creates a disabled ring (records are counted but not stored).
    pub fn disabled() -> Self {
        let mut r = TraceRing::new(1);
        r.enabled = false;
        r
    }

    /// Whether records are currently being stored.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Enables or disables storage.
    pub fn set_enabled(&mut self, enabled: bool) {
        self.enabled = enabled;
    }

    /// Appends a record, evicting the oldest if at capacity.
    pub fn push(&mut self, at: SimTime, tag: &'static str, detail: impl Into<String>) {
        self.total += 1;
        if !self.enabled {
            return;
        }
        if self.records.len() == self.capacity {
            self.records.pop_front();
        }
        self.records.push_back(TraceRecord {
            at,
            tag,
            detail: detail.into(),
        });
    }

    /// Records currently retained, oldest first.
    pub fn records(&self) -> impl Iterator<Item = &TraceRecord> {
        self.records.iter()
    }

    /// Number of records retained.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True if nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Total number of records ever pushed (including dropped/disabled).
    pub fn total_pushed(&self) -> u64 {
        self.total
    }

    /// Renders the retained records, one per line — used in panic messages
    /// from invariant checks.
    pub fn dump(&self) -> String {
        let mut out = String::new();
        for r in &self.records {
            out.push_str(&r.to_string());
            out.push('\n');
        }
        out
    }

    /// Drops all retained records.
    pub fn clear(&mut self) {
        self.records.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keeps_only_last_n() {
        let mut ring = TraceRing::new(3);
        for i in 0..5 {
            ring.push(SimTime::from_nanos(i), "t", format!("e{i}"));
        }
        let details: Vec<_> = ring.records().map(|r| r.detail.as_str()).collect();
        assert_eq!(details, vec!["e2", "e3", "e4"]);
        assert_eq!(ring.total_pushed(), 5);
        assert_eq!(ring.len(), 3);
    }

    #[test]
    fn disabled_counts_but_does_not_store() {
        let mut ring = TraceRing::disabled();
        ring.push(SimTime::ZERO, "t", "x");
        assert!(ring.is_empty());
        assert_eq!(ring.total_pushed(), 1);
        assert!(!ring.is_enabled());
    }

    #[test]
    fn enable_toggle() {
        let mut ring = TraceRing::new(10);
        ring.set_enabled(false);
        ring.push(SimTime::ZERO, "t", "dropped");
        ring.set_enabled(true);
        ring.push(SimTime::ZERO, "t", "kept");
        assert_eq!(ring.len(), 1);
        assert_eq!(ring.records().next().unwrap().detail, "kept");
    }

    #[test]
    fn dump_and_clear() {
        let mut ring = TraceRing::new(2);
        ring.push(SimTime::from_micros(1), "wwi", "len=5");
        let d = ring.dump();
        assert!(d.contains("wwi"));
        assert!(d.contains("len=5"));
        ring.clear();
        assert!(ring.is_empty());
    }
}
