//! # simnet — deterministic discrete-event network simulation
//!
//! This crate is the bottom substrate of the IPDPS 2014 stream-semantics
//! reproduction. It provides:
//!
//! * a virtual nanosecond clock ([`SimTime`], [`SimDuration`]),
//! * a deterministic event scheduler ([`event::Scheduler`]) with stable
//!   FIFO ordering for simultaneous events and cancellable timers,
//! * a point-to-point link model ([`link::Link`]) with configurable
//!   bandwidth, propagation delay and jitter, preserving strict FIFO
//!   delivery (the ordering guarantee of an RDMA reliable-connected
//!   channel),
//! * a flow-level fair-sharing bandwidth model ([`fabric`]) where
//!   concurrent transfers split link capacity max-min fairly across a
//!   two-hop (NIC + oversubscribed core) topology, selected per fabric
//!   via [`fabric::FabricModel`],
//! * a small, fast, seedable RNG ([`rng::SplitMix64`] and
//!   [`rng::Xoshiro256`]) so that every simulation run is reproducible
//!   from a single `u64` seed,
//! * an optional bounded event trace ([`trace::TraceRing`]) used by tests
//!   and debugging tools.
//!
//! The engine is intentionally single-threaded: determinism is what lets
//! the benchmark harnesses regenerate the paper's figures bit-for-bit
//! across runs. Thread-level concurrency is exercised by the separate
//! `ThreadFabric` backend in the `rdma-verbs` crate, which shares the
//! protocol state machines but not this scheduler.

#![warn(missing_docs)]

pub mod event;
pub mod fabric;
pub mod link;
pub mod rng;
pub mod time;
pub mod trace;

pub use event::{EventId, Scheduler};
pub use fabric::{FabricModel, FabricStats, FairShareConfig, FairShareFabric, FlowStats, Transfer};
pub use link::{Link, LinkConfig};
pub use rng::{SplitMix64, Xoshiro256};
pub use time::{SimDuration, SimTime};
