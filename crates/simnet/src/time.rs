//! Virtual time for the discrete-event engine.
//!
//! Time is measured in integer nanoseconds since the start of the
//! simulation. An `u64` nanosecond clock covers ~584 years of simulated
//! time, far beyond any experiment in this repository, so arithmetic is
//! allowed to panic on overflow in debug builds and wrap in release (it
//! never triggers in practice; the blast runs simulate seconds).

use std::fmt;
use std::ops::{Add, AddAssign, Sub, SubAssign};

/// An instant on the simulation clock, in nanoseconds since time zero.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time, in nanoseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; used as an "infinitely far"
    /// sentinel by schedulers.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Constructs an instant from raw nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Constructs an instant from microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// Constructs an instant from milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Constructs an instant from whole seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }

    /// Raw nanoseconds since time zero.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since time zero as a float (for reporting only).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// The span from `earlier` to `self`.
    ///
    /// # Panics
    /// Panics if `earlier` is later than `self`.
    #[inline]
    pub fn duration_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(earlier.0)
                .expect("duration_since: earlier is later than self"),
        )
    }

    /// Saturating version of [`SimTime::duration_since`].
    #[inline]
    pub fn saturating_duration_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Adds a duration, saturating at [`SimTime::MAX`].
    #[inline]
    pub fn saturating_add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }

    /// `max(self, other)`.
    #[inline]
    pub fn max(self, other: SimTime) -> SimTime {
        if self >= other {
            self
        } else {
            other
        }
    }
}

impl SimDuration {
    /// Zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);
    /// Largest representable span.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Constructs a span from raw nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Constructs a span from microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Constructs a span from milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Constructs a span from whole seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Constructs a span from fractional seconds, rounding to the nearest
    /// nanosecond. Negative inputs clamp to zero.
    #[inline]
    pub fn from_secs_f64(s: f64) -> Self {
        if s <= 0.0 {
            return SimDuration::ZERO;
        }
        SimDuration((s * 1e9).round() as u64)
    }

    /// Raw nanoseconds.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds as a float (for reporting only).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// True if the span is zero.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Checked addition.
    #[inline]
    pub fn checked_add(self, other: SimDuration) -> Option<SimDuration> {
        self.0.checked_add(other.0).map(SimDuration)
    }

    /// Saturating subtraction.
    #[inline]
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Multiplies the span by an integer factor.
    #[inline]
    pub fn mul_u64(self, k: u64) -> SimDuration {
        SimDuration(self.0 * k)
    }

    /// The time to serialize `bytes` onto a link of `bits_per_sec`,
    /// rounded up to the next nanosecond so zero-cost transmission is
    /// impossible for a non-empty payload.
    #[inline]
    pub fn transmission(bytes: u64, bits_per_sec: u64) -> SimDuration {
        if bytes == 0 || bits_per_sec == 0 {
            return SimDuration::ZERO;
        }
        let bits = (bytes as u128) * 8 * 1_000_000_000;
        let ns = bits.div_ceil(bits_per_sec as u128);
        SimDuration(ns.min(u64::MAX as u128) as u64)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, d: SimDuration) -> SimTime {
        SimTime(self.0 + d.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, d: SimDuration) {
        self.0 += d.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn sub(self, d: SimDuration) -> SimTime {
        SimTime(self.0 - d.0)
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    #[inline]
    fn sub(self, other: SimTime) -> SimDuration {
        self.duration_since(other)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0 + other.0)
    }
}

impl AddAssign for SimDuration {
    #[inline]
    fn add_assign(&mut self, other: SimDuration) {
        self.0 += other.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn sub(self, other: SimDuration) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(other.0)
                .expect("SimDuration subtraction underflow"),
        )
    }
}

impl SubAssign for SimDuration {
    #[inline]
    fn sub_assign(&mut self, other: SimDuration) {
        *self = *self - other;
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{}", format_ns(self.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&format_ns(self.0))
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// Human-friendly rendering of a nanosecond count, used by both time types.
fn format_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_roundtrips() {
        assert_eq!(SimTime::from_micros(3).as_nanos(), 3_000);
        assert_eq!(SimTime::from_millis(3).as_nanos(), 3_000_000);
        assert_eq!(SimTime::from_secs(3).as_nanos(), 3_000_000_000);
        assert_eq!(SimDuration::from_micros(7).as_nanos(), 7_000);
        assert_eq!(SimDuration::from_millis(7).as_nanos(), 7_000_000);
        assert_eq!(SimDuration::from_secs(7).as_nanos(), 7_000_000_000);
    }

    #[test]
    fn add_sub_time() {
        let t = SimTime::from_nanos(100);
        let d = SimDuration::from_nanos(25);
        assert_eq!((t + d).as_nanos(), 125);
        assert_eq!((t + d) - d, t);
        assert_eq!((t + d).duration_since(t), d);
        assert_eq!((t + d) - t, d);
    }

    #[test]
    #[should_panic(expected = "earlier is later")]
    fn duration_since_panics_on_negative() {
        let _ = SimTime::from_nanos(1).duration_since(SimTime::from_nanos(2));
    }

    #[test]
    fn saturating_ops() {
        let t = SimTime::from_nanos(5);
        assert_eq!(
            t.saturating_duration_since(SimTime::from_nanos(9)),
            SimDuration::ZERO
        );
        assert_eq!(
            SimTime::MAX.saturating_add(SimDuration::from_nanos(1)),
            SimTime::MAX
        );
    }

    #[test]
    fn transmission_delay_rounds_up() {
        // 1000 bytes at 1 Gbit/s = 8000 ns exactly.
        assert_eq!(
            SimDuration::transmission(1000, 1_000_000_000).as_nanos(),
            8_000
        );
        // 1 byte at 54.3 Gbit/s = 8 / 54.3 ns, rounds up to 1 ns.
        assert_eq!(SimDuration::transmission(1, 54_300_000_000).as_nanos(), 1);
        // Zero payload costs nothing.
        assert!(SimDuration::transmission(0, 1_000_000_000).is_zero());
    }

    #[test]
    fn transmission_zero_bandwidth_is_zero() {
        // Degenerate configuration treated as "infinitely fast".
        assert!(SimDuration::transmission(100, 0).is_zero());
    }

    #[test]
    fn from_secs_f64_clamps_and_rounds() {
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(1e-9).as_nanos(), 1);
        assert_eq!(SimDuration::from_secs_f64(0.5).as_nanos(), 500_000_000);
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", SimDuration::from_nanos(12)), "12ns");
        assert_eq!(format!("{}", SimDuration::from_micros(12)), "12.000us");
        assert_eq!(format!("{}", SimDuration::from_millis(12)), "12.000ms");
        assert_eq!(format!("{}", SimDuration::from_secs(12)), "12.000s");
        assert_eq!(format!("{}", SimTime::from_nanos(12)), "t+12ns");
    }

    #[test]
    fn ordering() {
        assert!(SimTime::from_nanos(1) < SimTime::from_nanos(2));
        assert_eq!(
            SimTime::from_nanos(1).max(SimTime::from_nanos(2)),
            SimTime::from_nanos(2)
        );
    }
}
