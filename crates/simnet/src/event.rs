//! Deterministic event scheduler.
//!
//! A [`Scheduler`] is a priority queue of `(SimTime, payload)` pairs with
//! three properties the rest of the stack depends on:
//!
//! 1. **Monotonic clock.** Popping an event advances the virtual clock;
//!    scheduling in the past is a logic error and panics.
//! 2. **Stable ordering.** Events scheduled for the same instant are
//!    delivered in the order they were scheduled (FIFO tie-break via a
//!    monotonically increasing sequence number). This is what makes whole
//!    simulation runs reproducible.
//! 3. **Cancellation.** Every scheduled event gets an [`EventId`];
//!    cancelling marks it dead and it is skipped on pop. This implements
//!    timers cheaply without rebuilding the heap.

use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashSet};

use crate::time::SimTime;

/// Handle for a scheduled event, usable to cancel it before it fires.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct EventId(u64);

struct Entry<E> {
    at: SimTime,
    seq: u64,
    id: EventId,
    payload: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) wins.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic discrete-event queue with a virtual clock.
///
/// ```
/// use simnet::{Scheduler, SimTime};
///
/// let mut sched = Scheduler::new();
/// sched.schedule_at(SimTime::from_micros(3), "later");
/// sched.schedule_at(SimTime::from_micros(1), "sooner");
///
/// let (at, what) = sched.pop().unwrap();
/// assert_eq!((at, what), (SimTime::from_micros(1), "sooner"));
/// assert_eq!(sched.now(), SimTime::from_micros(1));
/// ```
pub struct Scheduler<E> {
    heap: BinaryHeap<Entry<E>>,
    now: SimTime,
    next_seq: u64,
    next_id: u64,
    cancelled: HashSet<EventId>,
    popped: u64,
}

impl<E> Default for Scheduler<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Scheduler<E> {
    /// Creates an empty scheduler with the clock at [`SimTime::ZERO`].
    pub fn new() -> Self {
        Scheduler {
            heap: BinaryHeap::new(),
            now: SimTime::ZERO,
            next_seq: 0,
            next_id: 0,
            cancelled: HashSet::new(),
            popped: 0,
        }
    }

    /// The current virtual time: the timestamp of the most recently popped
    /// event (or zero before any pop).
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of live (not cancelled) events still queued.
    pub fn len(&self) -> usize {
        self.heap.len() - self.cancelled.len()
    }

    /// True if no live events remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total number of events delivered so far.
    pub fn delivered(&self) -> u64 {
        self.popped
    }

    /// Schedules `payload` to fire at absolute time `at`.
    ///
    /// # Panics
    /// Panics if `at` is earlier than the current clock.
    pub fn schedule_at(&mut self, at: SimTime, payload: E) -> EventId {
        assert!(
            at >= self.now,
            "scheduling into the past: at={at:?} now={:?}",
            self.now
        );
        let id = EventId(self.next_id);
        self.next_id += 1;
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry {
            at,
            seq,
            id,
            payload,
        });
        id
    }

    /// Schedules `payload` to fire `delay` after the current clock.
    pub fn schedule_after(&mut self, delay: crate::time::SimDuration, payload: E) -> EventId {
        self.schedule_at(self.now + delay, payload)
    }

    /// Cancels a pending event. Returns `true` if the event was still
    /// pending (it will now never be delivered), `false` if it already
    /// fired or was already cancelled.
    pub fn cancel(&mut self, id: EventId) -> bool {
        if id.0 >= self.next_id {
            return false;
        }
        // An id is pending iff it is in the heap; we cannot test the heap
        // directly, so rely on the cancellation set plus pop-side skipping.
        // Inserting an id that already fired is harmless: pop removes
        // cancelled ids lazily and the set entry is dropped when the heap
        // entry would have been delivered, or never consulted again.
        self.cancelled.insert(id)
    }

    /// Pops the next live event, advancing the clock to its timestamp.
    /// Returns `None` when the queue is exhausted.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        while let Some(entry) = self.heap.pop() {
            if self.cancelled.remove(&entry.id) {
                continue;
            }
            debug_assert!(entry.at >= self.now, "event queue went backwards");
            self.now = entry.at;
            self.popped += 1;
            return Some((entry.at, entry.payload));
        }
        None
    }

    /// The timestamp of the next live event without popping it.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        // Drop dead entries from the top so peek is accurate.
        while let Some(entry) = self.heap.peek() {
            if self.cancelled.contains(&entry.id) {
                let e = self.heap.pop().expect("peeked entry vanished");
                self.cancelled.remove(&e.id);
                continue;
            }
            return Some(entry.at);
        }
        None
    }

    /// Advances the clock to `to` without delivering events. Used by
    /// drivers that interleave external work with the event queue.
    ///
    /// # Panics
    /// Panics if `to` is in the past or earlier than a pending event.
    pub fn advance_to(&mut self, to: SimTime) {
        assert!(to >= self.now, "advance_to into the past");
        if let Some(next) = self.peek_time() {
            assert!(
                to <= next,
                "advance_to would skip a pending event at {next:?}"
            );
        }
        self.now = to;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn delivers_in_time_order() {
        let mut s = Scheduler::new();
        s.schedule_at(SimTime::from_nanos(30), "c");
        s.schedule_at(SimTime::from_nanos(10), "a");
        s.schedule_at(SimTime::from_nanos(20), "b");
        let order: Vec<_> = std::iter::from_fn(|| s.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
        assert_eq!(s.now(), SimTime::from_nanos(30));
        assert_eq!(s.delivered(), 3);
    }

    #[test]
    fn simultaneous_events_are_fifo() {
        let mut s = Scheduler::new();
        let t = SimTime::from_nanos(5);
        for i in 0..100 {
            s.schedule_at(t, i);
        }
        let order: Vec<_> = std::iter::from_fn(|| s.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn schedule_after_uses_clock() {
        let mut s = Scheduler::new();
        s.schedule_at(SimTime::from_nanos(10), "a");
        s.pop().unwrap();
        s.schedule_after(SimDuration::from_nanos(5), "b");
        let (t, e) = s.pop().unwrap();
        assert_eq!(e, "b");
        assert_eq!(t, SimTime::from_nanos(15));
    }

    #[test]
    #[should_panic(expected = "scheduling into the past")]
    fn scheduling_in_past_panics() {
        let mut s = Scheduler::new();
        s.schedule_at(SimTime::from_nanos(10), ());
        s.pop();
        s.schedule_at(SimTime::from_nanos(5), ());
    }

    #[test]
    fn cancel_prevents_delivery() {
        let mut s = Scheduler::new();
        let a = s.schedule_at(SimTime::from_nanos(1), "a");
        s.schedule_at(SimTime::from_nanos(2), "b");
        assert!(s.cancel(a));
        assert_eq!(s.len(), 1);
        let (_, e) = s.pop().unwrap();
        assert_eq!(e, "b");
        assert!(s.pop().is_none());
    }

    #[test]
    fn cancel_unknown_or_fired_is_false() {
        let mut s = Scheduler::new();
        let a = s.schedule_at(SimTime::from_nanos(1), ());
        s.pop().unwrap();
        // Already fired: cancel returns true only the first time it is
        // marked, but the event is gone either way; the important property
        // is that a bogus id is rejected.
        assert!(!s.cancel(EventId(999)));
        let _ = a;
    }

    #[test]
    fn peek_time_skips_cancelled() {
        let mut s = Scheduler::new();
        let a = s.schedule_at(SimTime::from_nanos(1), "a");
        s.schedule_at(SimTime::from_nanos(2), "b");
        s.cancel(a);
        assert_eq!(s.peek_time(), Some(SimTime::from_nanos(2)));
    }

    #[test]
    fn advance_to_moves_clock() {
        let mut s: Scheduler<()> = Scheduler::new();
        s.advance_to(SimTime::from_nanos(100));
        assert_eq!(s.now(), SimTime::from_nanos(100));
    }

    #[test]
    #[should_panic(expected = "would skip a pending event")]
    fn advance_past_pending_event_panics() {
        let mut s = Scheduler::new();
        s.schedule_at(SimTime::from_nanos(10), ());
        s.advance_to(SimTime::from_nanos(11));
    }

    #[test]
    fn empty_reporting() {
        let mut s: Scheduler<u32> = Scheduler::new();
        assert!(s.is_empty());
        let id = s.schedule_at(SimTime::from_nanos(1), 7);
        assert!(!s.is_empty());
        assert_eq!(s.len(), 1);
        s.cancel(id);
        assert!(s.is_empty());
        assert_eq!(s.pop(), None);
    }
}
