//! Small deterministic PRNGs.
//!
//! The simulation must be reproducible from a single `u64` seed, without
//! global state and without pulling the heavyweight `rand` machinery into
//! the hot path of the event loop. [`SplitMix64`] is used for seeding and
//! cheap per-entity streams; [`Xoshiro256`] (xoshiro256**) is the
//! general-purpose generator used for jitter and workload draws.
//!
//! The `blast` crate additionally uses the `rand` crate's distributions
//! for workload generation, seeded from these generators, keeping one
//! seed-to-everything chain.

/// SplitMix64: tiny, fast, passes BigCrush; ideal as a seeder.
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed. All seeds are valid.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64 uniformly distributed bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// xoshiro256**: the workhorse generator.
#[derive(Clone, Debug)]
pub struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    /// Creates a generator, expanding the seed through SplitMix64 as the
    /// xoshiro authors recommend.
    pub fn new(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = sm.next_u64();
        }
        // The all-zero state is invalid; SplitMix64 cannot emit four zeros
        // for any seed, but guard anyway.
        if s == [0, 0, 0, 0] {
            s[0] = 0x1;
        }
        Xoshiro256 { s }
    }

    /// Next 64 uniformly distributed bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform draw in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform draw in `[0, n)`. Uses Lemire's multiply-shift rejection
    /// method to avoid modulo bias.
    #[inline]
    pub fn next_below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "next_below(0)");
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (n as u128);
            let lo = m as u64;
            if lo >= n || lo >= (u64::MAX - n + 1) % n {
                // Accept unless in the biased low region.
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform draw in the inclusive range `[lo, hi]`.
    #[inline]
    pub fn next_range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "next_range: lo > hi");
        if lo == hi {
            return lo;
        }
        lo + self.next_below(hi - lo + 1)
    }

    /// Exponentially distributed draw with the given mean, via inverse
    /// transform sampling. Used for the paper's message-size law and for
    /// link jitter.
    #[inline]
    pub fn next_exponential(&mut self, mean: f64) -> f64 {
        assert!(mean > 0.0, "next_exponential: non-positive mean");
        // Avoid ln(0): next_f64 is in [0,1); 1-u is in (0,1].
        let u = 1.0 - self.next_f64();
        -mean * u.ln()
    }

    /// Derives an independent child generator (stream splitting).
    pub fn split(&mut self) -> Xoshiro256 {
        Xoshiro256::new(self.next_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn splitmix_differs_by_seed() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn xoshiro_is_deterministic() {
        let mut a = Xoshiro256::new(7);
        let mut b = Xoshiro256::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = Xoshiro256::new(3);
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn below_is_in_range_and_covers() {
        let mut r = Xoshiro256::new(11);
        let mut seen = [false; 8];
        for _ in 0..10_000 {
            let x = r.next_below(8);
            assert!(x < 8);
            seen[x as usize] = true;
        }
        assert!(seen.iter().all(|&b| b), "all residues should appear");
    }

    #[test]
    fn range_inclusive() {
        let mut r = Xoshiro256::new(13);
        let mut saw_lo = false;
        let mut saw_hi = false;
        for _ in 0..50_000 {
            let x = r.next_range(5, 9);
            assert!((5..=9).contains(&x));
            saw_lo |= x == 5;
            saw_hi |= x == 9;
        }
        assert!(saw_lo && saw_hi);
        assert_eq!(r.next_range(4, 4), 4);
    }

    #[test]
    fn exponential_mean_is_close() {
        let mut r = Xoshiro256::new(17);
        let n = 200_000;
        let mean = 1000.0;
        let sum: f64 = (0..n).map(|_| r.next_exponential(mean)).sum();
        let observed = sum / n as f64;
        assert!(
            (observed - mean).abs() < mean * 0.02,
            "observed mean {observed} too far from {mean}"
        );
    }

    #[test]
    fn split_streams_are_independent_and_deterministic() {
        let mut parent1 = Xoshiro256::new(23);
        let mut parent2 = Xoshiro256::new(23);
        let mut c1 = parent1.split();
        let mut c2 = parent2.split();
        for _ in 0..50 {
            assert_eq!(c1.next_u64(), c2.next_u64());
        }
        // Child differs from parent continuation.
        assert_ne!(c1.next_u64(), parent1.next_u64());
    }

    #[test]
    #[should_panic(expected = "next_below(0)")]
    fn below_zero_panics() {
        Xoshiro256::new(1).next_below(0);
    }
}
