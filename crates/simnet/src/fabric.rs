//! Flow-level fair-sharing bandwidth model.
//!
//! The point-to-point [`crate::link::Link`] serializes messages on each
//! directed pair independently: 512 senders blasting one receiver each
//! see a private, uncontended pipe, and the receiver's reported ingress
//! can exceed its NIC's line rate — physically dishonest at exactly the
//! connection counts where scalability claims live. This module replaces
//! the per-message link charge with a **flow-level max-min fair-share
//! model**: concurrent transfers split capacity, and every active flow
//! re-speeds when a flow arrives or completes (event-driven, no
//! per-byte ticks).
//!
//! Topology: two hops. Each node owns one NIC **uplink** (egress) and
//! one **downlink** (ingress) whose capacities come from the registered
//! [`crate::link::LinkConfig`]s, and all traffic additionally crosses a
//! shared **core** (the switch fabric) whose capacity is the sum of the
//! finite host uplinks divided by a configurable oversubscription
//! factor. Oversubscription 1.0 makes the core transparent; 4.0 models
//! a 4:1 oversubscribed top-of-rack layer where victim flows and incast
//! collapse become expressible.
//!
//! A *flow* is a directed `(src, dst)` node pair. Transfers within a
//! flow stay strictly FIFO (an RC channel never reorders), so layering
//! this model under a byte-stream protocol changes **timing only** —
//! delivered bytes and their order are identical to the FIFO link model.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use crate::rng::Xoshiro256;
use crate::time::{SimDuration, SimTime};

/// Which bandwidth model a fabric runs.
#[derive(Clone, Debug, Default, PartialEq)]
pub enum FabricModel {
    /// Legacy per-pair FIFO links: every directed node pair owns a
    /// private serializing transmitter ([`crate::link::Link::transit`]).
    /// Concurrent senders do not contend.
    #[default]
    Fifo,
    /// Flow-level max-min fair sharing over a two-hop topology
    /// (host NIC links into an oversubscribed core).
    FairShare(FairShareConfig),
}

impl FabricModel {
    /// True when this model runs the fair-share allocator.
    pub fn is_fair_share(&self) -> bool {
        matches!(self, FabricModel::FairShare(_))
    }

    /// Short stable name for reports (`"fifo"` / `"fair_share"`).
    pub fn name(&self) -> &'static str {
        match self {
            FabricModel::Fifo => "fifo",
            FabricModel::FairShare(_) => "fair_share",
        }
    }
}

/// Configuration for [`FabricModel::FairShare`].
///
/// The RNG seed is **explicit** here (rather than implied by link
/// seeds): contention runs must be reproducible across backends from
/// one number, and the fabric's jitter stream is global to the switch,
/// not per-pair.
#[derive(Clone, Debug, PartialEq)]
pub struct FairShareConfig {
    /// Core (switch) oversubscription factor: core capacity = sum of
    /// finite host uplink capacities / this. 1.0 = non-blocking fabric;
    /// 4.0 = classic 4:1 ToR oversubscription. Must be ≥ 1.0.
    pub oversubscription: f64,
    /// Seed for the fabric's arrival-jitter RNG (applied using each
    /// link's configured jitter bound).
    pub seed: u64,
}

impl FairShareConfig {
    /// A non-blocking (oversubscription 1.0) fabric with the given
    /// jitter seed.
    pub fn new(seed: u64) -> Self {
        FairShareConfig {
            oversubscription: 1.0,
            seed,
        }
    }

    /// Sets the core oversubscription factor (builder style).
    pub fn with_oversubscription(mut self, factor: f64) -> Self {
        self.oversubscription = factor;
        self
    }
}

impl Default for FairShareConfig {
    fn default() -> Self {
        FairShareConfig::new(0xFA1B)
    }
}

/// One message occupying a flow: opaque token for the driver, wire
/// bytes for the allocator, payload bytes for reporting.
#[derive(Clone, Copy, Debug)]
pub struct Transfer {
    /// Driver-side handle resolving back to the queued message.
    pub token: u64,
    /// Bytes serialized on the wire (payload + per-packet framing).
    pub wire_bytes: u64,
    /// Application payload bytes (utilisation accounting).
    pub payload_bytes: u64,
}

/// A directed flow identity: `(source node, destination node)`.
pub type FlowKey = (u32, u32);

/// A shared resource in the two-hop topology.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
enum Rid {
    /// A node's NIC egress.
    Up(u32),
    /// A node's NIC ingress.
    Down(u32),
    /// The switch fabric between all uplinks and downlinks.
    Core,
}

#[derive(Default)]
struct Flow {
    queue: VecDeque<Transfer>,
    /// Current allocated rate for the head transfer (bps; may be
    /// `f64::INFINITY` when no finite resource constrains the flow).
    rate_bps: f64,
    /// True once the head transfer has been assigned a rate (so a
    /// subsequent different assignment counts as a re-speed).
    has_rate: bool,
    /// Wire bits the head transfer still has to move.
    rem_bits: f64,
    /// FIFO clamp: later transfers never arrive before earlier ones.
    last_arrival: SimTime,
    /// Completed payload bytes.
    bytes: u64,
    /// Completed transfers.
    transfers: u64,
    /// Times an in-progress transfer's rate was changed by another
    /// flow arriving or leaving.
    respeeds: u64,
    /// Nanoseconds this flow had a transfer in progress.
    active_ns: u64,
}

/// Event-driven max-min bandwidth allocator over the two-hop topology.
///
/// The driver owns the event loop; this type answers two questions —
/// "a transfer was handed to the fabric at `now`" ([`submit`]) and "a
/// head transfer's completion event fired at `now`" ([`complete`]) —
/// and returns, for every flow whose head-completion time changed, the
/// new completion time so the driver can reschedule its event.
///
/// [`submit`]: FairShareFabric::submit
/// [`complete`]: FairShareFabric::complete
pub struct FairShareFabric {
    cfg: FairShareConfig,
    /// NIC egress capacity per node (bps; absent or 0 = unlimited).
    up: BTreeMap<u32, u64>,
    /// NIC ingress capacity per node.
    down: BTreeMap<u32, u64>,
    flows: BTreeMap<FlowKey, Flow>,
    /// Flows with a transfer in progress.
    active: BTreeSet<FlowKey>,
    /// The allocator's clock: the `now` of the last submit/complete.
    now: SimTime,
    rng: Xoshiro256,
    /// Global re-speed count (sum over flows).
    respeeds: u64,
}

/// Relative tolerance when deciding whether a recomputed rate actually
/// changed (fp noise from repeated subtraction must not count as a
/// re-speed or force an event reschedule).
const RATE_EPS: f64 = 1e-9;

impl FairShareFabric {
    /// An empty fabric with no links registered.
    pub fn new(cfg: FairShareConfig) -> Self {
        assert!(
            cfg.oversubscription >= 1.0,
            "oversubscription factor must be >= 1.0, got {}",
            cfg.oversubscription
        );
        let seed = cfg.seed;
        FairShareFabric {
            cfg,
            up: BTreeMap::new(),
            down: BTreeMap::new(),
            flows: BTreeMap::new(),
            active: BTreeSet::new(),
            now: SimTime::ZERO,
            rng: Xoshiro256::new(seed),
            respeeds: 0,
        }
    }

    /// The fabric's configuration.
    pub fn config(&self) -> &FairShareConfig {
        &self.cfg
    }

    /// Registers one directed link's capacity: `src`'s NIC uplink and
    /// `dst`'s NIC downlink are each at least `bandwidth_bps`.
    /// Bandwidth 0 means unlimited (the ideal-hardware profile).
    /// Registering the same node twice keeps the larger capacity.
    pub fn register_link(&mut self, src: u32, dst: u32, bandwidth_bps: u64) {
        let up = self.up.entry(src).or_insert(0);
        *up = (*up).max(bandwidth_bps);
        let down = self.down.entry(dst).or_insert(0);
        *down = (*down).max(bandwidth_bps);
    }

    /// Core capacity in bps: sum of the finite registered uplinks,
    /// divided by the oversubscription factor. `None` when every uplink
    /// is unlimited (the core cannot be the bottleneck of an ideal
    /// fabric).
    fn core_capacity(&self) -> Option<f64> {
        let total: u64 = self.up.values().copied().filter(|&c| c > 0).sum();
        if total == 0 {
            None
        } else {
            Some(total as f64 / self.cfg.oversubscription)
        }
    }

    /// Drains elapsed wall-clock into every in-progress transfer at the
    /// current rates. `now` must be monotone (the DES driver's clock).
    fn advance(&mut self, now: SimTime) {
        debug_assert!(now >= self.now, "fabric clock went backwards");
        let dt_ns = now.as_nanos().saturating_sub(self.now.as_nanos());
        if dt_ns > 0 {
            for key in &self.active {
                let flow = self.flows.get_mut(key).expect("active flow missing");
                if flow.rate_bps.is_infinite() {
                    flow.rem_bits = 0.0;
                } else {
                    flow.rem_bits = (flow.rem_bits - flow.rate_bps * dt_ns as f64 / 1e9).max(0.0);
                }
                flow.active_ns += dt_ns;
            }
        }
        self.now = now;
    }

    /// The resources flow `key` crosses, restricted to those with
    /// finite capacity.
    fn crosses(key: FlowKey, rid: Rid) -> bool {
        match rid {
            Rid::Up(n) => key.0 == n,
            Rid::Down(n) => key.1 == n,
            Rid::Core => true,
        }
    }

    /// Head-completion time for `key` at its current rate.
    fn finish_time(&self, key: FlowKey) -> SimTime {
        let flow = &self.flows[&key];
        if flow.rate_bps.is_infinite() || flow.rem_bits <= 0.0 {
            return self.now;
        }
        // Ceil so the scheduled event never fires before the last bit
        // lands (rem_bits may be epsilon-positive at the event
        // otherwise).
        let ns = (flow.rem_bits * 1e9 / flow.rate_bps).ceil() as u64;
        self.now + SimDuration::from_nanos(ns)
    }

    /// Progressive-filling max-min allocation over the active flows.
    ///
    /// Repeatedly finds the bottleneck resource (smallest equal share
    /// `remaining capacity / unfrozen users`), freezes its users at that
    /// share, subtracts their allocation from every resource they cross,
    /// and repeats. Flows crossing no finite resource run infinitely
    /// fast (ideal profile).
    ///
    /// Returns `(flow, new head-completion time)` for every flow whose
    /// rate materially changed — plus `touched`, whose completion event
    /// must be (re)scheduled even at an unchanged rate (it just started
    /// a new head transfer).
    fn recompute(&mut self, touched: Option<FlowKey>) -> Vec<(FlowKey, SimTime)> {
        let mut rem: BTreeMap<Rid, f64> = BTreeMap::new();
        for &(s, d) in &self.active {
            if let Some(&cap) = self.up.get(&s) {
                if cap > 0 {
                    rem.insert(Rid::Up(s), cap as f64);
                }
            }
            if let Some(&cap) = self.down.get(&d) {
                if cap > 0 {
                    rem.insert(Rid::Down(d), cap as f64);
                }
            }
        }
        if !self.active.is_empty() {
            if let Some(core) = self.core_capacity() {
                rem.insert(Rid::Core, core);
            }
        }

        let mut unfrozen: BTreeSet<FlowKey> = self.active.iter().copied().collect();
        let mut new_rates: BTreeMap<FlowKey, f64> = BTreeMap::new();
        while !unfrozen.is_empty() {
            let mut best: Option<(Rid, f64)> = None;
            for (&rid, &cap) in &rem {
                let users = unfrozen.iter().filter(|&&k| Self::crosses(k, rid)).count();
                if users == 0 {
                    continue;
                }
                let share = cap / users as f64;
                if best.is_none_or(|(_, s)| share < s) {
                    best = Some((rid, share));
                }
            }
            let Some((bottleneck, share)) = best else {
                // No finite resource constrains the remaining flows.
                for k in unfrozen {
                    new_rates.insert(k, f64::INFINITY);
                }
                break;
            };
            let share = share.max(0.0);
            let frozen: Vec<FlowKey> = unfrozen
                .iter()
                .filter(|&&k| Self::crosses(k, bottleneck))
                .copied()
                .collect();
            for k in frozen {
                new_rates.insert(k, share);
                unfrozen.remove(&k);
                for rid in [Rid::Up(k.0), Rid::Down(k.1), Rid::Core] {
                    if let Some(cap) = rem.get_mut(&rid) {
                        *cap = (*cap - share).max(0.0);
                    }
                }
            }
        }

        let mut changes = Vec::new();
        for (key, rate) in new_rates {
            let flow = self.flows.get_mut(&key).expect("allocated unknown flow");
            let old = flow.rate_bps;
            let same = if flow.has_rate {
                if old.is_infinite() && rate.is_infinite() {
                    true
                } else {
                    (rate - old).abs() <= old.abs() * RATE_EPS
                }
            } else {
                false
            };
            if flow.has_rate && !same {
                flow.respeeds += 1;
                self.respeeds += 1;
            }
            flow.rate_bps = rate;
            flow.has_rate = true;
            if !same || touched == Some(key) {
                changes.push((key, self.finish_time(key)));
            }
        }
        changes
    }

    /// Hands a transfer to the fabric at `now`. If the flow is idle the
    /// transfer starts immediately and every affected flow re-speeds;
    /// if the flow is already busy the transfer queues FIFO behind the
    /// current head and nothing changes yet.
    ///
    /// Returns `(flow, head-completion time)` for every flow whose
    /// pending head-completion event must be rescheduled.
    pub fn submit(
        &mut self,
        now: SimTime,
        src: u32,
        dst: u32,
        transfer: Transfer,
    ) -> Vec<(FlowKey, SimTime)> {
        self.advance(now);
        let key = (src, dst);
        let flow = self.flows.entry(key).or_default();
        flow.queue.push_back(transfer);
        if self.active.contains(&key) {
            return Vec::new();
        }
        let head_bits = (flow.queue.front().expect("just pushed").wire_bytes * 8) as f64;
        flow.rem_bits = head_bits;
        flow.has_rate = false;
        flow.rate_bps = 0.0;
        self.active.insert(key);
        self.recompute(Some(key))
    }

    /// Completes the head transfer of `(src, dst)` at `now` (the driver
    /// calls this from the head-completion event scheduled at the time
    /// returned by [`FairShareFabric::submit`] /
    /// [`FairShareFabric::recompute`] changes).
    ///
    /// Returns the finished transfer, its receiver-side arrival time
    /// (`now` + propagation + jittered extra, FIFO-clamped within the
    /// flow), and the rescheduling changes from the allocator.
    pub fn complete(
        &mut self,
        now: SimTime,
        src: u32,
        dst: u32,
        propagation: SimDuration,
        jitter: SimDuration,
    ) -> (Transfer, SimTime, Vec<(FlowKey, SimTime)>) {
        self.advance(now);
        let key = (src, dst);
        let flow = self.flows.get_mut(&key).expect("complete on unknown flow");
        debug_assert!(
            flow.rem_bits < 8.0 || flow.rate_bps.is_infinite(),
            "head completion fired with {} bits left on {key:?}",
            flow.rem_bits
        );
        let transfer = flow.queue.pop_front().expect("complete on empty flow");
        flow.bytes += transfer.payload_bytes;
        flow.transfers += 1;

        let mut arrival = now + propagation;
        if !jitter.is_zero() {
            let extra = self.rng.next_below(jitter.as_nanos() + 1);
            arrival += SimDuration::from_nanos(extra);
        }
        // FIFO clamp: reliable connected transport never reorders.
        arrival = arrival.max(flow.last_arrival);
        flow.last_arrival = arrival;

        let changes = if let Some(next) = flow.queue.front() {
            let bits = (next.wire_bytes * 8) as f64;
            let flow = self.flows.get_mut(&key).expect("flow vanished");
            flow.rem_bits = bits;
            self.recompute(Some(key))
        } else {
            let flow = self.flows.get_mut(&key).expect("flow vanished");
            flow.rate_bps = 0.0;
            flow.has_rate = false;
            flow.rem_bits = 0.0;
            self.active.remove(&key);
            self.recompute(None)
        };
        (transfer, arrival, changes)
    }

    /// Number of flows with a transfer currently in progress.
    pub fn active_flows(&self) -> usize {
        self.active.len()
    }

    /// Telemetry snapshot: per-flow achieved rates, re-speed counts and
    /// the Jain fairness index.
    ///
    /// The headline index measures fairness where flows actually
    /// compete: flows are grouped by destination NIC (the incast
    /// bottleneck), Jain is computed inside each group of two or more
    /// byte-moving flows, and the worst group is reported. Comparing
    /// achieved rates *across* sinks would conflate demand with
    /// allocation — a tiny control flow back to a client is not
    /// "unfair" relative to 512 bulk flows into the server.
    pub fn stats(&self) -> FabricStats {
        let flows: Vec<FlowStats> = self
            .flows
            .iter()
            .map(|(&(src, dst), f)| {
                let achieved_bps = if f.active_ns == 0 {
                    0.0
                } else {
                    f.bytes as f64 * 8.0 * 1e9 / f.active_ns as f64
                };
                FlowStats {
                    src,
                    dst,
                    bytes: f.bytes,
                    transfers: f.transfers,
                    respeeds: f.respeeds,
                    active_ns: f.active_ns,
                    achieved_bps,
                }
            })
            .collect();
        let mut by_dst: BTreeMap<u32, Vec<f64>> = BTreeMap::new();
        for f in flows.iter().filter(|f| f.bytes > 0) {
            by_dst.entry(f.dst).or_default().push(f.achieved_bps);
        }
        let worst_group_jain = by_dst
            .values()
            .filter(|rates| rates.len() >= 2)
            .map(|rates| jain_index(rates))
            .fold(1.0_f64, f64::min);
        FabricStats {
            model: "fair_share",
            oversubscription: self.cfg.oversubscription,
            seed: self.cfg.seed,
            respeeds: self.respeeds,
            jain_index: worst_group_jain,
            flows,
        }
    }
}

/// Jain's fairness index `(Σx)² / (n·Σx²)` over per-flow rates: 1.0 is
/// perfectly fair, 1/n is maximally unfair. 1.0 for an empty slice.
pub fn jain_index(rates: &[f64]) -> f64 {
    if rates.is_empty() {
        return 1.0;
    }
    let sum: f64 = rates.iter().sum();
    let sq: f64 = rates.iter().map(|r| r * r).sum();
    if sq == 0.0 {
        return 1.0;
    }
    sum * sum / (rates.len() as f64 * sq)
}

/// One flow's telemetry.
#[derive(Clone, Debug)]
pub struct FlowStats {
    /// Source node.
    pub src: u32,
    /// Destination node.
    pub dst: u32,
    /// Completed payload bytes.
    pub bytes: u64,
    /// Completed transfers.
    pub transfers: u64,
    /// Times an in-progress transfer re-sped because another flow
    /// arrived or left.
    pub respeeds: u64,
    /// Nanoseconds the flow had a transfer in progress.
    pub active_ns: u64,
    /// Payload throughput while active, bits per second.
    pub achieved_bps: f64,
}

impl FlowStats {
    /// Achieved payload rate in Mbit/s.
    pub fn achieved_mbps(&self) -> f64 {
        self.achieved_bps / 1e6
    }
}

/// Whole-fabric telemetry snapshot.
#[derive(Clone, Debug)]
pub struct FabricStats {
    /// Model name (`"fair_share"`).
    pub model: &'static str,
    /// Configured core oversubscription factor.
    pub oversubscription: f64,
    /// Configured jitter-RNG seed.
    pub seed: u64,
    /// Global re-speed count.
    pub respeeds: u64,
    /// Jain fairness index over per-flow achieved rates (flows that
    /// moved at least one byte).
    pub jain_index: f64,
    /// Per-flow telemetry, ordered by `(src, dst)`.
    pub flows: Vec<FlowStats>,
}

impl FabricStats {
    /// Serializes the snapshot as a JSON object (dependency-free, in
    /// the style of the stats types downstream).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(128 + self.flows.len() * 96);
        out.push_str(&format!(
            "{{\"model\":\"{}\",\"oversubscription\":{:.3},\"seed\":{},\
             \"respeeds\":{},\"jain_index\":{:.6},\"flows\":[",
            self.model, self.oversubscription, self.seed, self.respeeds, self.jain_index,
        ));
        for (i, f) in self.flows.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"src\":{},\"dst\":{},\"bytes\":{},\"transfers\":{},\
                 \"respeeds\":{},\"active_ns\":{},\"achieved_mbps\":{:.3}}}",
                f.src,
                f.dst,
                f.bytes,
                f.transfers,
                f.respeeds,
                f.active_ns,
                f.achieved_mbps(),
            ));
        }
        out.push_str("]}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const GBIT: u64 = 1_000_000_000;

    fn t(token: u64, bytes: u64) -> Transfer {
        Transfer {
            token,
            wire_bytes: bytes,
            payload_bytes: bytes,
        }
    }

    /// Star topology: `n` clients (nodes 1..=n) into server node 0,
    /// every link `bw` bps.
    fn star(n: u32, bw: u64, cfg: FairShareConfig) -> FairShareFabric {
        let mut f = FairShareFabric::new(cfg);
        for c in 1..=n {
            f.register_link(c, 0, bw);
            f.register_link(0, c, bw);
        }
        f
    }

    #[test]
    fn single_flow_gets_full_link() {
        let mut f = star(2, 10 * GBIT, FairShareConfig::new(1));
        let changes = f.submit(SimTime::ZERO, 1, 0, t(0, 1250)); // 10_000 bits
        assert_eq!(changes.len(), 1);
        let (key, finish) = changes[0];
        assert_eq!(key, (1, 0));
        // 10_000 bits at 10 Gbit/s = 1000 ns.
        assert_eq!(finish.as_nanos(), 1_000);
    }

    #[test]
    fn two_flows_share_the_downlink() {
        let mut f = star(2, 10 * GBIT, FairShareConfig::new(1));
        let c1 = f.submit(SimTime::ZERO, 1, 0, t(0, 1250));
        assert_eq!(c1[0].1.as_nanos(), 1_000);
        // Second flow arrives halfway: flow 1 has 5_000 bits left, now
        // runs at 5 Gbit/s → finishes 1000 ns later (t=1500).
        let c2 = f.submit(SimTime::from_nanos(500), 2, 0, t(1, 1250));
        let m: BTreeMap<_, _> = c2.into_iter().collect();
        assert_eq!(m[&(1, 0)].as_nanos(), 1_500);
        // Flow 2 moves 10_000 bits at 5 Gbit/s → 2000 ns from t=500.
        assert_eq!(m[&(2, 0)].as_nanos(), 2_500);
    }

    #[test]
    fn completion_respeeds_the_survivor() {
        let mut f = star(2, 10 * GBIT, FairShareConfig::new(1));
        f.submit(SimTime::ZERO, 1, 0, t(0, 1250));
        f.submit(SimTime::ZERO, 2, 0, t(1, 2500)); // both at 5G
                                                   // Flow 1 finishes its 10_000 bits at t=2000.
        let (done, arrival, changes) = f.complete(
            SimTime::from_nanos(2_000),
            1,
            0,
            SimDuration::ZERO,
            SimDuration::ZERO,
        );
        assert_eq!(done.token, 0);
        assert_eq!(arrival.as_nanos(), 2_000);
        // Flow 2 re-speeds to the full 10G: 10_000 of its 20_000 bits
        // remain → finishes 1000 ns later.
        let m: BTreeMap<_, _> = changes.into_iter().collect();
        assert_eq!(m[&(2, 0)].as_nanos(), 3_000);
        let s = f.stats();
        let f1 = s.flows.iter().find(|fl| fl.src == 1).unwrap();
        let f2 = s.flows.iter().find(|fl| fl.src == 2).unwrap();
        assert_eq!(f1.respeeds, 1, "sped down when flow 2 arrived");
        assert_eq!(f2.respeeds, 1, "sped up when flow 1 departed");
        assert_eq!(s.respeeds, 2);
    }

    #[test]
    fn max_min_water_filling_assigns_unequal_shares() {
        // Flows: A: 1→0, B: 2→0, C: 2→3. Links 10G everywhere.
        // Downlink 0 carries A+B; uplink 2 carries B+C.
        // Equal-split everywhere gives 5G each and no resource is left
        // over — the classic symmetric water-filling fixpoint.
        let mut f = FairShareFabric::new(FairShareConfig::new(1));
        for &(a, b) in &[(1u32, 0u32), (2, 0), (2, 3)] {
            f.register_link(a, b, 10 * GBIT);
            f.register_link(b, a, 10 * GBIT);
        }
        f.submit(SimTime::ZERO, 1, 0, t(0, 125_000));
        f.submit(SimTime::ZERO, 2, 0, t(1, 125_000));
        let changes = f.submit(SimTime::ZERO, 2, 3, t(2, 125_000));
        // 1_000_000 bits at 5 Gbit/s = 200_000 ns for every flow.
        let m: BTreeMap<_, _> = changes.into_iter().collect();
        for fin in m.values() {
            assert_eq!(fin.as_nanos(), 200_000);
        }
        // Now complete A (1→0) at t=200_000: B is still limited by
        // uplink 2 shared with C (5G each — no change), so only C, er,
        // actually B's downlink constraint relaxes but uplink 2 still
        // binds both B and C at 5G: no re-speed happens.
        let (_, _, changes) = f.complete(
            SimTime::from_nanos(200_000),
            1,
            0,
            SimDuration::ZERO,
            SimDuration::ZERO,
        );
        assert!(
            changes.is_empty(),
            "B and C stay bottlenecked on uplink 2: {changes:?}"
        );
    }

    #[test]
    fn oversubscribed_core_binds_aggregate() {
        // 4 clients → 4 distinct servers, 10G links, core 4:1
        // oversubscribed: core capacity = 40G/4 = 10G, so each of the 4
        // disjoint flows gets 2.5G even though its NIC path is 10G.
        let mut f = FairShareFabric::new(FairShareConfig::new(1).with_oversubscription(4.0));
        for c in 0..4u32 {
            f.register_link(c, c + 4, 10 * GBIT);
        }
        let mut last = Vec::new();
        for c in 0..4u32 {
            last = f.submit(SimTime::ZERO, c, c + 4, t(c as u64, 125_000));
        }
        // 1_000_000 bits at 2.5 Gbit/s = 400_000 ns.
        let m: BTreeMap<_, _> = last.into_iter().collect();
        assert_eq!(m[&(3, 7)].as_nanos(), 400_000);
    }

    #[test]
    fn unlimited_links_run_infinitely_fast() {
        let mut f = star(2, 0, FairShareConfig::new(1));
        let changes = f.submit(SimTime::from_nanos(7), 1, 0, t(0, 1 << 20));
        assert_eq!(changes.len(), 1);
        assert_eq!(changes[0].1.as_nanos(), 7, "no finite resource binds");
        let (_, arrival, _) = f.complete(
            SimTime::from_nanos(7),
            1,
            0,
            SimDuration::from_nanos(300),
            SimDuration::ZERO,
        );
        assert_eq!(arrival.as_nanos(), 307);
    }

    #[test]
    fn queued_transfers_stay_fifo_and_do_not_respeed() {
        let mut f = star(2, 10 * GBIT, FairShareConfig::new(1));
        let c = f.submit(SimTime::ZERO, 1, 0, t(0, 1250));
        assert_eq!(c.len(), 1);
        // Queue two more behind the head: no allocation change.
        assert!(f.submit(SimTime::ZERO, 1, 0, t(1, 1250)).is_empty());
        assert!(f.submit(SimTime::ZERO, 1, 0, t(2, 1250)).is_empty());
        let mut now = SimTime::from_nanos(1_000);
        for expect in 0..3u64 {
            let (done, arrival, changes) =
                f.complete(now, 1, 0, SimDuration::from_nanos(100), SimDuration::ZERO);
            assert_eq!(done.token, expect, "strict FIFO within the flow");
            assert_eq!(arrival, now + SimDuration::from_nanos(100));
            if expect < 2 {
                // The next head starts: exactly one change, same flow.
                assert_eq!(changes.len(), 1);
                assert_eq!(changes[0].0, (1, 0));
                now = changes[0].1;
            } else {
                assert!(changes.is_empty());
            }
        }
        let s = f.stats();
        assert_eq!(s.respeeds, 0, "a lone flow never re-speeds");
        assert_eq!(s.flows[0].transfers, 3);
    }

    #[test]
    fn arrival_jitter_is_deterministic_per_seed_and_fifo() {
        let run = |seed| {
            let mut f = star(2, 10 * GBIT, FairShareConfig::new(seed));
            let mut arrivals = Vec::new();
            let mut now = SimTime::ZERO;
            for i in 0..50u64 {
                let changes = f.submit(now, 1, 0, t(i, 1250));
                now = changes[0].1;
                let (_, arrival, _) = f.complete(
                    now,
                    1,
                    0,
                    SimDuration::from_nanos(300),
                    SimDuration::from_nanos(500),
                );
                arrivals.push(arrival);
            }
            arrivals
        };
        let a = run(42);
        let b = run(42);
        let c = run(43);
        assert_eq!(a, b, "same seed, same arrivals");
        assert_ne!(a, c, "different seed, different jitter");
        assert!(a.windows(2).all(|w| w[0] <= w[1]), "FIFO under jitter");
    }

    #[test]
    fn jain_index_bounds() {
        assert_eq!(jain_index(&[]), 1.0);
        assert_eq!(jain_index(&[5.0, 5.0, 5.0]), 1.0);
        let skewed = jain_index(&[10.0, 0.0, 0.0, 0.0]);
        assert!((skewed - 0.25).abs() < 1e-12, "1/n for one hog: {skewed}");
        let near = jain_index(&[9.0, 10.0, 11.0]);
        assert!(near > 0.99, "mild spread stays near 1: {near}");
    }

    #[test]
    fn stats_json_shape() {
        let mut f = star(2, 10 * GBIT, FairShareConfig::new(9));
        f.submit(SimTime::ZERO, 1, 0, t(0, 1250));
        f.complete(
            SimTime::from_nanos(1_000),
            1,
            0,
            SimDuration::ZERO,
            SimDuration::ZERO,
        );
        let s = f.stats();
        let j = s.to_json();
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(j.contains("\"model\":\"fair_share\""));
        assert!(j.contains("\"seed\":9"));
        assert!(j.contains("\"flows\":[{\"src\":1,\"dst\":0,\"bytes\":1250"));
        // 1250 bytes in 1000 ns of active time = 10 Gbit/s.
        assert!(j.contains("\"achieved_mbps\":10000.000"));
    }

    #[test]
    fn aggregate_into_one_node_is_capped() {
        // 8 senders into node 0 at 10G: aggregate wire rate must equal
        // the 10G downlink, not 80G. Walk events to completion.
        let n = 8u32;
        let mut f = star(n, 10 * GBIT, FairShareConfig::new(5));
        let bytes_each = 125_000u64; // 1_000_000 bits
        let mut pending: BTreeMap<FlowKey, SimTime> = BTreeMap::new();
        for c in 1..=n {
            for (k, fin) in f.submit(SimTime::ZERO, c, 0, t(c as u64, bytes_each)) {
                pending.insert(k, fin);
            }
        }
        let mut done = 0;
        let mut end = SimTime::ZERO;
        while done < n {
            let (&key, &fin) = pending.iter().min_by_key(|&(_, &fin)| fin).unwrap();
            pending.remove(&key);
            let (_, _, changes) =
                f.complete(fin, key.0, key.1, SimDuration::ZERO, SimDuration::ZERO);
            for (k, nf) in changes {
                pending.insert(k, nf);
            }
            done += 1;
            end = end.max(fin);
        }
        // 8 × 1_000_000 bits through a 10 Gbit/s bottleneck = 800 µs.
        assert_eq!(end.as_nanos(), 800_000);
        let s = f.stats();
        assert!(
            s.jain_index > 0.99,
            "symmetric incast is fair: {}",
            s.jain_index
        );
        assert_eq!(
            s.flows.iter().map(|fl| fl.bytes).sum::<u64>(),
            8 * bytes_each
        );
    }
}
