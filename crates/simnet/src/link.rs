//! Point-to-point link model.
//!
//! One [`Link`] models a single direction of a cabled connection between
//! two adapters: a serializing transmitter (only one frame on the wire at
//! a time), per-packet framing overhead, fixed propagation delay, optional
//! random jitter, and strict FIFO delivery. FIFO matters: RDMA reliable
//! connected channels never reorder, and the stream protocol's correctness
//! argument (paper §IV-A) assumes ordered delivery of ADVERTs, ACKs and
//! data relative to each other on each direction.
//!
//! The emulated-WAN experiments (paper §IV-B2) are modelled by setting a
//! large `propagation` (24 ms each way for the 48 ms Anue RTT); the
//! future-work jitter study adds a `jitter` bound on top.

use crate::rng::Xoshiro256;
use crate::time::{SimDuration, SimTime};

/// Static description of one link direction.
#[derive(Clone, Debug)]
pub struct LinkConfig {
    /// Raw signalling rate in bits per second (e.g. FDR 4x = 56 Gbit/s
    /// signalled; configure the *data* rate after encoding here).
    pub bandwidth_bps: u64,
    /// One-way propagation delay (cable + switch + emulator).
    pub propagation: SimDuration,
    /// Maximum transmission unit for the payload portion of one packet.
    pub mtu: u32,
    /// Per-packet framing overhead in bytes (headers, CRCs, preambles).
    pub per_packet_overhead: u32,
    /// Upper bound for uniformly distributed extra per-message delay.
    /// `SimDuration::ZERO` disables jitter (the default in all paper
    /// reproductions; used by the jitter ablation).
    pub jitter: SimDuration,
}

impl LinkConfig {
    /// A convenience config with only bandwidth and propagation set;
    /// 4 KiB MTU, 30-byte overhead, no jitter.
    pub fn simple(bandwidth_bps: u64, propagation: SimDuration) -> Self {
        LinkConfig {
            bandwidth_bps,
            propagation,
            mtu: 4096,
            per_packet_overhead: 30,
            jitter: SimDuration::ZERO,
        }
    }

    /// Bytes actually serialized on the wire for a message payload,
    /// including per-packet framing. A zero-byte message still costs one
    /// packet (RDMA zero-length messages exist: pure IMM notifications).
    pub fn wire_bytes(&self, payload: u64) -> u64 {
        let mtu = self.mtu.max(1) as u64;
        let packets = if payload == 0 {
            1
        } else {
            payload.div_ceil(mtu)
        };
        payload + packets * self.per_packet_overhead as u64
    }

    /// Serialization time of a message payload on this link.
    pub fn tx_time(&self, payload: u64) -> SimDuration {
        SimDuration::transmission(self.wire_bytes(payload), self.bandwidth_bps)
    }

    /// Fraction of raw bandwidth available to payload for messages of the
    /// given size (reporting helper).
    pub fn efficiency(&self, payload: u64) -> f64 {
        if payload == 0 {
            return 0.0;
        }
        payload as f64 / self.wire_bytes(payload) as f64
    }
}

/// One direction of a link, with transmitter-busy and FIFO state.
pub struct Link {
    config: LinkConfig,
    /// The earliest time the transmitter is free to start a new frame.
    tx_free_at: SimTime,
    /// The arrival time of the most recently delivered message; later
    /// messages never arrive before this (FIFO clamp under jitter).
    last_arrival: SimTime,
    /// Jitter RNG; deterministic per link.
    rng: Xoshiro256,
    /// Total payload bytes accepted (for utilisation reporting).
    bytes_sent: u64,
    /// Total messages accepted.
    messages_sent: u64,
}

impl Link {
    /// Creates a link from a config and an RNG seed (only used if jitter
    /// is enabled).
    pub fn new(config: LinkConfig, seed: u64) -> Self {
        Link {
            config,
            tx_free_at: SimTime::ZERO,
            last_arrival: SimTime::ZERO,
            rng: Xoshiro256::new(seed),
            bytes_sent: 0,
            messages_sent: 0,
        }
    }

    /// The link's static configuration.
    pub fn config(&self) -> &LinkConfig {
        &self.config
    }

    /// Accepts a message of `payload` bytes handed to the transmitter at
    /// `now` and returns the simulated time at which its last byte is
    /// available at the receiver.
    ///
    /// Successive calls must use non-decreasing `now` values (the DES
    /// driver guarantees this); results are strictly FIFO.
    pub fn transit(&mut self, now: SimTime, payload: u64) -> SimTime {
        let start = now.max(self.tx_free_at);
        let departed = start + self.config.tx_time(payload);
        self.tx_free_at = departed;
        let mut arrival = departed + self.config.propagation;
        if !self.config.jitter.is_zero() {
            let extra = self.rng.next_below(self.config.jitter.as_nanos() + 1);
            arrival += SimDuration::from_nanos(extra);
        }
        // FIFO clamp: reliable connected transport never reorders.
        arrival = arrival.max(self.last_arrival);
        self.last_arrival = arrival;
        self.bytes_sent += payload;
        self.messages_sent += 1;
        arrival
    }

    /// Earliest time the transmitter can begin a new frame.
    pub fn tx_free_at(&self) -> SimTime {
        self.tx_free_at
    }

    /// Bumps the utilisation counters without serializing on the
    /// transmitter. The fair-share fabric model owns timing for its
    /// transfers but still reports per-pair byte counts through the
    /// link's gauges.
    pub fn account(&mut self, payload: u64) {
        self.bytes_sent += payload;
        self.messages_sent += 1;
    }

    /// Total payload bytes accepted so far.
    pub fn bytes_sent(&self) -> u64 {
        self.bytes_sent
    }

    /// Total messages accepted so far.
    pub fn messages_sent(&self) -> u64 {
        self.messages_sent
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gbit(n: u64) -> u64 {
        n * 1_000_000_000
    }

    #[test]
    fn wire_bytes_counts_packets() {
        let c = LinkConfig::simple(gbit(10), SimDuration::ZERO);
        assert_eq!(c.wire_bytes(0), 30);
        assert_eq!(c.wire_bytes(1), 31);
        assert_eq!(c.wire_bytes(4096), 4096 + 30);
        assert_eq!(c.wire_bytes(4097), 4097 + 60);
        assert_eq!(c.wire_bytes(3 * 4096), 3 * 4096 + 90);
    }

    #[test]
    fn tx_time_matches_bandwidth() {
        let mut c = LinkConfig::simple(gbit(1), SimDuration::ZERO);
        c.per_packet_overhead = 0;
        // 125 bytes at 1 Gbit/s = 1000 ns.
        assert_eq!(c.tx_time(125).as_nanos(), 1_000);
    }

    #[test]
    fn transit_serializes_back_to_back() {
        let mut c = LinkConfig::simple(gbit(1), SimDuration::from_micros(1));
        c.per_packet_overhead = 0;
        let mut l = Link::new(c, 0);
        // Two 125-byte messages (1000 ns each) handed over at t=0.
        let a = l.transit(SimTime::ZERO, 125);
        let b = l.transit(SimTime::ZERO, 125);
        assert_eq!(a.as_nanos(), 1_000 + 1_000);
        assert_eq!(b.as_nanos(), 2_000 + 1_000);
    }

    #[test]
    fn idle_transmitter_starts_immediately() {
        let mut c = LinkConfig::simple(gbit(1), SimDuration::from_nanos(500));
        c.per_packet_overhead = 0;
        let mut l = Link::new(c, 0);
        let a = l.transit(SimTime::from_nanos(10_000), 125);
        assert_eq!(a.as_nanos(), 10_000 + 1_000 + 500);
    }

    #[test]
    fn propagation_dominates_for_wan() {
        let c = LinkConfig::simple(gbit(10), SimDuration::from_millis(24));
        let mut l = Link::new(c, 0);
        let a = l.transit(SimTime::ZERO, 64);
        assert!(a.as_nanos() >= 24_000_000);
        assert!(a.as_nanos() < 24_100_000);
    }

    #[test]
    fn fifo_holds_under_jitter() {
        let mut c = LinkConfig::simple(gbit(10), SimDuration::from_micros(10));
        c.jitter = SimDuration::from_micros(50);
        let mut l = Link::new(c, 12345);
        let mut prev = SimTime::ZERO;
        for i in 0..1_000 {
            let t = l.transit(SimTime::from_nanos(i * 10), 64);
            assert!(t >= prev, "FIFO violated at message {i}");
            prev = t;
        }
    }

    #[test]
    fn jitter_is_deterministic_per_seed() {
        let mk = || {
            let mut c = LinkConfig::simple(gbit(10), SimDuration::from_micros(10));
            c.jitter = SimDuration::from_micros(5);
            Link::new(c, 99)
        };
        let mut l1 = mk();
        let mut l2 = mk();
        for i in 0..100 {
            let now = SimTime::from_nanos(i * 1_000);
            assert_eq!(l1.transit(now, 256), l2.transit(now, 256));
        }
    }

    #[test]
    fn counters_accumulate() {
        let c = LinkConfig::simple(gbit(10), SimDuration::ZERO);
        let mut l = Link::new(c, 0);
        l.transit(SimTime::ZERO, 100);
        l.transit(SimTime::ZERO, 200);
        assert_eq!(l.bytes_sent(), 300);
        assert_eq!(l.messages_sent(), 2);
    }

    #[test]
    fn efficiency_reflects_overhead() {
        let c = LinkConfig::simple(gbit(10), SimDuration::ZERO);
        let e_small = c.efficiency(64);
        let e_big = c.efficiency(1 << 20);
        assert!(e_small < e_big);
        assert!(e_big > 0.99);
        assert_eq!(c.efficiency(0), 0.0);
    }
}
