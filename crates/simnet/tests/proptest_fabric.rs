//! Property tests for the fair-share fabric allocator: whatever the
//! submission schedule, re-speeding changes *when* transfers finish,
//! never *what* arrives or in which order.

use std::collections::BTreeMap;

use proptest::prelude::*;
use simnet::{FairShareConfig, FairShareFabric, SimDuration, SimTime, Transfer};

const NODES: u32 = 4;
const LINK_BPS: u64 = 10_000_000_000;
const PROP: SimDuration = SimDuration::from_nanos(500);

/// The flows a generated op can target: three senders into node 0 (the
/// incast pattern) plus one cross flow so the allocator sees disjoint
/// bottlenecks.
const FLOWS: [(u32, u32); 4] = [(1, 0), (2, 0), (3, 0), (1, 2)];

/// Drains every head-completion event scheduled at or before `until`,
/// in event-time order, applying the reschedules each completion
/// triggers (exactly what the simulation driver does).
fn drain(
    fab: &mut FairShareFabric,
    heads: &mut BTreeMap<(u32, u32), SimTime>,
    until: SimTime,
    jitter: SimDuration,
    completed: &mut BTreeMap<(u32, u32), Vec<(u64, SimTime)>>,
) {
    loop {
        let next = heads
            .iter()
            .min_by_key(|&(key, at)| (*at, *key))
            .map(|(key, at)| (*key, *at));
        let Some((key, at)) = next else { break };
        if at > until {
            break;
        }
        heads.remove(&key);
        let (transfer, arrival, changes) = fab.complete(at, key.0, key.1, PROP, jitter);
        completed
            .entry(key)
            .or_default()
            .push((transfer.token, arrival));
        for (k, t) in changes {
            heads.insert(k, t);
        }
    }
}

proptest! {
    /// For any interleaving of submissions across contending flows, and
    /// any jitter bound, every transfer completes exactly once, per-flow
    /// completion order equals submission order, per-flow arrival times
    /// are monotone (no reordering on the wire), and the allocator's
    /// byte accounting matches what was offered.
    #[test]
    fn respeeding_never_reorders_or_drops(
        ops in proptest::collection::vec((0usize..4, 0u64..40_000, 1u64..64), 1..120),
        jitter_ns in 0u64..2_000,
        seed in any::<u64>(),
    ) {
        let mut fab = FairShareFabric::new(FairShareConfig::new(seed));
        for a in 0..NODES {
            for b in 0..NODES {
                if a != b {
                    fab.register_link(a, b, LINK_BPS);
                }
            }
        }
        let jitter = SimDuration::from_nanos(jitter_ns);

        let mut heads: BTreeMap<(u32, u32), SimTime> = BTreeMap::new();
        let mut submitted: BTreeMap<(u32, u32), Vec<u64>> = BTreeMap::new();
        let mut offered: BTreeMap<(u32, u32), u64> = BTreeMap::new();
        let mut completed: BTreeMap<(u32, u32), Vec<(u64, SimTime)>> = BTreeMap::new();

        let mut now = SimTime::ZERO;
        for (token, &(flow, gap_ns, size_kb)) in ops.iter().enumerate() {
            let (src, dst) = FLOWS[flow];
            let at = now + SimDuration::from_nanos(gap_ns);
            drain(&mut fab, &mut heads, at, jitter, &mut completed);
            now = at;
            let bytes = size_kb << 10;
            let changes = fab.submit(
                now,
                src,
                dst,
                Transfer { token: token as u64, wire_bytes: bytes, payload_bytes: bytes },
            );
            submitted.entry((src, dst)).or_default().push(token as u64);
            *offered.entry((src, dst)).or_default() += bytes;
            for (k, t) in changes {
                heads.insert(k, t);
            }
        }
        drain(&mut fab, &mut heads, SimTime::from_nanos(u64::MAX), jitter, &mut completed);

        prop_assert_eq!(fab.active_flows(), 0, "transfers left in flight");
        let total_done: usize = completed.values().map(Vec::len).sum();
        prop_assert_eq!(total_done, ops.len(), "dropped or duplicated transfers");
        for (key, tokens) in &submitted {
            let done = completed.get(key).expect("flow never completed");
            let done_tokens: Vec<u64> = done.iter().map(|&(t, _)| t).collect();
            prop_assert_eq!(&done_tokens, tokens, "flow {:?} completion order", key);
            for pair in done.windows(2) {
                prop_assert!(
                    pair[1].1 >= pair[0].1,
                    "flow {:?} arrivals reordered: {:?} then {:?}",
                    key, pair[0], pair[1]
                );
            }
        }
        let stats = fab.stats();
        for fs in &stats.flows {
            prop_assert_eq!(
                fs.bytes,
                offered.get(&(fs.src, fs.dst)).copied().unwrap_or(0),
                "allocator byte accounting for flow ({}, {})", fs.src, fs.dst
            );
        }
        prop_assert!(stats.jain_index >= 0.0 && stats.jain_index <= 1.0 + 1e-9);
    }
}
