//! Property tests for the simulation engine: the determinism and
//! ordering guarantees every higher layer depends on.

use proptest::prelude::*;
use simnet::{Link, LinkConfig, Scheduler, SimDuration, SimTime, Xoshiro256};

proptest! {
    /// Events pop in time order, and events with equal timestamps pop in
    /// scheduling order (stable FIFO tie-break).
    #[test]
    fn scheduler_is_stable_and_ordered(times in proptest::collection::vec(0u64..1_000, 1..200)) {
        let mut s = Scheduler::new();
        for (i, &t) in times.iter().enumerate() {
            s.schedule_at(SimTime::from_nanos(t), (t, i));
        }
        let mut last: Option<(u64, usize)> = None;
        while let Some((at, (t, i))) = s.pop() {
            prop_assert_eq!(at.as_nanos(), t);
            if let Some((lt, li)) = last {
                prop_assert!(t > lt || (t == lt && i > li), "ordering violated");
            }
            last = Some((t, i));
        }
        prop_assert_eq!(s.delivered(), times.len() as u64);
    }

    /// Cancelling an arbitrary subset removes exactly those events.
    #[test]
    fn scheduler_cancellation_is_exact(
        times in proptest::collection::vec(0u64..1_000, 1..100),
        cancel_mask in proptest::collection::vec(any::<bool>(), 1..100),
    ) {
        let mut s = Scheduler::new();
        let ids: Vec<_> = times
            .iter()
            .enumerate()
            .map(|(i, &t)| (i, s.schedule_at(SimTime::from_nanos(t), i)))
            .collect();
        let mut kept = Vec::new();
        for (i, id) in &ids {
            if cancel_mask.get(*i).copied().unwrap_or(false) {
                s.cancel(*id);
            } else {
                kept.push(*i);
            }
        }
        let mut popped: Vec<usize> = Vec::new();
        while let Some((_, i)) = s.pop() {
            popped.push(i);
        }
        popped.sort_unstable();
        kept.sort_unstable();
        prop_assert_eq!(popped, kept);
    }

    /// Link delivery is FIFO for any jitter bound and submission pattern,
    /// and never earlier than physically possible.
    #[test]
    fn link_fifo_under_jitter(
        sizes in proptest::collection::vec(1u64..100_000, 1..100),
        gaps in proptest::collection::vec(0u64..10_000, 1..100),
        jitter_us in 0u64..100,
        seed in any::<u64>(),
    ) {
        let mut cfg = LinkConfig::simple(10_000_000_000, SimDuration::from_micros(5));
        cfg.jitter = SimDuration::from_micros(jitter_us);
        let mut link = Link::new(cfg.clone(), seed);
        let mut now = SimTime::ZERO;
        let mut prev_arrival = SimTime::ZERO;
        for (i, &size) in sizes.iter().enumerate() {
            now += SimDuration::from_nanos(*gaps.get(i).unwrap_or(&0));
            let arrival = link.transit(now, size);
            prop_assert!(arrival >= prev_arrival, "FIFO violated");
            // Physical lower bound: serialization + propagation.
            let min = now + cfg.tx_time(size) + cfg.propagation;
            prop_assert!(arrival >= min, "arrived before physically possible");
            prev_arrival = arrival;
        }
    }

    /// The transmission-time helper is monotone in payload size and
    /// inversely monotone in bandwidth.
    #[test]
    fn transmission_monotonicity(bytes in 1u64..1_000_000, bw in 1u64..100_000_000_000) {
        let t1 = SimDuration::transmission(bytes, bw);
        let t2 = SimDuration::transmission(bytes + 1, bw);
        prop_assert!(t2 >= t1);
        let t3 = SimDuration::transmission(bytes, bw * 2);
        prop_assert!(t3 <= t1);
        prop_assert!(t1.as_nanos() > 0);
    }

    /// RNG ranges stay in bounds for arbitrary parameters.
    #[test]
    fn rng_ranges_in_bounds(seed in any::<u64>(), lo in 0u64..1000, span in 0u64..1000) {
        let mut rng = Xoshiro256::new(seed);
        for _ in 0..100 {
            let x = rng.next_range(lo, lo + span);
            prop_assert!((lo..=lo + span).contains(&x));
        }
    }

    /// Identical seeds give identical streams, including through splits.
    #[test]
    fn rng_determinism(seed in any::<u64>()) {
        let mut a = Xoshiro256::new(seed);
        let mut b = Xoshiro256::new(seed);
        for _ in 0..50 {
            prop_assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut child_a = a.split();
        let mut child_b = b.split();
        for _ in 0..20 {
            prop_assert_eq!(child_a.next_u64(), child_b.next_u64());
            prop_assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
