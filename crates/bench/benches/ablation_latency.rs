//! Ablation (paper future work §VI): ping-pong latency study.
//!
//! "We also plan on performing latency studies." — round-trip latency
//! for small and medium messages on FDR InfiniBand, per protocol mode.
//! The direct path should show lower round trips once ADVERTs are in
//! place; the indirect path adds the receiver copy to every hop.

use blast::{run_pingpong, PingPongSpec, Summary};
use exs::{ExsConfig, ProtocolMode};
use exs_bench::{print_header, print_row, quick, runs};
use rdma_verbs::profiles::{fdr_infiniband, fdr_infiniband_busy_poll};

const MODES: [ProtocolMode; 3] = [
    ProtocolMode::Dynamic,
    ProtocolMode::DirectOnly,
    ProtocolMode::IndirectOnly,
];

fn main() {
    let iterations = if quick() { 40 } else { 200 };
    print_header(
        "Latency ablation: ping-pong mean RTT in us (FDR IB)",
        &["dynamic", "direct-only", "indirect-only"],
    );
    for &(size, label) in &[
        (64u32, "64 B"),
        (4 << 10, "4 KiB"),
        (64 << 10, "64 KiB"),
        (1 << 20, "1 MiB"),
    ] {
        let mut cells = Vec::new();
        for mode in MODES {
            let mut samples = Vec::new();
            for seed in 0..runs() as u64 {
                let spec = PingPongSpec {
                    cfg: ExsConfig::with_mode(mode),
                    msg_size: size,
                    iterations,
                    warmup: 10,
                    seed: 15_000 + seed,
                    ..PingPongSpec::new(fdr_infiniband())
                };
                samples.push(run_pingpong(&spec).mean_us());
            }
            cells.push(Summary::of(&samples));
        }
        print_row(label, &cells);
    }
    print_header(
        "Latency ablation: event notification vs busy polling, mean RTT in us (dynamic)",
        &["event notify", "busy poll", "saved us"],
    );
    for &(size, label) in &[(64u32, "64 B"), (64 << 10, "64 KiB"), (1 << 20, "1 MiB")] {
        let mut cells = Vec::new();
        for profile in [fdr_infiniband(), fdr_infiniband_busy_poll()] {
            let mut samples = Vec::new();
            for seed in 0..runs() as u64 {
                let spec = PingPongSpec {
                    msg_size: size,
                    iterations,
                    warmup: 10,
                    seed: 15_500 + seed,
                    ..PingPongSpec::new(profile.clone())
                };
                samples.push(run_pingpong(&spec).mean_us());
            }
            cells.push(Summary::of(&samples));
        }
        let saved = Summary {
            mean: cells[0].mean - cells[1].mean,
            ci95: 0.0,
            n: cells[0].n,
        };
        cells.push(saved);
        print_row(label, &cells);
    }
    println!();
    println!("expected: RTT grows with payload; the indirect mode pays the receiver");
    println!("          copy on both hops, so its RTT exceeds direct at every size.");
    println!("          busy polling removes the wakeup latency — a large relative win");
    println!("          for small messages, negligible once transfers are wire-bound");
    println!("          (the paper's §IV-B rationale for using event notification).");
}
