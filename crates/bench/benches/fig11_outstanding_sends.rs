//! Figure 11 — Effect of the number of simultaneously outstanding sends
//! on the dynamic protocol, with the receiver held at 32 outstanding
//! operations. Fixed message sizes of 512 B, 8 KiB, 128 KiB and 1 MiB
//! (the paper's four series).
//!
//! * **Fig. 11a**: throughput — increases with message size; little
//!   variation with outstanding sends above ~5 except at 128 KiB.
//! * **Fig. 11b**: direct:total ratio — close to 1 for most sizes; the
//!   128 KiB series shows high variance because the ADVERT race sits on
//!   a knife edge there.

use blast::{BlastSpec, SizeDist};
use exs::{ExsConfig, ProtocolMode};
use exs_bench::{messages, print_header, print_row, run_config, summarize};
use rdma_verbs::profiles::fdr_infiniband;

const SIZES: [(u64, &str); 4] = [
    (512, "512 B"),
    (8 << 10, "8 KiB"),
    (128 << 10, "128 KiB"),
    (1 << 20, "1 MiB"),
];
const SENDS: [usize; 6] = [1, 2, 4, 8, 16, 32];

fn spec(size: u64, sends: usize) -> BlastSpec {
    BlastSpec {
        cfg: ExsConfig::with_mode(ProtocolMode::Dynamic),
        outstanding_sends: sends,
        outstanding_recvs: 32,
        sizes: SizeDist::Fixed(size),
        // Keep per-run byte volume comparable across sizes without
        // letting small-message runs take forever.
        messages: messages().max(120),
        ..BlastSpec::new(fdr_infiniband())
    }
}

fn main() {
    let labels: Vec<String> = SIZES
        .iter()
        .map(|(_, l)| format!("{l} tput Mbit/s"))
        .collect();
    print_header(
        "Fig. 11a: throughput vs outstanding sends (recvs = 32, dynamic, FDR IB)",
        &labels.iter().map(|s| s.as_str()).collect::<Vec<_>>(),
    );
    let mut ratios: Vec<Vec<blast::Summary>> = Vec::new();
    for &sends in &SENDS {
        let mut tput_cells = Vec::new();
        let mut ratio_cells = Vec::new();
        for (si, &(size, _)) in SIZES.iter().enumerate() {
            let reports = run_config(&spec(size, sends), 11_000 + (sends * 10 + si) as u64);
            tput_cells.push(summarize(&reports, |r| r.throughput_mbps()));
            ratio_cells.push(summarize(&reports, |r| r.direct_ratio()));
        }
        print_row(&format!("sends={sends}"), &tput_cells);
        ratios.push(ratio_cells);
    }

    let labels: Vec<String> = SIZES
        .iter()
        .map(|(_, l)| format!("{l} direct ratio"))
        .collect();
    print_header(
        "Fig. 11b: direct:total ratio vs outstanding sends (recvs = 32, dynamic)",
        &labels.iter().map(|s| s.as_str()).collect::<Vec<_>>(),
    );
    for (i, &sends) in SENDS.iter().enumerate() {
        print_row(&format!("sends={sends}"), &ratios[i]);
    }
    println!();
    println!("paper shape: throughput grows with message size; the 128 KiB series shows");
    println!("             high direct-ratio variance, which feeds back into throughput.");
}
