//! Transmit-path batching — doorbell postlists, selective signaling and
//! small-send coalescing versus the one-doorbell-per-WQE pipeline.
//!
//! Small messages are dominated by per-post overhead: each doorbell
//! pays the host's posting cost and each signaled WQE pays a CQE. The
//! batched pipeline ([`exs::ExsConfig::tx_batch_limit`]) rings one
//! doorbell for a whole postlist, signals every
//! [`exs::ExsConfig::signal_interval`]-th data WQE, and coalesces
//! adjacent sub-threshold BCopy sends into shared staged WWIs. This
//! bench sweeps 64 B – 4 KiB fixed-size blasts over the FDR profile
//! with batching on (defaults) and off (`tx_batch_limit = 1`) and
//! reports virtual-time throughput for both arms.
//!
//! Both arms verify every delivered byte and must produce the same
//! stream digest; each size's result is written to
//! `bench-results/tx_batching_<size>B.json`.

use std::io::Write as _;
use std::path::Path;

use blast::{run_blast, BlastSpec, SizeDist, VerifyLevel};
use exs::{ExsConfig, ProtocolMode};
use exs_bench::quick;
use rdma_verbs::profiles;

fn spec(size: u64, messages: usize, tx_batch_limit: usize) -> BlastSpec {
    BlastSpec {
        cfg: ExsConfig {
            tx_batch_limit,
            // Sized to the sweep: lets runs of several sub-512 B sends
            // share one staged WWI. With `tx_batch_limit = 1` the
            // effective threshold is 0, so the unbatched arm never
            // coalesces regardless.
            coalesce_threshold: 3072,
            sq_depth: 64,
            ring_capacity: 256 << 10,
            credits: 64,
            ..ExsConfig::with_mode(ProtocolMode::BCopy)
        },
        outstanding_sends: 16,
        outstanding_recvs: 16,
        sizes: SizeDist::Fixed(size),
        messages,
        verify: VerifyLevel::Full,
        seed: 7,
        ..BlastSpec::new(profiles::fdr_infiniband())
    }
}

fn main() {
    let sizes = [64u64, 128, 256, 512, 1024, 4096];
    let messages = if quick() { 150 } else { 600 };
    let out_dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../bench-results");

    println!();
    println!("=== Transmit-path batching: postlists + selective signaling + coalescing (FDR IB, BCopy) ===");
    println!(
        "{:>8} {:>12} {:>12} {:>9} {:>10} {:>10} {:>10} {:>10}",
        "size B",
        "off Mbit/s",
        "on Mbit/s",
        "speedup",
        "doorbells",
        "wqe/bell",
        "unsig %",
        "coalesced"
    );

    for &size in &sizes {
        let batched = run_blast(&spec(size, messages, 0));
        let unbatched = run_blast(&spec(size, messages, 1));

        // Correctness gates: batching must never change the stream.
        assert_eq!(
            batched.digest, unbatched.digest,
            "digest mismatch at {size} B: batching changed the byte stream"
        );
        assert_eq!(batched.bytes, unbatched.bytes);
        for (arm, r) in [("batched", &batched), ("unbatched", &unbatched)] {
            assert!(
                !r.sender.cq_overflowed && !r.receiver.cq_overflowed,
                "{arm} arm overflowed a CQ at {size} B"
            );
        }

        let speedup = batched.throughput_bps() / unbatched.throughput_bps().max(1.0);
        println!(
            "{:>8} {:>12.1} {:>12.1} {:>8.2}x {:>10} {:>10.2} {:>9.1}% {:>10}",
            size,
            unbatched.throughput_mbps(),
            batched.throughput_mbps(),
            speedup,
            batched.sender.doorbells,
            batched.sender.mean_wqes_per_doorbell(),
            batched.sender.unsignaled_ratio() * 100.0,
            batched.sender.coalesced_msgs,
        );

        let json = format!(
            "{{\"bench\":\"tx_batching\",\"size\":{size},\"messages\":{messages},\
             \"batched_mbps\":{:.3},\"unbatched_mbps\":{:.3},\"speedup\":{speedup:.3},\
             \"digest\":{},\"batched_sender\":{},\"unbatched_sender\":{}}}",
            batched.throughput_mbps(),
            unbatched.throughput_mbps(),
            batched.digest,
            batched.sender.to_json(),
            unbatched.sender.to_json(),
        );
        match write_snapshot(&out_dir, &format!("tx_batching_{size}B"), &json) {
            Ok(path) => println!("         snapshot: {}", path.display()),
            Err(e) => eprintln!("         snapshot write failed: {e}"),
        }

        // Amortization sanity where messages are small enough to share
        // postlists and staged WWIs (at 4 KiB every WWI flushes alone
        // and the counts differ only by ctrl-message noise).
        if size <= 512 {
            assert!(
                batched.sender.doorbells < unbatched.sender.doorbells,
                "batching must ring fewer doorbells at {size} B"
            );
        }
        // The acceptance bar: at small sizes the batched + coalesced
        // pipeline is at least twice as fast in virtual time. Quick
        // (CI smoke) runs are too short to fill the pipeline at every
        // size, so they enforce a looser floor — their gate is the
        // digest and CQ-overflow checks above.
        if size <= 512 {
            let floor = if quick() { 1.3 } else { 2.0 };
            assert!(
                speedup >= floor,
                "batched throughput must be >={floor}x unbatched at {size} B, got {speedup:.2}x"
            );
            assert!(
                batched.sender.coalesced_msgs > 0,
                "sub-threshold sends should coalesce at {size} B"
            );
        }
    }

    println!();
    println!("expected shape: the gap is widest at the smallest sizes, where per-doorbell");
    println!("and per-CQE overheads dominate the wire time, and closes as payload grows.");
}

fn write_snapshot(dir: &Path, name: &str, json: &str) -> std::io::Result<std::path::PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("{name}.json"));
    let mut f = std::fs::File::create(&path)?;
    f.write_all(json.as_bytes())?;
    f.write_all(b"\n")?;
    Ok(path)
}
