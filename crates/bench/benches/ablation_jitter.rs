//! Ablation (paper future work §VI): effect of network jitter on the
//! dynamic protocol over the emulated WAN.
//!
//! "We plan to use our network emulator to set a jitter function in
//! order to vary the delay to see the effect of jitter on our
//! implementation." — this harness does exactly that: a 48 ms RTT path
//! with uniform per-message jitter of 0, 1 ms and 5 ms, for all three
//! protocols. FIFO delivery is preserved (reliable-connected channels
//! never reorder), so jitter manifests as head-of-line delay variance.

use blast::BlastSpec;
use exs::{ExsConfig, ProtocolMode};
use exs_bench::{messages, print_header, print_row, run_config, summarize};
use rdma_verbs::profiles::roce_10g_wan;
use simnet::SimDuration;

fn spec(mode: ProtocolMode, jitter: SimDuration) -> BlastSpec {
    let mut profile = roce_10g_wan();
    profile.link.jitter = jitter;
    let mut cfg = ExsConfig::with_mode(mode);
    cfg.ring_capacity = 256 << 20;
    BlastSpec {
        cfg,
        outstanding_sends: 16,
        outstanding_recvs: 16,
        messages: messages().min(150),
        time_limit: SimDuration::from_secs(3600),
        ..BlastSpec::new(profile)
    }
}

const MODES: [ProtocolMode; 3] = [
    ProtocolMode::IndirectOnly,
    ProtocolMode::Dynamic,
    ProtocolMode::DirectOnly,
];

fn main() {
    print_header(
        "Jitter ablation: throughput on 48 ms RTT WAN, 16 outstanding ops",
        &[
            "indirect-only Mbit/s",
            "dynamic Mbit/s",
            "direct-only Mbit/s",
        ],
    );
    for (ji, &jitter_ms) in [0u64, 1, 5].iter().enumerate() {
        let jitter = SimDuration::from_millis(jitter_ms);
        let mut cells = Vec::new();
        for (mi, mode) in MODES.iter().enumerate() {
            let reports = run_config(&spec(*mode, jitter), 14_000 + (ji * 10 + mi) as u64);
            cells.push(summarize(&reports, |r| r.throughput_mbps()));
        }
        print_row(&format!("jitter={jitter_ms}ms"), &cells);
    }
    println!();
    println!("expected: throughput degrades gracefully with jitter for all protocols;");
    println!("          the dynamic protocol never does worse than the better baseline.");
}
