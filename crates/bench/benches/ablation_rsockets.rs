//! Ablation: related-work comparison against an rsockets-style BCopy
//! transport.
//!
//! "The current goal of rsockets is parity with standard TCP-based
//! sockets, so that the rsend() and rrecv() calls are blocking and
//! perform buffer copies on both the send and receive side on all
//! transfers." (paper §II-A)
//!
//! The BCopy protocol mode models that: a send-side staging copy plus
//! the receive-side intermediate-buffer copy, never any ADVERTs. The
//! dynamic protocol's advantage is exactly the copies it avoids.

use blast::BlastSpec;
use exs::{ExsConfig, ProtocolMode};
use exs_bench::{messages, print_header, print_row, run_config, summarize};
use rdma_verbs::profiles::fdr_infiniband;

fn spec(mode: ProtocolMode, sends: usize, recvs: usize) -> BlastSpec {
    BlastSpec {
        cfg: ExsConfig::with_mode(mode),
        outstanding_sends: sends,
        outstanding_recvs: recvs,
        messages: messages(),
        ..BlastSpec::new(fdr_infiniband())
    }
}

const MODES: [ProtocolMode; 3] = [
    ProtocolMode::Dynamic,
    ProtocolMode::IndirectOnly,
    ProtocolMode::BCopy,
];

fn main() {
    print_header(
        "rsockets-style baseline: throughput (Mbit/s), FDR IB, recvs = 2 x sends",
        &["dynamic", "indirect-only", "bcopy (rsockets)"],
    );
    for &(sends, recvs) in &[(2usize, 4usize), (8, 16)] {
        let mut cells = Vec::new();
        for (mi, mode) in MODES.iter().enumerate() {
            let reports = run_config(
                &spec(*mode, sends, recvs),
                20_000 + (sends * 10 + mi) as u64,
            );
            cells.push(summarize(&reports, |r| r.throughput_mbps()));
        }
        print_row(&format!("recvs={recvs} sends={sends}"), &cells);
    }

    print_header(
        "rsockets-style baseline: sender CPU % for the same runs",
        &["dynamic", "indirect-only", "bcopy (rsockets)"],
    );
    for &(sends, recvs) in &[(2usize, 4usize), (8, 16)] {
        let mut cells = Vec::new();
        for (mi, mode) in MODES.iter().enumerate() {
            let reports = run_config(
                &spec(*mode, sends, recvs),
                20_100 + (sends * 10 + mi) as u64,
            );
            cells.push(summarize(&reports, |r| r.cpu_sender * 100.0));
        }
        print_row(&format!("recvs={recvs} sends={sends}"), &cells);
    }
    println!();
    println!("expected: bcopy trails indirect-only in throughput (extra send-side copy)");
    println!("          and far exceeds it in sender CPU; the dynamic protocol, running");
    println!("          direct with 2x receives, beats both on every axis.");
}
