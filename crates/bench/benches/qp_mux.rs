//! QP-multiplexing scalability sweep — 1k / 10k / 100k streams riding
//! a pooled QP set versus the QP-per-stream baseline.
//!
//! The RDMA scalability wall this measures: every private QP pays for
//! its own intermediate ring, control slots, SQ/RQ WQE rings and CQ
//! share, so per-stream context memory is flat no matter how idle the
//! stream is. Shared-transport mode amortizes all of that across a
//! ≤ 8-QP pool per peer pair and leaves each stream a single
//! cache-friendly state struct.
//!
//! CI gates (exit non-zero on violation):
//!
//! * at 10k streams, modeled memory-per-stream must be ≤ 1/8 of the
//!   QP-per-stream baseline's per-stream cost;
//! * mux delivery must be digest-identical to the QP-per-stream path
//!   at the scale where both run, and to the expected payload pattern
//!   at every scale.
//!
//! Snapshots land in `bench-results/qp_mux_{1k,10k,100k}.json`. Quick
//! mode (`EXS_BENCH_QUICK=1`) runs 1k and 10k; the full run adds 100k,
//! whose baseline is the model extrapolation (100k private 64 KiB
//! rings would not even allocate).

use std::path::Path;

use blast::fan_in::expected_digest;
use blast::{run_fan_in, FanInSpec, VerifyLevel};
use exs_bench::quick;
use rdma_verbs::profiles;

fn spec_for(streams: usize, mux: bool) -> FanInSpec {
    FanInSpec {
        mux,
        msgs_per_conn: 1,
        msg_len: 512,
        outstanding_sends: 1,
        prepost_recvs: 1,
        client_nodes: 8,
        verify: VerifyLevel::Full,
        seed: 11,
        ..FanInSpec::new(profiles::fdr_infiniband(), streams)
    }
}

fn main() {
    let counts: &[(usize, &str)] = if quick() {
        &[(1_000, "1k"), (10_000, "10k")]
    } else {
        &[(1_000, "1k"), (10_000, "10k"), (100_000, "100k")]
    };
    let out_dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../bench-results");
    let mut violations = 0u32;

    println!();
    println!("=== qp_mux: N streams over a pooled QP set vs QP-per-stream (FDR IB) ===");
    println!(
        "{:>8} {:>12} {:>14} {:>12} {:>14} {:>14} {:>7}",
        "streams", "mode", "Mbit/s", "setup ms", "B/stream", "baseline B/s", "ratio"
    );

    // Measured QP-per-stream baseline, at the scale where 1k private
    // rings still fit: throughput/setup context and digest identity.
    let baseline_spec = spec_for(1_000, false);
    let baseline = run_fan_in(&baseline_spec);
    println!(
        "{:>8} {:>12} {:>14.1} {:>12.1} {:>14} {:>14} {:>7}",
        1_000,
        "qp-per-conn",
        baseline.throughput_mbps(),
        baseline.setup_wall.as_secs_f64() * 1e3,
        "-",
        "-",
        "-"
    );

    for &(streams, tag) in counts {
        let spec = spec_for(streams, true);
        let report = run_fan_in(&spec);
        let per_stream = report.memory_per_stream().expect("mux run models memory");
        let baseline_per_stream =
            report.mux_baseline.expect("mux run models baseline") / streams as u64;
        let ratio = baseline_per_stream as f64 / per_stream.max(1) as f64;
        println!(
            "{:>8} {:>12} {:>14.1} {:>12.1} {:>14} {:>14} {:>6.1}x",
            streams,
            "mux-pool",
            report.throughput_mbps(),
            report.setup_wall.as_secs_f64() * 1e3,
            per_stream,
            baseline_per_stream,
            ratio,
        );
        match report.write_snapshot(&out_dir, &format!("qp_mux_{tag}")) {
            Ok(path) => println!("        snapshot: {}", path.display()),
            Err(e) => eprintln!("        snapshot write failed: {e}"),
        }

        let expected_len = spec.msgs_per_conn as u64 * spec.msg_len;
        for (i, &d) in report.digests.iter().enumerate() {
            if d != expected_digest(spec.seed, i, expected_len) {
                eprintln!("VIOLATION: stream {i} of {streams} delivered a wrong digest");
                violations += 1;
                break;
            }
        }
        if streams == 1_000 && report.digests != baseline.digests {
            eprintln!("VIOLATION: mux delivery diverges from the QP-per-stream path at 1k");
            violations += 1;
        }
        if streams == 10_000 && per_stream * 8 > baseline_per_stream {
            eprintln!(
                "VIOLATION: 10k-stream memory-per-stream {per_stream} B exceeds 1/8 of \
                 the QP-per-stream baseline ({baseline_per_stream} B)"
            );
            violations += 1;
        }
    }

    println!();
    println!("expected shape: per-stream memory collapses from the ~72 KiB private-QP");
    println!("fixed cost to the pool share plus one small stream struct; digests are");
    println!("identical to the QP-per-stream path — multiplexing changes the transport");
    println!("economics, never the bytes.");
    if violations > 0 {
        eprintln!("{violations} qp_mux violation(s)");
        std::process::exit(1);
    }
}
