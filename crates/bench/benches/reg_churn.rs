//! Registration churn — per-transfer `ibv_reg_mr`/`ibv_dereg_mr` versus
//! the registered-memory pool ([`exs::MemPool`]).
//!
//! An application that registers each buffer as it sends and deregisters
//! it on completion pays the full pin-down cost (kernel transition +
//! per-page pinning) on every transfer. The pool amortizes that cost:
//! after a cold first pass, every acquire is a cache hit and costs only a
//! mutex-protected free-list pop. This bench sweeps working sets of
//! 1/8/64 buffers of 64 KiB on one FDR-profile node and reports the
//! virtual CPU time of each arm; the pool's pinned budget is sized to
//! exactly the working set, so hits are steady-state and nothing is
//! evicted.
//!
//! Each working set's result is written to
//! `bench-results/reg_churn_<N>buf.json`.

use std::io::Write as _;
use std::path::Path;

use exs::{MemPool, MemPoolConfig};
use exs_bench::quick;
use rdma_verbs::profiles;
use rdma_verbs::sim::SimNet;
use rdma_verbs::types::Access;

const BUF_LEN: usize = 64 << 10;

fn main() {
    let working_sets = [1usize, 8, 64];
    let iters = if quick() { 20 } else { 200 };
    let out_dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../bench-results");

    println!();
    println!("=== Registration churn: per-transfer reg/dereg vs. MemPool (FDR IB) ===");
    println!(
        "{:>8} {:>14} {:>14} {:>10} {:>10} {:>12}",
        "bufs", "unpooled us", "pooled us", "speedup", "hit rate", "pinned KiB"
    );

    for &n in &working_sets {
        // Each arm gets a fresh node: CPU charges serialize on the
        // node's meter, so reusing one node would start the second arm
        // at the first arm's busy-until cursor.
        let fresh = || {
            let prof = profiles::fdr_infiniband();
            let mut net = SimNet::new();
            let node = net.add_node(prof.host.clone(), prof.hca.clone());
            (net, node)
        };

        // Unpooled arm: register and deregister every buffer of the
        // working set on every iteration, as a naive zero-copy sender
        // would.
        let (mut net, node) = fresh();
        let unpooled = net.with_api(node, |api| {
            let t0 = api.now();
            for _ in 0..iters {
                let mrs: Vec<_> = (0..n)
                    .map(|_| api.register_mr_charged(BUF_LEN, Access::NONE))
                    .collect();
                for mr in &mrs {
                    api.deregister_mr_charged(mr.key).expect("dereg");
                }
            }
            api.now() - t0
        });

        // Pooled arm: same acquire/release pattern through the pool. The
        // budget admits exactly the working set, so the first iteration
        // misses (cold registrations) and every later one hits.
        let class = (BUF_LEN.max(4096)).next_power_of_two() as u64;
        let pool = MemPool::new(MemPoolConfig {
            pinned_budget: n as u64 * class,
            ..MemPoolConfig::default()
        });
        let (mut net, node) = fresh();
        let pooled = net.with_api(node, |api| {
            let t0 = api.now();
            for _ in 0..iters {
                let leases: Vec<_> = (0..n)
                    .map(|_| pool.acquire(api, BUF_LEN, Access::NONE))
                    .collect();
                drop(leases);
            }
            api.now() - t0
        });
        let stats = pool.stats();
        net.with_api(node, |api| pool.trim(api));

        let unpooled_ns = unpooled.as_nanos();
        let pooled_ns = pooled.as_nanos().max(1);
        let speedup = unpooled_ns as f64 / pooled_ns as f64;
        println!(
            "{:>8} {:>14.1} {:>14.1} {:>9.1}x {:>9.2}% {:>12}",
            n,
            unpooled_ns as f64 / 1000.0,
            pooled_ns as f64 / 1000.0,
            speedup,
            stats.hit_rate() * 100.0,
            stats.pinned_peak / 1024,
        );

        let json = format!(
            "{{\"bench\":\"reg_churn\",\"working_set\":{n},\"buf_len\":{BUF_LEN},\
             \"iters\":{iters},\"unpooled_ns\":{unpooled_ns},\"pooled_ns\":{pooled_ns},\
             \"speedup\":{speedup:.2},\"pool\":{}}}",
            stats.to_json()
        );
        match write_snapshot(&out_dir, &format!("reg_churn_{n}buf"), &json) {
            Ok(path) => println!("         snapshot: {}", path.display()),
            Err(e) => eprintln!("         snapshot write failed: {e}"),
        }

        // Steady-state sanity: every post-cold acquire must hit, and the
        // large working set is where amortization pays — the issue's
        // acceptance bar.
        assert_eq!(stats.misses, n as u64, "only the cold pass registers");
        assert_eq!(stats.evictions, 0, "budget admits the working set");
        if n == 64 {
            assert!(
                speedup >= 5.0,
                "pooled must be >=5x cheaper than unpooled at 64 bufs, got {speedup:.2}x"
            );
        }
    }

    println!();
    println!("expected shape: unpooled cost grows linearly with churn; pooled cost is");
    println!("one cold pass plus near-free hits, so the gap widens with the working set.");
}

fn write_snapshot(dir: &Path, name: &str, json: &str) -> std::io::Result<std::path::PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("{name}.json"));
    let mut f = std::fs::File::create(&path)?;
    f.write_all(json.as_bytes())?;
    f.write_all(b"\n")?;
    Ok(path)
}
