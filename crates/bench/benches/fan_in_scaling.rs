//! Fan-in scaling — aggregate ingress throughput of one reactor-driven
//! server node as the connection count grows 1 → 8 → 64 → 512.
//!
//! This is the scalability story the paper's 1:1 blast tool cannot
//! tell: all connections complete onto two shared CQs and one
//! [`exs::Reactor`] multiplexes them, so the interesting outputs are
//! the aggregate throughput, the per-connection direct:indirect ratio,
//! and how the CQ drain batches grow with the connection count.
//!
//! Each configuration's full counter snapshot (aggregate + reactor +
//! per-connection) is written to `bench-results/fan_in_<N>conns.json`.

use std::path::Path;

use blast::{run_fan_in, FanInSpec};
use exs_bench::quick;
use rdma_verbs::profiles;

fn main() {
    let conn_counts = [1usize, 8, 64, 512];
    let (msgs, msg_len) = if quick() { (2, 8 << 10) } else { (6, 16 << 10) };
    let out_dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../bench-results");

    println!();
    println!("=== Fan-in scaling: M streams -> one reactor node (FDR IB) ===");
    println!(
        "{:>6} {:>16} {:>14} {:>14} {:>12} {:>10}",
        "conns", "aggregate Mbit/s", "direct ratio", "mean CQ batch", "max batch", "deferrals"
    );
    for &conns in &conn_counts {
        let spec = FanInSpec {
            msgs_per_conn: msgs,
            msg_len,
            seed: 5,
            ..FanInSpec::new(profiles::fdr_infiniband(), conns)
        };
        let report = run_fan_in(&spec);
        println!(
            "{:>6} {:>16.1} {:>14.3} {:>14.2} {:>12} {:>10}",
            conns,
            report.throughput_mbps(),
            report.direct_ratio(),
            report.reactor.mean_batch(),
            report.reactor.max_cq_batch,
            report.reactor.deferrals,
        );
        match report.write_snapshot(&out_dir, &format!("fan_in_{conns}conns")) {
            Ok(path) => println!("       snapshot: {}", path.display()),
            Err(e) => eprintln!("       snapshot write failed: {e}"),
        }
    }
    println!();
    println!("expected shape: aggregate throughput holds as conns grow; mean CQ batch");
    println!("rises with fan-in (shared-CQ amortization is the reactor's win).");
}
