//! Incast honesty check — N senders blasting one receiver under the
//! legacy FIFO link model versus the fair-share fabric model.
//!
//! The FIFO model gives every node pair a private serializing link, so
//! aggregate ingress grows past the receiver NIC's line rate — a
//! physically impossible number that silently poisons every fan-in
//! result. The fair-share model splits the bottleneck max-min fairly,
//! so its aggregate must sit at (or under) capacity.
//!
//! This harness doubles as a CI gate: it exits non-zero if the
//! fair-share aggregate exceeds the bottleneck capacity by more than
//! 5%, or if contention fairness (worst-sink Jain index) drops
//! below 0.9. Snapshots land in
//! `bench-results/incast_<N>senders_{fifo,fair}.json`.

use std::path::Path;

use blast::{run_fan_in, FanInSpec};
use exs_bench::quick;
use rdma_verbs::{profiles, FabricModel, FairShareConfig};

fn main() {
    let sender_counts = [8usize, 64, 512];
    let (msgs, msg_len) = if quick() {
        (3, 16 << 10)
    } else {
        (6, 16 << 10)
    };
    let out_dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../bench-results");

    println!();
    println!("=== Incast: N senders -> one receiver, FIFO vs fair-share fabric (FDR IB) ===");
    println!(
        "{:>7} {:>11} {:>16} {:>10} {:>10} {:>9} {:>10}",
        "senders", "fabric", "aggregate Mbit/s", "load", "jain", "respeeds", "events"
    );

    let mut violations = 0u32;
    for &conns in &sender_counts {
        for fair in [false, true] {
            let fabric = if fair {
                FabricModel::FairShare(FairShareConfig::new(0xFA1B))
            } else {
                FabricModel::Fifo
            };
            let spec = FanInSpec {
                msgs_per_conn: msgs,
                msg_len,
                seed: 5,
                fabric,
                ..FanInSpec::new(profiles::fdr_infiniband(), conns)
            };
            let report = run_fan_in(&spec);
            let load = report.offered_load_ratio();
            let (jain, respeeds) = report
                .fabric
                .as_ref()
                .map(|f| (f.jain_index, f.respeeds))
                .unwrap_or((f64::NAN, 0));
            println!(
                "{:>7} {:>11} {:>16.1} {:>10.3} {:>10.3} {:>9} {:>10}",
                conns,
                spec.fabric.name(),
                report.throughput_mbps(),
                load,
                jain,
                respeeds,
                report.events,
            );
            let tag = if fair { "fair" } else { "fifo" };
            match report.write_snapshot(&out_dir, &format!("incast_{conns}senders_{tag}")) {
                Ok(path) => println!("        snapshot: {}", path.display()),
                Err(e) => eprintln!("        snapshot write failed: {e}"),
            }
            if fair {
                if load > 1.05 {
                    eprintln!(
                        "VIOLATION: {conns} senders delivered {load:.3}x the bottleneck \
                         capacity under the fair-share model"
                    );
                    violations += 1;
                }
                if jain < 0.9 {
                    eprintln!(
                        "VIOLATION: {conns} senders split the bottleneck unfairly \
                         (jain {jain:.3})"
                    );
                    violations += 1;
                }
                // Merge-semantics gate: folding per-connection stats
                // must SUM flow samples/rates (the old max-merge bug
                // collapsed N flows into one and under-reported every
                // fan-in aggregate).
                let mut merged = exs::ConnStats::default();
                for cs in &report.per_conn {
                    merged.merge(cs);
                }
                if merged.fabric_flow_samples != conns as u64 {
                    eprintln!(
                        "VIOLATION: merged stats carry {} fabric-flow samples for \
                         {conns} connections — merge is not summing",
                        merged.fabric_flow_samples
                    );
                    violations += 1;
                }
                if merged.fabric_flow_mbps_sum <= 0.0
                    || merged.fabric_flow_mbps_sum < merged.fabric_flow_mbps_max
                {
                    eprintln!(
                        "VIOLATION: merged flow-rate sum {:.1} Mbit/s is not a sum \
                         (max single flow {:.1})",
                        merged.fabric_flow_mbps_sum, merged.fabric_flow_mbps_max
                    );
                    violations += 1;
                }
            }
        }
    }
    println!();
    println!("expected shape: FIFO aggregate sails past the 45.5 Gbit/s line rate at high");
    println!("fan-in (load > 1.0 is physically impossible); fair-share pins load <= 1.0");
    println!("while splitting the sink evenly (jain ~ 1.0).");
    if violations > 0 {
        eprintln!("{violations} capacity/fairness violation(s)");
        std::process::exit(1);
    }
}
