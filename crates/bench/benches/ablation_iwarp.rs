//! Ablation: WWI on hardware without native RDMA WRITE WITH IMM.
//!
//! "This operation exists in InfiniBand, RoCE, and newer versions of
//! iWARP. The operation can be simulated on older iWARP hardware by
//! following an RDMA WRITE with a small SEND." (paper §II-B)
//!
//! This harness quantifies what the emulation costs: the same blast
//! workload with native WWI versus WRITE+SEND, on a 10 Gbit/s iWARP-like
//! profile, across message sizes. The overhead is one extra wire
//! message and one extra completion per transfer, so it matters most
//! for small messages.

use blast::{BlastSpec, SizeDist};
use exs::{ExsConfig, ProtocolMode, WwiMode};
use exs_bench::{messages, print_header, print_row, run_config, summarize};
use rdma_verbs::profiles::iwarp_10g;

fn spec(wwi_mode: WwiMode, size: u64) -> BlastSpec {
    let cfg = ExsConfig {
        wwi_mode,
        ..ExsConfig::with_mode(ProtocolMode::Dynamic)
    };
    BlastSpec {
        cfg,
        outstanding_sends: 4,
        outstanding_recvs: 8,
        sizes: SizeDist::Fixed(size),
        messages: messages(),
        ..BlastSpec::new(iwarp_10g())
    }
}

fn main() {
    print_header(
        "iWARP WWI emulation ablation: throughput (Mbit/s), 10G iWARP profile",
        &["native WWI", "WRITE + SEND", "overhead %"],
    );
    for (i, &(size, label)) in [
        (512u64, "512 B"),
        (4 << 10, "4 KiB"),
        (64 << 10, "64 KiB"),
        (1 << 20, "1 MiB"),
    ]
    .iter()
    .enumerate()
    {
        let native = run_config(&spec(WwiMode::Native, size), 19_000 + i as u64 * 2);
        let emulated = run_config(&spec(WwiMode::WritePlusSend, size), 19_001 + i as u64 * 2);
        let n = summarize(&native, |r| r.throughput_mbps());
        let e = summarize(&emulated, |r| r.throughput_mbps());
        let overhead = blast::Summary {
            mean: (n.mean - e.mean) / n.mean * 100.0,
            ci95: 0.0,
            n: n.n,
        };
        print_row(label, &[n, e, overhead]);
    }
    println!();
    println!("expected: the emulation's extra SEND per transfer costs most at small");
    println!("          message sizes and vanishes once transfers are wire-limited.");
}
