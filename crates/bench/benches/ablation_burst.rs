//! Ablation (paper future work §VI): dynamically changing message sizes
//! and burstiness during a connection.
//!
//! The workload alternates bursts of large (1 MiB) and small (4 KiB)
//! messages. The dynamic protocol should adapt: large-message bursts
//! favour direct transfers (transmission delay covers the ADVERT loop),
//! small-message bursts fall back to the intermediate buffer — so the
//! dynamic protocol's throughput should sit at or above the better
//! baseline, which is the paper's core claim about adaptivity ("a
//! sudden, large change in network state will cause the protocol to
//! switch transfer modes appropriately", §IV-C).

use blast::{BlastSpec, SizeDist};
use exs::{ExsConfig, ProtocolMode};
use exs_bench::{messages, print_header, print_row, run_config, summarize};
use rdma_verbs::profiles::fdr_infiniband;

fn spec(mode: ProtocolMode, burst_len: u32) -> BlastSpec {
    BlastSpec {
        cfg: ExsConfig::with_mode(mode),
        outstanding_sends: 2,
        outstanding_recvs: 4,
        sizes: SizeDist::Bursty {
            large: 1 << 20,
            small: 4 << 10,
            burst_len,
        },
        messages: messages().max(240),
        ..BlastSpec::new(fdr_infiniband())
    }
}

const MODES: [ProtocolMode; 3] = [
    ProtocolMode::Dynamic,
    ProtocolMode::DirectOnly,
    ProtocolMode::IndirectOnly,
];

fn main() {
    print_header(
        "Burstiness ablation: alternating 1 MiB / 4 KiB bursts (FDR IB, recvs=4 sends=2)",
        &[
            "dynamic Mbit/s",
            "direct-only Mbit/s",
            "indirect-only Mbit/s",
        ],
    );
    for (bi, &burst_len) in [8u32, 32, 128].iter().enumerate() {
        let mut cells = Vec::new();
        for (mi, mode) in MODES.iter().enumerate() {
            let reports = run_config(&spec(*mode, burst_len), 16_000 + (bi * 10 + mi) as u64);
            cells.push(summarize(&reports, |r| r.throughput_mbps()));
        }
        print_row(&format!("burst_len={burst_len}"), &cells);
    }

    print_header(
        "Burstiness ablation: dynamic protocol mode switches per run",
        &["mode switches", "direct ratio"],
    );
    for (bi, &burst_len) in [8u32, 32, 128].iter().enumerate() {
        let reports = run_config(&spec(ProtocolMode::Dynamic, burst_len), 16_100 + bi as u64);
        let switches = summarize(&reports, |r| r.mode_switches as f64);
        let ratio = summarize(&reports, |r| r.direct_ratio());
        print_row(&format!("burst_len={burst_len}"), &[switches, ratio]);
    }
    println!();
    println!("expected: the dynamic protocol switches modes across bursts and stays");
    println!("          at or above the better single-mode baseline.");
}
