//! Figure 10 — Receiver CPU usage vs. number of simultaneously
//! outstanding operations on FDR InfiniBand.
//!
//! Expected shape: the indirect-only protocol drives receiver CPU toward
//! 100% (every byte is copied out of the intermediate buffer); the
//! direct-only protocol stays far lower (zero-copy); the dynamic
//! protocol tracks whichever mode it selected (≈ indirect when ops are
//! equal, ≈ direct when the receiver has twice the sender's ops).

use blast::BlastSpec;
use exs::{ExsConfig, ProtocolMode};
use exs_bench::{messages, print_header, print_row, run_config, summarize};
use rdma_verbs::profiles::fdr_infiniband;

fn spec(mode: ProtocolMode, sends: usize, recvs: usize) -> BlastSpec {
    BlastSpec {
        cfg: ExsConfig::with_mode(mode),
        outstanding_sends: sends,
        outstanding_recvs: recvs,
        messages: messages(),
        ..BlastSpec::new(fdr_infiniband())
    }
}

const MODES: [ProtocolMode; 3] = [
    ProtocolMode::DirectOnly,
    ProtocolMode::Dynamic,
    ProtocolMode::IndirectOnly,
];

fn sweep(title: &str, pairs: &[(usize, usize)]) {
    print_header(
        title,
        &["direct-only CPU %", "dynamic CPU %", "indirect-only CPU %"],
    );
    for &(sends, recvs) in pairs {
        let mut cells = Vec::new();
        for (mi, mode) in MODES.iter().enumerate() {
            let reports = run_config(
                &spec(*mode, sends, recvs),
                7000 + (recvs * 10 + sends) as u64 * 10 + mi as u64,
            );
            cells.push(summarize(&reports, |r| r.cpu_receiver * 100.0));
        }
        print_row(&format!("recvs={recvs} sends={sends}"), &cells);
    }
}

fn main() {
    sweep(
        "Fig. 10a: receiver CPU usage, sender ops == receiver ops (FDR IB)",
        &[(1, 1), (2, 2), (4, 4), (8, 8), (16, 16), (32, 32)],
    );
    sweep(
        "Fig. 10b: receiver CPU usage, sender ops == receiver ops / 2 (FDR IB)",
        &[(1, 2), (2, 4), (4, 8), (8, 16), (16, 32)],
    );
    println!();
    println!("paper shape: indirect approaches 100% as ops grow; direct stays low;");
    println!("             dynamic tracks the mode it selected.");
}
