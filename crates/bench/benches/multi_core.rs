//! Multi-core reactor sweep — the same fan-in carried by 1 / 2 / 4 / 8
//! reactor shards, on both backends.
//!
//! The question this answers: does sharding the reactor (PR's
//! `ReactorPool` / `ThreadReactorPool`) actually buy event-loop
//! throughput on real cores, and does it buy it **without changing a
//! single delivered byte**? Per-connection EXS state is independent, so
//! the sharded server must produce digest-for-digest the same streams
//! as the single-loop server and as the deterministic simulator.
//!
//! CI gates (exit non-zero on violation):
//!
//! * at every simulated shard count, delivered digests must equal the
//!   single-shard run's digests and the closed-form expected digest
//!   (placement may never change the bytes);
//! * the simulated placement must be balanced: round-robin imbalance
//!   (max/mean conns per shard) stays 1.0;
//! * on the real-thread backend every shard-count run must be
//!   digest-exact against the same closed form;
//! * with ≥ 4 hardware threads available, 4-shard throughput on the
//!   thread backend must reach ≥ 1.6× the single-shard baseline. On
//!   smaller hosts the gate is skipped (and says so) — there is
//!   nothing to scale onto.
//!
//! Snapshots land in `bench-results/multi_core_{1,2,4,8}shards.json`
//! (simulator runs: full per-shard telemetry rides in the `shards`
//! JSON block). Quick mode (`EXS_BENCH_QUICK=1`) runs 512 connections;
//! full mode 2048 simulated / 10k threaded.

use std::cell::RefCell;
use std::path::Path;
use std::rc::Rc;
use std::sync::Arc;
use std::time::Instant;

use blast::fan_in::{expected_digest, payload_byte, FNV_OFFSET};
use blast::{run_fan_in, FanInSpec, VerifyLevel};
use exs::threaded::connect_sockets_shared;
use exs::{Executor, ExsConfig, ExsError, Reactor, ReactorConfig, ShardBalance};
use exs_bench::quick;
use rdma_verbs::{profiles, HcaConfig, ThreadNet};

const SEED: u64 = 31;
const MSGS: usize = 4;
const MSG_LEN: u64 = 16 << 10;
const SHARD_COUNTS: &[usize] = &[1, 2, 4, 8];

fn spec_for(conns: usize, shards: usize) -> FanInSpec {
    FanInSpec {
        shards,
        msgs_per_conn: MSGS,
        msg_len: MSG_LEN,
        outstanding_sends: 2,
        prepost_recvs: 2,
        client_nodes: 8,
        verify: VerifyLevel::Full,
        seed: SEED,
        ..FanInSpec::new(profiles::fdr_infiniband(), conns)
    }
}

fn fnv1a(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// The threaded fan-in, sharded: one executor service thread per
/// shard, each over its own CQ pair and reactor, connections placed
/// round-robin by global index. Every server task verifies and digests
/// its stream (the per-byte work that shards across cores; the HCA
/// model itself is one lock per node, so an undigested run would only
/// measure that lock). Returns (digests in global order, transfer wall
/// seconds).
fn threaded_sharded_fan_in(conns: usize, shards: usize, client_threads: usize) -> (Vec<u64>, f64) {
    let cfg = ExsConfig {
        ring_capacity: 16 << 10,
        credits: 8,
        sq_depth: 8,
        ..ExsConfig::default()
    };
    let mut net = ThreadNet::new();
    let server_node = net.add_node(HcaConfig::default());
    let client_nodes: Vec<_> = (0..client_threads)
        .map(|_| net.add_node(HcaConfig::default()))
        .collect();
    for c in &client_nodes {
        net.connect_nodes(c, &server_node, std::time::Duration::from_micros(5));
    }
    let per_conn = cfg.sq_depth * 2 + cfg.credits as usize * 2;
    // Full-size CQs per shard: placement skew must never overflow a CQ.
    let shard_cqs: Vec<_> = (0..shards)
        .map(|_| {
            server_node.with_hca(|h| (h.create_cq(per_conn * conns), h.create_cq(per_conn * conns)))
        })
        .collect();
    let client_cqs: Vec<_> = client_nodes
        .iter()
        .map(|c| {
            let depth = per_conn * conns.div_ceil(client_threads);
            c.with_hca(|h| (h.create_cq(depth), h.create_cq(depth)))
        })
        .collect();

    let mut shard_reactors: Vec<Reactor> = shard_cqs
        .iter()
        .map(|&(scq, rcq)| Reactor::new(scq, rcq, ReactorConfig::default()))
        .collect();
    // shard -> global conn indices in accept order (the reactor's conn
    // ids are shard-local; digests report globally).
    let mut shard_idxs: Vec<Vec<usize>> = (0..shards).map(|_| Vec::new()).collect();
    let mut per_client: Vec<Vec<(usize, exs::StreamSocket)>> =
        (0..client_threads).map(|_| Vec::new()).collect();
    for idx in 0..conns {
        let t = idx % client_threads;
        let s = idx % shards;
        let (csock, ssock) = connect_sockets_shared(
            &client_nodes[t],
            &server_node,
            &cfg,
            Some(client_cqs[t]),
            Some(shard_cqs[s]),
        );
        shard_reactors[s].accept(ssock);
        shard_idxs[s].push(idx);
        per_client[t].push((idx, csock));
    }
    let net = Arc::new(net);
    let start = Instant::now();

    let mut servers = Vec::with_capacity(shards);
    for (reactor, idxs) in shard_reactors.into_iter().zip(shard_idxs) {
        let net = Arc::clone(&net);
        let node = Arc::clone(&server_node);
        servers.push(std::thread::spawn(move || {
            let conn_ids = reactor.conn_ids();
            assert_eq!(conn_ids.len(), idxs.len());
            let mut ex = Executor::new(reactor);
            let digests: Vec<Rc<RefCell<u64>>> = (0..conn_ids.len())
                .map(|_| Rc::new(RefCell::new(FNV_OFFSET)))
                .collect();
            for (i, &conn) in conn_ids.iter().enumerate() {
                let stream = ex.handle().stream_with(conn, MSG_LEN as u32, 2);
                let digest = Rc::clone(&digests[i]);
                let idx = idxs[i];
                ex.handle().spawn(async move {
                    let mut pos = 0u64;
                    loop {
                        match stream.recv_some(MSG_LEN as usize).await {
                            Ok(bytes) => {
                                for (i, &b) in bytes.iter().enumerate() {
                                    assert_eq!(
                                        b,
                                        payload_byte(SEED, idx, pos + i as u64),
                                        "conn {idx} corrupted at offset {}",
                                        pos + i as u64
                                    );
                                }
                                pos += bytes.len() as u64;
                                let mut d = digest.borrow_mut();
                                *d = fnv1a(*d, &bytes);
                            }
                            Err(ExsError::Eof) => break,
                            Err(e) => panic!("server task failed: {e}"),
                        }
                    }
                    stream.shutdown().await.expect("server shutdown");
                });
            }
            ex.run_threaded(&net, &node);
            assert_eq!(ex.stats().tasks_completed, conn_ids.len() as u64);
            idxs.into_iter()
                .zip(digests.into_iter().map(|d| *d.borrow()))
                .collect::<Vec<(usize, u64)>>()
        }));
    }

    let mut clients = Vec::with_capacity(client_threads);
    for (t, socks) in per_client.into_iter().enumerate() {
        let net = Arc::clone(&net);
        let node = Arc::clone(&client_nodes[t]);
        clients.push(std::thread::spawn(move || {
            let mut reactor = Reactor::new(
                socks[0].1.send_cq(),
                socks[0].1.recv_cq(),
                ReactorConfig::default(),
            );
            let streams: Vec<_> = socks
                .into_iter()
                .map(|(idx, sock)| (idx, reactor.accept(sock)))
                .collect();
            let mut ex = Executor::new(reactor);
            for (idx, conn) in streams {
                let stream = ex.handle().stream_with(conn, MSG_LEN as u32, 2);
                ex.handle().spawn(async move {
                    for m in 0..MSGS {
                        let base = m * MSG_LEN as usize;
                        let data: Vec<u8> = (0..MSG_LEN as usize)
                            .map(|i| payload_byte(SEED, idx, (base + i) as u64))
                            .collect();
                        stream.send_all(data).await.expect("client send");
                    }
                    stream.shutdown().await.expect("client shutdown");
                    match stream.recv_some(1).await {
                        Err(ExsError::Eof) => {}
                        other => panic!("client {idx} expected EOF, got {other:?}"),
                    }
                });
            }
            ex.run_threaded(&net, &node);
        }));
    }
    for c in clients {
        c.join().expect("client thread");
    }
    let mut digests = vec![0u64; conns];
    for s in servers {
        for (idx, d) in s.join().expect("server shard thread") {
            digests[idx] = d;
        }
    }
    let wall = start.elapsed().as_secs_f64();
    net.quiesce();
    (digests, wall)
}

fn main() {
    let sim_conns = if quick() { 512 } else { 2048 };
    let thr_conns = if quick() { 512 } else { 10_000 };
    let out_dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../bench-results");
    let mut violations = 0u32;
    let expected_len = MSGS as u64 * MSG_LEN;
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());

    println!();
    println!(
        "=== multi_core: fan-in over 1/2/4/8 reactor shards (FDR IB sim + thread backend) ==="
    );
    println!("{sim_conns} simulated conns, {thr_conns} threaded conns, {cores} hardware threads");
    println!(
        "{:>7} {:>8} {:>12} {:>10} {:>10} {:>9} {:>11}",
        "shards", "backend", "Mbit/s", "imbalance", "polls", "speedup", "digests"
    );

    // --- Simulator sweep: digest identity + placement balance. ---
    let mut baseline_digests: Option<Vec<u64>> = None;
    for &shards in SHARD_COUNTS {
        let report = run_fan_in(&spec_for(sim_conns, shards));
        let shard_stats = report
            .shard_stats
            .as_ref()
            .expect("sharded-capable run reports per-shard telemetry");
        assert_eq!(shard_stats.len(), shards);
        let bal = ShardBalance::of(shard_stats);
        let identical = match &baseline_digests {
            None => {
                baseline_digests = Some(report.digests.clone());
                true
            }
            Some(base) => *base == report.digests,
        };
        println!(
            "{:>7} {:>8} {:>12.1} {:>10.3} {:>10} {:>9} {:>11}",
            shards,
            "sim",
            report.throughput_mbps(),
            bal.imbalance(),
            report.reactor.polls,
            "-",
            if identical { "identical" } else { "DIVERGED" },
        );
        match report.write_snapshot(&out_dir, &format!("multi_core_{shards}shards")) {
            Ok(path) => println!("        snapshot: {}", path.display()),
            Err(e) => eprintln!("        snapshot write failed: {e}"),
        }

        if !identical {
            eprintln!("VIOLATION: {shards}-shard delivery diverges from the single-shard run");
            violations += 1;
        }
        for (i, &d) in report.digests.iter().enumerate() {
            if d != expected_digest(SEED, i, expected_len) {
                eprintln!("VIOLATION: sim conn {i} at {shards} shards delivered a wrong digest");
                violations += 1;
                break;
            }
        }
        // conns is a multiple of every swept shard count, so
        // round-robin placement must come out perfectly even.
        if (bal.imbalance() - 1.0).abs() > 1e-9 {
            eprintln!(
                "VIOLATION: round-robin placement imbalance {:.3} at {shards} shards",
                bal.imbalance()
            );
            violations += 1;
        }
    }

    // --- Thread backend: the actual multi-core scaling measurement. ---
    let mut thr_baseline = None;
    for &shards in SHARD_COUNTS {
        let (digests, wall) = threaded_sharded_fan_in(thr_conns, shards, 4);
        let bytes = thr_conns as u64 * expected_len;
        let mbps = bytes as f64 * 8.0 / wall / 1e6;
        let speedup = match thr_baseline {
            None => {
                thr_baseline = Some(wall);
                1.0
            }
            Some(base) => base / wall,
        };
        let mut ok = true;
        for (i, &d) in digests.iter().enumerate() {
            if d != expected_digest(SEED, i, expected_len) {
                eprintln!(
                    "VIOLATION: threaded conn {i} at {shards} shards delivered a wrong digest"
                );
                violations += 1;
                ok = false;
                break;
            }
        }
        println!(
            "{:>7} {:>8} {:>12.1} {:>10} {:>10} {:>8.2}x {:>11}",
            shards,
            "thread",
            mbps,
            "-",
            "-",
            speedup,
            if ok { "identical" } else { "DIVERGED" },
        );
        if shards == 4 {
            if cores >= 4 {
                if speedup < 1.6 {
                    eprintln!(
                        "VIOLATION: 4-shard throughput is {speedup:.2}x the single-shard \
                         baseline (< 1.6x) on a {cores}-thread host"
                    );
                    violations += 1;
                }
            } else {
                println!(
                    "        scaling gate skipped: only {cores} hardware thread(s); \
                     the 1.6x gate needs >= 4"
                );
            }
        }
    }

    println!();
    println!("expected shape: digests never move with the shard count — placement is");
    println!("routing, not protocol — and on a multi-core host the per-shard service");
    println!("threads verify+digest their streams in parallel, so 4 shards clear 1.6x");
    println!("the single-loop baseline while round-robin keeps the shards level.");
    if violations > 0 {
        eprintln!("{violations} multi_core violation(s)");
        std::process::exit(1);
    }
}
