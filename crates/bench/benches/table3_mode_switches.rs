//! Table III — Average number of mode switches and ratio of direct
//! transfers to total transfers for the dynamic protocol, for the
//! Fig. 9a (equal ops) and Fig. 9b (receiver 2×) configurations.
//!
//! Expected shape: equal ops → around one mode switch (the sender falls
//! out of the initial direct phase and stays indirect) with a direct
//! ratio well below 0.1; receiver-2× → no switches and ratio 1.0, apart
//! from a race-sensitive anomaly at small op counts that shows up as a
//! non-zero switch count with a sharply reduced ratio.

use blast::BlastSpec;
use exs::{ExsConfig, ProtocolMode};
use exs_bench::{messages, print_header, print_row, run_config, summarize};
use rdma_verbs::profiles::fdr_infiniband;

fn spec(sends: usize, recvs: usize) -> BlastSpec {
    BlastSpec {
        cfg: ExsConfig::with_mode(ProtocolMode::Dynamic),
        outstanding_sends: sends,
        outstanding_recvs: recvs,
        messages: messages(),
        ..BlastSpec::new(fdr_infiniband())
    }
}

fn main() {
    print_header(
        "Table III: dynamic protocol mode switches and direct:total ratio (FDR IB)",
        &["mode switches", "direct:total ratio"],
    );
    let pairs: [(usize, usize); 11] = [
        (1, 1),
        (2, 2),
        (4, 4),
        (8, 8),
        (16, 16),
        (32, 32),
        (1, 2),
        (2, 4),
        (4, 8),
        (8, 16),
        (16, 32),
    ];
    for (i, &(sends, recvs)) in pairs.iter().enumerate() {
        let reports = run_config(&spec(sends, recvs), 31000 + i as u64);
        let switches = summarize(&reports, |r| r.mode_switches as f64);
        let ratio = summarize(&reports, |r| r.direct_ratio());
        print_row(&format!("recvs={recvs} sends={sends}"), &[switches, ratio]);
    }
    println!();
    println!("paper shape: equal ops -> ~1 switch (93±86 at 1 op), ratio < 0.1 for >= 4 ops;");
    println!("             2x recvs  -> 0 switches, ratio 1.0, except an anomaly at (4,2).");
}
