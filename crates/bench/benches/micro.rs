//! Criterion micro-benchmarks for the building blocks: the event
//! scheduler, the circular-buffer arithmetic, the sender matching
//! algorithm (paper Fig. 2), control-message codecs, and a small
//! end-to-end blast through the whole stack.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};

use blast::{run_blast, BlastSpec, SizeDist, VerifyLevel};
use exs::buffer::{ReceiverRing, SenderRing};
use exs::messages::{Advert, Ctrl, CtrlMsg};
use exs::sender::{RemoteRing, SenderHalf};
use exs::{ConnStats, ExsConfig, Phase, ProtocolMode, Seq};
use rdma_verbs::profiles::fdr_infiniband;
use simnet::{Scheduler, SimTime};

fn bench_scheduler(c: &mut Criterion) {
    let mut g = c.benchmark_group("simnet_scheduler");
    g.throughput(Throughput::Elements(10_000));
    g.bench_function("schedule_pop_10k", |b| {
        b.iter_batched(
            Scheduler::<u64>::new,
            |mut s| {
                for i in 0..10_000u64 {
                    s.schedule_at(SimTime::from_nanos(i * 7 % 5_000), i);
                }
                let mut acc = 0u64;
                while let Some((_, v)) = s.pop() {
                    acc = acc.wrapping_add(v);
                }
                acc
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_ring(c: &mut Criterion) {
    let mut g = c.benchmark_group("intermediate_ring");
    g.throughput(Throughput::Elements(10_000));
    g.bench_function("reserve_commit_release_10k", |b| {
        b.iter(|| {
            let mut s = SenderRing::new(1 << 20);
            let mut r = ReceiverRing::new(1 << 20);
            for i in 0..10_000u64 {
                let want = 1 + (i * 37) % 8_192;
                let (_, n) = s.contiguous_reservation(want);
                if n > 0 {
                    s.commit(n);
                    r.arrived(n);
                }
                let (_, m) = r.contiguous_read(want);
                if m > 0 {
                    r.consume(m);
                    s.release(m);
                }
            }
            (s.free(), r.count())
        })
    });
    g.finish();
}

fn bench_sender_matching(c: &mut Criterion) {
    let mut g = c.benchmark_group("sender_fig2");
    g.throughput(Throughput::Elements(1_000));
    g.bench_function("match_1k_adverts", |b| {
        b.iter_batched(
            || {
                let mut half = SenderHalf::new(
                    ProtocolMode::Dynamic,
                    RemoteRing {
                        addr: 0x1000,
                        rkey: 1,
                        capacity: 1 << 20,
                    },
                    1 << 20,
                );
                let mut stats = ConnStats::default();
                let mut seq = 0u64;
                for i in 0..1_000u64 {
                    half.push_advert(
                        Advert {
                            seq: Seq(seq),
                            phase: Phase(0),
                            addr: 0x10_0000 + i * 8_192,
                            len: 8_192,
                            rkey: 9,
                            waitall: false,
                        },
                        &mut stats,
                    )
                    .unwrap();
                    seq += 8_192;
                }
                (half, stats)
            },
            |(mut half, mut stats)| {
                for _ in 0..1_000 {
                    let plan = half.plan_transfer(8_192, &mut stats).expect("advert ready");
                    assert!(!plan.indirect);
                }
                stats.direct_transfers
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_ctrl_codec(c: &mut Criterion) {
    let msg = CtrlMsg {
        ctrl: Ctrl::Advert(Advert {
            seq: Seq(123_456_789),
            phase: Phase(6),
            addr: 0xDEAD_BEEF,
            len: 1 << 20,
            rkey: 77,
            waitall: true,
        }),
        credit_return: 3,
    };
    let mut g = c.benchmark_group("ctrl_codec");
    g.bench_function("encode_decode", |b| {
        b.iter(|| {
            let buf = msg.encode();
            CtrlMsg::decode(&buf).expect("roundtrip")
        })
    });
    g.finish();
}

fn bench_end_to_end(c: &mut Criterion) {
    let mut g = c.benchmark_group("end_to_end_blast");
    g.sample_size(10);
    g.bench_function("fdr_dynamic_40msgs", |b| {
        b.iter(|| {
            let spec = BlastSpec {
                cfg: ExsConfig::with_mode(ProtocolMode::Dynamic),
                outstanding_sends: 4,
                outstanding_recvs: 8,
                sizes: SizeDist::Fixed(64 << 10),
                messages: 40,
                verify: VerifyLevel::None,
                seed: 42,
                ..BlastSpec::new(fdr_infiniband())
            };
            run_blast(&spec).bytes
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_scheduler,
    bench_ring,
    bench_sender_matching,
    bench_ctrl_codec,
    bench_end_to_end
);
criterion_main!(benches);
