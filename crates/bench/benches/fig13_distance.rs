//! Figure 13 — Throughput vs. outstanding operations over distance:
//! 10 Gbit/s RoCE through the Anue network emulator with a fixed 48 ms
//! round-trip delay. Outstanding operations equal at sender and
//! receiver; exponential message sizes (mean 1 MiB, max 4 MiB).
//!
//! Expected shape: all three protocols perform similarly — the
//! bandwidth-delay product dominates, and throughput scales with the
//! number of outstanding operations; the buffered (indirect) path is
//! never behind because waiting a 48 ms round trip for an ADVERT is the
//! real cost (paper §I, §IV-B2).

use blast::BlastSpec;
use exs::{ExsConfig, ProtocolMode};
use exs_bench::{messages, print_header, print_row, run_config, summarize};
use rdma_verbs::profiles::roce_10g_wan;
use simnet::SimDuration;

fn spec(mode: ProtocolMode, ops: usize) -> BlastSpec {
    let mut cfg = ExsConfig::with_mode(mode);
    // Size the hidden buffer for the 60 MB bandwidth-delay product, as
    // any deployment over a 48 ms path would (the paper does not state
    // its buffer size; see DESIGN.md).
    cfg.ring_capacity = 256 << 20;
    BlastSpec {
        cfg,
        outstanding_sends: ops,
        outstanding_recvs: ops,
        messages: messages().min(200),
        time_limit: SimDuration::from_secs(3600),
        ..BlastSpec::new(roce_10g_wan())
    }
}

const MODES: [ProtocolMode; 3] = [
    ProtocolMode::IndirectOnly,
    ProtocolMode::Dynamic,
    ProtocolMode::DirectOnly,
];

fn main() {
    print_header(
        "Fig. 13: throughput over 48 ms RTT (10G RoCE + emulator), equal ops",
        &[
            "indirect-only Mbit/s",
            "dynamic Mbit/s",
            "direct-only Mbit/s",
        ],
    );
    for &ops in &[1usize, 2, 4, 8, 16, 32] {
        let mut cells = Vec::new();
        for (mi, mode) in MODES.iter().enumerate() {
            let reports = run_config(&spec(*mode, ops), 13_000 + (ops * 10 + mi) as u64);
            cells.push(summarize(&reports, |r| r.throughput_mbps()));
        }
        print_row(&format!("ops={ops}"), &cells);
    }
    println!();
    println!("paper shape: all three protocols similar; throughput scales with the");
    println!("             number of outstanding operations; indirect slightly ahead");
    println!("             of direct for 4-32 buffers (by ~100-400 Mbit/s).");
}
