//! Ablation: QDR InfiniBand.
//!
//! "In tests on QDR InfiniBand, the indirect protocol compares much more
//! favorably in terms of throughput, since the maximum possible
//! throughput of QDR InfiniBand is not dramatically higher than the
//! memory copy throughput." (paper §IV-B1)
//!
//! This harness repeats the Fig. 9a sweep on the QDR profile: the
//! direct/indirect gap should shrink dramatically compared to FDR.

use blast::BlastSpec;
use exs::{ExsConfig, ProtocolMode};
use exs_bench::{messages, print_header, print_row, run_config, summarize};
use rdma_verbs::profiles::{fdr_infiniband, qdr_infiniband};
use rdma_verbs::HwProfile;

fn spec(profile: &HwProfile, mode: ProtocolMode, ops: usize) -> BlastSpec {
    BlastSpec {
        cfg: ExsConfig::with_mode(mode),
        outstanding_sends: ops,
        outstanding_recvs: ops,
        messages: messages(),
        ..BlastSpec::new(profile.clone())
    }
}

fn sweep(profile: &HwProfile, seed_base: u64) {
    print_header(
        &format!("QDR ablation: throughput on {} (equal ops)", profile.name),
        &["direct-only Mbit/s", "indirect-only Mbit/s", "gap %"],
    );
    for &ops in &[2usize, 8, 32] {
        let d = run_config(
            &spec(profile, ProtocolMode::DirectOnly, ops),
            seed_base + ops as u64 * 2,
        );
        let i = run_config(
            &spec(profile, ProtocolMode::IndirectOnly, ops),
            seed_base + ops as u64 * 2 + 1,
        );
        let ds = summarize(&d, |r| r.throughput_mbps());
        let is = summarize(&i, |r| r.throughput_mbps());
        let gap = blast::Summary {
            mean: (ds.mean - is.mean) / ds.mean * 100.0,
            ci95: 0.0,
            n: ds.n,
        };
        print_row(&format!("ops={ops}"), &[ds, is, gap]);
    }
}

fn main() {
    sweep(&fdr_infiniband(), 17_000);
    sweep(&qdr_infiniband(), 18_000);
    println!();
    println!("expected: the direct-vs-indirect gap is far smaller on QDR than on FDR,");
    println!("          because QDR's wire rate is close to the memcpy rate.");
}
