//! Mode recovery — how much of the stream travels zero-copy when the
//! receiver keeps a queue of receives pre-posted and the sender's
//! adaptive re-entry policy (`ExsConfig::direct`) is allowed to pause
//! for a resync ADVERT instead of falling back to the bounce ring.
//!
//! Sweeps message size × pre-post depth at a fixed fan-in of 8
//! connections. The interesting outputs are the direct byte ratio
//! (1.0 = full zero-copy), the resync counters (how often the policy
//! paused and how often the pause paid off), and the receiver's advert
//! queue depth. Depth 1 with small messages is the degenerate
//! reactor shape that used to pin every stream at 0% direct.
//!
//! Each cell's full counter snapshot is written to
//! `bench-results/mode_recovery_<size>_d<depth>.json`. The run exits
//! non-zero if the large-message, deep-queue cell fails to recover
//! direct mode — the CI regression gate for this subsystem.

use std::path::Path;

use blast::{run_fan_in, FanInSpec};
use exs_bench::quick;
use rdma_verbs::profiles;

fn main() {
    const CONNS: usize = 8;
    let msg_lens: &[u64] = &[8 << 10, 64 << 10];
    let depths: &[usize] = &[1, 4];
    let msgs = if quick() { 3 } else { 8 };
    let out_dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../bench-results");

    println!();
    println!("=== Mode recovery: direct-byte share vs pre-post depth ({CONNS} conns, FDR IB) ===");
    println!(
        "{:>9} {:>6} {:>16} {:>13} {:>9} {:>9} {:>11} {:>11}",
        "msg size",
        "depth",
        "aggregate Mbit/s",
        "direct bytes",
        "resync>",
        "resync=",
        "advert q pk",
        "advert q mu"
    );

    let mut gate_ratio = None;
    for &msg_len in msg_lens {
        for &depth in depths {
            let spec = FanInSpec {
                msgs_per_conn: msgs,
                msg_len,
                prepost_recvs: depth,
                seed: 5,
                ..FanInSpec::new(profiles::fdr_infiniband(), CONNS)
            };
            let report = run_fan_in(&spec);
            let tx = &report.aggregate_tx;
            println!(
                "{:>7}Ki {:>6} {:>16.1} {:>13.3} {:>9} {:>9} {:>11} {:>11.2}",
                msg_len >> 10,
                depth,
                report.throughput_mbps(),
                report.direct_byte_ratio(),
                tx.resyncs_attempted,
                tx.resyncs_completed,
                report.aggregate.advert_queue_peak,
                report.aggregate.advert_queue_mean(),
            );
            let name = format!("mode_recovery_{}k_d{depth}", msg_len >> 10);
            match report.write_snapshot(&out_dir, &name) {
                Ok(path) => println!("          snapshot: {}", path.display()),
                Err(e) => eprintln!("          snapshot write failed: {e}"),
            }
            if msg_len == 64 << 10 && depth == 4 {
                gate_ratio = Some(report.direct_byte_ratio());
            }
        }
    }

    println!();
    println!("expected shape: direct-byte share rises with message size and pre-post");
    println!("depth; 64Ki at depth 4 should be near 1.0 (full zero-copy recovery).");

    // Regression gate: large messages through a deep advert queue must
    // not fall back to 0% direct (the pre-PR reactor behaviour).
    let ratio = gate_ratio.expect("64Ki/depth-4 cell ran");
    if ratio < 0.5 {
        eprintln!("REGRESSION: 64Ki/depth-4 direct_byte_ratio {ratio:.3} < 0.5");
        std::process::exit(1);
    }
    println!("gate ok: 64Ki/depth-4 direct_byte_ratio = {ratio:.3}");
}
