//! Figure 12 — Effect of message size on the dynamic protocol, with 4
//! outstanding operations at the receiver and 2 at the sender. Message
//! sizes sweep 512 B … 128 MiB.
//!
//! * **Fig. 12a**: throughput generally increases with message size and
//!   saturates (the paper notes a mild peak near 2 MiB).
//! * **Fig. 12b**: the direct:total ratio is below 1 for small and
//!   medium sizes and reaches 1.0 at ≥ 512 KiB, where each message's
//!   transmission delay exceeds the ADVERT turnaround so the receiver
//!   is always ready first.

use blast::{BlastSpec, SizeDist};
use exs::{ExsConfig, ProtocolMode};
use exs_bench::{print_header, print_row, quick, run_config, summarize};
use rdma_verbs::profiles::fdr_infiniband;

const SIZES: [(u64, &str); 10] = [
    (512, "512 B"),
    (2 << 10, "2 KiB"),
    (8 << 10, "8 KiB"),
    (32 << 10, "32 KiB"),
    (128 << 10, "128 KiB"),
    (512 << 10, "512 KiB"),
    (2 << 20, "2 MiB"),
    (8 << 20, "8 MiB"),
    (32 << 20, "32 MiB"),
    (128 << 20, "128 MiB"),
];

fn spec(size: u64) -> BlastSpec {
    // Scale the message count so every size moves a comparable volume
    // without tiny sizes taking forever or huge sizes overflowing.
    let budget: u64 = if quick() { 64 << 20 } else { 1 << 30 };
    let messages = (budget / size).clamp(24, 2_000) as usize;
    BlastSpec {
        cfg: ExsConfig::with_mode(ProtocolMode::Dynamic),
        outstanding_sends: 2,
        outstanding_recvs: 4,
        sizes: SizeDist::Fixed(size),
        messages,
        ..BlastSpec::new(fdr_infiniband())
    }
}

fn main() {
    print_header(
        "Fig. 12: message-size sweep (recvs = 4, sends = 2, dynamic, FDR IB)",
        &["throughput Mbit/s", "direct:total ratio"],
    );
    for (i, &(size, label)) in SIZES.iter().enumerate() {
        let reports = run_config(&spec(size), 12_000 + i as u64);
        let tput = summarize(&reports, |r| r.throughput_mbps());
        let ratio = summarize(&reports, |r| r.direct_ratio());
        print_row(label, &[tput, ratio]);
    }
    println!();
    println!("paper shape: throughput rises with size (peak ~46.5 Gbit/s near 2 MiB);");
    println!("             direct ratio dips below 1 for small/medium sizes and is 1.0");
    println!("             for every size >= 512 KiB.");
}
