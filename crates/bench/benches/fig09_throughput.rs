//! Figure 9 — Throughput vs. number of simultaneously outstanding
//! operations on FDR InfiniBand, for the direct-only, dynamic and
//! indirect-only protocols. Message sizes are drawn from the paper's
//! truncated exponential distribution (mean 1 MiB, max 4 MiB).
//!
//! * **Fig. 9a**: outstanding operations equal at sender and receiver.
//!   Expected shape: direct-only ≫ indirect-only; dynamic tracks
//!   indirect-only (the sender is always ahead).
//! * **Fig. 9b**: outstanding sends = half the outstanding receives.
//!   Expected shape: dynamic tracks direct-only (a standing pool of
//!   ADVERTs keeps the sender in direct mode).

use blast::BlastSpec;
use exs::{ExsConfig, ProtocolMode};
use exs_bench::{messages, print_header, print_row, run_config, summarize};
use rdma_verbs::profiles::fdr_infiniband;

fn spec(mode: ProtocolMode, sends: usize, recvs: usize) -> BlastSpec {
    BlastSpec {
        cfg: ExsConfig::with_mode(mode),
        outstanding_sends: sends,
        outstanding_recvs: recvs,
        messages: messages(),
        ..BlastSpec::new(fdr_infiniband())
    }
}

const MODES: [ProtocolMode; 3] = [
    ProtocolMode::DirectOnly,
    ProtocolMode::Dynamic,
    ProtocolMode::IndirectOnly,
];

fn sweep(title: &str, pairs: &[(usize, usize)]) {
    print_header(
        title,
        &[
            "direct-only Mbit/s",
            "dynamic Mbit/s",
            "indirect-only Mbit/s",
        ],
    );
    for &(sends, recvs) in pairs {
        let mut cells = Vec::new();
        for (mi, mode) in MODES.iter().enumerate() {
            let reports = run_config(
                &spec(*mode, sends, recvs),
                (recvs * 10 + sends) as u64 * 10 + mi as u64,
            );
            cells.push(summarize(&reports, |r| r.throughput_mbps()));
        }
        print_row(&format!("recvs={recvs} sends={sends}"), &cells);
    }
}

fn main() {
    sweep(
        "Fig. 9a: throughput, outstanding sender ops == receiver ops (FDR IB)",
        &[(1, 1), (2, 2), (4, 4), (8, 8), (16, 16), (32, 32)],
    );
    sweep(
        "Fig. 9b: throughput, outstanding sender ops == receiver ops / 2 (FDR IB)",
        &[(1, 2), (2, 4), (4, 8), (8, 16), (16, 32)],
    );
    println!();
    println!("paper shape: (9a) direct 35-44 Gbit/s, indirect 20-27 Gbit/s, dynamic ~= indirect;");
    println!("             (9b) dynamic ~= direct (one anomaly near recvs=4, sends=2).");
}
