//! Async-executor scalability sweep — 1k / 10k concurrent tasks on one
//! service thread, against the callback-mode fan-in baseline.
//!
//! The question this answers: does writing the server as 10k `async`
//! tasks awaiting `recv_some` on one [`exs::aio`] executor cost
//! anything against the hand-rolled callback reactor loop? The async
//! layer adds a waker registry, op queue, and per-task state machine on
//! top of the same reactor — the gate pins that overhead to noise.
//!
//! CI gates (exit non-zero on violation):
//!
//! * at every scale, the async server's delivered digests must equal
//!   the callback server's digests and the closed-form expected digest
//!   (the consumption model may never change the bytes);
//! * at 10k tasks, async aggregate throughput must stay ≥ 0.9× the
//!   callback-mode baseline at the same connection count;
//! * on the real-thread backend, every task must complete on the single
//!   service thread, digest-exact.
//!
//! Snapshots land in `bench-results/async_scale_{1k,10k}.json`. Quick
//! mode (`EXS_BENCH_QUICK=1`) runs both scales on the simulator but
//! shrinks the threaded demonstration to 1k tasks.

use std::cell::RefCell;
use std::path::Path;
use std::rc::Rc;
use std::sync::Arc;
use std::time::Instant;

use blast::fan_in::{expected_digest, payload_byte, FNV_OFFSET};
use blast::{run_fan_in, FanInSpec, VerifyLevel};
use exs::threaded::connect_sockets_shared;
use exs::{Executor, ExsConfig, ExsError, Reactor, ReactorConfig};
use exs_bench::quick;
use rdma_verbs::{profiles, HcaConfig, ThreadNet};

const SEED: u64 = 29;
const MSGS: usize = 4;
const MSG_LEN: u64 = 4 << 10;

fn spec_for(conns: usize, aio: bool) -> FanInSpec {
    FanInSpec {
        aio,
        msgs_per_conn: MSGS,
        msg_len: MSG_LEN,
        outstanding_sends: 2,
        prepost_recvs: 2,
        client_nodes: 8,
        verify: VerifyLevel::Full,
        seed: SEED,
        ..FanInSpec::new(profiles::fdr_infiniband(), conns)
    }
}

fn fnv1a(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// 10k tasks on one real service thread: N streams spread over a few
/// client-node executors, every server-side connection one async task
/// on a single shared-CQ executor thread. Returns (digests, wall
/// seconds) for the transfer phase.
fn threaded_fan_in(conns: usize, client_threads: usize) -> (Vec<u64>, f64) {
    let cfg = ExsConfig {
        ring_capacity: 16 << 10,
        credits: 8,
        sq_depth: 8,
        ..ExsConfig::default()
    };
    let mut net = ThreadNet::new();
    let server_node = net.add_node(HcaConfig::default());
    let client_nodes: Vec<_> = (0..client_threads)
        .map(|_| net.add_node(HcaConfig::default()))
        .collect();
    for c in &client_nodes {
        net.connect_nodes(c, &server_node, std::time::Duration::from_micros(5));
    }
    let per_conn = cfg.sq_depth * 2 + cfg.credits as usize * 2;
    let (scq, rcq) =
        server_node.with_hca(|h| (h.create_cq(per_conn * conns), h.create_cq(per_conn * conns)));
    let client_cqs: Vec<_> = client_nodes
        .iter()
        .map(|c| {
            let depth = per_conn * conns.div_ceil(client_threads);
            c.with_hca(|h| (h.create_cq(depth), h.create_cq(depth)))
        })
        .collect();

    let mut server_reactor = Reactor::new(scq, rcq, ReactorConfig::default());
    // client thread index -> that thread's (global conn idx, socket)s
    let mut per_client: Vec<Vec<(usize, exs::StreamSocket)>> =
        (0..client_threads).map(|_| Vec::new()).collect();
    for idx in 0..conns {
        let t = idx % client_threads;
        let (csock, ssock) = connect_sockets_shared(
            &client_nodes[t],
            &server_node,
            &cfg,
            Some(client_cqs[t]),
            Some((scq, rcq)),
        );
        server_reactor.accept(ssock);
        per_client[t].push((idx, csock));
    }
    let net = Arc::new(net);
    let start = Instant::now();

    let server = {
        let net = Arc::clone(&net);
        let node = Arc::clone(&server_node);
        std::thread::spawn(move || {
            let conn_ids = server_reactor.conn_ids();
            let mut ex = Executor::new(server_reactor);
            let digests: Vec<Rc<RefCell<u64>>> = (0..conn_ids.len())
                .map(|_| Rc::new(RefCell::new(FNV_OFFSET)))
                .collect();
            for (i, &conn) in conn_ids.iter().enumerate() {
                let stream = ex.handle().stream_with(conn, MSG_LEN as u32, 2);
                let digest = Rc::clone(&digests[i]);
                ex.handle().spawn(async move {
                    loop {
                        match stream.recv_some(MSG_LEN as usize).await {
                            Ok(bytes) => {
                                let mut d = digest.borrow_mut();
                                *d = fnv1a(*d, &bytes);
                            }
                            Err(ExsError::Eof) => break,
                            Err(e) => panic!("server task failed: {e}"),
                        }
                    }
                    stream.shutdown().await.expect("server shutdown");
                });
            }
            ex.run_threaded(&net, &node);
            assert_eq!(ex.stats().tasks_completed, conn_ids.len() as u64);
            digests
                .into_iter()
                .map(|d| *d.borrow())
                .collect::<Vec<u64>>()
        })
    };

    let mut clients = Vec::with_capacity(client_threads);
    for (t, socks) in per_client.into_iter().enumerate() {
        let net = Arc::clone(&net);
        let node = Arc::clone(&client_nodes[t]);
        clients.push(std::thread::spawn(move || {
            let mut reactor = Reactor::new(
                socks[0].1.send_cq(),
                socks[0].1.recv_cq(),
                ReactorConfig::default(),
            );
            let streams: Vec<_> = socks
                .into_iter()
                .map(|(idx, sock)| (idx, reactor.accept(sock)))
                .collect();
            let mut ex = Executor::new(reactor);
            for (idx, conn) in streams {
                let stream = ex.handle().stream_with(conn, MSG_LEN as u32, 2);
                ex.handle().spawn(async move {
                    for m in 0..MSGS {
                        let base = m * MSG_LEN as usize;
                        let data: Vec<u8> = (0..MSG_LEN as usize)
                            .map(|i| payload_byte(SEED, idx, (base + i) as u64))
                            .collect();
                        stream.send_all(data).await.expect("client send");
                    }
                    stream.shutdown().await.expect("client shutdown");
                    match stream.recv_some(1).await {
                        Err(ExsError::Eof) => {}
                        other => panic!("client {idx} expected EOF, got {other:?}"),
                    }
                });
            }
            ex.run_threaded(&net, &node);
        }));
    }
    for c in clients {
        c.join().expect("client thread");
    }
    let digests = server.join().expect("server thread");
    let wall = start.elapsed().as_secs_f64();
    net.quiesce();
    (digests, wall)
}

fn main() {
    let scales: &[(usize, &str)] = &[(1_000, "1k"), (10_000, "10k")];
    let out_dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../bench-results");
    let mut violations = 0u32;

    println!();
    println!(
        "=== async_scale: N async tasks on one service thread vs callback server (FDR IB) ==="
    );
    println!(
        "{:>8} {:>10} {:>12} {:>12} {:>8} {:>9} {:>11}",
        "tasks", "mode", "Mbit/s", "wakeups", "polls/w", "ratio", "digests"
    );

    for &(tasks, tag) in scales {
        let callback = run_fan_in(&spec_for(tasks, false));
        let aio = run_fan_in(&spec_for(tasks, true));
        let ratio = if callback.throughput_mbps() > 0.0 {
            aio.throughput_mbps() / callback.throughput_mbps()
        } else {
            1.0
        };
        println!(
            "{:>8} {:>10} {:>12.1} {:>12} {:>8} {:>9} {:>11}",
            tasks,
            "callback",
            callback.throughput_mbps(),
            "-",
            "-",
            "-",
            "-"
        );
        let stats = aio.aio.as_ref().expect("aio run reports executor stats");
        println!(
            "{:>8} {:>10} {:>12.1} {:>12} {:>8.2} {:>8.3}x {:>11}",
            tasks,
            "aio",
            aio.throughput_mbps(),
            stats.wakeups,
            stats.polls as f64 / stats.wakeups.max(1) as f64,
            ratio,
            if aio.digests == callback.digests {
                "identical"
            } else {
                "DIVERGED"
            },
        );
        match aio.write_snapshot(&out_dir, &format!("async_scale_{tag}")) {
            Ok(path) => println!("        snapshot: {}", path.display()),
            Err(e) => eprintln!("        snapshot write failed: {e}"),
        }

        if aio.digests != callback.digests {
            eprintln!("VIOLATION: async delivery diverges from the callback server at {tasks}");
            violations += 1;
        }
        let expected_len = MSGS as u64 * MSG_LEN;
        for (i, &d) in aio.digests.iter().enumerate() {
            if d != expected_digest(SEED, i, expected_len) {
                eprintln!("VIOLATION: task {i} of {tasks} delivered a wrong digest");
                violations += 1;
                break;
            }
        }
        if stats.tasks_completed != tasks as u64 {
            eprintln!(
                "VIOLATION: only {} of {tasks} async tasks completed",
                stats.tasks_completed
            );
            violations += 1;
        }
        if tasks == 10_000 && ratio < 0.9 {
            eprintln!(
                "VIOLATION: 10k-task async throughput is {:.3}x the callback baseline (< 0.9x)",
                ratio
            );
            violations += 1;
        }
    }

    // Real-thread backend: the same task code on one actual service
    // thread. No callback twin exists here — the gate is completion
    // and digest identity, the throughput line is context.
    let thr_tasks = if quick() { 1_000 } else { 10_000 };
    let (digests, wall) = threaded_fan_in(thr_tasks, 4);
    let bytes = thr_tasks as u64 * MSGS as u64 * MSG_LEN;
    println!(
        "{:>8} {:>10} {:>12.1} {:>12} {:>8} {:>9} {:>11}",
        thr_tasks,
        "thread",
        bytes as f64 * 8.0 / wall / 1e6,
        "-",
        "-",
        "-",
        "checked"
    );
    let expected_len = MSGS as u64 * MSG_LEN;
    for (i, &d) in digests.iter().enumerate() {
        if d != expected_digest(SEED, i, expected_len) {
            eprintln!("VIOLATION: threaded task {i} delivered a wrong digest");
            violations += 1;
            break;
        }
    }

    println!();
    println!("expected shape: the async server tracks the callback server's throughput");
    println!("within noise at both scales — the waker registry and op queue are O(ready),");
    println!("not O(tasks) — and digests never change with the consumption model.");
    if violations > 0 {
        eprintln!("{violations} async_scale violation(s)");
        std::process::exit(1);
    }
}
