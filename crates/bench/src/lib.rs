//! Shared infrastructure for the figure/table regeneration harnesses.
//!
//! Every table and figure in the paper's evaluation (§IV-B) has a bench
//! target in `benches/` that sweeps the same parameters the paper swept
//! and prints rows in the same structure. Harness knobs:
//!
//! * `EXS_BENCH_RUNS` — repetitions per configuration (default 5; the
//!   paper used 10).
//! * `EXS_BENCH_MESSAGES` — messages per run (default 300).
//! * `EXS_BENCH_QUICK=1` — shrink everything for smoke testing.
//!
//! Results are printed as mean ± 95% confidence interval, matching the
//! paper's reporting.

use blast::{run_blast_seeds, BlastReport, BlastSpec, Summary};

/// Number of repetitions per configuration.
pub fn runs() -> usize {
    if quick() {
        2
    } else {
        std::env::var("EXS_BENCH_RUNS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(5)
    }
}

/// Messages per run.
pub fn messages() -> usize {
    if quick() {
        60
    } else {
        std::env::var("EXS_BENCH_MESSAGES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(300)
    }
}

/// Smoke-test mode.
pub fn quick() -> bool {
    std::env::var("EXS_BENCH_QUICK")
        .map(|v| v == "1")
        .unwrap_or(false)
}

/// The seed set for one configuration.
pub fn seeds(base: u64) -> Vec<u64> {
    (0..runs() as u64).map(|i| base * 1000 + i + 1).collect()
}

/// Runs one spec over the harness seed set.
pub fn run_config(spec: &BlastSpec, seed_base: u64) -> Vec<BlastReport> {
    run_blast_seeds(spec, &seeds(seed_base))
}

/// Extracts a summarized metric from a report set.
pub fn summarize(reports: &[BlastReport], f: impl Fn(&BlastReport) -> f64) -> Summary {
    Summary::of(&reports.iter().map(f).collect::<Vec<_>>())
}

/// Prints a table header in a fixed-width layout.
pub fn print_header(title: &str, columns: &[&str]) {
    println!();
    println!("=== {title} ===");
    print!("{:<22}", "");
    for c in columns {
        print!("{c:>24}");
    }
    println!();
}

/// Prints one row of summaries.
pub fn print_row(label: &str, cells: &[Summary]) {
    print!("{label:<22}");
    for s in cells {
        print!("{:>24}", format!("{:.2} ± {:.2}", s.mean, s.ci95));
    }
    println!();
}

/// Prints a free-form note under a table.
pub fn note(text: &str) {
    println!("  note: {text}");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeds_are_distinct_per_base() {
        let a = seeds(1);
        let b = seeds(2);
        assert_eq!(a.len(), runs());
        assert!(a.iter().all(|s| !b.contains(s)));
    }

    #[test]
    fn summarize_applies_projection() {
        use simnet::SimTime;
        let r = BlastReport {
            bytes: 8,
            messages: 1,
            start: SimTime::ZERO,
            end: SimTime::from_nanos(8),
            cpu_sender: 0.5,
            cpu_receiver: 0.25,
            direct_transfers: 1,
            indirect_transfers: 0,
            mode_switches: 0,
            adverts_discarded: 0,
            sender: exs::ConnStats::default(),
            receiver: exs::ConnStats::default(),
            digest: 0,
            events: 0,
            link_bandwidth_bps: 0,
            fabric: None,
        };
        let s = summarize(&[r], |r| r.cpu_sender * 100.0);
        assert_eq!(s.mean, 50.0);
    }
}
