//! Phase numbers (paper §III).
//!
//! The sender and receiver each keep a *phase number*, a Lamport-style
//! logical clock that orders ADVERT sequences with respect to bursts of
//! indirect transfers. Phases are **even during direct sequences and odd
//! during indirect sequences**; both sides start at phase 0 (direct).
//! The phase is monotonically non-decreasing on each side, which the
//! correctness proof (paper §IV-A) leans on in cases b1/b2.

/// A protocol phase number.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct Phase(pub u32);

impl Phase {
    /// The initial (direct) phase.
    pub const ZERO: Phase = Phase(0);

    /// True during a direct-transfer sequence (even phase).
    #[inline]
    pub fn is_direct(self) -> bool {
        self.0.is_multiple_of(2)
    }

    /// True during an indirect-transfer sequence (odd phase).
    #[inline]
    pub fn is_indirect(self) -> bool {
        !self.is_direct()
    }

    /// `NEXT_PHASE(p) = p + 1` (paper §III).
    #[inline]
    pub fn next(self) -> Phase {
        Phase(self.0 + 1)
    }

    /// Advances `self` to at least `other` — used when the sender learns
    /// of a newer phase from an ADVERT.
    #[inline]
    pub fn advance_to(&mut self, other: Phase) {
        if other > *self {
            *self = other;
        }
    }
}

impl std::fmt::Display for Phase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "P{}({})",
            self.0,
            if self.is_direct() {
                "direct"
            } else {
                "indirect"
            }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parity_alternates() {
        let p0 = Phase::ZERO;
        assert!(p0.is_direct());
        assert!(!p0.is_indirect());
        let p1 = p0.next();
        assert!(p1.is_indirect());
        let p2 = p1.next();
        assert!(p2.is_direct());
        assert_eq!(p2, Phase(2));
    }

    #[test]
    fn ordering_is_numeric() {
        assert!(Phase(3) > Phase(2));
        assert!(Phase(0) < Phase(1));
    }

    #[test]
    fn advance_to_is_monotone() {
        let mut p = Phase(4);
        p.advance_to(Phase(2));
        assert_eq!(p, Phase(4));
        p.advance_to(Phase(7));
        assert_eq!(p, Phase(7));
    }

    #[test]
    fn display_names_mode() {
        assert_eq!(Phase(0).to_string(), "P0(direct)");
        assert_eq!(Phase(3).to_string(), "P3(indirect)");
    }
}
