//! # aio — async/await front-end over the reactor
//!
//! The EXS API underneath is callback/poll-shaped; production Rust
//! consumes streams as futures. This module is the bridge: a small
//! deterministic single-threaded [`Executor`] owns a
//! [`crate::Reactor`] and drives tasks whose leaf futures are stream
//! operations ([`AsyncStream::send_all`], [`AsyncStream::recv_exact`],
//! [`AsyncStream::flush`], [`AsyncStream::shutdown`]) plus timers
//! ([`AioHandle::sleep`], [`timeout`]) and [`select`].
//!
//! Three design rules, detailed in DESIGN.md §16:
//!
//! 1. **Futures never touch the verbs port.** They enqueue operations
//!    and park with their task's waker; [`Executor::turn`] — the only
//!    code holding a [`crate::VerbsPort`] — applies operations, polls
//!    the reactor, routes completions back to per-channel state, and
//!    polls woken tasks. One turn is a pure function of
//!    (state, port, now), so the same application code is byte- and
//!    schedule-deterministic under the simulator ([`SimDriver`] turns
//!    timers into sim events) and a parking poll loop on the thread
//!    backend ([`Executor::run_threaded`]).
//! 2. **Readahead keeps zero-copy alive.** Each wrapped stream keeps a
//!    FIFO of chunk-sized receives posted (depth ≥ 2), so the paper's
//!    Fig. 3 advert gate stays open under async consumption and
//!    delivery stays direct; completed bytes land in a per-channel
//!    buffer that `recv_exact`/`recv_some` claim in order.
//! 3. **Cancellation is drop-safe.** Dropping a pending receive is
//!    free (bytes stay buffered). Dropping a pending send unwinds
//!    cleanly while un-committed; once bytes entered the stream the
//!    message still completes whole on the wire — a WWI is never torn
//!    mid-frame — and the sending direction is poisoned with
//!    [`crate::ExsError::Cancelled`], because delivery became
//!    ambiguous to the canceller. Delivered bytes are therefore always
//!    an exact prefix of the sent stream, on a message boundary.

mod executor;
mod handle;
mod select;
mod time;

pub use executor::{Executor, SimDriver, SimShardDriver};
pub use handle::{Accept, AioHandle, AioMux, AsyncStream, Ctl, Recv, SendAll};
pub use select::{select, Either, Select};
pub use time::{timeout, Sleep, Timeout};
