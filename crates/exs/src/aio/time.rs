//! Timers and the `timeout` combinator.
//!
//! A timer is one entry in the executor's deadline heap. Under the
//! simulator the earliest deadline is re-armed as a `SimNet` timer
//! event, so sleeps advance simulated time deterministically; on the
//! thread backend the service loop parks no longer than the earliest
//! deadline. Cancellation is lazy: dropping a [`Sleep`] removes the
//! waker entry and the heap skips the corpse.

use std::cell::RefCell;
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::task::{Context, Poll};

use crate::error::ExsError;

use super::executor::Inner;
use super::handle::AioHandle;

/// Future of [`AioHandle::sleep`]: resolves after a span of executor
/// time.
pub struct Sleep {
    inner: Rc<RefCell<Inner>>,
    dur_nanos: u64,
    id: Option<u64>,
}

impl Sleep {
    pub(crate) fn new(inner: Rc<RefCell<Inner>>, dur_nanos: u64) -> Sleep {
        Sleep {
            inner,
            dur_nanos,
            id: None,
        }
    }
}

impl Future for Sleep {
    type Output = ();

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let this = self.get_mut();
        let mut g = this.inner.borrow_mut();
        match this.id {
            None => {
                let deadline = g.now.saturating_add(this.dur_nanos);
                this.id = Some(g.arm_timer(deadline, cx.waker().clone()));
                Poll::Pending
            }
            Some(id) => match g.timer_entries.get_mut(&id) {
                Some(entry) if entry.fired => {
                    g.timer_entries.remove(&id);
                    this.id = None;
                    Poll::Ready(())
                }
                Some(entry) => {
                    entry.waker = Some(cx.waker().clone());
                    Poll::Pending
                }
                // Entry vanished (executor torn down): resolve rather
                // than hang.
                None => {
                    this.id = None;
                    Poll::Ready(())
                }
            },
        }
    }
}

impl Drop for Sleep {
    fn drop(&mut self) {
        if let Some(id) = self.id {
            self.inner.borrow_mut().cancel_timer(id);
        }
    }
}

/// Bounds `fut` by `dur` of executor time: `Ok(output)` if it
/// completes first, `Err(ExsError::TimedOut)` otherwise. On timeout
/// the inner future is dropped with the returned [`Timeout`], which
/// triggers its cancellation path — safe for every aio future (see
/// DESIGN.md §16).
pub fn timeout<F: Future>(handle: &AioHandle, dur: std::time::Duration, fut: F) -> Timeout<F> {
    Timeout {
        fut,
        sleep: handle.sleep(dur),
    }
}

/// Future of [`timeout`].
pub struct Timeout<F> {
    fut: F,
    sleep: Sleep,
}

impl<F: Future> Future for Timeout<F> {
    type Output = Result<F::Output, ExsError>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        // Safety: neither projected field is moved out of `this`; the
        // inner future stays pinned inside `Timeout` until drop.
        let this = unsafe { self.get_unchecked_mut() };
        let fut = unsafe { Pin::new_unchecked(&mut this.fut) };
        if let Poll::Ready(out) = fut.poll(cx) {
            return Poll::Ready(Ok(out));
        }
        if let Poll::Ready(()) = Pin::new(&mut this.sleep).poll(cx) {
            return Poll::Ready(Err(ExsError::TimedOut));
        }
        Poll::Pending
    }
}
