//! The deterministic single-threaded executor and its reactor pump.
//!
//! One [`Executor`] owns one [`Reactor`] plus every piece of aio state
//! behind a single `Rc<RefCell<..>>`: per-channel receive buffers, the
//! queued-operation list, the timer heap and the task slab. Futures
//! never touch the verbs backend — they enqueue operations and park
//! with a waker; [`Executor::turn`] applies the operations against the
//! caller's [`VerbsPort`], polls the reactor, routes completions back
//! to channel state, fires due timers and polls woken tasks, looping
//! until the whole system is quiescent. Because one `turn` is a pure
//! function of (state, port, now), the executor is byte- and
//! schedule-deterministic under the simulator and a plain parking poll
//! loop over the thread fabric — the same application code runs on
//! both.

use std::cell::RefCell;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, VecDeque};
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::task::{Context, Poll, Wake, Waker};

use parking_lot::Mutex;
use rdma_verbs::Access;

use crate::error::ExsError;
use crate::mempool::{MemPool, MemPoolConfig, MrLease};
use crate::mux::MuxEvent;
use crate::port::VerbsPort;
use crate::reactor::{ConnId, MuxId, Reactor, Readiness};
use crate::stats::AioStats;
use crate::stream::ExsEvent;

use super::handle::AioHandle;

/// Default readahead chunk size for a channel's posted receives.
pub(crate) const DEFAULT_CHUNK: u32 = 16 << 10;
/// Default readahead depth (posted receives kept outstanding).
pub(crate) const DEFAULT_DEPTH: usize = 4;

type TaskFut = Pin<Box<dyn Future<Output = ()>>>;

/// Identifies one byte-stream channel the executor manages: either a
/// reactor connection or one stream of a hosted mux endpoint.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub(crate) enum ChanKey {
    /// A [`ConnId`] slab index.
    Conn(u32),
    /// A stream of a hosted [`MuxId`].
    Mux { mux: u32, stream: u32 },
}

/// Operations futures enqueue for the next `turn` to apply with the
/// port. Kept FIFO so a task's `send_all` → `shutdown` sequence hits
/// the socket in program order.
pub(crate) enum Action {
    Open { key: ChanKey },
    Send { key: ChanKey, op: u64 },
    Flush { key: ChanKey, op: u64 },
    Shutdown { key: ChanKey, op: u64 },
}

/// How much a parked receive needs before it resolves.
#[derive(Clone, Copy, Debug)]
pub(crate) enum RecvMode {
    /// Exactly `n` bytes (MSG_WAITALL shape).
    Exact(usize),
    /// At least one byte, up to `max`.
    Some(usize),
}

pub(crate) struct RecvWaiter {
    pub(crate) op: u64,
    pub(crate) mode: RecvMode,
    pub(crate) waker: Option<Waker>,
}

pub(crate) struct SendOp {
    pub(crate) data: Option<Vec<u8>>,
    pub(crate) lease: Option<MrLease>,
    pub(crate) issued: bool,
    pub(crate) done: Option<Result<(), ExsError>>,
    pub(crate) waker: Option<Waker>,
    /// The owning future was dropped after the bytes committed; the
    /// completion frees the lease and the entry silently.
    pub(crate) detached: bool,
}

pub(crate) struct CtlOp {
    pub(crate) done: Option<Result<(), ExsError>>,
    pub(crate) waker: Option<Waker>,
}

/// Per-channel aio state: the readahead receive queue feeding a byte
/// buffer, plus in-flight send/control operations and parked readers.
///
/// The readahead queue is what keeps the paper's Fig. 3 advert gate
/// open under async consumption: `depth` chunk-sized receives stay
/// posted (recycled FIFO, like the reactor-server pattern), so an
/// ADVERT is already on the wire when the sender plans its next
/// transfer and delivery stays zero-copy. It is also what makes a
/// cancelled `recv_exact` trivially safe: bytes land in `rx_buf`
/// regardless of who is waiting, and an abandoned reader simply leaves
/// them for the next one.
pub(crate) struct Chan {
    pub(crate) chunk: u32,
    pub(crate) depth: usize,
    opened: bool,
    /// Leased readahead buffers; index = slot.
    slots: Vec<MrLease>,
    free: Vec<usize>,
    /// Outstanding readahead receives in posting order (token, slot).
    posted: VecDeque<(u64, usize)>,
    pub(crate) rx_buf: VecDeque<u8>,
    pub(crate) eof: bool,
    /// Surfaced through `AioMux::accept` already (mux streams only).
    pub(crate) announced: bool,
    pub(crate) error: Option<ExsError>,
    /// Send-direction poison left by an unclean cancellation.
    pub(crate) poison: Option<ExsError>,
    pub(crate) shutdown_requested: bool,
    pub(crate) send_ops: HashMap<u64, SendOp>,
    pub(crate) ctl_ops: HashMap<u64, CtlOp>,
    pub(crate) read_waiters: VecDeque<RecvWaiter>,
}

impl Chan {
    fn new(chunk: u32, depth: usize) -> Chan {
        Chan {
            chunk,
            depth: depth.max(1),
            opened: false,
            slots: Vec::new(),
            free: Vec::new(),
            posted: VecDeque::new(),
            rx_buf: VecDeque::new(),
            eof: false,
            announced: false,
            error: None,
            poison: None,
            shutdown_requested: false,
            send_ops: HashMap::new(),
            ctl_ops: HashMap::new(),
            read_waiters: VecDeque::new(),
        }
    }

    /// The head reader resolves as soon as its byte requirement is met
    /// (or can never be met); wake it so the executor re-polls it.
    pub(crate) fn wake_readers(&mut self) {
        if self.error.is_some() {
            for w in self.read_waiters.iter_mut() {
                if let Some(w) = w.waker.take() {
                    w.wake();
                }
            }
            return;
        }
        if let Some(head) = self.read_waiters.front_mut() {
            let satisfiable = self.eof
                || match head.mode {
                    RecvMode::Exact(n) => self.rx_buf.len() >= n,
                    RecvMode::Some(_) => !self.rx_buf.is_empty(),
                };
            if satisfiable {
                if let Some(w) = head.waker.take() {
                    w.wake();
                }
            }
        }
    }

    fn fail_all(&mut self, err: &ExsError) {
        if self.error.is_none() {
            self.error = Some(err.clone());
        }
        for (_, op) in self.send_ops.iter_mut() {
            if op.done.is_none() && !op.detached {
                op.done = Some(Err(err.clone()));
                op.lease = None;
                if let Some(w) = op.waker.take() {
                    w.wake();
                }
            }
        }
        for (_, op) in self.ctl_ops.iter_mut() {
            if op.done.is_none() {
                op.done = Some(Err(err.clone()));
                if let Some(w) = op.waker.take() {
                    w.wake();
                }
            }
        }
        self.wake_readers();
    }
}

/// Accept state for one hosted mux endpoint: streams that saw their
/// first activity queue up for `accept()`.
pub(crate) struct MuxReg {
    pub(crate) accept_ready: VecDeque<u32>,
    pub(crate) accept_waiters: Vec<Waker>,
    pub(crate) error: Option<ExsError>,
}

pub(crate) struct TimerEntry {
    pub(crate) fired: bool,
    pub(crate) waker: Option<Waker>,
}

/// The shared ready queue task wakers push onto. Lives outside the
/// `RefCell` so a waker may fire while executor state is borrowed
/// (e.g. waking a reader from inside event dispatch).
pub(crate) struct ReadyQueue {
    q: Mutex<VecDeque<usize>>,
    wakeups: AtomicU64,
}

impl ReadyQueue {
    fn new() -> Arc<ReadyQueue> {
        Arc::new(ReadyQueue {
            q: Mutex::new(VecDeque::new()),
            wakeups: AtomicU64::new(0),
        })
    }

    fn push_wake(&self, id: usize) {
        self.wakeups.fetch_add(1, Ordering::Relaxed);
        self.q.lock().push_back(id);
    }

    pub(crate) fn push_spawn(&self, id: usize) {
        self.q.lock().push_back(id);
    }

    fn pop(&self) -> Option<usize> {
        self.q.lock().pop_front()
    }

    fn wakeups(&self) -> u64 {
        self.wakeups.load(Ordering::Relaxed)
    }
}

struct TaskWaker {
    id: usize,
    ready: Arc<ReadyQueue>,
}

impl Wake for TaskWaker {
    fn wake(self: Arc<Self>) {
        self.ready.push_wake(self.id);
    }

    fn wake_by_ref(self: &Arc<Self>) {
        self.ready.push_wake(self.id);
    }
}

/// Everything behind the executor's `Rc<RefCell<..>>`. Futures reach
/// it through [`AioHandle`] clones; the executor's turn loop is the
/// only code that also holds a [`VerbsPort`].
pub(crate) struct Inner {
    pub(crate) reactor: Reactor,
    pub(crate) pool: MemPool,
    pub(crate) chans: HashMap<ChanKey, Chan>,
    pub(crate) muxes: HashMap<u32, MuxReg>,
    pub(crate) actions: VecDeque<Action>,
    timers: BinaryHeap<Reverse<(u64, u64)>>,
    pub(crate) timer_entries: HashMap<u64, TimerEntry>,
    pub(crate) next_op: u64,
    pub(crate) now: u64,
    pub(crate) stats: AioStats,
    tasks: Vec<Option<TaskFut>>,
    free_tasks: Vec<usize>,
    outstanding: usize,
    scratch: Vec<u8>,
    /// Reusable readiness buffer for [`Inner::pump_reactor`] — the
    /// steady-state pump allocates nothing per poll.
    ready_buf: Vec<(ConnId, Readiness)>,
}

impl Inner {
    pub(crate) fn op_id(&mut self) -> u64 {
        self.next_op += 1;
        self.next_op
    }

    pub(crate) fn chan_mut(&mut self, key: ChanKey) -> Option<&mut Chan> {
        self.chans.get_mut(&key)
    }

    pub(crate) fn ensure_chan(&mut self, key: ChanKey, chunk: u32, depth: usize) {
        if let std::collections::hash_map::Entry::Vacant(e) = self.chans.entry(key) {
            e.insert(Chan::new(chunk, depth));
            self.actions.push_back(Action::Open { key });
        }
    }

    pub(crate) fn spawn_task(&mut self, fut: TaskFut) -> usize {
        let id = match self.free_tasks.pop() {
            Some(id) => {
                self.tasks[id] = Some(fut);
                id
            }
            None => {
                self.tasks.push(Some(fut));
                self.tasks.len() - 1
            }
        };
        self.outstanding += 1;
        self.stats.tasks_spawned += 1;
        id
    }

    pub(crate) fn arm_timer(&mut self, deadline: u64, waker: Waker) -> u64 {
        let id = self.op_id();
        self.timers.push(Reverse((deadline, id)));
        self.timer_entries.insert(
            id,
            TimerEntry {
                fired: false,
                waker: Some(waker),
            },
        );
        self.stats.timers_set += 1;
        id
    }

    pub(crate) fn cancel_timer(&mut self, id: u64) {
        if let Some(entry) = self.timer_entries.remove(&id) {
            if !entry.fired {
                self.stats.timer_cancels += 1;
            }
        }
        // The heap entry is left behind and skipped lazily.
    }

    fn fire_due(&mut self) -> bool {
        let mut fired = false;
        while let Some(&Reverse((deadline, id))) = self.timers.peek() {
            if deadline > self.now {
                break;
            }
            self.timers.pop();
            if let Some(entry) = self.timer_entries.get_mut(&id) {
                if !entry.fired {
                    entry.fired = true;
                    self.stats.timer_fires += 1;
                    if let Some(w) = entry.waker.take() {
                        w.wake();
                        fired = true;
                    }
                }
            }
        }
        fired
    }

    fn next_deadline(&mut self) -> Option<u64> {
        while let Some(&Reverse((deadline, id))) = self.timers.peek() {
            match self.timer_entries.get(&id) {
                Some(entry) if !entry.fired => return Some(deadline),
                _ => {
                    self.timers.pop();
                }
            }
        }
        None
    }

    /// Applies every queued operation against the port, in FIFO order.
    fn apply_actions(&mut self, port: &mut impl VerbsPort) -> bool {
        let mut acted = false;
        while let Some(action) = self.actions.pop_front() {
            acted = true;
            match action {
                Action::Open { key } => self.apply_open(port, key),
                Action::Send { key, op } => self.apply_send(port, key, op),
                Action::Flush { key, op } => self.apply_ctl(port, key, op, false),
                Action::Shutdown { key, op } => self.apply_ctl(port, key, op, true),
            }
        }
        acted
    }

    fn apply_open(&mut self, port: &mut impl VerbsPort, key: ChanKey) {
        let Inner {
            reactor,
            pool,
            chans,
            next_op,
            ..
        } = self;
        let Some(chan) = chans.get_mut(&key) else {
            return;
        };
        if chan.opened {
            return;
        }
        chan.opened = true;
        for _ in 0..chan.depth {
            let lease = pool.acquire(port, chan.chunk as usize, Access::local_remote_write());
            chan.slots.push(lease);
        }
        for slot in 0..chan.slots.len() {
            *next_op += 1;
            let token = *next_op;
            let lease = &chan.slots[slot];
            match key {
                ChanKey::Conn(c) => match reactor.try_conn_mut(ConnId(c)) {
                    Some(sock) => {
                        sock.exs_recv(port, lease.info(), 0, chan.chunk, false, token);
                        chan.posted.push_back((token, slot));
                    }
                    None => {
                        chan.fail_all(&ExsError::Stale);
                        return;
                    }
                },
                ChanKey::Mux { mux, stream } => match reactor.try_mux_mut(MuxId(mux)) {
                    Some(ep) => {
                        match ep.mux_recv(port, stream, lease.info(), 0, chan.chunk, false, token) {
                            Ok(()) => chan.posted.push_back((token, slot)),
                            Err(e) => {
                                chan.fail_all(&e);
                                return;
                            }
                        }
                    }
                    None => {
                        chan.fail_all(&ExsError::Stale);
                        return;
                    }
                },
            }
        }
    }

    fn apply_send(&mut self, port: &mut impl VerbsPort, key: ChanKey, op: u64) {
        let Inner {
            reactor,
            pool,
            chans,
            ..
        } = self;
        let Some(chan) = chans.get_mut(&key) else {
            return;
        };
        let Some(entry) = chan.send_ops.get_mut(&op) else {
            return; // cancelled between queue and apply
        };
        let fail = chan.error.clone().or_else(|| chan.poison.clone());
        if let Some(err) = fail {
            entry.done = Some(Err(err));
            if let Some(w) = entry.waker.take() {
                w.wake();
            }
            return;
        }
        let data = entry.data.take().unwrap_or_default();
        if data.is_empty() {
            entry.done = Some(Ok(()));
            if let Some(w) = entry.waker.take() {
                w.wake();
            }
            return;
        }
        let complete_err = |entry: &mut SendOp, err: ExsError| {
            entry.done = Some(Err(err));
            entry.lease = None;
            if let Some(w) = entry.waker.take() {
                w.wake();
            }
        };
        let lease = pool.acquire(port, data.len(), Access::NONE);
        if let Err(e) = lease.write(port, 0, &data) {
            complete_err(entry, ExsError::Verbs(e));
            return;
        }
        match key {
            ChanKey::Conn(c) => match reactor.try_conn_mut(ConnId(c)) {
                Some(sock) if !sock.is_broken() && !sock.send_closed() => {
                    sock.exs_send(port, lease.info(), 0, data.len() as u64, op);
                    entry.lease = Some(lease);
                    entry.issued = true;
                }
                Some(sock) => {
                    let err = sock.last_error().cloned().unwrap_or(ExsError::Broken);
                    complete_err(entry, err);
                }
                None => complete_err(entry, ExsError::Stale),
            },
            ChanKey::Mux { mux, stream } => match reactor.try_mux_mut(MuxId(mux)) {
                Some(ep) => match ep.mux_send(port, stream, lease.info(), 0, data.len() as u64, op)
                {
                    Ok(()) => {
                        entry.lease = Some(lease);
                        entry.issued = true;
                    }
                    Err(e) => complete_err(entry, e),
                },
                None => complete_err(entry, ExsError::Stale),
            },
        }
    }

    fn apply_ctl(&mut self, port: &mut impl VerbsPort, key: ChanKey, op: u64, shutdown: bool) {
        let Inner { reactor, chans, .. } = self;
        let Some(chan) = chans.get_mut(&key) else {
            return;
        };
        let Some(entry) = chan.ctl_ops.get_mut(&op) else {
            return;
        };
        let mut result = Ok(());
        match key {
            ChanKey::Conn(c) => match reactor.try_conn_mut(ConnId(c)) {
                Some(sock) => {
                    if shutdown {
                        if !sock.send_closed() {
                            sock.exs_shutdown(port);
                        }
                    } else {
                        sock.tx_flush(port);
                    }
                }
                None => result = Err(ExsError::Stale),
            },
            ChanKey::Mux { mux, stream } => match reactor.try_mux_mut(MuxId(mux)) {
                Some(ep) => {
                    if shutdown {
                        ep.close_stream(port, stream);
                    } else {
                        ep.progress(port);
                    }
                }
                None => result = Err(ExsError::Stale),
            },
        }
        entry.done = Some(result);
        if let Some(w) = entry.waker.take() {
            w.wake();
        }
    }

    /// One reactor poll plus completion routing. Returns true when any
    /// channel state changed (events consumed, bytes buffered, EOF or
    /// error observed).
    fn pump_reactor(&mut self, port: &mut impl VerbsPort) -> bool {
        let mut ready = std::mem::take(&mut self.ready_buf);
        self.reactor.poll_into(port, &mut ready);
        let mut progressed = false;
        for &(conn, r) in &ready {
            if !(r.readable || r.closed || r.error) {
                continue;
            }
            let events = match self.reactor.try_take_events(conn) {
                Ok(events) => events,
                Err(_) => continue,
            };
            let key = ChanKey::Conn(conn.0);
            if !self.chans.contains_key(&key) {
                // Connection accepted into the reactor but never
                // wrapped in an AsyncStream: nobody is listening.
                continue;
            }
            progressed |= !events.is_empty();
            for ev in events {
                self.dispatch_conn_event(port, conn, ev);
            }
            // Dispatching can generate follow-on events (a readahead
            // repost satisfied straight from buffered ring data, the
            // end-of-stream completion behind it). Drain to quiescence
            // before consulting the level-triggered closed/error
            // fallback below — otherwise `peer_closed()` can flip true
            // while data events are still queued, and marking the
            // channel EOF here would jump that data.
            while let Ok(more) = self.reactor.try_take_events(conn) {
                if more.is_empty() {
                    break;
                }
                progressed = true;
                for ev in more {
                    self.dispatch_conn_event(port, conn, ev);
                }
            }
            let (closed, error) = match self.reactor.try_conn(conn) {
                Some(sock) => (
                    sock.peer_closed(),
                    sock.is_broken()
                        .then(|| sock.last_error().cloned().unwrap_or(ExsError::Broken)),
                ),
                None => (false, Some(ExsError::Stale)),
            };
            let chan = self.chans.get_mut(&key).expect("checked above");
            if let Some(err) = error {
                if chan.error.is_none() {
                    chan.fail_all(&err);
                    progressed = true;
                }
            } else if closed && !chan.eof {
                chan.eof = true;
                progressed = true;
            }
            chan.wake_readers();
        }
        self.ready_buf = ready;
        let mux_ids: Vec<u32> = self.muxes.keys().copied().collect();
        for mux in mux_ids {
            let events = match self.reactor.try_take_mux_events(MuxId(mux)) {
                Ok(events) => events,
                Err(_) => continue,
            };
            progressed |= !events.is_empty();
            for ev in events {
                self.dispatch_mux_event(port, mux, ev);
            }
        }
        progressed
    }

    fn dispatch_conn_event(&mut self, port: &mut impl VerbsPort, conn: ConnId, ev: ExsEvent) {
        let key = ChanKey::Conn(conn.0);
        match ev {
            ExsEvent::RecvComplete { id, len } => {
                self.readahead_complete(port, key, id, len);
            }
            ExsEvent::SendComplete { id, .. } => {
                self.send_complete(key, id);
            }
            ExsEvent::PeerClosed => {
                if let Some(chan) = self.chans.get_mut(&key) {
                    chan.eof = true;
                    chan.wake_readers();
                }
            }
            ExsEvent::ConnectionError => {
                let err = self
                    .reactor
                    .try_conn(conn)
                    .and_then(|s| s.last_error().cloned())
                    .unwrap_or(ExsError::Broken);
                if let Some(chan) = self.chans.get_mut(&key) {
                    chan.fail_all(&err);
                }
            }
        }
    }

    fn dispatch_mux_event(&mut self, port: &mut impl VerbsPort, mux: u32, ev: MuxEvent) {
        match ev {
            MuxEvent::RecvComplete { stream, id, len } => {
                let key = ChanKey::Mux { mux, stream };
                self.readahead_complete(port, key, id, len);
                self.maybe_announce(mux, stream);
            }
            MuxEvent::SendComplete { stream, id, .. } => {
                self.send_complete(ChanKey::Mux { mux, stream }, id);
            }
            MuxEvent::StreamClosed { stream } => {
                let key = ChanKey::Mux { mux, stream };
                if let Some(chan) = self.chans.get_mut(&key) {
                    chan.eof = true;
                    chan.wake_readers();
                }
                self.maybe_announce(mux, stream);
            }
            MuxEvent::TransportError { .. } => {
                let err = self
                    .reactor
                    .try_mux(MuxId(mux))
                    .and_then(|ep| ep.last_error().cloned())
                    .unwrap_or(ExsError::Broken);
                let keys: Vec<ChanKey> = self
                    .chans
                    .keys()
                    .copied()
                    .filter(|k| matches!(k, ChanKey::Mux { mux: m, .. } if *m == mux))
                    .collect();
                for key in keys {
                    if let Some(chan) = self.chans.get_mut(&key) {
                        chan.fail_all(&err);
                    }
                }
                if let Some(reg) = self.muxes.get_mut(&mux) {
                    reg.error = Some(err);
                    for w in reg.accept_waiters.drain(..) {
                        w.wake();
                    }
                }
            }
        }
    }

    /// Routes one completed readahead receive: copy the bytes out,
    /// recycle the slot, keep the queue at depth while the stream is
    /// alive.
    fn readahead_complete(&mut self, port: &mut impl VerbsPort, key: ChanKey, id: u64, len: u32) {
        let Inner {
            reactor,
            chans,
            next_op,
            scratch,
            ..
        } = self;
        let Some(chan) = chans.get_mut(&key) else {
            return;
        };
        let Some(pos) = chan.posted.iter().position(|&(token, _)| token == id) else {
            return;
        };
        // Receives complete in posting order; tolerate gaps anyway.
        let (_, slot) = chan.posted.remove(pos).expect("position just found");
        if len > 0 {
            scratch.resize(len as usize, 0);
            if chan.slots[slot].read(port, 0, scratch).is_ok() {
                chan.rx_buf.extend(scratch.iter().copied());
            }
        } else {
            // Zero bytes at completion means end-of-stream (read(2)
            // semantics); stop recycling.
            chan.eof = true;
        }
        chan.free.push(slot);
        if !chan.eof && chan.error.is_none() {
            while let Some(slot) = chan.free.pop() {
                *next_op += 1;
                let token = *next_op;
                let lease = &chan.slots[slot];
                let posted = match key {
                    ChanKey::Conn(c) => match reactor.try_conn_mut(ConnId(c)) {
                        Some(sock) => {
                            sock.exs_recv(port, lease.info(), 0, chan.chunk, false, token);
                            true
                        }
                        None => false,
                    },
                    ChanKey::Mux { mux, stream } => match reactor.try_mux_mut(MuxId(mux)) {
                        Some(ep) => ep
                            .mux_recv(port, stream, lease.info(), 0, chan.chunk, false, token)
                            .is_ok(),
                        None => false,
                    },
                };
                if posted {
                    chan.posted.push_back((token, slot));
                } else {
                    chan.free.push(slot);
                    break;
                }
            }
        }
        chan.wake_readers();
    }

    fn send_complete(&mut self, key: ChanKey, id: u64) {
        let Some(chan) = self.chans.get_mut(&key) else {
            return;
        };
        let Some(entry) = chan.send_ops.get_mut(&id) else {
            return;
        };
        entry.lease = None;
        if entry.detached {
            chan.send_ops.remove(&id);
            return;
        }
        if entry.done.is_none() {
            entry.done = Some(Ok(()));
        }
        if let Some(w) = entry.waker.take() {
            w.wake();
        }
    }

    /// A mux stream's first observed activity surfaces it through
    /// `accept()`.
    fn maybe_announce(&mut self, mux: u32, stream: u32) {
        let key = ChanKey::Mux { mux, stream };
        let Some(chan) = self.chans.get_mut(&key) else {
            return;
        };
        if chan.announced {
            return;
        }
        chan.announced = true;
        if let Some(reg) = self.muxes.get_mut(&mux) {
            reg.accept_ready.push_back(stream);
            for w in reg.accept_waiters.drain(..) {
                w.wake();
            }
        }
    }

    /// Drop-safe send cancellation (the rules of DESIGN.md §16): a
    /// queued send unwinds for free; an issued one is revoked through
    /// `exs_cancel` when no byte entered the stream; otherwise the
    /// message completes whole on the wire (a WWI is never torn
    /// mid-frame) and the channel's sending direction is poisoned,
    /// because delivery became ambiguous to the canceller.
    pub(crate) fn cancel_send(&mut self, key: ChanKey, op: u64) {
        let Some(chan) = self.chans.get_mut(&key) else {
            return;
        };
        let Some(entry) = chan.send_ops.get_mut(&op) else {
            return;
        };
        if entry.done.is_some() {
            chan.send_ops.remove(&op);
            return;
        }
        if !entry.issued {
            chan.send_ops.remove(&op);
            self.actions
                .retain(|a| !matches!(a, Action::Send { op: o, .. } if *o == op));
            self.stats.cancels_clean += 1;
            return;
        }
        if let ChanKey::Conn(c) = key {
            if let Some(sock) = self.reactor.try_conn_mut(ConnId(c)) {
                if sock.exs_cancel(op) {
                    chan.send_ops.remove(&op);
                    self.stats.cancels_clean += 1;
                    return;
                }
            }
        }
        entry.detached = true;
        entry.waker = None;
        chan.poison = Some(ExsError::Cancelled);
        self.stats.cancels_poisoned += 1;
    }

    /// Cancellation of a parked receive is always clean: unclaimed
    /// bytes stay in the channel buffer for the next reader.
    pub(crate) fn cancel_recv(&mut self, key: ChanKey, op: u64) {
        let Some(chan) = self.chans.get_mut(&key) else {
            return;
        };
        let before = chan.read_waiters.len();
        chan.read_waiters.retain(|w| w.op != op);
        if chan.read_waiters.len() != before {
            self.stats.cancels_clean += 1;
        }
        if let Some(chan) = self.chans.get_mut(&key) {
            chan.wake_readers();
        }
    }

    pub(crate) fn cancel_ctl(&mut self, key: ChanKey, op: u64) {
        let Some(chan) = self.chans.get_mut(&key) else {
            return;
        };
        if chan
            .ctl_ops
            .get(&op)
            .is_some_and(|entry| entry.done.is_none())
        {
            // Not applied yet: unwind the queued action too.
            chan.ctl_ops.remove(&op);
            self.actions.retain(|a| {
                !matches!(a, Action::Flush { op: o, .. } | Action::Shutdown { op: o, .. } if *o == op)
            });
            self.stats.cancels_clean += 1;
        } else {
            chan.ctl_ops.remove(&op);
        }
    }
}

/// A small deterministic single-threaded executor over one
/// [`Reactor`].
///
/// On the simulator, wrap it in a [`SimDriver`] and run it as a
/// `NodeApp`: timers become simulator events and whole runs stay byte-
/// and schedule-deterministic. On the thread fabric, call
/// [`Executor::run_threaded`] from one service thread: the same turn
/// function runs behind a parking poll loop ([`rdma_verbs::threaded::ThreadNode::wait_any`]).
pub struct Executor {
    inner: Rc<RefCell<Inner>>,
    ready: Arc<ReadyQueue>,
}

impl Executor {
    /// Wraps a reactor with a fresh default staging pool.
    pub fn new(reactor: Reactor) -> Executor {
        Executor::with_pool(reactor, MemPool::new(MemPoolConfig::default()))
    }

    /// Wraps a reactor, staging sends and readahead receives through
    /// `pool` (share it with other endpoints on the node to share the
    /// pin-down cache).
    pub fn with_pool(reactor: Reactor, pool: MemPool) -> Executor {
        Executor {
            inner: Rc::new(RefCell::new(Inner {
                reactor,
                pool,
                chans: HashMap::new(),
                muxes: HashMap::new(),
                actions: VecDeque::new(),
                timers: BinaryHeap::new(),
                timer_entries: HashMap::new(),
                next_op: 0,
                now: 0,
                stats: AioStats::default(),
                tasks: Vec::new(),
                free_tasks: Vec::new(),
                outstanding: 0,
                scratch: Vec::new(),
                ready_buf: Vec::new(),
            })),
            ready: ReadyQueue::new(),
        }
    }

    /// A cloneable handle for spawning tasks and wrapping streams.
    pub fn handle(&self) -> AioHandle {
        AioHandle::new(self.inner.clone(), self.ready.clone())
    }

    /// Direct access to the owned reactor (accept connections, harvest
    /// stats).
    pub fn with_reactor<R>(&self, f: impl FnOnce(&mut Reactor) -> R) -> R {
        f(&mut self.inner.borrow_mut().reactor)
    }

    /// True when every spawned task has run to completion.
    pub fn idle(&self) -> bool {
        self.inner.borrow().outstanding == 0
    }

    /// True when every task has completed *and* no registered endpoint
    /// still owes traffic to the wire ([`Reactor::has_unsent`]). The
    /// distinction matters at teardown: a shutdown's FIN can be queued
    /// behind flow control after the task that requested it has
    /// finished, and a driver that stops at [`Executor::idle`] would
    /// strand the peer waiting for end-of-stream.
    pub fn drained(&self) -> bool {
        let inner = self.inner.borrow();
        inner.outstanding == 0 && !inner.reactor.has_unsent()
    }

    /// Tasks spawned and not yet complete.
    pub fn tasks_outstanding(&self) -> usize {
        self.inner.borrow().outstanding
    }

    /// Executor counters, with the waker-side wake count folded in.
    pub fn stats(&self) -> AioStats {
        let mut stats = self.inner.borrow().stats.clone();
        stats.wakeups = self.ready.wakeups();
        stats
    }

    /// One executor turn: advance the clock to `now_nanos`, fire due
    /// timers, apply queued operations, poll the reactor and route
    /// completions, poll every woken task — looping until nothing
    /// progresses and the reactor has no deferred backlog. Returns the
    /// next timer deadline, for the driver to park against.
    pub fn turn(&mut self, port: &mut impl VerbsPort, now_nanos: u64) -> Option<u64> {
        {
            let mut inner = self.inner.borrow_mut();
            if now_nanos > inner.now {
                inner.now = now_nanos;
            }
            inner.stats.turns += 1;
        }
        loop {
            let mut progressed = false;
            progressed |= self.inner.borrow_mut().fire_due();
            progressed |= self.inner.borrow_mut().apply_actions(port);
            progressed |= self.inner.borrow_mut().pump_reactor(port);
            progressed |= self.run_ready();
            if !progressed && !self.inner.borrow().reactor.has_backlog() {
                break;
            }
        }
        self.inner.borrow_mut().next_deadline()
    }

    /// Polls every task on the ready queue (and any they wake or
    /// spawn) until the queue is empty.
    fn run_ready(&mut self) -> bool {
        let mut ran = false;
        while let Some(id) = self.ready.pop() {
            let fut = {
                let mut inner = self.inner.borrow_mut();
                match inner.tasks.get_mut(id) {
                    Some(slot) => slot.take(),
                    None => None,
                }
            };
            // A duplicate wake for a task already completed (or being
            // polled) resolves to nothing.
            let Some(mut fut) = fut else {
                continue;
            };
            ran = true;
            let waker = Waker::from(Arc::new(TaskWaker {
                id,
                ready: self.ready.clone(),
            }));
            self.inner.borrow_mut().stats.polls += 1;
            let mut cx = Context::from_waker(&waker);
            match fut.as_mut().poll(&mut cx) {
                Poll::Ready(()) => {
                    let mut inner = self.inner.borrow_mut();
                    inner.free_tasks.push(id);
                    inner.outstanding -= 1;
                    inner.stats.tasks_completed += 1;
                }
                Poll::Pending => {
                    self.inner.borrow_mut().tasks[id] = Some(fut);
                }
            }
        }
        ran
    }

    /// Runs the executor on the calling thread over the real-thread
    /// fabric until every task completes: turn, then park on the
    /// node's completion generation (bounded by the next timer
    /// deadline), repeat. This is the "10k tasks on one service
    /// thread" loop — tasks and reactor share the caller's thread.
    pub fn run_threaded(
        &mut self,
        net: &rdma_verbs::ThreadNet,
        node: &Arc<rdma_verbs::ThreadNode>,
    ) {
        let epoch = std::time::Instant::now();
        let mut seen = node.generation();
        loop {
            let now = epoch.elapsed().as_nanos() as u64;
            let next = {
                let mut port = crate::threaded::ThreadPort::new(net, node);
                self.turn(&mut port, now)
            };
            if self.drained() {
                break;
            }
            if self.inner.borrow().reactor.has_backlog() {
                continue;
            }
            let now = epoch.elapsed().as_nanos() as u64;
            let wait = match next {
                Some(deadline) => {
                    std::time::Duration::from_nanos(deadline.saturating_sub(now).max(1))
                }
                None => std::time::Duration::from_millis(50),
            };
            seen = node.wait_any(seen, wait.min(std::time::Duration::from_millis(50)));
        }
    }
}

/// Adapts an [`Executor`] to the simulator's [`rdma_verbs::NodeApp`]
/// protocol: every wake-up and timer event runs one turn, and pending
/// timer deadlines are re-armed as simulator timer events — simulated
/// time and task time interleave deterministically.
pub struct SimDriver {
    ex: Executor,
    armed: u64,
}

impl SimDriver {
    /// Wraps an executor for `SimNet::run`.
    pub fn new(ex: Executor) -> SimDriver {
        SimDriver { ex, armed: 0 }
    }

    /// The wrapped executor.
    pub fn executor(&mut self) -> &mut Executor {
        &mut self.ex
    }

    /// Shared view of the wrapped executor.
    pub fn executor_ref(&self) -> &Executor {
        &self.ex
    }

    /// A task/stream handle onto the wrapped executor.
    pub fn handle(&self) -> AioHandle {
        self.ex.handle()
    }

    fn pump(&mut self, api: &mut rdma_verbs::NodeApi<'_>) {
        let now = api.now().as_nanos();
        let next = self.ex.turn(api, now);
        if let Some(deadline) = next {
            // Lazy re-arm: only when no earlier live timer is armed.
            // Stale fires land on an up-to-date turn and are ignored.
            if self.armed <= now || deadline < self.armed {
                api.set_timer(
                    simnet::SimDuration::from_nanos(deadline.saturating_sub(now).max(1)),
                    0,
                );
                self.armed = deadline.max(now + 1);
            }
        }
    }
}

impl rdma_verbs::NodeApp for SimDriver {
    fn on_start(&mut self, api: &mut rdma_verbs::NodeApi<'_>) {
        self.pump(api);
    }

    fn on_wake(&mut self, api: &mut rdma_verbs::NodeApi<'_>) {
        self.pump(api);
    }

    fn on_timer(&mut self, api: &mut rdma_verbs::NodeApi<'_>, _token: u64) {
        self.armed = 0;
        self.pump(api);
    }

    fn is_done(&self) -> bool {
        self.ex.drained()
    }
}

/// Drives one executor per reactor shard on a single simulated node:
/// the deterministic counterpart of N shard service threads. Every
/// wake-up and timer event runs one turn of *each* executor, in shard
/// order — on the simulator "parallel" shards interleave on one
/// timeline, so runs stay byte- and schedule-deterministic while
/// exercising exactly the sharded placement the thread backend uses.
/// The node is done only when every shard is drained
/// ([`Executor::drained`]), the pool-wide extension of the PR-9
/// teardown condition.
pub struct SimShardDriver {
    shards: Vec<Executor>,
    armed: u64,
}

impl SimShardDriver {
    /// Wraps one executor per shard for `SimNet::run`. Panics on an
    /// empty shard set.
    pub fn new(shards: Vec<Executor>) -> SimShardDriver {
        assert!(
            !shards.is_empty(),
            "a shard driver needs at least one shard"
        );
        SimShardDriver { shards, armed: 0 }
    }

    /// Number of shards driven.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// One shard's executor.
    pub fn executor(&mut self, shard: usize) -> &mut Executor {
        &mut self.shards[shard]
    }

    /// Shared view of one shard's executor.
    pub fn executor_ref(&self, shard: usize) -> &Executor {
        &self.shards[shard]
    }

    /// A task/stream handle onto one shard's executor.
    pub fn handle(&self, shard: usize) -> AioHandle {
        self.shards[shard].handle()
    }

    /// Executor counters merged across shards.
    pub fn merged_stats(&self) -> AioStats {
        let mut total = AioStats::default();
        for ex in &self.shards {
            total.merge(&ex.stats());
        }
        total
    }

    /// Per-shard executor counters, in shard order.
    pub fn per_shard_stats(&self) -> Vec<AioStats> {
        self.shards.iter().map(|ex| ex.stats()).collect()
    }

    fn pump(&mut self, api: &mut rdma_verbs::NodeApi<'_>) {
        let now = api.now().as_nanos();
        // One turn per shard, in shard order. Each turn already loops
        // to quiescence (including its reactor's deferred backlog), and
        // cross-shard traffic on the simulator arrives as later wake
        // events, so a single pass is a complete pump.
        let mut next: Option<u64> = None;
        for ex in &mut self.shards {
            let deadline = ex.turn(api, now);
            next = match (next, deadline) {
                (Some(a), Some(b)) => Some(a.min(b)),
                (a, b) => a.or(b),
            };
        }
        if let Some(deadline) = next {
            if self.armed <= now || deadline < self.armed {
                api.set_timer(
                    simnet::SimDuration::from_nanos(deadline.saturating_sub(now).max(1)),
                    0,
                );
                self.armed = deadline.max(now + 1);
            }
        }
    }
}

impl rdma_verbs::NodeApp for SimShardDriver {
    fn on_start(&mut self, api: &mut rdma_verbs::NodeApi<'_>) {
        self.pump(api);
    }

    fn on_wake(&mut self, api: &mut rdma_verbs::NodeApi<'_>) {
        self.pump(api);
    }

    fn on_timer(&mut self, api: &mut rdma_verbs::NodeApi<'_>, _token: u64) {
        self.armed = 0;
        self.pump(api);
    }

    fn is_done(&self) -> bool {
        self.shards.iter().all(|ex| ex.drained())
    }
}
