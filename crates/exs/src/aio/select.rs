//! A deterministic two-way `select`.
//!
//! Polls the left future first on every wake, so ties resolve the same
//! way on every backend — byte determinism extends to control flow.
//! The losing future is dropped with the [`Select`], which runs its
//! cancellation path (clean for receives; clean-or-poison for sends,
//! per DESIGN.md §16).

use std::future::Future;
use std::pin::Pin;
use std::task::{Context, Poll};

/// The winner of a [`select`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Either<A, B> {
    /// The first future completed first.
    Left(A),
    /// The second future completed first.
    Right(B),
}

/// Races two futures; resolves with whichever completes first (left
/// wins ties).
pub fn select<A: Future, B: Future>(a: A, b: B) -> Select<A, B> {
    Select { a, b }
}

/// Future of [`select`].
pub struct Select<A, B> {
    a: A,
    b: B,
}

impl<A: Future, B: Future> Future for Select<A, B> {
    type Output = Either<A::Output, B::Output>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        // Safety: the projected fields are never moved out; both stay
        // pinned inside `Select` until drop.
        let this = unsafe { self.get_unchecked_mut() };
        let a = unsafe { Pin::new_unchecked(&mut this.a) };
        if let Poll::Ready(out) = a.poll(cx) {
            return Poll::Ready(Either::Left(out));
        }
        let b = unsafe { Pin::new_unchecked(&mut this.b) };
        if let Poll::Ready(out) = b.poll(cx) {
            return Poll::Ready(Either::Right(out));
        }
        Poll::Pending
    }
}
