//! Handles and stream futures: the application-facing face of aio.
//!
//! An [`AioHandle`] is a cheap clone of the executor's shared state;
//! it spawns tasks and wraps reactor connections / mux streams into
//! [`AsyncStream`]s whose methods return futures. The futures follow
//! one protocol: first poll enqueues an operation and parks with the
//! task's waker; completion routing (executor turn) wakes the task;
//! the next poll observes the stored result. Dropping a pending future
//! cancels the operation under the §16 safety rules — receives unwind
//! for free, sends either unwind cleanly or poison the stream.

use std::cell::RefCell;
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::sync::Arc;
use std::task::{Context, Poll, Waker};

use crate::error::ExsError;
use crate::reactor::{ConnId, MuxId};

use super::executor::{
    Action, Chan, ChanKey, CtlOp, Inner, MuxReg, ReadyQueue, RecvMode, RecvWaiter, SendOp,
    DEFAULT_CHUNK, DEFAULT_DEPTH,
};
use super::time::Sleep;

/// A cloneable handle onto one [`super::Executor`]: spawn tasks, wrap
/// connections, create timers.
#[derive(Clone)]
pub struct AioHandle {
    inner: Rc<RefCell<Inner>>,
    ready: Arc<ReadyQueue>,
}

impl AioHandle {
    pub(crate) fn new(inner: Rc<RefCell<Inner>>, ready: Arc<ReadyQueue>) -> AioHandle {
        AioHandle { inner, ready }
    }

    /// Spawns a task onto the executor. It is first polled on the next
    /// turn; results leave through state the future captures.
    pub fn spawn(&self, fut: impl Future<Output = ()> + 'static) {
        let id = self.inner.borrow_mut().spawn_task(Box::pin(fut));
        self.ready.push_spawn(id);
    }

    /// Wraps a reactor connection with default readahead (16 KiB
    /// chunks, depth 4).
    pub fn stream(&self, conn: ConnId) -> AsyncStream {
        self.stream_with(conn, DEFAULT_CHUNK, DEFAULT_DEPTH)
    }

    /// Wraps a reactor connection, keeping `depth` receives of `chunk`
    /// bytes posted. Depth ≥ 2 keeps the advert gate open (zero-copy
    /// delivery); chunk bounds each `recv` completion's size.
    pub fn stream_with(&self, conn: ConnId, chunk: u32, depth: usize) -> AsyncStream {
        let key = ChanKey::Conn(conn.0);
        self.inner.borrow_mut().ensure_chan(key, chunk, depth);
        AsyncStream {
            inner: self.inner.clone(),
            key,
        }
    }

    /// Wraps a hosted mux endpoint for stream accept/open.
    pub fn mux(&self, id: MuxId) -> AioMux {
        self.inner
            .borrow_mut()
            .muxes
            .entry(id.0)
            .or_insert_with(|| MuxReg {
                accept_ready: std::collections::VecDeque::new(),
                accept_waiters: Vec::new(),
                error: None,
            });
        AioMux {
            inner: self.inner.clone(),
            mux: id.0,
        }
    }

    /// A future that resolves after `dur` of executor time (simulated
    /// time under the simulator, wall time on the thread backend).
    pub fn sleep(&self, dur: std::time::Duration) -> Sleep {
        Sleep::new(self.inner.clone(), dur.as_nanos() as u64)
    }

    /// Current executor time in nanoseconds.
    pub fn now(&self) -> u64 {
        self.inner.borrow().now
    }
}

/// An async byte-stream over one reactor connection or one mux
/// stream. Clones share the underlying channel state.
#[derive(Clone)]
pub struct AsyncStream {
    inner: Rc<RefCell<Inner>>,
    key: ChanKey,
}

impl AsyncStream {
    /// Sends all of `data` as one EXS message. Resolves when every
    /// byte left the user buffer (EXS send-complete semantics).
    /// Dropping the pending future cancels under the §16 rules.
    pub fn send_all(&self, data: Vec<u8>) -> SendAll {
        SendAll {
            inner: self.inner.clone(),
            key: self.key,
            data: Some(data),
            op: None,
        }
    }

    /// Receives exactly `n` bytes (MSG_WAITALL shape). Resolves with
    /// the bytes, or [`ExsError::Eof`] if the stream ends first (any
    /// shorter remainder stays buffered for `recv_some`).
    pub fn recv_exact(&self, n: usize) -> Recv {
        Recv {
            inner: self.inner.clone(),
            key: self.key,
            mode: RecvMode::Exact(n),
            op: None,
        }
    }

    /// Receives at least one byte, up to `max` (plain `read(2)`
    /// shape). Resolves with [`ExsError::Eof`] at end of stream.
    pub fn recv_some(&self, max: usize) -> Recv {
        Recv {
            inner: self.inner.clone(),
            key: self.key,
            mode: RecvMode::Some(max),
            op: None,
        }
    }

    /// Pushes out any coalesced/batched sends immediately.
    pub fn flush(&self) -> Ctl {
        Ctl {
            inner: self.inner.clone(),
            key: self.key,
            shutdown: false,
            op: None,
        }
    }

    /// Half-closes the sending direction (FIN after queued sends
    /// drain). Later `send_all`s fail fast.
    pub fn shutdown(&self) -> Ctl {
        {
            let mut g = self.inner.borrow_mut();
            if let Some(chan) = g.chan_mut(self.key) {
                chan.shutdown_requested = true;
            }
        }
        Ctl {
            inner: self.inner.clone(),
            key: self.key,
            shutdown: true,
            op: None,
        }
    }

    /// Bytes currently buffered and claimable without waiting.
    pub fn buffered(&self) -> usize {
        self.inner
            .borrow_mut()
            .chan_mut(self.key)
            .map_or(0, |c| c.rx_buf.len())
    }
}

fn try_claim(chan: &mut Chan, mode: RecvMode) -> Option<Result<Vec<u8>, ExsError>> {
    match mode {
        RecvMode::Exact(n) => {
            if chan.rx_buf.len() >= n {
                Some(Ok(chan.rx_buf.drain(..n).collect()))
            } else if chan.eof {
                Some(Err(ExsError::Eof))
            } else {
                None
            }
        }
        RecvMode::Some(max) => {
            if !chan.rx_buf.is_empty() {
                let take = chan.rx_buf.len().min(max.max(1));
                Some(Ok(chan.rx_buf.drain(..take).collect()))
            } else if chan.eof {
                Some(Err(ExsError::Eof))
            } else {
                None
            }
        }
    }
}

/// Future of [`AsyncStream::send_all`].
pub struct SendAll {
    inner: Rc<RefCell<Inner>>,
    key: ChanKey,
    data: Option<Vec<u8>>,
    op: Option<u64>,
}

impl Future for SendAll {
    type Output = Result<(), ExsError>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let this = self.get_mut();
        let mut g = this.inner.borrow_mut();
        match this.op {
            None => {
                let Some(chan) = g.chan_mut(this.key) else {
                    return Poll::Ready(Err(ExsError::Stale));
                };
                if let Some(err) = chan.error.clone().or_else(|| chan.poison.clone()) {
                    return Poll::Ready(Err(err));
                }
                if chan.shutdown_requested {
                    return Poll::Ready(Err(ExsError::Broken));
                }
                let data = this.data.take().unwrap_or_default();
                let op = g.op_id();
                let chan = g.chan_mut(this.key).expect("checked above");
                chan.send_ops.insert(
                    op,
                    SendOp {
                        data: Some(data),
                        lease: None,
                        issued: false,
                        done: None,
                        waker: Some(cx.waker().clone()),
                        detached: false,
                    },
                );
                g.actions.push_back(Action::Send { key: this.key, op });
                this.op = Some(op);
                Poll::Pending
            }
            Some(op) => {
                let Some(chan) = g.chan_mut(this.key) else {
                    this.op = None;
                    return Poll::Ready(Err(ExsError::Stale));
                };
                let Some(entry) = chan.send_ops.get_mut(&op) else {
                    this.op = None;
                    return Poll::Ready(Err(ExsError::Stale));
                };
                match entry.done.clone() {
                    Some(res) => {
                        chan.send_ops.remove(&op);
                        this.op = None;
                        Poll::Ready(res)
                    }
                    None => {
                        entry.waker = Some(cx.waker().clone());
                        g.stats.spurious_polls += 1;
                        Poll::Pending
                    }
                }
            }
        }
    }
}

impl Drop for SendAll {
    fn drop(&mut self) {
        if let Some(op) = self.op {
            self.inner.borrow_mut().cancel_send(self.key, op);
        }
    }
}

/// Future of [`AsyncStream::recv_exact`] / [`AsyncStream::recv_some`].
pub struct Recv {
    inner: Rc<RefCell<Inner>>,
    key: ChanKey,
    mode: RecvMode,
    op: Option<u64>,
}

impl Future for Recv {
    type Output = Result<Vec<u8>, ExsError>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let this = self.get_mut();
        let mut g = this.inner.borrow_mut();
        match this.op {
            None => {
                let Some(chan) = g.chan_mut(this.key) else {
                    return Poll::Ready(Err(ExsError::Stale));
                };
                if let Some(err) = chan.error.clone() {
                    return Poll::Ready(Err(err));
                }
                if matches!(this.mode, RecvMode::Exact(0)) {
                    return Poll::Ready(Ok(Vec::new()));
                }
                // Claim immediately only when no earlier reader is
                // parked — readers resolve in registration order.
                if chan.read_waiters.is_empty() {
                    if let Some(res) = try_claim(chan, this.mode) {
                        chan.wake_readers();
                        return Poll::Ready(res);
                    }
                }
                let op = g.op_id();
                let chan = g.chan_mut(this.key).expect("checked above");
                chan.read_waiters.push_back(RecvWaiter {
                    op,
                    mode: this.mode,
                    waker: Some(cx.waker().clone()),
                });
                this.op = Some(op);
                Poll::Pending
            }
            Some(op) => {
                let Some(chan) = g.chan_mut(this.key) else {
                    this.op = None;
                    return Poll::Ready(Err(ExsError::Stale));
                };
                if let Some(err) = chan.error.clone() {
                    chan.read_waiters.retain(|w| w.op != op);
                    this.op = None;
                    return Poll::Ready(Err(err));
                }
                let is_head = chan.read_waiters.front().is_some_and(|w| w.op == op);
                if is_head {
                    if let Some(res) = try_claim(chan, this.mode) {
                        chan.read_waiters.pop_front();
                        this.op = None;
                        chan.wake_readers();
                        return Poll::Ready(res);
                    }
                }
                if let Some(w) = chan.read_waiters.iter_mut().find(|w| w.op == op) {
                    w.waker = Some(cx.waker().clone());
                }
                g.stats.spurious_polls += 1;
                Poll::Pending
            }
        }
    }
}

impl Drop for Recv {
    fn drop(&mut self) {
        if let Some(op) = self.op {
            self.inner.borrow_mut().cancel_recv(self.key, op);
        }
    }
}

/// Future of [`AsyncStream::flush`] / [`AsyncStream::shutdown`].
pub struct Ctl {
    inner: Rc<RefCell<Inner>>,
    key: ChanKey,
    shutdown: bool,
    op: Option<u64>,
}

impl Future for Ctl {
    type Output = Result<(), ExsError>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let this = self.get_mut();
        let mut g = this.inner.borrow_mut();
        match this.op {
            None => {
                let Some(chan) = g.chan_mut(this.key) else {
                    return Poll::Ready(Err(ExsError::Stale));
                };
                if let Some(err) = chan.error.clone() {
                    return Poll::Ready(Err(err));
                }
                let op = g.op_id();
                let chan = g.chan_mut(this.key).expect("checked above");
                chan.ctl_ops.insert(
                    op,
                    CtlOp {
                        done: None,
                        waker: Some(cx.waker().clone()),
                    },
                );
                let action = if this.shutdown {
                    Action::Shutdown { key: this.key, op }
                } else {
                    Action::Flush { key: this.key, op }
                };
                g.actions.push_back(action);
                this.op = Some(op);
                Poll::Pending
            }
            Some(op) => {
                let Some(chan) = g.chan_mut(this.key) else {
                    this.op = None;
                    return Poll::Ready(Err(ExsError::Stale));
                };
                let Some(entry) = chan.ctl_ops.get_mut(&op) else {
                    this.op = None;
                    return Poll::Ready(Err(ExsError::Stale));
                };
                match entry.done.clone() {
                    Some(res) => {
                        chan.ctl_ops.remove(&op);
                        this.op = None;
                        Poll::Ready(res)
                    }
                    None => {
                        entry.waker = Some(cx.waker().clone());
                        g.stats.spurious_polls += 1;
                        Poll::Pending
                    }
                }
            }
        }
    }
}

impl Drop for Ctl {
    fn drop(&mut self) {
        if let Some(op) = self.op {
            self.inner.borrow_mut().cancel_ctl(self.key, op);
        }
    }
}

/// Async view of a hosted [`crate::MuxEndpoint`]: open streams and
/// accept the ones the peer starts using.
#[derive(Clone)]
pub struct AioMux {
    inner: Rc<RefCell<Inner>>,
    mux: u32,
}

impl AioMux {
    /// Opens stream `id` with default readahead and wraps it. The mux
    /// protocol requires both sides to open an id before traffic flows
    /// (there is no wire-level SYN); `accept` then surfaces the ids
    /// the peer actually starts writing to.
    pub fn open_stream(&self, stream: u32) -> Result<AsyncStream, ExsError> {
        self.open_stream_with(stream, DEFAULT_CHUNK, DEFAULT_DEPTH)
    }

    /// Opens stream `id` with explicit readahead sizing and wraps it.
    pub fn open_stream_with(
        &self,
        stream: u32,
        chunk: u32,
        depth: usize,
    ) -> Result<AsyncStream, ExsError> {
        let key = ChanKey::Mux {
            mux: self.mux,
            stream,
        };
        let mut g = self.inner.borrow_mut();
        g.reactor
            .try_mux_mut(MuxId(self.mux))
            .ok_or(ExsError::Stale)?
            .open_stream(stream)?;
        g.ensure_chan(key, chunk, depth);
        Ok(AsyncStream {
            inner: self.inner.clone(),
            key,
        })
    }

    /// Resolves with the id of the next locally-opened stream that
    /// shows peer activity (first delivered bytes or close) and has
    /// not been surfaced yet — the accept-loop shape for servers that
    /// pre-open a window of stream ids and spawn a task per live
    /// stream.
    pub fn accept(&self) -> Accept {
        Accept {
            inner: self.inner.clone(),
            mux: self.mux,
        }
    }

    /// Wraps an already-opened stream id (e.g. one `accept` returned)
    /// with default readahead.
    pub fn stream(&self, stream: u32) -> AsyncStream {
        self.stream_with(stream, DEFAULT_CHUNK, DEFAULT_DEPTH)
    }

    /// Wraps an already-opened stream id with explicit readahead
    /// sizing. Unlike [`AioMux::open_stream_with`] this does not open
    /// the id on the endpoint — it must already be open there.
    pub fn stream_with(&self, stream: u32, chunk: u32, depth: usize) -> AsyncStream {
        let key = ChanKey::Mux {
            mux: self.mux,
            stream,
        };
        self.inner.borrow_mut().ensure_chan(key, chunk, depth);
        AsyncStream {
            inner: self.inner.clone(),
            key,
        }
    }
}

/// Future of [`AioMux::accept`].
pub struct Accept {
    inner: Rc<RefCell<Inner>>,
    mux: u32,
}

impl Future for Accept {
    type Output = Result<u32, ExsError>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let this = self.get_mut();
        let mut g = this.inner.borrow_mut();
        let Some(reg) = g.muxes.get_mut(&this.mux) else {
            return Poll::Ready(Err(ExsError::Stale));
        };
        if let Some(stream) = reg.accept_ready.pop_front() {
            return Poll::Ready(Ok(stream));
        }
        if let Some(err) = reg.error.clone() {
            return Poll::Ready(Err(err));
        }
        let waker: Waker = cx.waker().clone();
        reg.accept_waiters.push(waker);
        Poll::Pending
    }
}
