//! Per-connection statistics.
//!
//! UNH EXS "keeps statistics on the number of indirect vs. direct
//! transfers" (paper §IV-B); Table III additionally reports the number
//! of times the dynamic protocol switched modes. [`ConnStats`] collects
//! those counters plus enough bookkeeping to debug the control plane.

/// Counters for one connection endpoint.
#[derive(Clone, Debug, Default)]
pub struct ConnStats {
    /// WWI transfers sent into advertised user memory.
    pub direct_transfers: u64,
    /// WWI transfers sent into the intermediate buffer.
    pub indirect_transfers: u64,
    /// Bytes moved by direct transfers.
    pub direct_bytes: u64,
    /// Bytes moved by indirect transfers.
    pub indirect_bytes: u64,
    /// Sender phase parity changes (direct ↔ indirect), Table III's
    /// "Mode Switch Count".
    pub mode_switches: u64,
    /// ADVERTs emitted by this side's receiver half.
    pub adverts_sent: u64,
    /// ADVERTs received by this side's sender half.
    pub adverts_received: u64,
    /// Stale ADVERTs discarded by the sender matching algorithm.
    pub adverts_discarded: u64,
    /// ACK messages emitted.
    pub acks_sent: u64,
    /// ACK messages received.
    pub acks_received: u64,
    /// Standalone CREDIT messages emitted.
    pub credits_sent: u64,
    /// Bytes copied out of the intermediate buffer to user memory.
    pub bytes_copied_out: u64,
    /// User `exs_send` operations completed.
    pub sends_completed: u64,
    /// User `exs_recv` operations completed.
    pub recvs_completed: u64,
    /// User payload bytes fully sent (all WWIs completed).
    pub bytes_sent: u64,
    /// User payload bytes delivered to completed receives.
    pub bytes_received: u64,
}

impl ConnStats {
    /// Total data transfers (direct + indirect).
    pub fn total_transfers(&self) -> u64 {
        self.direct_transfers + self.indirect_transfers
    }

    /// Ratio of direct transfers to total transfers (Table III, Fig. 11b,
    /// Fig. 12b). Returns 0 when nothing was transferred.
    pub fn direct_ratio(&self) -> f64 {
        let total = self.total_transfers();
        if total == 0 {
            0.0
        } else {
            self.direct_transfers as f64 / total as f64
        }
    }

    /// Ratio of direct bytes to total bytes.
    pub fn direct_byte_ratio(&self) -> f64 {
        let total = self.direct_bytes + self.indirect_bytes;
        if total == 0 {
            0.0
        } else {
            self.direct_bytes as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratios() {
        let mut s = ConnStats::default();
        assert_eq!(s.direct_ratio(), 0.0);
        s.direct_transfers = 3;
        s.indirect_transfers = 1;
        assert!((s.direct_ratio() - 0.75).abs() < 1e-12);
        s.direct_bytes = 10;
        s.indirect_bytes = 30;
        assert!((s.direct_byte_ratio() - 0.25).abs() < 1e-12);
        assert_eq!(s.total_transfers(), 4);
    }
}
