//! Per-connection statistics.
//!
//! UNH EXS "keeps statistics on the number of indirect vs. direct
//! transfers" (paper §IV-B); Table III additionally reports the number
//! of times the dynamic protocol switched modes. [`ConnStats`] collects
//! those counters plus enough bookkeeping to debug the control plane.

/// Counters for one connection endpoint.
#[derive(Clone, Debug, Default)]
pub struct ConnStats {
    /// WWI transfers sent into advertised user memory.
    pub direct_transfers: u64,
    /// WWI transfers sent into the intermediate buffer.
    pub indirect_transfers: u64,
    /// Bytes moved by direct transfers.
    pub direct_bytes: u64,
    /// Bytes moved by indirect transfers.
    pub indirect_bytes: u64,
    /// Sender phase parity changes (direct ↔ indirect), Table III's
    /// "Mode Switch Count".
    pub mode_switches: u64,
    /// ADVERTs emitted by this side's receiver half.
    pub adverts_sent: u64,
    /// ADVERTs received by this side's sender half.
    pub adverts_received: u64,
    /// Stale ADVERTs discarded by the sender matching algorithm.
    pub adverts_discarded: u64,
    /// Times the adaptive re-entry policy paused a ready send to wait
    /// for a resync ADVERT instead of going indirect
    /// ([`crate::config::DirectPolicy`]).
    pub resyncs_attempted: u64,
    /// Resync pauses that ended with a usable ADVERT accepted — the
    /// sender re-entered a direct phase instead of paying the memcpy.
    /// `resyncs_attempted - resyncs_completed` waits were abandoned
    /// (ring drained with no ADVERT) and fell back to indirect.
    pub resyncs_completed: u64,
    /// Largest number of advertised-and-unconsumed receives outstanding
    /// at this side's receiver half, sampled after every ADVERT burst —
    /// the depth of the pre-posted advert queue that keeps the Fig. 3
    /// gate open.
    pub advert_queue_peak: u64,
    /// Sum of the advert-queue depth samples (see `advert_queue_peak`);
    /// divide by `advert_queue_samples` for the mean depth.
    pub advert_queue_sum: u64,
    /// Number of advert-queue depth samples taken.
    pub advert_queue_samples: u64,
    /// ACK messages emitted.
    pub acks_sent: u64,
    /// ACK messages received.
    pub acks_received: u64,
    /// Standalone CREDIT messages emitted.
    pub credits_sent: u64,
    /// Bytes copied out of the intermediate buffer to user memory.
    pub bytes_copied_out: u64,
    /// User `exs_send` operations completed.
    pub sends_completed: u64,
    /// User `exs_recv` operations completed.
    pub recvs_completed: u64,
    /// User payload bytes fully sent (all WWIs completed).
    pub bytes_sent: u64,
    /// User payload bytes delivered to completed receives.
    pub bytes_received: u64,
    /// Doorbells rung: `post_send`/`post_send_list` calls issued by the
    /// transmit pipeline.
    pub doorbells: u64,
    /// Send WQEs posted across all doorbells.
    pub wqes_posted: u64,
    /// Largest postlist flushed with a single doorbell.
    pub max_wqes_per_doorbell: u64,
    /// Data WQEs posted signaled (every `signal_interval`-th, plus
    /// forced signals at SQ-near-full and flush boundaries).
    pub signaled_wqes: u64,
    /// WQEs posted unsignaled; their SQ slots are reclaimed in a batch
    /// by the next signaled completion.
    pub unsignaled_wqes: u64,
    /// User messages coalesced into a shared staged WWI (counts every
    /// message in a coalesced run of two or more).
    pub coalesced_msgs: u64,
    /// User payload bytes carried by coalesced runs.
    pub coalesced_bytes: u64,
    /// A CQ serving this endpoint dropped a completion (sticky; fatal
    /// in real verbs).
    pub cq_overflowed: bool,
    /// Largest CQE batch a single poll returned on this endpoint's CQs.
    pub cq_max_batch: u64,
    /// Polls of this endpoint's CQs that returned at least one CQE.
    pub cq_nonempty_polls: u64,
    /// Times this connection's fabric flow re-sped (fair-share model:
    /// another flow on a shared link arrived or left mid-transfer).
    /// Annotated post-run from the fabric's per-flow telemetry; 0 on
    /// the FIFO model and on the thread backend. Merging sums — each
    /// connection is annotated from its own flow's telemetry, so the
    /// aggregate is the total re-speed count across flows. (Earlier
    /// versions max-merged and under-reported fan-in totals.)
    pub fabric_respeeds: u64,
    /// Sum of per-flow achieved payload rates (Mbit/s) recorded via
    /// [`ConnStats::record_fabric_flow`]; divide by
    /// `fabric_flow_samples` for the mean flow rate.
    pub fabric_flow_mbps_sum: f64,
    /// Number of fabric-flow rate samples recorded.
    pub fabric_flow_samples: u64,
    /// Fastest single fabric flow observed (Mbit/s) — the old
    /// max-merge semantics, kept as an explicit gauge.
    pub fabric_flow_mbps_max: f64,
    /// Largest number of multiplexed streams concurrently live on this
    /// endpoint's shared transports (0 for plain QP-per-stream
    /// sockets). Merging takes the max.
    pub mux_streams_peak: u64,
    /// Arrivals carrying an unknown or already-closed stream id on a
    /// shared transport — the typed-error demux path. Merging sums.
    pub mux_demux_errors: u64,
    /// Protocol violations driven by peer input (malformed control
    /// messages, sequence regressions, overfilled rings) that broke the
    /// connection instead of aborting the process. Merging sums.
    pub protocol_errors: u64,
}

impl ConnStats {
    /// Total data transfers (direct + indirect).
    pub fn total_transfers(&self) -> u64 {
        self.direct_transfers + self.indirect_transfers
    }

    /// Ratio of direct transfers to total transfers (Table III, Fig. 11b,
    /// Fig. 12b). Returns 0 when nothing was transferred.
    pub fn direct_ratio(&self) -> f64 {
        let total = self.total_transfers();
        if total == 0 {
            0.0
        } else {
            self.direct_transfers as f64 / total as f64
        }
    }

    /// Ratio of direct bytes to total bytes.
    pub fn direct_byte_ratio(&self) -> f64 {
        let total = self.direct_bytes + self.indirect_bytes;
        if total == 0 {
            0.0
        } else {
            self.direct_bytes as f64 / total as f64
        }
    }

    /// Mean WQEs per doorbell — the postlist amortization factor (1.0
    /// means every WQE paid its own doorbell).
    pub fn mean_wqes_per_doorbell(&self) -> f64 {
        if self.doorbells == 0 {
            0.0
        } else {
            self.wqes_posted as f64 / self.doorbells as f64
        }
    }

    /// Mean advert-queue depth across samples (0 when never sampled).
    pub fn advert_queue_mean(&self) -> f64 {
        if self.advert_queue_samples == 0 {
            0.0
        } else {
            self.advert_queue_sum as f64 / self.advert_queue_samples as f64
        }
    }

    /// Records one advert-queue depth observation (receiver side, after
    /// an ADVERT burst).
    pub fn sample_advert_queue(&mut self, depth: u64) {
        self.advert_queue_peak = self.advert_queue_peak.max(depth);
        self.advert_queue_sum += depth;
        self.advert_queue_samples += 1;
    }

    /// Records one fabric-flow achieved-rate observation (annotated
    /// post-run from the fabric's per-flow telemetry).
    pub fn record_fabric_flow(&mut self, mbps: f64) {
        self.fabric_flow_mbps_sum += mbps;
        self.fabric_flow_samples += 1;
        if mbps > self.fabric_flow_mbps_max {
            self.fabric_flow_mbps_max = mbps;
        }
    }

    /// Mean fabric-flow achieved rate across samples (0 when never
    /// sampled).
    pub fn fabric_flow_mbps_mean(&self) -> f64 {
        if self.fabric_flow_samples == 0 {
            0.0
        } else {
            self.fabric_flow_mbps_sum / self.fabric_flow_samples as f64
        }
    }

    /// Fraction of posted WQEs that completed unsignaled (CQEs saved).
    pub fn unsignaled_ratio(&self) -> f64 {
        let total = self.signaled_wqes + self.unsignaled_wqes;
        if total == 0 {
            0.0
        } else {
            self.unsignaled_wqes as f64 / total as f64
        }
    }

    /// Adds another endpoint's counters into this one (fan-in
    /// aggregation across a reactor's connections).
    pub fn merge(&mut self, other: &ConnStats) {
        self.direct_transfers += other.direct_transfers;
        self.indirect_transfers += other.indirect_transfers;
        self.direct_bytes += other.direct_bytes;
        self.indirect_bytes += other.indirect_bytes;
        self.mode_switches += other.mode_switches;
        self.adverts_sent += other.adverts_sent;
        self.adverts_received += other.adverts_received;
        self.adverts_discarded += other.adverts_discarded;
        self.resyncs_attempted += other.resyncs_attempted;
        self.resyncs_completed += other.resyncs_completed;
        self.advert_queue_peak = self.advert_queue_peak.max(other.advert_queue_peak);
        self.advert_queue_sum += other.advert_queue_sum;
        self.advert_queue_samples += other.advert_queue_samples;
        self.acks_sent += other.acks_sent;
        self.acks_received += other.acks_received;
        self.credits_sent += other.credits_sent;
        self.bytes_copied_out += other.bytes_copied_out;
        self.sends_completed += other.sends_completed;
        self.recvs_completed += other.recvs_completed;
        self.bytes_sent += other.bytes_sent;
        self.bytes_received += other.bytes_received;
        self.doorbells += other.doorbells;
        self.wqes_posted += other.wqes_posted;
        self.max_wqes_per_doorbell = self.max_wqes_per_doorbell.max(other.max_wqes_per_doorbell);
        self.signaled_wqes += other.signaled_wqes;
        self.unsignaled_wqes += other.unsignaled_wqes;
        self.coalesced_msgs += other.coalesced_msgs;
        self.coalesced_bytes += other.coalesced_bytes;
        self.cq_overflowed |= other.cq_overflowed;
        self.cq_max_batch = self.cq_max_batch.max(other.cq_max_batch);
        self.cq_nonempty_polls += other.cq_nonempty_polls;
        self.fabric_respeeds += other.fabric_respeeds;
        self.fabric_flow_mbps_sum += other.fabric_flow_mbps_sum;
        self.fabric_flow_samples += other.fabric_flow_samples;
        self.fabric_flow_mbps_max = self.fabric_flow_mbps_max.max(other.fabric_flow_mbps_max);
        self.mux_streams_peak = self.mux_streams_peak.max(other.mux_streams_peak);
        self.mux_demux_errors += other.mux_demux_errors;
        self.protocol_errors += other.protocol_errors;
    }

    /// Serializes the counters (plus derived ratios) as a JSON object.
    /// Hand-rolled on purpose: the counter snapshots written into
    /// `bench-results/` must not pull a serialization dependency into
    /// the protocol crate.
    pub fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"direct_transfers\":{},\"indirect_transfers\":{},",
                "\"direct_bytes\":{},\"indirect_bytes\":{},",
                "\"mode_switches\":{},\"adverts_sent\":{},",
                "\"adverts_received\":{},\"adverts_discarded\":{},",
                "\"resyncs_attempted\":{},\"resyncs_completed\":{},",
                "\"advert_queue_peak\":{},\"advert_queue_mean\":{:.6},",
                "\"acks_sent\":{},\"acks_received\":{},\"credits_sent\":{},",
                "\"bytes_copied_out\":{},\"sends_completed\":{},",
                "\"recvs_completed\":{},\"bytes_sent\":{},",
                "\"bytes_received\":{},\"doorbells\":{},",
                "\"wqes_posted\":{},\"max_wqes_per_doorbell\":{},",
                "\"signaled_wqes\":{},\"unsignaled_wqes\":{},",
                "\"coalesced_msgs\":{},\"coalesced_bytes\":{},",
                "\"cq_overflowed\":{},\"cq_max_batch\":{},",
                "\"cq_nonempty_polls\":{},",
                "\"fabric_respeeds\":{},\"fabric_flow_mbps_mean\":{:.3},",
                "\"fabric_flow_mbps_max\":{:.3},",
                "\"fabric_flow_samples\":{},",
                "\"mux_streams_peak\":{},\"mux_demux_errors\":{},",
                "\"protocol_errors\":{},",
                "\"mean_wqes_per_doorbell\":{:.6},",
                "\"unsignaled_ratio\":{:.6},\"direct_ratio\":{:.6},",
                "\"direct_byte_ratio\":{:.6}}}"
            ),
            self.direct_transfers,
            self.indirect_transfers,
            self.direct_bytes,
            self.indirect_bytes,
            self.mode_switches,
            self.adverts_sent,
            self.adverts_received,
            self.adverts_discarded,
            self.resyncs_attempted,
            self.resyncs_completed,
            self.advert_queue_peak,
            self.advert_queue_mean(),
            self.acks_sent,
            self.acks_received,
            self.credits_sent,
            self.bytes_copied_out,
            self.sends_completed,
            self.recvs_completed,
            self.bytes_sent,
            self.bytes_received,
            self.doorbells,
            self.wqes_posted,
            self.max_wqes_per_doorbell,
            self.signaled_wqes,
            self.unsignaled_wqes,
            self.coalesced_msgs,
            self.coalesced_bytes,
            self.cq_overflowed,
            self.cq_max_batch,
            self.cq_nonempty_polls,
            self.fabric_respeeds,
            self.fabric_flow_mbps_mean(),
            self.fabric_flow_mbps_max,
            self.fabric_flow_samples,
            self.mux_streams_peak,
            self.mux_demux_errors,
            self.protocol_errors,
            self.mean_wqes_per_doorbell(),
            self.unsignaled_ratio(),
            self.direct_ratio(),
            self.direct_byte_ratio(),
        )
    }
}

/// Aggregate counters for one [`crate::reactor::Reactor`], layered on
/// top of the per-connection [`ConnStats`]: where `ConnStats` describes
/// one stream's protocol behaviour, `ReactorStats` describes how the
/// event loop multiplexed all of them — batch sizes, fairness
/// deferrals, readiness reports.
#[derive(Clone, Debug, Default)]
pub struct ReactorStats {
    /// Connections ever added (accepted) to the reactor.
    pub conns_added: u64,
    /// Connections removed.
    pub conns_removed: u64,
    /// Calls to `Reactor::poll`.
    pub polls: u64,
    /// CQ drain batches that returned at least one completion.
    pub cq_batches: u64,
    /// Completions dispatched to owning connections, total.
    pub cqes_dispatched: u64,
    /// Largest single CQ drain batch.
    pub max_cq_batch: u64,
    /// Times a connection hit its per-poll budget with completions
    /// still queued (fairness deferral; the leftovers are serviced in a
    /// later round).
    pub deferrals: u64,
    /// Completions that arrived for a QP no longer in the reactor
    /// (connection removed with completions in flight); dropped.
    pub orphan_cqes: u64,
    /// `(conn, readiness)` entries reported to the caller, total.
    pub readiness_reports: u64,
}

impl ReactorStats {
    /// Mean completions per non-empty CQ drain batch.
    pub fn mean_batch(&self) -> f64 {
        if self.cq_batches == 0 {
            0.0
        } else {
            self.cqes_dispatched as f64 / self.cq_batches as f64
        }
    }

    /// Adds another reactor's counters into this one (per-shard
    /// reactors aggregated for a pool-wide view). Counters sum;
    /// `max_cq_batch` — a peak, not a count — takes the max, the same
    /// sum-vs-max discipline `ConnStats::merge` settled on after the
    /// fabric-stats under-count.
    pub fn merge(&mut self, other: &ReactorStats) {
        self.conns_added += other.conns_added;
        self.conns_removed += other.conns_removed;
        self.polls += other.polls;
        self.cq_batches += other.cq_batches;
        self.cqes_dispatched += other.cqes_dispatched;
        self.max_cq_batch = self.max_cq_batch.max(other.max_cq_batch);
        self.deferrals += other.deferrals;
        self.orphan_cqes += other.orphan_cqes;
        self.readiness_reports += other.readiness_reports;
    }

    /// Serializes the counters as a JSON object (dependency-free, like
    /// [`ConnStats::to_json`]).
    pub fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"conns_added\":{},\"conns_removed\":{},\"polls\":{},",
                "\"cq_batches\":{},\"cqes_dispatched\":{},",
                "\"max_cq_batch\":{},\"deferrals\":{},\"orphan_cqes\":{},",
                "\"readiness_reports\":{},\"mean_batch\":{:.6}}}"
            ),
            self.conns_added,
            self.conns_removed,
            self.polls,
            self.cq_batches,
            self.cqes_dispatched,
            self.max_cq_batch,
            self.deferrals,
            self.orphan_cqes,
            self.readiness_reports,
            self.mean_batch(),
        )
    }
}

/// Telemetry for one shard of a sharded reactor
/// ([`crate::shard::ReactorPool`] /
/// [`crate::threaded::ThreadReactorPool`]): how many connections the
/// assignment policy routed here, how hard its service loop is working
/// (busy ratio), and how often peers reached across the shard boundary
/// (handoff commands). One of these per shard rides in every snapshot
/// so imbalance is visible, not averaged away.
#[derive(Clone, Debug, Default)]
pub struct ShardStats {
    /// Which shard this is (0-based, stable for the pool's lifetime).
    pub shard_id: u32,
    /// Connections currently hosted on the shard.
    pub conns: u64,
    /// Connections the assignment policy ever routed here.
    pub assigned: u64,
    /// Assignments where `LeastLoaded` deviated from the round-robin
    /// successor — a measure of how often load-awareness actually
    /// changed placement.
    pub steals: u64,
    /// Cross-shard commands (close/wake handoffs) drained from the
    /// shard's MPSC queue.
    pub commands: u64,
    /// `Reactor::poll` calls executed by this shard.
    pub polls: u64,
    /// Completions this shard's reactor dispatched.
    pub cqes_dispatched: u64,
    /// Nanoseconds the service loop spent doing work (holding the
    /// reactor, harvesting events) — the numerator of the busy ratio.
    pub busy_ns: u64,
    /// Nanoseconds the service loop existed (work + parked waiting) —
    /// the denominator of the busy ratio. Zero on the sim backend,
    /// where there is no wall clock to sample.
    pub wall_ns: u64,
}

impl ShardStats {
    /// Fraction of the shard's lifetime spent servicing rather than
    /// parked (0 when no wall time was sampled — e.g. the sim backend).
    pub fn busy_ratio(&self) -> f64 {
        if self.wall_ns == 0 {
            0.0
        } else {
            (self.busy_ns as f64 / self.wall_ns as f64).min(1.0)
        }
    }

    /// Serializes the counters as a JSON object (dependency-free, like
    /// [`ConnStats::to_json`]).
    pub fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"shard_id\":{},\"conns\":{},\"assigned\":{},",
                "\"steals\":{},\"commands\":{},\"polls\":{},",
                "\"cqes_dispatched\":{},\"busy_ns\":{},\"wall_ns\":{},",
                "\"busy_ratio\":{:.6}}}"
            ),
            self.shard_id,
            self.conns,
            self.assigned,
            self.steals,
            self.commands,
            self.polls,
            self.cqes_dispatched,
            self.busy_ns,
            self.wall_ns,
            self.busy_ratio(),
        )
    }
}

/// Counters for one [`crate::mempool::MemPool`]: the pin-down cache's
/// effectiveness (hit rate), its churn (registrations, evictions) and
/// its current footprint (pinned/leased/free bytes).
#[derive(Clone, Debug, Default)]
pub struct PoolStats {
    /// Acquires satisfied from the free lists (no verbs call).
    pub hits: u64,
    /// Acquires that had to register a fresh region.
    pub misses: u64,
    /// Idle regions deregistered to get back under the pinned budget.
    pub evictions: u64,
    /// Total `register_mr` calls the pool issued.
    pub registrations: u64,
    /// Total `deregister_mr` calls the pool issued (evictions + trims).
    pub deregistrations: u64,
    /// Bytes currently registered through the pool (leased + free).
    pub pinned_bytes: u64,
    /// High-water mark of `pinned_bytes`.
    pub pinned_peak: u64,
    /// Bytes currently handed out in live leases.
    pub leased_bytes: u64,
    /// Bytes sitting idle in the free lists.
    pub free_bytes: u64,
}

impl PoolStats {
    /// Fraction of acquires served from the cache.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Adds another pool's counters into this one (per-node pools
    /// aggregated for a whole run). Footprint gauges sum; the peak is
    /// the sum of peaks (an upper bound, exact when pools peak
    /// together).
    pub fn merge(&mut self, other: &PoolStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.evictions += other.evictions;
        self.registrations += other.registrations;
        self.deregistrations += other.deregistrations;
        self.pinned_bytes += other.pinned_bytes;
        self.pinned_peak += other.pinned_peak;
        self.leased_bytes += other.leased_bytes;
        self.free_bytes += other.free_bytes;
    }

    /// Serializes the counters as a JSON object (dependency-free, like
    /// [`ConnStats::to_json`]).
    pub fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"hits\":{},\"misses\":{},\"evictions\":{},",
                "\"registrations\":{},\"deregistrations\":{},",
                "\"pinned_bytes\":{},\"pinned_peak\":{},",
                "\"leased_bytes\":{},\"free_bytes\":{},",
                "\"hit_rate\":{:.6}}}"
            ),
            self.hits,
            self.misses,
            self.evictions,
            self.registrations,
            self.deregistrations,
            self.pinned_bytes,
            self.pinned_peak,
            self.leased_bytes,
            self.free_bytes,
            self.hit_rate(),
        )
    }
}

/// Counters for one [`crate::aio::Executor`]: task lifecycle, wake-up
/// efficiency (polls per wake, spurious-wake ratio), timer activity and
/// cancellation outcomes. Snapshots ride along with [`ConnStats`] /
/// [`ReactorStats`] in the bench-results JSON.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct AioStats {
    /// Tasks handed to `spawn`.
    pub tasks_spawned: u64,
    /// Tasks polled to completion.
    pub tasks_completed: u64,
    /// `Waker::wake` calls observed (readiness dispatch, timer fires,
    /// buffered-byte arrivals).
    pub wakeups: u64,
    /// Task polls executed by the executor.
    pub polls: u64,
    /// Leaf-future polls that found their condition still unmet after
    /// a wake — the re-poll was wasted work.
    pub spurious_polls: u64,
    /// Timers armed.
    pub timers_set: u64,
    /// Timers that reached their deadline and fired.
    pub timer_fires: u64,
    /// Timers dropped before firing (e.g. a `timeout` whose inner
    /// future won).
    pub timer_cancels: u64,
    /// Cancellations that unwound cleanly: the operation had not
    /// committed any bytes to the wire.
    pub cancels_clean: u64,
    /// Cancellations that caught a send mid-flight and poisoned the
    /// stream's sending direction.
    pub cancels_poisoned: u64,
    /// Executor turns (reactor pump + task batch cycles).
    pub turns: u64,
}

impl AioStats {
    /// Mean task polls per wake-up.
    pub fn polls_per_wake(&self) -> f64 {
        if self.wakeups == 0 {
            0.0
        } else {
            self.polls as f64 / self.wakeups as f64
        }
    }

    /// Fraction of task polls that were spurious.
    pub fn spurious_wake_ratio(&self) -> f64 {
        if self.polls == 0 {
            0.0
        } else {
            self.spurious_polls as f64 / self.polls as f64
        }
    }

    /// Adds another executor's counters into this one (multi-node
    /// runs aggregated for a report).
    pub fn merge(&mut self, other: &AioStats) {
        self.tasks_spawned += other.tasks_spawned;
        self.tasks_completed += other.tasks_completed;
        self.wakeups += other.wakeups;
        self.polls += other.polls;
        self.spurious_polls += other.spurious_polls;
        self.timers_set += other.timers_set;
        self.timer_fires += other.timer_fires;
        self.timer_cancels += other.timer_cancels;
        self.cancels_clean += other.cancels_clean;
        self.cancels_poisoned += other.cancels_poisoned;
        self.turns += other.turns;
    }

    /// Serializes the counters as a JSON object (dependency-free, like
    /// [`ConnStats::to_json`]).
    pub fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"tasks_spawned\":{},\"tasks_completed\":{},",
                "\"wakeups\":{},\"polls\":{},\"spurious_polls\":{},",
                "\"timers_set\":{},\"timer_fires\":{},\"timer_cancels\":{},",
                "\"cancels_clean\":{},\"cancels_poisoned\":{},\"turns\":{},",
                "\"polls_per_wake\":{:.6},\"spurious_wake_ratio\":{:.6}}}"
            ),
            self.tasks_spawned,
            self.tasks_completed,
            self.wakeups,
            self.polls,
            self.spurious_polls,
            self.timers_set,
            self.timer_fires,
            self.timer_cancels,
            self.cancels_clean,
            self.cancels_poisoned,
            self.turns,
            self.polls_per_wake(),
            self.spurious_wake_ratio(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_stats_json_and_hit_rate() {
        let mut s = PoolStats {
            hits: 3,
            misses: 1,
            pinned_bytes: 4096,
            ..PoolStats::default()
        };
        assert!((s.hit_rate() - 0.75).abs() < 1e-12);
        let j = s.to_json();
        assert!(j.contains("\"hits\":3"));
        assert!(j.contains("\"hit_rate\":0.750000"));
        let other = PoolStats {
            hits: 1,
            evictions: 2,
            ..PoolStats::default()
        };
        s.merge(&other);
        assert_eq!(s.hits, 4);
        assert_eq!(s.evictions, 2);
        assert_eq!(PoolStats::default().hit_rate(), 0.0);
    }

    #[test]
    fn json_snapshots_are_parseable_shape() {
        let s = ConnStats {
            direct_transfers: 3,
            indirect_transfers: 1,
            ..ConnStats::default()
        };
        let j = s.to_json();
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(j.contains("\"direct_transfers\":3"));
        assert!(j.contains("\"direct_ratio\":0.750000"));

        let r = ReactorStats {
            cq_batches: 2,
            cqes_dispatched: 7,
            ..ReactorStats::default()
        };
        let j = r.to_json();
        assert!(j.contains("\"cqes_dispatched\":7"));
        assert!(j.contains("\"mean_batch\":3.500000"));
    }

    #[test]
    fn tx_batching_counters_json_and_merge() {
        let mut s = ConnStats {
            doorbells: 4,
            wqes_posted: 12,
            max_wqes_per_doorbell: 6,
            signaled_wqes: 3,
            unsignaled_wqes: 9,
            coalesced_msgs: 5,
            coalesced_bytes: 640,
            cq_max_batch: 7,
            cq_nonempty_polls: 11,
            ..ConnStats::default()
        };
        assert!((s.mean_wqes_per_doorbell() - 3.0).abs() < 1e-12);
        assert!((s.unsignaled_ratio() - 0.75).abs() < 1e-12);
        let j = s.to_json();
        assert!(j.contains("\"doorbells\":4"));
        assert!(j.contains("\"mean_wqes_per_doorbell\":3.000000"));
        assert!(j.contains("\"unsignaled_ratio\":0.750000"));
        assert!(j.contains("\"coalesced_bytes\":640"));
        assert!(j.contains("\"cq_overflowed\":false"));
        assert!(j.contains("\"cq_max_batch\":7"));

        let other = ConnStats {
            doorbells: 1,
            wqes_posted: 1,
            max_wqes_per_doorbell: 9,
            cq_overflowed: true,
            cq_max_batch: 2,
            ..ConnStats::default()
        };
        s.merge(&other);
        assert_eq!(s.doorbells, 5);
        assert_eq!(s.max_wqes_per_doorbell, 9, "merge takes the max");
        assert_eq!(s.cq_max_batch, 7, "merge takes the max");
        assert!(s.cq_overflowed, "overflow is sticky across merges");
        assert_eq!(ConnStats::default().mean_wqes_per_doorbell(), 0.0);
        assert_eq!(ConnStats::default().unsignaled_ratio(), 0.0);
    }

    #[test]
    fn resync_and_advert_queue_telemetry() {
        let mut s = ConnStats::default();
        assert_eq!(s.advert_queue_mean(), 0.0);
        s.sample_advert_queue(3);
        s.sample_advert_queue(5);
        s.resyncs_attempted = 4;
        s.resyncs_completed = 3;
        assert_eq!(s.advert_queue_peak, 5);
        assert!((s.advert_queue_mean() - 4.0).abs() < 1e-12);

        let j = s.to_json();
        assert!(j.contains("\"resyncs_attempted\":4"));
        assert!(j.contains("\"resyncs_completed\":3"));
        assert!(j.contains("\"advert_queue_peak\":5"));
        assert!(j.contains("\"advert_queue_mean\":4.000000"));

        let other = ConnStats {
            resyncs_attempted: 1,
            advert_queue_peak: 9,
            advert_queue_sum: 9,
            advert_queue_samples: 1,
            ..ConnStats::default()
        };
        s.merge(&other);
        assert_eq!(s.resyncs_attempted, 5);
        assert_eq!(s.advert_queue_peak, 9, "merge takes the max depth");
        assert_eq!(s.advert_queue_samples, 3);
    }

    #[test]
    fn fabric_telemetry_json_and_merge_sum() {
        let mut s = ConnStats {
            fabric_respeeds: 3,
            ..ConnStats::default()
        };
        s.record_fabric_flow(5000.5);
        let j = s.to_json();
        assert!(j.contains("\"fabric_respeeds\":3"));
        assert!(j.contains("\"fabric_flow_mbps_mean\":5000.500"));
        assert!(j.contains("\"fabric_flow_mbps_max\":5000.500"));
        assert!(j.contains("\"fabric_flow_samples\":1"));

        let mut other = ConnStats {
            fabric_respeeds: 7,
            ..ConnStats::default()
        };
        other.record_fabric_flow(100.0);
        s.merge(&other);
        assert_eq!(s.fabric_respeeds, 10, "re-speed totals must sum");
        assert_eq!(s.fabric_flow_samples, 2);
        assert!((s.fabric_flow_mbps_mean() - 2550.25).abs() < 1e-9);
        assert_eq!(
            s.fabric_flow_mbps_max, 5000.5,
            "the max gauge keeps the old semantics"
        );
    }

    #[test]
    fn mux_and_protocol_error_telemetry_merge() {
        let mut s = ConnStats {
            mux_streams_peak: 100,
            mux_demux_errors: 2,
            protocol_errors: 1,
            ..ConnStats::default()
        };
        let other = ConnStats {
            mux_streams_peak: 64,
            mux_demux_errors: 3,
            protocol_errors: 4,
            ..ConnStats::default()
        };
        s.merge(&other);
        assert_eq!(s.mux_streams_peak, 100, "peak takes the max");
        assert_eq!(s.mux_demux_errors, 5, "demux errors sum");
        assert_eq!(s.protocol_errors, 5, "protocol errors sum");
        let j = s.to_json();
        assert!(j.contains("\"mux_streams_peak\":100"));
        assert!(j.contains("\"mux_demux_errors\":5"));
        assert!(j.contains("\"protocol_errors\":5"));
    }

    #[test]
    fn merge_sums_counters() {
        let mut a = ConnStats {
            bytes_sent: 10,
            direct_transfers: 2,
            ..ConnStats::default()
        };
        let b = ConnStats {
            bytes_sent: 5,
            indirect_transfers: 3,
            ..ConnStats::default()
        };
        a.merge(&b);
        assert_eq!(a.bytes_sent, 15);
        assert_eq!(a.total_transfers(), 5);
    }

    #[test]
    fn ratios() {
        let mut s = ConnStats::default();
        assert_eq!(s.direct_ratio(), 0.0);
        s.direct_transfers = 3;
        s.indirect_transfers = 1;
        assert!((s.direct_ratio() - 0.75).abs() < 1e-12);
        s.direct_bytes = 10;
        s.indirect_bytes = 30;
        assert!((s.direct_byte_ratio() - 0.25).abs() < 1e-12);
        assert_eq!(s.total_transfers(), 4);
    }

    #[test]
    fn reactor_stats_merge_sums_counters_and_maxes_peak() {
        let mut a = ReactorStats {
            conns_added: 4,
            polls: 100,
            cq_batches: 10,
            cqes_dispatched: 50,
            max_cq_batch: 12,
            deferrals: 1,
            readiness_reports: 40,
            ..ReactorStats::default()
        };
        let b = ReactorStats {
            conns_added: 2,
            conns_removed: 1,
            polls: 30,
            cq_batches: 5,
            cqes_dispatched: 25,
            max_cq_batch: 20,
            orphan_cqes: 0,
            readiness_reports: 10,
            ..ReactorStats::default()
        };
        a.merge(&b);
        assert_eq!(a.conns_added, 6, "counters sum across shards");
        assert_eq!(a.conns_removed, 1);
        assert_eq!(a.polls, 130);
        assert_eq!(a.cq_batches, 15);
        assert_eq!(a.cqes_dispatched, 75);
        assert_eq!(a.max_cq_batch, 20, "the peak takes the max, not the sum");
        assert_eq!(a.deferrals, 1);
        assert_eq!(a.readiness_reports, 50);
        assert!((a.mean_batch() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn shard_stats_busy_ratio_and_json() {
        let s = ShardStats {
            shard_id: 3,
            conns: 7,
            assigned: 9,
            steals: 2,
            commands: 4,
            polls: 100,
            cqes_dispatched: 250,
            busy_ns: 250,
            wall_ns: 1000,
        };
        assert!((s.busy_ratio() - 0.25).abs() < 1e-12);
        let j = s.to_json();
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(j.contains("\"shard_id\":3"));
        assert!(j.contains("\"assigned\":9"));
        assert!(j.contains("\"steals\":2"));
        assert!(j.contains("\"busy_ratio\":0.250000"));

        // Sim shards sample no wall clock; the ratio stays defined.
        assert_eq!(ShardStats::default().busy_ratio(), 0.0);
        // Timer jitter can push busy past wall; the ratio stays <= 1.
        let hot = ShardStats {
            busy_ns: 1200,
            wall_ns: 1000,
            ..ShardStats::default()
        };
        assert_eq!(hot.busy_ratio(), 1.0);
    }

    #[test]
    fn aio_stats_json_merge_and_ratios() {
        let mut a = AioStats {
            tasks_spawned: 4,
            tasks_completed: 4,
            wakeups: 10,
            polls: 15,
            spurious_polls: 3,
            timers_set: 5,
            timer_fires: 2,
            timer_cancels: 3,
            cancels_clean: 1,
            turns: 20,
            ..AioStats::default()
        };
        assert!((a.polls_per_wake() - 1.5).abs() < 1e-12);
        assert!((a.spurious_wake_ratio() - 0.2).abs() < 1e-12);
        let j = a.to_json();
        assert!(j.contains("\"tasks_completed\":4"));
        assert!(j.contains("\"polls_per_wake\":1.500000"));
        assert!(j.contains("\"spurious_wake_ratio\":0.200000"));
        assert!(j.contains("\"cancels_poisoned\":0"));

        let b = AioStats {
            tasks_spawned: 1,
            wakeups: 2,
            polls: 5,
            cancels_poisoned: 1,
            ..AioStats::default()
        };
        a.merge(&b);
        assert_eq!(a.tasks_spawned, 5);
        assert_eq!(a.wakeups, 12);
        assert_eq!(a.polls, 20);
        assert_eq!(a.cancels_poisoned, 1);
        // Degenerate denominators stay defined.
        assert_eq!(AioStats::default().polls_per_wake(), 0.0);
        assert_eq!(AioStats::default().spurious_wake_ratio(), 0.0);
    }
}
