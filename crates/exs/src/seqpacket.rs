//! Message-oriented (SOCK_SEQPACKET) sockets — paper §II-C.
//!
//! "The RDMA protocol for message-oriented connections is simple. When
//! the application calls `exs_recv()`, the EXS library at the receiver
//! sends an advertisement (ADVERT) to the EXS library at the sender with
//! the virtual memory address, length, and RDMA remote key of the
//! receiver's memory area. When the user at the other end of the
//! connection calls `exs_send()` and an ADVERT has reached the EXS
//! library at that end, the sender then posts a WWI request with the
//! data."
//!
//! Message boundaries are preserved: one `exs_send` matches exactly one
//! `exs_recv`. Unlike the stream mode there is no intermediate buffer,
//! no phase machinery and no splitting — and, faithfully to
//! message-oriented transports, **a message larger than the advertised
//! receive buffer is an error** (the stream mode exists precisely
//! because porting stream applications to such semantics risks data
//! loss, paper §I).

use std::collections::VecDeque;

use rdma_verbs::{
    connect_pair, Cqe, MrInfo, NodeApi, NodeId, QpCaps, QpNum, RecvWr, RemoteAddr, SendWr, Sge,
    SimNet, WcOpcode, WcStatus,
};
use rdma_verbs::{Access, CqId, MrKey};

use crate::config::ExsConfig;
use crate::messages::{decode_imm, encode_imm, Advert, Ctrl, CtrlMsg, TransferKind, CTRL_MSG_LEN};
use crate::phase::Phase;
use crate::port::VerbsPort;
use crate::seq::Seq;
use crate::stats::ConnStats;
use crate::txpipe::TxPipe;

const CTRL_SLOT: u64 = 64;
const CREDIT_RESERVE: u32 = 1;

/// Completion events for the message mode.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SeqPacketEvent {
    /// A message was fully transmitted; the send buffer is reusable.
    SendComplete {
        /// User token.
        id: u64,
        /// Message length.
        len: u32,
    },
    /// A send failed because the message exceeded the peer's advertised
    /// receive buffer (message semantics: no splitting).
    SendError {
        /// User token.
        id: u64,
        /// Message length that did not fit.
        len: u32,
        /// The advertised buffer it was matched against.
        advertised: u32,
    },
    /// A message arrived into the posted receive buffer.
    RecvComplete {
        /// User token.
        id: u64,
        /// Message length.
        len: u32,
    },
}

struct PendingSend {
    id: u64,
    addr: u64,
    len: u32,
    key: MrKey,
}

/// Connection parameters exchanged at setup.
#[derive(Clone, Copy, Debug)]
pub struct SeqSetupInfo {
    credits: u32,
}

/// A message-oriented EXS socket endpoint.
pub struct SeqPacketSocket {
    node: NodeId,
    qpn: QpNum,
    send_cq: CqId,
    recv_cq: CqId,
    ctrl_mr: MrInfo,
    cfg: ExsConfig,
    adverts: VecDeque<Advert>,
    pending_sends: VecDeque<PendingSend>,
    recv_queue: VecDeque<(u64, u32)>,
    /// Message WWIs awaiting retirement, in posting (= wr_id) order. RC
    /// FIFO means a signaled CQE for wr_id `W` retires every entry with
    /// a smaller wr_id too (the unsignaled ones in between).
    wwi_owner: VecDeque<(u64, (u64, u32))>,
    next_wr: u64,
    /// Postlist staging and selective-signaling state.
    tx: TxPipe,
    next_seq: Seq,
    peer_credits: u32,
    owed_credits: u32,
    credit_threshold: u32,
    pending_ctrl: VecDeque<Ctrl>,
    events: Vec<SeqPacketEvent>,
    stats: ConnStats,
    /// Registrations already released; the socket is closed.
    mrs_released: bool,
}

impl SeqPacketSocket {
    /// Builds one endpoint (control slots + pre-posted receives) and
    /// returns the parameters the peer needs.
    pub fn prepare(
        api: &mut NodeApi<'_>,
        qpn: QpNum,
        send_cq: CqId,
        recv_cq: CqId,
        cfg: &ExsConfig,
    ) -> (PreparedSeqSocket, SeqSetupInfo) {
        let ctrl_mr = api.register_mr(
            (cfg.credits as u64 * CTRL_SLOT) as usize,
            Access::LOCAL_WRITE,
        );
        for slot in 0..cfg.credits {
            let sge = ctrl_mr.sge(slot as u64 * CTRL_SLOT, CTRL_SLOT as u32);
            api.post_recv(qpn, RecvWr::new(slot as u64, sge))
                .expect("pre-posting control receives");
        }
        (
            PreparedSeqSocket {
                node: api.node(),
                qpn,
                send_cq,
                recv_cq,
                cfg: cfg.clone(),
                ctrl_mr,
            },
            SeqSetupInfo {
                credits: cfg.credits,
            },
        )
    }

    /// Creates a connected pair of message-mode sockets.
    pub fn pair(
        net: &mut SimNet,
        a: NodeId,
        b: NodeId,
        cfg: &ExsConfig,
    ) -> (SeqPacketSocket, SeqPacketSocket) {
        let caps = QpCaps {
            max_send_wr: cfg.sq_depth,
            max_recv_wr: cfg.credits as usize + 8,
            max_inline: 256,
        };
        let cq_depth = cfg.sq_depth * 2 + cfg.credits as usize * 2;
        let (ha, hb) = connect_pair(net, a, b, caps, cq_depth).expect("connect");
        let (pa, ia) = net.with_api(a, |api| {
            SeqPacketSocket::prepare(api, ha.qpn, ha.send_cq, ha.recv_cq, cfg)
        });
        let (pb, ib) = net.with_api(b, |api| {
            SeqPacketSocket::prepare(api, hb.qpn, hb.send_cq, hb.recv_cq, cfg)
        });
        (pa.complete(ib), pb.complete(ia))
    }

    /// This endpoint's node.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Protocol statistics.
    pub fn stats(&self) -> &ConnStats {
        &self.stats
    }

    /// Queued ADVERTs from the peer (receive buffers ready for us).
    pub fn adverts_available(&self) -> usize {
        self.adverts.len()
    }

    /// Releases the socket's control-slot registration — full-socket
    /// close (`exs_close`); idempotent. Message mode registers no ring
    /// and no staging, so the control slots are its only registration.
    pub fn close(&mut self, api: &mut impl VerbsPort) {
        if self.mrs_released {
            return;
        }
        self.mrs_released = true;
        api.deregister_mr(self.ctrl_mr.key)
            .expect("free control slots at close");
    }

    /// True once [`SeqPacketSocket::close`] has released the socket's
    /// registrations.
    pub fn is_closed(&self) -> bool {
        self.mrs_released
    }

    /// Asynchronous message send: matches the next peer ADVERT (FIFO);
    /// queued until one is available.
    pub fn exs_send(
        &mut self,
        api: &mut impl VerbsPort,
        mr: &MrInfo,
        offset: u64,
        len: u32,
        id: u64,
    ) {
        assert!(len > 0, "zero-length message");
        assert!(
            offset + len as u64 <= mr.len as u64,
            "send range outside registered region"
        );
        self.pending_sends.push_back(PendingSend {
            id,
            addr: mr.addr + offset,
            len,
            key: mr.key,
        });
        self.pump_sends(api);
        self.flush_ctrl(api);
        self.flush_tx(api);
    }

    /// Asynchronous message receive: advertises the buffer immediately.
    pub fn exs_recv(
        &mut self,
        api: &mut impl VerbsPort,
        mr: &MrInfo,
        offset: u64,
        len: u32,
        id: u64,
    ) {
        assert!(len > 0, "zero-length receive buffer");
        assert!(
            offset + len as u64 <= mr.len as u64,
            "receive range outside registered region"
        );
        self.recv_queue.push_back((id, len));
        let advert = Advert {
            seq: self.next_seq,
            phase: Phase::ZERO,
            addr: mr.addr + offset,
            len,
            rkey: mr.key.0,
            waitall: false,
        };
        self.next_seq.advance(1);
        self.stats.adverts_sent += 1;
        self.pending_ctrl.push_back(Ctrl::Advert(advert));
        self.flush_ctrl(api);
        self.flush_tx(api);
    }

    /// Drives the socket from a node wake.
    pub fn handle_wake(&mut self, api: &mut impl VerbsPort) {
        let mut cqes: Vec<Cqe> = Vec::new();
        api.poll_cq(self.recv_cq, usize::MAX, &mut cqes)
            .expect("poll recv cq");
        let recv_count = cqes.len();
        api.poll_cq(self.send_cq, usize::MAX, &mut cqes)
            .expect("poll send cq");
        for (i, cqe) in cqes.into_iter().enumerate() {
            if i < recv_count {
                self.on_recv_cqe(api, cqe);
            } else {
                self.on_send_cqe(api, cqe);
            }
        }
        self.pump_sends(api);
        self.flush_ctrl(api);
        self.maybe_send_credit(api);
        self.flush_tx(api);
    }

    /// Takes accumulated user events.
    pub fn take_events(&mut self) -> Vec<SeqPacketEvent> {
        std::mem::take(&mut self.events)
    }

    fn on_recv_cqe(&mut self, api: &mut impl VerbsPort, cqe: Cqe) {
        assert_eq!(cqe.status, WcStatus::Success);
        api.charge_cqe_cost();
        match cqe.opcode {
            WcOpcode::RecvRdmaWithImm => {
                let (kind, len) = decode_imm(cqe.imm.expect("WWI imm"));
                assert_eq!(
                    kind,
                    TransferKind::Direct,
                    "message mode only uses direct transfers"
                );
                let (id, posted) = self
                    .recv_queue
                    .pop_front()
                    .expect("message arrived with no posted receive");
                debug_assert!(len <= posted, "message exceeds advertised buffer");
                self.stats.recvs_completed += 1;
                self.stats.bytes_received += len as u64;
                self.events.push(SeqPacketEvent::RecvComplete { id, len });
            }
            WcOpcode::Recv => {
                let slot = cqe.wr_id;
                let mut buf = [0u8; CTRL_MSG_LEN];
                api.read_mr(
                    self.ctrl_mr.key,
                    self.ctrl_mr.addr + slot * CTRL_SLOT,
                    &mut buf,
                )
                .expect("control slot read");
                let msg = CtrlMsg::decode(&buf).expect("control decode");
                self.peer_credits += msg.credit_return;
                match msg.ctrl {
                    Ctrl::Advert(ad) => {
                        self.stats.adverts_received += 1;
                        self.adverts.push_back(ad);
                    }
                    Ctrl::Credit => {}
                    Ctrl::Ack { .. } => {
                        panic!("ACK has no meaning on a SEQPACKET connection")
                    }
                    Ctrl::DataNotify { .. } => {
                        panic!("SEQPACKET connections always use native WWI")
                    }
                    Ctrl::Fin { .. } => {
                        panic!("half-close is not implemented for SEQPACKET sockets")
                    }
                }
            }
            other => panic!("unexpected receive completion {other:?}"),
        }
        let slot = cqe.wr_id;
        let sge = self.ctrl_mr.sge(slot * CTRL_SLOT, CTRL_SLOT as u32);
        api.post_recv(self.qpn, RecvWr::new(slot, sge))
            .expect("re-post control receive");
        self.owed_credits += 1;
    }

    fn on_send_cqe(&mut self, api: &mut impl VerbsPort, cqe: Cqe) {
        assert_eq!(cqe.status, WcStatus::Success);
        api.charge_cqe_cost();
        self.tx.on_signaled_cqe();
        // RC FIFO: one signaled completion retires every WQE posted
        // before it, so drain all owners up to and including its wr_id
        // (a signaled control SEND may retire message WWIs posted ahead
        // of it and own no entry itself).
        while let Some(&(wr_id, (id, len))) = self.wwi_owner.front() {
            if wr_id > cqe.wr_id {
                break;
            }
            self.wwi_owner.pop_front();
            self.stats.sends_completed += 1;
            self.stats.bytes_sent += len as u64;
            self.events.push(SeqPacketEvent::SendComplete { id, len });
        }
    }

    fn pump_sends(&mut self, api: &mut impl VerbsPort) {
        while !self.pending_sends.is_empty() {
            if self.peer_credits <= CREDIT_RESERVE {
                return;
            }
            if api.sq_outstanding(self.qpn) + self.tx.staged() >= self.cfg.sq_depth {
                return;
            }
            let Some(advert) = self.adverts.front().copied() else {
                return;
            };
            let head = self.pending_sends.front().expect("checked non-empty");
            if head.len > advert.len {
                // Message semantics: data that does not fit is an error,
                // not a partial delivery. The ADVERT is retained for a
                // later (smaller) message.
                let bad = self.pending_sends.pop_front().expect("head exists");
                self.events.push(SeqPacketEvent::SendError {
                    id: bad.id,
                    len: bad.len,
                    advertised: advert.len,
                });
                continue;
            }
            let head = self.pending_sends.pop_front().expect("head exists");
            self.adverts.pop_front();
            let wr_id = self.next_wr;
            self.next_wr += 1;
            let sge = Sge::new(head.addr, head.len, head.key);
            let wr = SendWr::write_imm(
                wr_id,
                sge,
                RemoteAddr {
                    addr: advert.addr,
                    rkey: MrKey(advert.rkey),
                },
                encode_imm(TransferKind::Direct, head.len),
            );
            self.stage_wr(api, wr, true);
            self.peer_credits -= 1;
            self.wwi_owner.push_back((wr_id, (head.id, head.len)));
            self.stats.direct_transfers += 1;
            self.stats.direct_bytes += head.len as u64;
        }
    }

    /// Moves eligible control messages onto the TX queue (they are
    /// posted by the next [`SeqPacketSocket::flush_tx`], sharing its
    /// doorbell with any message WWIs staged in the same pass).
    fn flush_ctrl(&mut self, api: &mut impl VerbsPort) {
        while let Some(front) = self.pending_ctrl.front() {
            let needed = match front {
                Ctrl::Credit => CREDIT_RESERVE,
                _ => CREDIT_RESERVE + 1,
            };
            if self.peer_credits < needed {
                return;
            }
            if api.sq_outstanding(self.qpn) + self.tx.staged() >= self.cfg.sq_depth {
                return;
            }
            let ctrl = self.pending_ctrl.pop_front().expect("front exists");
            let msg = CtrlMsg {
                ctrl,
                credit_return: self.owed_credits,
            };
            self.owed_credits = 0;
            let wr_id = self.next_wr;
            self.next_wr += 1;
            self.stage_wr(api, SendWr::send_inline(wr_id, msg.encode_bytes()), false);
            self.peer_credits -= 1;
        }
    }

    /// Stages one WQE on the TX pipe (see [`TxPipe::stage`] for the
    /// signaling policy). `is_data` marks message WWIs.
    fn stage_wr(&mut self, api: &mut impl VerbsPort, wr: SendWr, is_data: bool) {
        let occupancy = api.sq_outstanding(self.qpn) + self.tx.staged();
        self.tx
            .stage(occupancy, &self.cfg, wr, is_data, &mut self.stats);
    }

    /// Posts the staged TX queue as postlists (see [`TxPipe::flush`]).
    fn flush_tx(&mut self, api: &mut impl VerbsPort) {
        self.tx.flush(api, self.qpn, &self.cfg, &mut self.stats);
    }

    /// Refreshes the CQ-pressure gauges from the backend into this
    /// endpoint's stats; call before serializing a snapshot.
    pub fn sync_cq_stats(&mut self, api: &impl VerbsPort) {
        let s = api.cq_pressure(self.send_cq);
        let r = api.cq_pressure(self.recv_cq);
        self.stats.cq_overflowed = s.overflowed || r.overflowed;
        self.stats.cq_max_batch = s.max_batch.max(r.max_batch);
        self.stats.cq_nonempty_polls = s.nonempty_polls + r.nonempty_polls;
    }

    fn maybe_send_credit(&mut self, api: &mut impl VerbsPort) {
        if self.owed_credits >= self.credit_threshold
            && self.peer_credits >= CREDIT_RESERVE
            && !self.pending_ctrl.iter().any(|c| matches!(c, Ctrl::Credit))
        {
            self.pending_ctrl.push_back(Ctrl::Credit);
            self.stats.credits_sent += 1;
            self.flush_ctrl(api);
        }
    }
}

/// Intermediate product of [`SeqPacketSocket::prepare`].
pub struct PreparedSeqSocket {
    node: NodeId,
    qpn: QpNum,
    send_cq: CqId,
    recv_cq: CqId,
    cfg: ExsConfig,
    ctrl_mr: MrInfo,
}

impl PreparedSeqSocket {
    /// Finishes construction with the peer's parameters.
    pub fn complete(self, peer: SeqSetupInfo) -> SeqPacketSocket {
        let credit_threshold = self.cfg.effective_credit_threshold();
        SeqPacketSocket {
            node: self.node,
            qpn: self.qpn,
            send_cq: self.send_cq,
            recv_cq: self.recv_cq,
            ctrl_mr: self.ctrl_mr,
            adverts: VecDeque::new(),
            pending_sends: VecDeque::new(),
            recv_queue: VecDeque::new(),
            wwi_owner: VecDeque::new(),
            next_wr: 1,
            tx: TxPipe::new(),
            next_seq: Seq::ZERO,
            cfg: self.cfg,
            peer_credits: peer.credits,
            owed_credits: 0,
            credit_threshold,
            pending_ctrl: VecDeque::new(),
            events: Vec::new(),
            stats: ConnStats::default(),
            mrs_released: false,
        }
    }
}
