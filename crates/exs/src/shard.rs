//! Sharded reactor: N independent [`Reactor`]s behind one assignment
//! policy, so event-loop throughput scales with cores instead of
//! saturating a single service loop.
//!
//! The paper's stream semantics are per-connection-independent — no
//! protocol state is shared between two EXS streams — which makes
//! horizontal scaling structurally simple: give each shard its own CQ
//! pair and its own reactor, route every accepted connection to exactly
//! one shard, and never look across the boundary again. The invariants
//! the design holds:
//!
//! * **Assignment happens once, at accept time.** [`ReactorPool::pick_shard`]
//!   applies the configured [`ShardPolicy`] and the connection's CQs,
//!   socket state and event queues live on that shard until close.
//! * **No cross-shard locks on the data path.** A shard's poll loop
//!   touches only its own reactor. The only cross-shard traffic is the
//!   accept handoff and (on the thread backend) a lock-free MPSC
//!   command queue per shard — see
//!   [`crate::threaded::ThreadReactorPool`].
//! * **Stats merge sums.** [`ReactorPool::reactor_stats`] and
//!   [`ReactorPool::aggregate_conn_stats`] sum counters across shards
//!   (peaks take the max), mirroring the `ConnStats::merge` fix that
//!   the fabric telemetry forced; per-shard [`ShardStats`] ride along
//!   so imbalance stays visible.
//!
//! On the simulator the pool is driven by one deterministic caller
//! ([`ReactorPool::poll_all_into`] interleaves the shards in shard
//! order); on the thread backend each shard gets its own service
//! thread. Both produce byte-identical streams for the same workload —
//! enforced by the `shard_identity` tests.

use crate::config::{ShardConfig, ShardPolicy};
use crate::mux::MuxEndpoint;
use crate::port::VerbsPort;
use crate::reactor::{ConnId, MuxId, Reactor, Readiness};
use crate::stats::{ConnStats, ReactorStats, ShardStats};
use crate::stream::StreamSocket;
use rdma_verbs::CqId;

/// A connection hosted by a [`ReactorPool`]: which shard it lives on
/// and its [`ConnId`] within that shard's reactor. The pair is the
/// pool-wide identity; bare `ConnId`s are only meaningful shard-locally.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct ShardHandle {
    /// Owning shard (0-based).
    pub shard: u32,
    /// Slot within the shard's reactor.
    pub conn: ConnId,
}

/// A mux endpoint hosted by a [`ReactorPool`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct ShardMuxHandle {
    /// Owning shard (0-based).
    pub shard: u32,
    /// Slot within the shard's reactor.
    pub mux: MuxId,
}

/// N reactors behind one assignment policy. Backend-agnostic: the
/// caller creates each shard's reactor over its own CQ pair (CQ
/// creation is a backend operation), the pool owns placement and
/// aggregation. See the module docs for the invariants.
pub struct ReactorPool {
    shards: Vec<Reactor>,
    cfg: ShardConfig,
    /// Next round-robin target; also the tie-breaker for LeastLoaded.
    rr_next: usize,
    /// Per-shard: connections ever routed here by the policy.
    assigned: Vec<u64>,
    /// Per-shard: LeastLoaded placements that deviated from the
    /// round-robin successor.
    steals: Vec<u64>,
    /// Reusable per-shard readiness buffer for `poll_all_into`.
    ready_buf: Vec<(ConnId, Readiness)>,
}

impl ReactorPool {
    /// Builds a pool over pre-constructed shard reactors (one per CQ
    /// pair). Panics if `shards` is empty or disagrees with
    /// `cfg.effective_shards()` — a mismatch means the caller sized the
    /// CQs for a different pool than it configured.
    pub fn new(shards: Vec<Reactor>, cfg: ShardConfig) -> ReactorPool {
        assert!(!shards.is_empty(), "a pool needs at least one shard");
        assert_eq!(
            shards.len(),
            cfg.effective_shards(),
            "shard count must match the config"
        );
        let n = shards.len();
        ReactorPool {
            shards,
            cfg,
            rr_next: 0,
            assigned: vec![0; n],
            steals: vec![0; n],
            ready_buf: Vec::new(),
        }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// The pool's shard configuration.
    pub fn config(&self) -> &ShardConfig {
        &self.cfg
    }

    /// One shard's reactor.
    pub fn shard(&self, shard: u32) -> &Reactor {
        &self.shards[shard as usize]
    }

    /// One shard's reactor, mutably (accept sockets, take events).
    pub fn shard_mut(&mut self, shard: u32) -> &mut Reactor {
        &mut self.shards[shard as usize]
    }

    /// The CQ pair `(send, recv)` a socket must be created on to land
    /// on the given shard.
    pub fn shard_cqs(&self, shard: u32) -> (CqId, CqId) {
        let r = &self.shards[shard as usize];
        (r.send_cq(), r.recv_cq())
    }

    /// Live connections currently hosted on one shard.
    pub fn shard_conns(&self, shard: u32) -> u64 {
        let s = self.shards[shard as usize].stats();
        s.conns_added - s.conns_removed
    }

    /// Chooses the shard for the next accepted connection and charges
    /// the assignment to it. Call this *before* creating the socket —
    /// the socket's CQs must be the chosen shard's
    /// ([`ReactorPool::shard_cqs`]). `affinity` feeds
    /// [`ShardPolicy::Affinity`]; the other policies ignore it, and
    /// `Affinity` without a key degrades to round-robin.
    pub fn pick_shard(&mut self, affinity: Option<u64>) -> u32 {
        let n = self.shards.len();
        let rr = self.rr_next;
        let (chosen, stole) = choose_shard(self.cfg.policy, rr, n, affinity, |s| {
            self.shard_conns(s as u32)
        });
        if stole {
            self.steals[chosen] += 1;
        }
        // The rotation advances on every pick regardless of policy, so
        // tie-breaking and affinity fallback stay spread out.
        self.rr_next = (rr + 1) % n;
        self.assigned[chosen] += 1;
        chosen as u32
    }

    /// Registers a socket on the given shard (normally the one
    /// [`ReactorPool::pick_shard`] just chose). The shard's reactor
    /// asserts the socket was created on its CQ pair.
    pub fn accept_on(&mut self, shard: u32, sock: StreamSocket) -> ShardHandle {
        let conn = self.shards[shard as usize].accept(sock);
        ShardHandle { shard, conn }
    }

    /// Registers a mux endpoint on the given shard.
    pub fn accept_mux_on(&mut self, shard: u32, ep: MuxEndpoint) -> ShardMuxHandle {
        let mux = self.shards[shard as usize].accept_mux(ep);
        ShardMuxHandle { shard, mux }
    }

    /// Deregisters and returns a connection's socket.
    pub fn remove(&mut self, handle: ShardHandle) -> StreamSocket {
        self.shards[handle.shard as usize].remove(handle.conn)
    }

    /// Polls every shard once, in shard order (the deterministic sim
    /// driver), appending each ready connection as `(handle,
    /// readiness)` to `out`. `out` is cleared first and the internal
    /// per-shard buffer is reused, so the steady state allocates
    /// nothing.
    pub fn poll_all_into(
        &mut self,
        api: &mut impl VerbsPort,
        out: &mut Vec<(ShardHandle, Readiness)>,
    ) {
        out.clear();
        let mut ready = std::mem::take(&mut self.ready_buf);
        for (s, reactor) in self.shards.iter_mut().enumerate() {
            reactor.poll_into(api, &mut ready);
            out.extend(ready.iter().map(|&(conn, r)| {
                (
                    ShardHandle {
                        shard: s as u32,
                        conn,
                    },
                    r,
                )
            }));
        }
        self.ready_buf = ready;
    }

    /// True when any shard's last poll left work behind (see
    /// [`Reactor::has_backlog`]).
    pub fn has_backlog(&self) -> bool {
        self.shards.iter().any(|r| r.has_backlog())
    }

    /// True while any shard still owes traffic to the wire (see
    /// [`Reactor::has_unsent`]). The pool-wide teardown condition: a
    /// driver that stops polling while this holds can strand a FIN.
    pub fn has_unsent(&self) -> bool {
        self.shards.iter().any(|r| r.has_unsent())
    }

    /// Event-loop counters merged across shards: counters sum, peaks
    /// take the max (see [`ReactorStats::merge`]).
    pub fn reactor_stats(&self) -> ReactorStats {
        let mut total = ReactorStats::default();
        for r in &self.shards {
            total.merge(r.stats());
        }
        total
    }

    /// Protocol counters of every connection and mux endpoint on every
    /// shard, merged.
    pub fn aggregate_conn_stats(&self) -> ConnStats {
        let mut total = ConnStats::default();
        for r in &self.shards {
            total.merge(&r.aggregate_conn_stats());
        }
        total
    }

    /// Per-shard telemetry (placement, steals, poll/dispatch volume).
    /// `busy_ns`/`wall_ns`/`commands` stay zero here — only the thread
    /// backend's service loops sample a wall clock; its pool overlays
    /// them (see `ThreadReactorPool::shard_stats`).
    pub fn shard_stats(&self) -> Vec<ShardStats> {
        self.shards
            .iter()
            .enumerate()
            .map(|(s, r)| {
                let rs = r.stats();
                ShardStats {
                    shard_id: s as u32,
                    conns: rs.conns_added - rs.conns_removed,
                    assigned: self.assigned[s],
                    steals: self.steals[s],
                    commands: 0,
                    polls: rs.polls,
                    cqes_dispatched: rs.cqes_dispatched,
                    busy_ns: 0,
                    wall_ns: 0,
                }
            })
            .collect()
    }
}

/// Applies a [`ShardPolicy`] to one placement decision. `rr` is the
/// current rotation cursor, `load` probes a shard's live connection
/// count (consulted only by `LeastLoaded`). Returns `(chosen, stole)`
/// where `stole` marks a `LeastLoaded` deviation from the round-robin
/// successor. Shared by [`ReactorPool`] and the thread backend's
/// `ThreadReactorPool`, so both backends place identically for the
/// same inputs — the property the cross-backend identity tests lean
/// on.
pub fn choose_shard(
    policy: ShardPolicy,
    rr: usize,
    shards: usize,
    affinity: Option<u64>,
    load: impl Fn(usize) -> u64,
) -> (usize, bool) {
    match policy {
        ShardPolicy::RoundRobin => (rr, false),
        ShardPolicy::LeastLoaded => {
            // Min live conns; ties break toward the round-robin
            // successor so a fresh pool still spreads evenly.
            let mut best = rr;
            let mut best_load = load(rr);
            for step in 1..shards {
                let s = (rr + step) % shards;
                let l = load(s);
                if l < best_load {
                    best = s;
                    best_load = l;
                }
            }
            (best, best != rr)
        }
        ShardPolicy::Affinity => match affinity {
            Some(key) => (ShardPolicy::affinity_shard(key, shards), false),
            None => (rr, false),
        },
    }
}

/// Summary of a pool's placement balance, for reports: max and mean
/// connections per shard. `imbalance()` = max/mean — 1.0 is perfect.
#[derive(Clone, Copy, Debug, Default)]
pub struct ShardBalance {
    /// Connections on the fullest shard.
    pub max_conns: u64,
    /// Mean connections per shard.
    pub mean_conns: f64,
}

impl ShardBalance {
    /// Computes the balance over per-shard telemetry (uses `assigned`
    /// so the summary stays meaningful after connections close).
    pub fn of(shards: &[ShardStats]) -> ShardBalance {
        if shards.is_empty() {
            return ShardBalance::default();
        }
        let max_conns = shards.iter().map(|s| s.assigned).max().unwrap_or(0);
        let total: u64 = shards.iter().map(|s| s.assigned).sum();
        ShardBalance {
            max_conns,
            mean_conns: total as f64 / shards.len() as f64,
        }
    }

    /// Max-over-mean placement skew (1.0 = perfectly even).
    pub fn imbalance(&self) -> f64 {
        if self.mean_conns == 0.0 {
            0.0
        } else {
            self.max_conns as f64 / self.mean_conns
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ShardPolicy;
    use crate::reactor::ReactorConfig;
    use crate::ExsConfig;
    use rdma_verbs::{HcaConfig, HostModel, NodeId, SimNet};
    use simnet::{LinkConfig, SimDuration};

    fn pool_on(net: &mut SimNet, node: NodeId, shards: usize) -> ReactorPool {
        let cfg = ShardConfig {
            shards,
            ..ShardConfig::default()
        };
        let reactors = (0..shards)
            .map(|_| {
                let (scq, rcq) = net.with_api(node, |api| (api.create_cq(256), api.create_cq(256)));
                Reactor::new(scq, rcq, ReactorConfig::default())
            })
            .collect();
        ReactorPool::new(reactors, cfg)
    }

    fn two_nodes() -> (SimNet, NodeId, NodeId) {
        let mut net = SimNet::new();
        let a = net.add_node(HostModel::free(), HcaConfig::default());
        let b = net.add_node(HostModel::free(), HcaConfig::default());
        net.connect_nodes(
            a,
            b,
            LinkConfig::simple(100_000_000_000, SimDuration::from_micros(1)),
            0,
        );
        (net, a, b)
    }

    #[test]
    fn round_robin_spreads_evenly() {
        let mut net = SimNet::new();
        let node = net.add_node(HostModel::free(), HcaConfig::default());
        let mut pool = pool_on(&mut net, node, 4);
        let picks: Vec<u32> = (0..12).map(|_| pool.pick_shard(None)).collect();
        assert_eq!(picks, vec![0, 1, 2, 3, 0, 1, 2, 3, 0, 1, 2, 3]);
        let stats = pool.shard_stats();
        assert!(stats.iter().all(|s| s.assigned == 3));
        assert!(stats.iter().all(|s| s.steals == 0));
        let bal = ShardBalance::of(&stats);
        assert_eq!(bal.max_conns, 3);
        assert!((bal.imbalance() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn affinity_is_sticky_and_in_range() {
        let mut net = SimNet::new();
        let node = net.add_node(HostModel::free(), HcaConfig::default());
        let cfg = ShardConfig {
            shards: 4,
            policy: ShardPolicy::Affinity,
        };
        let reactors = (0..4)
            .map(|_| {
                let (scq, rcq) = net.with_api(node, |api| (api.create_cq(64), api.create_cq(64)));
                Reactor::new(scq, rcq, ReactorConfig::default())
            })
            .collect();
        let mut pool = ReactorPool::new(reactors, cfg);
        for key in 0..64u64 {
            let a = pool.pick_shard(Some(key));
            let b = pool.pick_shard(Some(key));
            assert_eq!(a, b, "same key must land on the same shard");
            assert!((a as usize) < 4);
            assert_eq!(a as usize, ShardPolicy::affinity_shard(key, 4));
        }
        // No key: degrades to the rotation, still in range.
        assert!((pool.pick_shard(None) as usize) < 4);
    }

    #[test]
    fn accept_places_conn_on_chosen_shard_and_stats_merge() {
        let (mut net, a, b) = two_nodes();
        let cfg = ExsConfig {
            ring_capacity: 4096,
            credits: 8,
            sq_depth: 16,
            ..ExsConfig::default()
        };
        let mut pool = pool_on(&mut net, b, 2);
        let mut handles = Vec::new();
        for _ in 0..4 {
            let shard = pool.pick_shard(None);
            let (send_cq, recv_cq) = pool.shard_cqs(shard);
            let (_c, s) =
                crate::stream::StreamSocket::pair_shared(&mut net, a, b, send_cq, recv_cq, &cfg);
            handles.push(pool.accept_on(shard, s));
        }
        assert_eq!(pool.shard_conns(0), 2);
        assert_eq!(pool.shard_conns(1), 2);
        assert_eq!(handles[0].shard, 0);
        assert_eq!(handles[1].shard, 1);
        let merged = pool.reactor_stats();
        assert_eq!(merged.conns_added, 4, "merged stats sum across shards");
        let removed = pool.remove(handles[2]);
        drop(removed);
        assert_eq!(pool.shard_conns(0), 1);
        assert_eq!(pool.reactor_stats().conns_removed, 1);
    }

    #[test]
    fn least_loaded_prefers_empty_shard_and_counts_steals() {
        let (mut net, a, b) = two_nodes();
        let cfg = ExsConfig {
            ring_capacity: 4096,
            credits: 8,
            sq_depth: 16,
            ..ExsConfig::default()
        };
        let shard_cfg = ShardConfig {
            shards: 2,
            policy: ShardPolicy::LeastLoaded,
        };
        let reactors = (0..2)
            .map(|_| {
                let (scq, rcq) = net.with_api(b, |api| (api.create_cq(256), api.create_cq(256)));
                Reactor::new(scq, rcq, ReactorConfig::default())
            })
            .collect();
        let mut pool = ReactorPool::new(reactors, shard_cfg);

        // Preload shard 0 with two conns placed directly, skewing load.
        for _ in 0..2 {
            let (send_cq, recv_cq) = pool.shard_cqs(0);
            let (_c, s) =
                crate::stream::StreamSocket::pair_shared(&mut net, a, b, send_cq, recv_cq, &cfg);
            pool.accept_on(0, s);
        }
        // Least-loaded must route to shard 1 even when the rotation
        // points at 0 — that deviation is a steal.
        let shard = pool.pick_shard(None);
        assert_eq!(shard, 1);
        let stats = pool.shard_stats();
        assert_eq!(stats[1].steals, 1);
    }
}
