//! Blocking, thread-safe stream sockets over the real-thread fabric.
//!
//! The paper's stated problem is "to design a **thread-safe** algorithm
//! that combines the zero-copy benefit of RDMA with the fast send
//! response benefit of TCP-style buffering" (§I). The deterministic
//! simulator regenerates the figures; this module runs the *same*
//! protocol state machines under genuine OS concurrency:
//!
//! * a [`ThreadStream`] endpoint wraps a [`StreamSocket`] in a mutex;
//! * a service thread per endpoint waits on the node's completion
//!   signal, drives `handle_wake`, and publishes completion events;
//! * any number of application threads issue sends and receives
//!   concurrently and block on their completions.
//!
//! Concurrent `send` calls are each atomic in the byte stream (the
//! socket lock orders them); the interleaving *between* threads is
//! unspecified, exactly like concurrent `write(2)` on a pipe.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicPtr, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::{Condvar, Mutex};
use rdma_verbs::threaded::{ThreadNet, ThreadNode};
use rdma_verbs::{Access, CqId, Cqe, MrInfo, MrKey, QpCaps, QpNum, RecvWr, Result, SendWr};

use crate::config::ExsConfig;
use crate::mempool::{MemPool, MrLease};
use crate::mux::MuxEndpoint;
use crate::port::VerbsPort;
use crate::reactor::{ConnId, Reactor, ReactorConfig, Readiness};
use crate::shard::{choose_shard, ShardHandle};
use crate::stats::{ConnStats, PoolStats, ReactorStats, ShardStats};
use crate::stream::{ExsEvent, PreparedSocket, StreamSocket, CTRL_SLOT};

/// [`VerbsPort`] implementation over a [`ThreadNet`] node.
pub struct ThreadPort<'a> {
    net: &'a ThreadNet,
    node: &'a Arc<ThreadNode>,
}

impl<'a> ThreadPort<'a> {
    /// Builds a port for one node.
    pub fn new(net: &'a ThreadNet, node: &'a Arc<ThreadNode>) -> Self {
        ThreadPort { net, node }
    }
}

impl VerbsPort for ThreadPort<'_> {
    fn post_send(&mut self, qpn: QpNum, wr: SendWr) -> Result<()> {
        self.net.post_send(self.node, qpn, wr)
    }

    fn post_send_list(&mut self, qpn: QpNum, wrs: Vec<SendWr>) -> Result<()> {
        self.net.post_send_list(self.node, qpn, wrs)
    }

    fn post_recv(&mut self, qpn: QpNum, wr: RecvWr) -> Result<()> {
        self.node.post_recv(qpn, wr)
    }

    fn poll_cq(&mut self, cq: CqId, max: usize, out: &mut Vec<Cqe>) -> Result<usize> {
        self.node.poll_cq(cq, max, out)
    }

    fn read_mr(&self, key: MrKey, addr: u64, buf: &mut [u8]) -> Result<()> {
        self.node.with_hca(|h| h.mem().app_read(key, addr, buf))
    }

    fn copy_mr(
        &mut self,
        src_key: MrKey,
        src_addr: u64,
        dst_key: MrKey,
        dst_addr: u64,
        len: u64,
    ) -> Result<u64> {
        self.node.with_hca(|h| {
            h.mem_mut()
                .local_copy(src_key, src_addr, dst_key, dst_addr, len)
        })
    }

    fn charge_cqe_cost(&mut self) {
        // Real threads spend real time; no modelled CPU.
    }

    fn sq_outstanding(&self, qpn: QpNum) -> usize {
        self.node
            .with_hca(|h| h.qp(qpn).map(|q| q.sq_outstanding()).unwrap_or(usize::MAX))
    }

    fn register_mr(&mut self, len: usize, access: Access) -> MrInfo {
        self.node.with_hca(|h| h.register_mr(len, access))
    }

    fn deregister_mr(&mut self, key: MrKey) -> Result<()> {
        self.node.with_hca(|h| h.deregister_mr(key))
    }

    fn write_mr(&mut self, key: MrKey, addr: u64, data: &[u8]) -> Result<()> {
        self.node
            .with_hca(|h| h.mem_mut().app_write(key, addr, data))
    }

    fn cq_pressure(&self, cq: CqId) -> crate::port::CqPressure {
        self.node.with_hca(|h| {
            h.cq(cq)
                .map(|q| crate::port::CqPressure {
                    overflowed: q.overflowed(),
                    max_batch: q.max_batch(),
                    nonempty_polls: q.nonempty_polls(),
                })
                .unwrap_or_default()
        })
    }
}

/// Creates one endpoint's verbs objects on `node`: CQs (or the given
/// shared ones), a QP, the intermediate ring and the control-slot
/// region. Returns `(qpn, send_cq, recv_cq, ring_mr, ctrl_mr)`.
fn endpoint_objects(
    node: &Arc<ThreadNode>,
    cfg: &ExsConfig,
    shared_cqs: Option<(CqId, CqId)>,
) -> (QpNum, CqId, CqId, MrInfo, MrInfo) {
    let caps = QpCaps {
        max_send_wr: cfg.sq_depth * 2 + 8,
        max_recv_wr: cfg.credits as usize + 8,
        max_inline: 256,
    };
    let cq_depth = cfg.sq_depth * 2 + cfg.credits as usize * 2;
    node.with_hca(|h| {
        let (send_cq, recv_cq) = match shared_cqs {
            Some(cqs) => cqs,
            None => (h.create_cq(cq_depth), h.create_cq(cq_depth)),
        };
        let qpn = h.create_qp(send_cq, recv_cq, caps).expect("create qp");
        let ring_mr = h.register_mr(cfg.ring_capacity as usize, Access::local_remote_write());
        let ctrl_mr = h.register_mr(
            (cfg.credits as u64 * CTRL_SLOT) as usize,
            Access::LOCAL_WRITE,
        );
        (qpn, send_cq, recv_cq, ring_mr, ctrl_mr)
    })
}

/// Connects a fresh [`StreamSocket`] pair between two nodes of an
/// existing thread fabric. With `b_cqs`, `b`'s QP completes onto those
/// shared CQs (the [`ThreadReactor`] accept path) instead of private
/// ones.
pub fn connect_sockets_over(
    a: &Arc<ThreadNode>,
    b: &Arc<ThreadNode>,
    cfg: &ExsConfig,
    b_cqs: Option<(CqId, CqId)>,
) -> (StreamSocket, StreamSocket) {
    connect_sockets_shared(a, b, cfg, None, b_cqs)
}

/// [`connect_sockets_over`] with shared CQs available on *either*
/// side: a client-side reactor/executor that multiplexes several
/// outbound connections needs `a`'s QPs to complete onto one CQ pair
/// just like the server accept path does.
pub fn connect_sockets_shared(
    a: &Arc<ThreadNode>,
    b: &Arc<ThreadNode>,
    cfg: &ExsConfig,
    a_cqs: Option<(CqId, CqId)>,
    b_cqs: Option<(CqId, CqId)>,
) -> (StreamSocket, StreamSocket) {
    let (a_qp, a_scq, a_rcq, a_ring, a_ctrl) = endpoint_objects(a, cfg, a_cqs);
    let (b_qp, b_scq, b_rcq, b_ring, b_ctrl) = endpoint_objects(b, cfg, b_cqs);
    a.with_hca(|h| h.connect_qp(a_qp, (b.id(), b_qp)).expect("connect a"));
    b.with_hca(|h| h.connect_qp(b_qp, (a.id(), a_qp)).expect("connect b"));
    for (node, qpn, ctrl) in [(a, a_qp, a_ctrl), (b, b_qp, b_ctrl)] {
        for slot in 0..cfg.credits {
            let sge = ctrl.sge(slot as u64 * CTRL_SLOT, CTRL_SLOT as u32);
            node.post_recv(qpn, RecvWr::new(slot as u64, sge))
                .expect("pre-post control receive");
        }
    }
    let (pa, ia) =
        PreparedSocket::from_raw(a.id(), a_qp, a_scq, a_rcq, cfg.clone(), a_ring, a_ctrl);
    let (pb, ib) =
        PreparedSocket::from_raw(b.id(), b_qp, b_scq, b_rcq, cfg.clone(), b_ring, b_ctrl);
    (pa.complete(ib), pb.complete(ia))
}

/// Establishes every pending transport-pool slot between two
/// [`MuxEndpoint`]s over the real-thread fabric — the threaded
/// analogue of [`crate::mux::connect_mux_pair`]. Each endpoint gets
/// (or keeps) one shared CQ pair; one QP per pending slot is created
/// against it on both sides, connected, and the out-of-band parameter
/// exchange runs through [`MuxEndpoint::prepare_transport`] /
/// [`MuxEndpoint::connect_transport`].
pub fn connect_mux_over(
    net: &ThreadNet,
    a: (&Arc<ThreadNode>, &mut MuxEndpoint),
    b: (&Arc<ThreadNode>, &mut MuxEndpoint),
) {
    let (an, a_ep) = a;
    let (bn, b_ep) = b;
    let caps = MuxEndpoint::transport_caps(a_ep.config());
    let cq_depth = MuxEndpoint::shared_cq_depth(a_ep.config());
    let mut slots = a_ep.pending_slots();
    for s in b_ep.pending_slots() {
        if !slots.contains(&s) {
            slots.push(s);
        }
    }
    slots.sort_unstable();
    for slot in slots {
        if a_ep.slot_qpn(slot).is_some() || b_ep.slot_qpn(slot).is_some() {
            continue;
        }
        if a_ep.cqs().is_none() {
            let (s, r) = an.with_hca(|h| (h.create_cq(cq_depth), h.create_cq(cq_depth)));
            a_ep.set_cqs(s, r);
        }
        if b_ep.cqs().is_none() {
            let (s, r) = bn.with_hca(|h| (h.create_cq(cq_depth), h.create_cq(cq_depth)));
            b_ep.set_cqs(s, r);
        }
        let (a_scq, a_rcq) = a_ep.cqs().expect("just set");
        let (b_scq, b_rcq) = b_ep.cqs().expect("just set");
        let a_qp = an.with_hca(|h| h.create_qp(a_scq, a_rcq, caps).expect("create mux qp"));
        let b_qp = bn.with_hca(|h| h.create_qp(b_scq, b_rcq, caps).expect("create mux qp"));
        an.with_hca(|h| h.connect_qp(a_qp, (bn.id(), b_qp)).expect("connect a"));
        bn.with_hca(|h| h.connect_qp(b_qp, (an.id(), a_qp)).expect("connect b"));
        let ia = {
            let mut port = ThreadPort::new(net, an);
            a_ep.prepare_transport(&mut port, slot, a_qp, a_scq, a_rcq)
        };
        let ib = {
            let mut port = ThreadPort::new(net, bn);
            b_ep.prepare_transport(&mut port, slot, b_qp, b_scq, b_rcq)
        };
        a_ep.connect_transport(slot, ib);
        b_ep.connect_transport(slot, ia);
    }
}

#[derive(Default)]
struct EventBuf {
    sends_done: HashMap<u64, u64>,
    recvs_done: HashMap<u64, u32>,
    peer_closed: bool,
    broken: bool,
}

impl EventBuf {
    fn absorb(&mut self, events: Vec<ExsEvent>) {
        for ev in events {
            match ev {
                ExsEvent::SendComplete { id, len } => {
                    self.sends_done.insert(id, len);
                }
                ExsEvent::RecvComplete { id, len } => {
                    self.recvs_done.insert(id, len);
                }
                ExsEvent::PeerClosed => self.peer_closed = true,
                ExsEvent::ConnectionError => self.broken = true,
            }
        }
    }
}

struct Shared {
    sock: Mutex<StreamSocket>,
    events: Mutex<EventBuf>,
    cv: Condvar,
    stop: AtomicBool,
}

/// A blocking, thread-safe stream endpoint.
///
/// Cloning the handle (via `Arc`) lets many threads share one
/// connection; each operation blocks its calling thread until the
/// protocol reports completion.
///
/// ```
/// use exs::{ExsConfig, ThreadStream};
/// use std::time::Duration;
///
/// let (a, b) = ThreadStream::pair(&ExsConfig::default(), Duration::ZERO);
/// let writer = std::thread::spawn(move || {
///     a.send_bytes(b"hello").unwrap();
/// });
/// let mut buf = [0u8; 5];
/// b.recv_exact(&mut buf).unwrap();
/// assert_eq!(&buf, b"hello");
/// writer.join().unwrap();
/// ```
pub struct ThreadStream {
    net: Arc<ThreadNet>,
    node: Arc<ThreadNode>,
    shared: Arc<Shared>,
    /// Staging-buffer pool, shared with every other endpoint on the
    /// same node (the reactor accept path hands all clients of one
    /// node the same pool).
    pool: MemPool,
    next_id: AtomicU64,
    service: Option<std::thread::JoinHandle<()>>,
}

impl ThreadStream {
    /// Creates a connected pair of blocking stream endpoints over a
    /// fresh two-node thread fabric with the given real link delay.
    pub fn pair(cfg: &ExsConfig, delay: Duration) -> (ThreadStream, ThreadStream) {
        let mut net = ThreadNet::new();
        let a = net.add_node(rdma_verbs::HcaConfig::default());
        let b = net.add_node(rdma_verbs::HcaConfig::default());
        net.connect_nodes(&a, &b, delay);
        let net = Arc::new(net);
        let (sock_a, sock_b) = connect_sockets_over(&a, &b, cfg, None);
        (
            ThreadStream::start(net.clone(), a, sock_a, MemPool::new(cfg.pool.clone())),
            ThreadStream::start(net, b, sock_b, MemPool::new(cfg.pool.clone())),
        )
    }

    fn start(
        net: Arc<ThreadNet>,
        node: Arc<ThreadNode>,
        sock: StreamSocket,
        pool: MemPool,
    ) -> ThreadStream {
        let shared = Arc::new(Shared {
            sock: Mutex::new(sock),
            events: Mutex::new(EventBuf::default()),
            cv: Condvar::new(),
            stop: AtomicBool::new(false),
        });
        let service = {
            let shared = shared.clone();
            let net = net.clone();
            let node = node.clone();
            std::thread::spawn(move || {
                let mut seen = node.generation();
                while !shared.stop.load(Ordering::Acquire) {
                    seen = node.wait_any(seen, Duration::from_millis(50));
                    let events = {
                        let mut sock = shared.sock.lock();
                        let mut port = ThreadPort::new(&net, &node);
                        sock.handle_wake(&mut port);
                        sock.take_events()
                    };
                    if !events.is_empty() {
                        shared.events.lock().absorb(events);
                        shared.cv.notify_all();
                    }
                }
            })
        };
        ThreadStream {
            net,
            node,
            shared,
            pool,
            next_id: AtomicU64::new(1),
            service: Some(service),
        }
    }

    /// The endpoint's node (for memory registration and inspection).
    pub fn node(&self) -> &Arc<ThreadNode> {
        &self.node
    }

    /// Registers I/O memory on this endpoint's node. The caller owns
    /// the registration; prefer [`ThreadStream::acquire`] for
    /// pool-cached buffers that release themselves.
    pub fn register(&self, len: usize, access: Access) -> MrInfo {
        self.node.with_hca(|h| h.register_mr(len, access))
    }

    /// Leases a registered buffer from this node's pin-down cache.
    pub fn acquire(&self, len: usize, access: Access) -> MrLease {
        let mut port = ThreadPort::new(&self.net, &self.node);
        self.pool.acquire(&mut port, len, access)
    }

    /// This node's staging-pool handle.
    pub fn pool(&self) -> &MemPool {
        &self.pool
    }

    /// Starts an asynchronous send from registered memory; returns the
    /// operation id. The buffer must stay untouched until
    /// [`ThreadStream::wait_send`] returns it.
    pub fn send(&self, mr: &MrInfo, offset: u64, len: u64) -> u64 {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let mut sock = self.shared.sock.lock();
        let mut port = ThreadPort::new(&self.net, &self.node);
        sock.exs_send(&mut port, mr, offset, len, id);
        let events = sock.take_events();
        drop(sock);
        self.publish(events);
        id
    }

    /// Starts an asynchronous receive into registered memory.
    pub fn recv(&self, mr: &MrInfo, offset: u64, len: u32, waitall: bool) -> u64 {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let mut sock = self.shared.sock.lock();
        let mut port = ThreadPort::new(&self.net, &self.node);
        sock.exs_recv(&mut port, mr, offset, len, waitall, id);
        let events = sock.take_events();
        drop(sock);
        self.publish(events);
        id
    }

    fn publish(&self, events: Vec<ExsEvent>) {
        if events.is_empty() {
            return;
        }
        self.shared.events.lock().absorb(events);
        self.shared.cv.notify_all();
    }

    /// Blocks until send `id` completes; returns the bytes sent, or
    /// `None` on timeout.
    pub fn wait_send(&self, id: u64, timeout: Duration) -> Option<u64> {
        let deadline = std::time::Instant::now() + timeout;
        let mut buf = self.shared.events.lock();
        loop {
            if let Some(len) = buf.sends_done.remove(&id) {
                return Some(len);
            }
            let now = std::time::Instant::now();
            if now >= deadline {
                return None;
            }
            self.shared
                .cv
                .wait_for(&mut buf, deadline.saturating_duration_since(now));
        }
    }

    /// Blocks until receive `id` completes; returns the bytes received,
    /// or `None` on timeout.
    pub fn wait_recv(&self, id: u64, timeout: Duration) -> Option<u32> {
        let deadline = std::time::Instant::now() + timeout;
        let mut buf = self.shared.events.lock();
        loop {
            if let Some(len) = buf.recvs_done.remove(&id) {
                return Some(len);
            }
            let now = std::time::Instant::now();
            if now >= deadline {
                return None;
            }
            self.shared
                .cv
                .wait_for(&mut buf, deadline.saturating_duration_since(now));
        }
    }

    /// Convenience: sends `data` through a pool-leased staging buffer
    /// and blocks until the stream has consumed it. Atomic in the
    /// stream with respect to other concurrent `send_bytes` calls. The
    /// lease returns to the node's pin-down cache on completion, so
    /// repeated calls reuse one registration instead of registering
    /// (and leaking) a region per call.
    pub fn send_bytes(&self, data: &[u8]) -> std::result::Result<(), &'static str> {
        let lease = self.acquire(data.len().max(1), Access::NONE);
        {
            let mut port = ThreadPort::new(&self.net, &self.node);
            lease
                .write(&mut port, 0, data)
                .map_err(|_| "staging write failed")?;
        }
        let id = self.send(lease.info(), 0, data.len() as u64);
        self.wait_send(id, Duration::from_secs(30))
            .map(|_| ())
            .ok_or("send timed out")
    }

    /// Convenience: blocks until exactly `buf.len()` bytes arrive
    /// (MSG_WAITALL through a pool-leased staging buffer).
    pub fn recv_exact(&self, buf: &mut [u8]) -> std::result::Result<(), &'static str> {
        let lease = self.acquire(buf.len().max(1), Access::local_remote_write());
        let id = self.recv(lease.info(), 0, buf.len() as u32, true);
        self.wait_recv(id, Duration::from_secs(30))
            .ok_or("receive timed out")?;
        let port = ThreadPort::new(&self.net, &self.node);
        lease.read(&port, 0, buf).map_err(|_| "staging read failed")
    }

    /// Pushes any coalesced-and-held small sends and staged WQEs to the
    /// HCA immediately (the latency opt-out from transmit batching;
    /// without it a held send goes out at the next service-thread
    /// wake).
    pub fn flush(&self) {
        let events = {
            let mut sock = self.shared.sock.lock();
            let mut port = ThreadPort::new(&self.net, &self.node);
            sock.tx_flush(&mut port);
            sock.take_events()
        };
        self.publish(events);
    }

    /// Half-closes the sending direction; queued data still drains.
    pub fn shutdown(&self) {
        let mut sock = self.shared.sock.lock();
        let mut port = ThreadPort::new(&self.net, &self.node);
        sock.exs_shutdown(&mut port);
    }

    /// True once the peer has closed and its stream fully drained.
    pub fn peer_closed(&self) -> bool {
        self.shared.events.lock().peer_closed
    }

    /// True once the transport failed underneath the socket.
    pub fn is_broken(&self) -> bool {
        self.shared.events.lock().broken
    }

    /// Protocol statistics snapshot.
    pub fn stats(&self) -> crate::stats::ConnStats {
        self.shared.sock.lock().stats().clone()
    }

    /// Closes the endpoint: stops the service thread, releases every
    /// registration the socket owns, and trims this handle's share of
    /// the staging pool. Idle registrations held for other endpoints on
    /// the same node stay cached; live leases elsewhere are untouched.
    pub fn close(&mut self) {
        self.shared.stop.store(true, Ordering::Release);
        self.shared.cv.notify_all();
        if let Some(h) = self.service.take() {
            let _ = h.join();
        }
        // Late control traffic from the peer (final ACKs, credit
        // returns) may still be in flight; let it land while our
        // control slots are still registered.
        self.net.quiesce();
        let mut sock = self.shared.sock.lock();
        let mut port = ThreadPort::new(&self.net, &self.node);
        sock.close(&mut port);
        self.pool.trim(&mut port);
    }
}

impl Drop for ThreadStream {
    fn drop(&mut self) {
        self.shared.stop.store(true, Ordering::Release);
        self.shared.cv.notify_all();
        if let Some(h) = self.service.take() {
            let _ = h.join();
        }
    }
}

struct ReactorShared {
    reactor: Mutex<Reactor>,
    /// Per-connection completion buffers, keyed by `ConnId.0`.
    events: Mutex<HashMap<u32, EventBuf>>,
    cv: Condvar,
    stop: AtomicBool,
}

/// A cross-shard request for a shard's service thread, delivered
/// through its lock-free [`CommandQueue`] — the only way (besides the
/// accept handoff) anything outside a shard touches its state.
#[derive(Clone, Copy, Debug)]
enum ShardCommand {
    /// Detach a connection from the shard's reactor; the socket is
    /// handed back through the retire mailbox for the caller to close.
    Close(ConnId),
}

/// Lock-free MPSC command queue: a Treiber stack that any thread
/// pushes onto and the owning shard's service thread drains (swap the
/// head, then reverse for FIFO order). Commands are rare (closes,
/// teardown nudges) — the point is not queue throughput but that the
/// data path never takes a cross-shard lock, so a command push can
/// never block a peer shard's poll loop.
struct CommandQueue {
    head: AtomicPtr<CmdNode>,
}

struct CmdNode {
    cmd: ShardCommand,
    next: *mut CmdNode,
}

unsafe impl Send for CommandQueue {}
unsafe impl Sync for CommandQueue {}

impl CommandQueue {
    fn new() -> CommandQueue {
        CommandQueue {
            head: AtomicPtr::new(std::ptr::null_mut()),
        }
    }

    fn push(&self, cmd: ShardCommand) {
        let node = Box::into_raw(Box::new(CmdNode {
            cmd,
            next: std::ptr::null_mut(),
        }));
        loop {
            let head = self.head.load(Ordering::Acquire);
            unsafe { (*node).next = head };
            if self
                .head
                .compare_exchange_weak(head, node, Ordering::Release, Ordering::Acquire)
                .is_ok()
            {
                break;
            }
        }
    }

    fn is_empty(&self) -> bool {
        self.head.load(Ordering::Acquire).is_null()
    }

    /// Detaches the whole stack and appends the commands to `out` in
    /// FIFO (push) order.
    fn drain_into(&self, out: &mut Vec<ShardCommand>) {
        let mut head = self.head.swap(std::ptr::null_mut(), Ordering::AcqRel);
        let start = out.len();
        while !head.is_null() {
            let node = unsafe { Box::from_raw(head) };
            head = node.next;
            out.push(node.cmd);
        }
        out[start..].reverse();
    }
}

impl Drop for CommandQueue {
    fn drop(&mut self) {
        let mut sink = Vec::new();
        self.drain_into(&mut sink);
    }
}

/// Per-shard control block shared between a pool and one shard's
/// service thread: the command queue, the retire mailbox for closed
/// sockets, and the shard's busy/wall telemetry.
struct ShardCtl {
    commands: CommandQueue,
    /// Sockets detached by a `Close` command, waiting for the caller
    /// to finalize (quiesce + deregister). Keyed by `ConnId.0`.
    retired: Mutex<Vec<(u32, StreamSocket)>>,
    commands_drained: AtomicU64,
    busy_ns: AtomicU64,
    wall_ns: AtomicU64,
}

impl ShardCtl {
    fn new() -> ShardCtl {
        ShardCtl {
            commands: CommandQueue::new(),
            retired: Mutex::new(Vec::new()),
            commands_drained: AtomicU64::new(0),
            busy_ns: AtomicU64::new(0),
            wall_ns: AtomicU64::new(0),
        }
    }
}

/// The reactor service loop shared by [`ThreadReactor`] (one shard, no
/// control block) and [`ThreadReactorPool`] (one of these threads per
/// shard). Parks on the node's completion signal, drains cross-shard
/// commands, performs one bounded poll, and publishes harvested events
/// — reusing its readiness/harvest buffers so the steady state
/// allocates nothing per wake.
fn spawn_reactor_service(
    net: Arc<ThreadNet>,
    node: Arc<ThreadNode>,
    shared: Arc<ReactorShared>,
    ctl: Option<Arc<ShardCtl>>,
) -> std::thread::JoinHandle<()> {
    std::thread::spawn(move || {
        let epoch = std::time::Instant::now();
        let mut seen = node.generation();
        let mut backlog = false;
        let mut ready: Vec<(ConnId, Readiness)> = Vec::new();
        let mut harvested: Vec<(u32, Vec<ExsEvent>)> = Vec::new();
        let mut commands: Vec<ShardCommand> = Vec::new();
        while !shared.stop.load(Ordering::Acquire) {
            if !backlog {
                // Park on the completion signal only when the last
                // poll fully drained: bounded polls are edge-free, so
                // leftover work must be serviced without waiting for a
                // new completion.
                seen = node.wait_any(seen, Duration::from_millis(50));
            }
            let work_start = std::time::Instant::now();
            if let Some(ctl) = &ctl {
                ctl.commands.drain_into(&mut commands);
                if !commands.is_empty() {
                    ctl.commands_drained
                        .fetch_add(commands.len() as u64, Ordering::Relaxed);
                    let mut reactor = shared.reactor.lock();
                    for cmd in commands.drain(..) {
                        match cmd {
                            ShardCommand::Close(conn) => {
                                let sock = reactor.remove(conn);
                                shared.events.lock().remove(&conn.0);
                                ctl.retired.lock().push((conn.0, sock));
                            }
                        }
                    }
                    drop(reactor);
                    shared.cv.notify_all();
                }
            }
            {
                let mut reactor = shared.reactor.lock();
                let mut port = ThreadPort::new(&net, &node);
                reactor.poll_into(&mut port, &mut ready);
                backlog = reactor.has_backlog();
                for &(conn, readiness) in &ready {
                    if readiness.readable || readiness.closed || readiness.error {
                        let events = reactor.take_events(conn);
                        let closed = reactor.conn(conn).peer_closed();
                        let broken = reactor.conn(conn).is_broken();
                        harvested.push((conn.0, events));
                        // Closed/error are level-triggered states with
                        // no event after the first take; mirror them
                        // into the buffer directly.
                        if closed || broken {
                            let last = harvested.last_mut().expect("just pushed");
                            if closed {
                                last.1.push(ExsEvent::PeerClosed);
                            }
                            if broken {
                                last.1.push(ExsEvent::ConnectionError);
                            }
                        }
                    }
                }
            }
            if !harvested.is_empty() {
                let mut bufs = shared.events.lock();
                for (conn, events) in harvested.drain(..) {
                    bufs.entry(conn).or_default().absorb(events);
                }
                drop(bufs);
                shared.cv.notify_all();
            }
            if let Some(ctl) = &ctl {
                ctl.busy_ns
                    .fetch_add(work_start.elapsed().as_nanos() as u64, Ordering::Relaxed);
                ctl.wall_ns
                    .store(epoch.elapsed().as_nanos() as u64, Ordering::Relaxed);
            }
        }
    })
}

/// Actively polls a reactor until nothing it hosts still owes traffic
/// to the wire ([`Reactor::has_unsent`]) or the bounded deadline
/// passes — the thread-backend extension of the aio `drained()`
/// teardown condition. Called before stopping a service thread: a
/// loop that stops at "no events pending" can strand a FIN queued
/// behind flow control, leaving the peer waiting for an end-of-stream
/// that never comes.
fn drain_reactor_unsent(net: &Arc<ThreadNet>, node: &Arc<ThreadNode>, shared: &ReactorShared) {
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    let mut scratch: Vec<(ConnId, Readiness)> = Vec::new();
    loop {
        {
            let mut reactor = shared.reactor.lock();
            if !reactor.has_unsent() {
                break;
            }
            let mut port = ThreadPort::new(net, node);
            reactor.poll_into(&mut port, &mut scratch);
        }
        if std::time::Instant::now() >= deadline {
            break;
        }
        std::thread::yield_now();
    }
}

/// A [`Reactor`] hosted on one node of the real-thread fabric.
///
/// Where each [`ThreadStream`] endpoint burns a service thread, a
/// `ThreadReactor` runs **one** service thread for every accepted
/// connection: the thread parks on the node's completion signal
/// ([`ThreadNode::wait_any`] — the completion-channel analogue), and
/// each wake performs one bounded [`Reactor::poll`] over the shared
/// CQs. Application threads post sends/receives on any accepted
/// connection and block on per-connection completions.
pub struct ThreadReactor {
    net: Arc<ThreadNet>,
    node: Arc<ThreadNode>,
    send_cq: CqId,
    recv_cq: CqId,
    shared: Arc<ReactorShared>,
    /// Pin-down cache for server-side buffers on the reactor's node.
    pool: MemPool,
    /// One staging pool per client node, shared by every endpoint
    /// [`ThreadReactor::accept`] creates on that node.
    client_pools: Mutex<HashMap<u32, MemPool>>,
    next_id: AtomicU64,
    service: Option<std::thread::JoinHandle<()>>,
}

impl ThreadReactor {
    /// Creates the reactor on `node`, with shared CQs sized for
    /// `max_conns` connections under `cfg`-shaped sockets.
    pub fn new(
        net: Arc<ThreadNet>,
        node: Arc<ThreadNode>,
        cfg: ReactorConfig,
        exs_cfg: &ExsConfig,
        max_conns: usize,
    ) -> ThreadReactor {
        let per_conn = exs_cfg.sq_depth * 2 + exs_cfg.credits as usize * 2;
        let cq_depth = per_conn * max_conns.max(1);
        let (send_cq, recv_cq) = node.with_hca(|h| (h.create_cq(cq_depth), h.create_cq(cq_depth)));
        let shared = Arc::new(ReactorShared {
            reactor: Mutex::new(Reactor::new(send_cq, recv_cq, cfg)),
            events: Mutex::new(HashMap::new()),
            cv: Condvar::new(),
            stop: AtomicBool::new(false),
        });
        let service = spawn_reactor_service(net.clone(), node.clone(), shared.clone(), None);
        ThreadReactor {
            net,
            node,
            send_cq,
            recv_cq,
            shared,
            pool: MemPool::new(exs_cfg.pool.clone()),
            client_pools: Mutex::new(HashMap::new()),
            next_id: AtomicU64::new(1),
            service: Some(service),
        }
    }

    /// The reactor's node.
    pub fn node(&self) -> &Arc<ThreadNode> {
        &self.node
    }

    /// Accepts a new connection from `peer`: builds a QP pair whose
    /// server side completes onto the shared CQs, registers the server
    /// socket with the reactor, and returns the blocking client
    /// endpoint (which runs its own service thread, as every
    /// [`ThreadStream`] does).
    pub fn accept(&self, peer: &Arc<ThreadNode>, cfg: &ExsConfig) -> (ConnId, ThreadStream) {
        let (client_sock, server_sock) =
            connect_sockets_over(peer, &self.node, cfg, Some((self.send_cq, self.recv_cq)));
        let conn = self.shared.reactor.lock().accept(server_sock);
        let pool = self
            .client_pools
            .lock()
            .entry(peer.id().0)
            .or_insert_with(|| MemPool::new(cfg.pool.clone()))
            .clone();
        let client = ThreadStream::start(self.net.clone(), peer.clone(), client_sock, pool);
        (conn, client)
    }

    /// Registers I/O memory on the reactor's node. The caller owns the
    /// registration; prefer [`ThreadReactor::acquire`] for pool-cached
    /// buffers that release themselves.
    pub fn register(&self, len: usize, access: Access) -> MrInfo {
        self.node.with_hca(|h| h.register_mr(len, access))
    }

    /// Leases a registered buffer from the reactor node's pin-down
    /// cache.
    pub fn acquire(&self, len: usize, access: Access) -> MrLease {
        let mut port = ThreadPort::new(&self.net, &self.node);
        self.pool.acquire(&mut port, len, access)
    }

    /// The reactor node's pool handle.
    pub fn pool(&self) -> &MemPool {
        &self.pool
    }

    /// Aggregated pool counters: the reactor node's pool merged with
    /// every per-client-node pool created by accepts.
    pub fn pool_stats(&self) -> PoolStats {
        let mut total = self.pool.stats();
        for pool in self.client_pools.lock().values() {
            total.merge(&pool.stats());
        }
        total
    }

    /// Closes an accepted connection: detaches it from the reactor and
    /// releases every registration the server-side socket owns.
    pub fn close_conn(&self, conn: ConnId) {
        let mut sock = self.shared.reactor.lock().remove(conn);
        // Drain in-flight control traffic aimed at this connection's
        // slots before deregistering them.
        self.net.quiesce();
        let mut port = ThreadPort::new(&self.net, &self.node);
        sock.close(&mut port);
        self.shared.events.lock().remove(&conn.0);
    }

    /// Posts an asynchronous receive on an accepted connection.
    pub fn post_recv(
        &self,
        conn: ConnId,
        mr: &MrInfo,
        offset: u64,
        len: u32,
        waitall: bool,
    ) -> u64 {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let events = {
            let mut reactor = self.shared.reactor.lock();
            let mut port = ThreadPort::new(&self.net, &self.node);
            let sock = reactor.conn_mut(conn);
            sock.exs_recv(&mut port, mr, offset, len, waitall, id);
            sock.take_events()
        };
        self.publish(conn, events);
        id
    }

    /// Posts an asynchronous send on an accepted connection.
    pub fn post_send(&self, conn: ConnId, mr: &MrInfo, offset: u64, len: u64) -> u64 {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let events = {
            let mut reactor = self.shared.reactor.lock();
            let mut port = ThreadPort::new(&self.net, &self.node);
            let sock = reactor.conn_mut(conn);
            sock.exs_send(&mut port, mr, offset, len, id);
            sock.take_events()
        };
        self.publish(conn, events);
        id
    }

    fn publish(&self, conn: ConnId, events: Vec<ExsEvent>) {
        if events.is_empty() {
            return;
        }
        self.shared
            .events
            .lock()
            .entry(conn.0)
            .or_default()
            .absorb(events);
        self.shared.cv.notify_all();
    }

    /// Blocks until receive `id` on `conn` completes.
    pub fn wait_recv(&self, conn: ConnId, id: u64, timeout: Duration) -> Option<u32> {
        let deadline = std::time::Instant::now() + timeout;
        let mut bufs = self.shared.events.lock();
        loop {
            if let Some(len) = bufs.entry(conn.0).or_default().recvs_done.remove(&id) {
                return Some(len);
            }
            let now = std::time::Instant::now();
            if now >= deadline {
                return None;
            }
            self.shared
                .cv
                .wait_for(&mut bufs, deadline.saturating_duration_since(now));
        }
    }

    /// Blocks until send `id` on `conn` completes.
    pub fn wait_send(&self, conn: ConnId, id: u64, timeout: Duration) -> Option<u64> {
        let deadline = std::time::Instant::now() + timeout;
        let mut bufs = self.shared.events.lock();
        loop {
            if let Some(len) = bufs.entry(conn.0).or_default().sends_done.remove(&id) {
                return Some(len);
            }
            let now = std::time::Instant::now();
            if now >= deadline {
                return None;
            }
            self.shared
                .cv
                .wait_for(&mut bufs, deadline.saturating_duration_since(now));
        }
    }

    /// True once `conn`'s peer closed and its stream fully drained.
    pub fn peer_closed(&self, conn: ConnId) -> bool {
        self.shared.reactor.lock().conn(conn).peer_closed()
    }

    /// Protocol counters of one accepted connection.
    pub fn conn_stats(&self, conn: ConnId) -> ConnStats {
        self.shared.reactor.lock().conn(conn).stats().clone()
    }

    /// Sum of all accepted connections' protocol counters.
    pub fn aggregate_stats(&self) -> ConnStats {
        self.shared.reactor.lock().aggregate_conn_stats()
    }

    /// Event-loop statistics snapshot.
    pub fn reactor_stats(&self) -> crate::stats::ReactorStats {
        self.shared.reactor.lock().stats().clone()
    }
}

impl Drop for ThreadReactor {
    fn drop(&mut self) {
        // Flush hosted streams' unsent traffic before signalling stop:
        // a FIN queued behind flow control at teardown must still reach
        // the wire or the peer hangs waiting for end-of-stream.
        drain_reactor_unsent(&self.net, &self.node, &self.shared);
        self.shared.stop.store(true, Ordering::Release);
        self.shared.cv.notify_all();
        self.node.notify();
        if let Some(h) = self.service.take() {
            let _ = h.join();
        }
    }
}

/// One shard of a [`ThreadReactorPool`]: its CQ pair, reactor state,
/// control block, and dedicated service thread.
struct ShardRuntime {
    send_cq: CqId,
    recv_cq: CqId,
    shared: Arc<ReactorShared>,
    ctl: Arc<ShardCtl>,
    service: Option<std::thread::JoinHandle<()>>,
}

/// Placement bookkeeping shared by all accept callers; touched only on
/// the accept path, never while moving bytes.
struct Placement {
    rr_next: usize,
    assigned: Vec<u64>,
    steals: Vec<u64>,
}

/// A pool of [`ThreadReactor`]-style shards on one node: each shard
/// owns its own CQ pair, reactor, and service thread, so CQE dispatch
/// and readiness harvesting scale across cores instead of serialising
/// on a single reactor lock.
///
/// Sharding invariants (mirrors [`crate::shard::ReactorPool`]):
///
/// * A connection is assigned to a shard **once**, at accept, by the
///   configured [`crate::config::ShardPolicy`]; it never migrates.
/// * The data path (post/wait/poll) touches only that shard's state —
///   no cross-shard locks.
/// * Cross-shard interaction is limited to the accept handoff and each
///   shard's lock-free [`CommandQueue`] (close requests, teardown
///   nudges).
/// * Statistics aggregate by **summing** counters across shards
///   (peaks take a max); per-shard telemetry is preserved in
///   [`ThreadReactorPool::shard_stats`].
pub struct ThreadReactorPool {
    net: Arc<ThreadNet>,
    node: Arc<ThreadNode>,
    shards: Vec<ShardRuntime>,
    policy: crate::config::ShardPolicy,
    placement: Mutex<Placement>,
    pool: MemPool,
    client_pools: Mutex<HashMap<u32, MemPool>>,
    next_id: AtomicU64,
}

impl ThreadReactorPool {
    /// Creates `exs_cfg.shard.effective_shards()` shards on `node`,
    /// each with CQs sized for `max_conns` connections (full size per
    /// shard: policies may skew placement, and CQ overflow is fatal).
    pub fn new(
        net: Arc<ThreadNet>,
        node: Arc<ThreadNode>,
        cfg: ReactorConfig,
        exs_cfg: &ExsConfig,
        max_conns: usize,
    ) -> ThreadReactorPool {
        let nshards = exs_cfg.shard.effective_shards();
        let per_conn = exs_cfg.sq_depth * 2 + exs_cfg.credits as usize * 2;
        let cq_depth = per_conn * max_conns.max(1);
        let mut shards = Vec::with_capacity(nshards);
        for _ in 0..nshards {
            let (send_cq, recv_cq) =
                node.with_hca(|h| (h.create_cq(cq_depth), h.create_cq(cq_depth)));
            let shared = Arc::new(ReactorShared {
                reactor: Mutex::new(Reactor::new(send_cq, recv_cq, cfg)),
                events: Mutex::new(HashMap::new()),
                cv: Condvar::new(),
                stop: AtomicBool::new(false),
            });
            let ctl = Arc::new(ShardCtl::new());
            let service =
                spawn_reactor_service(net.clone(), node.clone(), shared.clone(), Some(ctl.clone()));
            shards.push(ShardRuntime {
                send_cq,
                recv_cq,
                shared,
                ctl,
                service: Some(service),
            });
        }
        ThreadReactorPool {
            net,
            node,
            shards,
            policy: exs_cfg.shard.policy,
            placement: Mutex::new(Placement {
                rr_next: 0,
                assigned: vec![0; nshards],
                steals: vec![0; nshards],
            }),
            pool: MemPool::new(exs_cfg.pool.clone()),
            client_pools: Mutex::new(HashMap::new()),
            next_id: AtomicU64::new(1),
        }
    }

    /// The pool's node.
    pub fn node(&self) -> &Arc<ThreadNode> {
        &self.node
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    fn live_conns(&self, shard: usize) -> u64 {
        let st = self.shards[shard].shared.reactor.lock().stats().clone();
        st.conns_added - st.conns_removed
    }

    fn pick_shard(&self, affinity: Option<u64>) -> u32 {
        let mut placement = self.placement.lock();
        let rr = placement.rr_next;
        let (shard, stolen) = choose_shard(self.policy, rr, self.shards.len(), affinity, |s| {
            self.live_conns(s)
        });
        placement.rr_next = (rr + 1) % self.shards.len();
        placement.assigned[shard] += 1;
        if stolen {
            placement.steals[shard] += 1;
        }
        shard as u32
    }

    /// Accepts a new connection from `peer`, placing it by the pool's
    /// policy; returns the shard-qualified handle plus the blocking
    /// client endpoint.
    pub fn accept(&self, peer: &Arc<ThreadNode>, cfg: &ExsConfig) -> (ShardHandle, ThreadStream) {
        self.accept_with_affinity(peer, cfg, None)
    }

    /// [`ThreadReactorPool::accept`] with an explicit affinity key —
    /// connections sharing a key land on the same shard under
    /// [`crate::config::ShardPolicy::Affinity`].
    pub fn accept_with_affinity(
        &self,
        peer: &Arc<ThreadNode>,
        cfg: &ExsConfig,
        affinity: Option<u64>,
    ) -> (ShardHandle, ThreadStream) {
        let shard = self.pick_shard(affinity);
        let rt = &self.shards[shard as usize];
        let (client_sock, server_sock) =
            connect_sockets_over(peer, &self.node, cfg, Some((rt.send_cq, rt.recv_cq)));
        let conn = rt.shared.reactor.lock().accept(server_sock);
        let pool = self
            .client_pools
            .lock()
            .entry(peer.id().0)
            .or_insert_with(|| MemPool::new(cfg.pool.clone()))
            .clone();
        let client = ThreadStream::start(self.net.clone(), peer.clone(), client_sock, pool);
        (ShardHandle { shard, conn }, client)
    }

    /// Leases a registered buffer from the pool node's pin-down cache.
    pub fn acquire(&self, len: usize, access: Access) -> MrLease {
        let mut port = ThreadPort::new(&self.net, &self.node);
        self.pool.acquire(&mut port, len, access)
    }

    /// Registers I/O memory on the pool's node.
    pub fn register(&self, len: usize, access: Access) -> MrInfo {
        self.node.with_hca(|h| h.register_mr(len, access))
    }

    /// Closes an accepted connection. The close request travels through
    /// the owning shard's command queue — the service thread detaches
    /// the socket and hands it back for finalization here, so no
    /// cross-shard reactor lock is taken on a running service path.
    pub fn close_conn(&self, handle: ShardHandle) {
        let rt = &self.shards[handle.shard as usize];
        rt.ctl.commands.push(ShardCommand::Close(handle.conn));
        self.node.notify();
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        let mut sock = loop {
            if let Some(pos) = {
                let retired = rt.ctl.retired.lock();
                retired.iter().position(|(id, _)| *id == handle.conn.0)
            } {
                break rt.ctl.retired.lock().swap_remove(pos).1;
            }
            if rt.shared.stop.load(Ordering::Acquire) || std::time::Instant::now() >= deadline {
                // Service thread already stopped (or wedged): detach
                // directly — nothing else is polling this reactor.
                let mut reactor = rt.shared.reactor.lock();
                rt.shared.events.lock().remove(&handle.conn.0);
                break reactor.remove(handle.conn);
            }
            std::thread::yield_now();
        };
        self.net.quiesce();
        let mut port = ThreadPort::new(&self.net, &self.node);
        sock.close(&mut port);
    }

    /// Posts an asynchronous receive on an accepted connection.
    pub fn post_recv(
        &self,
        handle: ShardHandle,
        mr: &MrInfo,
        offset: u64,
        len: u32,
        waitall: bool,
    ) -> u64 {
        let rt = &self.shards[handle.shard as usize];
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let events = {
            let mut reactor = rt.shared.reactor.lock();
            let mut port = ThreadPort::new(&self.net, &self.node);
            let sock = reactor.conn_mut(handle.conn);
            sock.exs_recv(&mut port, mr, offset, len, waitall, id);
            sock.take_events()
        };
        self.publish(rt, handle.conn, events);
        id
    }

    /// Posts an asynchronous send on an accepted connection.
    pub fn post_send(&self, handle: ShardHandle, mr: &MrInfo, offset: u64, len: u64) -> u64 {
        let rt = &self.shards[handle.shard as usize];
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let events = {
            let mut reactor = rt.shared.reactor.lock();
            let mut port = ThreadPort::new(&self.net, &self.node);
            let sock = reactor.conn_mut(handle.conn);
            sock.exs_send(&mut port, mr, offset, len, id);
            sock.take_events()
        };
        self.publish(rt, handle.conn, events);
        id
    }

    fn publish(&self, rt: &ShardRuntime, conn: ConnId, events: Vec<ExsEvent>) {
        if events.is_empty() {
            return;
        }
        rt.shared
            .events
            .lock()
            .entry(conn.0)
            .or_default()
            .absorb(events);
        rt.shared.cv.notify_all();
    }

    /// Blocks until receive `id` on `handle` completes.
    pub fn wait_recv(&self, handle: ShardHandle, id: u64, timeout: Duration) -> Option<u32> {
        let rt = &self.shards[handle.shard as usize];
        let deadline = std::time::Instant::now() + timeout;
        let mut bufs = rt.shared.events.lock();
        loop {
            if let Some(len) = bufs
                .entry(handle.conn.0)
                .or_default()
                .recvs_done
                .remove(&id)
            {
                return Some(len);
            }
            let now = std::time::Instant::now();
            if now >= deadline {
                return None;
            }
            rt.shared
                .cv
                .wait_for(&mut bufs, deadline.saturating_duration_since(now));
        }
    }

    /// Blocks until send `id` on `handle` completes.
    pub fn wait_send(&self, handle: ShardHandle, id: u64, timeout: Duration) -> Option<u64> {
        let rt = &self.shards[handle.shard as usize];
        let deadline = std::time::Instant::now() + timeout;
        let mut bufs = rt.shared.events.lock();
        loop {
            if let Some(len) = bufs
                .entry(handle.conn.0)
                .or_default()
                .sends_done
                .remove(&id)
            {
                return Some(len);
            }
            let now = std::time::Instant::now();
            if now >= deadline {
                return None;
            }
            rt.shared
                .cv
                .wait_for(&mut bufs, deadline.saturating_duration_since(now));
        }
    }

    /// True once `handle`'s peer closed and its stream fully drained.
    pub fn peer_closed(&self, handle: ShardHandle) -> bool {
        self.shards[handle.shard as usize]
            .shared
            .reactor
            .lock()
            .conn(handle.conn)
            .peer_closed()
    }

    /// Protocol counters of one accepted connection.
    pub fn conn_stats(&self, handle: ShardHandle) -> ConnStats {
        self.shards[handle.shard as usize]
            .shared
            .reactor
            .lock()
            .conn(handle.conn)
            .stats()
            .clone()
    }

    /// Sum of all accepted connections' protocol counters, across every
    /// shard.
    pub fn aggregate_stats(&self) -> ConnStats {
        let mut total = ConnStats::default();
        for rt in &self.shards {
            total.merge(&rt.shared.reactor.lock().aggregate_conn_stats());
        }
        total
    }

    /// Event-loop statistics merged across shards: counters sum, peaks
    /// take the max.
    pub fn reactor_stats(&self) -> ReactorStats {
        let mut total = ReactorStats::default();
        for rt in &self.shards {
            total.merge(rt.shared.reactor.lock().stats());
        }
        total
    }

    /// Aggregated pool counters: the pool node's buffer pool merged
    /// with every per-client-node pool created by accepts.
    pub fn pool_stats(&self) -> PoolStats {
        let mut total = self.pool.stats();
        for pool in self.client_pools.lock().values() {
            total.merge(&pool.stats());
        }
        total
    }

    /// Per-shard telemetry snapshot: live connections, poll/dispatch
    /// counters, placement decisions, command traffic, and the service
    /// thread's busy ratio.
    pub fn shard_stats(&self) -> Vec<ShardStats> {
        let placement = self.placement.lock();
        self.shards
            .iter()
            .enumerate()
            .map(|(i, rt)| {
                let st = rt.shared.reactor.lock().stats().clone();
                ShardStats {
                    shard_id: i as u32,
                    conns: st.conns_added - st.conns_removed,
                    assigned: placement.assigned[i],
                    steals: placement.steals[i],
                    commands: rt.ctl.commands_drained.load(Ordering::Relaxed),
                    polls: st.polls,
                    cqes_dispatched: st.cqes_dispatched,
                    busy_ns: rt.ctl.busy_ns.load(Ordering::Relaxed),
                    wall_ns: rt.ctl.wall_ns.load(Ordering::Relaxed),
                }
            })
            .collect()
    }
}

impl Drop for ThreadReactorPool {
    fn drop(&mut self) {
        // Phase 1: every shard must drain — pending cross-shard
        // commands handled and unsent stream traffic flushed — before
        // ANY shard stops. A shard stopping early while a peer still
        // holds a handoff command for it would strand the command (and
        // any ctrl message the close would have produced).
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        loop {
            let mut all_drained = true;
            for rt in &self.shards {
                if !rt.ctl.commands.is_empty() {
                    all_drained = false;
                    self.node.notify();
                    continue;
                }
                if rt.shared.reactor.lock().has_unsent() {
                    all_drained = false;
                    drain_reactor_unsent(&self.net, &self.node, &rt.shared);
                }
            }
            if all_drained || std::time::Instant::now() >= deadline {
                break;
            }
            std::thread::yield_now();
        }
        // Phase 2: signal every shard, then wake all parked service
        // threads at once.
        for rt in &self.shards {
            rt.shared.stop.store(true, Ordering::Release);
            rt.shared.cv.notify_all();
        }
        self.node.notify();
        // Phase 3: join.
        for rt in &mut self.shards {
            if let Some(h) = rt.service.take() {
                let _ = h.join();
            }
        }
        // Finalize any sockets retired by close commands but never
        // collected by a caller.
        self.net.quiesce();
        let mut port = ThreadPort::new(&self.net, &self.node);
        for rt in &self.shards {
            for (_, mut sock) in rt.ctl.retired.lock().drain(..) {
                sock.close(&mut port);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blocking_roundtrip() {
        let (a, b) = ThreadStream::pair(&ExsConfig::default(), Duration::ZERO);
        let writer = std::thread::spawn(move || {
            a.send_bytes(b"hello from a real thread").unwrap();
            a
        });
        let mut buf = [0u8; 24];
        b.recv_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"hello from a real thread");
        let a = writer.join().unwrap();
        let st = a.stats();
        assert_eq!(st.bytes_sent, 24);
    }

    #[test]
    fn bidirectional_exchange() {
        let (a, b) = ThreadStream::pair(&ExsConfig::default(), Duration::from_micros(200));
        let t = std::thread::spawn(move || {
            let mut buf = [0u8; 4];
            b.recv_exact(&mut buf).unwrap();
            assert_eq!(&buf, b"ping");
            b.send_bytes(b"pong").unwrap();
        });
        a.send_bytes(b"ping").unwrap();
        let mut buf = [0u8; 4];
        a.recv_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"pong");
        t.join().unwrap();
    }

    /// Many writer threads share one stream; a framing layer proves that
    /// each send was atomic in the byte stream and nothing was lost,
    /// duplicated or reordered within a thread — the thread-safety
    /// property the paper's algorithm claims.
    #[test]
    fn concurrent_writers_frames_stay_atomic() {
        const WRITERS: usize = 4;
        const FRAMES: usize = 40;

        let (a, b) = ThreadStream::pair(&ExsConfig::default(), Duration::ZERO);
        let a = Arc::new(a);

        let mut total = 0usize;
        let mut frame_lens = vec![Vec::new(); WRITERS];
        let mut rng = 0x12345u64;
        for (t, lens) in frame_lens.iter_mut().enumerate() {
            for _ in 0..FRAMES {
                rng = rng
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(t as u64 + 1);
                let len = 16 + (rng >> 33) as usize % 2000;
                lens.push(len);
                total += len + 8; // 8-byte header
            }
        }

        let reader = std::thread::spawn(move || {
            // Parse frames off the stream: [thread u32][len u32][payload]
            let mut seen = vec![0u32; WRITERS];
            let mut remaining = total;
            while remaining > 0 {
                let mut header = [0u8; 8];
                b.recv_exact(&mut header).unwrap();
                let thread = u32::from_le_bytes(header[0..4].try_into().unwrap()) as usize;
                let len = u32::from_le_bytes(header[4..8].try_into().unwrap()) as usize;
                assert!(thread < WRITERS, "corrupted frame header");
                let mut payload = vec![0u8; len];
                b.recv_exact(&mut payload).unwrap();
                // Payload bytes encode (thread, per-thread frame number).
                let frame_no = seen[thread];
                for (i, &byte) in payload.iter().enumerate() {
                    let expect = (thread as u8)
                        .wrapping_mul(31)
                        .wrapping_add(frame_no as u8)
                        .wrapping_add(i as u8);
                    assert_eq!(byte, expect, "frame payload torn");
                }
                seen[thread] += 1;
                remaining -= len + 8;
            }
            seen
        });

        std::thread::scope(|s| {
            for (t, lens) in frame_lens.iter().enumerate() {
                let a = a.clone();
                s.spawn(move || {
                    for (frame_no, &len) in lens.iter().enumerate() {
                        let mut frame = Vec::with_capacity(len + 8);
                        frame.extend_from_slice(&(t as u32).to_le_bytes());
                        frame.extend_from_slice(&(len as u32).to_le_bytes());
                        frame.extend((0..len).map(|i| {
                            (t as u8)
                                .wrapping_mul(31)
                                .wrapping_add(frame_no as u8)
                                .wrapping_add(i as u8)
                        }));
                        a.send_bytes(&frame).unwrap();
                    }
                });
            }
        });

        let seen = reader.join().unwrap();
        assert_eq!(seen, vec![FRAMES as u32; WRITERS]);
    }

    #[test]
    fn wait_times_out() {
        let (a, _b) = ThreadStream::pair(&ExsConfig::default(), Duration::ZERO);
        assert_eq!(a.wait_send(9999, Duration::from_millis(50)), None);
        assert_eq!(a.wait_recv(9999, Duration::from_millis(50)), None);
    }
}
