//! Control-message wire formats and WWI immediate-data encoding.
//!
//! Three control messages travel as small inline SENDs on the
//! connection's queue pair:
//!
//! * **ADVERT** — the receiver advertises one `exs_recv()` buffer:
//!   estimated stream sequence number, phase, virtual address, length,
//!   rkey, and the MSG_WAITALL flag (paper §II-C, §III).
//! * **ACK** — the receiver reports bytes freed from the intermediate
//!   buffer as it copies data out (paper §III).
//! * **CREDIT** — standalone credit return when no other message is
//!   flowing (paper §II-B describes periodic credit-returning ACKs; the
//!   simulator separates buffer-space ACKs from receive-credit returns).
//!
//! Every control message piggybacks `credit_return`: the number of
//! receive WQEs this side has re-posted since it last told the peer.
//!
//! Data travels as RDMA WRITE WITH IMM; the 32-bit immediate encodes the
//! transfer kind (direct vs indirect) and the chunk length, which is all
//! the receiver needs — placement already happened via DMA, and both
//! sides track ring positions deterministically because the channel is
//! FIFO.

use crate::phase::Phase;
use crate::seq::Seq;

/// Fixed size of every control message on the wire. Constant-size
/// control messages keep the credit accounting trivial and fit easily in
/// the QP inline limit.
pub const CTRL_MSG_LEN: usize = 44;

/// An advertised receive buffer, as carried by an ADVERT message and as
/// queued at the sender (`q_A` in the paper).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Advert {
    /// Estimated stream position of the first byte this buffer expects.
    pub seq: Seq,
    /// Receiver phase at emission time (always direct, Lemma 1).
    pub phase: Phase,
    /// Virtual address of the user buffer at the receiver.
    pub addr: u64,
    /// Buffer length in bytes.
    pub len: u32,
    /// Remote key authorizing RDMA WRITE into the buffer.
    pub rkey: u32,
    /// MSG_WAITALL: the sender must fill the buffer completely before
    /// the receive completes (paper §II-C).
    pub waitall: bool,
}

/// A parsed control message.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Ctrl {
    /// Receive-buffer advertisement.
    Advert(Advert),
    /// Intermediate-buffer space freed by receiver copy-out.
    Ack {
        /// Bytes freed.
        freed: u64,
    },
    /// Standalone credit return (no payload beyond the piggyback field).
    Credit,
    /// Data-arrival notification for the iWARP WWI emulation: "the
    /// operation can be simulated on older iWARP hardware by following
    /// an RDMA WRITE with a small SEND" (paper §II-B). Carries the same
    /// 32-bit value the native path puts in the immediate.
    DataNotify {
        /// Encoded transfer descriptor (see [`encode_imm`]).
        imm: u32,
    },
    /// Half-close: the peer will send no byte beyond `final_seq`.
    /// Ordered after all data on the FIFO channel, so the receiver can
    /// deliver end-of-stream exactly once every byte has been consumed.
    Fin {
        /// Total bytes of the closed direction's stream.
        final_seq: u64,
    },
}

/// A control message plus the piggybacked credit return.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CtrlMsg {
    /// The message body.
    pub ctrl: Ctrl,
    /// Receive WQEs re-posted since the last report.
    pub credit_return: u32,
}

const TYPE_ADVERT: u8 = 1;
const TYPE_ACK: u8 = 2;
const TYPE_CREDIT: u8 = 3;
const TYPE_DATA_NOTIFY: u8 = 4;
const TYPE_FIN: u8 = 5;
const FLAG_WAITALL: u8 = 0b1;
/// Flag bit marking a control message as stream-tagged (shared-transport
/// multiplexing): the 4-byte stream id lives at offset 36.
const FLAG_MUX: u8 = 0b10;

/// Sentinel stream id for transport-scoped multiplexed control messages
/// (shared-ring ACKs, credit returns) that belong to the transport
/// itself rather than any one stream.
pub const STREAM_NONE: u32 = u32::MAX;

/// Largest stream id the mux immediate encoding can carry (31 bits; the
/// top bit distinguishes direct from indirect placement).
pub const MAX_MUX_STREAM: u32 = (1 << 31) - 1;

/// Errors from decoding a control message.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DecodeError {
    /// Buffer shorter than [`CTRL_MSG_LEN`].
    TooShort(usize),
    /// Unknown message type byte.
    BadType(u8),
    /// A plain control message arrived on a multiplexed transport (the
    /// stream-tag flag is missing).
    NotMux,
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::TooShort(n) => write!(f, "control message too short: {n} bytes"),
            DecodeError::BadType(t) => write!(f, "unknown control message type {t}"),
            DecodeError::NotMux => write!(f, "control message lacks the stream tag"),
        }
    }
}

impl std::error::Error for DecodeError {}

impl CtrlMsg {
    /// Serializes to the fixed wire layout (little-endian).
    ///
    /// Layout:
    /// ```text
    /// off  size  field
    ///   0     1  type (1=ADVERT, 2=ACK, 3=CREDIT)
    ///   1     1  flags (bit0 = WAITALL)
    ///   2     2  reserved
    ///   4     4  credit_return
    ///   8     4  phase            (ADVERT)
    ///  12     4  len              (ADVERT)
    ///  16     8  seq              (ADVERT)        / freed (ACK)
    ///  24     8  addr             (ADVERT)
    ///  32     4  rkey             (ADVERT)
    ///  36     8  reserved
    /// ```
    pub fn encode(&self) -> [u8; CTRL_MSG_LEN] {
        let mut buf = [0u8; CTRL_MSG_LEN];
        buf[4..8].copy_from_slice(&self.credit_return.to_le_bytes());
        match &self.ctrl {
            Ctrl::Advert(a) => {
                buf[0] = TYPE_ADVERT;
                if a.waitall {
                    buf[1] |= FLAG_WAITALL;
                }
                buf[8..12].copy_from_slice(&a.phase.0.to_le_bytes());
                buf[12..16].copy_from_slice(&a.len.to_le_bytes());
                buf[16..24].copy_from_slice(&a.seq.0.to_le_bytes());
                buf[24..32].copy_from_slice(&a.addr.to_le_bytes());
                buf[32..36].copy_from_slice(&a.rkey.to_le_bytes());
            }
            Ctrl::Ack { freed } => {
                buf[0] = TYPE_ACK;
                buf[16..24].copy_from_slice(&freed.to_le_bytes());
            }
            Ctrl::Credit => {
                buf[0] = TYPE_CREDIT;
            }
            Ctrl::DataNotify { imm } => {
                buf[0] = TYPE_DATA_NOTIFY;
                buf[8..12].copy_from_slice(&imm.to_le_bytes());
            }
            Ctrl::Fin { final_seq } => {
                buf[0] = TYPE_FIN;
                buf[16..24].copy_from_slice(&final_seq.to_le_bytes());
            }
        }
        buf
    }

    /// Encodes straight into a shareable inline payload: exactly one
    /// heap allocation. The older `encode().to_vec()` idiom copied the
    /// stack array into a `Vec` only for `Bytes::from` to copy it a
    /// second time into its refcounted storage.
    pub fn encode_bytes(&self) -> bytes::Bytes {
        bytes::Bytes::copy_from_slice(&self.encode())
    }

    /// Parses the fixed wire layout.
    pub fn decode(buf: &[u8]) -> Result<CtrlMsg, DecodeError> {
        if buf.len() < CTRL_MSG_LEN {
            return Err(DecodeError::TooShort(buf.len()));
        }
        let credit_return = u32::from_le_bytes(buf[4..8].try_into().expect("len checked"));
        let ctrl = match buf[0] {
            TYPE_ADVERT => Ctrl::Advert(Advert {
                phase: Phase(u32::from_le_bytes(buf[8..12].try_into().expect("len"))),
                len: u32::from_le_bytes(buf[12..16].try_into().expect("len")),
                seq: Seq(u64::from_le_bytes(buf[16..24].try_into().expect("len"))),
                addr: u64::from_le_bytes(buf[24..32].try_into().expect("len")),
                rkey: u32::from_le_bytes(buf[32..36].try_into().expect("len")),
                waitall: buf[1] & FLAG_WAITALL != 0,
            }),
            TYPE_ACK => Ctrl::Ack {
                freed: u64::from_le_bytes(buf[16..24].try_into().expect("len")),
            },
            TYPE_CREDIT => Ctrl::Credit,
            TYPE_DATA_NOTIFY => Ctrl::DataNotify {
                imm: u32::from_le_bytes(buf[8..12].try_into().expect("len")),
            },
            TYPE_FIN => Ctrl::Fin {
                final_seq: u64::from_le_bytes(buf[16..24].try_into().expect("len")),
            },
            t => return Err(DecodeError::BadType(t)),
        };
        Ok(CtrlMsg {
            ctrl,
            credit_return,
        })
    }
}

/// A control message carried over a shared (multiplexed) transport: the
/// plain [`CtrlMsg`] plus the stream id it belongs to.
///
/// Wire layout is [`CtrlMsg::encode`]'s with two additions: flag bit 1
/// (`FLAG_MUX`) is set and the stream id occupies the reserved bytes
/// at offset 36. [`STREAM_NONE`] tags transport-scoped messages.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MuxCtrlMsg {
    /// Stream this message belongs to ([`STREAM_NONE`] = the transport).
    pub stream: u32,
    /// The wrapped control message.
    pub msg: CtrlMsg,
}

impl MuxCtrlMsg {
    /// Serializes to the fixed wire layout.
    pub fn encode(&self) -> [u8; CTRL_MSG_LEN] {
        let mut buf = self.msg.encode();
        buf[1] |= FLAG_MUX;
        buf[36..40].copy_from_slice(&self.stream.to_le_bytes());
        buf
    }

    /// Encodes straight into a shareable inline payload (see
    /// [`CtrlMsg::encode_bytes`]).
    pub fn encode_bytes(&self) -> bytes::Bytes {
        bytes::Bytes::copy_from_slice(&self.encode())
    }

    /// Parses the fixed wire layout, requiring the stream tag.
    pub fn decode(buf: &[u8]) -> Result<MuxCtrlMsg, DecodeError> {
        let msg = CtrlMsg::decode(buf)?;
        if buf[1] & FLAG_MUX == 0 {
            return Err(DecodeError::NotMux);
        }
        let stream = u32::from_le_bytes(buf[36..40].try_into().expect("len checked"));
        Ok(MuxCtrlMsg { stream, msg })
    }
}

/// Encodes a mux data immediate: top bit = indirect, low 31 bits =
/// stream id. The chunk length travels in the completion's `byte_len`
/// instead (both backends report it), freeing the immediate for demux.
pub fn encode_mux_imm(kind: TransferKind, stream: u32) -> u32 {
    assert!(
        stream <= MAX_MUX_STREAM,
        "stream id {stream} exceeds imm encoding"
    );
    match kind {
        TransferKind::Direct => stream,
        TransferKind::Indirect => stream | IMM_INDIRECT_BIT,
    }
}

/// Decodes a mux data immediate into `(kind, stream_id)`.
pub fn decode_mux_imm(imm: u32) -> (TransferKind, u32) {
    if imm & IMM_INDIRECT_BIT != 0 {
        (TransferKind::Indirect, imm & !IMM_INDIRECT_BIT)
    } else {
        (TransferKind::Direct, imm)
    }
}

/// Kind of a data transfer, encoded in the WWI immediate.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TransferKind {
    /// Zero-copy placement into an advertised user buffer.
    Direct,
    /// Placement into the hidden intermediate ring buffer.
    Indirect,
}

const IMM_INDIRECT_BIT: u32 = 1 << 31;
/// Maximum chunk length encodable in the immediate (2 GiB − 1).
pub const MAX_WWI_LEN: u32 = IMM_INDIRECT_BIT - 1;

/// Encodes a WWI immediate: top bit = indirect, low 31 bits = length.
pub fn encode_imm(kind: TransferKind, len: u32) -> u32 {
    assert!(
        len <= MAX_WWI_LEN,
        "WWI chunk of {len} bytes exceeds imm encoding"
    );
    match kind {
        TransferKind::Direct => len,
        TransferKind::Indirect => len | IMM_INDIRECT_BIT,
    }
}

/// Decodes a WWI immediate.
pub fn decode_imm(imm: u32) -> (TransferKind, u32) {
    if imm & IMM_INDIRECT_BIT != 0 {
        (TransferKind::Indirect, imm & !IMM_INDIRECT_BIT)
    } else {
        (TransferKind::Direct, imm)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn advert() -> Advert {
        Advert {
            seq: Seq(123_456_789_012),
            phase: Phase(6),
            addr: 0xDEAD_BEEF_0000,
            len: 1 << 20,
            rkey: 0xABCD,
            waitall: true,
        }
    }

    #[test]
    fn advert_roundtrip() {
        let m = CtrlMsg {
            ctrl: Ctrl::Advert(advert()),
            credit_return: 17,
        };
        let buf = m.encode();
        assert_eq!(CtrlMsg::decode(&buf).unwrap(), m);
    }

    #[test]
    fn advert_without_waitall_roundtrip() {
        let mut a = advert();
        a.waitall = false;
        let m = CtrlMsg {
            ctrl: Ctrl::Advert(a),
            credit_return: 0,
        };
        assert_eq!(CtrlMsg::decode(&m.encode()).unwrap(), m);
    }

    #[test]
    fn ack_roundtrip() {
        let m = CtrlMsg {
            ctrl: Ctrl::Ack {
                freed: u64::MAX / 3,
            },
            credit_return: 9,
        };
        assert_eq!(CtrlMsg::decode(&m.encode()).unwrap(), m);
    }

    #[test]
    fn data_notify_roundtrip() {
        let m = CtrlMsg {
            ctrl: Ctrl::DataNotify {
                imm: encode_imm(TransferKind::Indirect, 123_456),
            },
            credit_return: 2,
        };
        assert_eq!(CtrlMsg::decode(&m.encode()).unwrap(), m);
    }

    #[test]
    fn fin_roundtrip() {
        let m = CtrlMsg {
            ctrl: Ctrl::Fin {
                final_seq: u64::MAX / 7,
            },
            credit_return: 11,
        };
        assert_eq!(CtrlMsg::decode(&m.encode()).unwrap(), m);
    }

    #[test]
    fn credit_roundtrip() {
        let m = CtrlMsg {
            ctrl: Ctrl::Credit,
            credit_return: 42,
        };
        assert_eq!(CtrlMsg::decode(&m.encode()).unwrap(), m);
    }

    #[test]
    fn decode_rejects_short_and_bad_type() {
        assert_eq!(CtrlMsg::decode(&[0u8; 10]), Err(DecodeError::TooShort(10)));
        let mut buf = [0u8; CTRL_MSG_LEN];
        buf[0] = 99;
        assert_eq!(CtrlMsg::decode(&buf), Err(DecodeError::BadType(99)));
    }

    #[test]
    fn decode_tolerates_trailing_bytes() {
        let m = CtrlMsg {
            ctrl: Ctrl::Credit,
            credit_return: 1,
        };
        let mut buf = m.encode().to_vec();
        buf.extend_from_slice(&[0xFF; 8]);
        assert_eq!(CtrlMsg::decode(&buf).unwrap(), m);
    }

    #[test]
    fn imm_roundtrip() {
        for len in [0u32, 1, 4096, MAX_WWI_LEN] {
            for kind in [TransferKind::Direct, TransferKind::Indirect] {
                let (k, l) = decode_imm(encode_imm(kind, len));
                assert_eq!((k, l), (kind, len));
            }
        }
    }

    #[test]
    #[should_panic(expected = "exceeds imm encoding")]
    fn imm_overflow_panics() {
        encode_imm(TransferKind::Direct, MAX_WWI_LEN + 1);
    }

    #[test]
    fn encode_bytes_matches_encode() {
        let m = CtrlMsg {
            ctrl: Ctrl::Advert(advert()),
            credit_return: 17,
        };
        assert_eq!(&m.encode_bytes()[..], &m.encode()[..]);
        assert_eq!(m.encode_bytes().len(), CTRL_MSG_LEN);
    }

    #[test]
    fn mux_ctrl_roundtrip_and_flag_check() {
        let m = MuxCtrlMsg {
            stream: 0x00C0_FFEE,
            msg: CtrlMsg {
                ctrl: Ctrl::Advert(advert()),
                credit_return: 5,
            },
        };
        let buf = m.encode();
        assert_eq!(MuxCtrlMsg::decode(&buf).unwrap(), m);
        // The plain decoder still parses the wrapped message unchanged.
        assert_eq!(CtrlMsg::decode(&buf).unwrap(), m.msg);
        // A plain (untagged) message is rejected by the mux decoder.
        let plain = m.msg.encode();
        assert_eq!(MuxCtrlMsg::decode(&plain), Err(DecodeError::NotMux));
        // Transport-scoped sentinel survives the trip.
        let t = MuxCtrlMsg {
            stream: STREAM_NONE,
            msg: CtrlMsg {
                ctrl: Ctrl::Ack { freed: 640 },
                credit_return: 0,
            },
        };
        assert_eq!(MuxCtrlMsg::decode(&t.encode()).unwrap(), t);
    }

    #[test]
    fn mux_imm_roundtrip() {
        for stream in [0u32, 1, 99_999, MAX_MUX_STREAM] {
            for kind in [TransferKind::Direct, TransferKind::Indirect] {
                let (k, s) = decode_mux_imm(encode_mux_imm(kind, stream));
                assert_eq!((k, s), (kind, stream));
            }
        }
    }

    #[test]
    #[should_panic(expected = "exceeds imm encoding")]
    fn mux_imm_overflow_panics() {
        encode_mux_imm(TransferKind::Direct, MAX_MUX_STREAM + 1);
    }

    #[test]
    fn ctrl_len_fits_inline() {
        // Control messages must fit the default QP inline limit (256 B).
        const { assert!(CTRL_MSG_LEN <= 256) }
    }
}
