//! Shared transmit pipeline: postlist staging, selective signaling,
//! and doorbell accounting.
//!
//! Both socket flavours ([`crate::stream::StreamSocket`],
//! [`crate::seqpacket::SeqPacketSocket`]) collect every WQE plannable
//! in one progress pass — data WWIs and the control traffic they
//! trigger — into a [`TxPipe`], then flush it as postlists of at most
//! `tx_batch_limit` linked WQEs, each postlist paying a single doorbell
//! (`HostModel::post_overhead`). Staged WQEs are unsignaled by default;
//! every `signal_interval`-th is signaled, and the next signaled CQE
//! batch-retires all unsignaled SQ slots before it (both here, via the
//! owner queues in the sockets, and in the verbs layer's deferred slot
//! release). Two forced signals keep the pipeline live at any interval:
//!
//! * **SQ near full** — posting into the last two SQ slots always
//!   signals, so a retiring CQE is guaranteed before the queue can
//!   wedge even when `signal_interval > sq_depth`;
//! * **flush carrying data** — a flush whose batch contains a data WQE
//!   ends signaled, so the owners' completions surface even if the
//!   connection then goes idle.

use rdma_verbs::{QpNum, SendWr};

use crate::config::ExsConfig;
use crate::port::VerbsPort;
use crate::stats::ConnStats;

/// Staging state for one connection's transmit path.
pub(crate) struct TxPipe {
    /// WQEs staged for the next flush, in posting order.
    queue: Vec<SendWr>,
    /// The staged queue contains a data WQE whose completion someone
    /// waits for; its flush must end signaled.
    has_data: bool,
    /// Consecutive WQEs posted (or staged) unsignaled.
    unsignaled_run: usize,
    /// Signaled WQEs posted whose CQE has not yet been observed. While
    /// non-zero a future wake is guaranteed, so a socket may hold small
    /// sends for coalescing without risking a stall.
    signaled_outstanding: u32,
}

impl TxPipe {
    pub(crate) fn new() -> TxPipe {
        TxPipe {
            queue: Vec::new(),
            has_data: false,
            unsignaled_run: 0,
            signaled_outstanding: 0,
        }
    }

    /// WQEs staged and not yet flushed. They will occupy SQ slots the
    /// moment the queue flushes, so resource gates must count them as
    /// part of the SQ occupancy.
    pub(crate) fn staged(&self) -> usize {
        self.queue.len()
    }

    /// Signaled WQEs awaiting their CQE.
    pub(crate) fn signaled_outstanding(&self) -> u32 {
        self.signaled_outstanding
    }

    /// Records one observed signaled send completion.
    pub(crate) fn on_signaled_cqe(&mut self) {
        self.signaled_outstanding = self.signaled_outstanding.saturating_sub(1);
    }

    /// Stages one WQE, deciding its signaling: unsignaled by default,
    /// signaled every `signal_interval`-th WQE, force-signaled when the
    /// SQ nears full. `occupancy` is the caller's current SQ view
    /// (`sq_outstanding + staged`); `is_data` marks WQEs whose
    /// completion the application waits for.
    pub(crate) fn stage(
        &mut self,
        occupancy: usize,
        cfg: &ExsConfig,
        wr: SendWr,
        is_data: bool,
        stats: &mut ConnStats,
    ) {
        let signaled = self.unsignaled_run + 1 >= cfg.effective_signal_interval()
            || occupancy + 2 >= cfg.sq_depth;
        if signaled {
            self.unsignaled_run = 0;
            self.signaled_outstanding += 1;
            stats.signaled_wqes += 1;
            self.queue.push(wr); // constructors default to signaled
        } else {
            self.unsignaled_run += 1;
            stats.unsignaled_wqes += 1;
            self.queue.push(wr.unsignaled());
        }
        self.has_data |= is_data;
    }

    /// Posts the staged queue as postlists of at most `tx_batch_limit`
    /// WQEs, one doorbell each. A flush carrying data WQEs ends
    /// signaled so the CQE that retires their owners (and
    /// batch-releases the unsignaled SQ slots before it) is guaranteed
    /// even if the connection then goes quiet.
    pub(crate) fn flush(
        &mut self,
        api: &mut impl VerbsPort,
        qpn: QpNum,
        cfg: &ExsConfig,
        stats: &mut ConnStats,
    ) {
        if self.queue.is_empty() {
            return;
        }
        if self.has_data {
            let last = self.queue.last_mut().expect("queue is non-empty");
            if !last.signaled {
                last.signaled = true;
                stats.unsignaled_wqes -= 1;
                stats.signaled_wqes += 1;
                self.signaled_outstanding += 1;
                self.unsignaled_run = 0;
            }
        }
        self.has_data = false;
        let limit = cfg.effective_tx_batch_limit().max(1);
        let mut queue = std::mem::take(&mut self.queue);
        while !queue.is_empty() {
            let take = queue.len().min(limit);
            let chunk: Vec<SendWr> = queue.drain(..take).collect();
            stats.doorbells += 1;
            stats.wqes_posted += take as u64;
            stats.max_wqes_per_doorbell = stats.max_wqes_per_doorbell.max(take as u64);
            api.post_send_list(qpn, chunk)
                .expect("posting transmit batch");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interval_and_near_full_signaling() {
        let cfg = ExsConfig {
            sq_depth: 64,
            signal_interval: 4,
            ..ExsConfig::default()
        };
        let mut tx = TxPipe::new();
        let mut stats = ConnStats::default();
        for i in 0..8u64 {
            tx.stage(
                i as usize,
                &cfg,
                SendWr::send_inline(i, vec![0u8; 4]),
                false,
                &mut stats,
            );
        }
        // Every 4th WQE signaled: positions 3 and 7.
        let flags: Vec<bool> = tx.queue.iter().map(|w| w.signaled).collect();
        assert_eq!(
            flags,
            [false, false, false, true, false, false, false, true]
        );
        assert_eq!(stats.signaled_wqes, 2);
        assert_eq!(stats.unsignaled_wqes, 6);

        // Near-full occupancy forces a signal regardless of the run.
        tx.stage(
            62,
            &cfg,
            SendWr::send_inline(8, vec![0u8; 4]),
            false,
            &mut stats,
        );
        assert!(tx.queue.last().expect("staged").signaled);
    }

    #[test]
    fn data_flush_ends_signaled() {
        struct NoopPort {
            posted: Vec<(usize, Vec<bool>)>,
        }
        impl VerbsPort for NoopPort {
            fn post_send(&mut self, _q: QpNum, wr: SendWr) -> rdma_verbs::Result<()> {
                self.posted.push((1, vec![wr.signaled]));
                Ok(())
            }
            fn post_send_list(&mut self, _q: QpNum, wrs: Vec<SendWr>) -> rdma_verbs::Result<()> {
                self.posted
                    .push((wrs.len(), wrs.iter().map(|w| w.signaled).collect()));
                Ok(())
            }
            fn post_recv(&mut self, _q: QpNum, _wr: rdma_verbs::RecvWr) -> rdma_verbs::Result<()> {
                Ok(())
            }
            fn poll_cq(
                &mut self,
                _cq: rdma_verbs::CqId,
                _max: usize,
                _out: &mut Vec<rdma_verbs::Cqe>,
            ) -> rdma_verbs::Result<usize> {
                Ok(0)
            }
            fn read_mr(
                &self,
                _k: rdma_verbs::MrKey,
                _a: u64,
                _b: &mut [u8],
            ) -> rdma_verbs::Result<()> {
                Ok(())
            }
            fn copy_mr(
                &mut self,
                _sk: rdma_verbs::MrKey,
                _sa: u64,
                _dk: rdma_verbs::MrKey,
                _da: u64,
                len: u64,
            ) -> rdma_verbs::Result<u64> {
                Ok(len)
            }
            fn charge_cqe_cost(&mut self) {}
            fn sq_outstanding(&self, _q: QpNum) -> usize {
                0
            }
            fn register_mr(&mut self, len: usize, _a: rdma_verbs::Access) -> rdma_verbs::MrInfo {
                rdma_verbs::MrInfo {
                    key: rdma_verbs::MrKey(0),
                    addr: 0,
                    len,
                }
            }
            fn deregister_mr(&mut self, _k: rdma_verbs::MrKey) -> rdma_verbs::Result<()> {
                Ok(())
            }
            fn write_mr(
                &mut self,
                _k: rdma_verbs::MrKey,
                _a: u64,
                _d: &[u8],
            ) -> rdma_verbs::Result<()> {
                Ok(())
            }
        }

        let cfg = ExsConfig {
            sq_depth: 64,
            signal_interval: 1 << 30,
            tx_batch_limit: 3,
            ..ExsConfig::default()
        };
        let mut tx = TxPipe::new();
        let mut stats = ConnStats::default();
        let mut port = NoopPort { posted: Vec::new() };
        for i in 0..7u64 {
            tx.stage(
                i as usize,
                &cfg,
                SendWr::send_inline(i, vec![0u8; 4]),
                i == 2, // one data WQE in the middle
                &mut stats,
            );
        }
        tx.flush(&mut port, QpNum(1), &cfg, &mut stats);
        // Chunked at the batch limit: 3 + 3 + 1 WQEs, three doorbells.
        assert_eq!(
            port.posted.iter().map(|(n, _)| *n).collect::<Vec<_>>(),
            [3, 3, 1]
        );
        assert_eq!(stats.doorbells, 3);
        assert_eq!(stats.wqes_posted, 7);
        assert_eq!(stats.max_wqes_per_doorbell, 3);
        // The astronomically large interval left everything unsignaled,
        // but the data WQE forces the flush to end signaled.
        let all: Vec<bool> = port.posted.iter().flat_map(|(_, f)| f.clone()).collect();
        assert_eq!(all.iter().filter(|s| **s).count(), 1);
        assert!(all.last().expect("posted"), "flush must end signaled");
        assert_eq!(tx.signaled_outstanding(), 1);

        // A pure-control flush stays fully unsignaled.
        tx.stage(
            0,
            &cfg,
            SendWr::send_inline(9, vec![0u8; 4]),
            false,
            &mut stats,
        );
        port.posted.clear();
        tx.flush(&mut port, QpNum(1), &cfg, &mut stats);
        assert_eq!(port.posted, [(1, vec![false])]);
    }
}
