//! # exs — stream semantics over RDMA (UNH EXS reproduction)
//!
//! This crate reimplements the contribution of MacArthur & Russell,
//! *An Efficient Method for Stream Semantics over RDMA* (IEEE IPDPS
//! 2014): a byte-stream protocol over RDMA verbs that **dynamically
//! switches between zero-copy direct transfers and buffered indirect
//! transfers**, depending on whether the sender or the receiver is
//! currently ahead.
//!
//! * When the receiver is ahead, its `exs_recv()` buffers are advertised
//!   to the sender (ADVERT messages) and data moves by RDMA WRITE WITH
//!   IMM **directly into user memory** — true zero-copy.
//! * When the sender is ahead (no usable ADVERT), data moves into a
//!   hidden **circular intermediate buffer** at the receiver, which later
//!   copies it into user memory — lower send latency, higher receiver
//!   CPU.
//!
//! Consistency between the two modes on one connection is maintained by
//! stream **sequence numbers** and Lamport-style **phase numbers** (even
//! = direct, odd = indirect); the matching rules of paper Fig. 2–5 are
//! implemented in [`sender`] and [`receiver`] as sans-IO state machines,
//! and the paper's correctness lemmas are enforced as debug assertions
//! and re-proved as property tests.
//!
//! Layer map:
//!
//! | module | paper artifact |
//! |---|---|
//! | [`phase`], [`seq`] | phase numbers / sequence numbers (§III) |
//! | [`messages`] | ADVERT / ACK / CREDIT formats, WWI immediates |
//! | [`buffer`] | circular intermediate buffer (§III) |
//! | [`sender`] | Fig. 2 matching algorithm |
//! | [`receiver`] | Fig. 3–5 receiver algorithms |
//! | [`stream`] | SOCK_STREAM sockets over a verbs QP |
//! | [`seqpacket`] | SOCK_SEQPACKET message mode (§II-C) |
//! | [`mux`] | many streams multiplexed over a pooled QP set |
//! | [`api`] | ES-API-flavoured convenience layer |
//! | [`mempool`] | pin-down cache / slab MR pools / buffer leases |
//! | [`reactor`] | epoll-style readiness multiplexing of many streams |
//! | [`shard`] | sharded reactor pool — scale service across cores |
//! | [`aio`] | async/await futures + deterministic executor over the reactor |
//! | [`error`] | typed peer-attributable failures |
//! | [`stats`] | Table III counters + event-loop aggregates |

#![warn(missing_docs)]

pub mod aio;
pub mod api;
pub mod buffer;
pub mod config;
pub mod error;
pub mod mempool;
pub mod messages;
pub mod mux;
pub mod phase;
pub mod port;
pub mod reactor;
pub mod receiver;
pub mod sender;
pub mod seq;
pub mod seqpacket;
pub mod shard;
pub mod stats;
pub mod stream;
pub mod threaded;
mod txpipe;

pub use aio::{AioHandle, AioMux, AsyncStream, Executor, SimDriver, SimShardDriver};
pub use api::{Event, ExsContext, ExsFd, MsgFlags, QueuedEvent, SockType};
pub use config::{
    ConfigError, DirectPolicy, ExsConfig, MuxAssignment, MuxConfig, ProtocolMode, ShardConfig,
    ShardPolicy, WwiMode,
};
pub use error::{ExsError, ProtocolError};
pub use mempool::{MemPool, MemPoolConfig, MrLease};
pub use messages::{Advert, Ctrl, CtrlMsg, MuxCtrlMsg, TransferKind};
pub use mux::{connect_mux_pair, MuxEndpoint, MuxEvent};
pub use phase::Phase;
pub use port::{CqPressure, VerbsPort};
pub use reactor::{ConnId, MuxId, Reactor, ReactorConfig, Readiness};
pub use seq::Seq;
pub use seqpacket::{SeqPacketEvent, SeqPacketSocket};
pub use shard::{ReactorPool, ShardBalance, ShardHandle, ShardMuxHandle};
pub use stats::{AioStats, ConnStats, PoolStats, ReactorStats, ShardStats};
pub use stream::{ExsEvent, StreamSocket};
pub use threaded::{ThreadPort, ThreadReactor, ThreadReactorPool, ThreadStream};
