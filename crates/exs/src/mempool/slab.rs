//! Size-classed free lists for registered regions.
//!
//! Regions are pooled in power-of-two size classes starting at a
//! configurable minimum (one 4 KiB page by default). A request is
//! rounded up to its class, so a region released by one user is
//! reusable by any later request in the same class — the classic slab
//! trade: bounded internal fragmentation (< 2×) bought for O(1) reuse
//! and a small, fixed number of distinct region sizes to keep pinned.
//!
//! Reuse pops the **most recently used** region of a class (warm pages,
//! and the LRU tail stays stable for eviction); the pin-down cache in
//! [`super`] evicts the **globally least recently used** free region
//! when the pinned-bytes budget is exceeded.

use rdma_verbs::{Access, MrInfo};

/// One idle registered region parked in the cache.
#[derive(Clone, Copy, Debug)]
pub(crate) struct FreeRegion {
    /// The registration (key, base address, class-rounded length).
    pub mr: MrInfo,
    /// Access flags the region was registered with. Reuse requires an
    /// exact match: handing a send-only region to a receive path would
    /// trip the HCA's protection checks.
    pub access: Access,
    /// Monotonic last-use stamp (larger = more recent).
    pub stamp: u64,
}

/// The per-pool collection of size-classed free lists.
#[derive(Debug, Default)]
pub(crate) struct Slabs {
    /// `classes[i]` holds idle regions of `min_class << i` bytes.
    classes: Vec<Vec<FreeRegion>>,
    min_class: u64,
}

impl Slabs {
    /// Empty slab set with the given minimum class size (rounded up to
    /// a power of two, at least 64 bytes).
    pub fn new(min_class: usize) -> Slabs {
        Slabs {
            classes: Vec::new(),
            min_class: (min_class.max(64) as u64).next_power_of_two(),
        }
    }

    /// The class a request of `len` bytes is served from: `len` rounded
    /// up to the next power of two, at least the minimum class.
    pub fn class_len(&self, len: usize) -> u64 {
        (len as u64).next_power_of_two().max(self.min_class)
    }

    fn idx(&self, class_len: u64) -> usize {
        debug_assert!(class_len.is_power_of_two() && class_len >= self.min_class);
        (class_len.trailing_zeros() - self.min_class.trailing_zeros()) as usize
    }

    /// Takes the most-recently-used idle region of `class_len` bytes
    /// registered with exactly `access`, if one exists.
    pub fn take(&mut self, class_len: u64, access: Access) -> Option<FreeRegion> {
        let idx = self.idx(class_len);
        let list = self.classes.get_mut(idx)?;
        let best = list
            .iter()
            .enumerate()
            .filter(|(_, r)| r.access == access)
            .max_by_key(|(_, r)| r.stamp)
            .map(|(i, _)| i)?;
        Some(list.swap_remove(best))
    }

    /// Parks an idle region back in its class.
    pub fn put(&mut self, region: FreeRegion) {
        let idx = self.idx(region.mr.len as u64);
        if self.classes.len() <= idx {
            self.classes.resize_with(idx + 1, Vec::new);
        }
        self.classes[idx].push(region);
    }

    /// Removes and returns the globally least-recently-used idle
    /// region (the eviction victim), if any region is idle.
    pub fn evict_lru(&mut self) -> Option<FreeRegion> {
        let (ci, ri) = self
            .classes
            .iter()
            .enumerate()
            .flat_map(|(ci, list)| {
                list.iter()
                    .enumerate()
                    .map(move |(ri, r)| (ci, ri, r.stamp))
            })
            .min_by_key(|&(_, _, stamp)| stamp)
            .map(|(ci, ri, _)| (ci, ri))?;
        Some(self.classes[ci].swap_remove(ri))
    }

    /// Total idle bytes across all classes.
    pub fn free_bytes(&self) -> u64 {
        self.classes
            .iter()
            .flat_map(|l| l.iter())
            .map(|r| r.mr.len as u64)
            .sum()
    }

    /// Removes every idle region (pool trim / close).
    pub fn drain(&mut self) -> Vec<FreeRegion> {
        let mut out = Vec::new();
        for list in &mut self.classes {
            out.append(list);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdma_verbs::MrKey;

    fn region(len: usize, stamp: u64, access: Access) -> FreeRegion {
        FreeRegion {
            mr: MrInfo {
                key: MrKey(stamp as u32),
                addr: 0x1000 * stamp,
                len,
            },
            access,
            stamp,
        }
    }

    #[test]
    fn class_rounding() {
        let s = Slabs::new(4096);
        assert_eq!(s.class_len(1), 4096);
        assert_eq!(s.class_len(4096), 4096);
        assert_eq!(s.class_len(4097), 8192);
        assert_eq!(s.class_len(64 << 10), 64 << 10);
        assert_eq!(s.class_len((64 << 10) + 1), 128 << 10);
    }

    #[test]
    fn take_prefers_mru_and_matches_access() {
        let mut s = Slabs::new(4096);
        s.put(region(4096, 1, Access::NONE));
        s.put(region(4096, 2, Access::LOCAL_WRITE));
        s.put(region(4096, 3, Access::NONE));
        // MRU of the matching access, not the global MRU.
        let got = s.take(4096, Access::NONE).unwrap();
        assert_eq!(got.stamp, 3);
        let got = s.take(4096, Access::NONE).unwrap();
        assert_eq!(got.stamp, 1);
        assert!(s.take(4096, Access::NONE).is_none());
        assert!(s.take(4096, Access::LOCAL_WRITE).is_some());
    }

    #[test]
    fn evict_takes_global_lru_across_classes() {
        let mut s = Slabs::new(4096);
        s.put(region(8192, 5, Access::NONE));
        s.put(region(4096, 2, Access::NONE));
        s.put(region(16384, 9, Access::NONE));
        assert_eq!(s.evict_lru().unwrap().stamp, 2);
        assert_eq!(s.evict_lru().unwrap().stamp, 5);
        assert_eq!(s.evict_lru().unwrap().stamp, 9);
        assert!(s.evict_lru().is_none());
        assert_eq!(s.free_bytes(), 0);
    }

    #[test]
    fn drain_empties_everything() {
        let mut s = Slabs::new(4096);
        s.put(region(4096, 1, Access::NONE));
        s.put(region(8192, 2, Access::NONE));
        assert_eq!(s.free_bytes(), 4096 + 8192);
        assert_eq!(s.drain().len(), 2);
        assert_eq!(s.free_bytes(), 0);
    }
}
