//! Registered-memory pool: pin-down cache, slab MR pools, and RAII
//! buffer leases.
//!
//! Memory registration is the hidden cost of every zero-copy RDMA
//! path: `ibv_reg_mr` pins pages and updates the HCA's translation
//! table at a price of tens of microseconds plus a per-page term —
//! orders of magnitude more than posting a send. The paper's direct
//! path therefore only wins when user buffers are *already*
//! registered; a workload that registers per transfer is dominated by
//! registration (the observation behind pin-down caching in the
//! MPICH2-over-InfiniBand line of work and Taranov et al.'s RDMA
//! protocol studies).
//!
//! [`MemPool`] keeps registered regions alive across uses:
//!
//! * **Size-classed slabs** — requests round up to
//!   power-of-two classes, so released regions are reusable by any
//!   later request of the same class and access flags.
//! * **Pin-down cache with lazy LRU deregistration** — released
//!   regions stay registered (and pinned) until the pool's
//!   `pinned_budget` is exceeded, at which point the least recently
//!   used *idle* regions are deregistered. Regions held by live leases
//!   are never evicted.
//! * **RAII leases** — [`MemPool::acquire`] hands out an [`MrLease`]
//!   whose [`MrInfo`] plugs directly into `exs_send`/`exs_recv`
//!   (zero-copy send/recv slices). Dropping the lease returns the
//!   region to the cache without any verbs call; the deregistration
//!   debt is settled lazily at the next over-budget acquire or an
//!   explicit [`MemPool::trim`].
//!
//! The pool is a cheaply clonable handle (`Arc` inside), shared across
//! connections of a node — the simulator's `NodeApi` and the threaded
//! backend's `ThreadPort` both drive it through [`VerbsPort`], so the
//! same pool code backs deterministic benches and real-thread runs.

mod slab;

use std::sync::Arc;

use parking_lot::Mutex;
use rdma_verbs::{Access, MrInfo, Result, Sge};

use crate::port::VerbsPort;
use crate::stats::PoolStats;
use slab::{FreeRegion, Slabs};

/// Tunables for one [`MemPool`].
#[derive(Clone, Debug)]
pub struct MemPoolConfig {
    /// Ceiling on bytes kept registered (pinned) by the pool, idle and
    /// leased together. Exceeding it triggers lazy LRU deregistration
    /// of idle regions; live leases are never evicted, so a burst of
    /// leases can overshoot the budget until they drop.
    pub pinned_budget: u64,
    /// Smallest slab class in bytes (requests round up to a power of
    /// two at least this large). One 4 KiB page by default —
    /// registration is page-granular anyway.
    pub min_class: usize,
}

impl Default for MemPoolConfig {
    fn default() -> Self {
        MemPoolConfig {
            pinned_budget: 64 << 20,
            min_class: 4096,
        }
    }
}

struct PoolInner {
    slabs: Slabs,
    budget: u64,
    /// Monotonic stamp source for LRU ordering.
    tick: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
    registrations: u64,
    deregistrations: u64,
    pinned_bytes: u64,
    pinned_peak: u64,
    leased_bytes: u64,
}

impl PoolInner {
    fn stats(&self) -> PoolStats {
        PoolStats {
            hits: self.hits,
            misses: self.misses,
            evictions: self.evictions,
            registrations: self.registrations,
            deregistrations: self.deregistrations,
            pinned_bytes: self.pinned_bytes,
            pinned_peak: self.pinned_peak,
            leased_bytes: self.leased_bytes,
            free_bytes: self.slabs.free_bytes(),
        }
    }
}

/// A shared pool of registered memory regions for one node. Clone the
/// handle freely; all clones see the same cache.
#[derive(Clone)]
pub struct MemPool {
    inner: Arc<Mutex<PoolInner>>,
}

impl MemPool {
    /// Creates an empty pool.
    pub fn new(cfg: MemPoolConfig) -> MemPool {
        MemPool {
            inner: Arc::new(Mutex::new(PoolInner {
                slabs: Slabs::new(cfg.min_class),
                budget: cfg.pinned_budget,
                tick: 0,
                hits: 0,
                misses: 0,
                evictions: 0,
                registrations: 0,
                deregistrations: 0,
                pinned_bytes: 0,
                pinned_peak: 0,
                leased_bytes: 0,
            })),
        }
    }

    /// Leases a registered region of at least `len` bytes with exactly
    /// `access`. Served from the cache when a region of the same class
    /// and access is idle (no verbs call); otherwise registers a fresh
    /// class-sized region through `api` — charged at the host's
    /// pin-down cost on backends that model one — and then evicts idle
    /// LRU regions until the pool is back under its pinned budget.
    pub fn acquire(&self, api: &mut impl VerbsPort, len: usize, access: Access) -> MrLease {
        let mut inner = self.inner.lock();
        let class_len = inner.slabs.class_len(len);
        let mr = match inner.slabs.take(class_len, access) {
            Some(region) => {
                inner.hits += 1;
                region.mr
            }
            None => {
                inner.misses += 1;
                inner.registrations += 1;
                let mr = api.register_mr_charged(class_len as usize, access);
                inner.pinned_bytes += class_len;
                inner.pinned_peak = inner.pinned_peak.max(inner.pinned_bytes);
                // Lazy deregistration: settle the pin debt by evicting
                // idle LRU regions. Leased regions cannot be evicted,
                // so a fully-leased pool legitimately overshoots.
                while inner.pinned_bytes > inner.budget {
                    let Some(victim) = inner.slabs.evict_lru() else {
                        break;
                    };
                    api.deregister_mr_charged(victim.mr.key)
                        .expect("deregistering evicted pool region");
                    inner.pinned_bytes -= victim.mr.len as u64;
                    inner.evictions += 1;
                    inner.deregistrations += 1;
                }
                mr
            }
        };
        inner.leased_bytes += class_len;
        drop(inner);
        MrLease {
            pool: self.inner.clone(),
            mr,
            requested: len,
            access,
        }
    }

    /// Pre-registers `count` idle regions of `len` bytes with `access`
    /// through the *uncharged* registration path — setup-time cache
    /// warming, for an application that pins its working set before
    /// the measured window (the simulator's charged path exists to
    /// price registration churn *inside* that window, see
    /// [`VerbsPort::register_mr_charged`]). Subsequent [`Self::acquire`]
    /// calls of the same class and access are pure cache hits. Counted
    /// as registrations but not as misses; the pinned budget is not
    /// enforced here — warming past it just means the first evictions
    /// come earlier.
    pub fn prewarm(&self, api: &mut impl VerbsPort, count: usize, len: usize, access: Access) {
        let mut inner = self.inner.lock();
        let class_len = inner.slabs.class_len(len);
        for _ in 0..count {
            let mr = api.register_mr(class_len as usize, access);
            inner.registrations += 1;
            inner.pinned_bytes += class_len;
            inner.pinned_peak = inner.pinned_peak.max(inner.pinned_bytes);
            inner.tick += 1;
            let stamp = inner.tick;
            inner.slabs.put(FreeRegion { mr, access, stamp });
        }
    }

    /// Deregisters every idle region now (pool close / memory
    /// pressure), returning the bytes released. Live leases keep their
    /// regions; drop them and call `trim` again for a full release.
    pub fn trim(&self, api: &mut impl VerbsPort) -> u64 {
        let mut inner = self.inner.lock();
        let mut released = 0;
        for region in inner.slabs.drain() {
            api.deregister_mr_charged(region.mr.key)
                .expect("deregistering trimmed pool region");
            released += region.mr.len as u64;
            inner.deregistrations += 1;
        }
        inner.pinned_bytes -= released;
        released
    }

    /// Counter snapshot.
    pub fn stats(&self) -> PoolStats {
        self.inner.lock().stats()
    }

    /// Bytes currently registered through the pool.
    pub fn pinned_bytes(&self) -> u64 {
        self.inner.lock().pinned_bytes
    }
}

/// A leased registered region. The lease owns the region for its
/// lifetime: the [`MrInfo`] it exposes is safe to hand to
/// `exs_send`/`exs_recv` as a zero-copy buffer. Dropping the lease
/// returns the region to the pool's cache — no verbs call, so drops
/// are safe anywhere, including after every pool handle is gone (the
/// cache itself is kept alive by the lease).
pub struct MrLease {
    pool: Arc<Mutex<PoolInner>>,
    mr: MrInfo,
    requested: usize,
    access: Access,
}

impl MrLease {
    /// The underlying registration. Its `len` is the class-rounded
    /// capacity, which may exceed the requested length.
    pub fn info(&self) -> &MrInfo {
        &self.mr
    }

    /// The length originally requested.
    pub fn len(&self) -> usize {
        self.requested
    }

    /// True for a zero-length request.
    pub fn is_empty(&self) -> bool {
        self.requested == 0
    }

    /// Class-rounded capacity of the leased region.
    pub fn capacity(&self) -> usize {
        self.mr.len
    }

    /// The access flags the region was registered with.
    pub fn access(&self) -> Access {
        self.access
    }

    /// An SGE covering `[offset, offset+len)` of the leased region.
    pub fn sge(&self, offset: u64, len: u32) -> Sge {
        self.mr.sge(offset, len)
    }

    /// Fills the leased region from `data` at `offset`.
    pub fn write(&self, api: &mut impl VerbsPort, offset: u64, data: &[u8]) -> Result<()> {
        api.write_mr(self.mr.key, self.mr.addr + offset, data)
    }

    /// Reads the leased region into `buf` from `offset`.
    pub fn read(&self, api: &impl VerbsPort, offset: u64, buf: &mut [u8]) -> Result<()> {
        api.read_mr(self.mr.key, self.mr.addr + offset, buf)
    }
}

impl Drop for MrLease {
    fn drop(&mut self) {
        let mut inner = self.pool.lock();
        inner.leased_bytes -= self.mr.len as u64;
        inner.tick += 1;
        let stamp = inner.tick;
        inner.slabs.put(FreeRegion {
            mr: self.mr,
            access: self.access,
            stamp,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdma_verbs::{Cqe, MemoryTable, MrKey, QpNum, RecvWr, SendWr};

    /// A [`VerbsPort`] over a bare [`MemoryTable`]: enough backend for
    /// the pool (register/deregister/read/write), everything else
    /// unreachable.
    struct TablePort {
        mem: MemoryTable,
    }

    impl TablePort {
        fn new() -> Self {
            TablePort {
                mem: MemoryTable::new(),
            }
        }
    }

    impl VerbsPort for TablePort {
        fn post_send(&mut self, _: QpNum, _: SendWr) -> Result<()> {
            unreachable!("pool tests never post")
        }
        fn post_recv(&mut self, _: QpNum, _: RecvWr) -> Result<()> {
            unreachable!("pool tests never post")
        }
        fn poll_cq(&mut self, _: rdma_verbs::CqId, _: usize, _: &mut Vec<Cqe>) -> Result<usize> {
            unreachable!("pool tests never poll")
        }
        fn read_mr(&self, key: MrKey, addr: u64, buf: &mut [u8]) -> Result<()> {
            self.mem.app_read(key, addr, buf)
        }
        fn copy_mr(&mut self, _: MrKey, _: u64, _: MrKey, _: u64, _: u64) -> Result<u64> {
            unreachable!("pool tests never copy")
        }
        fn charge_cqe_cost(&mut self) {}
        fn sq_outstanding(&self, _: QpNum) -> usize {
            0
        }
        fn register_mr(&mut self, len: usize, access: Access) -> MrInfo {
            self.mem.register(len, access)
        }
        fn deregister_mr(&mut self, key: MrKey) -> Result<()> {
            self.mem.deregister(key)
        }
        fn write_mr(&mut self, key: MrKey, addr: u64, data: &[u8]) -> Result<()> {
            self.mem.app_write(key, addr, data)
        }
    }

    #[test]
    fn acquire_reuses_released_regions() {
        let mut port = TablePort::new();
        let pool = MemPool::new(MemPoolConfig::default());
        let a = pool.acquire(&mut port, 1000, Access::NONE);
        assert_eq!(a.capacity(), 4096, "rounded to the min class");
        assert_eq!(a.len(), 1000);
        let key = a.info().key;
        drop(a);
        // Same class + access: served from cache, same registration.
        let b = pool.acquire(&mut port, 4096, Access::NONE);
        assert_eq!(b.info().key, key);
        let s = pool.stats();
        assert_eq!((s.hits, s.misses), (1, 1));
        assert_eq!(s.registrations, 1);
        assert_eq!(port.mem.len(), 1, "one region ever registered");
        // Different access: a fresh registration.
        let c = pool.acquire(&mut port, 4096, Access::LOCAL_WRITE);
        assert_ne!(c.info().key, key);
        assert_eq!(pool.stats().misses, 2);
    }

    #[test]
    fn lru_eviction_order_under_budget_pressure() {
        let mut port = TablePort::new();
        let pool = MemPool::new(MemPoolConfig {
            pinned_budget: 16 << 10,
            min_class: 4096,
        });
        let a = pool.acquire(&mut port, 4096, Access::NONE);
        let b = pool.acquire(&mut port, 4096, Access::NONE);
        let c = pool.acquire(&mut port, 4096, Access::NONE);
        let (ka, kb, kc) = (a.info().key, b.info().key, c.info().key);
        // Release order defines LRU order: a is the oldest idle region.
        drop(a);
        drop(b);
        // 12 KiB pinned + 8 KiB miss = 20 KiB > 16 KiB budget: exactly
        // one idle eviction (a) brings it back to 16 KiB.
        let d = pool.acquire(&mut port, 8192, Access::NONE);
        let s = pool.stats();
        assert_eq!(s.evictions, 1);
        assert_eq!(s.pinned_bytes, 16 << 10);
        assert!(port.mem.len_of(ka).is_none(), "LRU region evicted");
        assert!(port.mem.len_of(kb).is_some(), "MRU idle region kept");
        assert!(port.mem.len_of(kc).is_some(), "leased region never evicted");
        drop(c);
        drop(d);
        // Next miss over budget evicts in stamp order again.
        let _e = pool.acquire(&mut port, 16 << 10, Access::NONE);
        assert!(port.mem.len_of(kb).is_none(), "b was the next LRU victim");
    }

    #[test]
    fn leases_never_evicted_even_fully_over_budget() {
        let mut port = TablePort::new();
        let pool = MemPool::new(MemPoolConfig {
            pinned_budget: 4096,
            min_class: 4096,
        });
        let leases: Vec<MrLease> = (0..4)
            .map(|_| pool.acquire(&mut port, 4096, Access::NONE))
            .collect();
        // All pinned bytes are leased; nothing can be evicted.
        assert_eq!(pool.stats().evictions, 0);
        assert_eq!(pool.pinned_bytes(), 4 * 4096);
        drop(leases);
        // Trim settles the debt.
        assert_eq!(pool.trim(&mut port), 4 * 4096);
        assert!(port.mem.is_empty());
    }

    #[test]
    fn prewarm_turns_first_acquires_into_hits() {
        let mut port = TablePort::new();
        let pool = MemPool::new(MemPoolConfig {
            pinned_budget: 64 << 10,
            min_class: 4096,
        });
        pool.prewarm(&mut port, 3, 3000, Access::NONE);
        let s = pool.stats();
        assert_eq!(s.registrations, 3);
        assert_eq!(s.misses, 0, "warming is not a miss");
        assert_eq!(s.pinned_bytes, 3 * 4096, "regions are class-sized");
        let a = pool.acquire(&mut port, 4096, Access::NONE);
        let b = pool.acquire(&mut port, 4096, Access::NONE);
        let c = pool.acquire(&mut port, 4096, Access::NONE);
        let s = pool.stats();
        assert_eq!(s.hits, 3, "warmed regions serve the first acquires");
        assert_eq!(s.misses, 0);
        assert_eq!(s.registrations, 3, "no further verbs registration");
        // A different access class still misses past the warm set.
        let d = pool.acquire(&mut port, 4096, Access::local_remote_write());
        assert_eq!(pool.stats().misses, 1);
        drop((a, b, c, d));
        // Drops return regions to the cache; nothing deregisters until
        // eviction or trim.
        assert_eq!(pool.stats().deregistrations, 0);
        assert_eq!(pool.trim(&mut port), 4 * 4096);
    }

    #[test]
    fn lease_outlives_pool_handle() {
        let mut port = TablePort::new();
        let pool = MemPool::new(MemPoolConfig::default());
        let lease = pool.acquire(&mut port, 4096, Access::NONE);
        drop(pool); // every handle gone; the lease keeps the cache alive
        lease.write(&mut port, 0, b"still usable").unwrap();
        let mut buf = [0u8; 12];
        lease.read(&port, 0, &mut buf).unwrap();
        assert_eq!(&buf, b"still usable");
        drop(lease); // returns into the orphaned cache, then frees it
    }

    #[test]
    fn stats_track_footprint() {
        let mut port = TablePort::new();
        let pool = MemPool::new(MemPoolConfig::default());
        let a = pool.acquire(&mut port, 8192, Access::NONE);
        let s = pool.stats();
        assert_eq!(s.leased_bytes, 8192);
        assert_eq!(s.free_bytes, 0);
        assert_eq!(s.pinned_peak, 8192);
        drop(a);
        let s = pool.stats();
        assert_eq!(s.leased_bytes, 0);
        assert_eq!(s.free_bytes, 8192);
        assert_eq!(s.pinned_bytes, 8192, "still pinned after release");
        pool.trim(&mut port);
        assert_eq!(pool.stats().pinned_bytes, 0);
    }
}
