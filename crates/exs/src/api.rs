//! ES-API-flavoured convenience layer.
//!
//! UNH EXS implements the Open Group's Extended Sockets API (ES-API):
//! applications create sockets with `exs_socket()` (choosing
//! `SOCK_STREAM` or `SOCK_SEQPACKET`), register I/O memory with
//! `exs_mregister()`, issue asynchronous `exs_send()`/`exs_recv()`
//! calls, and retrieve completion events from an event queue created
//! with `exs_qcreate()` and drained with `exs_qdequeue()` (paper §I,
//! §II-B).
//!
//! [`ExsContext`] reproduces that shape for one simulated node: sockets
//! are addressed by small descriptors, all completion events funnel into
//! one per-context event queue, and flags follow the sockets convention
//! ([`MsgFlags::WAITALL`] = MSG_WAITALL).

use std::collections::HashMap;

use rdma_verbs::{Access, MrInfo, NodeApi, NodeId, SimNet};

use crate::config::ExsConfig;
use crate::seqpacket::{SeqPacketEvent, SeqPacketSocket};
use crate::stats::ConnStats;
use crate::stream::{ExsEvent, StreamSocket};

/// Socket descriptor within one [`ExsContext`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct ExsFd(pub u32);

/// Socket type, as passed to `exs_socket()`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SockType {
    /// Byte-stream semantics with dynamic direct/indirect transfers.
    Stream,
    /// Message semantics: one send matches one receive.
    SeqPacket,
}

/// Receive flags.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct MsgFlags(u8);

impl MsgFlags {
    /// No flags.
    pub const NONE: MsgFlags = MsgFlags(0);
    /// MSG_WAITALL: complete the receive only when the buffer is full.
    pub const WAITALL: MsgFlags = MsgFlags(1);

    /// True if MSG_WAITALL is set.
    pub fn waitall(self) -> bool {
        self.0 & 1 != 0
    }
}

/// A completion event dequeued from the context's event queue, tagged
/// with the socket it belongs to (`exs_qdequeue` semantics).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct QueuedEvent {
    /// The socket the operation ran on.
    pub fd: ExsFd,
    /// The completion itself.
    pub event: Event,
}

/// Unified completion event across socket types.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Event {
    /// An `exs_send` completed; the buffer is reusable.
    SendComplete {
        /// User token.
        id: u64,
        /// Bytes sent.
        len: u64,
    },
    /// An `exs_send` failed (message mode: message larger than the
    /// matched receive buffer).
    SendError {
        /// User token.
        id: u64,
        /// Message length.
        len: u64,
    },
    /// An `exs_recv` completed with `len` bytes (`0` = end of stream).
    RecvComplete {
        /// User token.
        id: u64,
        /// Bytes received.
        len: u32,
    },
    /// The peer half-closed its sending direction and every byte has
    /// been delivered.
    PeerClosed,
    /// The transport under the socket failed.
    ConnectionError,
}

enum Sock {
    Stream(Box<StreamSocket>),
    SeqPacket(Box<SeqPacketSocket>),
}

/// Per-node ES-API context: a descriptor table plus one event queue.
pub struct ExsContext {
    node: NodeId,
    sockets: HashMap<u32, Sock>,
    next_fd: u32,
    queue: Vec<QueuedEvent>,
}

impl ExsContext {
    /// Creates an empty context for a node.
    pub fn new(node: NodeId) -> Self {
        ExsContext {
            node,
            sockets: HashMap::new(),
            next_fd: 3, // 0-2 reserved, like file descriptors
            queue: Vec::new(),
        }
    }

    /// The node this context lives on.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Number of open sockets.
    pub fn open_sockets(&self) -> usize {
        self.sockets.len()
    }

    /// Registers I/O memory (`exs_mregister`). EXS exposes registration
    /// explicitly because zero-copy transfers require it (paper §I).
    pub fn exs_mregister(&mut self, api: &mut NodeApi<'_>, len: usize, access: Access) -> MrInfo {
        let _ = self.node;
        api.register_mr(len, access)
    }

    /// Releases memory registered with
    /// [`ExsContext::exs_mregister`] (`exs_mderegister`).
    pub fn exs_mderegister(&mut self, api: &mut NodeApi<'_>, mr: &MrInfo) {
        api.hca_deregister(mr.key).expect("exs_mderegister");
    }

    fn install(&mut self, sock: Sock) -> ExsFd {
        let fd = ExsFd(self.next_fd);
        self.next_fd += 1;
        self.sockets.insert(fd.0, sock);
        fd
    }

    /// Creates a connected socket pair across two contexts — the
    /// simulation-level equivalent of `exs_socket` + `exs_connect` on
    /// one side and `exs_socket` + `exs_bind`/`exs_listen`/`exs_accept`
    /// on the other (the out-of-band CM exchange happens inside).
    pub fn socket_pair(
        net: &mut SimNet,
        a: &mut ExsContext,
        b: &mut ExsContext,
        socktype: SockType,
        cfg: &ExsConfig,
    ) -> (ExsFd, ExsFd) {
        match socktype {
            SockType::Stream => {
                let (sa, sb) = StreamSocket::pair(net, a.node, b.node, cfg);
                (
                    a.install(Sock::Stream(Box::new(sa))),
                    b.install(Sock::Stream(Box::new(sb))),
                )
            }
            SockType::SeqPacket => {
                let (sa, sb) = SeqPacketSocket::pair(net, a.node, b.node, cfg);
                (
                    a.install(Sock::SeqPacket(Box::new(sa))),
                    b.install(Sock::SeqPacket(Box::new(sb))),
                )
            }
        }
    }

    fn sock_mut(&mut self, fd: ExsFd) -> &mut Sock {
        self.sockets
            .get_mut(&fd.0)
            .unwrap_or_else(|| panic!("unknown socket descriptor {fd:?}"))
    }

    /// Asynchronous send (`exs_send`). Returns immediately; completion
    /// arrives on the event queue.
    pub fn exs_send(
        &mut self,
        api: &mut NodeApi<'_>,
        fd: ExsFd,
        mr: &MrInfo,
        offset: u64,
        len: u64,
        id: u64,
    ) {
        match self.sock_mut(fd) {
            Sock::Stream(s) => s.exs_send(api, mr, offset, len, id),
            Sock::SeqPacket(s) => s.exs_send(api, mr, offset, len as u32, id),
        }
        self.collect(fd);
    }

    /// Asynchronous receive (`exs_recv`).
    #[allow(clippy::too_many_arguments)] // mirrors the ES-API C signature
    pub fn exs_recv(
        &mut self,
        api: &mut NodeApi<'_>,
        fd: ExsFd,
        mr: &MrInfo,
        offset: u64,
        len: u32,
        flags: MsgFlags,
        id: u64,
    ) {
        match self.sock_mut(fd) {
            Sock::Stream(s) => s.exs_recv(api, mr, offset, len, flags.waitall(), id),
            Sock::SeqPacket(s) => s.exs_recv(api, mr, offset, len, id),
        }
        self.collect(fd);
    }

    /// Best-effort cancellation of a queued operation (`exs_cancel`):
    /// succeeds only while the operation has not touched the wire.
    /// Stream sockets only.
    pub fn exs_cancel(&mut self, fd: ExsFd, id: u64) -> bool {
        match self.sock_mut(fd) {
            Sock::Stream(s) => s.exs_cancel(id),
            Sock::SeqPacket(_) => false,
        }
    }

    /// Half-closes a stream socket's sending direction (`exs_shutdown`
    /// with SHUT_WR).
    pub fn exs_shutdown(&mut self, api: &mut NodeApi<'_>, fd: ExsFd) {
        match self.sock_mut(fd) {
            Sock::Stream(s) => s.exs_shutdown(api),
            Sock::SeqPacket(_) => panic!("half-close is not implemented for SEQPACKET sockets"),
        }
        self.collect(fd);
    }

    /// Drives every socket from a node wake; call from
    /// `NodeApp::on_wake`.
    pub fn handle_wake(&mut self, api: &mut NodeApi<'_>) {
        let fds: Vec<u32> = self.sockets.keys().copied().collect();
        for fd in fds {
            match self.sockets.get_mut(&fd).expect("fd present") {
                Sock::Stream(s) => s.handle_wake(api),
                Sock::SeqPacket(s) => s.handle_wake(api),
            }
            self.collect(ExsFd(fd));
        }
    }

    fn collect(&mut self, fd: ExsFd) {
        match self.sockets.get_mut(&fd.0).expect("fd present") {
            Sock::Stream(s) => {
                for ev in s.take_events() {
                    let event = match ev {
                        ExsEvent::SendComplete { id, len } => Event::SendComplete { id, len },
                        ExsEvent::RecvComplete { id, len } => Event::RecvComplete { id, len },
                        ExsEvent::PeerClosed => Event::PeerClosed,
                        ExsEvent::ConnectionError => Event::ConnectionError,
                    };
                    self.queue.push(QueuedEvent { fd, event });
                }
            }
            Sock::SeqPacket(s) => {
                for ev in s.take_events() {
                    let event = match ev {
                        SeqPacketEvent::SendComplete { id, len } => Event::SendComplete {
                            id,
                            len: len as u64,
                        },
                        SeqPacketEvent::SendError { id, len, .. } => Event::SendError {
                            id,
                            len: len as u64,
                        },
                        SeqPacketEvent::RecvComplete { id, len } => Event::RecvComplete { id, len },
                    };
                    self.queue.push(QueuedEvent { fd, event });
                }
            }
        }
    }

    /// Drains the event queue (`exs_qdequeue`).
    pub fn exs_qdequeue(&mut self) -> Vec<QueuedEvent> {
        std::mem::take(&mut self.queue)
    }

    /// Statistics for one socket.
    pub fn stats(&self, fd: ExsFd) -> &ConnStats {
        match self.sockets.get(&fd.0).expect("fd present") {
            Sock::Stream(s) => s.stats(),
            Sock::SeqPacket(s) => s.stats(),
        }
    }

    /// Closes a socket descriptor, releasing every registration the
    /// socket owns (ring, control slots, in-flight staging regions).
    /// ES-API `exs_close`: deregistration of socket-owned memory is the
    /// library's job; only `exs_mregister`ed user regions remain the
    /// application's to release.
    pub fn exs_close(&mut self, api: &mut NodeApi<'_>, fd: ExsFd) {
        if let Some(mut sock) = self.sockets.remove(&fd.0) {
            match &mut sock {
                Sock::Stream(s) => s.close(api),
                Sock::SeqPacket(s) => s.close(api),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flags() {
        assert!(!MsgFlags::NONE.waitall());
        assert!(MsgFlags::WAITALL.waitall());
    }
}
