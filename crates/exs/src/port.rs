//! Backend abstraction for the socket layer.
//!
//! The protocol state machines are sans-IO; the socket layer around
//! them needs a handful of verbs operations plus host-cost accounting.
//! [`VerbsPort`] names exactly that surface, so the same
//! `StreamSocket`/`SeqPacketSocket` code runs over:
//!
//! * the deterministic simulator (`rdma_verbs::NodeApi` — virtual time,
//!   CPU cost model; used by every benchmark), and
//! * the real-thread fabric (`crate::threaded::ThreadPort` — genuine
//!   concurrency; used to demonstrate the paper's thread-safety claim).

use rdma_verbs::{Access, CqId, Cqe, MrInfo, MrKey, NodeApi, QpNum, RecvWr, Result, SendWr};

/// The verbs surface the EXS socket layer needs from a backend.
pub trait VerbsPort {
    /// Posts a send work request.
    fn post_send(&mut self, qpn: QpNum, wr: SendWr) -> Result<()>;
    /// Posts a chain of send work requests as one postlist, paying a
    /// single doorbell cost where the backend models one. The default
    /// falls back to one doorbell per WR so a backend only overrides
    /// this when it can genuinely batch.
    fn post_send_list(&mut self, qpn: QpNum, wrs: Vec<SendWr>) -> Result<()> {
        for wr in wrs {
            self.post_send(qpn, wr)?;
        }
        Ok(())
    }
    /// Posts a receive work request.
    fn post_recv(&mut self, qpn: QpNum, wr: RecvWr) -> Result<()>;
    /// Polls up to `max` completions from `cq` into `out`.
    fn poll_cq(&mut self, cq: CqId, max: usize, out: &mut Vec<Cqe>) -> Result<usize>;
    /// Reads registered memory (control-message slots).
    fn read_mr(&self, key: MrKey, addr: u64, buf: &mut [u8]) -> Result<()>;
    /// Copies between registered regions, charging the host memcpy cost
    /// where the backend models one (the intermediate-buffer copy-out).
    fn copy_mr(
        &mut self,
        src_key: MrKey,
        src_addr: u64,
        dst_key: MrKey,
        dst_addr: u64,
        len: u64,
    ) -> Result<u64>;
    /// Charges the protocol-layer cost of handling one completion
    /// (no-op on backends without a CPU model).
    fn charge_cqe_cost(&mut self);
    /// Outstanding send WQEs on the QP (send-queue backpressure).
    fn sq_outstanding(&self, qpn: QpNum) -> usize;
    /// Registers a memory region (BCopy staging buffers).
    fn register_mr(&mut self, len: usize, access: Access) -> MrInfo;
    /// Deregisters a memory region.
    fn deregister_mr(&mut self, key: MrKey) -> Result<()>;
    /// Registers a memory region, charging the host's pin-down cost
    /// where the backend models one. The mempool acquire path uses
    /// this so registration churn is visible in virtual time; backends
    /// without a CPU model fall back to plain registration.
    fn register_mr_charged(&mut self, len: usize, access: Access) -> MrInfo {
        self.register_mr(len, access)
    }
    /// Deregisters a memory region, charging the host's unpin cost
    /// where the backend models one.
    fn deregister_mr_charged(&mut self, key: MrKey) -> Result<()> {
        self.deregister_mr(key)
    }
    /// Writes application data into registered memory (lease fills;
    /// uncharged — the fill is part of producing the data, not of the
    /// transport).
    fn write_mr(&mut self, key: MrKey, addr: u64, data: &[u8]) -> Result<()>;
    /// CQ pressure gauges: `(overflowed, max_batch, nonempty_polls)`
    /// for one completion queue, surfaced into stats snapshots so bench
    /// output shows when a CQ was sized too small. Backends without
    /// introspection return the neutral reading.
    fn cq_pressure(&self, cq: CqId) -> CqPressure {
        let _ = cq;
        CqPressure::default()
    }
}

/// A point-in-time reading of one completion queue's pressure gauges.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CqPressure {
    /// The CQ dropped a completion because it was full (fatal in real
    /// verbs; latched sticky here).
    pub overflowed: bool,
    /// Largest number of CQEs returned by a single poll.
    pub max_batch: u64,
    /// Polls that returned at least one CQE.
    pub nonempty_polls: u64,
}

impl VerbsPort for NodeApi<'_> {
    fn post_send(&mut self, qpn: QpNum, wr: SendWr) -> Result<()> {
        NodeApi::post_send(self, qpn, wr)
    }

    fn post_send_list(&mut self, qpn: QpNum, wrs: Vec<SendWr>) -> Result<()> {
        NodeApi::post_send_list(self, qpn, wrs)
    }

    fn post_recv(&mut self, qpn: QpNum, wr: RecvWr) -> Result<()> {
        NodeApi::post_recv(self, qpn, wr)
    }

    fn poll_cq(&mut self, cq: CqId, max: usize, out: &mut Vec<Cqe>) -> Result<usize> {
        NodeApi::poll_cq(self, cq, max, out)
    }

    fn read_mr(&self, key: MrKey, addr: u64, buf: &mut [u8]) -> Result<()> {
        NodeApi::read_mr(self, key, addr, buf)
    }

    fn copy_mr(
        &mut self,
        src_key: MrKey,
        src_addr: u64,
        dst_key: MrKey,
        dst_addr: u64,
        len: u64,
    ) -> Result<u64> {
        NodeApi::copy_mr(self, src_key, src_addr, dst_key, dst_addr, len)
    }

    fn charge_cqe_cost(&mut self) {
        let cost = self.host().cqe_process;
        self.charge(cost);
    }

    fn sq_outstanding(&self, qpn: QpNum) -> usize {
        self.hca()
            .qp(qpn)
            .map(|q| q.sq_outstanding())
            .unwrap_or(usize::MAX)
    }

    fn register_mr(&mut self, len: usize, access: Access) -> MrInfo {
        NodeApi::register_mr(self, len, access)
    }

    fn deregister_mr(&mut self, key: MrKey) -> Result<()> {
        self.hca_deregister(key)
    }

    fn register_mr_charged(&mut self, len: usize, access: Access) -> MrInfo {
        NodeApi::register_mr_charged(self, len, access)
    }

    fn deregister_mr_charged(&mut self, key: MrKey) -> Result<()> {
        NodeApi::deregister_mr_charged(self, key)
    }

    fn write_mr(&mut self, key: MrKey, addr: u64, data: &[u8]) -> Result<()> {
        NodeApi::write_mr(self, key, addr, data)
    }

    fn cq_pressure(&self, cq: CqId) -> CqPressure {
        self.hca()
            .cq(cq)
            .map(|q| CqPressure {
                overflowed: q.overflowed(),
                max_batch: q.max_batch(),
                nonempty_polls: q.nonempty_polls(),
            })
            .unwrap_or_default()
    }
}
