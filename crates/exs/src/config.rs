//! Connection configuration.

use crate::mempool::MemPoolConfig;
use crate::messages::MAX_WWI_LEN;

/// Which transfer policy the connection uses (paper §IV-B).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ProtocolMode {
    /// The paper's contribution: switch dynamically between direct and
    /// indirect transfers based on whether the sender or receiver is
    /// ahead.
    Dynamic,
    /// Baseline: the sender always waits for an ADVERT; the intermediate
    /// buffer is never used.
    DirectOnly,
    /// Baseline: the receiver never sends ADVERTs; every transfer goes
    /// through the intermediate buffer.
    IndirectOnly,
    /// Related-work baseline modelling rsockets' BCopy mode: "the
    /// rsend() and rrecv() calls are blocking and perform buffer copies
    /// on both the send and receive side on all transfers" (paper
    /// §II-A). Like [`ProtocolMode::IndirectOnly`] plus a send-side
    /// staging copy charged to the sender's CPU.
    BCopy,
}

impl ProtocolMode {
    /// Short label used in benchmark output.
    pub fn label(self) -> &'static str {
        match self {
            ProtocolMode::Dynamic => "dynamic",
            ProtocolMode::DirectOnly => "direct-only",
            ProtocolMode::IndirectOnly => "indirect-only",
            ProtocolMode::BCopy => "bcopy",
        }
    }

    /// True for modes that never use ADVERTs (all data goes through the
    /// intermediate buffer).
    pub fn buffered_only(self) -> bool {
        matches!(self, ProtocolMode::IndirectOnly | ProtocolMode::BCopy)
    }
}

/// How RDMA WRITE WITH IMM is realized on the wire.
///
/// WWI "exists in InfiniBand, RoCE, and newer versions of iWARP. The
/// operation can be simulated on older iWARP hardware by following an
/// RDMA WRITE with a small SEND" (paper §II-B).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WwiMode {
    /// Hardware RDMA WRITE WITH IMM (InfiniBand / RoCE / new iWARP).
    Native,
    /// Old-iWARP emulation: an unacknowledged-to-the-app RDMA WRITE
    /// followed by a small SEND carrying the notification. Costs one
    /// extra wire message and one extra completion per transfer.
    WritePlusSend,
}

/// Sender-side policy for *adaptive direct-mode re-entry*
/// (`ExsConfig::direct`).
///
/// Fig. 2's matching algorithm falls back to the intermediate buffer
/// whenever no usable ADVERT is queued — so a sender that streams
/// continuously never gives the Fig. 4–5 resynchronization a chance to
/// happen and every byte pays the indirect memcpy. This policy lets the
/// sender *pause* a large send instead of going indirect, betting one
/// round-trip that the receiver's pre-posted receive queue will deliver
/// a fresh ADVERT (see `DESIGN.md` §13). All fields default to the
/// conservative zero values; `min_direct_size == 0` disables the policy
/// entirely, which is the legacy behaviour.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DirectPolicy {
    /// Smallest send (remaining bytes) worth pausing for a resync
    /// round-trip. `0` disables adaptive re-entry entirely: the sender
    /// never waits for an ADVERT while the intermediate buffer has room
    /// (the legacy behaviour, and the default).
    pub min_direct_size: u64,
    /// While in an indirect phase, pause only when at most this many
    /// un-ACKed bytes sit in the intermediate buffer — a deep backlog
    /// means the receiver is behind and the resync bet would stall the
    /// stream. `0` ⇒ the peer's ring capacity (backlog never vetoes the
    /// pause; the wait simply rides the drain).
    pub resync_backlog: u64,
    /// Consecutive failed waits (ring fully drained and ACKed, still no
    /// usable ADVERT) tolerated before the sender latches back to pure
    /// indirect sending until the next successful direct transfer —
    /// the hysteresis that keeps bursty small-message workloads from
    /// thrashing mode switches. `0` ⇒ 2.
    pub max_resync_rtts: u32,
}

impl DirectPolicy {
    /// True when adaptive re-entry is switched on.
    pub fn enabled(&self) -> bool {
        self.min_direct_size > 0
    }

    /// Effective backlog veto threshold for a peer ring of the given
    /// capacity (0 ⇒ the full capacity).
    pub fn effective_resync_backlog(&self, ring_capacity: u64) -> u64 {
        if self.resync_backlog == 0 {
            ring_capacity
        } else {
            self.resync_backlog
        }
    }

    /// Effective failed-wait budget (0 ⇒ 2).
    pub fn effective_max_resync_rtts(&self) -> u32 {
        if self.max_resync_rtts == 0 {
            2
        } else {
            self.max_resync_rtts
        }
    }
}

/// How stream ids map onto the QPs of a shared-transport pool (both
/// sides derive the slot purely from the id, so no coordination
/// message is needed).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum MuxAssignment {
    /// `id % qp_pool_size` — even spread for sequentially allocated ids.
    #[default]
    RoundRobin,
    /// FNV-1a hash of the id modulo the pool size — even spread for
    /// arbitrary (sparse, random) id schemes.
    Hash,
}

impl MuxAssignment {
    /// The transport slot carrying the given stream.
    pub fn slot(self, stream: u32, pool: usize) -> usize {
        match self {
            MuxAssignment::RoundRobin => stream as usize % pool,
            MuxAssignment::Hash => {
                let mut h = 0xcbf29ce484222325u64;
                for b in stream.to_le_bytes() {
                    h ^= b as u64;
                    h = h.wrapping_mul(0x100000001b3);
                }
                (h % pool as u64) as usize
            }
        }
    }
}

/// Shared-transport multiplexing tunables (`ExsConfig::mux`): many EXS
/// streams ride a small pool of QPs per peer-node pair instead of one
/// RC QP each — the escape from the classic RDMA scalability wall
/// (per-QP SQ/RQ rings, CQ slots and pinned buffers growing linearly
/// with stream count).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MuxConfig {
    /// Whether endpoints on this config multiplex streams over a shared
    /// pool (used by workloads that support both shapes).
    pub enabled: bool,
    /// QPs in the pool per peer-node pair (1..=8). Each is established
    /// lazily, when the first stream assigned to its slot appears.
    pub qp_pool_size: usize,
    /// Stream-to-QP assignment policy.
    pub assignment: MuxAssignment,
    /// Per-stream cap on un-ACKed indirect bytes in flight through the
    /// shared ring, so one firehose stream cannot starve its siblings.
    /// `0` ⇒ `max(ring_capacity / 16, 4096)`.
    pub stream_window: u64,
}

impl Default for MuxConfig {
    fn default() -> Self {
        MuxConfig {
            enabled: false,
            qp_pool_size: 4,
            assignment: MuxAssignment::RoundRobin,
            stream_window: 0,
        }
    }
}

impl MuxConfig {
    /// Effective per-stream indirect window for the given shared ring.
    pub fn effective_stream_window(&self, ring_capacity: u64) -> u64 {
        if self.stream_window == 0 {
            (ring_capacity / 16).max(4096).min(ring_capacity)
        } else {
            self.stream_window.min(ring_capacity)
        }
    }
}

/// How accepted connections (and mux endpoints) are assigned to the
/// shards of a sharded reactor ([`crate::shard::ReactorPool`],
/// [`crate::threaded::ThreadReactorPool`]).
///
/// Assignment happens exactly once, at accept time; per-connection
/// state then stays shard-local for the connection's whole life, so
/// the data path never takes a cross-shard lock.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ShardPolicy {
    /// Strict rotation over the shards — even spread for uniform
    /// workloads and the only policy whose placement is independent of
    /// load timing (so cross-backend runs place identically).
    #[default]
    RoundRobin,
    /// The shard currently hosting the fewest connections; ties break
    /// toward the round-robin successor. Adapts to uneven connection
    /// lifetimes at the cost of timing-dependent placement.
    LeastLoaded,
    /// FNV-1a hash of a caller-supplied affinity key (peer node id,
    /// tenant id, …) modulo the shard count — connections sharing a
    /// key land on the same shard and so share its cache warmth.
    Affinity,
}

impl ShardPolicy {
    /// Short label used in reports and snapshots.
    pub fn label(self) -> &'static str {
        match self {
            ShardPolicy::RoundRobin => "round-robin",
            ShardPolicy::LeastLoaded => "least-loaded",
            ShardPolicy::Affinity => "affinity",
        }
    }

    /// The shard an affinity key maps to (used by
    /// [`ShardPolicy::Affinity`]; exposed so tests and peers can
    /// predict placement).
    pub fn affinity_shard(key: u64, shards: usize) -> usize {
        let mut h = 0xcbf29ce484222325u64;
        for b in key.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        (h % shards.max(1) as u64) as usize
    }
}

/// Sharded-reactor tunables (`ExsConfig::shard`): how many independent
/// reactor shards a pool spreads its connections over, and by what
/// policy. Each shard owns its own CQ pair and (on the thread backend)
/// its own service thread, so aggregate throughput scales with cores
/// instead of saturating one service thread.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShardConfig {
    /// Number of reactor shards. `0` or `1` ⇒ a single shard (the
    /// pre-sharding behaviour). Bounded by [`ShardConfig::MAX_SHARDS`].
    pub shards: usize,
    /// Connection-to-shard assignment policy.
    pub policy: ShardPolicy,
}

impl ShardConfig {
    /// Upper bound on the shard count — far above any sane core count,
    /// low enough to catch a garbage config before it allocates CQs.
    pub const MAX_SHARDS: usize = 256;

    /// Effective shard count (`0` ⇒ 1).
    pub fn effective_shards(&self) -> usize {
        self.shards.max(1)
    }
}

impl Default for ShardConfig {
    fn default() -> Self {
        ShardConfig {
            shards: 1,
            policy: ShardPolicy::RoundRobin,
        }
    }
}

/// Tunables for one EXS connection.
#[derive(Clone, Debug)]
pub struct ExsConfig {
    /// Transfer policy.
    pub mode: ProtocolMode,
    /// WWI realization.
    pub wwi_mode: WwiMode,
    /// Intermediate (hidden) receive buffer capacity in bytes.
    pub ring_capacity: u64,
    /// Receive WQEs each side pre-posts; also the peer's send credit
    /// budget (paper §II-B).
    pub credits: u32,
    /// Bytes freed from the intermediate buffer before an ACK is sent
    /// (0 ⇒ `ring_capacity / 8`). The buffer-empty transition always
    /// ACKs.
    pub ack_threshold: u64,
    /// Re-posted receives accumulated before a standalone CREDIT message
    /// is sent (0 ⇒ `credits / 4`). Credit returns also piggyback on
    /// every ADVERT and ACK.
    pub credit_return_threshold: u32,
    /// Largest single WWI chunk. Large transfers are split into chunks of
    /// at most this size (and at ring wrap points for indirect
    /// transfers).
    pub max_wwi_chunk: u32,
    /// Send-queue depth for the underlying QP.
    pub sq_depth: usize,
    /// Largest postlist flushed in one doorbell. `1` disables transmit
    /// batching entirely (every WQE pays its own doorbell, every data
    /// WQE is signaled, no coalescing) — the pre-batching behaviour,
    /// kept as the bench baseline. `0` ⇒ default (min(sq_depth, 64)).
    pub tx_batch_limit: usize,
    /// Signal every Nth data WQE; the ones in between complete
    /// unsignaled and their SQ slots are reclaimed in a batch by the
    /// next signaled CQE. A signal is forced when the SQ nears full or
    /// a flush drains the TX queue, so the interval may safely exceed
    /// the SQ depth. `0` ⇒ default (min(sq_depth / 4, 16), at least 1).
    pub signal_interval: usize,
    /// Adjacent indirect (buffered) sends no larger than this are
    /// coalesced into one staged WWI until the staging run reaches
    /// `max_wwi_chunk`, the ring wraps, or the sender flushes. `0`
    /// disables coalescing; ignored when `tx_batch_limit` is 1.
    pub coalesce_threshold: u64,
    /// Registered-memory pool tunables (pinned-bytes budget, minimum
    /// slab class) for endpoints that stage user data through a
    /// [`crate::mempool::MemPool`] on this connection's node.
    pub pool: MemPoolConfig,
    /// Adaptive direct-mode re-entry policy for the sender half
    /// (disabled by default — see [`DirectPolicy`]).
    pub direct: DirectPolicy,
    /// Shared-transport multiplexing tunables (see [`MuxConfig`];
    /// disabled by default — every stream gets a private QP).
    pub mux: MuxConfig,
    /// Sharded-reactor tunables (see [`ShardConfig`]; a single shard by
    /// default — the pre-sharding behaviour).
    pub shard: ShardConfig,
}

impl Default for ExsConfig {
    fn default() -> Self {
        ExsConfig {
            mode: ProtocolMode::Dynamic,
            wwi_mode: WwiMode::Native,
            ring_capacity: 16 << 20,
            credits: 1024,
            ack_threshold: 0,
            credit_return_threshold: 0,
            max_wwi_chunk: MAX_WWI_LEN,
            sq_depth: 4096,
            tx_batch_limit: 0,
            signal_interval: 0,
            coalesce_threshold: 256,
            pool: MemPoolConfig::default(),
            direct: DirectPolicy::default(),
            mux: MuxConfig::default(),
            shard: ShardConfig::default(),
        }
    }
}

/// A configuration problem detected by [`ExsConfig::validate`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ConfigError {
    /// The intermediate buffer must hold at least one control slot's
    /// worth of data to make progress.
    RingTooSmall,
    /// At least four credits are needed: one reserved for CREDIT
    /// returns, plus working room for ADVERTs, ACKs and data.
    TooFewCredits,
    /// The send queue must admit at least two WQEs (data + control).
    SqTooShallow,
    /// max_wwi_chunk must be positive and encodable in the immediate.
    BadChunkLimit,
    /// The mux QP pool must hold between 1 and 8 QPs.
    BadMuxPool,
    /// Multiplexing needs native WRITE WITH IMM: the immediate carries
    /// the stream id, which the WritePlusSend emulation cannot also
    /// squeeze a length into.
    MuxNeedsNativeWwi,
    /// The shard count must stay within 0..=[`ShardConfig::MAX_SHARDS`].
    BadShardCount,
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::RingTooSmall => write!(f, "ring_capacity below 64 bytes"),
            ConfigError::TooFewCredits => write!(f, "fewer than 4 credits"),
            ConfigError::SqTooShallow => write!(f, "sq_depth below 2"),
            ConfigError::BadChunkLimit => write!(f, "max_wwi_chunk out of range"),
            ConfigError::BadMuxPool => write!(f, "mux qp_pool_size outside 1..=8"),
            ConfigError::MuxNeedsNativeWwi => {
                write!(
                    f,
                    "mux requires WwiMode::Native (imm carries the stream id)"
                )
            }
            ConfigError::BadShardCount => {
                write!(f, "shard count above {}", ShardConfig::MAX_SHARDS)
            }
        }
    }
}

impl std::error::Error for ConfigError {}

impl ExsConfig {
    /// Checks the configuration for values that cannot make progress.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.ring_capacity < 64 {
            return Err(ConfigError::RingTooSmall);
        }
        if self.credits < 4 {
            return Err(ConfigError::TooFewCredits);
        }
        if self.sq_depth < 2 {
            return Err(ConfigError::SqTooShallow);
        }
        if self.max_wwi_chunk == 0 || self.max_wwi_chunk > MAX_WWI_LEN {
            return Err(ConfigError::BadChunkLimit);
        }
        if self.mux.enabled {
            if self.mux.qp_pool_size == 0 || self.mux.qp_pool_size > 8 {
                return Err(ConfigError::BadMuxPool);
            }
            if self.wwi_mode == WwiMode::WritePlusSend {
                return Err(ConfigError::MuxNeedsNativeWwi);
            }
        }
        if self.shard.shards > ShardConfig::MAX_SHARDS {
            return Err(ConfigError::BadShardCount);
        }
        Ok(())
    }

    /// A config with the given mode and defaults otherwise.
    pub fn with_mode(mode: ProtocolMode) -> Self {
        ExsConfig {
            mode,
            ..ExsConfig::default()
        }
    }

    /// Effective ACK threshold.
    pub fn effective_ack_threshold(&self) -> u64 {
        if self.ack_threshold == 0 {
            (self.ring_capacity / 8).max(1)
        } else {
            self.ack_threshold
        }
    }

    /// Effective credit-return threshold.
    pub fn effective_credit_threshold(&self) -> u32 {
        if self.credit_return_threshold == 0 {
            (self.credits / 4).max(1)
        } else {
            self.credit_return_threshold
        }
    }

    /// Effective postlist limit (0 ⇒ min(sq_depth, 64)).
    pub fn effective_tx_batch_limit(&self) -> usize {
        if self.tx_batch_limit == 0 {
            self.sq_depth.min(64)
        } else {
            self.tx_batch_limit
        }
    }

    /// Effective signaling interval (0 ⇒ min(sq_depth / 4, 16), at
    /// least 1). A limit-1 batch config also forces interval 1: without
    /// postlists there is no batch retirement to amortize, and the
    /// unbatched baseline should behave exactly like the pre-batching
    /// code.
    pub fn effective_signal_interval(&self) -> usize {
        if self.effective_tx_batch_limit() == 1 {
            return 1;
        }
        if self.signal_interval == 0 {
            (self.sq_depth / 4).clamp(1, 16)
        } else {
            self.signal_interval
        }
    }

    /// Effective coalescing threshold (bytes; 0 when batching is off).
    pub fn effective_coalesce_threshold(&self) -> u64 {
        if self.effective_tx_batch_limit() == 1 {
            0
        } else {
            self.coalesce_threshold
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = ExsConfig::default();
        assert_eq!(c.mode, ProtocolMode::Dynamic);
        assert!(c.ring_capacity >= 1 << 20);
        assert!(c.credits >= 64);
        assert_eq!(c.effective_ack_threshold(), c.ring_capacity / 8);
        assert_eq!(c.effective_credit_threshold(), c.credits / 4);
    }

    #[test]
    fn explicit_thresholds_override() {
        let c = ExsConfig {
            ack_threshold: 7,
            credit_return_threshold: 3,
            ..ExsConfig::default()
        };
        assert_eq!(c.effective_ack_threshold(), 7);
        assert_eq!(c.effective_credit_threshold(), 3);
    }

    #[test]
    fn validation_catches_degenerate_configs() {
        assert!(ExsConfig::default().validate().is_ok());
        let bad = ExsConfig {
            ring_capacity: 8,
            ..ExsConfig::default()
        };
        assert_eq!(bad.validate(), Err(ConfigError::RingTooSmall));
        let bad = ExsConfig {
            credits: 2,
            ..ExsConfig::default()
        };
        assert_eq!(bad.validate(), Err(ConfigError::TooFewCredits));
        let bad = ExsConfig {
            sq_depth: 1,
            ..ExsConfig::default()
        };
        assert_eq!(bad.validate(), Err(ConfigError::SqTooShallow));
        let bad = ExsConfig {
            max_wwi_chunk: 0,
            ..ExsConfig::default()
        };
        assert_eq!(bad.validate(), Err(ConfigError::BadChunkLimit));
    }

    #[test]
    fn tx_batching_defaults_and_unbatched_override() {
        let c = ExsConfig::default();
        assert_eq!(c.effective_tx_batch_limit(), 64);
        assert_eq!(c.effective_signal_interval(), 16);
        assert_eq!(c.effective_coalesce_threshold(), 256);

        // tx_batch_limit = 1 means "the old unbatched path": per-WQE
        // doorbells, per-WQE signaling, no coalescing.
        let unbatched = ExsConfig {
            tx_batch_limit: 1,
            signal_interval: 8,
            coalesce_threshold: 512,
            ..ExsConfig::default()
        };
        assert_eq!(unbatched.effective_tx_batch_limit(), 1);
        assert_eq!(unbatched.effective_signal_interval(), 1);
        assert_eq!(unbatched.effective_coalesce_threshold(), 0);

        let shallow = ExsConfig {
            sq_depth: 8,
            ..ExsConfig::default()
        };
        assert_eq!(shallow.effective_tx_batch_limit(), 8);
        assert_eq!(shallow.effective_signal_interval(), 2);
    }

    #[test]
    fn direct_policy_defaults_off_and_effective_values() {
        let c = ExsConfig::default();
        assert!(!c.direct.enabled(), "adaptive re-entry must default off");
        assert_eq!(c.direct, DirectPolicy::default());

        let p = DirectPolicy {
            min_direct_size: 4096,
            ..DirectPolicy::default()
        };
        assert!(p.enabled());
        assert_eq!(p.effective_resync_backlog(1 << 16), 1 << 16);
        assert_eq!(p.effective_max_resync_rtts(), 2);

        let p = DirectPolicy {
            min_direct_size: 4096,
            resync_backlog: 512,
            max_resync_rtts: 5,
        };
        assert_eq!(p.effective_resync_backlog(1 << 16), 512);
        assert_eq!(p.effective_max_resync_rtts(), 5);
    }

    #[test]
    fn mux_config_validation_and_assignment() {
        let c = ExsConfig::default();
        assert!(!c.mux.enabled, "mux must default off");
        assert_eq!(c.mux.qp_pool_size, 4);

        let bad = ExsConfig {
            mux: MuxConfig {
                enabled: true,
                qp_pool_size: 9,
                ..MuxConfig::default()
            },
            ..ExsConfig::default()
        };
        assert_eq!(bad.validate(), Err(ConfigError::BadMuxPool));
        let bad = ExsConfig {
            mux: MuxConfig {
                enabled: true,
                ..MuxConfig::default()
            },
            wwi_mode: WwiMode::WritePlusSend,
            ..ExsConfig::default()
        };
        assert_eq!(bad.validate(), Err(ConfigError::MuxNeedsNativeWwi));
        let good = ExsConfig {
            mux: MuxConfig {
                enabled: true,
                ..MuxConfig::default()
            },
            ..ExsConfig::default()
        };
        assert!(good.validate().is_ok());

        // Both policies keep every slot inside the pool and derive it
        // purely from the id (both ends agree with no coordination).
        for policy in [MuxAssignment::RoundRobin, MuxAssignment::Hash] {
            for id in 0..1000u32 {
                assert!(policy.slot(id, 4) < 4);
                assert_eq!(policy.slot(id, 4), policy.slot(id, 4));
            }
        }
        assert_eq!(MuxAssignment::RoundRobin.slot(6, 4), 2);

        // Window default scales with the ring but never exceeds it.
        let m = MuxConfig::default();
        assert_eq!(m.effective_stream_window(16 << 20), 1 << 20);
        assert_eq!(m.effective_stream_window(1 << 10), 1 << 10);
        let m = MuxConfig {
            stream_window: 1 << 30,
            ..MuxConfig::default()
        };
        assert_eq!(m.effective_stream_window(1 << 16), 1 << 16);
    }

    #[test]
    fn shard_config_validation_and_affinity() {
        let c = ExsConfig::default();
        assert_eq!(c.shard.effective_shards(), 1, "sharding must default off");
        assert_eq!(c.shard.policy, ShardPolicy::RoundRobin);

        let zero = ShardConfig {
            shards: 0,
            ..ShardConfig::default()
        };
        assert_eq!(zero.effective_shards(), 1);

        let bad = ExsConfig {
            shard: ShardConfig {
                shards: ShardConfig::MAX_SHARDS + 1,
                ..ShardConfig::default()
            },
            ..ExsConfig::default()
        };
        assert_eq!(bad.validate(), Err(ConfigError::BadShardCount));
        let good = ExsConfig {
            shard: ShardConfig {
                shards: ShardConfig::MAX_SHARDS,
                ..ShardConfig::default()
            },
            ..ExsConfig::default()
        };
        assert!(good.validate().is_ok());

        // Affinity placement is a pure function of the key and stays in
        // range for every shard count.
        for shards in 1..=16usize {
            for key in 0..256u64 {
                let s = ShardPolicy::affinity_shard(key, shards);
                assert!(s < shards);
                assert_eq!(s, ShardPolicy::affinity_shard(key, shards));
            }
        }

        assert_eq!(ShardPolicy::RoundRobin.label(), "round-robin");
        assert_eq!(ShardPolicy::LeastLoaded.label(), "least-loaded");
        assert_eq!(ShardPolicy::Affinity.label(), "affinity");
    }

    #[test]
    fn labels() {
        assert_eq!(ProtocolMode::Dynamic.label(), "dynamic");
        assert_eq!(ProtocolMode::DirectOnly.label(), "direct-only");
        assert_eq!(ProtocolMode::IndirectOnly.label(), "indirect-only");
    }
}
