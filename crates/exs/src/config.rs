//! Connection configuration.

use crate::mempool::MemPoolConfig;
use crate::messages::MAX_WWI_LEN;

/// Which transfer policy the connection uses (paper §IV-B).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ProtocolMode {
    /// The paper's contribution: switch dynamically between direct and
    /// indirect transfers based on whether the sender or receiver is
    /// ahead.
    Dynamic,
    /// Baseline: the sender always waits for an ADVERT; the intermediate
    /// buffer is never used.
    DirectOnly,
    /// Baseline: the receiver never sends ADVERTs; every transfer goes
    /// through the intermediate buffer.
    IndirectOnly,
    /// Related-work baseline modelling rsockets' BCopy mode: "the
    /// rsend() and rrecv() calls are blocking and perform buffer copies
    /// on both the send and receive side on all transfers" (paper
    /// §II-A). Like [`ProtocolMode::IndirectOnly`] plus a send-side
    /// staging copy charged to the sender's CPU.
    BCopy,
}

impl ProtocolMode {
    /// Short label used in benchmark output.
    pub fn label(self) -> &'static str {
        match self {
            ProtocolMode::Dynamic => "dynamic",
            ProtocolMode::DirectOnly => "direct-only",
            ProtocolMode::IndirectOnly => "indirect-only",
            ProtocolMode::BCopy => "bcopy",
        }
    }

    /// True for modes that never use ADVERTs (all data goes through the
    /// intermediate buffer).
    pub fn buffered_only(self) -> bool {
        matches!(self, ProtocolMode::IndirectOnly | ProtocolMode::BCopy)
    }
}

/// How RDMA WRITE WITH IMM is realized on the wire.
///
/// WWI "exists in InfiniBand, RoCE, and newer versions of iWARP. The
/// operation can be simulated on older iWARP hardware by following an
/// RDMA WRITE with a small SEND" (paper §II-B).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WwiMode {
    /// Hardware RDMA WRITE WITH IMM (InfiniBand / RoCE / new iWARP).
    Native,
    /// Old-iWARP emulation: an unacknowledged-to-the-app RDMA WRITE
    /// followed by a small SEND carrying the notification. Costs one
    /// extra wire message and one extra completion per transfer.
    WritePlusSend,
}

/// Tunables for one EXS connection.
#[derive(Clone, Debug)]
pub struct ExsConfig {
    /// Transfer policy.
    pub mode: ProtocolMode,
    /// WWI realization.
    pub wwi_mode: WwiMode,
    /// Intermediate (hidden) receive buffer capacity in bytes.
    pub ring_capacity: u64,
    /// Receive WQEs each side pre-posts; also the peer's send credit
    /// budget (paper §II-B).
    pub credits: u32,
    /// Bytes freed from the intermediate buffer before an ACK is sent
    /// (0 ⇒ `ring_capacity / 8`). The buffer-empty transition always
    /// ACKs.
    pub ack_threshold: u64,
    /// Re-posted receives accumulated before a standalone CREDIT message
    /// is sent (0 ⇒ `credits / 4`). Credit returns also piggyback on
    /// every ADVERT and ACK.
    pub credit_return_threshold: u32,
    /// Largest single WWI chunk. Large transfers are split into chunks of
    /// at most this size (and at ring wrap points for indirect
    /// transfers).
    pub max_wwi_chunk: u32,
    /// Send-queue depth for the underlying QP.
    pub sq_depth: usize,
    /// Registered-memory pool tunables (pinned-bytes budget, minimum
    /// slab class) for endpoints that stage user data through a
    /// [`crate::mempool::MemPool`] on this connection's node.
    pub pool: MemPoolConfig,
}

impl Default for ExsConfig {
    fn default() -> Self {
        ExsConfig {
            mode: ProtocolMode::Dynamic,
            wwi_mode: WwiMode::Native,
            ring_capacity: 16 << 20,
            credits: 1024,
            ack_threshold: 0,
            credit_return_threshold: 0,
            max_wwi_chunk: MAX_WWI_LEN,
            sq_depth: 4096,
            pool: MemPoolConfig::default(),
        }
    }
}

/// A configuration problem detected by [`ExsConfig::validate`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ConfigError {
    /// The intermediate buffer must hold at least one control slot's
    /// worth of data to make progress.
    RingTooSmall,
    /// At least four credits are needed: one reserved for CREDIT
    /// returns, plus working room for ADVERTs, ACKs and data.
    TooFewCredits,
    /// The send queue must admit at least two WQEs (data + control).
    SqTooShallow,
    /// max_wwi_chunk must be positive and encodable in the immediate.
    BadChunkLimit,
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::RingTooSmall => write!(f, "ring_capacity below 64 bytes"),
            ConfigError::TooFewCredits => write!(f, "fewer than 4 credits"),
            ConfigError::SqTooShallow => write!(f, "sq_depth below 2"),
            ConfigError::BadChunkLimit => write!(f, "max_wwi_chunk out of range"),
        }
    }
}

impl std::error::Error for ConfigError {}

impl ExsConfig {
    /// Checks the configuration for values that cannot make progress.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.ring_capacity < 64 {
            return Err(ConfigError::RingTooSmall);
        }
        if self.credits < 4 {
            return Err(ConfigError::TooFewCredits);
        }
        if self.sq_depth < 2 {
            return Err(ConfigError::SqTooShallow);
        }
        if self.max_wwi_chunk == 0 || self.max_wwi_chunk > MAX_WWI_LEN {
            return Err(ConfigError::BadChunkLimit);
        }
        Ok(())
    }

    /// A config with the given mode and defaults otherwise.
    pub fn with_mode(mode: ProtocolMode) -> Self {
        ExsConfig {
            mode,
            ..ExsConfig::default()
        }
    }

    /// Effective ACK threshold.
    pub fn effective_ack_threshold(&self) -> u64 {
        if self.ack_threshold == 0 {
            (self.ring_capacity / 8).max(1)
        } else {
            self.ack_threshold
        }
    }

    /// Effective credit-return threshold.
    pub fn effective_credit_threshold(&self) -> u32 {
        if self.credit_return_threshold == 0 {
            (self.credits / 4).max(1)
        } else {
            self.credit_return_threshold
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = ExsConfig::default();
        assert_eq!(c.mode, ProtocolMode::Dynamic);
        assert!(c.ring_capacity >= 1 << 20);
        assert!(c.credits >= 64);
        assert_eq!(c.effective_ack_threshold(), c.ring_capacity / 8);
        assert_eq!(c.effective_credit_threshold(), c.credits / 4);
    }

    #[test]
    fn explicit_thresholds_override() {
        let c = ExsConfig {
            ack_threshold: 7,
            credit_return_threshold: 3,
            ..ExsConfig::default()
        };
        assert_eq!(c.effective_ack_threshold(), 7);
        assert_eq!(c.effective_credit_threshold(), 3);
    }

    #[test]
    fn validation_catches_degenerate_configs() {
        assert!(ExsConfig::default().validate().is_ok());
        let bad = ExsConfig {
            ring_capacity: 8,
            ..ExsConfig::default()
        };
        assert_eq!(bad.validate(), Err(ConfigError::RingTooSmall));
        let bad = ExsConfig {
            credits: 2,
            ..ExsConfig::default()
        };
        assert_eq!(bad.validate(), Err(ConfigError::TooFewCredits));
        let bad = ExsConfig {
            sq_depth: 1,
            ..ExsConfig::default()
        };
        assert_eq!(bad.validate(), Err(ConfigError::SqTooShallow));
        let bad = ExsConfig {
            max_wwi_chunk: 0,
            ..ExsConfig::default()
        };
        assert_eq!(bad.validate(), Err(ConfigError::BadChunkLimit));
    }

    #[test]
    fn labels() {
        assert_eq!(ProtocolMode::Dynamic.label(), "dynamic");
        assert_eq!(ProtocolMode::DirectOnly.label(), "direct-only");
        assert_eq!(ProtocolMode::IndirectOnly.label(), "indirect-only");
    }
}
