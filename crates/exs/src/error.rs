//! Typed errors for peer-driven failures.
//!
//! Everything a remote peer can put on the wire — control bytes,
//! sequence numbers, stream ids, freed-byte counts — must surface as an
//! [`ExsError`] that breaks the affected connection, never as a panic
//! that aborts the whole process. The local half of that contract is the
//! socket layers' `mark_broken` paths; this module is the shared
//! vocabulary.

use crate::messages::DecodeError;

/// A protocol violation attributable to peer input.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ProtocolError {
    /// A control message failed to decode.
    CtrlDecode(DecodeError),
    /// A data completion arrived without immediate data (every EXS WWI
    /// carries one).
    MissingImm,
    /// A completion opcode this endpoint never expects on that queue.
    UnexpectedOpcode,
    /// A second FIN for a direction that already closed.
    DuplicateFin,
    /// A FIN whose final sequence number disagrees with the bytes that
    /// actually arrived (the FIFO channel makes them provably equal for
    /// a correct peer).
    FinSeqMismatch {
        /// The peer's claimed final stream length.
        claimed: u64,
        /// Bytes this side actually saw arrive.
        arrived: u64,
    },
    /// A direct transfer arrived with no advertised receive to land in.
    DirectWithoutAdvert,
    /// A direct transfer carried more bytes than the advertised buffer
    /// had left.
    DirectOverfill,
    /// An indirect transfer overflowed the intermediate ring — the peer
    /// ignored the ACK-based flow control.
    RingOverflow,
    /// An ACK freed more bytes than were in flight.
    AckUnderflow,
    /// An ADVERT that violates the protocol's phase/sequence rules
    /// (e.g. emitted from an indirect phase, or sequenced ahead of the
    /// stream).
    BadAdvert,
    /// A multiplexed arrival named a stream id this endpoint never
    /// opened (or already fully closed).
    UnknownStream(u32),
    /// A stream id outside the 31-bit space the mux immediate encoding
    /// can carry.
    StreamIdOverflow(u32),
}

impl std::fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtocolError::CtrlDecode(e) => write!(f, "control message decode failed: {e}"),
            ProtocolError::MissingImm => write!(f, "data completion without immediate data"),
            ProtocolError::UnexpectedOpcode => write!(f, "unexpected completion opcode"),
            ProtocolError::DuplicateFin => write!(f, "duplicate FIN"),
            ProtocolError::FinSeqMismatch { claimed, arrived } => {
                write!(f, "FIN claims {claimed} stream bytes but {arrived} arrived")
            }
            ProtocolError::DirectWithoutAdvert => {
                write!(f, "direct transfer without an advertised receive")
            }
            ProtocolError::DirectOverfill => {
                write!(f, "direct transfer overfills the advertised buffer")
            }
            ProtocolError::RingOverflow => write!(f, "intermediate ring overflow"),
            ProtocolError::AckUnderflow => write!(f, "ACK freed more bytes than were in flight"),
            ProtocolError::BadAdvert => write!(f, "ADVERT violates phase/sequence rules"),
            ProtocolError::UnknownStream(id) => write!(f, "unknown or closed stream id {id}"),
            ProtocolError::StreamIdOverflow(id) => {
                write!(f, "stream id {id} exceeds the 31-bit mux immediate space")
            }
        }
    }
}

impl std::error::Error for ProtocolError {}

/// Any failure surfaced by the EXS socket layers.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ExsError {
    /// The peer violated the protocol; the connection is broken but the
    /// process lives on.
    Protocol(ProtocolError),
    /// The verbs backend failed underneath the socket.
    Verbs(rdma_verbs::VerbsError),
    /// An operation referenced a reactor connection or mux endpoint id
    /// that is not (or no longer) registered — e.g. an async wakeup
    /// racing a close. The slab-index handles are reused like file
    /// descriptors, so a stale id is an application-visible condition,
    /// not a panic.
    Stale,
    /// The sending direction was poisoned by a cancellation that caught
    /// a send already committed to the wire. The in-flight message
    /// still completes on a clean message boundary (a WWI is never torn
    /// mid-frame), but whether it was delivered is ambiguous to the
    /// canceller, so later sends fail fast with this error.
    Cancelled,
    /// A [`crate::aio::timeout`]-wrapped future did not complete within
    /// its deadline.
    TimedOut,
    /// End of stream: the peer half-closed and fewer buffered bytes
    /// remain than the receive asked for.
    Eof,
    /// The transport failed underneath the connection without an
    /// attributable protocol or verbs error.
    Broken,
}

impl std::fmt::Display for ExsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExsError::Protocol(e) => write!(f, "protocol error: {e}"),
            ExsError::Verbs(e) => write!(f, "verbs error: {e}"),
            ExsError::Stale => write!(f, "stale connection or endpoint id"),
            ExsError::Cancelled => {
                write!(f, "send direction poisoned by an unclean cancellation")
            }
            ExsError::TimedOut => write!(f, "operation timed out"),
            ExsError::Eof => write!(f, "end of stream"),
            ExsError::Broken => write!(f, "connection broken"),
        }
    }
}

impl std::error::Error for ExsError {}

impl From<ProtocolError> for ExsError {
    fn from(e: ProtocolError) -> Self {
        ExsError::Protocol(e)
    }
}

impl From<rdma_verbs::VerbsError> for ExsError {
    fn from(e: rdma_verbs::VerbsError) -> Self {
        ExsError::Verbs(e)
    }
}

impl From<DecodeError> for ExsError {
    fn from(e: DecodeError) -> Self {
        ExsError::Protocol(ProtocolError::CtrlDecode(e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e: ExsError = ProtocolError::UnknownStream(42).into();
        assert!(format!("{e}").contains("42"));
        let e: ExsError = DecodeError::BadType(99).into();
        assert!(format!("{e}").contains("99"));
        let e = ExsError::Protocol(ProtocolError::FinSeqMismatch {
            claimed: 10,
            arrived: 7,
        });
        assert!(format!("{e}").contains("10") && format!("{e}").contains("7"));
    }
}
