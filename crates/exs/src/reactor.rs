//! Readiness-based multiplexing of many EXS streams on one node.
//!
//! A server that terminates thousands of EXS connections cannot afford
//! one CQ poll — let alone one thread — per connection. The UNH EXS
//! library answers with an event-queue design; this module is the
//! equivalent of `epoll` for [`StreamSocket`]s:
//!
//! * every accepted connection's QP completes onto **one shared send CQ
//!   and one shared receive CQ** (see
//!   [`rdma_verbs::connect_pair_on_cqs`]), so a wake-up costs one
//!   batched drain of two CQs regardless of connection count;
//! * drained completions are **dispatched by QP number** to the owning
//!   connection, then connections are serviced **round-robin with a
//!   bounded per-poll budget** — a blast-heavy peer cannot starve the
//!   other nine hundred;
//! * [`Reactor::poll`] returns **level-triggered readiness** — a
//!   connection is reported readable as long as completion events are
//!   queued for the application, writable while a new send would
//!   dispatch immediately, closed/error when the stream ended.
//!
//! The reactor is backend-agnostic: it drives any [`VerbsPort`], so the
//! same code runs one step per wake deterministically under the
//! discrete-event simulator and inside a single service thread over the
//! real-thread fabric (see [`crate::threaded::ThreadReactor`]).
//!
//! ```text
//!    shared recv CQ ─┐  batched drain   ┌─ conn 0 queue ─ service ≤ budget
//!    shared send CQ ─┴─────────────────►├─ conn 1 queue ─ service ≤ budget
//!                      dispatch by qpn  └─ conn N queue ─ ... (round-robin)
//! ```
//!
//! **Keep receives pre-posted, or lose zero-copy.** A reactor server
//! that posts one receive per connection and re-posts only after
//! consuming the completion closes the Fig. 3 advert gate at every
//! message boundary, and every stream degrades to 100% indirect. Post
//! a queue of receives per connection (depth ≥ 2; buffers leased from
//! [`crate::MemPool`] work well) and recycle slots as a FIFO —
//! receives complete in posting order — so an ADVERT is already on
//! the wire when the sender plans its next transfer. Pair it with the
//! sender-side re-entry policy ([`crate::DirectPolicy`], the
//! `ExsConfig::direct` knobs) to recover direct mode after indirect
//! episodes; see DESIGN.md §13 and `blast::fan_in` for the pattern.

use std::collections::{HashMap, VecDeque};

use rdma_verbs::{CqId, Cqe, QpNum};

use crate::mux::{MuxEndpoint, MuxEvent};
use crate::port::VerbsPort;
use crate::stats::{ConnStats, ReactorStats};
use crate::stream::{ExsEvent, StreamSocket};

/// Stable handle for a connection owned by a [`Reactor`].
///
/// Ids are slab indices: they are reused after
/// [`Reactor::remove`], like Unix file descriptors.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ConnId(pub u32);

/// Stable handle for a [`MuxEndpoint`] hosted by a [`Reactor`].
///
/// Slab-index semantics like [`ConnId`], in a separate namespace: one
/// endpoint carries *many* streams, so it is not a connection.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MuxId(pub u32);

/// Level-triggered readiness flags for one connection, in the spirit of
/// `epoll`'s `EPOLLIN`/`EPOLLOUT`/`EPOLLHUP`/`EPOLLERR`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Readiness {
    /// Completion events are queued: [`Reactor::take_events`] returns
    /// at least one event right now.
    pub readable: bool,
    /// A new `exs_send` would start dispatching immediately (sending
    /// direction open, no queued sends ahead of it).
    pub writable: bool,
    /// The peer half-closed and its stream fully drained (`EPOLLHUP`).
    pub closed: bool,
    /// The transport failed underneath the connection (`EPOLLERR`).
    pub error: bool,
}

impl Readiness {
    /// Readiness with every flag clear.
    pub const NONE: Readiness = Readiness {
        readable: false,
        writable: false,
        closed: false,
        error: false,
    };

    /// Interest mask selecting only readable/closed/error — the default
    /// registration (writable is true most of the time on an idle
    /// connection and would dominate every poll result).
    pub const INPUT: Readiness = Readiness {
        readable: true,
        writable: false,
        closed: true,
        error: true,
    };

    /// Interest mask selecting every flag.
    pub const ALL: Readiness = Readiness {
        readable: true,
        writable: true,
        closed: true,
        error: true,
    };

    /// True if any flag is set.
    pub fn any(&self) -> bool {
        self.readable || self.writable || self.closed || self.error
    }

    /// Flag-wise AND (readiness filtered through an interest mask).
    pub fn mask(&self, interest: Readiness) -> Readiness {
        Readiness {
            readable: self.readable && interest.readable,
            writable: self.writable && interest.writable,
            closed: self.closed && interest.closed,
            error: self.error && interest.error,
        }
    }
}

/// Tunables for one [`Reactor`].
#[derive(Clone, Copy, Debug)]
pub struct ReactorConfig {
    /// Most completions serviced per connection per poll before the
    /// remainder is deferred to the next round (fairness bound).
    pub cqe_budget: usize,
    /// Most completions drained from each shared CQ per poll; leftovers
    /// stay in the CQ for the next poll (per-poll work bound).
    pub drain_batch: usize,
}

impl Default for ReactorConfig {
    fn default() -> Self {
        ReactorConfig {
            cqe_budget: 64,
            drain_batch: 4096,
        }
    }
}

/// Which handler a queued completion belongs to.
#[derive(Clone, Copy)]
enum CqSide {
    Recv,
    Send,
}

struct Conn {
    sock: StreamSocket,
    /// Completions dispatched to this connection and not yet serviced
    /// (non-empty only after a budget deferral).
    queued: VecDeque<(CqSide, Cqe)>,
    interest: Readiness,
}

struct MuxHost {
    ep: MuxEndpoint,
    /// Completions dispatched to this endpoint and not yet serviced.
    queued: VecDeque<(CqSide, Cqe)>,
}

/// Which handler owns a QP number on the shared CQ pair.
#[derive(Clone, Copy)]
enum Owner {
    Conn(u32),
    Mux(u32),
}

/// An epoll-style event loop owning many [`StreamSocket`]s on one node.
///
/// All sockets must share this reactor's send and receive CQs (build
/// them with [`StreamSocket::pair_shared`] or
/// [`rdma_verbs::connect_pair_on_cqs`]). Drive the reactor with
/// [`Reactor::poll`] on every node wake; it performs one bounded round
/// of CQ draining, dispatch and servicing, and reports which
/// connections are ready.
pub struct Reactor {
    send_cq: CqId,
    recv_cq: CqId,
    cfg: ReactorConfig,
    conns: Vec<Option<Conn>>,
    free: Vec<u32>,
    muxes: Vec<Option<MuxHost>>,
    mux_free: Vec<u32>,
    by_qpn: HashMap<QpNum, Owner>,
    /// Next slab slot to service first (round-robin fairness cursor).
    cursor: usize,
    /// Last drain stopped at the batch bound with the CQ possibly
    /// non-empty.
    saturated: bool,
    stats: ReactorStats,
    scratch: Vec<Cqe>,
}

impl Reactor {
    /// Creates a reactor draining the two shared CQs.
    pub fn new(send_cq: CqId, recv_cq: CqId, cfg: ReactorConfig) -> Reactor {
        assert!(cfg.cqe_budget > 0, "cqe_budget must be positive");
        assert!(cfg.drain_batch > 0, "drain_batch must be positive");
        Reactor {
            send_cq,
            recv_cq,
            cfg,
            conns: Vec::new(),
            free: Vec::new(),
            muxes: Vec::new(),
            mux_free: Vec::new(),
            by_qpn: HashMap::new(),
            cursor: 0,
            saturated: false,
            stats: ReactorStats::default(),
            scratch: Vec::new(),
        }
    }

    /// The shared send CQ.
    pub fn send_cq(&self) -> CqId {
        self.send_cq
    }

    /// The shared receive CQ.
    pub fn recv_cq(&self) -> CqId {
        self.recv_cq
    }

    /// Accepts a connection into the event loop. The socket's CQs must
    /// be this reactor's shared CQs. Default interest is
    /// [`Readiness::INPUT`].
    pub fn accept(&mut self, sock: StreamSocket) -> ConnId {
        assert_eq!(
            (sock.send_cq(), sock.recv_cq()),
            (self.send_cq, self.recv_cq),
            "socket must complete onto the reactor's shared CQs"
        );
        let conn = Conn {
            queued: VecDeque::new(),
            interest: Readiness::INPUT,
            sock,
        };
        self.stats.conns_added += 1;
        let idx = match self.free.pop() {
            Some(idx) => {
                self.conns[idx as usize] = Some(conn);
                idx
            }
            None => {
                self.conns.push(Some(conn));
                (self.conns.len() - 1) as u32
            }
        };
        let qpn = self.conns[idx as usize]
            .as_ref()
            .expect("just added")
            .sock
            .qpn();
        let prev = self.by_qpn.insert(qpn, Owner::Conn(idx));
        assert!(prev.is_none(), "duplicate QP {qpn:?} in reactor");
        ConnId(idx)
    }

    /// Hosts a [`MuxEndpoint`] in the event loop: every QP of its
    /// transport pool (current and future) completes onto the reactor's
    /// shared CQs and is dispatched back to the endpoint by QP number.
    /// The endpoint must have been prepared against this reactor's CQ
    /// pair (use [`Reactor::send_cq`]/[`Reactor::recv_cq`] with
    /// [`MuxEndpoint::prepare_transport`], or
    /// [`MuxEndpoint::set_cqs`] before the sim helper runs).
    pub fn accept_mux(&mut self, ep: MuxEndpoint) -> MuxId {
        if let Some(cqs) = ep.cqs() {
            assert_eq!(
                cqs,
                (self.send_cq, self.recv_cq),
                "endpoint must complete onto the reactor's shared CQs"
            );
        }
        let host = MuxHost {
            ep,
            queued: VecDeque::new(),
        };
        let idx = match self.mux_free.pop() {
            Some(idx) => {
                self.muxes[idx as usize] = Some(host);
                idx
            }
            None => {
                self.muxes.push(Some(host));
                (self.muxes.len() - 1) as u32
            }
        };
        let id = MuxId(idx);
        self.index_mux_transports(id);
        id
    }

    /// Re-scans a hosted endpoint's transport pool and indexes QPs
    /// established since the last scan. Call after lazily connecting
    /// new pool slots on an endpoint that is already hosted.
    pub fn index_mux_transports(&mut self, id: MuxId) {
        let ep = &self.muxes[id.0 as usize].as_ref().expect("live mux").ep;
        let mut qpns = Vec::new();
        for slot in 0..ep.pool_size() {
            if let Some(qpn) = ep.slot_qpn(slot) {
                qpns.push(qpn);
            }
        }
        for qpn in qpns {
            match self.by_qpn.insert(qpn, Owner::Mux(id.0)) {
                None => {}
                Some(Owner::Mux(prev)) if prev == id.0 => {}
                Some(_) => panic!("QP {qpn:?} already owned by another handler"),
            }
        }
    }

    /// Removes a hosted endpoint, returning it. Completions still in
    /// flight for its QPs are dropped (counted as orphans).
    pub fn remove_mux(&mut self, id: MuxId) -> MuxEndpoint {
        let host = self.muxes[id.0 as usize]
            .take()
            .expect("removing a live mux endpoint");
        self.by_qpn
            .retain(|_, owner| !matches!(owner, Owner::Mux(i) if *i == id.0));
        self.mux_free.push(id.0);
        self.stats.orphan_cqes += host.queued.len() as u64;
        host.ep
    }

    /// Shared access to a hosted endpoint, or `None` for a stale id.
    ///
    /// The `try_*` accessors exist for callers that legitimately race
    /// endpoint removal against deferred wake-ups — the aio layer's
    /// waker dispatch, for one — and must treat a recycled slab index
    /// as an observable condition instead of a panic.
    pub fn try_mux(&self, id: MuxId) -> Option<&MuxEndpoint> {
        self.muxes.get(id.0 as usize)?.as_ref().map(|h| &h.ep)
    }

    /// Exclusive access to a hosted endpoint, or `None` for a stale id.
    pub fn try_mux_mut(&mut self, id: MuxId) -> Option<&mut MuxEndpoint> {
        self.muxes
            .get_mut(id.0 as usize)?
            .as_mut()
            .map(|h| &mut h.ep)
    }

    /// Shared access to a hosted endpoint.
    pub fn mux(&self, id: MuxId) -> &MuxEndpoint {
        self.try_mux(id).expect("live mux")
    }

    /// Exclusive access to a hosted endpoint (open streams, post
    /// sends/receives). After establishing new transports through this
    /// handle, call [`Reactor::index_mux_transports`].
    pub fn mux_mut(&mut self, id: MuxId) -> &mut MuxEndpoint {
        self.try_mux_mut(id).expect("live mux")
    }

    /// Takes the queued user events of one hosted endpoint, or
    /// [`ExsError::Stale`] for an id that is no longer registered.
    pub fn try_take_mux_events(&mut self, id: MuxId) -> Result<Vec<MuxEvent>, crate::ExsError> {
        self.try_mux_mut(id)
            .map(|ep| ep.take_events())
            .ok_or(crate::ExsError::Stale)
    }

    /// Takes the queued user events of one hosted endpoint.
    pub fn take_mux_events(&mut self, id: MuxId) -> Vec<MuxEvent> {
        self.try_take_mux_events(id).expect("live mux")
    }

    /// Removes a connection, returning the socket. Completions still in
    /// flight for its QP are dropped (counted as orphans).
    pub fn remove(&mut self, id: ConnId) -> StreamSocket {
        let conn = self.conns[id.0 as usize]
            .take()
            .expect("removing a live connection");
        self.by_qpn.remove(&conn.sock.qpn());
        self.free.push(id.0);
        self.stats.conns_removed += 1;
        self.stats.orphan_cqes += conn.queued.len() as u64;
        conn.sock
    }

    /// Number of live connections.
    pub fn len(&self) -> usize {
        self.conns.iter().filter(|c| c.is_some()).count()
    }

    /// True when no connections are registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Shared access to a connection's socket, or `None` for a stale
    /// id (see [`Reactor::try_mux`] for why these exist).
    pub fn try_conn(&self, id: ConnId) -> Option<&StreamSocket> {
        self.conns.get(id.0 as usize)?.as_ref().map(|c| &c.sock)
    }

    /// Exclusive access to a connection's socket, or `None` for a
    /// stale id.
    pub fn try_conn_mut(&mut self, id: ConnId) -> Option<&mut StreamSocket> {
        self.conns
            .get_mut(id.0 as usize)?
            .as_mut()
            .map(|c| &mut c.sock)
    }

    /// Shared access to a connection's socket.
    pub fn conn(&self, id: ConnId) -> &StreamSocket {
        self.try_conn(id).expect("live conn")
    }

    /// Exclusive access to a connection's socket (post sends/receives).
    pub fn conn_mut(&mut self, id: ConnId) -> &mut StreamSocket {
        self.try_conn_mut(id).expect("live conn")
    }

    /// Sets which readiness flags [`Reactor::poll`] reports for this
    /// connection (epoll_ctl-style re-registration).
    pub fn set_interest(&mut self, id: ConnId, interest: Readiness) {
        self.conns[id.0 as usize]
            .as_mut()
            .expect("live conn")
            .interest = interest;
    }

    /// Takes the queued completion events of one connection, or
    /// [`ExsError::Stale`] for an id that is no longer registered.
    pub fn try_take_events(&mut self, id: ConnId) -> Result<Vec<ExsEvent>, crate::ExsError> {
        self.try_conn_mut(id)
            .map(|sock| sock.take_events())
            .ok_or(crate::ExsError::Stale)
    }

    /// Takes the queued completion events of one connection.
    pub fn take_events(&mut self, id: ConnId) -> Vec<ExsEvent> {
        self.try_take_events(id).expect("live conn")
    }

    /// Live connection ids, in slab order.
    pub fn conn_ids(&self) -> Vec<ConnId> {
        (0..self.conns.len() as u32)
            .filter(|&i| self.conns[i as usize].is_some())
            .map(ConnId)
            .collect()
    }

    /// Aggregate event-loop statistics.
    pub fn stats(&self) -> &ReactorStats {
        &self.stats
    }

    /// Sum of all live connections' (and hosted mux endpoints')
    /// protocol counters.
    pub fn aggregate_conn_stats(&self) -> ConnStats {
        let mut total = ConnStats::default();
        for conn in self.conns.iter().flatten() {
            total.merge(conn.sock.stats());
        }
        for host in self.muxes.iter().flatten() {
            total.merge(host.ep.stats());
        }
        total
    }

    /// One bounded reactor step: drains the shared CQs in batches,
    /// dispatches completions to their owning connections, services
    /// each connection round-robin under the per-poll budget, and
    /// returns the connections whose readiness intersects their
    /// interest. Level-triggered: a connection stays in the result
    /// until the condition is gone (events taken, stream closed
    /// handled, ...).
    pub fn poll(&mut self, api: &mut impl VerbsPort) -> Vec<(ConnId, Readiness)> {
        let mut ready = Vec::new();
        self.poll_into(api, &mut ready);
        ready
    }

    /// [`Reactor::poll`], writing the readiness set into a
    /// caller-owned buffer instead of allocating one. `out` is cleared
    /// first. Hot loops (shard service threads, the aio pump, fan-in
    /// servers) keep one buffer per reactor and reuse it across polls
    /// so the steady-state dispatch path performs no allocation.
    pub fn poll_into(&mut self, api: &mut impl VerbsPort, out: &mut Vec<(ConnId, Readiness)>) {
        out.clear();
        self.stats.polls += 1;
        let recv_full = self.drain_cq(api, CqSide::Recv);
        let send_full = self.drain_cq(api, CqSide::Send);
        self.saturated = recv_full || send_full;

        // Service round: start at the fairness cursor so the connection
        // served first rotates between polls.
        let n = self.conns.len();
        if n > 0 {
            self.cursor %= n;
            for step in 0..n {
                let idx = (self.cursor + step) % n;
                self.service_conn(api, idx);
            }
            self.cursor = (self.cursor + 1) % n;
        }
        // Hosted mux endpoints do their own per-stream fairness
        // internally; the reactor just bounds their per-poll CQE intake.
        for idx in 0..self.muxes.len() {
            self.service_mux(api, idx);
        }

        // Readiness scan.
        for (idx, slot) in self.conns.iter().enumerate() {
            let Some(conn) = slot else { continue };
            let readiness = Readiness {
                readable: conn.sock.events_pending() > 0,
                writable: conn.sock.writable(),
                closed: conn.sock.peer_closed(),
                error: conn.sock.is_broken(),
            }
            .mask(conn.interest);
            if readiness.any() {
                out.push((ConnId(idx as u32), readiness));
            }
        }
        self.stats.readiness_reports += out.len() as u64;
    }

    /// Returns true if the drain stopped at the per-poll bound (the CQ
    /// may still hold completions).
    fn drain_cq(&mut self, api: &mut impl VerbsPort, side: CqSide) -> bool {
        let cq = match side {
            CqSide::Recv => self.recv_cq,
            CqSide::Send => self.send_cq,
        };
        let mut drained = 0usize;
        while drained < self.cfg.drain_batch {
            let want = self.cfg.drain_batch - drained;
            self.scratch.clear();
            let got = api
                .poll_cq(cq, want, &mut self.scratch)
                .expect("poll shared cq");
            if got == 0 {
                break;
            }
            drained += got;
            self.stats.cq_batches += 1;
            self.stats.max_cq_batch = self.stats.max_cq_batch.max(got as u64);
            for cqe in self.scratch.drain(..) {
                match self.by_qpn.get(&cqe.qpn) {
                    Some(&Owner::Conn(idx)) => {
                        self.conns[idx as usize]
                            .as_mut()
                            .expect("by_qpn points at live conn")
                            .queued
                            .push_back((side, cqe));
                        self.stats.cqes_dispatched += 1;
                    }
                    Some(&Owner::Mux(idx)) => {
                        self.muxes[idx as usize]
                            .as_mut()
                            .expect("by_qpn points at live mux")
                            .queued
                            .push_back((side, cqe));
                        self.stats.cqes_dispatched += 1;
                    }
                    None => self.stats.orphan_cqes += 1,
                }
            }
        }
        drained == self.cfg.drain_batch
    }

    /// True when the last poll left work behind — a CQ drain hit the
    /// per-poll bound, or a connection hit its budget with completions
    /// still queued. Drivers must poll again promptly (next simulator
    /// timer tick, or without re-parking on the completion signal):
    /// wake-ups are edge-triggered, and deferred work generates no new
    /// edge.
    pub fn has_backlog(&self) -> bool {
        self.saturated
            || self
                .conns
                .iter()
                .flatten()
                .any(|conn| !conn.queued.is_empty())
            || self
                .muxes
                .iter()
                .flatten()
                .any(|host| !host.queued.is_empty())
    }

    /// True while any registered socket or mux endpoint still owes
    /// traffic to the wire (see [`StreamSocket::has_unsent`]). A
    /// service loop that exits while this holds can strand a peer —
    /// most visibly an un-flushed FIN after `exs_shutdown`, which
    /// leaves the other side waiting for an end-of-stream that never
    /// comes. Broken endpoints are ignored.
    pub fn has_unsent(&self) -> bool {
        self.conns
            .iter()
            .flatten()
            .any(|conn| conn.sock.has_unsent())
            || self.muxes.iter().flatten().any(|host| host.ep.has_unsent())
    }

    fn service_conn(&mut self, api: &mut impl VerbsPort, idx: usize) {
        let Some(conn) = self.conns[idx].as_mut() else {
            return;
        };
        let mut served = 0usize;
        while served < self.cfg.cqe_budget {
            let Some((side, cqe)) = conn.queued.pop_front() else {
                break;
            };
            match side {
                CqSide::Recv => conn.sock.on_recv_cqe(api, cqe),
                CqSide::Send => conn.sock.on_send_cqe(api, cqe),
            }
            served += 1;
        }
        if !conn.queued.is_empty() {
            self.stats.deferrals += 1;
        }
        if served > 0 || !conn.sock.sends_drained() || conn.sock.send_closed() {
            conn.sock.progress(api);
        }
    }

    fn service_mux(&mut self, api: &mut impl VerbsPort, idx: usize) {
        let Some(host) = self.muxes[idx].as_mut() else {
            return;
        };
        let mut served = 0usize;
        while served < self.cfg.cqe_budget {
            let Some((side, cqe)) = host.queued.pop_front() else {
                break;
            };
            match side {
                CqSide::Recv => host.ep.on_recv_cqe(api, cqe),
                CqSide::Send => host.ep.on_send_cqe(api, cqe),
            }
            served += 1;
        }
        if !host.queued.is_empty() {
            self.stats.deferrals += 1;
        }
        host.ep.progress(api);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn readiness_mask_and_any() {
        let r = Readiness {
            readable: true,
            writable: true,
            closed: false,
            error: false,
        };
        assert!(r.any());
        let masked = r.mask(Readiness::INPUT);
        assert!(masked.readable && !masked.writable);
        assert!(!Readiness::NONE.any());
        assert_eq!(r.mask(Readiness::ALL), r);
    }
}
