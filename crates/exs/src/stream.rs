//! Stream-oriented (SOCK_STREAM) sockets.
//!
//! [`StreamSocket`] glues the sans-IO protocol halves ([`SenderHalf`],
//! [`ReceiverHalf`]) to a simulated verbs queue pair:
//!
//! * user `exs_send()` data goes out as RDMA WRITE WITH IMM transfers —
//!   direct into advertised user buffers or indirect into the peer's
//!   intermediate ring, as the Fig. 2 algorithm decides;
//! * ADVERT / ACK / CREDIT control messages travel as small inline
//!   SENDs;
//! * every side pre-posts `credits` receive WQEs (64-byte slots); every
//!   arrival consumes one and is immediately re-posted, with returns
//!   piggybacked on control messages and topped up by standalone CREDIT
//!   messages (paper §II-B);
//! * completions surface as [`ExsEvent`]s through an event-queue-style
//!   API, mirroring the asynchronous UNH EXS interface where
//!   `exs_send`/`exs_recv` return immediately and the application polls
//!   an event queue (paper §II-B).
//!
//! The socket is driven from `NodeApp` handlers: call
//! [`StreamSocket::handle_wake`] whenever the node wakes, then drain
//! [`StreamSocket::take_events`].

use std::collections::{HashMap, VecDeque};

use rdma_verbs::{
    connect_pair, connect_pair_on_cqs, Cqe, MrInfo, NodeApi, NodeId, QpCaps, QpNum, RecvWr,
    RemoteAddr, SendWr, Sge, SimNet, WcOpcode, WcStatus,
};
use rdma_verbs::{Access, CqId, MrKey};

use crate::port::VerbsPort;

use crate::config::{ExsConfig, ProtocolMode, WwiMode};
use crate::error::{ExsError, ProtocolError};
use crate::messages::{decode_imm, encode_imm, Ctrl, CtrlMsg, TransferKind, CTRL_MSG_LEN};
use crate::receiver::{LocalRing, ReceiverHalf, RecvAction, RecvOp};
use crate::sender::{RemoteRing, SenderHalf, WwiPlan};
use crate::seq::Seq;
use crate::stats::ConnStats;
use crate::txpipe::TxPipe;

/// Size of one pre-posted control receive slot.
pub(crate) const CTRL_SLOT: u64 = 64;
const _: () = assert!(
    CTRL_MSG_LEN <= CTRL_SLOT as usize,
    "slots must hold control messages"
);
/// Credits kept in reserve so a CREDIT message can always be sent.
const CREDIT_RESERVE: u32 = 1;

/// Completion events delivered to the application.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExsEvent {
    /// An `exs_send` finished: every byte has left the user buffer (all
    /// WWIs completed locally), so the buffer is reusable.
    SendComplete {
        /// User token passed to `exs_send`.
        id: u64,
        /// Total bytes sent.
        len: u64,
    },
    /// An `exs_recv` finished: `len` bytes are in the user buffer.
    /// `len == 0` after the peer closed means end-of-stream.
    RecvComplete {
        /// User token passed to `exs_recv`.
        id: u64,
        /// Bytes delivered (≤ the posted length; equal when MSG_WAITALL
        /// was set).
        len: u32,
    },
    /// The peer half-closed and every byte of its stream has been
    /// delivered: subsequent receives complete immediately with zero
    /// bytes, like `read(2)` at end of file.
    PeerClosed,
    /// The transport failed (QP error: retry exhaustion, link loss).
    /// The connection is dead; pending operations will never complete.
    ConnectionError,
}

struct PendingSend {
    id: u64,
    addr: u64,
    len: u64,
    key: MrKey,
    dispatched: u64,
    /// Remaining staging capacity of an open coalesce run: further
    /// small BCopy sends may append here until the run is closed (full,
    /// ordered behind a newer send, flushed, or dispatched and popped).
    open_cap: Option<u64>,
}

struct SendTrack {
    len: u64,
    outstanding: u32,
    dispatched_all: bool,
    /// User sends carried by this entry (more than one when small
    /// BCopy sends were coalesced into a shared staging run); each gets
    /// its own `SendComplete` when the run's last WWI completes.
    members: Vec<(u64, u64)>,
}

/// Connection parameters one side shares with its peer at setup.
#[derive(Clone, Copy, Debug)]
pub struct SetupInfo {
    ring_addr: u64,
    ring_rkey: u32,
    ring_capacity: u64,
    credits: u32,
}

/// A stream-oriented EXS socket endpoint.
pub struct StreamSocket {
    node: NodeId,
    qpn: QpNum,
    send_cq: CqId,
    recv_cq: CqId,
    cfg: ExsConfig,
    sender: SenderHalf,
    receiver: ReceiverHalf,
    ring_mr: MrInfo,
    ctrl_mr: MrInfo,
    pending_sends: VecDeque<PendingSend>,
    inflight: HashMap<u64, SendTrack>,
    /// Data WQEs awaiting retirement, in posting (= wr_id) order. RC
    /// FIFO means a signaled CQE for wr_id `W` implies every WQE with a
    /// smaller wr_id also completed, so one CQE drains the whole prefix
    /// `wr_id <= W` — the EXS-level half of batched SQ reclamation.
    wwi_owner: VecDeque<(u64, u64)>,
    next_wr: u64,
    /// Postlist staging and selective-signaling state.
    tx: TxPipe,
    peer_credits: u32,
    owed_credits: u32,
    credit_threshold: u32,
    pending_ctrl: VecDeque<Ctrl>,
    events: Vec<ExsEvent>,
    stats: ConnStats,
    actions_scratch: Vec<RecvAction>,
    /// BCopy-mode staging regions, freed when the send completes.
    staging: HashMap<u64, MrKey>,
    /// Staging regions whose send was cancelled; freed at the next
    /// progress round (`exs_cancel` has no backend handle to free them
    /// immediately).
    staging_orphans: Vec<MrKey>,
    /// Registrations already released; the socket is closed.
    mrs_released: bool,
    /// Local half-close requested; no further sends accepted.
    send_closed: bool,
    /// FIN queued to the peer (exactly once, after all data dispatched).
    fin_queued: bool,
    /// Peer's announced final stream length, once its FIN arrives.
    peer_fin: Option<u64>,
    /// End-of-stream already delivered to the application.
    eof_delivered: bool,
    /// Transport failure observed; the socket is dead.
    broken: bool,
    /// The error that broke the socket, when one was attributable.
    last_error: Option<ExsError>,
}

impl StreamSocket {
    /// Builds one endpoint: registers the intermediate ring and control
    /// slots and pre-posts the receive credits. The returned
    /// [`SetupInfo`] must be exchanged with the peer (connection setup is
    /// out of band, like `rdma_cm` parameter exchange).
    pub fn prepare(
        api: &mut NodeApi<'_>,
        qpn: QpNum,
        send_cq: CqId,
        recv_cq: CqId,
        cfg: &ExsConfig,
    ) -> (PreparedSocket, SetupInfo) {
        cfg.validate().expect("invalid EXS configuration");
        let ring_mr = api.register_mr(cfg.ring_capacity as usize, Access::local_remote_write());
        let ctrl_mr = api.register_mr(
            (cfg.credits as u64 * CTRL_SLOT) as usize,
            Access::LOCAL_WRITE,
        );
        for slot in 0..cfg.credits {
            let sge = ctrl_mr.sge(slot as u64 * CTRL_SLOT, CTRL_SLOT as u32);
            api.post_recv(qpn, RecvWr::new(slot as u64, sge))
                .expect("pre-posting control receives");
        }
        let info = SetupInfo {
            ring_addr: ring_mr.addr,
            ring_rkey: ring_mr.key.0,
            ring_capacity: cfg.ring_capacity,
            credits: cfg.credits,
        };
        (
            PreparedSocket {
                node: api.node(),
                qpn,
                send_cq,
                recv_cq,
                cfg: cfg.clone(),
                ring_mr,
                ctrl_mr,
            },
            info,
        )
    }

    /// Creates a fully connected pair of stream sockets over `net`,
    /// performing the out-of-band parameter exchange both ways.
    pub fn pair(
        net: &mut SimNet,
        a: NodeId,
        b: NodeId,
        cfg: &ExsConfig,
    ) -> (StreamSocket, StreamSocket) {
        let caps = QpCaps {
            // The iWARP WWI emulation posts two WQEs per transfer;
            // reserve headroom beyond the pump's sq_depth gate.
            max_send_wr: cfg.sq_depth * 2 + 8,
            max_recv_wr: cfg.credits as usize + 8,
            max_inline: 256,
        };
        let cq_depth = cfg.sq_depth * 2 + cfg.credits as usize * 2;
        let (ha, hb) = connect_pair(net, a, b, caps, cq_depth).expect("connect");
        let (pa, ia) = net.with_api(a, |api| {
            StreamSocket::prepare(api, ha.qpn, ha.send_cq, ha.recv_cq, cfg)
        });
        let (pb, ib) = net.with_api(b, |api| {
            StreamSocket::prepare(api, hb.qpn, hb.send_cq, hb.recv_cq, cfg)
        });
        (pa.complete(ib), pb.complete(ia))
    }

    /// Like [`StreamSocket::pair`], but the `server` endpoint's QP
    /// completes onto the caller-provided CQs instead of fresh ones —
    /// the shape a [`crate::reactor::Reactor`] needs, where many
    /// accepted connections share one send and one receive CQ. The
    /// client side keeps private CQs.
    pub fn pair_shared(
        net: &mut SimNet,
        client: NodeId,
        server: NodeId,
        server_send_cq: CqId,
        server_recv_cq: CqId,
        cfg: &ExsConfig,
    ) -> (StreamSocket, StreamSocket) {
        let caps = QpCaps {
            max_send_wr: cfg.sq_depth * 2 + 8,
            max_recv_wr: cfg.credits as usize + 8,
            max_inline: 256,
        };
        let cq_depth = cfg.sq_depth * 2 + cfg.credits as usize * 2;
        let (hc, hs) = connect_pair_on_cqs(
            net,
            client,
            server,
            caps,
            cq_depth,
            Some((server_send_cq, server_recv_cq)),
        )
        .expect("connect");
        let (pc, ic) = net.with_api(client, |api| {
            StreamSocket::prepare(api, hc.qpn, hc.send_cq, hc.recv_cq, cfg)
        });
        let (ps, is) = net.with_api(server, |api| {
            StreamSocket::prepare(api, hs.qpn, hs.send_cq, hs.recv_cq, cfg)
        });
        (pc.complete(is), ps.complete(ic))
    }

    /// This endpoint's node.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// The queue pair this endpoint owns (the reactor's dispatch key).
    pub fn qpn(&self) -> QpNum {
        self.qpn
    }

    /// The CQ this endpoint's send completions land on.
    pub fn send_cq(&self) -> CqId {
        self.send_cq
    }

    /// The CQ this endpoint's receive completions land on.
    pub fn recv_cq(&self) -> CqId {
        self.recv_cq
    }

    /// Number of user events queued and not yet taken.
    pub fn events_pending(&self) -> usize {
        self.events.len()
    }

    /// Level-triggered writability: a new `exs_send` would start
    /// dispatching immediately instead of queueing behind earlier sends
    /// (and the sending direction is still open).
    pub fn writable(&self) -> bool {
        !self.send_closed && !self.broken && self.pending_sends.is_empty()
    }

    /// Protocol statistics for this endpoint.
    pub fn stats(&self) -> &ConnStats {
        &self.stats
    }

    /// The configured protocol mode.
    pub fn mode(&self) -> ProtocolMode {
        self.cfg.mode
    }

    /// True when no user send is queued or awaiting completion.
    pub fn sends_drained(&self) -> bool {
        self.pending_sends.is_empty() && self.inflight.is_empty()
    }

    /// Number of receive operations still queued.
    pub fn recvs_pending(&self) -> usize {
        self.receiver.queue_len()
    }

    /// Asynchronous send (ES-API `exs_send`): queues the operation and
    /// returns immediately. Completion is reported via
    /// [`ExsEvent::SendComplete`] once the user buffer is reusable.
    ///
    /// The buffer must stay untouched until then — the zero-copy
    /// contract the ES-API makes explicit (paper §I).
    pub fn exs_send(
        &mut self,
        api: &mut impl VerbsPort,
        mr: &MrInfo,
        offset: u64,
        len: u64,
        id: u64,
    ) {
        assert!(
            offset + len <= mr.len as u64,
            "send range outside registered region"
        );
        assert!(!self.send_closed, "exs_send after exs_shutdown");
        if len == 0 {
            self.events.push(ExsEvent::SendComplete { id, len: 0 });
            return;
        }
        let coalesce = self.cfg.effective_coalesce_threshold();
        if self.cfg.mode == ProtocolMode::BCopy && coalesce > 0 && len <= coalesce {
            self.coalesce_send(api, mr, offset, len, id);
            return;
        }
        let (addr, key, open_cap) = if self.cfg.mode == ProtocolMode::BCopy {
            // rsockets-style BCopy: copy the user data into an internal
            // staging region first (charged to the sender's CPU), then
            // transfer from the staging copy. The user buffer is
            // conceptually reusable immediately; the completion event
            // still marks when the *stream* consumed the data.
            let stage = api.register_mr(len as usize, Access::NONE);
            api.copy_mr(mr.key, mr.addr + offset, stage.key, stage.addr, len)
                .expect("BCopy staging copy");
            self.staging.insert(id, stage.key);
            (stage.addr, stage.key, None)
        } else {
            (mr.addr + offset, mr.key, None)
        };
        self.queue_send(id, addr, len, key, open_cap);
        self.pump_sends(api);
        self.flush_ctrl(api);
        self.flush_tx(api);
    }

    /// Queues one pending send, closing any open coalesce run ahead of
    /// it (appending to a run behind a newer send would reorder the
    /// stream).
    fn queue_send(&mut self, id: u64, addr: u64, len: u64, key: MrKey, open_cap: Option<u64>) {
        if let Some(tail) = self.pending_sends.back_mut() {
            tail.open_cap = None;
        }
        self.pending_sends.push_back(PendingSend {
            id,
            addr,
            len,
            key,
            dispatched: 0,
            open_cap,
        });
        self.inflight.insert(
            id,
            SendTrack {
                len,
                outstanding: 0,
                dispatched_all: false,
                members: vec![(id, len)],
            },
        );
    }

    /// Small-send coalescing (BCopy mode): appends the message to the
    /// open staging run at the queue tail, or starts a fresh run sized
    /// `coalesce_threshold`. A run is dispatched immediately when no
    /// signaled WQE is outstanding (nothing in flight would wake us
    /// later — Nagle's "send now if idle" rule); otherwise it is held
    /// so neighbouring small sends share one WWI, until the run fills,
    /// the next progress round, or an explicit [`StreamSocket::tx_flush`].
    fn coalesce_send(
        &mut self,
        api: &mut impl VerbsPort,
        mr: &MrInfo,
        offset: u64,
        len: u64,
        id: u64,
    ) {
        let appended = match self.pending_sends.back_mut() {
            Some(tail) if tail.open_cap.unwrap_or(0) >= len => {
                api.copy_mr(
                    mr.key,
                    mr.addr + offset,
                    tail.key,
                    tail.addr + tail.len,
                    len,
                )
                .expect("coalesce staging copy");
                let cap = tail.open_cap.expect("checked above") - len;
                tail.len += len;
                tail.open_cap = if cap == 0 { None } else { Some(cap) };
                let track = self
                    .inflight
                    .get_mut(&tail.id)
                    .expect("open run has a track");
                if track.members.len() == 1 {
                    // The run just became a coalesced one: count its
                    // first member too.
                    self.stats.coalesced_msgs += 1;
                    self.stats.coalesced_bytes += track.len;
                }
                self.stats.coalesced_msgs += 1;
                self.stats.coalesced_bytes += len;
                track.len += len;
                track.members.push((id, len));
                true
            }
            _ => false,
        };
        if !appended {
            let cap = self.cfg.effective_coalesce_threshold();
            let stage = api.register_mr(cap as usize, Access::NONE);
            api.copy_mr(mr.key, mr.addr + offset, stage.key, stage.addr, len)
                .expect("BCopy staging copy");
            self.staging.insert(id, stage.key);
            self.queue_send(id, stage.addr, len, stage.key, Some(cap - len));
        }
        if self.tx.signaled_outstanding() == 0 {
            // Nothing in flight will wake us later; dispatch now.
            self.pump_sends(api);
            self.flush_ctrl(api);
            self.flush_tx(api);
        }
    }

    /// Closes the open coalesce run and pushes every staged WQE to the
    /// HCA immediately — the latency opt-out from small-send
    /// coalescing and postlist batching.
    pub fn tx_flush(&mut self, api: &mut impl VerbsPort) {
        if let Some(tail) = self.pending_sends.back_mut() {
            tail.open_cap = None;
        }
        if !self.broken {
            self.pump_sends(api);
            self.flush_ctrl(api);
        }
        self.flush_tx(api);
    }

    /// Asynchronous receive (ES-API `exs_recv`): queues the operation and
    /// returns immediately. Completion is reported via
    /// [`ExsEvent::RecvComplete`]. With `waitall` (MSG_WAITALL) the
    /// receive completes only when the buffer is full; otherwise it
    /// completes with whatever bytes the next transfer delivers.
    pub fn exs_recv(
        &mut self,
        api: &mut impl VerbsPort,
        mr: &MrInfo,
        offset: u64,
        len: u32,
        waitall: bool,
        id: u64,
    ) {
        assert!(
            offset + len as u64 <= mr.len as u64,
            "receive range outside registered region"
        );
        if self.eof_delivered {
            // End-of-stream: complete immediately with zero bytes, like
            // read(2) at EOF.
            self.events.push(ExsEvent::RecvComplete { id, len: 0 });
            return;
        }
        let op = RecvOp {
            id,
            addr: mr.addr + offset,
            len,
            key: mr.key.0,
            waitall,
        };
        let mut actions = std::mem::take(&mut self.actions_scratch);
        self.receiver.push_recv(op, &mut self.stats, &mut actions);
        self.execute_actions(api, &mut actions);
        self.actions_scratch = actions;
        self.flush_ctrl(api);
        self.check_eof(api);
        self.flush_tx(api);
    }

    /// Best-effort cancellation of a pending operation (ES-API
    /// `exs_cancel`). A receive cancels only while un-advertised and
    /// empty; a send cancels only before any of its bytes entered the
    /// stream. Returns true if the operation was removed (no completion
    /// event will follow).
    pub fn exs_cancel(&mut self, id: u64) -> bool {
        // Try the receive queue first.
        if self.receiver.cancel_recv(id) {
            return true;
        }
        // A send is cancellable while fully undispatched and not yet
        // merged with neighbours (a coalesced member's bytes are
        // already interleaved in the shared staging run).
        if let Some(pos) = self.pending_sends.iter().position(|p| {
            p.id == id
                && p.dispatched == 0
                && self.inflight.get(&id).is_some_and(|t| t.members.len() == 1)
        }) {
            self.pending_sends.remove(pos);
            self.inflight.remove(&id);
            if let Some(key) = self.staging.remove(&id) {
                // Defer the deregistration: no backend handle here.
                self.staging_orphans.push(key);
            }
            return true;
        }
        false
    }

    /// Half-closes the sending direction (ES-API `exs_shutdown` with
    /// SHUT_WR): queued data still drains, then a FIN tells the peer the
    /// final stream length. Idempotent; sends after shutdown panic.
    pub fn exs_shutdown(&mut self, api: &mut impl VerbsPort) {
        self.send_closed = true;
        if let Some(tail) = self.pending_sends.back_mut() {
            // No further sends can arrive; the open run is as coalesced
            // as it will ever be.
            tail.open_cap = None;
        }
        if !self.broken {
            self.pump_sends(api);
        }
        self.try_queue_fin(api);
        self.flush_tx(api);
    }

    /// True once the local sending direction is closed.
    pub fn send_closed(&self) -> bool {
        self.send_closed
    }

    /// True while the socket still owes traffic to the wire: queued
    /// sends, staged WQEs, un-flushed control messages, or a
    /// half-close whose FIN is not yet queued. Progress is CQE-driven,
    /// so a service loop that stops polling while this holds strands
    /// the peer — drain before tearing the loop down. A broken socket
    /// reports false: nothing it holds can be sent any more.
    pub fn has_unsent(&self) -> bool {
        if self.broken {
            return false;
        }
        !self.pending_sends.is_empty()
            || !self.pending_ctrl.is_empty()
            || self.tx.staged() > 0
            || (self.send_closed && !self.fin_queued)
    }

    /// Releases every registration the socket owns — the intermediate
    /// ring, the control slots, and any staging regions still parked
    /// (in-flight BCopy sends and cancelled ones awaiting cleanup).
    /// Full-socket close (`exs_close`); idempotent. Without it the
    /// regions stay pinned for the life of the node: registrations
    /// have no other owner.
    pub fn close(&mut self, api: &mut impl VerbsPort) {
        if self.mrs_released {
            return;
        }
        self.mrs_released = true;
        for (_, key) in self.staging.drain() {
            api.deregister_mr(key)
                .expect("free staging region at close");
        }
        for key in self.staging_orphans.drain(..) {
            api.deregister_mr(key)
                .expect("free cancelled staging region");
        }
        api.deregister_mr(self.ctrl_mr.key)
            .expect("free control slots at close");
        api.deregister_mr(self.ring_mr.key)
            .expect("free intermediate ring at close");
    }

    /// True once [`StreamSocket::close`] has released the socket's
    /// registrations.
    pub fn is_closed(&self) -> bool {
        self.mrs_released
    }

    /// True once the peer's stream has fully ended (FIN seen and every
    /// byte delivered).
    pub fn peer_closed(&self) -> bool {
        self.eof_delivered
    }

    fn try_queue_fin(&mut self, api: &mut impl VerbsPort) {
        // The FIN must follow the last data WWI on the FIFO channel, so
        // it can be queued as soon as every byte has been dispatched.
        if !self.send_closed || self.fin_queued || !self.pending_sends.is_empty() {
            return;
        }
        self.fin_queued = true;
        self.pending_ctrl.push_back(Ctrl::Fin {
            final_seq: self.sender.seq().0,
        });
        self.flush_ctrl(api);
    }

    /// Delivers end-of-stream if the peer has closed and all its bytes
    /// have been consumed.
    fn check_eof(&mut self, api: &mut impl VerbsPort) {
        let Some(final_seq) = self.peer_fin else {
            return;
        };
        if self.eof_delivered || self.receiver.seq().0 != final_seq {
            return;
        }
        debug_assert_eq!(self.receiver.buffered(), 0);
        self.eof_delivered = true;
        let mut actions = std::mem::take(&mut self.actions_scratch);
        self.receiver.flush_eof(&mut self.stats, &mut actions);
        self.execute_actions(api, &mut actions);
        self.actions_scratch = actions;
        self.events.push(ExsEvent::PeerClosed);
    }

    /// True once the transport failed underneath the socket.
    pub fn is_broken(&self) -> bool {
        self.broken
    }

    /// The typed error that broke the socket, when the failure was
    /// attributable (peer protocol violation or backend verbs error).
    /// `None` for raw transport failures reported only as a CQE status.
    pub fn last_error(&self) -> Option<&ExsError> {
        self.last_error.as_ref()
    }

    fn mark_broken(&mut self) {
        if !self.broken {
            self.broken = true;
            self.events.push(ExsEvent::ConnectionError);
        }
    }

    /// Records a typed failure and breaks the connection. A malformed
    /// peer kills this socket, never the process.
    fn fail(&mut self, e: ExsError) {
        if matches!(e, ExsError::Protocol(_)) {
            self.stats.protocol_errors += 1;
        }
        if self.last_error.is_none() {
            self.last_error = Some(e);
        }
        self.mark_broken();
    }

    /// Drives the socket from a node wake: drains both completion
    /// queues, advances the protocol, and queues user events.
    pub fn handle_wake(&mut self, api: &mut impl VerbsPort) {
        let mut cqes: Vec<Cqe> = Vec::new();
        api.poll_cq(self.recv_cq, usize::MAX, &mut cqes)
            .expect("poll recv cq");
        let recv_count = cqes.len();
        api.poll_cq(self.send_cq, usize::MAX, &mut cqes)
            .expect("poll send cq");
        for (i, cqe) in cqes.into_iter().enumerate() {
            if i < recv_count {
                self.on_recv_cqe(api, cqe);
            } else {
                self.on_send_cqe(api, cqe);
            }
        }
        self.progress(api);
    }

    /// Advances the protocol after completions were applied: dispatches
    /// queued sends, queues the FIN when due, flushes control messages
    /// and credit returns, and delivers end-of-stream. Backends that
    /// dispatch CQEs themselves (the reactor) call this once per
    /// service round instead of [`StreamSocket::handle_wake`].
    pub(crate) fn progress(&mut self, api: &mut impl VerbsPort) {
        for key in self.staging_orphans.drain(..) {
            api.deregister_mr(key)
                .expect("free cancelled staging region");
        }
        if self.broken {
            return;
        }
        self.pump_sends(api);
        self.try_queue_fin(api);
        self.flush_ctrl(api);
        self.maybe_send_credit(api);
        self.check_eof(api);
        self.flush_tx(api);
    }

    /// Takes the accumulated user events.
    pub fn take_events(&mut self) -> Vec<ExsEvent> {
        std::mem::take(&mut self.events)
    }

    pub(crate) fn on_recv_cqe(&mut self, api: &mut impl VerbsPort, cqe: Cqe) {
        if cqe.status != WcStatus::Success {
            self.mark_broken();
            return;
        }
        if let Err(e) = self.try_on_recv_cqe(api, cqe) {
            self.fail(e);
        }
    }

    /// The fallible body of [`StreamSocket::on_recv_cqe`]: everything in
    /// here is driven by bytes the peer controls, so every malformed
    /// input surfaces as an [`ExsError`] that breaks this connection
    /// instead of aborting the process.
    fn try_on_recv_cqe(&mut self, api: &mut impl VerbsPort, cqe: Cqe) -> Result<(), ExsError> {
        api.charge_cqe_cost();
        match cqe.opcode {
            WcOpcode::RecvRdmaWithImm => {
                let imm = cqe.imm.ok_or(ProtocolError::MissingImm)?;
                let (kind, len) = decode_imm(imm);
                debug_assert_eq!(len, cqe.byte_len, "imm length mismatch");
                self.apply_transfer(api, kind, len)?;
            }
            WcOpcode::Recv => {
                // Control message: parse from the slot buffer.
                let slot = cqe.wr_id;
                let mut buf = [0u8; CTRL_MSG_LEN];
                api.read_mr(
                    self.ctrl_mr.key,
                    self.ctrl_mr.addr + slot * CTRL_SLOT,
                    &mut buf,
                )?;
                let msg = CtrlMsg::decode(&buf)?;
                self.peer_credits += msg.credit_return;
                match msg.ctrl {
                    Ctrl::Advert(ad) => self.sender.push_advert(ad, &mut self.stats)?,
                    Ctrl::Ack { freed } => self.sender.on_ack(freed, &mut self.stats)?,
                    Ctrl::Credit => {}
                    Ctrl::Fin { final_seq } => {
                        if self.peer_fin.is_some() {
                            return Err(ProtocolError::DuplicateFin.into());
                        }
                        // The FIN rides the FIFO channel behind the last
                        // data transfer, so every stream byte has already
                        // arrived: delivered (`seq`) plus still buffered.
                        let arrived = self.receiver.seq().0 + self.receiver.buffered();
                        match Seq(final_seq).checked_distance_from(self.receiver.seq()) {
                            Some(d) if d == self.receiver.buffered() => {}
                            _ => {
                                return Err(ProtocolError::FinSeqMismatch {
                                    claimed: final_seq,
                                    arrived,
                                }
                                .into());
                            }
                        }
                        self.peer_fin = Some(final_seq);
                    }
                    Ctrl::DataNotify { imm } => {
                        // iWARP emulation: the preceding RDMA WRITE has
                        // already placed the data (FIFO); this SEND is
                        // the notification the native path carries as
                        // immediate data.
                        let (kind, len) = decode_imm(imm);
                        self.apply_transfer(api, kind, len)?;
                    }
                }
            }
            _ => return Err(ProtocolError::UnexpectedOpcode.into()),
        }
        // Re-post the consumed slot immediately and account the return.
        let slot = cqe.wr_id;
        let sge = self.ctrl_mr.sge(slot * CTRL_SLOT, CTRL_SLOT as u32);
        api.post_recv(self.qpn, RecvWr::new(slot, sge))?;
        self.owed_credits += 1;
        Ok(())
    }

    /// Feeds one arriving transfer to the receiver half, preserving the
    /// action scratch buffer across the fallible call.
    fn apply_transfer(
        &mut self,
        api: &mut impl VerbsPort,
        kind: TransferKind,
        len: u32,
    ) -> Result<(), ExsError> {
        let mut actions = std::mem::take(&mut self.actions_scratch);
        let res = match kind {
            TransferKind::Direct => self.receiver.on_direct(len, &mut self.stats, &mut actions),
            TransferKind::Indirect => self
                .receiver
                .on_indirect(len, &mut self.stats, &mut actions),
        };
        self.execute_actions(api, &mut actions);
        self.actions_scratch = actions;
        res.map_err(ExsError::from)
    }

    pub(crate) fn on_send_cqe(&mut self, api: &mut impl VerbsPort, cqe: Cqe) {
        if cqe.status != WcStatus::Success {
            self.mark_broken();
            return;
        }
        api.charge_cqe_cost();
        debug_assert!(
            matches!(cqe.opcode, WcOpcode::RdmaWrite | WcOpcode::Send),
            "unexpected send-side completion {:?}",
            cqe.opcode
        );
        self.tx.on_signaled_cqe();
        // RC FIFO: this signaled completion retires every WQE posted
        // before it, so drain all owners up to and including its wr_id
        // (a signaled control SEND may retire data WWIs posted ahead of
        // it and own no entry itself).
        while let Some(&(wr_id, owner)) = self.wwi_owner.front() {
            if wr_id > cqe.wr_id {
                break;
            }
            self.wwi_owner.pop_front();
            let track = self
                .inflight
                .get_mut(&owner)
                .expect("send track for completed WWI");
            track.outstanding -= 1;
            if track.outstanding == 0 && track.dispatched_all {
                let track = self.inflight.remove(&owner).expect("checked above");
                if let Some(stage_key) = self.staging.remove(&owner) {
                    api.deregister_mr(stage_key).expect("free staging region");
                }
                for (id, len) in track.members {
                    self.stats.sends_completed += 1;
                    self.stats.bytes_sent += len;
                    self.events.push(ExsEvent::SendComplete { id, len });
                }
            }
        }
    }

    fn pump_sends(&mut self, api: &mut impl VerbsPort) {
        loop {
            let Some(head) = self.pending_sends.front() else {
                return;
            };
            // Resource gates: a WWI needs a peer receive credit (it
            // consumes a posted RECV) and a send-queue slot. Staged
            // WQEs count against the SQ: they will occupy slots the
            // moment the queue flushes.
            if self.peer_credits <= CREDIT_RESERVE {
                return;
            }
            if api.sq_outstanding(self.qpn) + self.tx.staged() >= self.cfg.sq_depth {
                return;
            }
            let remaining = head.len - head.dispatched;
            let Some(plan) = self.sender.plan_transfer(remaining, &mut self.stats) else {
                return;
            };
            self.issue_wwi(api, plan);
        }
    }

    fn issue_wwi(&mut self, api: &mut impl VerbsPort, plan: WwiPlan) {
        let head = self.pending_sends.front_mut().expect("pump checked head");
        let wr_id = self.next_wr;
        self.next_wr += 1;
        let sge = Sge::new(head.addr + head.dispatched, plan.len, head.key);
        let kind = if plan.indirect {
            TransferKind::Indirect
        } else {
            TransferKind::Direct
        };
        let remote = RemoteAddr {
            addr: plan.raddr,
            rkey: MrKey(plan.rkey),
        };
        let imm = encode_imm(kind, plan.len);
        let owner = head.id;
        let head_done = {
            let track = self.inflight.get_mut(&owner).expect("inflight entry");
            track.outstanding += 1;
            head.dispatched += plan.len as u64;
            if head.dispatched == head.len {
                track.dispatched_all = true;
                true
            } else {
                false
            }
        };
        if head_done {
            self.pending_sends.pop_front();
        }
        match self.cfg.wwi_mode {
            WwiMode::Native => {
                self.stage_wr(api, SendWr::write_imm(wr_id, sge, remote, imm), true);
            }
            WwiMode::WritePlusSend => {
                // Old-iWARP emulation (paper §II-B): a plain RDMA WRITE
                // places the data, then a small SEND notifies the peer.
                // The QP's FIFO ordering guarantees the notification
                // arrives after the data; the notification SEND also
                // returns any accumulated credit.
                self.stage_wr(api, SendWr::write(wr_id, sge, remote), true);
                let msg = CtrlMsg {
                    ctrl: Ctrl::DataNotify { imm },
                    credit_return: self.owed_credits,
                };
                self.owed_credits = 0;
                let notify_wr = self.next_wr;
                self.next_wr += 1;
                self.stage_wr(
                    api,
                    SendWr::send_inline(notify_wr, msg.encode_bytes()),
                    true,
                );
            }
        }
        self.peer_credits -= 1;
        self.wwi_owner.push_back((wr_id, owner));
    }

    fn execute_actions(&mut self, api: &mut impl VerbsPort, actions: &mut Vec<RecvAction>) {
        for action in actions.drain(..) {
            match action {
                RecvAction::Copy {
                    src_addr,
                    dst_addr,
                    dst_key,
                    len,
                } => {
                    api.copy_mr(self.ring_mr.key, src_addr, MrKey(dst_key), dst_addr, len)
                        .expect("intermediate buffer copy-out");
                }
                RecvAction::SendAdvert(ad) => self.pending_ctrl.push_back(Ctrl::Advert(ad)),
                RecvAction::SendAck { freed } => self.pending_ctrl.push_back(Ctrl::Ack { freed }),
                RecvAction::Complete { id, len } => {
                    self.events.push(ExsEvent::RecvComplete { id, len })
                }
            }
        }
        self.flush_ctrl(api);
    }

    /// Moves eligible control messages onto the TX queue (they are
    /// posted by the next [`StreamSocket::flush_tx`], sharing its
    /// doorbell with any data WQEs staged in the same pass).
    fn flush_ctrl(&mut self, api: &mut impl VerbsPort) {
        while let Some(front) = self.pending_ctrl.front() {
            let needed = match front {
                Ctrl::Credit => CREDIT_RESERVE,
                _ => CREDIT_RESERVE + 1,
            };
            if self.peer_credits < needed {
                return;
            }
            if api.sq_outstanding(self.qpn) + self.tx.staged() >= self.cfg.sq_depth {
                return;
            }
            let ctrl = self.pending_ctrl.pop_front().expect("front exists");
            let msg = CtrlMsg {
                ctrl,
                credit_return: self.owed_credits,
            };
            self.owed_credits = 0;
            let wr_id = self.next_wr;
            self.next_wr += 1;
            self.stage_wr(api, SendWr::send_inline(wr_id, msg.encode_bytes()), false);
            self.peer_credits -= 1;
        }
    }

    /// Stages one WQE on the TX pipe (see [`TxPipe::stage`] for the
    /// signaling policy). `is_data` marks WQEs whose completion the
    /// application waits for.
    fn stage_wr(&mut self, api: &mut impl VerbsPort, wr: SendWr, is_data: bool) {
        let occupancy = api.sq_outstanding(self.qpn) + self.tx.staged();
        self.tx
            .stage(occupancy, &self.cfg, wr, is_data, &mut self.stats);
    }

    /// Posts the staged TX queue as postlists (see [`TxPipe::flush`]).
    fn flush_tx(&mut self, api: &mut impl VerbsPort) {
        self.tx.flush(api, self.qpn, &self.cfg, &mut self.stats);
    }

    /// Refreshes the CQ-pressure gauges (`overflowed`, `max_batch`,
    /// `nonempty_polls`) from the backend into this endpoint's stats;
    /// call before serializing a snapshot.
    pub fn sync_cq_stats(&mut self, api: &impl VerbsPort) {
        let s = api.cq_pressure(self.send_cq);
        let r = api.cq_pressure(self.recv_cq);
        self.stats.cq_overflowed = s.overflowed || r.overflowed;
        self.stats.cq_max_batch = s.max_batch.max(r.max_batch);
        self.stats.cq_nonempty_polls = s.nonempty_polls + r.nonempty_polls;
    }

    fn maybe_send_credit(&mut self, api: &mut impl VerbsPort) {
        if self.owed_credits >= self.credit_threshold
            && self.peer_credits >= CREDIT_RESERVE
            && !self.pending_ctrl.iter().any(|c| matches!(c, Ctrl::Credit))
        {
            self.pending_ctrl.push_back(Ctrl::Credit);
            self.stats.credits_sent += 1;
            self.flush_ctrl(api);
        }
    }
}

impl PreparedSocket {
    /// Low-level constructor for backends that manage their own verbs
    /// objects (the threaded fabric): the caller has already created the
    /// QP/CQs, registered `ring_mr` (local+remote write) and `ctrl_mr`
    /// (local write, `credits` × 64-byte slots), and pre-posted one
    /// receive per slot with `wr_id == slot`.
    #[allow(clippy::too_many_arguments)]
    pub fn from_raw(
        node: NodeId,
        qpn: QpNum,
        send_cq: CqId,
        recv_cq: CqId,
        cfg: ExsConfig,
        ring_mr: MrInfo,
        ctrl_mr: MrInfo,
    ) -> (PreparedSocket, SetupInfo) {
        let info = SetupInfo {
            ring_addr: ring_mr.addr,
            ring_rkey: ring_mr.key.0,
            ring_capacity: cfg.ring_capacity,
            credits: cfg.credits,
        };
        (
            PreparedSocket {
                node,
                qpn,
                send_cq,
                recv_cq,
                cfg,
                ring_mr,
                ctrl_mr,
            },
            info,
        )
    }
}

/// Intermediate product of [`StreamSocket::prepare`]: everything local is
/// set up; the peer's [`SetupInfo`] completes the socket.
pub struct PreparedSocket {
    node: NodeId,
    qpn: QpNum,
    send_cq: CqId,
    recv_cq: CqId,
    cfg: ExsConfig,
    ring_mr: MrInfo,
    ctrl_mr: MrInfo,
}

impl PreparedSocket {
    /// Finishes construction with the peer's parameters.
    pub fn complete(self, peer: SetupInfo) -> StreamSocket {
        let sender = SenderHalf::with_policy(
            self.cfg.mode,
            RemoteRing {
                addr: peer.ring_addr,
                rkey: peer.ring_rkey,
                capacity: peer.ring_capacity,
            },
            self.cfg.max_wwi_chunk,
            self.cfg.direct,
        );
        let receiver = ReceiverHalf::new(
            self.cfg.mode,
            LocalRing {
                addr: self.ring_mr.addr,
                key: self.ring_mr.key.0,
                capacity: self.cfg.ring_capacity,
            },
            self.cfg.effective_ack_threshold(),
        );
        let credit_threshold = self.cfg.effective_credit_threshold();
        StreamSocket {
            node: self.node,
            qpn: self.qpn,
            send_cq: self.send_cq,
            recv_cq: self.recv_cq,
            sender,
            receiver,
            ring_mr: self.ring_mr,
            ctrl_mr: self.ctrl_mr,
            pending_sends: VecDeque::new(),
            inflight: HashMap::new(),
            wwi_owner: VecDeque::new(),
            next_wr: 1,
            tx: TxPipe::new(),
            peer_credits: peer.credits,
            owed_credits: 0,
            credit_threshold,
            pending_ctrl: VecDeque::new(),
            events: Vec::new(),
            stats: ConnStats::default(),
            actions_scratch: Vec::new(),
            staging: HashMap::new(),
            staging_orphans: Vec::new(),
            mrs_released: false,
            send_closed: false,
            fin_queued: false,
            peer_fin: None,
            eof_delivered: false,
            broken: false,
            last_error: None,
            cfg: self.cfg,
        }
    }
}
