//! The receiver half of the stream protocol — paper Fig. 3, 4 and 5.
//!
//! The receiver owns the queue of user `exs_recv()` operations, the
//! intermediate ring buffer, its phase `P_r`, its stream position `S_r`
//! and the *next-expected* estimate used for ADVERT sequence numbers.
//!
//! **ADVERT gating (Fig. 3).** A new receive is advertised only when the
//! intermediate buffer is empty (`b_r == 0`), no ADVERTs from a prior
//! phase are outstanding (`k_a == 0`), and no earlier receive is waiting
//! un-advertised (`k_b == 0`). When the gate opens, all queued
//! un-advertised receives are advertised in order, after advancing an
//! indirect phase to the next (direct) phase — this is the
//! resynchronization step that makes the first new ADVERT's sequence
//! number exact.
//!
//! **Sequence estimates.** An ADVERT for a MSG_WAITALL receive
//! contributes exactly its length to the next-expected estimate; a plain
//! receive contributes 1 ("at least one byte"). As data actually
//! arrives, each estimate is replaced by the true byte count, so the
//! estimate equals the true stream position whenever no advertised
//! receive is outstanding. (The paper's pseudocode tracks the same
//! quantity as `S'_r`; the published listing is ambiguous about the
//! correction term, so this implementation maintains the invariant the
//! correctness proof needs: exactness at resynchronization,
//! monotonicity within an ADVERT sequence.)
//!
//! **Arrivals (Fig. 4).** A direct transfer fills the advertised receive
//! at the head of the queue. An indirect transfer advances the phase to
//! indirect (invalidating outstanding ADVERTs — they become "prior
//! phase", counted by `k_a`) and lands in the ring.
//!
//! **Copy-out (Fig. 5).** While the ring holds data and receives are
//! queued, bytes are copied to user memory; freed space is reported with
//! ACKs (threshold-batched, always on the empty transition).

use std::collections::VecDeque;

use crate::buffer::ReceiverRing;
use crate::config::ProtocolMode;
use crate::error::ProtocolError;
use crate::messages::Advert;
use crate::phase::Phase;
use crate::seq::Seq;
use crate::stats::ConnStats;

/// A user receive operation.
#[derive(Clone, Copy, Debug)]
pub struct RecvOp {
    /// User token, echoed in the completion event.
    pub id: u64,
    /// Virtual address of the registered user buffer.
    pub addr: u64,
    /// Buffer length.
    pub len: u32,
    /// Key of the user buffer's region (lkey == rkey in the simulator).
    pub key: u32,
    /// MSG_WAITALL: complete only when the buffer is full.
    pub waitall: bool,
}

#[derive(Clone, Copy, Debug)]
struct QueuedRecv {
    op: RecvOp,
    filled: u32,
    /// Set when an ADVERT has been sent for this receive: the phase it
    /// was advertised in and its remaining contribution to the
    /// next-expected sequence estimate.
    advert: Option<AdvertMeta>,
}

#[derive(Clone, Copy, Debug)]
struct AdvertMeta {
    phase: Phase,
    estimate: u64,
}

/// Instructions the socket layer executes after feeding the receiver
/// state machine. Ordering matters and must be preserved.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RecvAction {
    /// Send an ADVERT control message to the peer.
    SendAdvert(Advert),
    /// Send an ACK reporting `freed` intermediate-buffer bytes.
    SendAck {
        /// Bytes freed since the last ACK.
        freed: u64,
    },
    /// Copy `len` bytes from the ring region to the user buffer
    /// (charging the host memcpy cost).
    Copy {
        /// Source virtual address inside the ring region.
        src_addr: u64,
        /// Destination virtual address in the user buffer.
        dst_addr: u64,
        /// Destination region key.
        dst_key: u32,
        /// Bytes to copy.
        len: u64,
    },
    /// Deliver a receive-completion event to the user.
    Complete {
        /// User token from [`RecvOp::id`].
        id: u64,
        /// Bytes placed in the user buffer.
        len: u32,
    },
}

/// The local intermediate ring buffer's location.
#[derive(Clone, Copy, Debug)]
pub struct LocalRing {
    /// Base virtual address of the registered ring region.
    pub addr: u64,
    /// Region key.
    pub key: u32,
    /// Capacity in bytes.
    pub capacity: u64,
}

/// Receiver-half protocol state.
pub struct ReceiverHalf {
    mode: ProtocolMode,
    phase: Phase,
    seq: Seq,
    /// Sum of outstanding ADVERT estimate contributions; the
    /// next-expected sequence (`S'_r`) is `seq + pending_estimate`.
    pending_estimate: u64,
    /// Outstanding ADVERTs from a prior phase (`k_a`).
    prior_phase_adverts: u32,
    recvs: VecDeque<QueuedRecv>,
    ring: ReceiverRing,
    local_ring: LocalRing,
    ack_threshold: u64,
    ack_owed: u64,
}

impl ReceiverHalf {
    /// Creates the receiver half owning the given local ring.
    pub fn new(mode: ProtocolMode, local_ring: LocalRing, ack_threshold: u64) -> Self {
        assert!(ack_threshold > 0, "ACK threshold must be positive");
        ReceiverHalf {
            mode,
            phase: Phase::ZERO,
            seq: Seq::ZERO,
            pending_estimate: 0,
            prior_phase_adverts: 0,
            recvs: VecDeque::new(),
            ring: ReceiverRing::new(local_ring.capacity),
            local_ring,
            ack_threshold,
            ack_owed: 0,
        }
    }

    /// Current phase (`P_r`).
    pub fn phase(&self) -> Phase {
        self.phase
    }

    /// Current stream position (`S_r`).
    pub fn seq(&self) -> Seq {
        self.seq
    }

    /// Bytes waiting in the intermediate buffer (`b_r`).
    pub fn buffered(&self) -> u64 {
        self.ring.count()
    }

    /// Outstanding prior-phase ADVERTs (`k_a`).
    pub fn prior_phase_adverts(&self) -> u32 {
        self.prior_phase_adverts
    }

    /// Queued receives not yet advertised (`k_b`).
    pub fn unadvertised(&self) -> usize {
        self.recvs.iter().filter(|r| r.advert.is_none()).count()
    }

    /// Queued receive operations (any state).
    pub fn queue_len(&self) -> usize {
        self.recvs.len()
    }

    /// Handles a user `exs_recv()` call (paper Fig. 3): queue the
    /// receive, satisfy it from the ring if data is waiting, advertise
    /// it if the gate is open.
    pub fn push_recv(&mut self, op: RecvOp, stats: &mut ConnStats, actions: &mut Vec<RecvAction>) {
        assert!(op.len > 0, "zero-length receive");
        self.recvs.push_back(QueuedRecv {
            op,
            filled: 0,
            advert: None,
        });
        self.pump(stats, actions);
    }

    /// Handles an arriving *direct* transfer of `len` bytes (paper
    /// Fig. 4, direct branch). The data is already in the user buffer —
    /// the sender's WWI placed it there; only bookkeeping happens here.
    ///
    /// A direct transfer with no advertised receive to land in, or one
    /// that overfills the advertised buffer, is a protocol violation
    /// the peer can drive — it surfaces as a typed error, not a panic.
    pub fn on_direct(
        &mut self,
        len: u32,
        stats: &mut ConnStats,
        actions: &mut Vec<RecvAction>,
    ) -> Result<(), ProtocolError> {
        let head = self
            .recvs
            .front_mut()
            .ok_or(ProtocolError::DirectWithoutAdvert)?;
        let meta = head.advert.ok_or(ProtocolError::DirectWithoutAdvert)?;
        debug_assert_eq!(
            meta.phase, self.phase,
            "Theorem 1 violated: direct transfer for a prior-phase ADVERT"
        );
        if head.filled.checked_add(len).is_none_or(|f| f > head.op.len) {
            return Err(ProtocolError::DirectOverfill);
        }
        head.filled += len;
        self.seq.advance(len as u64);
        // Replace the estimate with truth.
        if head.op.waitall {
            self.pending_estimate -= len as u64;
            let m = head.advert.as_mut().expect("advert meta present");
            m.estimate -= len as u64;
        } else {
            self.pending_estimate -= meta.estimate;
            head.advert.as_mut().expect("advert meta present").estimate = 0;
        }
        let done = if head.op.waitall {
            head.filled == head.op.len
        } else {
            true
        };
        if done {
            let r = self.recvs.pop_front().expect("head exists");
            stats.recvs_completed += 1;
            stats.bytes_received += r.filled as u64;
            actions.push(RecvAction::Complete {
                id: r.op.id,
                len: r.filled,
            });
        }
        self.pump(stats, actions);
        Ok(())
    }

    /// Handles an arriving *indirect* transfer of `len` bytes (paper
    /// Fig. 4, else branch): advance to an indirect phase if needed
    /// (invalidating outstanding ADVERTs) and account the ring bytes,
    /// then run the copy-out loop.
    ///
    /// A length that would overfill the ring means the peer ignored the
    /// ACK-based flow control — a typed error, not a panic.
    pub fn on_indirect(
        &mut self,
        len: u32,
        stats: &mut ConnStats,
        actions: &mut Vec<RecvAction>,
    ) -> Result<(), ProtocolError> {
        self.ring
            .checked_arrived(len as u64)
            .ok_or(ProtocolError::RingOverflow)?;
        if self.phase.is_direct() {
            self.phase = self.phase.next();
            // Every outstanding ADVERT is now from a prior phase; its
            // receive will be satisfied from the intermediate buffer.
            self.prior_phase_adverts =
                self.recvs.iter().filter(|r| r.advert.is_some()).count() as u32;
        }
        self.pump(stats, actions);
        Ok(())
    }

    /// Cancels a queued receive by user id. Only receives that have not
    /// been advertised and hold no bytes can be cancelled — once an
    /// ADVERT is out, the sender may already be writing into the buffer
    /// (ES-API `exs_cancel` semantics: best-effort, fails for
    /// in-progress operations). Returns true if the receive was removed.
    pub fn cancel_recv(&mut self, id: u64) -> bool {
        let Some(pos) = self.recvs.iter().position(|r| r.op.id == id) else {
            return false;
        };
        let r = &self.recvs[pos];
        if r.advert.is_some() || r.filled > 0 {
            return false;
        }
        self.recvs.remove(pos);
        true
    }

    /// End-of-stream: the peer closed after `S_r` reached its final
    /// sequence number. Every queued receive completes with whatever it
    /// holds (possibly zero bytes); no further ADVERTs are emitted for
    /// them. The socket layer calls this exactly once.
    pub fn flush_eof(&mut self, stats: &mut ConnStats, actions: &mut Vec<RecvAction>) {
        debug_assert!(self.ring.is_empty(), "EOF with data still buffered");
        while let Some(r) = self.recvs.pop_front() {
            if let Some(meta) = r.advert {
                if meta.phase < self.phase {
                    self.prior_phase_adverts -= 1;
                }
                self.pending_estimate -= meta.estimate;
            }
            stats.recvs_completed += 1;
            stats.bytes_received += r.filled as u64;
            actions.push(RecvAction::Complete {
                id: r.op.id,
                len: r.filled,
            });
        }
    }

    /// The copy-out / ACK / advertise engine (paper Fig. 5 plus the
    /// Fig. 3 gate). Runs until no further progress is possible.
    fn pump(&mut self, stats: &mut ConnStats, actions: &mut Vec<RecvAction>) {
        // Fig. 5: satisfy queued receives from the intermediate buffer.
        while !self.ring.is_empty() {
            let Some(head) = self.recvs.front_mut() else {
                break;
            };
            let want = (head.op.len - head.filled) as u64;
            let (offset, n) = self.ring.contiguous_read(want);
            if n == 0 {
                break;
            }
            actions.push(RecvAction::Copy {
                src_addr: self.local_ring.addr + offset,
                dst_addr: head.op.addr + head.filled as u64,
                dst_key: head.op.key,
                len: n,
            });
            self.ring.consume(n);
            head.filled += n as u32;
            self.seq.advance(n);
            self.ack_owed += n;
            stats.bytes_copied_out += n;
            // Estimate correction for advertised (prior-phase) receives.
            if let Some(meta) = head.advert.as_mut() {
                if head.op.waitall {
                    self.pending_estimate -= n;
                    meta.estimate -= n;
                } else {
                    self.pending_estimate -= meta.estimate;
                    meta.estimate = 0;
                }
            }
            let done = if head.op.waitall {
                head.filled == head.op.len
            } else {
                head.filled > 0
            };
            if done {
                let r = self.recvs.pop_front().expect("head exists");
                if let Some(meta) = r.advert {
                    debug_assert!(
                        meta.phase < self.phase,
                        "copy-out satisfied a current-phase ADVERT"
                    );
                    self.prior_phase_adverts -= 1;
                }
                stats.recvs_completed += 1;
                stats.bytes_received += r.filled as u64;
                actions.push(RecvAction::Complete {
                    id: r.op.id,
                    len: r.filled,
                });
            }
        }

        // ACK freed space: on threshold, or always when the buffer just
        // drained (the sender may be blocked on b_s).
        if self.ack_owed > 0 && (self.ack_owed >= self.ack_threshold || self.ring.is_empty()) {
            actions.push(RecvAction::SendAck {
                freed: self.ack_owed,
            });
            stats.acks_sent += 1;
            self.ack_owed = 0;
        }

        // Fig. 3 gate: advertise queued receives only when the buffer is
        // empty and no prior-phase ADVERT is outstanding. Un-advertised
        // receives are always a suffix of the queue, so advertising in
        // iteration order preserves stream order.
        if self.mode.buffered_only() {
            return;
        }
        if !self.ring.is_empty() || self.prior_phase_adverts > 0 {
            return;
        }
        let any_unadvertised = self.recvs.iter().any(|r| r.advert.is_none());
        if !any_unadvertised {
            return;
        }
        if self.phase.is_indirect() {
            // Resynchronize: the next ADVERT sequence starts a new direct
            // phase with an exact sequence number.
            self.phase = self.phase.next();
            debug_assert_eq!(
                self.pending_estimate, 0,
                "estimate must be exact at resynchronization"
            );
        }
        for r in self.recvs.iter_mut() {
            if r.advert.is_some() {
                continue;
            }
            let estimate = if r.op.waitall {
                (r.op.len - r.filled) as u64
            } else {
                1
            };
            let advert = Advert {
                seq: Seq(self.seq.0 + self.pending_estimate),
                phase: self.phase,
                addr: r.op.addr + r.filled as u64,
                len: r.op.len - r.filled,
                rkey: r.op.key,
                waitall: r.op.waitall,
            };
            r.advert = Some(AdvertMeta {
                phase: self.phase,
                estimate,
            });
            self.pending_estimate += estimate;
            stats.adverts_sent += 1;
            actions.push(RecvAction::SendAdvert(advert));
        }
        // Telemetry: after a burst every queued receive is advertised, so
        // the queue length *is* the advert-queue depth — how many
        // pre-posted receives are keeping the Fig. 3 gate open for the
        // sender's next transfer decision.
        stats.sample_advert_queue(self.recvs.len() as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring() -> LocalRing {
        LocalRing {
            addr: 0x800000,
            key: 5,
            capacity: 1000,
        }
    }

    fn half(mode: ProtocolMode) -> (ReceiverHalf, ConnStats, Vec<RecvAction>) {
        (
            ReceiverHalf::new(mode, ring(), 100),
            ConnStats::default(),
            Vec::new(),
        )
    }

    fn op(id: u64, addr: u64, len: u32, waitall: bool) -> RecvOp {
        RecvOp {
            id,
            addr,
            len,
            key: 42,
            waitall,
        }
    }

    fn adverts(actions: &[RecvAction]) -> Vec<Advert> {
        actions
            .iter()
            .filter_map(|a| match a {
                RecvAction::SendAdvert(ad) => Some(*ad),
                _ => None,
            })
            .collect()
    }

    fn completions(actions: &[RecvAction]) -> Vec<(u64, u32)> {
        actions
            .iter()
            .filter_map(|a| match a {
                RecvAction::Complete { id, len } => Some((*id, *len)),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn fresh_recv_is_advertised_immediately() {
        let (mut r, mut st, mut acts) = half(ProtocolMode::Dynamic);
        r.push_recv(op(1, 0x2000, 128, false), &mut st, &mut acts);
        let ads = adverts(&acts);
        assert_eq!(ads.len(), 1);
        assert_eq!(ads[0].seq, Seq(0));
        assert_eq!(ads[0].phase, Phase(0));
        assert_eq!(ads[0].addr, 0x2000);
        assert_eq!(ads[0].len, 128);
        assert!(!ads[0].waitall);
        assert_eq!(r.unadvertised(), 0);
    }

    #[test]
    fn estimate_sequence_numbers_are_monotone() {
        let (mut r, mut st, mut acts) = half(ProtocolMode::Dynamic);
        r.push_recv(op(1, 0x2000, 100, false), &mut st, &mut acts);
        r.push_recv(op(2, 0x3000, 100, true), &mut st, &mut acts);
        r.push_recv(op(3, 0x4000, 100, false), &mut st, &mut acts);
        let ads = adverts(&acts);
        // Non-WAITALL estimates +1, WAITALL estimates its full length.
        assert_eq!(ads[0].seq, Seq(0));
        assert_eq!(ads[1].seq, Seq(1));
        assert_eq!(ads[2].seq, Seq(101));
    }

    #[test]
    fn direct_arrival_completes_non_waitall() {
        let (mut r, mut st, mut acts) = half(ProtocolMode::Dynamic);
        r.push_recv(op(1, 0x2000, 128, false), &mut st, &mut acts);
        acts.clear();
        r.on_direct(50, &mut st, &mut acts).unwrap();
        assert_eq!(completions(&acts), vec![(1, 50)]);
        assert_eq!(r.seq(), Seq(50));
        assert_eq!(r.queue_len(), 0);
        // Estimate is exact again.
        r.push_recv(op(2, 0x3000, 64, false), &mut st, &mut acts);
        assert_eq!(adverts(&acts)[0].seq, Seq(50));
    }

    #[test]
    fn direct_arrivals_fill_waitall_incrementally() {
        let (mut r, mut st, mut acts) = half(ProtocolMode::Dynamic);
        r.push_recv(op(1, 0x2000, 100, true), &mut st, &mut acts);
        acts.clear();
        r.on_direct(40, &mut st, &mut acts).unwrap();
        assert!(completions(&acts).is_empty(), "WAITALL holds until full");
        r.on_direct(60, &mut st, &mut acts).unwrap();
        assert_eq!(completions(&acts), vec![(1, 100)]);
        assert_eq!(r.seq(), Seq(100));
    }

    #[test]
    fn indirect_arrival_switches_phase_and_copies() {
        let (mut r, mut st, mut acts) = half(ProtocolMode::Dynamic);
        r.push_recv(op(1, 0x2000, 128, false), &mut st, &mut acts);
        acts.clear();
        r.on_indirect(50, &mut st, &mut acts).unwrap();
        assert_eq!(r.phase(), Phase(1));
        // Copy from ring offset 0 into the user buffer, then complete.
        assert_eq!(
            acts[0],
            RecvAction::Copy {
                src_addr: ring().addr,
                dst_addr: 0x2000,
                dst_key: 42,
                len: 50
            }
        );
        assert_eq!(completions(&acts), vec![(1, 50)]);
        // Buffer drained → ACK sent immediately.
        assert!(acts
            .iter()
            .any(|a| matches!(a, RecvAction::SendAck { freed: 50 })));
        assert_eq!(r.seq(), Seq(50));
        assert_eq!(r.prior_phase_adverts(), 0);
    }

    #[test]
    fn resync_advertises_with_exact_seq_and_next_phase() {
        let (mut r, mut st, mut acts) = half(ProtocolMode::Dynamic);
        r.push_recv(op(1, 0x2000, 128, false), &mut st, &mut acts);
        acts.clear();
        r.on_indirect(50, &mut st, &mut acts).unwrap(); // completes recv 1, phase 1
        acts.clear();
        // Next recv: buffer empty, no prior adverts → advertise in phase 2
        // with the exact sequence 50.
        r.push_recv(op(2, 0x3000, 64, false), &mut st, &mut acts);
        let ads = adverts(&acts);
        assert_eq!(ads.len(), 1);
        assert_eq!(ads[0].phase, Phase(2));
        assert_eq!(ads[0].seq, Seq(50));
    }

    #[test]
    fn gate_blocks_adverts_while_buffer_nonempty() {
        let (mut r, mut st, mut acts) = half(ProtocolMode::Dynamic);
        // Indirect data arrives with no receive posted: it waits in the
        // ring.
        r.on_indirect(200, &mut st, &mut acts).unwrap();
        assert!(adverts(&acts).is_empty());
        assert_eq!(r.buffered(), 200);
        acts.clear();
        // A receive arrives: satisfied from the ring, not advertised.
        r.push_recv(op(1, 0x2000, 80, false), &mut st, &mut acts);
        assert_eq!(completions(&acts), vec![(1, 80)]);
        assert!(adverts(&acts).is_empty());
        assert_eq!(r.buffered(), 120);
        acts.clear();
        // Another receive drains the rest; still 120 > 0 when pushed, so
        // it is satisfied from the ring; after draining, the gate opens
        // for *subsequent* receives.
        r.push_recv(op(2, 0x3000, 200, false), &mut st, &mut acts);
        assert_eq!(completions(&acts), vec![(2, 120)]);
        acts.clear();
        r.push_recv(op(3, 0x4000, 64, false), &mut st, &mut acts);
        let ads = adverts(&acts);
        assert_eq!(ads.len(), 1);
        assert_eq!(ads[0].seq, Seq(200));
        assert_eq!(ads[0].phase, Phase(2));
    }

    #[test]
    fn prior_phase_adverts_block_new_adverts() {
        let (mut r, mut st, mut acts) = half(ProtocolMode::Dynamic);
        // Three advertised receives.
        r.push_recv(op(1, 0x2000, 100, false), &mut st, &mut acts);
        r.push_recv(op(2, 0x3000, 100, false), &mut st, &mut acts);
        r.push_recv(op(3, 0x4000, 100, false), &mut st, &mut acts);
        acts.clear();
        // An indirect transfer invalidates them (k_a = 3) and satisfies
        // only the first (40 bytes).
        r.on_indirect(40, &mut st, &mut acts).unwrap();
        assert_eq!(r.prior_phase_adverts(), 2);
        assert_eq!(completions(&acts), vec![(1, 40)]);
        acts.clear();
        // A new receive must NOT be advertised: prior-phase adverts
        // outstanding (Fig. 7 fix).
        r.push_recv(op(4, 0x5000, 100, false), &mut st, &mut acts);
        assert!(adverts(&acts).is_empty());
        assert_eq!(r.unadvertised(), 1);
        acts.clear();
        // More indirect data satisfies receives 2 and 3 (k_a → 0) and
        // then 4, after which the gate reopens for receive 5.
        r.on_indirect(300, &mut st, &mut acts).unwrap();
        assert_eq!(completions(&acts), vec![(2, 100), (3, 100), (4, 100)]);
        assert_eq!(r.prior_phase_adverts(), 0);
        acts.clear();
        r.push_recv(op(5, 0x6000, 64, false), &mut st, &mut acts);
        let ads = adverts(&acts);
        assert_eq!(ads.len(), 1);
        assert_eq!(ads[0].seq, Seq(340));
        assert_eq!(ads[0].phase, Phase(2));
    }

    #[test]
    fn waitall_recv_waits_for_full_buffer_via_ring() {
        let (mut r, mut st, mut acts) = half(ProtocolMode::Dynamic);
        r.on_indirect(30, &mut st, &mut acts).unwrap();
        acts.clear();
        r.push_recv(op(1, 0x2000, 100, true), &mut st, &mut acts);
        assert!(completions(&acts).is_empty(), "30 of 100 bytes so far");
        acts.clear();
        r.on_indirect(70, &mut st, &mut acts).unwrap();
        assert_eq!(completions(&acts), vec![(1, 100)]);
    }

    #[test]
    fn ack_threshold_batches() {
        let (mut r, mut st, mut acts) = half(ProtocolMode::Dynamic);
        // Fill the ring with 400 bytes; no receives posted yet.
        r.on_indirect(400, &mut st, &mut acts).unwrap();
        acts.clear();
        // Drain 30 bytes: below the threshold (100) and ring non-empty →
        // no ACK yet.
        r.push_recv(op(1, 0x2000, 30, false), &mut st, &mut acts);
        assert!(!acts.iter().any(|a| matches!(a, RecvAction::SendAck { .. })));
        acts.clear();
        // Drain 90 more: cumulative 120 ≥ 100 → ACK for 120.
        r.push_recv(op(2, 0x3000, 90, false), &mut st, &mut acts);
        assert!(acts
            .iter()
            .any(|a| matches!(a, RecvAction::SendAck { freed: 120 })));
    }

    #[test]
    fn indirect_only_never_advertises() {
        let (mut r, mut st, mut acts) = half(ProtocolMode::IndirectOnly);
        r.push_recv(op(1, 0x2000, 100, false), &mut st, &mut acts);
        assert!(adverts(&acts).is_empty());
        assert_eq!(st.adverts_sent, 0);
        // Data still flows through the ring.
        r.on_indirect(100, &mut st, &mut acts).unwrap();
        assert_eq!(completions(&acts), vec![(1, 100)]);
    }

    #[test]
    fn ring_wrap_produces_two_copies() {
        let (mut r, mut st, mut acts) = half(ProtocolMode::IndirectOnly);
        // Advance the ring cursor to 900.
        r.on_indirect(900, &mut st, &mut acts).unwrap();
        r.push_recv(op(1, 0x2000, 900, true), &mut st, &mut acts);
        acts.clear();
        // 200 more bytes: 100 before the wrap, 100 after.
        r.on_indirect(200, &mut st, &mut acts).unwrap();
        r.push_recv(op(2, 0x9000, 200, true), &mut st, &mut acts);
        let copies: Vec<_> = acts
            .iter()
            .filter_map(|a| match a {
                RecvAction::Copy { src_addr, len, .. } => Some((*src_addr - ring().addr, *len)),
                _ => None,
            })
            .collect();
        assert_eq!(copies, vec![(900, 100), (0, 100)]);
        assert_eq!(completions(&acts), vec![(2, 200)]);
    }

    #[test]
    fn direct_without_recv_is_typed_error() {
        let (mut r, mut st, mut acts) = half(ProtocolMode::Dynamic);
        assert_eq!(
            r.on_direct(10, &mut st, &mut acts),
            Err(ProtocolError::DirectWithoutAdvert)
        );
    }

    #[test]
    fn direct_overfill_is_typed_error() {
        let (mut r, mut st, mut acts) = half(ProtocolMode::Dynamic);
        r.push_recv(op(1, 0x2000, 64, false), &mut st, &mut acts);
        assert_eq!(
            r.on_direct(65, &mut st, &mut acts),
            Err(ProtocolError::DirectOverfill)
        );
    }

    #[test]
    fn indirect_ring_overflow_is_typed_error() {
        let (mut r, mut st, mut acts) = half(ProtocolMode::Dynamic);
        r.on_indirect(1000, &mut st, &mut acts).unwrap();
        assert_eq!(
            r.on_indirect(1, &mut st, &mut acts),
            Err(ProtocolError::RingOverflow)
        );
        // State is untouched by the rejected arrival.
        assert_eq!(r.buffered(), 1000);
    }

    #[test]
    fn flush_eof_completes_queued_recvs_with_fill_state() {
        let (mut r, mut st, mut acts) = half(ProtocolMode::Dynamic);
        // One advertised WAITALL receive partially filled, one
        // un-advertised receive behind it.
        r.push_recv(op(1, 0x2000, 100, true), &mut st, &mut acts);
        acts.clear();
        r.on_direct(40, &mut st, &mut acts).unwrap();
        assert!(completions(&acts).is_empty());
        r.push_recv(op(2, 0x3000, 50, false), &mut st, &mut acts);
        acts.clear();

        r.flush_eof(&mut st, &mut acts);
        assert_eq!(completions(&acts), vec![(1, 40), (2, 0)]);
        assert_eq!(r.queue_len(), 0);
        assert_eq!(r.prior_phase_adverts(), 0);
        // Estimates are fully retired: the next advert is exact again.
        acts.clear();
        r.push_recv(op(3, 0x4000, 10, false), &mut st, &mut acts);
        assert_eq!(adverts(&acts)[0].seq, r.seq());
    }

    #[test]
    fn advert_queue_depth_is_sampled_per_burst() {
        let (mut r, mut st, mut acts) = half(ProtocolMode::Dynamic);
        r.push_recv(op(1, 0x2000, 100, false), &mut st, &mut acts);
        r.push_recv(op(2, 0x3000, 100, false), &mut st, &mut acts);
        r.push_recv(op(3, 0x4000, 100, false), &mut st, &mut acts);
        assert_eq!(st.advert_queue_peak, 3);
        assert_eq!(st.advert_queue_samples, 3);
        assert!((st.advert_queue_mean() - 2.0).abs() < 1e-12, "1, 2, 3");
    }

    #[test]
    fn flush_eof_on_empty_queue_is_noop() {
        let (mut r, mut st, mut acts) = half(ProtocolMode::Dynamic);
        r.flush_eof(&mut st, &mut acts);
        assert!(acts.is_empty());
    }
}
