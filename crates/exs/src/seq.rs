//! Stream sequence numbers.
//!
//! A sequence number is the byte position of a transfer in the stream:
//! "the sequence number of transfer *x* is the number of data bytes sent
//! on the connection prior to the start of transfer *x*" (paper §II-B).
//! ADVERTs carry *estimated* sequence numbers for future receives; the
//! estimates are corrected as data actually arrives so that, whenever
//! both sides quiesce, the estimate equals the true position again.

/// A byte position in the stream.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct Seq(pub u64);

impl Seq {
    /// Stream start.
    pub const ZERO: Seq = Seq(0);

    /// Advances by `n` bytes.
    #[inline]
    pub fn advance(&mut self, n: u64) {
        self.0 = self
            .0
            .checked_add(n)
            .expect("stream sequence number overflow");
    }

    /// The position `n` bytes later.
    #[inline]
    pub fn plus(self, n: u64) -> Seq {
        Seq(self.0.checked_add(n).expect("stream sequence overflow"))
    }

    /// Byte distance from `earlier` to `self` (panics if negative).
    ///
    /// Only for distances between *locally maintained* positions, where
    /// a negative distance is a programming error. Distances involving
    /// any peer-supplied sequence number must go through
    /// [`Seq::checked_distance_from`] — a malformed peer must surface a
    /// protocol error, not abort the process.
    #[inline]
    pub fn distance_from(self, earlier: Seq) -> u64 {
        self.0
            .checked_sub(earlier.0)
            .expect("sequence distance underflow")
    }

    /// Byte distance from `earlier` to `self`, or `None` when `earlier`
    /// is actually ahead. The non-panicking variant for validating
    /// sequence numbers that arrived off the wire (ADVERT/FIN/ACK
    /// control paths).
    #[inline]
    pub fn checked_distance_from(self, earlier: Seq) -> Option<u64> {
        self.0.checked_sub(earlier.0)
    }
}

impl std::fmt::Display for Seq {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "S{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn advance_and_plus() {
        let mut s = Seq::ZERO;
        s.advance(10);
        assert_eq!(s, Seq(10));
        assert_eq!(s.plus(5), Seq(15));
        assert_eq!(s, Seq(10), "plus does not mutate");
    }

    #[test]
    fn distance() {
        assert_eq!(Seq(30).distance_from(Seq(12)), 18);
        assert_eq!(Seq(5).distance_from(Seq(5)), 0);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn negative_distance_panics() {
        let _ = Seq(1).distance_from(Seq(2));
    }

    #[test]
    fn checked_distance_is_total() {
        assert_eq!(Seq(30).checked_distance_from(Seq(12)), Some(18));
        assert_eq!(Seq(5).checked_distance_from(Seq(5)), Some(0));
        assert_eq!(Seq(1).checked_distance_from(Seq(2)), None);
    }

    #[test]
    fn ordering() {
        assert!(Seq(1) < Seq(2));
        assert_eq!(format!("{}", Seq(42)), "S42");
    }
}
