//! Intermediate circular buffer bookkeeping.
//!
//! The hidden receive-side buffer is a circular byte buffer living in a
//! registered memory region at the receiver. The *contents* are moved by
//! RDMA (sender WWIs in, receiver copies out); this module provides the
//! index arithmetic both ends share:
//!
//! * the **sender** keeps a write cursor and a free-space count `b_s`,
//!   decremented as it issues indirect transfers and replenished by ACKs
//!   (paper §III);
//! * the **receiver** keeps a read cursor and a fill count `b_r`,
//!   incremented by arriving indirect transfers and decremented as it
//!   copies data to user buffers (paper Fig. 5).
//!
//! Because the channel is FIFO and both sides apply the same arithmetic
//! in the same order, the cursors never need to be exchanged — only byte
//! *counts* travel (in WWI immediates and ACKs).

/// Sender-side view: free space and the next write position.
#[derive(Clone, Debug)]
pub struct SenderRing {
    capacity: u64,
    write_pos: u64,
    free: u64,
}

impl SenderRing {
    /// A ring of `capacity` bytes, initially empty (all free).
    pub fn new(capacity: u64) -> Self {
        assert!(capacity > 0, "ring capacity must be positive");
        SenderRing {
            capacity,
            write_pos: 0,
            free: capacity,
        }
    }

    /// Total capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Current free bytes (`b_s`).
    pub fn free(&self) -> u64 {
        self.free
    }

    /// Bytes the peer still holds (in flight or unconsumed).
    pub fn in_use(&self) -> u64 {
        self.capacity - self.free
    }

    /// The largest chunk that can be written *contiguously* right now:
    /// bounded by free space and by the distance to the wrap point.
    /// Returns `(ring_offset, len)` with `len == 0` when full.
    pub fn contiguous_reservation(&self, want: u64) -> (u64, u64) {
        let to_wrap = self.capacity - self.write_pos;
        let len = want.min(self.free).min(to_wrap);
        (self.write_pos, len)
    }

    /// Commits a reservation previously computed by
    /// [`SenderRing::contiguous_reservation`].
    pub fn commit(&mut self, len: u64) {
        assert!(len <= self.free, "ring over-commit");
        assert!(
            len <= self.capacity - self.write_pos,
            "commit crosses the wrap point"
        );
        self.free -= len;
        self.write_pos = (self.write_pos + len) % self.capacity;
    }

    /// Applies an ACK: the receiver freed `n` bytes.
    ///
    /// Panics on over-release; `n` must come from locally maintained
    /// state. ACK counts taken off the wire go through
    /// [`SenderRing::checked_release`] instead.
    pub fn release(&mut self, n: u64) {
        self.checked_release(n)
            .expect("ACK released more bytes than were in use");
    }

    /// Applies an ACK, rejecting peer-supplied counts that would free
    /// more bytes than are in use (flow-control violation).
    pub fn checked_release(&mut self, n: u64) -> Option<()> {
        let free = self.free.checked_add(n).filter(|&f| f <= self.capacity)?;
        self.free = free;
        Some(())
    }
}

/// Receiver-side view: fill count and the next read position.
#[derive(Clone, Debug)]
pub struct ReceiverRing {
    capacity: u64,
    read_pos: u64,
    count: u64,
}

impl ReceiverRing {
    /// A ring of `capacity` bytes, initially empty.
    pub fn new(capacity: u64) -> Self {
        assert!(capacity > 0, "ring capacity must be positive");
        ReceiverRing {
            capacity,
            read_pos: 0,
            count: 0,
        }
    }

    /// Total capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Filled bytes awaiting copy-out (`b_r`).
    pub fn count(&self) -> u64 {
        self.count
    }

    /// True when no data awaits copy-out.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Records the arrival of an indirect transfer of `n` bytes.
    ///
    /// Panics on overfill; arrival counts taken off the wire go through
    /// [`ReceiverRing::checked_arrived`] instead.
    pub fn arrived(&mut self, n: u64) {
        self.checked_arrived(n)
            .expect("indirect transfer overfilled the intermediate buffer");
    }

    /// Records an arrival, rejecting peer-supplied lengths that would
    /// overfill the ring (flow-control violation).
    pub fn checked_arrived(&mut self, n: u64) -> Option<()> {
        let count = self.count.checked_add(n).filter(|&c| c <= self.capacity)?;
        self.count = count;
        Some(())
    }

    /// The largest chunk readable *contiguously* right now:
    /// `(ring_offset, len)` bounded by the fill count and the wrap point.
    pub fn contiguous_read(&self, want: u64) -> (u64, u64) {
        let to_wrap = self.capacity - self.read_pos;
        let len = want.min(self.count).min(to_wrap);
        (self.read_pos, len)
    }

    /// Consumes `len` bytes previously returned by
    /// [`ReceiverRing::contiguous_read`].
    pub fn consume(&mut self, len: u64) {
        assert!(len <= self.count, "ring under-flow on consume");
        assert!(
            len <= self.capacity - self.read_pos,
            "consume crosses the wrap point"
        );
        self.count -= len;
        self.read_pos = (self.read_pos + len) % self.capacity;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sender_reserve_commit_release_cycle() {
        let mut r = SenderRing::new(100);
        assert_eq!(r.free(), 100);
        let (off, len) = r.contiguous_reservation(40);
        assert_eq!((off, len), (0, 40));
        r.commit(40);
        assert_eq!(r.free(), 60);
        assert_eq!(r.in_use(), 40);
        r.release(40);
        assert_eq!(r.free(), 100);
    }

    #[test]
    fn sender_wrap_splits_reservation() {
        let mut r = SenderRing::new(100);
        r.commit(r.contiguous_reservation(90).1); // write_pos = 90
        r.release(90); // all free again, cursor at 90
        let (off, len) = r.contiguous_reservation(50);
        assert_eq!((off, len), (90, 10), "bounded by the wrap point");
        r.commit(10);
        let (off, len) = r.contiguous_reservation(40);
        assert_eq!((off, len), (0, 40), "continues at the start");
    }

    #[test]
    fn sender_full_yields_zero() {
        let mut r = SenderRing::new(10);
        r.commit(10);
        assert_eq!(r.contiguous_reservation(1).1, 0);
    }

    #[test]
    fn sender_split_free_space_clamps_to_wrap_not_free() {
        // Free space exists on both sides of the wrap point (20 bytes
        // in front of the cursor, 30 reclaimed at the start). A want
        // larger than the tail segment must clamp to the wrap distance
        // — handing out min(want, free) would cross the wrap and
        // corrupt the bytes at offset 0.
        let mut r = SenderRing::new(100);
        r.commit(80); // cursor at 80
        r.release(30); // 30 freed at the start; 20 never used at the tail
        assert_eq!(r.free(), 50);
        let (off, len) = r.contiguous_reservation(50);
        assert_eq!((off, len), (80, 20), "clamped to to_wrap, not free");
        r.commit(len);
        // After wrapping, the remaining 30 free bytes are contiguous at
        // the start.
        let (off, len) = r.contiguous_reservation(50);
        assert_eq!((off, len), (0, 30));
    }

    #[test]
    fn sender_full_ring_at_nonzero_cursor_yields_cursor_and_zero() {
        // Fill in two steps so the cursor wraps to a non-zero position,
        // then drain-and-refill to make the ring exactly full with the
        // cursor mid-ring: the reservation must be (cursor, 0), not
        // (0, 0) — callers use the offset even for len == 0 probes.
        let mut r = SenderRing::new(100);
        r.commit(60);
        r.release(60);
        r.commit(40); // cursor wrapped to 0
        r.commit(60); // cursor at 60, ring exactly full
        assert_eq!(r.free(), 0);
        assert_eq!(r.contiguous_reservation(1), (60, 0));
        // A zero want on a full ring is the same degenerate case.
        assert_eq!(r.contiguous_reservation(0), (60, 0));
        // Releasing even one byte re-opens exactly that byte at the
        // cursor (free = 1, to_wrap = 40).
        r.release(1);
        assert_eq!(r.contiguous_reservation(8), (60, 1));
    }

    #[test]
    #[should_panic(expected = "over-commit")]
    fn sender_over_commit_panics() {
        let mut r = SenderRing::new(10);
        r.commit(11);
    }

    #[test]
    #[should_panic(expected = "more bytes than were in use")]
    fn sender_over_release_panics() {
        let mut r = SenderRing::new(10);
        r.release(1);
    }

    #[test]
    fn receiver_arrive_read_consume_cycle() {
        let mut r = ReceiverRing::new(100);
        assert!(r.is_empty());
        r.arrived(30);
        assert_eq!(r.count(), 30);
        let (off, len) = r.contiguous_read(100);
        assert_eq!((off, len), (0, 30));
        r.consume(20);
        assert_eq!(r.count(), 10);
        let (off, len) = r.contiguous_read(100);
        assert_eq!((off, len), (20, 10));
    }

    #[test]
    fn receiver_wrap_splits_read() {
        let mut r = ReceiverRing::new(100);
        r.arrived(90);
        r.consume(90); // read_pos = 90
        r.arrived(50);
        let (off, len) = r.contiguous_read(50);
        assert_eq!((off, len), (90, 10));
        r.consume(10);
        let (off, len) = r.contiguous_read(50);
        assert_eq!((off, len), (0, 40));
    }

    #[test]
    #[should_panic(expected = "overfilled")]
    fn receiver_overfill_panics() {
        let mut r = ReceiverRing::new(10);
        r.arrived(11);
    }

    #[test]
    fn sender_and_receiver_cursors_stay_aligned() {
        // Simulate the distributed protocol: every sender commit becomes
        // a receiver arrival (FIFO); every receiver consume becomes a
        // sender release. Offsets must always agree.
        let mut s = SenderRing::new(64);
        let mut r = ReceiverRing::new(64);
        let mut rng = 2654435761u64;
        let mut next = move || {
            rng = rng.wrapping_mul(6364136223846793005).wrapping_add(1);
            (rng >> 33) % 20 + 1
        };
        let mut expected_write = 0u64;
        for _ in 0..10_000 {
            let want = next();
            let (off, len) = s.contiguous_reservation(want);
            if len > 0 {
                assert_eq!(off, expected_write);
                s.commit(len);
                r.arrived(len);
                expected_write = (expected_write + len) % 64;
            }
            // Receiver drains some.
            let drain = next();
            let (_, rlen) = r.contiguous_read(drain);
            if rlen > 0 {
                r.consume(rlen);
                s.release(rlen);
            }
            assert_eq!(s.in_use(), r.count(), "counts agree in lockstep");
        }
    }
}
