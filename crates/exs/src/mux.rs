//! Shared-transport multiplexing: many EXS streams over a pooled QP set.
//!
//! The QP-per-stream shape of [`crate::stream::StreamSocket`] hits the
//! classic RDMA scalability wall: every stream pays a private SQ/RQ
//! ring, CQ slots, a pinned intermediate ring and a pinned control-slot
//! region, so per-node memory grows linearly with stream count and the
//! HCA's QP context cache thrashes. A [`MuxEndpoint`] instead rides all
//! streams to one peer node on a small pool of shared QPs
//! ([`crate::config::MuxConfig::qp_pool_size`], default 4):
//!
//! * the 32-bit WWI immediate carries the **stream id** (top bit =
//!   indirect placement); the chunk length travels in the completion's
//!   `byte_len` — see [`crate::messages::encode_mux_imm`];
//! * control messages are stream-tagged [`MuxCtrlMsg`]s;
//! * each pooled transport owns **one** intermediate ring and **one**
//!   credit window, shared by every stream assigned to its slot; both
//!   ends mirror the ring cursor deterministically (FIFO channel), so
//!   only byte counts travel;
//! * per-stream state shrinks to one cache-friendly `MuxStream`
//!   struct — no private rings, no private WQE slots — which is what
//!   makes 100k streams per node affordable (see
//!   [`MuxEndpoint::memory_footprint`]).
//!
//! # Per-stream protocol: the exact-seq advert rule
//!
//! The phase machinery of the single-stream protocol exists to
//! disambiguate *which* adverts a sender may still trust after mode
//! switches. The mux path replaces it with a simpler invariant that
//! needs no phases at all:
//!
//! * the receiver keeps **at most one advert outstanding per stream**,
//!   emitted only when the stream has no buffered ring bytes and a
//!   receive is queued; the advert's `seq` is the stream's delivered
//!   byte count;
//! * the sender accepts an advert iff `advert.seq == send_seq`
//!   **exactly** — the receiver has provably consumed every byte the
//!   sender ever dispatched, so zero-copy placement cannot race any
//!   in-flight indirect data. `advert.seq < send_seq` means data was in
//!   flight when the advert was emitted: the advert is stale and is
//!   discarded (the receiver will observe that data arrive, void the
//!   advert, and re-advertise). `advert.seq > send_seq` is impossible
//!   for a correct peer and surfaces as [`ProtocolError::BadAdvert`].
//!
//! While the sender holds a grant it sends **only** direct chunks, so
//! the receiver's "void the live advert when indirect data arrives"
//! rule never kills a grant the sender is actually using.
//!
//! # Flow control layering
//!
//! Three independent controls compose:
//!
//! 1. **receive credits** (transport): every WWI or control SEND
//!    consumes one pre-posted 64-byte receive slot, returned
//!    piggybacked on control traffic — identical to the single-stream
//!    socket;
//! 2. **shared-ring space** (transport): indirect bytes reserve space
//!    on the send-side ring mirror; the receiver frees space only as
//!    the fully-copied *prefix* of the chunk FIFO pops, and returns it
//!    in transport-scoped ACKs (stream id [`STREAM_NONE`]);
//! 3. **per-stream windows** (stream): un-ACKed indirect bytes per
//!    stream are capped ([`crate::config::MuxConfig::stream_window`]),
//!    so one firehose stream cannot monopolize the shared ring;
//!    returns travel as stream-tagged ACKs.
//!
//! The sender pumps streams round-robin, one chunk per stream per
//! round, so fairness under contention is structural.

use std::collections::{HashMap, HashSet, VecDeque};

use rdma_verbs::{
    connect_pool, Access, CqId, Cqe, MrInfo, MrKey, NodeId, QpCaps, QpNum, RecvWr, RemoteAddr,
    SendWr, Sge, SimNet, WcOpcode, WcStatus,
};

use crate::buffer::SenderRing;
use crate::config::ExsConfig;
use crate::error::{ExsError, ProtocolError};
use crate::messages::{
    decode_mux_imm, encode_mux_imm, Advert, Ctrl, CtrlMsg, MuxCtrlMsg, TransferKind, CTRL_MSG_LEN,
    MAX_MUX_STREAM, STREAM_NONE,
};
use crate::phase::Phase;
use crate::port::VerbsPort;
use crate::seq::Seq;
use crate::stats::ConnStats;
use crate::stream::CTRL_SLOT;
use crate::txpipe::TxPipe;

/// Credits kept in reserve so a CREDIT message can always be sent.
const CREDIT_RESERVE: u32 = 1;

/// Modeled bytes per SQ/RQ/CQ slot in the deterministic memory
/// accounting (a WQE or CQE context entry; real HCAs use 64-byte
/// strides for both).
pub const WQE_SLOT_BYTES: u64 = 64;

/// Completion events delivered to the application by a [`MuxEndpoint`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MuxEvent {
    /// A `mux_send` finished: every byte left the user buffer.
    SendComplete {
        /// Stream the send belonged to.
        stream: u32,
        /// User token passed to `mux_send`.
        id: u64,
        /// Total bytes sent.
        len: u64,
    },
    /// A `mux_recv` finished: `len` bytes are in the user buffer
    /// (`len == 0` after the peer closed the stream means end-of-stream).
    RecvComplete {
        /// Stream the receive belonged to.
        stream: u32,
        /// User token passed to `mux_recv`.
        id: u64,
        /// Bytes delivered.
        len: u32,
    },
    /// Both directions of the stream have fully closed; its state has
    /// been reclaimed and the id retired.
    StreamClosed {
        /// The closed stream.
        stream: u32,
    },
    /// A pooled transport failed (QP error or peer protocol violation).
    /// Every stream assigned to its slot is dead.
    TransportError {
        /// Pool slot of the failed transport.
        slot: usize,
    },
}

/// Transport parameters one side shares with its peer when a pool slot
/// is established (the mux analogue of the per-socket `SetupInfo`).
#[derive(Clone, Copy, Debug)]
pub struct MuxPeerInfo {
    ring_addr: u64,
    ring_rkey: u32,
    ring_capacity: u64,
    credits: u32,
}

/// An accepted advert: permission to RDMA WRITE directly into the
/// peer's posted receive buffer.
#[derive(Clone, Copy, Debug)]
struct MuxGrant {
    addr: u64,
    len: u32,
    rkey: u32,
    waitall: bool,
    filled: u32,
}

/// One queued `mux_send`.
#[derive(Debug)]
struct MuxSend {
    id: u64,
    addr: u64,
    len: u64,
    key: MrKey,
    dispatched: u64,
}

/// One queued `mux_recv`.
#[derive(Debug)]
struct MuxRecvOp {
    id: u64,
    addr: u64,
    len: u32,
    key: u32,
    waitall: bool,
    filled: u32,
}

/// One indirect arrival parked in the shared ring, awaiting copy-out.
/// Chunks pop off the transport FIFO only once fully copied, which is
/// when their ring bytes become free — out-of-order copy-out is fine,
/// out-of-order *freeing* would desynchronize the ring mirrors.
#[derive(Debug)]
struct MuxChunk {
    stream: u32,
    offset: u64,
    len: u64,
    copied: u64,
}

/// Liveness tracking for one dispatched `mux_send`.
struct SendTrack {
    len: u64,
    outstanding: u32,
    dispatched_all: bool,
}

/// All per-stream state. This struct (plus its empty queues) is the
/// entire marginal cost of one more stream on a shared transport — no
/// ring, no WQE slots, no pinned control region.
struct MuxStream {
    /// Bytes dispatched into this stream's send direction.
    send_seq: u64,
    /// Bytes delivered to user receive buffers.
    recv_seq: u64,
    sends: VecDeque<MuxSend>,
    recvs: VecDeque<MuxRecvOp>,
    /// Transport chunk ids (FIFO) holding this stream's buffered bytes.
    chunk_ids: VecDeque<u64>,
    /// Ring bytes buffered for this stream and not yet copied out.
    buffered: u64,
    /// Un-ACKed indirect bytes in flight through the shared ring.
    window_out: u64,
    /// Copied-out bytes not yet returned to the peer's window.
    owed_window: u64,
    /// Direct-placement permission from an accepted advert.
    grant: Option<MuxGrant>,
    /// One advert is outstanding for the head receive.
    advert_live: bool,
    /// This stream sits in its transport's round-robin send queue.
    in_send_queue: bool,
    /// Dispatched sends whose completion has not yet been reported.
    live_sends: u32,
    send_closed: bool,
    fin_queued: bool,
    peer_fin: Option<u64>,
    eof_delivered: bool,
}

impl MuxStream {
    fn new() -> MuxStream {
        MuxStream {
            send_seq: 0,
            recv_seq: 0,
            sends: VecDeque::new(),
            recvs: VecDeque::new(),
            chunk_ids: VecDeque::new(),
            buffered: 0,
            window_out: 0,
            owed_window: 0,
            grant: None,
            advert_live: false,
            in_send_queue: false,
            live_sends: 0,
            send_closed: false,
            fin_queued: false,
            peer_fin: None,
            eof_delivered: false,
        }
    }
}

/// One pooled QP with the shared resources every assigned stream rides.
struct MuxTransport {
    qpn: QpNum,
    ring_mr: MrInfo,
    ctrl_mr: MrInfo,
    /// Peer parameters exchanged; sending is gated until then.
    connected: bool,
    peer_ring_addr: u64,
    peer_ring_rkey: u32,
    /// Send-side mirror of the peer's shared ring.
    send_mirror: SenderRing,
    /// Receive-side mirror of the *local* ring as the peer's sender
    /// cursor sees it (arrival commits, prefix frees release).
    recv_mirror: SenderRing,
    /// Indirect arrivals in FIFO order; ids are `chunk_base + index`.
    chunks: VecDeque<MuxChunk>,
    chunk_base: u64,
    /// Ring bytes freed by prefix pops, not yet ACKed to the peer.
    owed_ring: u64,
    peer_credits: u32,
    owed_credits: u32,
    pending_ctrl: VecDeque<(u32, Ctrl)>,
    tx: TxPipe,
    next_wr: u64,
    /// Data WQEs awaiting retirement in posting order; one signaled CQE
    /// retires the whole prefix (RC FIFO).
    wwi_owner: VecDeque<(u64, (u32, u64))>,
    inflight: HashMap<(u32, u64), SendTrack>,
    /// Streams with dispatchable sends, pumped round-robin.
    sendable: VecDeque<u32>,
    broken: bool,
}

/// A multiplexing endpoint: all EXS streams from this node to one peer
/// node, carried by a lazily-established pool of shared QPs.
///
/// Stream-to-slot assignment is a pure function of the stream id
/// ([`crate::config::MuxAssignment`]), so both ends agree without any
/// coordination message; a slot's transport is established only when
/// the first stream assigned to it appears (see
/// [`MuxEndpoint::pending_slots`]).
pub struct MuxEndpoint {
    node: NodeId,
    cfg: ExsConfig,
    cqs: Option<(CqId, CqId)>,
    transports: Vec<Option<MuxTransport>>,
    by_qpn: HashMap<QpNum, usize>,
    streams: HashMap<u32, MuxStream>,
    closed: HashSet<u32>,
    events: Vec<MuxEvent>,
    stats: ConnStats,
    last_error: Option<ExsError>,
}

impl MuxEndpoint {
    /// A new endpoint on `node`. Constructing one opts into
    /// multiplexing, so the config is validated with `mux.enabled`
    /// forced on (in particular [`crate::config::WwiMode::Native`] is
    /// required: the immediate carries the stream id).
    pub fn new(node: NodeId, cfg: &ExsConfig) -> MuxEndpoint {
        let mut cfg = cfg.clone();
        cfg.mux.enabled = true;
        cfg.validate().expect("invalid EXS mux configuration");
        let pool = cfg.mux.qp_pool_size;
        MuxEndpoint {
            node,
            cfg,
            cqs: None,
            transports: (0..pool).map(|_| None).collect(),
            by_qpn: HashMap::new(),
            streams: HashMap::new(),
            closed: HashSet::new(),
            events: Vec::new(),
            stats: ConnStats::default(),
            last_error: None,
        }
    }

    /// This endpoint's node.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// The endpoint's configuration (with `mux.enabled` forced on).
    pub fn config(&self) -> &ExsConfig {
        &self.cfg
    }

    /// Streams currently open.
    pub fn streams_open(&self) -> usize {
        self.streams.len()
    }

    /// Pool transports established so far.
    pub fn transports_active(&self) -> usize {
        self.transports.iter().flatten().count()
    }

    /// Protocol statistics, aggregated over the whole pool.
    pub fn stats(&self) -> &ConnStats {
        &self.stats
    }

    /// The typed error behind the most recent transport failure, when
    /// one was attributable.
    pub fn last_error(&self) -> Option<&ExsError> {
        self.last_error.as_ref()
    }

    /// Takes the accumulated user events.
    pub fn take_events(&mut self) -> Vec<MuxEvent> {
        std::mem::take(&mut self.events)
    }

    /// The shared CQ pair every pooled transport completes onto, once
    /// established.
    pub fn cqs(&self) -> Option<(CqId, CqId)> {
        self.cqs
    }

    /// Pins the endpoint to an existing `(send_cq, recv_cq)` pair
    /// before any transport is established — the reactor-hosting shape,
    /// where the event loop owns the CQs. Panics if a transport already
    /// fixed a different pair.
    pub fn set_cqs(&mut self, send_cq: CqId, recv_cq: CqId) {
        match self.cqs {
            None => self.cqs = Some((send_cq, recv_cq)),
            Some(cqs) => assert_eq!(cqs, (send_cq, recv_cq), "CQ pair already fixed"),
        }
    }

    /// Size of the transport pool (established or not).
    pub fn pool_size(&self) -> usize {
        self.transports.len()
    }

    /// Pool slot carrying the given stream id.
    pub fn slot_of(&self, stream: u32) -> usize {
        self.cfg.mux.assignment.slot(stream, self.transports.len())
    }

    /// The QP established for a slot, if any (the reactor's dispatch
    /// key).
    pub fn slot_qpn(&self, slot: usize) -> Option<QpNum> {
        self.transports[slot].as_ref().map(|t| t.qpn)
    }

    /// Opens a stream. The id must be new (never opened before on this
    /// endpoint) and fit the 31-bit immediate encoding. If the slot's
    /// transport is not yet established the stream simply queues work
    /// until [`MuxEndpoint::connect_transport`] runs.
    pub fn open_stream(&mut self, stream: u32) -> Result<(), ExsError> {
        if stream > MAX_MUX_STREAM {
            return Err(ProtocolError::StreamIdOverflow(stream).into());
        }
        assert!(
            !self.streams.contains_key(&stream) && !self.closed.contains(&stream),
            "stream id {stream} already used"
        );
        self.streams.insert(stream, MuxStream::new());
        self.stats.mux_streams_peak = self.stats.mux_streams_peak.max(self.streams.len() as u64);
        Ok(())
    }

    /// Slots that have at least one open stream but no established
    /// transport yet — the lazy-establishment work list.
    pub fn pending_slots(&self) -> Vec<usize> {
        let pool = self.transports.len();
        let mut pending = vec![false; pool];
        for &id in self.streams.keys() {
            let slot = self.cfg.mux.assignment.slot(id, pool);
            pending[slot] = self.transports[slot].is_none();
        }
        (0..pool).filter(|&s| pending[s]).collect()
    }

    /// Establishes the local half of a pool slot over an
    /// already-connected QP: registers the shared ring and control
    /// slots, pre-posts the receive credits, and returns the
    /// [`MuxPeerInfo`] to hand to the peer. All transports of one
    /// endpoint must complete onto the same `(send_cq, recv_cq)` pair.
    pub fn prepare_transport(
        &mut self,
        api: &mut impl VerbsPort,
        slot: usize,
        qpn: QpNum,
        send_cq: CqId,
        recv_cq: CqId,
    ) -> MuxPeerInfo {
        assert!(self.transports[slot].is_none(), "slot {slot} already set");
        match self.cqs {
            None => self.cqs = Some((send_cq, recv_cq)),
            Some(cqs) => assert_eq!(
                cqs,
                (send_cq, recv_cq),
                "all pool transports must share the endpoint's CQ pair"
            ),
        }
        let ring_mr = api.register_mr(
            self.cfg.ring_capacity as usize,
            Access::local_remote_write(),
        );
        let ctrl_mr = api.register_mr(
            (self.cfg.credits as u64 * CTRL_SLOT) as usize,
            Access::LOCAL_WRITE,
        );
        for slot_ix in 0..self.cfg.credits {
            let sge = ctrl_mr.sge(slot_ix as u64 * CTRL_SLOT, CTRL_SLOT as u32);
            api.post_recv(qpn, RecvWr::new(slot_ix as u64, sge))
                .expect("pre-posting control receives");
        }
        let info = MuxPeerInfo {
            ring_addr: ring_mr.addr,
            ring_rkey: ring_mr.key.0,
            ring_capacity: self.cfg.ring_capacity,
            credits: self.cfg.credits,
        };
        self.by_qpn.insert(qpn, slot);
        self.transports[slot] = Some(MuxTransport {
            qpn,
            recv_mirror: SenderRing::new(ring_mr.len as u64),
            ring_mr,
            ctrl_mr,
            connected: false,
            peer_ring_addr: 0,
            peer_ring_rkey: 0,
            send_mirror: SenderRing::new(1),
            chunks: VecDeque::new(),
            chunk_base: 0,
            owed_ring: 0,
            peer_credits: 0,
            owed_credits: 0,
            pending_ctrl: VecDeque::new(),
            tx: TxPipe::new(),
            next_wr: 1,
            wwi_owner: VecDeque::new(),
            inflight: HashMap::new(),
            sendable: VecDeque::new(),
            broken: false,
        });
        info
    }

    /// Completes a slot's establishment with the peer's parameters and
    /// schedules any streams that queued sends while waiting.
    pub fn connect_transport(&mut self, slot: usize, peer: MuxPeerInfo) {
        let pool = self.transports.len();
        let t = self.transports[slot]
            .as_mut()
            .expect("prepare_transport first");
        t.send_mirror = SenderRing::new(peer.ring_capacity);
        t.peer_ring_addr = peer.ring_addr;
        t.peer_ring_rkey = peer.ring_rkey;
        t.peer_credits = peer.credits;
        t.connected = true;
        for (&id, s) in self.streams.iter_mut() {
            if self.cfg.mux.assignment.slot(id, pool) == slot
                && !s.sends.is_empty()
                && !s.in_send_queue
            {
                s.in_send_queue = true;
                t.sendable.push_back(id);
            }
        }
    }

    /// QP capabilities a pooled transport needs under this config.
    pub fn transport_caps(cfg: &ExsConfig) -> QpCaps {
        QpCaps {
            max_send_wr: cfg.sq_depth * 2 + 8,
            max_recv_wr: cfg.credits as usize + 8,
            max_inline: 256,
        }
    }

    /// Depth for the shared CQ pair: every pool member's SQ and RQ can
    /// complete onto it concurrently.
    pub fn shared_cq_depth(cfg: &ExsConfig) -> usize {
        cfg.mux.qp_pool_size * (cfg.sq_depth * 2 + cfg.credits as usize * 2)
    }

    /// Asynchronous send on a stream: queues and returns immediately;
    /// [`MuxEvent::SendComplete`] reports buffer reuse. The buffer must
    /// stay untouched until then.
    pub fn mux_send(
        &mut self,
        api: &mut impl VerbsPort,
        stream: u32,
        mr: &MrInfo,
        offset: u64,
        len: u64,
        id: u64,
    ) -> Result<(), ExsError> {
        assert!(
            offset + len <= mr.len as u64,
            "send range outside registered region"
        );
        let slot = self.slot_of(stream);
        let s = self
            .streams
            .get_mut(&stream)
            .ok_or(ProtocolError::UnknownStream(stream))?;
        assert!(!s.send_closed, "mux_send after close_stream");
        if len == 0 {
            self.events
                .push(MuxEvent::SendComplete { stream, id, len: 0 });
            return Ok(());
        }
        s.sends.push_back(MuxSend {
            id,
            addr: mr.addr + offset,
            len,
            key: mr.key,
            dispatched: 0,
        });
        s.live_sends += 1;
        // The inflight track is created lazily by the pump's first
        // dispatched chunk, so sends queued before the slot's transport
        // exists need no special casing here.
        if self.transports[slot].is_some() {
            {
                let t = self.transports[slot].as_mut().expect("checked");
                if t.connected && !s.in_send_queue {
                    s.in_send_queue = true;
                    t.sendable.push_back(stream);
                }
            }
            self.pump_transport(api, slot);
            self.flush_ctrl(slot, api);
            self.flush_tx(api, slot);
        }
        Ok(())
    }

    /// Asynchronous receive on a stream: queues and returns
    /// immediately; [`MuxEvent::RecvComplete`] reports delivery. With
    /// `waitall` the receive completes only once full.
    #[allow(clippy::too_many_arguments)]
    pub fn mux_recv(
        &mut self,
        api: &mut impl VerbsPort,
        stream: u32,
        mr: &MrInfo,
        offset: u64,
        len: u32,
        waitall: bool,
        id: u64,
    ) -> Result<(), ExsError> {
        assert!(
            offset + len as u64 <= mr.len as u64,
            "receive range outside registered region"
        );
        let slot = self.slot_of(stream);
        let s = self
            .streams
            .get_mut(&stream)
            .ok_or(ProtocolError::UnknownStream(stream))?;
        if s.eof_delivered {
            self.events
                .push(MuxEvent::RecvComplete { stream, id, len: 0 });
            return Ok(());
        }
        s.recvs.push_back(MuxRecvOp {
            id,
            addr: mr.addr + offset,
            len,
            key: mr.key.0,
            waitall,
            filled: 0,
        });
        self.service_recv(api, slot, stream);
        self.flush_ctrl(slot, api);
        self.flush_tx(api, slot);
        Ok(())
    }

    /// Half-closes a stream's send direction: queued data still
    /// drains, then a stream-tagged FIN announces the final byte
    /// count. The stream's state is reclaimed (and
    /// [`MuxEvent::StreamClosed`] fires) once both directions have
    /// fully closed. Sibling streams are untouched.
    pub fn close_stream(&mut self, api: &mut impl VerbsPort, stream: u32) {
        let slot = self.slot_of(stream);
        let Some(s) = self.streams.get_mut(&stream) else {
            return;
        };
        s.send_closed = true;
        self.try_queue_fin(slot, stream);
        if self.transports[slot].is_some() {
            self.pump_transport(api, slot);
            self.flush_ctrl(slot, api);
            self.flush_tx(api, slot);
        }
        self.maybe_retire(stream);
    }

    /// Queues the stream's FIN once every byte has been dispatched
    /// (the FIN must follow the last data WWI on the FIFO channel).
    fn try_queue_fin(&mut self, slot: usize, stream: u32) {
        let Some(s) = self.streams.get_mut(&stream) else {
            return;
        };
        if !s.send_closed || s.fin_queued || !s.sends.is_empty() {
            return;
        }
        let Some(t) = self.transports[slot].as_mut() else {
            return;
        };
        if !t.connected {
            return;
        }
        s.fin_queued = true;
        t.pending_ctrl.push_back((
            stream,
            Ctrl::Fin {
                final_seq: s.send_seq,
            },
        ));
    }

    /// Reclaims a stream whose both directions are fully done.
    fn maybe_retire(&mut self, stream: u32) {
        let done = self.streams.get(&stream).is_some_and(|s| {
            s.eof_delivered
                && s.fin_queued
                && s.sends.is_empty()
                && s.live_sends == 0
                && s.chunk_ids.is_empty()
                && !s.in_send_queue
        });
        if done {
            self.streams.remove(&stream);
            self.closed.insert(stream);
        }
    }

    /// Drives the endpoint from a node wake: drains the shared CQ
    /// pair, advances every transport, and queues user events.
    pub fn handle_wake(&mut self, api: &mut impl VerbsPort) {
        if let Some((send_cq, recv_cq)) = self.cqs {
            let mut cqes: Vec<Cqe> = Vec::new();
            api.poll_cq(recv_cq, usize::MAX, &mut cqes)
                .expect("poll recv cq");
            let recv_count = cqes.len();
            api.poll_cq(send_cq, usize::MAX, &mut cqes)
                .expect("poll send cq");
            for (i, cqe) in cqes.into_iter().enumerate() {
                if i < recv_count {
                    self.on_recv_cqe(api, cqe);
                } else {
                    self.on_send_cqe(api, cqe);
                }
            }
        }
        self.progress(api);
    }

    /// Advances every established transport: pumps sends round-robin,
    /// queues due FINs, flushes control traffic and credit returns.
    /// Backends that dispatch CQEs themselves (the reactor) call this
    /// once per service round instead of [`MuxEndpoint::handle_wake`].
    pub fn progress(&mut self, api: &mut impl VerbsPort) {
        for slot in 0..self.transports.len() {
            let Some(t) = self.transports[slot].as_ref() else {
                continue;
            };
            if t.broken {
                continue;
            }
            self.pump_transport(api, slot);
            self.flush_ctrl(slot, api);
            self.maybe_send_credit(slot);
            self.flush_ctrl(slot, api);
            self.flush_tx(api, slot);
        }
    }

    /// Dispatches one receive-side completion to its transport. Public
    /// so a [`crate::reactor::Reactor`] hosting this endpoint can feed
    /// it CQEs it drained itself.
    pub fn on_recv_cqe(&mut self, api: &mut impl VerbsPort, cqe: Cqe) {
        let Some(&slot) = self.by_qpn.get(&cqe.qpn) else {
            return;
        };
        if cqe.status != WcStatus::Success {
            self.fail_transport(slot, None);
            return;
        }
        if let Err(e) = self.try_on_recv_cqe(api, slot, cqe) {
            self.fail_transport(slot, Some(e));
        }
    }

    /// Dispatches one send-side completion to its transport.
    pub fn on_send_cqe(&mut self, api: &mut impl VerbsPort, cqe: Cqe) {
        let Some(&slot) = self.by_qpn.get(&cqe.qpn) else {
            return;
        };
        if cqe.status != WcStatus::Success {
            self.fail_transport(slot, None);
            return;
        }
        api.charge_cqe_cost();
        let Some(t) = self.transports[slot].as_mut() else {
            return;
        };
        t.tx.on_signaled_cqe();
        // RC FIFO: one signaled CQE retires every data WQE posted
        // before it.
        let mut completed: Vec<(u32, u64, u64)> = Vec::new();
        while let Some(&(wr_id, (stream, send_id))) = t.wwi_owner.front() {
            if wr_id > cqe.wr_id {
                break;
            }
            t.wwi_owner.pop_front();
            let track = t
                .inflight
                .get_mut(&(stream, send_id))
                .expect("send track for completed WWI");
            track.outstanding -= 1;
            if track.outstanding == 0 && track.dispatched_all {
                let track = t
                    .inflight
                    .remove(&(stream, send_id))
                    .expect("checked above");
                completed.push((stream, send_id, track.len));
            }
        }
        for (stream, id, len) in completed {
            self.stats.sends_completed += 1;
            self.stats.bytes_sent += len;
            self.events.push(MuxEvent::SendComplete { stream, id, len });
            if let Some(s) = self.streams.get_mut(&stream) {
                s.live_sends -= 1;
            }
            self.maybe_retire(stream);
        }
    }

    /// Records a transport failure: the slot is dead, every stream
    /// assigned to it is stranded, but the process (and every other
    /// slot) lives on.
    fn fail_transport(&mut self, slot: usize, e: Option<ExsError>) {
        if let Some(e) = e {
            if matches!(e, ExsError::Protocol(_)) {
                self.stats.protocol_errors += 1;
            }
            if self.last_error.is_none() {
                self.last_error = Some(e);
            }
        }
        if let Some(t) = self.transports[slot].as_mut() {
            if !t.broken {
                t.broken = true;
                self.events.push(MuxEvent::TransportError { slot });
            }
        }
    }

    /// The fallible receive path: everything here is driven by bytes
    /// the peer controls, so malformed input surfaces as an
    /// [`ExsError`] that breaks the transport, never a panic.
    fn try_on_recv_cqe(
        &mut self,
        api: &mut impl VerbsPort,
        slot: usize,
        cqe: Cqe,
    ) -> Result<(), ExsError> {
        api.charge_cqe_cost();
        match cqe.opcode {
            WcOpcode::RecvRdmaWithImm => {
                let imm = cqe.imm.ok_or(ProtocolError::MissingImm)?;
                let (kind, stream) = decode_mux_imm(imm);
                match kind {
                    TransferKind::Direct => {
                        self.on_direct_arrival(api, slot, stream, cqe.byte_len)?
                    }
                    TransferKind::Indirect => {
                        self.on_indirect_arrival(api, slot, stream, cqe.byte_len)?
                    }
                }
            }
            WcOpcode::Recv => {
                let t = self.transports[slot].as_mut().expect("slot exists");
                let slot_ix = cqe.wr_id;
                let mut buf = [0u8; CTRL_MSG_LEN];
                api.read_mr(
                    t.ctrl_mr.key,
                    t.ctrl_mr.addr + slot_ix * CTRL_SLOT,
                    &mut buf,
                )?;
                let msg = MuxCtrlMsg::decode(&buf)?;
                t.peer_credits += msg.msg.credit_return;
                self.on_ctrl(api, slot, msg.stream, msg.msg.ctrl)?;
            }
            _ => return Err(ProtocolError::UnexpectedOpcode.into()),
        }
        // Re-post the consumed slot immediately and account the return.
        let t = self.transports[slot].as_mut().expect("slot exists");
        let slot_ix = cqe.wr_id;
        let sge = t.ctrl_mr.sge(slot_ix * CTRL_SLOT, CTRL_SLOT as u32);
        api.post_recv(t.qpn, RecvWr::new(slot_ix, sge))?;
        t.owed_credits += 1;
        Ok(())
    }

    /// A zero-copy chunk landed in an advertised receive buffer.
    fn on_direct_arrival(
        &mut self,
        api: &mut impl VerbsPort,
        slot: usize,
        stream: u32,
        len: u32,
    ) -> Result<(), ExsError> {
        // Direct placement into memory we did not advertise is a trust
        // violation the transport cannot absorb: fail the slot.
        let Some(s) = self.streams.get_mut(&stream) else {
            self.stats.mux_demux_errors += 1;
            return Err(ProtocolError::UnknownStream(stream).into());
        };
        if !s.advert_live {
            return Err(ProtocolError::DirectWithoutAdvert.into());
        }
        let head = s
            .recvs
            .front_mut()
            .ok_or(ProtocolError::DirectWithoutAdvert)?;
        match head.filled.checked_add(len) {
            Some(f) if f <= head.len => head.filled = f,
            _ => return Err(ProtocolError::DirectOverfill.into()),
        }
        s.recv_seq += len as u64;
        self.stats.direct_transfers += 1;
        self.stats.direct_bytes += len as u64;
        // A non-waitall receive completes on the first direct chunk
        // (the sender drops its grant after one chunk, symmetrically);
        // a waitall receive keeps the advert live until full.
        let done = !head.waitall || head.filled == head.len;
        if done {
            let op = s.recvs.pop_front().expect("front checked");
            s.advert_live = false;
            self.stats.recvs_completed += 1;
            self.stats.bytes_received += op.filled as u64;
            self.events.push(MuxEvent::RecvComplete {
                stream,
                id: op.id,
                len: op.filled,
            });
        }
        self.service_recv(api, slot, stream);
        Ok(())
    }

    /// An indirect chunk landed in the shared ring. The ring mirror
    /// must be committed even for unknown streams — the bytes are
    /// physically there — so the cursors stay synchronized; garbage
    /// chunks are marked fully copied so the prefix free reclaims them.
    fn on_indirect_arrival(
        &mut self,
        api: &mut impl VerbsPort,
        slot: usize,
        stream: u32,
        len: u32,
    ) -> Result<(), ExsError> {
        let t = self.transports[slot].as_mut().expect("slot exists");
        let want = len as u64;
        let (offset, got) = t.recv_mirror.contiguous_reservation(want);
        if got != want {
            // The peer ignored ring flow control (or our mirrors have
            // diverged, which the FIFO channel makes impossible for a
            // correct peer).
            return Err(ProtocolError::RingOverflow.into());
        }
        t.recv_mirror.commit(want);
        let chunk_id = t.chunk_base + t.chunks.len() as u64;
        let known = self.streams.contains_key(&stream);
        t.chunks.push_back(MuxChunk {
            stream,
            offset,
            len: want,
            copied: if known { 0 } else { want },
        });
        self.stats.indirect_transfers += 1;
        self.stats.indirect_bytes += want;
        if !known {
            // Unknown or already-retired stream: keep the ring
            // consistent, reclaim the bytes, record the anomaly — but
            // do not kill the transport under its healthy streams.
            self.stats.mux_demux_errors += 1;
            if self.last_error.is_none() {
                self.last_error = Some(ProtocolError::UnknownStream(stream).into());
            }
            self.free_ring_prefix(slot);
            return Ok(());
        }
        let s = self.streams.get_mut(&stream).expect("known checked");
        s.buffered += want;
        s.chunk_ids.push_back(chunk_id);
        // Indirect data voids any live advert: the sender provably
        // discarded (or will discard) it, since its send_seq moved past
        // the advert's seq before the advert could be granted.
        s.advert_live = false;
        self.service_recv(api, slot, stream);
        Ok(())
    }

    /// Handles one stream-tagged control message.
    fn on_ctrl(
        &mut self,
        api: &mut impl VerbsPort,
        slot: usize,
        stream: u32,
        ctrl: Ctrl,
    ) -> Result<(), ExsError> {
        match ctrl {
            Ctrl::Ack { freed } if stream == STREAM_NONE => {
                // Transport-scoped ACK: shared-ring bytes came free.
                self.stats.acks_received += 1;
                let t = self.transports[slot].as_mut().expect("slot exists");
                t.send_mirror
                    .checked_release(freed)
                    .ok_or(ProtocolError::AckUnderflow)?;
                // Ring-blocked streams stayed queued; just pump.
                self.pump_transport(api, slot);
            }
            Ctrl::Credit => {
                // Pure credit return; the piggyback already counted.
            }
            _ if stream == STREAM_NONE => {
                return Err(ProtocolError::BadAdvert.into());
            }
            Ctrl::Ack { freed } => {
                // Stream-scoped ACK: per-stream window bytes returned.
                self.stats.acks_received += 1;
                if let Some(s) = self.streams.get_mut(&stream) {
                    s.window_out = s
                        .window_out
                        .checked_sub(freed)
                        .ok_or(ProtocolError::AckUnderflow)?;
                    if !s.sends.is_empty() && !s.in_send_queue {
                        s.in_send_queue = true;
                        let t = self.transports[slot].as_mut().expect("slot exists");
                        t.sendable.push_back(stream);
                    }
                    self.pump_transport(api, slot);
                }
                // An ACK for a retired stream is a benign straggler:
                // our side already forgot the window.
            }
            Ctrl::Advert(ad) => self.on_stream_advert(api, slot, stream, ad)?,
            Ctrl::Fin { final_seq } => self.on_stream_fin(api, slot, stream, final_seq)?,
            Ctrl::DataNotify { .. } => {
                // The WritePlusSend emulation is rejected at config
                // validation; a notify here is a peer bug.
                return Err(ProtocolError::UnexpectedOpcode.into());
            }
        }
        Ok(())
    }

    /// Sender side of the exact-seq advert rule.
    fn on_stream_advert(
        &mut self,
        api: &mut impl VerbsPort,
        slot: usize,
        stream: u32,
        ad: Advert,
    ) -> Result<(), ExsError> {
        self.stats.adverts_received += 1;
        if ad.len == 0 {
            return Err(ProtocolError::BadAdvert.into());
        }
        let Some(s) = self.streams.get_mut(&stream) else {
            if self.closed.contains(&stream) {
                // Raced our FIN; the peer will flush the recv at EOF.
                self.stats.adverts_discarded += 1;
                return Ok(());
            }
            self.stats.mux_demux_errors += 1;
            if self.last_error.is_none() {
                self.last_error = Some(ProtocolError::UnknownStream(stream).into());
            }
            return Ok(());
        };
        match ad.seq.checked_distance_from(Seq(s.send_seq)) {
            None => {
                // Stale: bytes were in flight when it was emitted.
                self.stats.adverts_discarded += 1;
                return Ok(());
            }
            Some(0) => {}
            Some(_) => return Err(ProtocolError::BadAdvert.into()),
        }
        if s.grant.is_some() {
            // A second advert can only follow consumption of the
            // first; overlapping grants mean the peer broke the
            // one-outstanding-advert invariant.
            return Err(ProtocolError::BadAdvert.into());
        }
        s.grant = Some(MuxGrant {
            addr: ad.addr,
            len: ad.len,
            rkey: ad.rkey,
            waitall: ad.waitall,
            filled: 0,
        });
        if !s.sends.is_empty() && !s.in_send_queue {
            s.in_send_queue = true;
            let t = self.transports[slot].as_mut().expect("slot exists");
            t.sendable.push_back(stream);
        }
        self.pump_transport(api, slot);
        Ok(())
    }

    /// Receiver side of a stream FIN: the FIFO channel puts it behind
    /// the stream's last data chunk, so the claimed final length must
    /// equal delivered plus buffered bytes exactly.
    fn on_stream_fin(
        &mut self,
        api: &mut impl VerbsPort,
        slot: usize,
        stream: u32,
        final_seq: u64,
    ) -> Result<(), ExsError> {
        let Some(s) = self.streams.get_mut(&stream) else {
            if self.closed.contains(&stream) {
                return Err(ProtocolError::DuplicateFin.into());
            }
            self.stats.mux_demux_errors += 1;
            if self.last_error.is_none() {
                self.last_error = Some(ProtocolError::UnknownStream(stream).into());
            }
            return Ok(());
        };
        if s.peer_fin.is_some() {
            return Err(ProtocolError::DuplicateFin.into());
        }
        let arrived = s.recv_seq + s.buffered;
        match Seq(final_seq).checked_distance_from(Seq(s.recv_seq)) {
            Some(d) if d == s.buffered => {}
            _ => {
                return Err(ProtocolError::FinSeqMismatch {
                    claimed: final_seq,
                    arrived,
                }
                .into());
            }
        }
        s.peer_fin = Some(final_seq);
        self.service_recv(api, slot, stream);
        Ok(())
    }

    /// Drains buffered ring bytes into the stream's queued receives,
    /// completes what's due, frees fully-copied ring prefix, emits the
    /// next advert when the gate opens, returns window bytes, and
    /// delivers end-of-stream — the whole receive-side state machine
    /// for one stream.
    fn service_recv(&mut self, api: &mut impl VerbsPort, slot: usize, stream: u32) {
        let Some(t) = self.transports[slot].as_mut() else {
            return;
        };
        let Some(s) = self.streams.get_mut(&stream) else {
            return;
        };
        let window = self
            .cfg
            .mux
            .effective_stream_window(t.recv_mirror.capacity());
        // Copy-out: ring chunks into user buffers, in stream order.
        while s.buffered > 0 {
            let Some(op) = s.recvs.front_mut() else {
                break;
            };
            let &chunk_id = s.chunk_ids.front().expect("buffered implies chunks");
            let idx = (chunk_id - t.chunk_base) as usize;
            let chunk = &mut t.chunks[idx];
            debug_assert_eq!(chunk.stream, stream, "chunk FIFO / stream index divergence");
            let avail = chunk.len - chunk.copied;
            let space = (op.len - op.filled) as u64;
            let n = avail.min(space);
            if n > 0 {
                api.copy_mr(
                    t.ring_mr.key,
                    t.ring_mr.addr + chunk.offset + chunk.copied,
                    MrKey(op.key),
                    op.addr + op.filled as u64,
                    n,
                )
                .expect("shared-ring copy-out");
                chunk.copied += n;
                op.filled += n as u32;
                s.buffered -= n;
                s.recv_seq += n;
                s.owed_window += n;
                self.stats.bytes_copied_out += n;
            }
            if chunk.copied == chunk.len {
                s.chunk_ids.pop_front();
            }
            let full = op.filled == op.len;
            if full || (!op.waitall && op.filled > 0 && s.buffered == 0) {
                let op = s.recvs.pop_front().expect("front checked");
                self.stats.recvs_completed += 1;
                self.stats.bytes_received += op.filled as u64;
                self.events.push(MuxEvent::RecvComplete {
                    stream,
                    id: op.id,
                    len: op.filled,
                });
            } else if !full && s.buffered == 0 {
                break;
            }
        }
        // End-of-stream: FIN seen and every byte consumed.
        let mut closed_now = false;
        if let Some(fin) = s.peer_fin {
            if !s.eof_delivered && s.buffered == 0 && s.recv_seq == fin {
                s.eof_delivered = true;
                closed_now = true;
                while let Some(op) = s.recvs.pop_front() {
                    self.stats.recvs_completed += 1;
                    self.stats.bytes_received += op.filled as u64;
                    self.events.push(MuxEvent::RecvComplete {
                        stream,
                        id: op.id,
                        len: op.filled,
                    });
                }
            }
        }
        // Advert gate: a queued receive, nothing buffered, no advert
        // outstanding, peer still sending, transport usable.
        if !s.recvs.is_empty()
            && s.buffered == 0
            && !s.advert_live
            && s.peer_fin.is_none()
            && t.connected
        {
            let op = s.recvs.front().expect("non-empty");
            s.advert_live = true;
            self.stats.adverts_sent += 1;
            t.pending_ctrl.push_back((
                stream,
                Ctrl::Advert(Advert {
                    seq: Seq(s.recv_seq),
                    phase: Phase(0),
                    addr: op.addr + op.filled as u64,
                    len: op.len - op.filled,
                    rkey: op.key,
                    waitall: op.waitall,
                }),
            ));
        }
        // Window return: at half-window, or when the stream drains.
        if s.owed_window > 0 && (s.owed_window * 2 >= window || s.buffered == 0) {
            let freed = s.owed_window;
            s.owed_window = 0;
            self.stats.acks_sent += 1;
            t.pending_ctrl.push_back((stream, Ctrl::Ack { freed }));
        }
        self.free_ring_prefix(slot);
        if closed_now {
            self.events.push(MuxEvent::StreamClosed { stream });
            self.maybe_retire(stream);
        }
        self.flush_ctrl(slot, api);
        self.flush_tx(api, slot);
    }

    /// Pops the fully-copied prefix of the chunk FIFO, releasing its
    /// ring bytes and queueing a transport-scoped ACK when enough have
    /// accumulated (or the ring went quiet).
    fn free_ring_prefix(&mut self, slot: usize) {
        let Some(t) = self.transports[slot].as_mut() else {
            return;
        };
        let mut freed = 0u64;
        while let Some(front) = t.chunks.front() {
            if front.copied != front.len {
                break;
            }
            freed += front.len;
            t.chunks.pop_front();
            t.chunk_base += 1;
        }
        if freed > 0 {
            t.recv_mirror
                .checked_release(freed)
                .expect("prefix frees are locally counted");
            t.owed_ring += freed;
        }
        let threshold = self.cfg.effective_ack_threshold();
        if t.owed_ring > 0 && (t.owed_ring >= threshold || t.chunks.is_empty()) {
            let freed = t.owed_ring;
            t.owed_ring = 0;
            self.stats.acks_sent += 1;
            t.pending_ctrl.push_back((STREAM_NONE, Ctrl::Ack { freed }));
        }
    }

    /// Round-robin sender pump for one transport: one chunk per stream
    /// per round, gated by credits, SQ depth, ring space (transport)
    /// and stream windows.
    fn pump_transport(&mut self, api: &mut impl VerbsPort, slot: usize) {
        let Some(t) = self.transports[slot].as_mut() else {
            return;
        };
        if t.broken || !t.connected {
            return;
        }
        let window_cap = self
            .cfg
            .mux
            .effective_stream_window(t.send_mirror.capacity());
        let max_chunk = self.cfg.max_wwi_chunk as u64;
        let mut drained_fins: Vec<u32> = Vec::new();
        loop {
            if t.peer_credits <= CREDIT_RESERVE {
                break;
            }
            if api.sq_outstanding(t.qpn) + t.tx.staged() >= self.cfg.sq_depth {
                break;
            }
            let Some(stream) = t.sendable.pop_front() else {
                break;
            };
            let Some(s) = self.streams.get_mut(&stream) else {
                continue;
            };
            let Some(head) = s.sends.front_mut() else {
                s.in_send_queue = false;
                continue;
            };
            let remaining = head.len - head.dispatched;
            let (raddr, rkey, chunk, is_direct) = if let Some(g) = s.grant.as_ref() {
                let room = (g.len - g.filled) as u64;
                (
                    g.addr + g.filled as u64,
                    g.rkey,
                    remaining.min(room).min(max_chunk),
                    true,
                )
            } else {
                let window_left = window_cap - s.window_out;
                if window_left == 0 {
                    // Blocked on this stream's window; the stream ACK
                    // that reopens it re-queues the stream.
                    s.in_send_queue = false;
                    continue;
                }
                let want = remaining.min(window_left).min(max_chunk);
                let (off, got) = t.send_mirror.contiguous_reservation(want);
                if got == 0 {
                    // Shared ring full: the whole transport waits for
                    // the next transport-scoped ACK. Keep the stream
                    // at the queue head so fairness resumes in place.
                    t.sendable.push_front(stream);
                    break;
                }
                (t.peer_ring_addr + off, t.peer_ring_rkey, got, false)
            };
            debug_assert!(chunk > 0, "pump issued an empty chunk");
            let wr_id = t.next_wr;
            t.next_wr += 1;
            let sge = Sge::new(head.addr + head.dispatched, chunk as u32, head.key);
            let remote = RemoteAddr {
                addr: raddr,
                rkey: MrKey(rkey),
            };
            let kind = if is_direct {
                TransferKind::Direct
            } else {
                TransferKind::Indirect
            };
            let imm = encode_mux_imm(kind, stream);
            let send_id = head.id;
            head.dispatched += chunk;
            let head_done = head.dispatched == head.len;
            if is_direct {
                let g = s.grant.as_mut().expect("direct implies grant");
                g.filled += chunk as u32;
                // Non-waitall grants die after one chunk (the receiver
                // completes on first arrival); waitall grants die full.
                if !g.waitall || g.filled == g.len {
                    s.grant = None;
                }
                self.stats.direct_transfers += 1;
                self.stats.direct_bytes += chunk;
            } else {
                t.send_mirror.commit(chunk);
                s.window_out += chunk;
                self.stats.indirect_transfers += 1;
                self.stats.indirect_bytes += chunk;
            }
            s.send_seq += chunk;
            if head_done {
                s.sends.pop_front();
            }
            let track = t
                .inflight
                .entry((stream, send_id))
                .or_insert_with(|| SendTrack {
                    len: 0,
                    outstanding: 0,
                    dispatched_all: false,
                });
            track.len += chunk;
            track.outstanding += 1;
            track.dispatched_all = head_done;
            let occupancy = api.sq_outstanding(t.qpn) + t.tx.staged();
            t.tx.stage(
                occupancy,
                &self.cfg,
                SendWr::write_imm(wr_id, sge, remote, imm),
                true,
                &mut self.stats,
            );
            t.peer_credits -= 1;
            t.wwi_owner.push_back((wr_id, (stream, send_id)));
            if s.sends.is_empty() {
                s.in_send_queue = false;
                if s.send_closed && !s.fin_queued {
                    drained_fins.push(stream);
                }
            } else {
                t.sendable.push_back(stream);
            }
        }
        for stream in drained_fins {
            self.try_queue_fin(slot, stream);
        }
    }

    /// Moves eligible stream-tagged control messages onto the TX
    /// queue; they share the next flush's doorbell with staged data.
    fn flush_ctrl(&mut self, slot: usize, api: &mut impl VerbsPort) {
        let Some(t) = self.transports[slot].as_mut() else {
            return;
        };
        if t.broken || !t.connected {
            return;
        }
        loop {
            let Some(&(_, front)) = t.pending_ctrl.front() else {
                return;
            };
            let needed = match front {
                Ctrl::Credit => CREDIT_RESERVE,
                _ => CREDIT_RESERVE + 1,
            };
            let pick = if t.peer_credits >= needed {
                0
            } else if t.peer_credits >= CREDIT_RESERVE {
                // Head-of-line rescue: the reserve credit exists so
                // CREDIT returns always flow. A stream ctrl blocked at
                // the head must not trap a CREDIT queued behind it —
                // with both sides down to their reserve, that ordering
                // is a distributed deadlock (each waits for the
                // other's return stuck behind an unsendable FIN).
                match t
                    .pending_ctrl
                    .iter()
                    .position(|(_, c)| matches!(c, Ctrl::Credit))
                {
                    Some(pos) => pos,
                    None => return,
                }
            } else {
                return;
            };
            if api.sq_outstanding(t.qpn) + t.tx.staged() >= self.cfg.sq_depth {
                return;
            }
            let (stream, ctrl) = t.pending_ctrl.remove(pick).expect("position just found");
            // A CREDIT whose return was already piggybacked on an
            // earlier message carries nothing — don't spend the
            // reserve on it.
            if matches!(ctrl, Ctrl::Credit) && t.owed_credits == 0 {
                continue;
            }
            let msg = MuxCtrlMsg {
                stream,
                msg: CtrlMsg {
                    ctrl,
                    credit_return: t.owed_credits,
                },
            };
            t.owed_credits = 0;
            let wr_id = t.next_wr;
            t.next_wr += 1;
            let occupancy = api.sq_outstanding(t.qpn) + t.tx.staged();
            t.tx.stage(
                occupancy,
                &self.cfg,
                SendWr::send_inline(wr_id, msg.encode_bytes()),
                false,
                &mut self.stats,
            );
            t.peer_credits -= 1;
        }
    }

    /// Standalone CREDIT when returns pile up with nothing flowing.
    fn maybe_send_credit(&mut self, slot: usize) {
        let threshold = self.cfg.effective_credit_threshold();
        let Some(t) = self.transports[slot].as_mut() else {
            return;
        };
        if t.owed_credits >= threshold
            && t.peer_credits >= CREDIT_RESERVE
            && !t
                .pending_ctrl
                .iter()
                .any(|(_, c)| matches!(c, Ctrl::Credit))
        {
            t.pending_ctrl.push_back((STREAM_NONE, Ctrl::Credit));
            self.stats.credits_sent += 1;
        }
    }

    /// Posts the staged TX queue of one transport as postlists.
    fn flush_tx(&mut self, api: &mut impl VerbsPort, slot: usize) {
        let Some(t) = self.transports[slot].as_mut() else {
            return;
        };
        t.tx.flush(api, t.qpn, &self.cfg, &mut self.stats);
    }

    /// True when no user send is queued or awaiting completion, on any
    /// stream.
    pub fn sends_drained(&self) -> bool {
        self.streams
            .values()
            .all(|s| s.sends.is_empty() && s.live_sends == 0)
    }

    /// True while the endpoint still owes traffic to the wire: queued
    /// stream sends, un-flushed per-transport control frames, staged
    /// WQEs, or a closed stream whose FIN is not yet queued. Progress
    /// is CQE-driven — a service loop must not stop polling while this
    /// holds. A failed endpoint reports false.
    pub fn has_unsent(&self) -> bool {
        if self.last_error.is_some() {
            return false;
        }
        self.streams
            .values()
            .any(|s| !s.sends.is_empty() || (s.send_closed && !s.fin_queued))
            || self
                .transports
                .iter()
                .flatten()
                .any(|t| !t.pending_ctrl.is_empty() || t.tx.staged() > 0)
    }

    /// Releases every registration the endpoint owns (shared rings and
    /// control slots of all established transports). Idempotent per
    /// slot; call at teardown.
    pub fn close(&mut self, api: &mut impl VerbsPort) {
        for t in self.transports.iter_mut().flatten() {
            api.deregister_mr(t.ctrl_mr.key)
                .expect("free control slots at close");
            api.deregister_mr(t.ring_mr.key)
                .expect("free shared ring at close");
        }
        for slot in self.transports.iter_mut() {
            *slot = None;
        }
        self.by_qpn.clear();
    }

    /// One-line-per-object liveness snapshot for stall diagnosis:
    /// transport credit/ring/queue gauges and the state of every
    /// stream that still has work outstanding.
    pub fn debug_summary(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for (i, t) in self.transports.iter().enumerate() {
            let Some(t) = t else { continue };
            let _ = writeln!(
                out,
                "  slot {i}: qpn={} broken={} peer_credits={} owed_credits={} \
                 pending_ctrl={} sendable={} ring {}/{} chunks={} inflight={}",
                t.qpn.0,
                t.broken,
                t.peer_credits,
                t.owed_credits,
                t.pending_ctrl.len(),
                t.sendable.len(),
                t.send_mirror.in_use(),
                t.send_mirror.capacity(),
                t.chunks.len(),
                t.inflight.len(),
            );
        }
        let mut shown = 0;
        for (&id, s) in self.streams.iter() {
            let idle = s.sends.is_empty()
                && s.live_sends == 0
                && s.recvs.is_empty()
                && s.buffered == 0
                && !s.send_closed
                && s.peer_fin.is_none();
            if idle || shown >= 8 {
                continue;
            }
            shown += 1;
            let _ = writeln!(
                out,
                "  stream {id}: sends={} live={} recvs={} buffered={} window_out={} \
                 grant={} advert_live={} closed={} fin_q={} peer_fin={:?} eof={} in_q={}",
                s.sends.len(),
                s.live_sends,
                s.recvs.len(),
                s.buffered,
                s.window_out,
                s.grant.is_some(),
                s.advert_live,
                s.send_closed,
                s.fin_queued,
                s.peer_fin,
                s.eof_delivered,
                s.in_send_queue,
            );
        }
        out
    }

    /// Deterministic model of this endpoint's pinned/context memory:
    /// per established transport, the shared ring, the control-slot
    /// region, and [`WQE_SLOT_BYTES`]-sized SQ/RQ/CQ slot shares; per
    /// open stream, just `size_of::<MuxStream>()`. Compare against
    /// [`MuxEndpoint::baseline_footprint`].
    pub fn memory_footprint(&self) -> u64 {
        let fixed = self.transports_active() as u64 * Self::transport_fixed_bytes(&self.cfg);
        fixed + self.streams.len() as u64 * std::mem::size_of::<MuxStream>() as u64
    }

    /// The same model applied to the QP-per-stream baseline: every
    /// stream pays a full private transport.
    pub fn baseline_footprint(cfg: &ExsConfig, streams: u64) -> u64 {
        streams * Self::transport_fixed_bytes(cfg)
    }

    /// Modeled fixed cost of one transport (ring + control slots + QP
    /// rings + CQ share) under `cfg`.
    fn transport_fixed_bytes(cfg: &ExsConfig) -> u64 {
        let sq = (cfg.sq_depth as u64 * 2 + 8) * WQE_SLOT_BYTES;
        let rq = (cfg.credits as u64 + 8) * WQE_SLOT_BYTES;
        let cq = (cfg.sq_depth as u64 * 2 + cfg.credits as u64 * 2) * WQE_SLOT_BYTES;
        cfg.ring_capacity + cfg.credits as u64 * CTRL_SLOT + sq + rq + cq
    }
}

/// Establishes every pending pool slot between two endpoints over the
/// simulator: creates each endpoint's shared CQ pair on first use,
/// connects one QP per pending slot (shared CQs on **both** sides via
/// [`connect_pool`]), and runs the out-of-band parameter exchange.
pub fn connect_mux_pair(net: &mut SimNet, a: &mut MuxEndpoint, b: &mut MuxEndpoint) {
    let mut slots: Vec<usize> = a.pending_slots();
    for s in b.pending_slots() {
        if !slots.contains(&s) {
            slots.push(s);
        }
    }
    slots.sort_unstable();
    let caps = MuxEndpoint::transport_caps(&a.cfg);
    let cq_depth = MuxEndpoint::shared_cq_depth(&a.cfg);
    for slot in slots {
        if a.transports[slot].is_some() || b.transports[slot].is_some() {
            continue;
        }
        if a.cqs.is_none() {
            a.cqs = Some(net.with_api(a.node, |api| {
                (api.create_cq(cq_depth), api.create_cq(cq_depth))
            }));
        }
        if b.cqs.is_none() {
            b.cqs = Some(net.with_api(b.node, |api| {
                (api.create_cq(cq_depth), api.create_cq(cq_depth))
            }));
        }
        let (ha, hb) = connect_pool(net, a.node, b.node, caps, cq_depth, a.cqs, b.cqs)
            .expect("connect mux transport");
        let ia = net.with_api(a.node, |api| {
            a.prepare_transport(api, slot, ha.qpn, ha.send_cq, ha.recv_cq)
        });
        let ib = net.with_api(b.node, |api| {
            b.prepare_transport(api, slot, hb.qpn, hb.send_cq, hb.recv_cq)
        });
        a.connect_transport(slot, ib);
        b.connect_transport(slot, ia);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdma_verbs::{HcaConfig, HostModel, NodeApi, NodeApp};
    use simnet::{LinkConfig, SimDuration, SimTime};

    fn small_cfg() -> ExsConfig {
        ExsConfig {
            ring_capacity: 4096,
            credits: 16,
            sq_depth: 64,
            ..ExsConfig::default()
        }
    }

    fn two_nodes() -> (SimNet, NodeId, NodeId) {
        let mut net = SimNet::new();
        let a = net.add_node(HostModel::free(), HcaConfig::default());
        let b = net.add_node(HostModel::free(), HcaConfig::default());
        net.connect_nodes(
            a,
            b,
            LinkConfig::simple(100_000_000_000, SimDuration::from_micros(1)),
            0,
        );
        (net, a, b)
    }

    /// Wake-driven endpoint host: drains the shared CQ pair into the
    /// endpoint and accumulates its events; `until` decides done.
    struct Host {
        ep: Option<MuxEndpoint>,
        events: Vec<MuxEvent>,
        until: fn(&[MuxEvent], &MuxEndpoint) -> bool,
    }

    impl Host {
        fn new(ep: MuxEndpoint, until: fn(&[MuxEvent], &MuxEndpoint) -> bool) -> Host {
            Host {
                ep: Some(ep),
                events: Vec::new(),
                until,
            }
        }
    }

    impl NodeApp for Host {
        fn on_start(&mut self, api: &mut NodeApi<'_>) {
            self.on_wake(api);
        }
        fn on_wake(&mut self, api: &mut NodeApi<'_>) {
            let ep = self.ep.as_mut().unwrap();
            ep.handle_wake(api);
            self.events.extend(ep.take_events());
        }
        fn is_done(&self) -> bool {
            (self.until)(&self.events, self.ep.as_ref().unwrap())
        }
    }

    fn recvs_done(evs: &[MuxEvent]) -> usize {
        evs.iter()
            .filter(|e| matches!(e, MuxEvent::RecvComplete { .. }))
            .count()
    }

    fn sends_done(evs: &[MuxEvent]) -> usize {
        evs.iter()
            .filter(|e| matches!(e, MuxEvent::SendComplete { .. }))
            .count()
    }

    fn fnv1a(acc: u64, bytes: &[u8]) -> u64 {
        let mut h = acc;
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        h
    }

    const STREAMS: u32 = 24;
    const MSG: usize = 700;

    #[test]
    fn many_streams_one_pool_deliver_in_order() {
        let (mut net, na, nb) = two_nodes();
        let cfg = small_cfg();
        let mut a = MuxEndpoint::new(na, &cfg);
        let mut b = MuxEndpoint::new(nb, &cfg);
        for id in 0..STREAMS {
            a.open_stream(id).unwrap();
            b.open_stream(id).unwrap();
        }
        assert_eq!(a.transports_active(), 0);
        assert!(!a.pending_slots().is_empty());
        connect_mux_pair(&mut net, &mut a, &mut b);
        assert_eq!(a.transports_active(), cfg.mux.qp_pool_size);
        assert!(a.pending_slots().is_empty());

        // Per-stream distinct payloads, sent a -> b.
        let payload = |stream: u32, i: usize| ((stream as usize * 131 + i * 7) % 251) as u8;
        let send_mrs: Vec<MrInfo> = (0..STREAMS)
            .map(|id| {
                net.with_api(na, |api| {
                    let mr = api.register_mr(MSG, Access::NONE);
                    let data: Vec<u8> = (0..MSG).map(|i| payload(id, i)).collect();
                    api.write_mr(mr.key, mr.addr, &data).unwrap();
                    mr
                })
            })
            .collect();
        let recv_mrs: Vec<MrInfo> = (0..STREAMS)
            .map(|_| net.with_api(nb, |api| api.register_mr(MSG, Access::local_remote_write())))
            .collect();
        net.with_api(nb, |api| {
            for id in 0..STREAMS {
                b.mux_recv(
                    api,
                    id,
                    &recv_mrs[id as usize],
                    0,
                    MSG as u32,
                    true,
                    id as u64,
                )
                .unwrap();
            }
        });
        net.with_api(na, |api| {
            for id in 0..STREAMS {
                a.mux_send(api, id, &send_mrs[id as usize], 0, MSG as u64, id as u64)
                    .unwrap();
            }
        });

        let mut ha = Host::new(a, |evs, ep| {
            sends_done(evs) == STREAMS as usize && ep.sends_drained()
        });
        let mut hb = Host::new(b, |evs, _| recvs_done(evs) == STREAMS as usize);
        let outcome = net.run(&mut [&mut ha, &mut hb], SimTime::from_secs(5));
        assert!(
            outcome.completed,
            "stalled: {:?} a_sends={} b_recvs={}",
            outcome,
            sends_done(&ha.events),
            recvs_done(&hb.events),
        );

        let a = ha.ep.take().unwrap();
        let b = hb.ep.take().unwrap();
        // Byte identity per stream: no cross-delivery, no reordering.
        net.with_api(nb, |api| {
            for id in 0..STREAMS {
                let mr = &recv_mrs[id as usize];
                let mut buf = vec![0u8; MSG];
                api.read_mr(mr.key, mr.addr, &mut buf).unwrap();
                let want: Vec<u8> = (0..MSG).map(|i| payload(id, i)).collect();
                assert_eq!(
                    fnv1a(0xcbf29ce484222325, &buf),
                    fnv1a(0xcbf29ce484222325, &want),
                    "stream {id} corrupted"
                );
            }
        });
        assert_eq!(a.stats().protocol_errors, 0);
        assert_eq!(b.stats().mux_demux_errors, 0);
        assert_eq!(a.stats().mux_streams_peak, STREAMS as u64);
        assert!(a.last_error().is_none() && b.last_error().is_none());
    }

    fn closed_1(evs: &[MuxEvent], _ep: &MuxEndpoint) -> bool {
        evs.contains(&MuxEvent::StreamClosed { stream: 1 })
    }

    #[test]
    fn close_one_stream_frees_state_and_leaves_siblings_working() {
        let (mut net, na, nb) = two_nodes();
        let cfg = small_cfg();
        let mut a = MuxEndpoint::new(na, &cfg);
        let mut b = MuxEndpoint::new(nb, &cfg);
        for id in 0..4 {
            a.open_stream(id).unwrap();
            b.open_stream(id).unwrap();
        }
        connect_mux_pair(&mut net, &mut a, &mut b);
        let footprint_4 = a.memory_footprint();

        // Close stream 1 in both directions and drive the FIN exchange.
        net.with_api(na, |api| a.close_stream(api, 1));
        net.with_api(nb, |api| b.close_stream(api, 1));
        let mut ha = Host::new(a, closed_1);
        let mut hb = Host::new(b, closed_1);
        let outcome = net.run(&mut [&mut ha, &mut hb], SimTime::from_secs(1));
        assert!(outcome.completed, "FIN exchange stalled: {outcome:?}");
        let mut a = ha.ep.take().unwrap();
        let mut b = hb.ep.take().unwrap();
        assert_eq!(a.streams_open(), 3);
        assert_eq!(b.streams_open(), 3);
        // Closing released exactly the per-stream state; the pool's
        // pinned regions are shared, not per-stream.
        assert_eq!(
            a.memory_footprint(),
            footprint_4 - std::mem::size_of::<MuxStream>() as u64
        );

        // A sibling stream still moves data after the close.
        let smr = net.with_api(na, |api| {
            let mr = api.register_mr(MSG, Access::NONE);
            api.write_mr(mr.key, mr.addr, &vec![0x5A; MSG]).unwrap();
            mr
        });
        let rmr = net.with_api(nb, |api| api.register_mr(MSG, Access::local_remote_write()));
        net.with_api(nb, |api| {
            b.mux_recv(api, 3, &rmr, 0, MSG as u32, true, 9).unwrap()
        });
        net.with_api(na, |api| {
            a.mux_send(api, 3, &smr, 0, MSG as u64, 9).unwrap()
        });
        // The retired id is rejected for reuse before touching verbs.
        net.with_api(na, |api| {
            assert!(matches!(
                a.mux_send(api, 1, &smr, 0, 1, 77),
                Err(ExsError::Protocol(ProtocolError::UnknownStream(1)))
            ));
        });
        let mut ha = Host::new(a, |evs, ep| sends_done(evs) == 1 && ep.sends_drained());
        let mut hb = Host::new(b, |evs, _| recvs_done(evs) == 1);
        let outcome = net.run(&mut [&mut ha, &mut hb], SimTime::from_secs(2));
        assert!(outcome.completed, "sibling transfer stalled: {outcome:?}");
        assert!(hb.events.contains(&MuxEvent::RecvComplete {
            stream: 3,
            id: 9,
            len: MSG as u32
        }));
    }

    #[test]
    fn memory_model_beats_qp_per_stream_baseline_by_8x() {
        let cfg = ExsConfig::default();
        let mut e = MuxEndpoint::new(NodeId(0), &cfg);
        for id in 0..10_000 {
            e.open_stream(id).unwrap();
        }
        // No transports established yet: the marginal footprint is pure
        // per-stream state. Even adding the full pool's fixed cost the
        // 10k-stream amortized figure stays far under baseline/8.
        let pool_fixed = cfg.mux.qp_pool_size as u64 * (MuxEndpoint::baseline_footprint(&cfg, 1));
        let per_stream = (e.memory_footprint() + pool_fixed) as f64 / 10_000.0;
        let baseline = MuxEndpoint::baseline_footprint(&cfg, 10_000) as f64 / 10_000.0;
        assert!(
            per_stream * 8.0 <= baseline,
            "per-stream {per_stream} vs baseline {baseline}"
        );
    }

    #[test]
    fn stream_id_overflow_is_typed_error() {
        let mut e = MuxEndpoint::new(NodeId(0), &ExsConfig::default());
        assert!(matches!(
            e.open_stream(MAX_MUX_STREAM + 1),
            Err(ExsError::Protocol(ProtocolError::StreamIdOverflow(_)))
        ));
    }
}
