//! The sender half of the stream protocol — paper Fig. 2.
//!
//! The sender keeps a queue `q_A` of received ADVERTs, its phase `P_s`,
//! its stream position `S_s`, and a free-space view of the receiver's
//! intermediate buffer (`b_s`). Each call to [`SenderHalf::plan_transfer`]
//! executes one iteration of the matching algorithm:
//!
//! 1. Pop and discard stale ADVERTs: while the sender's phase is
//!    indirect, an ADVERT with an older phase or an older sequence number
//!    is thrown away; if the discarded ADVERT carries a *newer* phase,
//!    the sender's phase jumps past it (`NEXT_PHASE(P_A)`) so the rest
//!    of that ADVERT sequence is dropped too — the Fig. 8 scenario.
//! 2. If a usable ADVERT heads the queue, transition to its (direct)
//!    phase if needed and plan a **direct** WWI into the advertised user
//!    buffer. An ADVERT with MSG_WAITALL stays at the head until it is
//!    completely filled (paper §II-C); otherwise it is consumed by a
//!    single transfer of any size.
//! 3. Otherwise, if the intermediate buffer has free space, transition
//!    to an indirect phase if needed and plan an **indirect** WWI into
//!    the ring (split at the wrap point).
//! 4. Otherwise the send must wait (for an ADVERT or an ACK).
//!
//! This module is sans-IO: it plans transfers; the socket layer posts the
//! verbs work requests and enforces credit/SQ limits. That separation is
//! what lets property tests drive the algorithm through arbitrary
//! schedules.

use std::collections::VecDeque;

use crate::buffer::SenderRing;
use crate::config::{DirectPolicy, ProtocolMode};
use crate::error::ProtocolError;
use crate::messages::Advert;
use crate::phase::Phase;
use crate::seq::Seq;
use crate::stats::ConnStats;

/// An ADVERT queued at the sender, with its fill progress (for
/// MSG_WAITALL adverts that accept multiple transfers).
#[derive(Clone, Copy, Debug)]
struct QueuedAdvert {
    advert: Advert,
    filled: u32,
}

/// One planned RDMA WRITE WITH IMM.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WwiPlan {
    /// Remote virtual address to write to.
    pub raddr: u64,
    /// Remote key authorizing the write.
    pub rkey: u32,
    /// Chunk length.
    pub len: u32,
    /// True for an indirect (intermediate-buffer) transfer.
    pub indirect: bool,
}

/// The remote intermediate buffer's location, exchanged at connection
/// setup.
#[derive(Clone, Copy, Debug)]
pub struct RemoteRing {
    /// Base virtual address of the ring region at the receiver.
    pub addr: u64,
    /// Remote key for the ring region.
    pub rkey: u32,
    /// Ring capacity in bytes.
    pub capacity: u64,
}

/// Sender-half protocol state.
pub struct SenderHalf {
    mode: ProtocolMode,
    policy: DirectPolicy,
    phase: Phase,
    seq: Seq,
    adverts: VecDeque<QueuedAdvert>,
    ring: SenderRing,
    remote_ring: RemoteRing,
    max_chunk: u32,
    /// Adaptive re-entry: a send is currently paused waiting for a
    /// resync ADVERT instead of going indirect.
    waiting_resync: bool,
    /// Consecutive waits abandoned with the ring drained and no usable
    /// ADVERT; at `policy.effective_max_resync_rtts()` the policy
    /// latches off until the next successful direct transfer.
    failed_waits: u32,
}

impl SenderHalf {
    /// Creates the sender half for a connection whose peer owns the given
    /// intermediate ring, with adaptive re-entry disabled.
    pub fn new(mode: ProtocolMode, remote_ring: RemoteRing, max_chunk: u32) -> Self {
        SenderHalf::with_policy(mode, remote_ring, max_chunk, DirectPolicy::default())
    }

    /// Creates the sender half with an explicit [`DirectPolicy`]
    /// governing when a send pauses for a Fig. 4–5 resynchronization
    /// rather than falling back to the intermediate buffer.
    pub fn with_policy(
        mode: ProtocolMode,
        remote_ring: RemoteRing,
        max_chunk: u32,
        policy: DirectPolicy,
    ) -> Self {
        assert!(max_chunk > 0, "max WWI chunk must be positive");
        SenderHalf {
            mode,
            policy,
            phase: Phase::ZERO,
            seq: Seq::ZERO,
            adverts: VecDeque::new(),
            ring: SenderRing::new(remote_ring.capacity),
            remote_ring,
            max_chunk,
            waiting_resync: false,
            failed_waits: 0,
        }
    }

    /// Current phase (`P_s`).
    pub fn phase(&self) -> Phase {
        self.phase
    }

    /// Current stream position (`S_s`).
    pub fn seq(&self) -> Seq {
        self.seq
    }

    /// Queued, not-yet-consumed ADVERTs.
    pub fn advert_queue_len(&self) -> usize {
        self.adverts.len()
    }

    /// Free bytes in the remote intermediate buffer (`b_s`).
    pub fn buffer_free(&self) -> u64 {
        self.ring.free()
    }

    /// Queues an ADVERT received from the peer.
    ///
    /// An ADVERT carrying an indirect phase (Lemma 1 says a correct
    /// receiver never emits one), zero length, or a zero-length
    /// remaining window is a protocol violation — typed error, not a
    /// panic, since the phase word comes straight off the wire.
    pub fn push_advert(
        &mut self,
        advert: Advert,
        stats: &mut ConnStats,
    ) -> Result<(), ProtocolError> {
        stats.adverts_received += 1;
        if advert.phase.is_indirect() || advert.len == 0 {
            return Err(ProtocolError::BadAdvert);
        }
        if self.mode.buffered_only() {
            // The buffered-only baselines ignore ADVERTs entirely (the
            // peer should not send any, but tolerate mixed configs).
            stats.adverts_discarded += 1;
            return Ok(());
        }
        self.adverts.push_back(QueuedAdvert { advert, filled: 0 });
        Ok(())
    }

    /// Applies an ACK: the receiver freed `n` intermediate-buffer bytes.
    ///
    /// A freed count exceeding the bytes actually in flight is a
    /// flow-control violation by the peer.
    pub fn on_ack(&mut self, freed: u64, stats: &mut ConnStats) -> Result<(), ProtocolError> {
        stats.acks_received += 1;
        self.ring
            .checked_release(freed)
            .ok_or(ProtocolError::AckUnderflow)
    }

    /// Plans the next WWI for a send with `remaining` unsent bytes,
    /// following Fig. 2. Returns `None` when the send must wait for an
    /// ADVERT or ACK. The plan is committed to protocol state (sequence
    /// number, phase, advert fill, ring reservation) — the caller *must*
    /// issue the corresponding WWI.
    pub fn plan_transfer(&mut self, remaining: u64, stats: &mut ConnStats) -> Option<WwiPlan> {
        assert!(remaining > 0, "plan_transfer with nothing to send");

        // Fig. 2 lines 1–16: scan the ADVERT queue.
        while let Some(head) = self.adverts.front().copied() {
            let a = head.advert;
            if self.phase.is_indirect() && (a.phase < self.phase || a.seq < self.seq) {
                // Lines 4–7: stale — discard, and if the ADVERT is from a
                // *newer* phase, jump past that whole phase so none of its
                // successors can falsely match (Fig. 8 fix).
                if self.phase < a.phase {
                    self.phase = a.phase.next();
                }
                self.adverts.pop_front();
                stats.adverts_discarded += 1;
                continue;
            }
            // Lines 8–14: usable ADVERT.
            if self.phase.is_indirect() {
                // Resynchronize: the receiver caught up. The paper's text
                // requires an exact sequence match here; the invariant is
                // checked in debug builds (Theorem 1 guarantees it).
                debug_assert_eq!(
                    a.seq, self.seq,
                    "accepted ADVERT with mismatched sequence at resync"
                );
                self.phase = a.phase;
                stats.mode_switches += 1;
            } else {
                debug_assert_eq!(
                    a.phase, self.phase,
                    "Lemma 4 violated: direct-phase sender saw mismatched ADVERT phase"
                );
            }
            let space = a.len - head.filled;
            debug_assert!(space > 0, "fully-filled ADVERT left in queue");
            // One WWI per advert match: the receiver's completion logic
            // keys off single transfers, so direct chunks are bounded by
            // the advertised buffer, not by max_chunk (which only splits
            // indirect ring writes). The immediate-data encoding caps a
            // single transfer at 2 GiB − 1.
            let len = (remaining.min(space as u64)).min(crate::messages::MAX_WWI_LEN as u64) as u32;
            let raddr = a.addr + head.filled as u64;
            self.seq.advance(len as u64);
            let new_filled = head.filled + len;
            // A WAITALL advert stays at the head until completely filled
            // (paper §II-C); any other advert is consumed by one WWI.
            let keep = new_filled < a.len && a.waitall;
            if keep {
                self.adverts.front_mut().expect("head exists").filled = new_filled;
            } else {
                self.adverts.pop_front();
            }
            stats.direct_transfers += 1;
            stats.direct_bytes += len as u64;
            // A direct transfer settles any resync bet and re-arms the
            // adaptive-re-entry hysteresis.
            if self.waiting_resync {
                self.waiting_resync = false;
                stats.resyncs_completed += 1;
            }
            self.failed_waits = 0;
            return Some(WwiPlan {
                raddr,
                rkey: a.rkey,
                len,
                indirect: false,
            });
        }

        // Fig. 2 lines 17–25: no usable ADVERT — go through the
        // intermediate buffer if allowed and there is room.
        if self.mode == ProtocolMode::DirectOnly {
            return None;
        }
        if self.should_wait_for_direct(remaining, stats) {
            return None;
        }
        let want = remaining.min(self.max_chunk as u64);
        let (offset, len) = self.ring.contiguous_reservation(want);
        if len == 0 {
            return None;
        }
        if self.phase.is_direct() {
            self.phase = self.phase.next();
            stats.mode_switches += 1;
        }
        self.ring.commit(len);
        self.seq.advance(len);
        stats.indirect_transfers += 1;
        stats.indirect_bytes += len;
        Some(WwiPlan {
            raddr: self.remote_ring.addr + offset,
            rkey: self.remote_ring.rkey,
            len: len as u32,
            indirect: true,
        })
    }

    /// True while a send is paused betting on a resync ADVERT.
    pub fn waiting_resync(&self) -> bool {
        self.waiting_resync
    }

    /// Adaptive direct-mode re-entry (`ExsConfig::direct`): decides
    /// whether a send with no usable ADVERT should *pause* (return
    /// `None` from [`SenderHalf::plan_transfer`]) rather than fall back
    /// to the intermediate buffer.
    ///
    /// The bet: when the receiver runs a pre-posted receive queue, the
    /// ring's drain-empty transition makes the Fig. 3 gate re-advertise
    /// every queued receive, and those ADVERTs travel in the same FIFO
    /// control flush as the final ACK — so by the time the sender
    /// observes `in_use() == 0`, any resync ADVERT the receiver was
    /// going to send has already been delivered. An event that leaves
    /// the ring drained with still no usable ADVERT is therefore a
    /// *failed* wait: resume indirect, and after
    /// `effective_max_resync_rtts()` consecutive failures latch the
    /// policy off until a direct transfer proves the peer is advertising
    /// again. The pause itself only engages for sends of at least
    /// `min_direct_size` bytes, and — while in an indirect phase — only
    /// when the un-ACKed backlog is small enough
    /// (`effective_resync_backlog`) that waiting rides a short drain
    /// instead of stalling a behind receiver.
    ///
    /// Liveness caveat (documented in `DESIGN.md` §13): a paused send
    /// resumes on the next control message from the peer, so the policy
    /// assumes a receiver that keeps reading to end-of-stream — the
    /// shape every reactor/fan-in workload here has. It is opt-in and
    /// off by default.
    fn should_wait_for_direct(&mut self, remaining: u64, stats: &mut ConnStats) -> bool {
        if !self.policy.enabled() || self.mode != ProtocolMode::Dynamic {
            return false;
        }
        if remaining < self.policy.min_direct_size {
            return false;
        }
        if self.waiting_resync {
            // The lost-bet signal only exists for an indirect-phase
            // wait: ACKs and resync ADVERTs share one FIFO control
            // flush, so a drained ring with no usable ADVERT means the
            // receiver had nothing to advertise. In a *direct* phase a
            // zero backlog is the steady state — an unrelated
            // completion must not cancel the wait; the next ADVERT
            // matches by construction.
            if self.phase.is_indirect() && self.ring.in_use() == 0 {
                self.waiting_resync = false;
                self.failed_waits += 1;
                return false;
            }
            return true;
        }
        if self.failed_waits >= self.policy.effective_max_resync_rtts() {
            return false;
        }
        let worth_it = if self.phase.is_direct() {
            // Direct phase with an empty advert queue: the next ADVERT
            // matches by construction — always worth waiting.
            true
        } else {
            self.ring.in_use() <= self.policy.effective_resync_backlog(self.ring.capacity())
        };
        if worth_it {
            self.waiting_resync = true;
            stats.resyncs_attempted += 1;
        }
        worth_it
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring() -> RemoteRing {
        RemoteRing {
            addr: 0x100000,
            rkey: 7,
            capacity: 1000,
        }
    }

    fn half(mode: ProtocolMode) -> (SenderHalf, ConnStats) {
        (SenderHalf::new(mode, ring(), 1 << 30), ConnStats::default())
    }

    fn advert(seq: u64, phase: u32, addr: u64, len: u32, waitall: bool) -> Advert {
        Advert {
            seq: Seq(seq),
            phase: Phase(phase),
            addr,
            len,
            rkey: 99,
            waitall,
        }
    }

    #[test]
    fn direct_when_advert_available() {
        let (mut s, mut st) = half(ProtocolMode::Dynamic);
        s.push_advert(advert(0, 0, 0x2000, 100, false), &mut st)
            .unwrap();
        let plan = s.plan_transfer(50, &mut st).unwrap();
        assert_eq!(
            plan,
            WwiPlan {
                raddr: 0x2000,
                rkey: 99,
                len: 50,
                indirect: false
            }
        );
        assert_eq!(s.seq(), Seq(50));
        assert!(s.phase().is_direct());
        // Non-WAITALL advert consumed by a single (final) transfer.
        assert_eq!(s.advert_queue_len(), 0);
        assert_eq!(st.direct_transfers, 1);
        assert_eq!(st.mode_switches, 0);
    }

    #[test]
    fn large_send_splits_across_adverts() {
        let (mut s, mut st) = half(ProtocolMode::Dynamic);
        s.push_advert(advert(0, 0, 0x2000, 100, false), &mut st)
            .unwrap();
        s.push_advert(advert(101, 0, 0x3000, 100, false), &mut st)
            .unwrap();
        // 150-byte send: 100 into the first advert, 50 into the second.
        let p1 = s.plan_transfer(150, &mut st).unwrap();
        assert_eq!((p1.raddr, p1.len), (0x2000, 100));
        let p2 = s.plan_transfer(50, &mut st).unwrap();
        assert_eq!((p2.raddr, p2.len), (0x3000, 50));
        assert_eq!(s.seq(), Seq(150));
    }

    #[test]
    fn small_send_consumes_non_waitall_advert() {
        // A 10-byte send into a 100-byte non-WAITALL advert consumes the
        // advert entirely: the receive completes with 10 bytes.
        let (mut s, mut st) = half(ProtocolMode::Dynamic);
        s.push_advert(advert(0, 0, 0x2000, 100, false), &mut st)
            .unwrap();
        let p = s.plan_transfer(10, &mut st).unwrap();
        assert_eq!(p.len, 10);
        assert_eq!(s.advert_queue_len(), 0);
    }

    #[test]
    fn waitall_advert_stays_until_filled() {
        let (mut s, mut st) = half(ProtocolMode::Dynamic);
        s.push_advert(advert(0, 0, 0x2000, 100, true), &mut st)
            .unwrap();
        let p1 = s.plan_transfer(40, &mut st).unwrap();
        assert_eq!((p1.raddr, p1.len), (0x2000, 40));
        assert_eq!(s.advert_queue_len(), 1, "WAITALL advert retained");
        let p2 = s.plan_transfer(30, &mut st).unwrap();
        assert_eq!((p2.raddr, p2.len), (0x2000 + 40, 30));
        let p3 = s.plan_transfer(30, &mut st).unwrap();
        assert_eq!((p3.raddr, p3.len), (0x2000 + 70, 30));
        assert_eq!(s.advert_queue_len(), 0, "released once full");
    }

    #[test]
    fn indirect_when_no_advert() {
        let (mut s, mut st) = half(ProtocolMode::Dynamic);
        let p = s.plan_transfer(300, &mut st).unwrap();
        assert!(p.indirect);
        assert_eq!(p.raddr, ring().addr);
        assert_eq!(p.len, 300);
        assert!(s.phase().is_indirect());
        assert_eq!(st.mode_switches, 1);
        assert_eq!(s.buffer_free(), 700);
        // Second chunk continues at offset 300.
        let p2 = s.plan_transfer(100, &mut st).unwrap();
        assert_eq!(p2.raddr, ring().addr + 300);
        assert_eq!(st.mode_switches, 1, "staying indirect is not a switch");
    }

    #[test]
    fn indirect_splits_at_wrap() {
        let (mut s, mut st) = half(ProtocolMode::Dynamic);
        s.plan_transfer(900, &mut st).unwrap();
        s.on_ack(900, &mut st).unwrap(); // buffer empty again, cursor at 900
        let p = s.plan_transfer(500, &mut st).unwrap();
        assert_eq!((p.raddr - ring().addr, p.len), (900, 100));
        let p2 = s.plan_transfer(400, &mut st).unwrap();
        assert_eq!((p2.raddr - ring().addr, p2.len), (0, 400));
    }

    #[test]
    fn blocks_when_buffer_full_and_no_advert() {
        let (mut s, mut st) = half(ProtocolMode::Dynamic);
        assert!(s.plan_transfer(1000, &mut st).is_some());
        assert!(s.plan_transfer(1, &mut st).is_none(), "buffer full");
        s.on_ack(200, &mut st).unwrap();
        let p = s.plan_transfer(500, &mut st).unwrap();
        assert_eq!(p.len, 200, "limited by freed space");
    }

    #[test]
    fn direct_only_waits_for_adverts() {
        let (mut s, mut st) = half(ProtocolMode::DirectOnly);
        assert!(s.plan_transfer(100, &mut st).is_none());
        s.push_advert(advert(0, 0, 0x2000, 100, false), &mut st)
            .unwrap();
        assert!(!s.plan_transfer(100, &mut st).unwrap().indirect);
    }

    #[test]
    fn indirect_only_ignores_adverts() {
        let (mut s, mut st) = half(ProtocolMode::IndirectOnly);
        s.push_advert(advert(0, 0, 0x2000, 100, false), &mut st)
            .unwrap();
        assert_eq!(s.advert_queue_len(), 0);
        assert_eq!(st.adverts_discarded, 1);
        assert!(s.plan_transfer(100, &mut st).unwrap().indirect);
    }

    #[test]
    fn stale_advert_discarded_by_phase() {
        let (mut s, mut st) = half(ProtocolMode::Dynamic);
        // Go indirect (phase 1).
        s.plan_transfer(10, &mut st).unwrap();
        assert_eq!(s.phase(), Phase(1));
        // An advert from the old direct phase 0 crosses on the wire:
        // discarded even though its seq (10) matches.
        s.push_advert(advert(10, 0, 0x2000, 100, false), &mut st)
            .unwrap();
        let p = s.plan_transfer(10, &mut st).unwrap();
        assert!(p.indirect, "stale advert must not be matched");
        assert_eq!(st.adverts_discarded, 1);
        assert_eq!(s.phase(), Phase(1), "older phase does not bump P_s");
    }

    #[test]
    fn stale_advert_discarded_by_seq_bumps_phase() {
        // Fig. 8: an ADVERT from a *newer* phase but with an old sequence
        // number must drop the sender past that phase entirely.
        let (mut s, mut st) = half(ProtocolMode::Dynamic);
        s.plan_transfer(100, &mut st).unwrap(); // indirect, phase 1, seq 100
                                                // The receiver resynchronized too early: advert for phase 2 with
                                                // seq 50 (data still in flight).
        s.push_advert(advert(50, 2, 0x2000, 100, false), &mut st)
            .unwrap();
        let p = s.plan_transfer(10, &mut st).unwrap();
        assert!(p.indirect);
        assert_eq!(st.adverts_discarded, 1);
        assert_eq!(s.phase(), Phase(3), "sender jumps past the dead phase");
        // A successor advert from the dead phase 2 whose seq happens to
        // match S_s must also be discarded (the Fig. 8 incorrect match).
        s.push_advert(advert(110, 2, 0x3000, 100, false), &mut st)
            .unwrap();
        let p = s.plan_transfer(10, &mut st).unwrap();
        assert!(p.indirect, "phase-2 successor advert must not match");
        assert_eq!(st.adverts_discarded, 2);
    }

    #[test]
    fn resync_to_matching_advert() {
        let (mut s, mut st) = half(ProtocolMode::Dynamic);
        s.plan_transfer(100, &mut st).unwrap(); // indirect, phase 1, seq 100
                                                // Receiver consumed everything and resynchronized: phase 2,
                                                // seq exactly 100.
        s.push_advert(advert(100, 2, 0x2000, 64, false), &mut st)
            .unwrap();
        let p = s.plan_transfer(64, &mut st).unwrap();
        assert!(!p.indirect);
        assert_eq!(s.phase(), Phase(2));
        assert_eq!(st.mode_switches, 2, "indirect→direct counted");
        assert_eq!(s.seq(), Seq(164));
    }

    #[test]
    fn indirect_chunking_respects_max_chunk() {
        let mut s = SenderHalf::new(
            ProtocolMode::Dynamic,
            RemoteRing {
                addr: 0,
                rkey: 1,
                capacity: 10_000,
            },
            128,
        );
        let mut st = ConnStats::default();
        let p = s.plan_transfer(1000, &mut st).unwrap();
        assert!(p.indirect);
        assert_eq!(p.len, 128);
        // Direct transfers are NOT chunk-capped: one WWI per advert
        // match, bounded only by the advertised buffer.
        s.on_ack(128, &mut st).unwrap();
        s.push_advert(advert(128, 2, 0x2000, 1000, false), &mut st)
            .unwrap();
        let p = s.plan_transfer(1000, &mut st).unwrap();
        assert_eq!((p.raddr, p.len), (0x2000, 1000));
    }

    #[test]
    #[should_panic(expected = "nothing to send")]
    fn zero_remaining_panics() {
        let (mut s, mut st) = half(ProtocolMode::Dynamic);
        s.plan_transfer(0, &mut st);
    }

    fn policy_half(policy: DirectPolicy) -> (SenderHalf, ConnStats) {
        (
            SenderHalf::with_policy(ProtocolMode::Dynamic, ring(), 1 << 30, policy),
            ConnStats::default(),
        )
    }

    #[test]
    fn policy_pauses_large_send_until_advert() {
        let (mut s, mut st) = policy_half(DirectPolicy {
            min_direct_size: 100,
            ..DirectPolicy::default()
        });
        // Large send, direct phase, no advert: pause instead of indirect.
        assert!(s.plan_transfer(500, &mut st).is_none());
        assert!(s.waiting_resync());
        assert_eq!(st.resyncs_attempted, 1);
        assert_eq!(st.indirect_transfers, 0);
        // The advert arrives: the paused send goes direct.
        s.push_advert(advert(0, 0, 0x2000, 500, false), &mut st)
            .unwrap();
        let p = s.plan_transfer(500, &mut st).unwrap();
        assert!(!p.indirect);
        assert!(!s.waiting_resync());
        assert_eq!(st.resyncs_completed, 1);
    }

    #[test]
    fn policy_ignores_small_sends() {
        let (mut s, mut st) = policy_half(DirectPolicy {
            min_direct_size: 100,
            ..DirectPolicy::default()
        });
        let p = s.plan_transfer(99, &mut st).unwrap();
        assert!(p.indirect, "below min_direct_size goes indirect at once");
        assert_eq!(st.resyncs_attempted, 0);
    }

    #[test]
    fn policy_waits_through_backlog_then_resyncs() {
        let (mut s, mut st) = policy_half(DirectPolicy {
            min_direct_size: 100,
            ..DirectPolicy::default()
        });
        s.plan_transfer(99, &mut st).unwrap(); // small → indirect, phase 1
        assert!(s.phase().is_indirect());
        // Large send with 99 un-ACKed bytes: backlog default allows the
        // pause; the wait rides the drain.
        assert!(s.plan_transfer(500, &mut st).is_none());
        assert!(s.waiting_resync());
        // Receiver drains: ACK first, resync ADVERT right behind it in
        // the same FIFO control flush.
        s.on_ack(99, &mut st).unwrap();
        s.push_advert(advert(99, 2, 0x2000, 500, false), &mut st)
            .unwrap();
        let p = s.plan_transfer(500, &mut st).unwrap();
        assert!(!p.indirect);
        assert_eq!(st.resyncs_completed, 1);
        assert_eq!(st.mode_switches, 2);
    }

    #[test]
    fn policy_gives_up_when_drained_without_advert_and_latches_off() {
        let (mut s, mut st) = policy_half(DirectPolicy {
            min_direct_size: 100,
            max_resync_rtts: 2,
            ..DirectPolicy::default()
        });
        s.plan_transfer(99, &mut st).unwrap(); // small → indirect backlog
        for round in 0..2u32 {
            assert!(s.plan_transfer(500, &mut st).is_none(), "round {round}");
            s.on_ack(99, &mut st).unwrap(); // drained, no advert: bet lost
            let p = s.plan_transfer(500, &mut st).unwrap();
            assert!(p.indirect, "failed wait falls back to indirect");
            s.on_ack(p.len as u64, &mut st).unwrap();
            let p = s.plan_transfer(99, &mut st).unwrap(); // rebuild a backlog
            assert_eq!(p.len, 99);
        }
        assert_eq!(st.resyncs_attempted, 2);
        assert_eq!(st.resyncs_completed, 0);
        // Two consecutive failures: latched off until the next direct.
        let p = s.plan_transfer(500, &mut st).unwrap();
        assert!(p.indirect, "latched-off policy stops pausing");
        assert_eq!(st.resyncs_attempted, 2);
        // A direct transfer re-arms the policy.
        s.on_ack(99 + p.len as u64, &mut st).unwrap();
        s.push_advert(advert(s.seq().0, 2, 0x2000, 64, false), &mut st)
            .unwrap();
        assert!(!s.plan_transfer(64, &mut st).unwrap().indirect);
        assert!(s.plan_transfer(500, &mut st).is_none(), "re-armed pause");
        assert_eq!(st.resyncs_attempted, 3);
    }

    #[test]
    fn policy_backlog_veto_keeps_streaming() {
        let (mut s, mut st) = policy_half(DirectPolicy {
            min_direct_size: 100,
            resync_backlog: 50,
            ..DirectPolicy::default()
        });
        s.plan_transfer(99, &mut st).unwrap(); // small → indirect, phase 1
        let p = s.plan_transfer(500, &mut st).unwrap();
        assert!(p.indirect, "deep backlog (99 > 50) vetoes the pause");
        assert_eq!(st.resyncs_attempted, 0);
        // Receiver catches up: 39 un-ACKed ≤ 50 — now the pause engages.
        s.on_ack(560, &mut st).unwrap();
        assert!(s.plan_transfer(500, &mut st).is_none());
        assert_eq!(st.resyncs_attempted, 1);
    }

    #[test]
    fn indirect_phase_advert_is_typed_error() {
        let (mut s, mut st) = half(ProtocolMode::Dynamic);
        assert_eq!(
            s.push_advert(advert(0, 1, 0x2000, 100, false), &mut st),
            Err(ProtocolError::BadAdvert)
        );
        assert_eq!(s.advert_queue_len(), 0);
    }

    #[test]
    fn ack_underflow_is_typed_error() {
        let (mut s, mut st) = half(ProtocolMode::Dynamic);
        assert_eq!(s.on_ack(1, &mut st), Err(ProtocolError::AckUnderflow));
        s.plan_transfer(100, &mut st).unwrap(); // 100 in flight
        assert_eq!(s.on_ack(101, &mut st), Err(ProtocolError::AckUnderflow));
        assert_eq!(s.on_ack(100, &mut st), Ok(()));
    }

    #[test]
    fn policy_off_in_non_dynamic_modes() {
        let mut s = SenderHalf::with_policy(
            ProtocolMode::IndirectOnly,
            ring(),
            1 << 30,
            DirectPolicy {
                min_direct_size: 1,
                ..DirectPolicy::default()
            },
        );
        let mut st = ConnStats::default();
        assert!(s.plan_transfer(500, &mut st).unwrap().indirect);
        assert_eq!(st.resyncs_attempted, 0);
    }
}
