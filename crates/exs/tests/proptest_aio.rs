//! Property tests for `exs::aio` cancellation safety: random message
//! sizes, random timeout/cancel points on both the send and receive
//! side, on both backends — and the delivered byte stream must always
//! be an exact prefix of the sent messages on a message boundary
//! (never reordered, torn, or duplicated), matching the FNV-1a digest
//! an uninterrupted run would produce for that prefix.

use std::cell::RefCell;
use std::rc::Rc;
use std::sync::Arc;
use std::time::Duration;

use proptest::prelude::*;

use exs::aio::timeout;
use exs::threaded::connect_sockets_shared;
use exs::{Executor, ExsConfig, ExsError, Reactor, ReactorConfig, SimDriver, StreamSocket};
use rdma_verbs::{HcaConfig, HostModel, SimNet, ThreadNet};
use simnet::{LinkConfig, SimDuration, SimTime};

fn small_cfg() -> ExsConfig {
    ExsConfig {
        ring_capacity: 64 << 10,
        credits: 8,
        sq_depth: 16,
        ..ExsConfig::default()
    }
}

fn fnv1a(acc: u64, bytes: &[u8]) -> u64 {
    let mut h = acc;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

fn payload(msg: usize, i: usize) -> u8 {
    (msg * 97 + i * 31) as u8
}

fn message(msg: usize, len: usize) -> Vec<u8> {
    (0..len).map(|i| payload(msg, i)).collect()
}

/// The digests an uninterrupted run would produce after 0, 1, …, n
/// whole messages — the only values a cancelled run may ever see.
fn prefix_digests(sizes: &[usize]) -> Vec<(usize, u64)> {
    let mut out = Vec::with_capacity(sizes.len() + 1);
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let mut len = 0usize;
    out.push((0, h));
    for (m, &sz) in sizes.iter().enumerate() {
        h = fnv1a(h, &message(m, sz));
        len += sz;
        out.push((len, h));
    }
    out
}

/// What the receive side observed: total bytes claimed and their
/// running digest, in claim order.
#[derive(Default)]
struct Delivery {
    len: usize,
    digest: u64,
    sender_ok: usize,
}

fn check_prefix(sizes: &[usize], d: &Delivery) {
    let valid = prefix_digests(sizes);
    let hit = valid.iter().find(|&&(len, _)| len == d.len);
    let Some(&(_, want)) = hit else {
        panic!(
            "delivered {} bytes is not a message boundary of {sizes:?}",
            d.len
        );
    };
    assert_eq!(
        d.digest, want,
        "delivered bytes are not the prefix an uninterrupted run sends"
    );
    // Every send the sender saw complete must be part of the prefix.
    let acked_len: usize = sizes[..d.sender_ok].iter().sum();
    assert!(
        d.len >= acked_len,
        "an acknowledged send ({} msgs, {acked_len} B) is missing from delivery ({} B)",
        d.sender_ok,
        d.len
    );
}

/// Sender task body: each message races a timeout at a generated
/// cancel point. The first cancellation stops the stream (a clean
/// cancel would otherwise legally *skip* a message, voiding the
/// prefix property this test pins down).
async fn send_side(
    h: exs::AioHandle,
    stream: exs::AsyncStream,
    sizes: Vec<usize>,
    cancel_nanos: Vec<u64>,
    sender_ok: Rc<RefCell<usize>>,
) {
    for (m, &sz) in sizes.iter().enumerate() {
        let dur = Duration::from_nanos(cancel_nanos[m]);
        match timeout(&h, dur, stream.send_all(message(m, sz))).await {
            Ok(Ok(())) => *sender_ok.borrow_mut() += 1,
            Ok(Err(e)) => {
                assert!(
                    matches!(e, ExsError::Cancelled),
                    "only poisoning may fail a later send, got {e}"
                );
                break;
            }
            Err(ExsError::TimedOut) => break,
            Err(e) => panic!("unexpected timeout error {e}"),
        }
    }
    stream.shutdown().await.expect("sender shutdown");
    match stream.recv_some(1).await {
        Err(ExsError::Eof) => {}
        other => panic!("sender expected EOF, got {other:?}"),
    }
}

/// Receiver task body: drains with `recv_some` through random-length
/// timeouts — a timed-out (dropped) receive must never lose or
/// duplicate bytes.
async fn recv_side(
    h: exs::AioHandle,
    stream: exs::AsyncStream,
    recv_timeout_nanos: u64,
    out: Rc<RefCell<Delivery>>,
) {
    loop {
        let dur = Duration::from_nanos(recv_timeout_nanos);
        match timeout(&h, dur, stream.recv_some(4096)).await {
            Ok(Ok(bytes)) => {
                let mut d = out.borrow_mut();
                d.digest = fnv1a(d.digest, &bytes);
                d.len += bytes.len();
            }
            Ok(Err(ExsError::Eof)) => break,
            Ok(Err(e)) => panic!("receiver failed: {e}"),
            Err(ExsError::TimedOut) => continue,
            Err(e) => panic!("unexpected timeout error {e}"),
        }
    }
    stream.shutdown().await.expect("receiver shutdown");
}

fn run_sim_case(sizes: Vec<usize>, cancel_nanos: Vec<u64>, recv_timeout_nanos: u64, seed: u64) {
    let cfg = small_cfg();
    let mut net = SimNet::new();
    net.set_host_seed(seed);
    let na = net.add_node(HostModel::free(), HcaConfig::default());
    let nb = net.add_node(HostModel::free(), HcaConfig::default());
    net.connect_nodes(
        na,
        nb,
        LinkConfig::simple(100_000_000_000, SimDuration::from_micros(1)),
        seed,
    );
    let (sock_a, sock_b) = StreamSocket::pair(&mut net, na, nb, &cfg);

    let mk = |sock: StreamSocket| {
        let mut reactor = Reactor::new(sock.send_cq(), sock.recv_cq(), ReactorConfig::default());
        let conn = reactor.accept(sock);
        let ex = Executor::new(reactor);
        let stream = ex.handle().stream_with(conn, 4096, 2);
        (ex, stream)
    };

    let sender_ok = Rc::new(RefCell::new(0usize));
    let (send_ex, send_stream) = mk(sock_a);
    send_ex.handle().spawn(send_side(
        send_ex.handle(),
        send_stream,
        sizes.clone(),
        cancel_nanos,
        Rc::clone(&sender_ok),
    ));

    let delivered = Rc::new(RefCell::new(Delivery {
        digest: 0xcbf2_9ce4_8422_2325,
        ..Delivery::default()
    }));
    let (recv_ex, recv_stream) = mk(sock_b);
    recv_ex.handle().spawn(recv_side(
        recv_ex.handle(),
        recv_stream,
        recv_timeout_nanos,
        Rc::clone(&delivered),
    ));

    let mut ds = SimDriver::new(send_ex);
    let mut dr = SimDriver::new(recv_ex);
    let outcome = net.run(&mut [&mut ds, &mut dr], SimTime::from_secs(30));
    assert!(outcome.completed, "cancel case stalled: {outcome:?}");

    let mut d = Rc::try_unwrap(delivered)
        .ok()
        .expect("tasks done")
        .into_inner();
    d.sender_ok = *sender_ok.borrow();
    check_prefix(&sizes, &d);
}

fn run_threaded_case(sizes: Vec<usize>, cancel_micros: Vec<u64>, recv_timeout_micros: u64) {
    let cfg = small_cfg();
    let mut net = ThreadNet::new();
    let na = net.add_node(HcaConfig::default());
    let nb = net.add_node(HcaConfig::default());
    net.connect_nodes(&na, &nb, Duration::from_micros(20));
    let (sock_a, sock_b) = connect_sockets_shared(&na, &nb, &cfg, None, None);
    let net = Arc::new(net);

    let sender = {
        let net = Arc::clone(&net);
        let sizes = sizes.clone();
        std::thread::spawn(move || {
            let mut reactor =
                Reactor::new(sock_a.send_cq(), sock_a.recv_cq(), ReactorConfig::default());
            let conn = reactor.accept(sock_a);
            let mut ex = Executor::new(reactor);
            let stream = ex.handle().stream_with(conn, 4096, 2);
            let sender_ok = Rc::new(RefCell::new(0usize));
            let cancel_nanos = cancel_micros.iter().map(|&u| u * 1000).collect();
            ex.handle().spawn(send_side(
                ex.handle(),
                stream,
                sizes,
                cancel_nanos,
                Rc::clone(&sender_ok),
            ));
            ex.run_threaded(&net, &na);
            let ok = *sender_ok.borrow();
            ok
        })
    };
    let receiver = {
        let net = Arc::clone(&net);
        std::thread::spawn(move || {
            let mut reactor =
                Reactor::new(sock_b.send_cq(), sock_b.recv_cq(), ReactorConfig::default());
            let conn = reactor.accept(sock_b);
            let mut ex = Executor::new(reactor);
            let stream = ex.handle().stream_with(conn, 4096, 2);
            let delivered = Rc::new(RefCell::new(Delivery {
                digest: 0xcbf2_9ce4_8422_2325,
                ..Delivery::default()
            }));
            ex.handle().spawn(recv_side(
                ex.handle(),
                stream,
                recv_timeout_micros * 1000,
                Rc::clone(&delivered),
            ));
            ex.run_threaded(&net, &nb);
            Rc::try_unwrap(delivered)
                .ok()
                .expect("tasks done")
                .into_inner()
        })
    };

    let sender_ok = sender.join().expect("sender thread");
    let mut d = receiver.join().expect("receiver thread");
    d.sender_ok = sender_ok;
    check_prefix(&sizes, &d);
    net.quiesce();
}

fn sizes_strategy() -> impl Strategy<Value = Vec<usize>> {
    proptest::collection::vec(1usize..8192, 1..6)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Simulated backend: any cancel points on either side leave the
    /// delivered stream a digest-exact message-boundary prefix.
    #[test]
    fn sim_cancelled_streams_stay_prefix_exact(
        sizes in sizes_strategy(),
        cancel_nanos in proptest::collection::vec(0u64..40_000, 6),
        recv_timeout_nanos in 500u64..20_000,
        seed in any::<u64>(),
    ) {
        run_sim_case(sizes, cancel_nanos, recv_timeout_nanos, seed);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Threaded backend: the same prefix property under real-thread
    /// timing and wall-clock timers.
    #[test]
    fn threaded_cancelled_streams_stay_prefix_exact(
        sizes in sizes_strategy(),
        cancel_micros in proptest::collection::vec(1u64..30_000, 6),
        recv_timeout_micros in 100u64..20_000,
    ) {
        run_threaded_case(sizes, cancel_micros, recv_timeout_micros);
    }
}
