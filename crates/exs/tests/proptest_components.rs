//! Property tests for the protocol's data-plane components: the ring
//! buffer arithmetic and the control-message codecs.

use proptest::prelude::*;

use exs::buffer::{ReceiverRing, SenderRing};
use exs::messages::{decode_imm, encode_imm, Advert, Ctrl, CtrlMsg, TransferKind, MAX_WWI_LEN};
use exs::{Phase, Seq};

proptest! {
    /// Distributed ring invariant: driving the sender and receiver views
    /// through a FIFO channel with arbitrary interleaving keeps the
    /// offsets aligned and the byte conservation exact.
    #[test]
    fn ring_views_stay_consistent(
        capacity in 16u64..100_000,
        ops in proptest::collection::vec((1u64..50_000, any::<bool>()), 1..300),
    ) {
        let mut s = SenderRing::new(capacity);
        let mut r = ReceiverRing::new(capacity);
        // In-flight FIFO between commit (sender) and arrival (receiver),
        // and between consume (receiver) and release (sender).
        let mut data_fifo: Vec<u64> = Vec::new();
        let mut ack_fifo: Vec<u64> = Vec::new();

        for &(amount, write_side) in &ops {
            if write_side {
                let (off, len) = s.contiguous_reservation(amount);
                prop_assert!(len <= amount);
                if len > 0 {
                    prop_assert!(off < capacity);
                    s.commit(len);
                    data_fifo.push(len);
                }
            } else {
                // Deliver one pending write, then consume some, then ack.
                if let Some(n) = data_fifo.first().copied() {
                    data_fifo.remove(0);
                    r.arrived(n);
                }
                let (_, len) = r.contiguous_read(amount);
                if len > 0 {
                    r.consume(len);
                    ack_fifo.push(len);
                }
                if let Some(n) = ack_fifo.first().copied() {
                    ack_fifo.remove(0);
                    s.release(n);
                }
            }
            // Conservation: the sender's in-use count equals bytes still
            // in flight toward the ring, bytes sitting in the ring, and
            // frees whose ACK has not yet been applied.
            let unacked: u64 = ack_fifo.iter().sum();
            let pending_arrival: u64 = data_fifo.iter().sum();
            prop_assert_eq!(
                s.in_use(),
                pending_arrival + r.count() + unacked,
                "byte conservation broken"
            );
        }
    }

    /// Control messages round-trip for arbitrary field values.
    #[test]
    fn ctrl_roundtrip(
        seq in any::<u64>(),
        phase in 0u32..1_000_000,
        addr in any::<u64>(),
        len in any::<u32>(),
        rkey in any::<u32>(),
        waitall in any::<bool>(),
        credit in any::<u32>(),
        freed in any::<u64>(),
    ) {
        // Lemma 1 constrains real adverts to even phases; the codec
        // itself must be lossless either way.
        for ctrl in [
            Ctrl::Advert(Advert {
                seq: Seq(seq),
                phase: Phase(phase),
                addr,
                len,
                rkey,
                waitall,
            }),
            Ctrl::Ack { freed },
            Ctrl::Credit,
            Ctrl::DataNotify { imm: len },
        ] {
            let msg = CtrlMsg {
                ctrl,
                credit_return: credit,
            };
            prop_assert_eq!(CtrlMsg::decode(&msg.encode()).unwrap(), msg);
        }
    }

    /// The WWI immediate encoding is lossless across its whole domain.
    #[test]
    fn imm_roundtrip(len in 0u32..=MAX_WWI_LEN, indirect in any::<bool>()) {
        let kind = if indirect {
            TransferKind::Indirect
        } else {
            TransferKind::Direct
        };
        let (k, l) = decode_imm(encode_imm(kind, len));
        prop_assert_eq!(k, kind);
        prop_assert_eq!(l, len);
    }

    /// Phase parity/ordering laws.
    #[test]
    fn phase_laws(p in 0u32..u32::MAX - 2) {
        let phase = Phase(p);
        prop_assert_ne!(phase.is_direct(), phase.is_indirect());
        prop_assert_eq!(phase.next().is_direct(), phase.is_indirect());
        prop_assert!(phase.next() > phase);
        let mut adv = phase;
        adv.advance_to(Phase(p + 2));
        prop_assert_eq!(adv, Phase(p + 2));
    }
}
